#!/usr/bin/env python3
"""Diff two BENCH_speed.json files and emit a markdown report.

Used by the speed-smoke CI job to compare the freshly measured
BENCH_speed.json against the checked-in baseline (copied aside before the
run overwrites it), and usable locally the same way:

    python3 scripts/bench_diff.py baseline.json current.json \
        [--out BENCH_diff.md] [--warn-threshold 10]

The comparison is on throughput (Mrefs/s): per-engine aggregate plus every
(bench, column) run row joined across the two files.  Wall-clock seconds
are deliberately not compared — the two files may come from different ref
counts (CI smoke runs are tiny) or different hosts, where seconds mean
nothing but the ratio of rates is still a trend signal; when the configs
differ the report says so up front.

Report-only by design: when the fast-engine aggregate regresses by more
than --warn-threshold percent the script prints a GitHub Actions
`::warning::` annotation and still exits 0.  Shared runners are far too
noisy for a hard gate — the authoritative number is bench_speed.sh on a
quiet dedicated host — but the warning makes a real regression visible on
the PR without blocking it.  Exit status is non-zero only for malformed
input (missing file, missing fast_engine block).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")


def pct(new, old):
    if old <= 0:
        return 0.0
    return (new / old - 1.0) * 100.0


def config_note(base, cur):
    keys = ("scale", "refs_per_core", "seed", "repeat", "cpu_model",
            "compiler_flags")
    diffs = []
    bc, cc = base.get("config", {}), cur.get("config", {})
    for k in keys:
        if bc.get(k) != cc.get(k):
            diffs.append(f"{k}: {bc.get(k)!r} -> {cc.get(k)!r}")
    return diffs


def engine_rows(doc, engine):
    block = doc.get(engine)
    if not isinstance(block, dict):
        return None, {}
    rows = {}
    for run in block.get("runs", []):
        rows[(run.get("bench"), run.get("column"))] = run.get("mrefs_per_s")
    return block, rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--out", default="BENCH_diff.md")
    ap.add_argument("--warn-threshold", type=float, default=10.0,
                    help="fast-engine aggregate regression (percent) that "
                         "triggers a report-only warning")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    lines = ["# BENCH_speed diff", ""]
    notes = config_note(base, cur)
    if notes:
        lines.append("Configs differ — absolute rates are cross-config "
                     "trend signals, not like-for-like:")
        lines.extend(f"- {n}" for n in notes)
        lines.append("")

    warn = None
    for engine in ("fast_engine", "reference_engine", "parallel_engine"):
        bblock, brows = engine_rows(base, engine)
        cblock, crows = engine_rows(cur, engine)
        if cblock is None and bblock is None:
            continue
        lines.append(f"## {engine}")
        if bblock is None or cblock is None:
            lines.append("present in only one file; skipping.")
            lines.append("")
            continue
        b_agg = bblock.get("mrefs_per_s", 0.0)
        c_agg = cblock.get("mrefs_per_s", 0.0)
        delta = pct(c_agg, b_agg)
        lines.append(f"aggregate: {b_agg:.3f} -> {c_agg:.3f} Mrefs/s "
                     f"({delta:+.1f}%)")
        lines.append("")
        lines.append("| bench | column | baseline | current | delta |")
        lines.append("|---|---|---:|---:|---:|")
        for key in sorted(set(brows) | set(crows)):
            b, c = brows.get(key), crows.get(key)
            if b is None or c is None:
                lines.append(f"| {key[0]} | {key[1]} | "
                             f"{'-' if b is None else f'{b:.3f}'} | "
                             f"{'-' if c is None else f'{c:.3f}'} | - |")
            else:
                lines.append(f"| {key[0]} | {key[1]} | {b:.3f} | {c:.3f} | "
                             f"{pct(c, b):+.1f}% |")
        lines.append("")
        if engine == "fast_engine":
            if b_agg <= 0:
                sys.exit("bench_diff: baseline has no fast_engine rate")
            if delta < -args.warn_threshold:
                warn = (f"fast-engine aggregate regressed {delta:+.1f}% "
                        f"({b_agg:.3f} -> {c_agg:.3f} Mrefs/s, threshold "
                        f"{args.warn_threshold:.0f}%)")

    report = "\n".join(lines) + "\n"
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(report)
    sys.stdout.write(report)
    if warn:
        # Report-only: annotate the job, do not fail it (see module doc).
        print(f"::warning title=bench_speed regression::{warn}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
