#!/usr/bin/env bash
# Profile the fast engine's per-reference critical path and print a
# top-symbols table.
#
# Drives `bench_speed` fast-engine-only (reference/parallel/ckpt legs
# skipped — they would pollute the profile with code the fast path never
# runs) over the full workload matrix at a reduced ref count, then reports
# where the host cycles went:
#
#   * If `perf` is available: perf record -g over the run, then
#     `perf report --stdio` truncated to the top TOP symbols.
#   * Otherwise (containers routinely lack perf_event access or the tool
#     itself): an instrumented -pg build and gprof's flat profile, same
#     table shape.  gprof's mcount sampling skews small leaf functions but
#     ranks the tag-array / probe / run-loop split the same way perf does.
#
# The table is printed to stdout and saved to $BUILD_DIR/profile-report.txt
# so before/after captures can be diffed; the summarized before/after for
# the current fast-path work lives in DESIGN.md ("Profiling the fast
# path").
#
#   BUILD_DIR=DIR     build directory (default build-profile)
#   TOP=N             rows of the symbol table to keep (default 15)
#   REDHIP_NATIVE=0   portable ISA instead of -march=native
#
# Usage: scripts/profile.sh [--refs=N] [--scale=N] [extra bench_speed flags]
# Defaults to --refs=400000 --scale=8 — long enough for the tag arrays to
# reach steady-state occupancy, short enough for a minutes-scale turnaround.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-profile}
TOP=${TOP:-15}
NATIVE=${REDHIP_NATIVE:-1}

native_flag=OFF
[[ "$NATIVE" == 1 ]] && native_flag=ON

fwd=(--refs=400000 --scale=8)
fwd+=("$@")
bench_args=(--skip-reference --skip-parallel --skip-ckpt
            --out="$BUILD_DIR/profile-bench.json" "${fwd[@]}")

report="$BUILD_DIR/profile-report.txt"

build() {
  # $1: extra compiler/linker flags
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DREDHIP_NATIVE=$native_flag -DCMAKE_CXX_FLAGS="$1" \
        -DCMAKE_EXE_LINKER_FLAGS="$1" >/dev/null
  cmake --build "$BUILD_DIR" --target bench_speed -j "$(nproc)"
}

mkdir -p "$BUILD_DIR"

if command -v perf >/dev/null 2>&1 &&
    perf record -o /dev/null -- true >/dev/null 2>&1; then
  echo "== profiling with perf record (cycles, call graph) =="
  build ""
  perf record -o "$BUILD_DIR/perf.data" -g --call-graph=dwarf \
      -- "$BUILD_DIR/bench/bench_speed" "${bench_args[@]}"
  {
    echo "# perf report — top $TOP symbols (self overhead)"
    perf report -i "$BUILD_DIR/perf.data" --stdio --no-children \
        --percent-limit 0.5 2>/dev/null | grep -v '^#' | grep -v '^$' \
        | head -n "$TOP"
  } | tee "$report"
else
  echo "== perf unavailable; falling back to gprof (-pg build) =="
  build "-pg"
  (cd "$BUILD_DIR" && "./bench/bench_speed" \
      "${bench_args[@]/#--out=$BUILD_DIR\//--out=}")
  {
    echo "# gprof flat profile — top $TOP symbols (self time)"
    gprof -b -p "$BUILD_DIR/bench/bench_speed" "$BUILD_DIR/gmon.out" \
        | head -n "$((TOP + 5))"
  } | tee "$report"
fi

echo
echo "full table: $report"
