#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from a bench_output.txt run.

Usage: python3 scripts/fill_experiments.py [bench_output.txt] [EXPERIMENTS.md]

The bench binaries print paper-style tables with an "average" row; this
script lifts the averages into the {PLACEHOLDER} slots of EXPERIMENTS.md so
the document always reflects the committed output files.
"""
import re
import sys


def section(text, name):
    """Return the output block of one bench binary."""
    m = re.search(r"=+ .*/" + name + r"\n(.*?)(?:\n=+ |\Z)", text, re.S)
    return m.group(1) if m else ""


def avg_row(block, table_hint=None):
    """Cells of the last 'average' row (optionally after a hint line)."""
    if table_hint:
        pos = block.find(table_hint)
        if pos >= 0:
            block = block[pos:]
    rows = [l for l in block.splitlines() if l.startswith("average")]
    if not rows:
        return []
    return rows[0].split()[1:]


def main():
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    md_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    text = open(bench_path).read()
    md = open(md_path).read()
    subs = {}

    motiv = avg_row(section(text, "motivation_energy_split"))
    if motiv:
        subs["MOTIV_DEEP"] = motiv[-1]

    f6 = avg_row(section(text, "fig06_performance"))
    if len(f6) == 4:
        subs.update(zip(["F6_ORACLE", "F6_CBF", "F6_PHASED", "F6_REDHIP"], f6))

    b7 = section(text, "fig07_dynamic_energy")
    f7 = avg_row(b7)
    if len(f7) == 4:
        subs.update(zip(["F7_ORACLE", "F7_CBF", "F7_PHASED", "F7_REDHIP"], f7))
    m = re.search(r"overhead: ([\d.]+%)", b7)
    if m:
        subs["F7_OVERHEAD"] = m.group(1)

    b8 = section(text, "fig08_perf_energy_metric")
    f8 = avg_row(b8)
    if len(f8) == 3:
        subs.update(zip(["F8_CBF", "F8_PHASED", "F8_REDHIP"], f8))
    m = re.search(r"total energy saving: ([\d.]+%)", b8)
    if m:
        subs["F8_TOTAL_SAVING"] = m.group(1)

    b9 = section(text, "fig09_10_hit_rates")
    m = re.search(r"L2 (\+?[-\d.]+%)\s+L3 (\+?[-\d.]+%)\s+L4 (\+?[-\d.]+%)", b9)
    if m:
        subs["F9_L2"], subs["F9_L3"], subs["F9_L4"] = m.groups()

    f11 = avg_row(section(text, "fig11_table_size"))
    if len(f11) == 5:
        subs.update(zip(["F11_2M", "F11_512K", "F11_256K", "F11_128K",
                         "F11_64K"], f11))

    f12 = avg_row(section(text, "fig12_recal_frequency"))
    if len(f12) == 7:
        subs.update(zip(["F12_1", "F12_10K", "F12_100K", "F12_1M", "F12_10M",
                         "F12_100M", "F12_INF"], f12))

    f13 = avg_row(section(text, "fig13_inclusion_policy"))
    if len(f13) == 3:
        subs.update(zip(["F13_INCL", "F13_HYBRID", "F13_EXCL"], f13))

    b14 = section(text, "fig14_15_prefetch")
    perf = avg_row(b14, "Figure 14")
    energy = avg_row(b14, "Figure 15")
    if len(perf) == 3:
        subs.update(zip(["F14_SP", "F14_RED", "F14_BOTH"], perf))
    if len(energy) == 3:
        subs.update(zip(["F15_SP", "F15_RED", "F15_BOTH"], energy))

    missing = set(re.findall(r"\{([A-Z0-9_]+)\}", md)) - set(subs)
    for key, val in subs.items():
        md = md.replace("{" + key + "}", val)
    open(md_path, "w").write(md)
    print(f"substituted {len(subs)} values; unresolved: {sorted(missing)}")


if __name__ == "__main__":
    main()
