#!/usr/bin/env bash
# Build the tracked speed benchmark and measure end-to-end simulation speed,
# writing BENCH_speed.json at the repo root.
#
# Three engines are measured on every invocation: fast, the in-binary
# reference engine (the original run loop, kept alive as the bit-identical
# oracle), and the parallel bound-weave engine.  Each leg runs REPEAT times
# and the JSON reports best-of-N alongside median-of-N — both for the
# aggregate matrix wall time and per run: every runs[] row carries
# host_seconds (min) / host_seconds_median and the matching mrefs_per_s /
# mrefs_per_s_median pair.  Optionally a
# pre-PR wall time measured from the seed binary on the same machine is
# passed via PRE_PR_WALL (seconds); the checked-in BENCH_speed.json's
# provenance is recorded in its own config block (cpu model, core count,
# compiler flags — filled in below).
#
# Cells run sequentially (--jobs=1) so per-cell wall times are clean and
# the parallel engine's intra-run threads (--threads, default: all cores)
# are the only parallelism — cell-level and run-level pools would otherwise
# nest and oversubscribe the host, making both numbers meaningless.
#
# Because this is a same-host measurement, the build is tuned for the host:
# -march=native plus a two-pass profile-guided build (instrument, run a
# short training matrix, rebuild with the profile).  Together they are worth
# ~25% on the measurement machine.  Both are env-switchable so CI smoke runs
# can use a plain Release build:
#
#   REDHIP_PGO=0      skip the PGO double build (single Release build)
#   REDHIP_NATIVE=0   portable ISA instead of -march=native
#   TRAIN_REFS=N      refs/core for the PGO training matrix (default 200000
#                     — enough for the tag arrays to reach steady-state
#                     occupancy, so the eviction branches are weighted the
#                     way the real measurement exercises them)
#   BUILD_DIR=DIR     build directory (default build-bench)
#   PRE_PR_WALL=SECS  optional external baseline wall time
#   PRE_PR_NOTE=TEXT  provenance note for that baseline (defaults to the
#                     seed-commit engine measured on this host)
#   REPEAT=N          measurements per engine (default 3; the JSON carries
#                     best and median)
#   THREADS=N         parallel-engine worker threads (default 0 = all cores)
#   JOBS=N            concurrent matrix cells (default 1; see above)
#
# Usage: scripts/bench_speed.sh [--quick] [--refs=N] [--scale=N] ...
#   --quick: smoke configuration — refs=100k, single repeat (pair with
#   REDHIP_PGO=0 for a fast turnaround).  Extra flags are forwarded to the
#   bench_speed binary.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
PGO=${REDHIP_PGO:-1}
NATIVE=${REDHIP_NATIVE:-1}
TRAIN_REFS=${TRAIN_REFS:-200000}
REPEAT=${REPEAT:-3}
THREADS=${THREADS:-0}
JOBS=${JOBS:-1}

quick=0
fwd=()
for arg in "$@"; do
  if [[ "$arg" == "--quick" ]]; then quick=1; else fwd+=("$arg"); fi
done
if [[ "$quick" == 1 ]]; then
  REPEAT=1
  fwd=(--refs=100000 "${fwd[@]}")
fi

native_flag=OFF
[[ "$NATIVE" == 1 ]] && native_flag=ON

configure_and_build() {
  # $1: extra compiler/linker flags (empty for a plain build)
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
        -DREDHIP_NATIVE=$native_flag -DCMAKE_CXX_FLAGS="$1" >/dev/null
  cmake --build "$BUILD_DIR" --target bench_speed -j "$(nproc)"
}

if [[ "$PGO" == 1 ]]; then
  prof_dir=$PWD/$BUILD_DIR/pgo-profiles
  rm -rf "$prof_dir"
  echo "== PGO pass 1/2: instrumented build + training matrix =="
  configure_and_build "-fprofile-generate=$prof_dir"
  mkdir -p "$prof_dir"
  # Train on the same matrix shape the measurement runs (every workload,
  # all engines), just with few references per core.
  "$BUILD_DIR/bench/bench_speed" --refs="$TRAIN_REFS" --scale=8 --jobs=1 \
      --out="$prof_dir/train.json" >/dev/null
  echo "== PGO pass 2/2: optimized rebuild =="
  configure_and_build "-fprofile-use=$prof_dir -fprofile-correction"
else
  configure_and_build ""
fi

# Host metadata for the config block: this JSON is committed, so it must
# say what machine and toolchain produced its numbers.
cpu_model=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo \
              2>/dev/null || true)
[[ -n "$cpu_model" ]] || cpu_model="unknown ($(uname -m))"
flags="-O3"
[[ "$NATIVE" == 1 ]] && flags="$flags -march=native"
[[ "$PGO" == 1 ]] && flags="$flags -fprofile-use"

args=(--out=BENCH_speed.json
      --jobs="$JOBS"
      --threads="$THREADS"
      --repeat="$REPEAT"
      --cpu-model="$cpu_model"
      --compiler-flags="$flags")
if [[ -n "${PRE_PR_WALL:-}" ]]; then
  args+=(--pre-pr-wall="$PRE_PR_WALL"
         --pre-pr-note="${PRE_PR_NOTE:-pre-fast-path engine (seed commit 28de692), same host, base+redhip matrix}")
fi

"$BUILD_DIR/bench/bench_speed" "${args[@]}" "${fwd[@]}"
