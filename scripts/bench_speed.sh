#!/usr/bin/env bash
# Build the tracked speed benchmark and measure end-to-end simulation speed,
# writing BENCH_speed.json at the repo root.
#
# The fast engine is compared against two baselines:
#   - the in-binary reference engine (the original run loop, kept alive as
#     the bit-identical oracle), measured on every invocation;
#   - optionally a pre-PR wall time measured from the seed binary on the
#     same machine, passed via PRE_PR_WALL (seconds).  The checked-in
#     BENCH_speed.json was produced with PRE_PR_WALL=29.85, the wall time
#     of the pre-fast-path engine (commit 28de692) on the same host and
#     matrix (base+redhip x 11 workloads, refs=1M, scale=8).
#
# Because this is a same-host measurement, the build is tuned for the host:
# -march=native plus a two-pass profile-guided build (instrument, run a
# short training matrix, rebuild with the profile).  Together they are worth
# ~25% on the measurement machine.  Both are env-switchable so CI smoke runs
# can use a plain Release build:
#
#   REDHIP_PGO=0      skip the PGO double build (single Release build)
#   REDHIP_NATIVE=0   portable ISA instead of -march=native
#   TRAIN_REFS=N      refs/core for the PGO training matrix (default 200000
#                     — enough for the tag arrays to reach steady-state
#                     occupancy, so the eviction branches are weighted the
#                     way the real measurement exercises them)
#   BUILD_DIR=DIR     build directory (default build-bench)
#   PRE_PR_WALL=SECS  optional external baseline wall time
#
# Usage: scripts/bench_speed.sh [--refs=N] [--scale=N] [--jobs=N] ...
#   Extra flags are forwarded to the bench_speed binary.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
PGO=${REDHIP_PGO:-1}
NATIVE=${REDHIP_NATIVE:-1}
TRAIN_REFS=${TRAIN_REFS:-200000}

native_flag=OFF
[[ "$NATIVE" == 1 ]] && native_flag=ON

configure_and_build() {
  # $1: extra compiler/linker flags (empty for a plain build)
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
        -DREDHIP_NATIVE=$native_flag -DCMAKE_CXX_FLAGS="$1" >/dev/null
  cmake --build "$BUILD_DIR" --target bench_speed -j "$(nproc)"
}

if [[ "$PGO" == 1 ]]; then
  prof_dir=$PWD/$BUILD_DIR/pgo-profiles
  rm -rf "$prof_dir"
  echo "== PGO pass 1/2: instrumented build + training matrix =="
  configure_and_build "-fprofile-generate=$prof_dir"
  mkdir -p "$prof_dir"
  # Train on the same matrix shape the measurement runs (every workload,
  # both engines), just with few references per core.
  "$BUILD_DIR/bench/bench_speed" --refs="$TRAIN_REFS" --scale=8 \
      --out="$prof_dir/train.json" >/dev/null
  echo "== PGO pass 2/2: optimized rebuild =="
  configure_and_build "-fprofile-use=$prof_dir -fprofile-correction"
else
  configure_and_build ""
fi

args=(--out=BENCH_speed.json)
if [[ -n "${PRE_PR_WALL:-}" ]]; then
  args+=(--pre-pr-wall="$PRE_PR_WALL"
         --pre-pr-note="pre-fast-path engine (seed commit 28de692), same host, base+redhip matrix")
fi

"$BUILD_DIR/bench/bench_speed" "${args[@]}" "$@"
