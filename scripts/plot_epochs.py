#!/usr/bin/env python3
"""Plot per-epoch series from the ReDHiP observability layer.

Reads either input format the simulator emits (they share one schema, see
DESIGN.md "Observability"):

  * a JSONL event trace (``--trace-events`` / ``[obs] trace_path``): one
    object per line, epoch samples are the lines with ``"ev": "epoch"``;
  * a ``json_report`` document: one object with an ``"epochs"`` array.

With no extra dependencies it renders ASCII charts to stdout; if
matplotlib happens to be installed, ``--png out.png`` writes a figure
instead.  Only the Python standard library is required.

Usage:
  plot_epochs.py TRACE.jsonl
  plot_epochs.py report.json --series fp,pt_occupancy --height 10
  plot_epochs.py TRACE.jsonl --png epochs.png
"""

import argparse
import json
import sys

# Numeric per-epoch fields, in the schema's order.
FIELDS = [
    "refs", "l1_accesses", "l1_misses", "lookups", "predicted_absent",
    "predicted_present", "tp", "fp", "tn", "fn", "recals", "pt_occupancy",
]
DEFAULT_SERIES = ["fp", "pt_occupancy", "l1_misses"]


def load_epochs(path):
    """Return the list of epoch dicts from a JSONL trace or a json_report."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    stripped = text.strip()
    if not stripped:
        raise SystemExit(f"{path}: empty file")
    # A json_report is one JSON object spanning the whole file.
    try:
        doc = json.loads(stripped)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "ev" not in doc:
        epochs = doc.get("epochs")
        if not epochs:
            raise SystemExit(
                f"{path}: no 'epochs' array — was the run made with "
                "[obs] enabled?")
        return epochs
    # Otherwise: JSONL, one event object per line.
    epochs = []
    for n, line in enumerate(stripped.splitlines(), 1):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}:{n}: not JSON: {e}")
        if ev.get("ev") == "epoch":
            epochs.append(ev)
    if not epochs:
        raise SystemExit(f"{path}: no \"ev\":\"epoch\" lines in the trace")
    return epochs


def downsample(values, width):
    """Average consecutive samples down to at most `width` points."""
    if len(values) <= width:
        return values
    out = []
    n = len(values)
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def ascii_chart(name, values, width, height):
    """One column-bar chart, matplotlib-free."""
    data = downsample([float(v) for v in values], width)
    vmax = max(data)
    vmin = min(data)
    lines = [f"{name}  (epochs: {len(values)}, min {vmin:g}, max {vmax:g})"]
    if vmax == vmin:
        lines.append("  " + "-" * len(data) + f"  flat at {vmax:g}")
        return "\n".join(lines)
    for row in range(height, 0, -1):
        cut = vmin + (vmax - vmin) * (row - 0.5) / height
        cells = "".join("█" if v >= cut else " " for v in data)
        label = f"{vmax:>10g} |" if row == height else (
            f"{vmin:>10g} |" if row == 1 else "           |")
        lines.append(label + cells)
    lines.append("           +" + "-" * len(data))
    lines.append(f"            epoch 0 .. {len(values) - 1}")
    return "\n".join(lines)


def plot_png(series, epochs, out_path):
    import matplotlib  # noqa: F401 — probed by main() before calling

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(len(series), 1, sharex=True,
                             figsize=(8, 2.2 * len(series)), squeeze=False)
    xs = [e.get("index", i) for i, e in enumerate(epochs)]
    for ax, name in zip((a for row in axes for a in row), series):
        ax.plot(xs, [e.get(name, 0) for e in epochs], drawstyle="steps-post")
        ax.set_ylabel(name)
        ax.grid(True, alpha=0.3)
    axes[-1][0].set_xlabel("epoch")
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"wrote {out_path}")


def main():
    ap = argparse.ArgumentParser(
        description="Plot per-epoch metric series from a ReDHiP event "
                    "trace (JSONL) or json_report.")
    ap.add_argument("trace", help="JSONL event trace or json_report file")
    ap.add_argument("--series", default=",".join(DEFAULT_SERIES),
                    help="comma-separated fields to plot (default: "
                         f"{','.join(DEFAULT_SERIES)}; choices: "
                         f"{','.join(FIELDS)})")
    ap.add_argument("--width", type=int, default=72,
                    help="ASCII chart width in epochs/columns")
    ap.add_argument("--height", type=int, default=8,
                    help="ASCII chart height in rows")
    ap.add_argument("--png", metavar="OUT",
                    help="write a matplotlib figure instead of ASCII "
                         "(requires matplotlib)")
    args = ap.parse_args()

    series = [s.strip() for s in args.series.split(",") if s.strip()]
    for s in series:
        if s not in FIELDS:
            ap.error(f"unknown series {s!r}; choices: {', '.join(FIELDS)}")

    epochs = load_epochs(args.trace)

    if args.png:
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            raise SystemExit(
                "--png needs matplotlib, which is not installed; drop "
                "--png for the ASCII charts (stdlib only)")
        plot_png(series, epochs, args.png)
        return

    charts = [
        ascii_chart(name, [e.get(name, 0) for e in epochs],
                    args.width, args.height)
        for name in series
    ]
    print("\n\n".join(charts))


if __name__ == "__main__":
    sys.exit(main())
