// table1_config — regenerates the paper's Table I from the cacti_lite model
// and the default HierarchyConfig, confirming the simulated machine is the
// published one.
#include <cstdio>

#include "common/cli.h"
#include "energy/cacti_lite.h"
#include "harness/report.h"
#include "sim/config.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  const std::uint32_t scale =
      static_cast<std::uint32_t>(opts.get_int("scale", 1));
  const HierarchyConfig c = HierarchyConfig::scaled(scale, Scheme::kRedhip);

  std::printf("Table I — architecture parameters (scale 1/%u)\n", scale);
  std::printf("%u-core, %.1fGHz\n\n", c.cores, c.freq_ghz);

  TablePrinter t({"level", "size", "assoc", "tag delay", "data delay",
                  "tag nJ", "data nJ", "leak W"});
  const char* names[] = {"L1", "L2", "L3", "L4"};
  for (std::size_t i = 0; i < c.levels.size(); ++i) {
    const auto& lvl = c.levels[i];
    t.add_row({names[i],
               std::to_string(lvl.geom.size_bytes >> 10) + "K",
               std::to_string(lvl.geom.ways) + "-way",
               std::to_string(lvl.energy.tag_delay),
               std::to_string(lvl.energy.data_delay),
               fixed(lvl.energy.tag_energy_nj, 4),
               fixed(lvl.energy.data_energy_nj, 4),
               fixed(lvl.energy.leakage_w, 4)});
  }
  t.add_row({"PT", std::to_string(c.redhip.table_bits / 8 / 1024) + "K",
             "direct", "-", std::to_string(c.redhip.energy.access_delay),
             "-", fixed(c.redhip.energy.access_energy_nj, 4),
             fixed(c.redhip.energy.leakage_w, 4)});
  if (opts.get_bool("csv", false)) {
    t.print_csv();
  } else {
    t.print();
  }

  std::printf(
      "\nPT: %llu 1-bit entries (p=%u), wire delay %llu cycles, "
      "recalibration every %llu L1 misses across %u banks\n",
      static_cast<unsigned long long>(c.redhip.table_bits),
      c.redhip.index_bits(),
      static_cast<unsigned long long>(c.redhip.energy.wire_delay),
      static_cast<unsigned long long>(c.redhip.recal_interval_l1_misses),
      c.redhip.banks);
  std::printf("PT area overhead vs LLC: %.2f%%\n",
              100.0 * static_cast<double>(c.redhip.table_bits / 8) /
                  static_cast<double>(c.llc().geom.size_bytes));
  std::printf("CBF at the same budget: 2^%u x %u-bit counters (%lluKB)\n",
              c.cbf.index_bits, c.cbf.counter_bits,
              static_cast<unsigned long long>(c.cbf.storage_bits() / 8 / 1024));
  return 0;
}
