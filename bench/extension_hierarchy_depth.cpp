// Extension — ReDHiP's benefit as a function of hierarchy depth.
//
// The paper's motivation is a trend: hierarchies are getting deeper (Fig. 1
// charts L1..L4 appearing over 25 years), and every added level makes a
// doomed walk more expensive.  This bench quantifies that: the same
// workloads on 2-, 3-, 4- (Table I) and 5-level machines, Base vs ReDHiP vs
// Oracle, with the PT re-derived at 0.78% of whatever the LLC is.
//
// Expected: both the walk latency a bypass saves and the lookup energy it
// avoids grow with depth, so ReDHiP's advantage widens — the 5-level column
// extrapolates the paper's own argument one step past its evaluation.
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"
#include "sweep/sweep.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  ExperimentOptions opts = ExperimentOptions::parse(cli);
  // Workload generation is depth-independent; the hierarchy is swapped
  // underneath via the tweak hook.
  std::printf(
      "Extension — speedup and dynamic-energy saving vs hierarchy depth\n");
  TablePrinter t({"depth", "Oracle speedup", "ReDHiP speedup",
                  "ReDHiP dyn saving", "walk latency/offchip miss"});

  SweepStats total_stats;
  for (std::uint32_t depth = 2; depth <= 5; ++depth) {
    const std::uint32_t scale = opts.scale;
    auto reshape = [depth, scale](HierarchyConfig& c) {
      const Scheme scheme = c.scheme;
      c = HierarchyConfig::with_depth(depth, scale, scheme);
    };
    const std::vector<SchemeColumn> columns = {
        {"Base", Scheme::kBase, InclusionPolicy::kInclusive, false, reshape},
        {"ReDHiP", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
         reshape},
        {"Oracle", Scheme::kOracle, InclusionPolicy::kInclusive, false,
         reshape},
    };
    SweepStats sweep_stats;
    const auto results = sweep_matrix(opts, columns, &sweep_stats);
    total_stats.cells += sweep_stats.cells;
    total_stats.cache_hits += sweep_stats.cache_hits;
    total_stats.simulated += sweep_stats.simulated;
    total_stats.wall_seconds += sweep_stats.wall_seconds;

    std::vector<double> red_speed, oracle_speed, red_save;
    double walk = 0.0;
    for (std::size_t b = 0; b < opts.benches.size(); ++b) {
      const Comparison red = compare(results[b][0], results[b][1]);
      const Comparison oracle = compare(results[b][0], results[b][2]);
      red_speed.push_back(red.speedup);
      oracle_speed.push_back(oracle.speedup);
      red_save.push_back(1.0 - red.dyn_energy_ratio);
    }
    // The walk a bypass skips: every level below L1, at miss (tag) delay.
    const HierarchyConfig shape =
        HierarchyConfig::with_depth(depth, opts.scale, Scheme::kBase);
    for (std::size_t lvl = 1; lvl < shape.levels.size(); ++lvl) {
      const auto& e = shape.levels[lvl].energy;
      walk += static_cast<double>(e.tag_delay > 0 ? e.tag_delay
                                                  : e.data_delay);
    }
    t.add_row({std::to_string(depth), pct_delta(mean(oracle_speed)),
               pct_delta(mean(red_speed)), pct(mean(red_save)),
               fixed(walk, 0) + " cyc"});
  }
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\nexpected: monotone growth — the deeper the hierarchy, the more a "
      "skipped walk is worth\n");
  if (!opts.cache_dir.empty()) {
    std::fprintf(stderr, "[sweep] cells=%zu cache_hits=%zu simulated=%zu\n",
                 total_stats.cells, total_stats.cache_hits,
                 total_stats.simulated);
  }
  return 0;
}
