// bench_speed — end-to-end simulation speed benchmark (BENCH_speed.json).
//
// Runs the base + redhip columns over the full workload list twice — once
// on the fast engine (batched traces, specialized run loops, heap
// scheduler) and once on the reference engine (the original scalar loop,
// kept as the bit-identical oracle) — and reports per-run and aggregate
// host throughput in simulated Mrefs/s.  Every (workload, column) cell is
// checked for statistically identical results across the two engines, so
// the speed number is only ever reported for a correct engine.
//
// `--pre-pr-wall <seconds>` additionally records a speedup against an
// externally measured wall time (scripts/bench_speed.sh passes the wall
// time of the pre-fast-path engine measured on the same machine).
//
// Usage: bench_speed [--scale=8] [--refs=1000000] [--seed=42] [--jobs=N]
//                    [--out=BENCH_speed.json] [--pre-pr-wall=SECONDS]
//                    [--pre-pr-note=TEXT] [--skip-reference]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "harness/experiment.h"
#include "sim/stats.h"

using namespace redhip;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void append_engine_block(std::ostringstream& os, const char* name,
                         const ExperimentOptions& opts,
                         const std::vector<SchemeColumn>& columns,
                         const std::vector<std::vector<SimResult>>& results,
                         const MatrixStats& stats) {
  os << "  \"" << name << "\": {\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"matrix_wall_seconds\": %.3f,\n"
                "    \"total_refs\": %llu,\n"
                "    \"mrefs_per_s\": %.3f,\n",
                stats.wall_seconds,
                static_cast<unsigned long long>(stats.total_refs),
                stats.mrefs_per_s);
  os << buf;
  os << "    \"runs\": [\n";
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const SimResult& r = results[b][c];
      std::snprintf(buf, sizeof(buf),
                    "      {\"bench\": \"%s\", \"column\": \"%s\", "
                    "\"host_seconds\": %.3f, \"mrefs_per_s\": %.3f}%s\n",
                    to_string(opts.benches[b]).c_str(),
                    columns[c].label.c_str(), r.host_seconds,
                    r.host_mrefs_per_s,
                    (b + 1 == opts.benches.size() && c + 1 == columns.size())
                        ? ""
                        : ",");
      os << buf;
    }
  }
  os << "    ]\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  ExperimentOptions opts = ExperimentOptions::parse(cli);
  const std::string out_path = cli.get("out", "BENCH_speed.json");
  const double pre_pr_wall = cli.get_double("pre-pr-wall", 0.0);
  const std::string pre_pr_note = cli.get("pre-pr-note", "");
  const bool skip_reference = cli.get_bool("skip-reference", false);

  std::vector<SchemeColumn> columns(2);
  columns[0].label = "base";
  columns[0].scheme = Scheme::kBase;
  columns[1].label = "redhip";
  columns[1].scheme = Scheme::kRedhip;

  std::printf("bench_speed: scale=%u refs=%llu seed=%llu benches=%zu\n",
              opts.scale, static_cast<unsigned long long>(opts.refs_per_core),
              static_cast<unsigned long long>(opts.seed),
              opts.benches.size());

  opts.engine = SimEngine::kFast;
  MatrixStats fast_stats;
  const auto fast = run_matrix(opts, columns, &fast_stats);
  std::printf("fast engine:      %.3fs  (%.3f Mrefs/s)\n",
              fast_stats.wall_seconds, fast_stats.mrefs_per_s);

  std::vector<std::vector<SimResult>> ref;
  MatrixStats ref_stats;
  if (!skip_reference) {
    opts.engine = SimEngine::kReference;
    ref = run_matrix(opts, columns, &ref_stats);
    std::printf("reference engine: %.3fs  (%.3f Mrefs/s)\n",
                ref_stats.wall_seconds, ref_stats.mrefs_per_s);
    // The speed claim is only meaningful if the fast engine computes the
    // same simulation — verify every cell.
    for (std::size_t b = 0; b < opts.benches.size(); ++b) {
      for (std::size_t c = 0; c < columns.size(); ++c) {
        if (!stats_identical(fast[b][c], ref[b][c])) {
          std::fprintf(stderr,
                       "FAIL: fast/reference results differ for %s/%s\n",
                       to_string(opts.benches[b]).c_str(),
                       columns[c].label.c_str());
          return 1;
        }
      }
    }
    std::printf("engines bit-identical across all %zu runs\n",
                opts.benches.size() * columns.size());
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"config\": {\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    \"scale\": %u,\n    \"refs_per_core\": %llu,\n"
                "    \"seed\": %llu,\n    \"jobs\": %zu,\n",
                opts.scale,
                static_cast<unsigned long long>(opts.refs_per_core),
                static_cast<unsigned long long>(opts.seed), opts.jobs);
  os << buf;
  os << "    \"columns\": [";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    os << (c ? ", " : "") << '"' << json_escape(columns[c].label) << '"';
  }
  os << "],\n    \"benches\": [";
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    os << (b ? ", " : "") << '"' << to_string(opts.benches[b]) << '"';
  }
  os << "]\n  },\n";
  append_engine_block(os, "fast_engine", opts, columns, fast, fast_stats);
  if (!skip_reference) {
    os << ",\n";
    append_engine_block(os, "reference_engine", opts, columns, ref,
                        ref_stats);
    std::snprintf(buf, sizeof(buf), ",\n  \"speedup_vs_reference\": %.3f",
                  fast_stats.wall_seconds > 0.0
                      ? ref_stats.wall_seconds / fast_stats.wall_seconds
                      : 0.0);
    os << buf;
  }
  if (pre_pr_wall > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"pre_pr\": {\n    \"wall_seconds\": %.3f,\n"
                  "    \"speedup_vs_pre_pr\": %.3f,\n",
                  pre_pr_wall,
                  fast_stats.wall_seconds > 0.0
                      ? pre_pr_wall / fast_stats.wall_seconds
                      : 0.0);
    os << buf;
    os << "    \"note\": \"" << json_escape(pre_pr_note) << "\"\n  }";
  }
  os << "\n}\n";

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  f << os.str();
  std::printf("wrote %s\n", out_path.c_str());
  if (pre_pr_wall > 0.0 && fast_stats.wall_seconds > 0.0) {
    std::printf("speedup vs pre-PR engine: %.2fx\n",
                pre_pr_wall / fast_stats.wall_seconds);
  }
  return 0;
}
