// bench_speed — end-to-end simulation speed benchmark (BENCH_speed.json).
//
// Runs the base + redhip columns over the full workload list on three
// engines — fast (batched traces, specialized run loops, heap scheduler),
// reference (the original scalar loop, kept as the bit-identical oracle)
// and parallel (the bound-weave engine, src/sim/parallel.cc) — and reports
// per-run and aggregate host throughput in simulated Mrefs/s.  Every
// (workload, column) cell is checked for statistically identical results
// across all engines, so a speed number is only ever reported for a
// correct engine.
//
// `--repeat=N` measures each engine N times and reports best-of-N (the
// headline `matrix_wall_seconds`: least-interference estimate) alongside
// median-of-N (`matrix_wall_seconds_median`: typical-run estimate, robust
// to one quiet outlier in either direction).  Results are identical across
// repeats by determinism; only wall time varies.  The same min/median pair
// is carried per run: every `runs[]` row reports `host_seconds` (min over
// repeats) next to `host_seconds_median`, and the matching `mrefs_per_s` /
// `mrefs_per_s_median`, so one noisy cell cannot masquerade as a per-bench
// regression.
//
// `--pre-pr-wall <seconds>` additionally records a speedup against an
// externally measured wall time (scripts/bench_speed.sh passes the wall
// time of the pre-fast-path engine measured on the same machine).
//
// `--cpu-model` / `--compiler-flags` land verbatim in the config block so
// a committed BENCH_speed.json names the host that produced it
// (scripts/bench_speed.sh fills both; the compiler version itself is baked
// in at build time).
//
// A fourth leg re-measures the fast engine with periodic checkpointing on
// (src/ckpt, interval from --ckpt-interval) and reports the paired
// CPU-time overhead as `ckpt.overhead_pct` — the crash-safety tax,
// budgeted at <= 2%.
// Checkpointing must not change a single statistic, so the leg is also
// checked cell-by-cell against the uninstrumented fast run.
//
// Usage: bench_speed [--scale=8] [--refs=1000000] [--seed=42] [--jobs=N]
//                    [--threads=N] [--repeat=N] [--out=BENCH_speed.json]
//                    [--cpu-model=TEXT] [--compiler-flags=TEXT]
//                    [--pre-pr-wall=SECONDS] [--pre-pr-note=TEXT]
//                    [--skip-reference] [--skip-parallel] [--skip-ckpt]
//                    [--ckpt-interval=REFS]
#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/file_io.h"
#include "harness/experiment.h"
#include "sim/stats.h"

using namespace redhip;

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// One engine measured --repeat times: the first repeat's results (for the
// identity checks; repeats are bit-identical) plus every repeat's wall
// clock — aggregate and per cell, so `runs[]` can report min/median pairs.
struct EngineLeg {
  std::vector<std::vector<SimResult>> results;
  std::vector<MatrixStats> reps;
  // cell_seconds[bench][column][repeat]: per-cell host wall clock of every
  // repeat.  The SimResults themselves are bit-identical across repeats, so
  // only the timing is worth keeping more than once.
  std::vector<std::vector<std::vector<double>>> cell_seconds;

  const MatrixStats& best() const {
    std::size_t bi = 0;
    for (std::size_t i = 1; i < reps.size(); ++i) {
      if (reps[i].wall_seconds < reps[bi].wall_seconds) bi = i;
    }
    return reps[bi];
  }
  double median_wall() const {
    std::vector<double> w;
    for (const MatrixStats& s : reps) w.push_back(s.wall_seconds);
    return median_of(std::move(w));
  }
};

EngineLeg measure(ExperimentOptions opts, SimEngine engine,
                  const std::vector<SchemeColumn>& columns,
                  std::uint32_t repeat, const char* name) {
  opts.engine = engine;
  EngineLeg leg;
  for (std::uint32_t r = 0; r < repeat; ++r) {
    MatrixStats stats;
    auto results = run_matrix(opts, columns, &stats);
    if (r == 0) leg.cell_seconds.resize(results.size());
    for (std::size_t b = 0; b < results.size(); ++b) {
      if (r == 0) leg.cell_seconds[b].resize(results[b].size());
      for (std::size_t c = 0; c < results[b].size(); ++c) {
        leg.cell_seconds[b][c].push_back(results[b][c].host_seconds);
      }
    }
    if (r == 0) leg.results = std::move(results);
    leg.reps.push_back(stats);
  }
  std::printf("%-17s %.3fs best / %.3fs median of %u  (%.3f Mrefs/s)\n",
              name, leg.best().wall_seconds, leg.median_wall(), repeat,
              leg.best().mrefs_per_s);
  return leg;
}

bool check_identical(const ExperimentOptions& opts,
                     const std::vector<SchemeColumn>& columns,
                     const EngineLeg& a, const EngineLeg& b,
                     const char* a_name, const char* b_name) {
  for (std::size_t bi = 0; bi < opts.benches.size(); ++bi) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (!stats_identical(a.results[bi][c], b.results[bi][c])) {
        std::fprintf(stderr, "FAIL: %s/%s results differ for %s/%s\n",
                     a_name, b_name, to_string(opts.benches[bi]).c_str(),
                     columns[c].label.c_str());
        return false;
      }
    }
  }
  return true;
}

void append_engine_block(std::ostringstream& os, const char* name,
                         const ExperimentOptions& opts,
                         const std::vector<SchemeColumn>& columns,
                         const EngineLeg& leg) {
  const MatrixStats& best = leg.best();
  os << "  \"" << name << "\": {\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    \"matrix_wall_seconds\": %.3f,\n"
                "    \"matrix_wall_seconds_median\": %.3f,\n"
                "    \"repeats\": %zu,\n"
                "    \"total_refs\": %llu,\n"
                "    \"mrefs_per_s\": %.3f,\n",
                best.wall_seconds, leg.median_wall(), leg.reps.size(),
                static_cast<unsigned long long>(best.total_refs),
                best.mrefs_per_s);
  os << buf;
  os << "    \"runs\": [\n";
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const SimResult& r = leg.results[b][c];
      // Per-cell min/median over every repeat.  The simulated work of one
      // cell is repeat-invariant (Mrefs = rate * seconds of any repeat), so
      // the throughput pair is that work over the min/median wall clock.
      const std::vector<double>& secs = leg.cell_seconds[b][c];
      const double sec_min = *std::min_element(secs.begin(), secs.end());
      const double sec_med = median_of(secs);
      const double cell_mrefs = r.host_mrefs_per_s * r.host_seconds;
      std::snprintf(buf, sizeof(buf),
                    "      {\"bench\": \"%s\", \"column\": \"%s\", "
                    "\"host_seconds\": %.3f, \"host_seconds_median\": %.3f, "
                    "\"mrefs_per_s\": %.3f, \"mrefs_per_s_median\": %.3f}%s\n",
                    to_string(opts.benches[b]).c_str(),
                    columns[c].label.c_str(), sec_min, sec_med,
                    sec_min > 0.0 ? cell_mrefs / sec_min : 0.0,
                    sec_med > 0.0 ? cell_mrefs / sec_med : 0.0,
                    (b + 1 == opts.benches.size() && c + 1 == columns.size())
                        ? ""
                        : ",");
      os << buf;
    }
  }
  os << "    ]\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  ExperimentOptions opts = ExperimentOptions::parse(cli);
  const std::string out_path = cli.get("out", "BENCH_speed.json");
  const double pre_pr_wall = cli.get_double("pre-pr-wall", 0.0);
  const std::string pre_pr_note = cli.get("pre-pr-note", "");
  const bool skip_reference = cli.get_bool("skip-reference", false);
  const bool skip_parallel = cli.get_bool("skip-parallel", false);
  const bool skip_ckpt = cli.get_bool("skip-ckpt", false);
  // Default: one mid-run save per 8M-ref bench cell.  A save is a few ms
  // (bulk little-endian serialize + checksum + atomic write of a ~2MB file
  // at scale 8), so this lands well under the 2% budget while still
  // writing a real checkpoint in every cell; crank the interval down only
  // when a tighter kill -9 loss bound is worth measuring.
  const std::uint64_t ckpt_interval =
      cli.get_uint64("ckpt-interval", 4'000'000);
  const std::uint32_t repeat = static_cast<std::uint32_t>(
      std::max<long long>(1, cli.get_int("repeat", 1)));
  const std::string cpu_model = cli.get("cpu-model", "unknown");
  const std::string compiler_flags = cli.get("compiler-flags", "");

  std::vector<SchemeColumn> columns(2);
  columns[0].label = "base";
  columns[0].scheme = Scheme::kBase;
  columns[1].label = "redhip";
  columns[1].scheme = Scheme::kRedhip;

  std::printf(
      "bench_speed: scale=%u refs=%llu seed=%llu benches=%zu repeat=%u\n",
      opts.scale, static_cast<unsigned long long>(opts.refs_per_core),
      static_cast<unsigned long long>(opts.seed), opts.benches.size(),
      repeat);

  const EngineLeg fast =
      measure(opts, SimEngine::kFast, columns, repeat, "fast engine:");

  EngineLeg ref;
  if (!skip_reference) {
    ref = measure(opts, SimEngine::kReference, columns, repeat,
                  "reference engine:");
    // The speed claim is only meaningful if the fast engine computes the
    // same simulation — verify every cell.
    if (!check_identical(opts, columns, fast, ref, "fast", "reference")) {
      return 1;
    }
  }

  EngineLeg par;
  if (!skip_parallel) {
    par = measure(opts, SimEngine::kParallel, columns, repeat,
                  "parallel engine:");
    if (!check_identical(opts, columns, fast, par, "fast", "parallel")) {
      return 1;
    }
  }
  if (!skip_reference || !skip_parallel) {
    std::size_t engines = 1;
    if (!skip_reference) ++engines;
    if (!skip_parallel) ++engines;
    std::printf("engines bit-identical across all %zu runs (%zu engines)\n",
                opts.benches.size() * columns.size(), engines);
  }

  // Crash-safety tax: the fast engine again, now writing a checkpoint every
  // --ckpt-interval aggregate refs.  The directory is wiped before every
  // repeat so no repeat restores what the previous one wrote — each one
  // measures a full run including every checkpoint write.
  //
  // The overhead is a paired measurement on process CPU time: each repeat
  // runs a plain matrix and a checkpointing matrix back to back and keeps
  // the CPU-time ratio of that pair (median over repeats).  Wall clock is
  // useless for a ~1% effect on shared hosts — run-to-run scheduler and
  // frequency variance is an order of magnitude larger — while CPU time is
  // immune to steal time and still charges everything a checkpoint costs
  // (serialize, checksum, page-cache write).
  EngineLeg ckpt;
  double ckpt_overhead_pct = 0.0;
  if (!skip_ckpt) {
    const std::filesystem::path ckpt_dir =
        std::filesystem::temp_directory_path() / "redhip_bench_speed_ckpt";
    ExperimentOptions copts = opts;
    copts.engine = SimEngine::kFast;
    copts.ckpt_dir = ckpt_dir.string();
    copts.ckpt_interval = ckpt_interval;
    const auto cpu_now = [] {
      return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
    };
    std::vector<double> ratios;
    for (std::uint32_t r = 0; r < repeat; ++r) {
      const double p0 = cpu_now();
      run_matrix(opts, columns, nullptr);
      const double plain_cpu = cpu_now() - p0;
      std::filesystem::remove_all(ckpt_dir);
      MatrixStats stats;
      const double c0 = cpu_now();
      auto results = run_matrix(copts, columns, &stats);
      const double ckpt_cpu = cpu_now() - c0;
      if (r == 0) ckpt.results = std::move(results);
      ckpt.reps.push_back(stats);
      if (plain_cpu > 0.0) ratios.push_back(ckpt_cpu / plain_cpu);
    }
    std::filesystem::remove_all(ckpt_dir);
    if (!ratios.empty()) {
      std::sort(ratios.begin(), ratios.end());
      ckpt_overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
    }
    std::printf("fast + ckpt:      %.3fs best / %.3fs median of %u  "
                "(cpu overhead %+.2f%%, interval %llu refs)\n",
                ckpt.best().wall_seconds, ckpt.median_wall(), repeat,
                ckpt_overhead_pct,
                static_cast<unsigned long long>(ckpt_interval));
    // Checkpointing must be invisible in the statistics — a perturbed run
    // would make the overhead number (and the feature) meaningless.
    if (!check_identical(opts, columns, fast, ckpt, "fast", "fast+ckpt")) {
      return 1;
    }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"config\": {\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    \"scale\": %u,\n    \"refs_per_core\": %llu,\n"
                "    \"seed\": %llu,\n    \"jobs\": %zu,\n"
                "    \"threads\": %u,\n    \"repeat\": %u,\n",
                opts.scale,
                static_cast<unsigned long long>(opts.refs_per_core),
                static_cast<unsigned long long>(opts.seed), opts.jobs,
                opts.threads, repeat);
  os << buf;
  // Host metadata: the committed BENCH_speed.json must name the machine and
  // toolchain behind its numbers, or the numbers are unreproducible trivia.
  os << "    \"cpu_model\": \"" << json_escape(cpu_model) << "\",\n";
  os << "    \"host_cores\": " << std::thread::hardware_concurrency()
     << ",\n";
  os << "    \"compiler_version\": \"" << json_escape(__VERSION__) << "\",\n";
  os << "    \"compiler_flags\": \"" << json_escape(compiler_flags)
     << "\",\n";
  os << "    \"engines\": [\"fast\"";
  if (!skip_reference) os << ", \"reference\"";
  if (!skip_parallel) os << ", \"parallel\"";
  os << "],\n";
  os << "    \"columns\": [";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    os << (c ? ", " : "") << '"' << json_escape(columns[c].label) << '"';
  }
  os << "],\n    \"benches\": [";
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    os << (b ? ", " : "") << '"' << to_string(opts.benches[b]) << '"';
  }
  os << "]\n  },\n";
  append_engine_block(os, "fast_engine", opts, columns, fast);
  if (!skip_reference) {
    os << ",\n";
    append_engine_block(os, "reference_engine", opts, columns, ref);
    std::snprintf(buf, sizeof(buf), ",\n  \"speedup_vs_reference\": %.3f",
                  fast.best().wall_seconds > 0.0
                      ? ref.best().wall_seconds / fast.best().wall_seconds
                      : 0.0);
    os << buf;
  }
  if (!skip_parallel) {
    os << ",\n";
    append_engine_block(os, "parallel_engine", opts, columns, par);
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"parallel_speedup_vs_fast\": %.3f",
                  par.best().wall_seconds > 0.0
                      ? fast.best().wall_seconds / par.best().wall_seconds
                      : 0.0);
    os << buf;
  }
  if (!skip_ckpt) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"ckpt\": {\n    \"interval_refs\": %llu,\n"
                  "    \"matrix_wall_seconds\": %.3f,\n"
                  "    \"overhead_pct\": %.2f\n  }",
                  static_cast<unsigned long long>(ckpt_interval),
                  ckpt.best().wall_seconds, ckpt_overhead_pct);
    os << buf;
  }
  if (pre_pr_wall > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"pre_pr\": {\n    \"wall_seconds\": %.3f,\n"
                  "    \"speedup_vs_pre_pr\": %.3f,\n",
                  pre_pr_wall,
                  fast.best().wall_seconds > 0.0
                      ? pre_pr_wall / fast.best().wall_seconds
                      : 0.0);
    os << buf;
    os << "    \"note\": \"" << json_escape(pre_pr_note) << "\"\n  }";
  }
  os << "\n}\n";

  // Atomic temp+rename: a committed BENCH_speed.json is never half-written.
  const Status wst = write_file_atomic(out_path, os.str());
  if (!wst.ok()) {
    std::fprintf(stderr, "%s\n", wst.to_string().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (pre_pr_wall > 0.0 && fast.best().wall_seconds > 0.0) {
    std::printf("speedup vs pre-PR engine: %.2fx\n",
                pre_pr_wall / fast.best().wall_seconds);
  }
  if (!skip_parallel && par.best().wall_seconds > 0.0) {
    std::printf("parallel speedup vs fast: %.2fx\n",
                fast.best().wall_seconds / par.best().wall_seconds);
  }
  return 0;
}
