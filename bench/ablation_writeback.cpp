// Ablation (beyond the paper) — writeback traffic.
//
// The paper's methodology ignores writebacks entirely (memory is a free
// data store).  With dirty-line tracking enabled, every dirty eviction
// charges a data write at the receiving level and every dirty LLC victim a
// memory write.  The question this bench answers: do ReDHiP's savings
// survive once the hierarchy also pays for the write traffic the paper
// ignored?  (They should — bypasses remove lookups, and writeback volume is
// scheme-independent to first order.)
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  auto wb = [](HierarchyConfig& c) { c.model_writebacks = true; };
  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"ReDHiP", Scheme::kRedhip},
      {"Base+wb", Scheme::kBase, InclusionPolicy::kInclusive, false, wb},
      {"ReDHiP+wb", Scheme::kRedhip, InclusionPolicy::kInclusive, false, wb},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Ablation — ReDHiP savings with and without writeback modeling\n");
  TablePrinter t({"benchmark", "dyn saving (no wb)", "dyn saving (wb)",
                  "wb/demand-miss", "mem writebacks"});
  std::vector<double> s0, s1;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const double save0 =
        1.0 - compare(results[b][0], results[b][1]).dyn_energy_ratio;
    const double save1 =
        1.0 - compare(results[b][2], results[b][3]).dyn_energy_ratio;
    s0.push_back(save0);
    s1.push_back(save1);
    const SimResult& wbrun = results[b][2];
    std::uint64_t wb_events = wbrun.memory_writebacks;
    for (const auto& lvl : wbrun.levels) wb_events += lvl.writebacks;
    const double per_miss =
        wbrun.demand_memory_accesses == 0
            ? 0.0
            : static_cast<double>(wb_events) /
                  static_cast<double>(wbrun.demand_memory_accesses);
    t.add_row({to_string(opts.benches[b]), pct(save0), pct(save1),
               fixed(per_miss, 2),
               std::to_string(wbrun.memory_writebacks)});
  }
  t.add_row({"average", pct(mean(s0)), pct(mean(s1)), "", ""});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\nexpected: savings nearly unchanged — writeback volume is the same "
      "under every scheme, so it dilutes the ratio only slightly\n");
  return 0;
}
