// Ablation — batch vs rolling (incremental) recalibration.
//
// The paper's deployed design recalibrates incrementally ("an update for
// every table entry every 1 million L1 misses"); a batch rebuild at the end
// of each interval has the same aggregate cost but concentrates the stall
// and lets staleness accumulate for a full interval.  This bench compares
// the two at the same interval: accuracy (bypass coverage, false positives),
// dynamic energy, and the worst-case stall a core observes.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  auto with_mode = [](RecalMode m) {
    return [m](HierarchyConfig& c) { c.redhip.recal_mode = m; };
  };
  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"batch", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       with_mode(RecalMode::kBatch)},
      {"rolling", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       with_mode(RecalMode::kRolling)},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Ablation — batch vs rolling recalibration (same interval, same "
      "aggregate work)\n");
  TablePrinter t({"benchmark", "dyn energy (batch)", "dyn energy (rolling)",
                  "bypass/miss (batch)", "bypass/miss (rolling)",
                  "stall cyc (batch)", "stall cyc (rolling)"});
  std::vector<double> eb, er;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const SimResult& base = results[b][0];
    const SimResult& batch = results[b][1];
    const SimResult& roll = results[b][2];
    auto bypass_rate = [](const SimResult& r) {
      return r.levels[0].misses == 0
                 ? 0.0
                 : static_cast<double>(r.predictor.predicted_absent) /
                       static_cast<double>(r.levels[0].misses);
    };
    const double e_b = compare(base, batch).dyn_energy_ratio;
    const double e_r = compare(base, roll).dyn_energy_ratio;
    eb.push_back(e_b);
    er.push_back(e_r);
    t.add_row({to_string(opts.benches[b]), pct(e_b), pct(e_r),
               pct(bypass_rate(batch)), pct(bypass_rate(roll)),
               std::to_string(batch.recal_stall_cycles),
               std::to_string(roll.recal_stall_cycles)});
  }
  t.add_row({"average", pct(mean(eb)), pct(mean(er)), "", "", "", ""});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\nexpected: rolling matches or beats batch accuracy (staleness is "
      "bounded by one interval per set instead of peaking) with the same "
      "aggregate stall, spread thin\n");
  return 0;
}
