// Figure 7 — dynamic cache energy of Oracle, CBF, Phased Cache and ReDHiP,
// normalized to the Base configuration (lower is better).
//
// Paper result (averages): CBF ~82% (18% saving), Phased ~45% (55% saving),
// ReDHiP ~39% (61% saving), Oracle ~29% (71% saving); ReDHiP's prediction +
// recalibration overhead is under 1% of total dynamic energy.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},     {"Oracle", Scheme::kOracle},
      {"CBF", Scheme::kCbf},       {"Phased", Scheme::kPhased},
      {"ReDHiP", Scheme::kRedhip},
  };
  const auto results = run_matrix(opts, columns);

  std::printf("Figure 7 — dynamic energy normalized to Base (lower = better)\n");
  TablePrinter t({"benchmark", "Oracle", "CBF", "Phased", "ReDHiP"});
  std::vector<std::vector<double>> ratios(columns.size() - 1);
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    for (std::size_t c = 1; c < columns.size(); ++c) {
      const Comparison cmp = compare(results[b][0], results[b][c]);
      ratios[c - 1].push_back(cmp.dyn_energy_ratio);
      row.push_back(pct(cmp.dyn_energy_ratio));
    }
    t.add_row(std::move(row));
  }
  t.add_row({"average", pct(mean(ratios[0])), pct(mean(ratios[1])),
             pct(mean(ratios[2])), pct(mean(ratios[3]))});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }

  // ReDHiP's own overhead share (prediction + recalibration), paper: <1%.
  std::vector<double> overhead;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const auto& e = results[b][4].energy;
    overhead.push_back((e.predictor_dynamic_j + e.recalibration_j) /
                       e.dynamic_total_j());
  }
  std::printf(
      "\nReDHiP prediction+recalibration overhead: %s of its dynamic energy "
      "(paper: <1%%)\n",
      pct(mean(overhead)).c_str());
  std::printf(
      "paper averages: Oracle 29%%, CBF 82%%, Phased 45%%, ReDHiP 39%%\n");
  return 0;
}
