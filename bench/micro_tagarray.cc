// micro_tagarray — google-benchmark suite for the structures the fast
// engine's per-reference critical path lives in: the SoA TagArray (partial
// tag lane scan + packed-entry verify + embedded-LRU promote) and the
// counting Bloom filter's probe.  Each benchmark isolates one hot operation
// so a layout or indexing change shows up as a per-op delta instead of
// being smeared across an end-to-end run (bench_speed measures that).
//
// These measure the *simulator's* software performance, not the modeled
// hardware.  Built only when google-benchmark is available (same optional
// gate as microbench).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cache/tag_array.h"
#include "common/rng.h"
#include "predict/counting_bloom.h"

namespace {

using namespace redhip;

constexpr std::uint64_t kLcgMul = 6364136223846793005ull;
constexpr std::uint64_t kLcgAdd = 1442695040888963407ull;

// A 1 MiB array with the given associativity, warmed to full occupancy so
// every probe scans a steady-state set (the lane scan's worst case: every
// lane word valid).
TagArray make_full_array(std::uint32_t ways) {
  CacheGeometry g;
  g.size_bytes = std::uint64_t{1} << 20;
  g.ways = ways;
  TagArray arr(g);
  Xoshiro256 rng(11);
  while (arr.valid_count() < g.lines()) {
    const LineAddr line = rng.next() >> 12;
    TagArray::FillResult fr;
    arr.fill_if_absent(line, false, false, &fr);
  }
  return arr;
}

// Hit path: probe resident lines, so every lookup runs the full
// lane-match -> entry-verify -> prefetched-consume -> LRU-promote chain.
void BM_TagArrayLookupHit(benchmark::State& state) {
  TagArray arr = make_full_array(static_cast<std::uint32_t>(state.range(0)));
  std::vector<LineAddr> resident;
  for (std::uint64_t s = 0; s < arr.sets(); ++s) {
    arr.visit_valid_in_set(s, [&](LineAddr l) { resident.push_back(l); });
  }
  std::uint64_t x = 13;
  for (auto _ : state) {
    x = x * kLcgMul + kLcgAdd;
    benchmark::DoNotOptimize(arr.lookup(resident[(x >> 32) % resident.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + "-way hit");
}
BENCHMARK(BM_TagArrayLookupHit)->Arg(8)->Arg(16);

// Miss path: probe lines that are (almost) never resident.  This is the
// case the SoA split targets — a definite miss is decided from the dense
// 16-bit lane alone, without touching the packed entries.
void BM_TagArrayLookupMiss(benchmark::State& state) {
  TagArray arr = make_full_array(static_cast<std::uint32_t>(state.range(0)));
  std::uint64_t x = 29;
  for (auto _ : state) {
    x = x * kLcgMul + kLcgAdd;
    // High-entropy tags far outside the warmed range: misses.
    benchmark::DoNotOptimize(arr.lookup((x >> 8) | (std::uint64_t{1} << 40)));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + "-way miss");
}
BENCHMARK(BM_TagArrayLookupMiss)->Arg(8)->Arg(16);

// Promote-only: repeated hits on a tiny working set, so the embedded-LRU
// rank rotation dominates over the tag match.
void BM_TagArrayPromote(benchmark::State& state) {
  TagArray arr = make_full_array(16);
  std::vector<LineAddr> hot;
  arr.visit_valid_in_set(0, [&](LineAddr l) { hot.push_back(l); });
  std::uint64_t x = 5;
  for (auto _ : state) {
    x = x * kLcgMul + kLcgAdd;
    benchmark::DoNotOptimize(arr.lookup(hot[(x >> 40) % hot.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayPromote);

// Fill/evict steady state: every fill_if_absent on a full array either
// verifies residency or picks the embedded-LRU victim and overwrites —
// the back-invalidation-heavy benches spend their time here.
void BM_TagArrayFillEvict(benchmark::State& state) {
  TagArray arr = make_full_array(16);
  std::uint64_t x = 99;
  for (auto _ : state) {
    x = x * kLcgMul + kLcgAdd;
    TagArray::FillResult fr;
    benchmark::DoNotOptimize(arr.fill_if_absent(x >> 12, false, false, &fr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayFillEvict);

// CBF probe: the branch-free xor-fold index plus the min-of-counters read.
void BM_CbfProbe(benchmark::State& state) {
  CbfConfig c = CbfConfig::for_area_budget(std::uint64_t{512} << 10);
  CountingBloomFilter f(c);
  Xoshiro256 rng(7);
  for (int i = 0; i < 200'000; ++i) f.on_fill(rng.next() >> 16);
  std::uint64_t x = 3;
  for (auto _ : state) {
    x = x * kLcgMul + kLcgAdd;
    benchmark::DoNotOptimize(f.query(x >> 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CbfProbe);

}  // namespace

BENCHMARK_MAIN();
