// Section I motivation — "in a typical four-level cache hierarchy, lower
// level caches (L3 and L4) despite being accessed infrequently, can consume
// 80% of the total dynamic cache energy."
//
// Runs every workload under Base and prints the per-level share of dynamic
// energy next to the per-level share of accesses.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {{"Base", Scheme::kBase}};
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Section I motivation — dynamic energy vs access share per level "
      "(Base)\n");
  TablePrinter t({"benchmark", "L1 acc", "L3+L4 acc", "L1 energy",
                  "L2 energy", "L3 energy", "L4 energy", "L3+L4 energy"});
  std::vector<double> deep_energy;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const SimResult& r = results[b][0];
    const auto& e = r.energy.level_dynamic_j;
    const double total = r.energy.dynamic_total_j();
    std::uint64_t total_acc = 0;
    for (const auto& lv : r.levels) total_acc += lv.accesses;
    const double deep_acc =
        static_cast<double>(r.levels[2].accesses + r.levels[3].accesses) /
        static_cast<double>(total_acc);
    const double deep = (e[2] + e[3]) / total;
    deep_energy.push_back(deep);
    t.add_row({to_string(opts.benches[b]),
               pct(static_cast<double>(r.levels[0].accesses) /
                   static_cast<double>(total_acc)),
               pct(deep_acc), pct(e[0] / total), pct(e[1] / total),
               pct(e[2] / total), pct(e[3] / total), pct(deep)});
  }
  t.add_row({"average", "", "", "", "", "", "", pct(mean(deep_energy))});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\npaper claim: L3+L4 consume ~80%% of dynamic cache energy despite "
      "being accessed infrequently\n");
  return 0;
}
