// Figure 8 — the performance-energy metric: speedup x total-energy
// improvement, both relative to Base (higher is better).
//
// Paper result: ReDHiP is by far the best trade-off (~1.3 average), ahead of
// both CBF and Phased Cache, at 0.78% of LLC storage.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"CBF", Scheme::kCbf},
      {"Phased", Scheme::kPhased},
      {"ReDHiP", Scheme::kRedhip},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Figure 8 — performance-energy metric vs Base (higher = better)\n");
  TablePrinter t({"benchmark", "CBF", "Phased", "ReDHiP"});
  std::vector<std::vector<double>> metric(columns.size() - 1);
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    for (std::size_t c = 1; c < columns.size(); ++c) {
      const Comparison cmp = compare(results[b][0], results[b][c]);
      metric[c - 1].push_back(cmp.perf_energy_metric);
      row.push_back(fixed(cmp.perf_energy_metric, 3));
    }
    t.add_row(std::move(row));
  }
  t.add_row({"average", fixed(mean(metric[0]), 3), fixed(mean(metric[1]), 3),
             fixed(mean(metric[2]), 3)});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf("\npaper: ReDHiP clearly best (~1.3 avg), CBF and Phased lower\n");

  // Also report the total-energy saving the paper headline quotes (22%).
  std::vector<double> total_saving;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    total_saving.push_back(
        1.0 - compare(results[b][0], results[b][3]).total_energy_ratio);
  }
  std::printf("ReDHiP total energy saving: %s (paper: ~22%%)\n",
              pct(mean(total_saving)).c_str());
  return 0;
}
