// Ablation (beyond the paper) — sensitivity to the memory model.
//
// The paper deliberately models memory as a zero-delay, zero-energy store
// ("we focus on the cache behavior").  This bench re-runs Base vs ReDHiP
// with a realistic off-chip latency/energy (200 cycles, 20 nJ) to show which
// conclusions survive: the dynamic *cache* energy savings are unchanged (the
// bypassed lookups are the same), while the relative speedup shrinks because
// the memory latency dominates the walk latency ReDHiP removes.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  const Cycles mem_lat =
      static_cast<Cycles>(cli.get_int("mem-latency", 200));
  const double mem_nj = cli.get_double("mem-energy", 20.0);

  auto with_memory = [mem_lat, mem_nj](HierarchyConfig& c) {
    c.memory_latency = mem_lat;
    c.memory_energy_nj = mem_nj;
  };
  const std::vector<SchemeColumn> columns = {
      {"Base/paper-mem", Scheme::kBase},
      {"ReDHiP/paper-mem", Scheme::kRedhip},
      {"Base/real-mem", Scheme::kBase, InclusionPolicy::kInclusive, false,
       with_memory},
      {"ReDHiP/real-mem", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       with_memory},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Ablation — ReDHiP under the paper's zero-cost memory vs a realistic "
      "memory (%llu cycles, %.0f nJ per access)\n",
      static_cast<unsigned long long>(mem_lat), mem_nj);
  TablePrinter t({"benchmark", "speedup (paper mem)", "speedup (real mem)",
                  "cache-dyn saving (paper)", "cache-dyn saving (real)"});
  std::vector<double> s0, s1, e0, e1;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const Comparison paper = compare(results[b][0], results[b][1]);
    const Comparison real = compare(results[b][2], results[b][3]);
    // Cache-only dynamic saving: exclude the memory term so both memory
    // models are compared on the same quantity.
    auto cache_dyn = [](const SimResult& r) {
      return r.energy.dynamic_total_j() - r.energy.memory_j;
    };
    const double sv0 = 1.0 - cache_dyn(results[b][1]) / cache_dyn(results[b][0]);
    const double sv1 = 1.0 - cache_dyn(results[b][3]) / cache_dyn(results[b][2]);
    s0.push_back(paper.speedup);
    s1.push_back(real.speedup);
    e0.push_back(sv0);
    e1.push_back(sv1);
    t.add_row({to_string(opts.benches[b]), pct_delta(paper.speedup),
               pct_delta(real.speedup), pct(sv0), pct(sv1)});
  }
  t.add_row({"average", pct_delta(mean(s0)), pct_delta(mean(s1)),
             pct(mean(e0)), pct(mean(e1))});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\nexpected: cache-energy savings robust to the memory model; speedup "
      "diluted once misses cost %llu cycles\n",
      static_cast<unsigned long long>(mem_lat));
  return 0;
}
