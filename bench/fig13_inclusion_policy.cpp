// Figure 13 — ReDHiP dynamic energy *savings* under the three cache
// inclusion policies: fully inclusive, hybrid (exclusive private levels,
// inclusive shared LLC) and fully exclusive.  Each policy's ReDHiP run is
// normalized to a Base run under the *same* policy ("comparisons are made
// between the same cache inclusion policies").
//
// Paper result: hybrid is indistinguishable from inclusive (ReDHiP is
// unchanged — it relies only on the LLC's inclusivity); fully exclusive
// needs a scaled PT per level, loses ~15% of the savings to the extra
// overhead and per-level aliasing, but still beats Base by >40%.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {
      {"Base/incl", Scheme::kBase, InclusionPolicy::kInclusive},
      {"ReDHiP/incl", Scheme::kRedhip, InclusionPolicy::kInclusive},
      {"Base/hybrid", Scheme::kBase, InclusionPolicy::kHybrid},
      {"ReDHiP/hybrid", Scheme::kRedhip, InclusionPolicy::kHybrid},
      {"Base/excl", Scheme::kBase, InclusionPolicy::kExclusive},
      {"ReDHiP/excl", Scheme::kRedhip, InclusionPolicy::kExclusive},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Figure 13 — ReDHiP dynamic energy savings per inclusion policy "
      "(vs Base under the same policy; higher = better)\n");
  TablePrinter t({"benchmark", "Inclusive", "Hybrid", "Exclusive"});
  std::vector<std::vector<double>> savings(3);
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    for (int p = 0; p < 3; ++p) {
      const Comparison cmp =
          compare(results[b][2 * p], results[b][2 * p + 1]);
      const double saving = 1.0 - cmp.dyn_energy_ratio;
      savings[p].push_back(saving);
      row.push_back(pct(saving));
    }
    t.add_row(std::move(row));
  }
  t.add_row({"average", pct(mean(savings[0])), pct(mean(savings[1])),
             pct(mean(savings[2]))});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\npaper shape: hybrid ~= inclusive; exclusive ~15%% lower but still "
      ">40%% saving\n");
  return 0;
}
