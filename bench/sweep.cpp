// sweep — declarative design-space exploration with a resumable result
// cache.
//
//   sweep --axis workload=mcf,astar --axis table-size=2M,512K,64K
//         --cache-dir sweep-cache --scale 32 --refs 20000
//
// Axes (repeat --axis to add dimensions; the cross-product runs):
//   workload, scheme, inclusion, prefetch, table-size, recal-interval,
//   depth, llc-capacity, scale, refs, seed
//
// Every completed cell is persisted to --cache-dir keyed by its content
// address, so re-running (or resuming an interrupted sweep) simulates only
// the missing cells; --resume=0 ignores warm entries, --require-cache fails
// (exit 1) if anything had to simulate — the CI freshness check.  --report
// writes the JSON report (--csv switches the printed tables and the report
// to CSV).
//
// Crash safety: --ckpt-dir checkpoints every simulating cell
// (--ckpt-interval N refs between saves); --warmup-refs W writes a shared
// warmup checkpoint at W aggregate refs that cells differing only in refs
// or engine restore instead of replaying the prefix; --cell-timeout S
// aborts a cell after S seconds wall (retried once, then reported and
// exit 1).
#include <algorithm>
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"
#include "sweep/aggregate.h"
#include "sweep/axes.h"
#include "sweep/sweep.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  SweepSpec spec;
  spec.base.scale = opts.scale;
  spec.base.refs_per_core = opts.refs_per_core;
  spec.base.seed = opts.seed;
  spec.base.engine = opts.engine;
  // The base machine runs ReDHiP: sweeping a predictor knob (table-size,
  // recal-interval) without a scheme axis would otherwise measure a machine
  // that never touches the knob.  A scheme axis overrides this per cell.
  spec.base.scheme = Scheme::kRedhip;
  for (const std::string& axis : cli.get_all("axis")) {
    spec.axes.push_back(make_named_axis(axis, opts));
  }
  if (spec.axes.empty()) {
    // Default sweep: every workload under Base vs ReDHiP — the smallest
    // cross-product that exercises both the cache and the Pareto report.
    spec.axes.push_back(make_named_axis("workload=all", opts));
    spec.axes.push_back(make_named_axis("scheme=Base,ReDHiP", opts));
  }

  SweepRunOptions ro;
  ro.cache_dir = opts.cache_dir;
  ro.resume = opts.resume;
  ro.jobs = opts.jobs;
  // Crash-safe cells: --ckpt-dir enables per-cell checkpoint/restore,
  // --ckpt-interval the periodic save, --warmup-refs the shared warmup
  // checkpoint (cells differing only in refs or engine start from it), and
  // --cell-timeout the per-cell watchdog (see SweepRunOptions).
  ro.ckpt_dir = opts.ckpt_dir;
  ro.ckpt_interval = opts.ckpt_interval;
  ro.warmup_refs = cli.get_uint64("warmup-refs", 0);
  ro.cell_timeout = opts.cell_timeout;
  const SweepOutcome out = run_sweep(spec, ro);

  std::printf("sweep: cells=%zu cache_hits=%zu simulated=%zu wall=%.2fs\n",
              out.stats.cells, out.stats.cache_hits, out.stats.simulated,
              out.stats.wall_seconds);
  std::size_t timed_out = 0;
  for (const SweepCell& cell : out.cells) {
    if (cell.status.ok()) continue;
    ++timed_out;
    std::fprintf(stderr, "cell failed: %s\n", cell.status.to_string().c_str());
  }

  // Per-axis sensitivity: the headline metrics averaged over every other
  // axis — the quick read on which knob matters.
  for (std::size_t a = 0; a < out.axis_names.size(); ++a) {
    if (out.axis_labels[a].size() < 2) continue;
    const SensitivityTable dyn =
        sensitivity_table(out, a, metric_dynamic_energy_j);
    const SensitivityTable total =
        sensitivity_table(out, a, metric_total_energy_j);
    const SensitivityTable cycles = sensitivity_table(out, a, metric_exec_cycles);
    std::printf("\nsensitivity to %s (mean over all other axes, %zu cells "
                "per row)\n",
                dyn.axis.c_str(), dyn.rows.empty() ? 0 : dyn.rows[0].cells);
    TablePrinter t({dyn.axis, "dyn energy (J)", "total energy (J)",
                    "exec cycles"});
    for (std::size_t v = 0; v < dyn.rows.size(); ++v) {
      t.add_row({dyn.rows[v].label, fixed(dyn.rows[v].mean, 6),
                 fixed(total.rows[v].mean, 6),
                 fixed(cycles.rows[v].mean, 0)});
    }
    if (opts.csv) {
      t.print_csv();
    } else {
      t.print();
    }
  }

  // Pareto front over (speedup, total-energy ratio) when a scheme axis
  // includes Base to compare against.
  for (std::size_t a = 0; a < out.axis_names.size(); ++a) {
    if (out.axis_names[a] != "scheme") continue;
    const auto& labels = out.axis_labels[a];
    const auto base_it = std::find(labels.begin(), labels.end(), "Base");
    if (base_it == labels.end() || labels.size() < 2) break;
    const std::size_t base_index =
        static_cast<std::size_t>(base_it - labels.begin());
    const std::vector<ParetoPoint> points = pareto_vs_base(out, a, base_index);
    std::printf("\nPareto front over (speedup, total-energy ratio) vs Base\n");
    TablePrinter t({"cell", "speedup", "total energy", "pareto"});
    for (const ParetoPoint& p : points) {
      std::string label;
      for (const std::string& l : out.cells[p.cell_index].labels) {
        if (!label.empty()) label += '/';
        label += l;
      }
      t.add_row({label, pct_delta(p.speedup), pct(p.total_energy_ratio),
                 p.on_front ? "*" : ""});
    }
    if (opts.csv) {
      t.print_csv();
    } else {
      t.print();
    }
    break;
  }

  const std::string report = cli.get("report", "");
  if (!report.empty()) {
    const std::string body =
        opts.csv ? sweep_report_csv(out) : sweep_report_json(out);
    write_text_file(report, body).throw_if_error();
    std::printf("\nreport written to %s\n", report.c_str());
  }

  if (cli.get_bool("require-cache", false) && out.stats.simulated > 0) {
    std::fprintf(stderr,
                 "--require-cache: %zu of %zu cells had to simulate (cache "
                 "cold, stale, or corrupt)\n",
                 out.stats.simulated, out.stats.cells);
    return 1;
  }
  // Timed-out cells poison any aggregate computed over them; fail loudly.
  return timed_out > 0 ? 1 : 0;
}
