// Ablation — fault-rate x recovery-policy sweep.
//
// ReDHiP's energy win rests on one invariant: the prediction table is a
// conservative superset of LLC contents, so a predicted-absent bypass never
// hides on-chip data.  This bench injects PT bit flips (both polarities)
// and dropped recalibration chunks at increasing rates, with the online
// invariant auditor shadow-checking every bypass, and measures what each
// recovery policy costs:
//
//   count-only   — detect and count violations, serve the line from memory
//                  (graceful degradation; no recovery action)
//   recalibrate  — emergency full recalibration on the first violation,
//                  stall + energy charged like any other recalibration
//
// Columns report violations observed, emergency recalibrations, and the
// perf/energy deltas against the fault-free ReDHiP run at the same seed —
// rate 0 is the zero-overhead-off control and must match it exactly.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  const auto rate =
      static_cast<std::uint32_t>(cli.get_int("fault-rate", 200));

  auto faulted = [rate](RecoveryPolicy policy, std::uint32_t scale) {
    return [policy, rate, scale](HierarchyConfig& c) {
      c.audit.enabled = true;
      c.audit.policy = policy;
      if (rate * scale == 0) return;  // fault-free control, auditor still on
      c.fault.enabled = true;
      c.fault.rate_per_mref = rate * scale;
      c.fault.site_mask = static_cast<std::uint32_t>(FaultSite::kPtBitClear) |
                          static_cast<std::uint32_t>(FaultSite::kPtBitSet) |
                          static_cast<std::uint32_t>(FaultSite::kRecalDrop);
    };
  };
  const std::vector<SchemeColumn> columns = {
      {"ReDHiP", Scheme::kRedhip},
      {"audit, no faults", Scheme::kRedhip, InclusionPolicy::kInclusive,
       false, faulted(RecoveryPolicy::kCountOnly, 0)},
      {"count-only @1x", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       faulted(RecoveryPolicy::kCountOnly, 1)},
      {"recalibrate @1x", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       faulted(RecoveryPolicy::kRecalibrate, 1)},
      {"count-only @10x", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       faulted(RecoveryPolicy::kCountOnly, 10)},
      {"recalibrate @10x", Scheme::kRedhip, InclusionPolicy::kInclusive,
       false, faulted(RecoveryPolicy::kRecalibrate, 10)},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Ablation — fault tolerance (base rate %u faults/Mref/site, PT flips "
      "+ dropped recal chunks)\n",
      rate);
  TablePrinter t({"benchmark", "column", "injected", "violations",
                  "recoveries", "recal stalls", "cycles vs clean",
                  "dyn energy vs clean"});
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const SimResult& clean = results[b][0];
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const SimResult& r = results[b][c];
      const Comparison cmp = compare(clean, r);
      t.add_row({to_string(opts.benches[b]), columns[c].label,
                 std::to_string(r.fault.injected_total()),
                 std::to_string(r.fault.invariant_violations),
                 std::to_string(r.fault.recovery_recalibrations),
                 std::to_string(r.fault.recovery_stall_cycles),
                 pct_delta(1.0 / cmp.speedup), pct(cmp.dyn_energy_ratio)});
    }
  }
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\nexpected: the audited fault-free column matches plain ReDHiP "
      "bit-for-bit; count-only rides out violations at a small latency "
      "cost per hit; recalibrate pays stall + energy per violation but "
      "scrubs every injected 1->0 flip\n");
  return 0;
}
