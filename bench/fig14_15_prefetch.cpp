// Figures 14 & 15 — interaction with hardware stride prefetching: SP only,
// ReDHiP only, and SP+ReDHiP, against a Base with neither.
//
// Paper result: performance benefits are complementary and effectively
// additive (prefetching accelerates the predictable accesses, ReDHiP the
// unpredictable ones); energy-wise prefetching is costly (can exceed Base)
// while ReDHiP saves, so the combination lands in between.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"SP", Scheme::kBase, InclusionPolicy::kInclusive, /*prefetch=*/true},
      {"ReDHiP", Scheme::kRedhip},
      {"SP+ReDHiP", Scheme::kRedhip, InclusionPolicy::kInclusive, true},
  };
  const auto results = run_matrix(opts, columns);

  std::printf("Figure 14 — speedup over Base\n");
  TablePrinter perf({"benchmark", "SP only", "ReDHiP only", "SP+ReDHiP"});
  std::printf("(energy table follows)\n\n");
  TablePrinter energy({"benchmark", "SP only", "ReDHiP only", "SP+ReDHiP"});
  std::vector<std::vector<double>> sp(3), en(3);
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> prow{to_string(opts.benches[b])};
    std::vector<std::string> erow{to_string(opts.benches[b])};
    for (std::size_t c = 1; c < columns.size(); ++c) {
      const Comparison cmp = compare(results[b][0], results[b][c]);
      sp[c - 1].push_back(cmp.speedup);
      en[c - 1].push_back(cmp.dyn_energy_ratio);
      prow.push_back(pct_delta(cmp.speedup));
      erow.push_back(pct(cmp.dyn_energy_ratio));
    }
    perf.add_row(std::move(prow));
    energy.add_row(std::move(erow));
  }
  perf.add_row({"average", pct_delta(mean(sp[0])), pct_delta(mean(sp[1])),
                pct_delta(mean(sp[2]))});
  energy.add_row({"average", pct(mean(en[0])), pct(mean(en[1])),
                  pct(mean(en[2]))});
  if (opts.csv) {
    perf.print_csv();
  } else {
    perf.print();
  }
  std::printf(
      "\nFigure 15 — dynamic energy normalized to Base (lower = better)\n");
  if (opts.csv) {
    energy.print_csv();
  } else {
    energy.print();
  }

  // Prefetcher effectiveness, for context.
  const auto& pf = results[0][1].prefetch;
  std::printf(
      "\nprefetcher on %s: issued %llu, useful %llu, useless %llu, "
      "redundant %llu\n",
      to_string(opts.benches[0]).c_str(),
      static_cast<unsigned long long>(pf.issued),
      static_cast<unsigned long long>(pf.useful),
      static_cast<unsigned long long>(pf.useless),
      static_cast<unsigned long long>(pf.redundant));
  std::printf(
      "paper shape: perf additive when combined; combined energy between SP "
      "cost and ReDHiP saving\n");
  return 0;
}
