// Figure 11 — ReDHiP dynamic energy vs prediction-table size (2MB down to
// 64KB at the paper's scale), normalized to Base.  Recalibration interval is
// held constant.
//
// Paper result: gains become marginal above 512KB and the table is almost
// useless at 64KB; 256KB and 512KB are the sensible design points.
//
// Note the paper's "we next focus on dynamic energy and, for these results
// only, ignore the prediction overhead" — mirrored here by reporting the
// hierarchy-only dynamic energy (predictor and recalibration terms
// excluded).
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"
#include "sweep/sweep.h"

using namespace redhip;

namespace {

// Hierarchy dynamic energy without the prediction/recalibration overhead.
double accuracy_energy(const SimResult& r) {
  double sum = 0.0;
  for (double v : r.energy.level_dynamic_j) sum += v;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  // Paper sweep: 2M, 512K, 256K, 128K, 64K (per Fig. 11's legend), i.e.
  // table_bits x4 down to /8 around the 512K default; scaled alongside the
  // hierarchy.
  struct Point {
    const char* label;
    int shift;  // table_bits <<= shift relative to the default
  };
  const std::vector<Point> sizes = {
      {"2M", 2}, {"512K", 0}, {"256K", -1}, {"128K", -2}, {"64K", -3}};

  std::vector<SchemeColumn> columns = {{"Base", Scheme::kBase}};
  for (const Point& p : sizes) {
    SchemeColumn col;
    col.label = p.label;
    col.scheme = Scheme::kRedhip;
    const int shift = p.shift;
    col.tweak = [shift](HierarchyConfig& c) {
      c.redhip.table_bits = shift >= 0 ? c.redhip.table_bits << shift
                                       : c.redhip.table_bits >> -shift;
    };
    columns.push_back(std::move(col));
  }
  // The sweep engine: same matrix, plus the resumable result cache when
  // --cache-dir is set (warm cells load instead of re-simulating).
  SweepStats sweep_stats;
  const auto results = sweep_matrix(opts, columns, &sweep_stats);

  std::printf(
      "Figure 11 — ReDHiP dynamic energy vs PT size, normalized to Base\n"
      "(accuracy effect only: prediction/recalibration overhead excluded; "
      "labels are paper-scale sizes)\n");
  std::vector<std::string> headers{"benchmark"};
  for (const Point& p : sizes) headers.push_back(p.label);
  TablePrinter t(headers);
  std::vector<std::vector<double>> ratios(sizes.size());
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    const double base = accuracy_energy(results[b][0]);
    for (std::size_t c = 1; c < columns.size(); ++c) {
      const double ratio = accuracy_energy(results[b][c]) / base;
      ratios[c - 1].push_back(ratio);
      row.push_back(pct(ratio));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (auto& r : ratios) avg.push_back(pct(mean(r)));
  t.add_row(std::move(avg));
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\npaper shape: marginal gains beyond 512K; 64K nearly useless\n");
  if (!opts.cache_dir.empty()) {
    std::fprintf(stderr, "[sweep] cells=%zu cache_hits=%zu simulated=%zu\n",
                 sweep_stats.cells, sweep_stats.cache_hits,
                 sweep_stats.simulated);
  }
  return 0;
}
