// Figure 1 — "The size of different levels of hardware caches along with
// their year of appearance (roughly) in commercial processors."
//
// This figure is historical data, not a simulation result; the series below
// reconstructs it from representative commercial parts (the paper plots the
// same trend: each level growing over time, a new level appearing roughly
// every decade, L4 arriving around 2012).  The bench prints the series and
// the derived observations the introduction rests on.
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"

using namespace redhip;

namespace {

struct Point {
  int year;
  const char* level;
  double kb;
  const char* example;
};

// Representative commercial processors per (year, level).
const Point kHistory[] = {
    {1987, "L1", 1, "Intel 386 off-die SRAM era"},
    {1989, "L1", 8, "Intel 486 (unified 8KB)"},
    {1993, "L1", 16, "Pentium (8KB I + 8KB D)"},
    {1997, "L1", 32, "Pentium II"},
    {2002, "L1", 32, "Pentium 4 era"},
    {2007, "L1", 64, "Core 2 (32KB I + 32KB D)"},
    {2012, "L1", 64, "Sandy/Ivy Bridge"},
    {1995, "L2", 256, "Pentium Pro (on-package)"},
    {1999, "L2", 512, "Pentium III Katmai"},
    {2003, "L2", 1024, "Pentium M"},
    {2007, "L2", 4096, "Core 2 Duo (shared)"},
    {2012, "L2", 256, "per-core L2 under a big L3"},
    {2002, "L3", 2048, "Itanium 2 / POWER4 era"},
    {2007, "L3", 8192, "Barcelona / POWER6"},
    {2010, "L3", 12288, "Westmere"},
    {2012, "L3", 20480, "Sandy Bridge-EP"},
    {2012, "L4", 65536, "Haswell eDRAM (Crystal Well), POWER7+ class"},
};

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts(argc, argv);
  std::printf(
      "Figure 1 — cache sizes by level and (rough) year of appearance\n\n");
  TablePrinter t({"year", "level", "size (KB)", "representative part"});
  for (const Point& p : kHistory) {
    t.add_row({std::to_string(p.year), p.level, fixed(p.kb, 0), p.example});
  }
  if (opts.get_bool("csv", false)) {
    t.print_csv();
  } else {
    t.print();
  }

  // The two observations the introduction draws from this figure.
  int first_year[4] = {0, 0, 0, 0};
  for (const Point& p : kHistory) {
    const int lvl = p.level[1] - '1';
    if (first_year[lvl] == 0 || p.year < first_year[lvl]) {
      first_year[lvl] = p.year;
    }
  }
  std::printf("\nfirst appearance: L1 %d, L2 %d, L3 %d, L4 %d — a new level "
              "roughly every decade (\"bigger and deeper\")\n",
              first_year[0], first_year[1], first_year[2], first_year[3]);
  std::printf(
      "L4 at 64MB is the machine Table I models; the paper's argument is "
      "that walks through this stack are now the energy problem\n");
  return 0;
}
