// Figure 6 — performance speedup of Oracle, CBF, Phased Cache and ReDHiP
// over the Base configuration (no prediction, parallel tag/data).
//
// Paper result (averages): Phased ~ -3%, CBF < +4%, ReDHiP ~ +8% (with its
// ~3% prediction overhead included), Oracle ~ +13%.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},     {"Oracle", Scheme::kOracle},
      {"CBF", Scheme::kCbf},       {"Phased", Scheme::kPhased},
      {"ReDHiP", Scheme::kRedhip},
  };
  const auto results = run_matrix(opts, columns);

  std::printf("Figure 6 — speedup over Base (positive = faster)\n");
  TablePrinter t({"benchmark", "Oracle", "CBF", "Phased", "ReDHiP"});
  std::vector<std::vector<double>> speedups(columns.size() - 1);
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    for (std::size_t c = 1; c < columns.size(); ++c) {
      const Comparison cmp = compare(results[b][0], results[b][c]);
      speedups[c - 1].push_back(cmp.speedup);
      row.push_back(pct_delta(cmp.speedup));
    }
    t.add_row(std::move(row));
  }
  t.add_row({"average", pct_delta(mean(speedups[0])),
             pct_delta(mean(speedups[1])), pct_delta(mean(speedups[2])),
             pct_delta(mean(speedups[3]))});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\npaper averages: Oracle +13%%, CBF <+4%%, Phased -3%%, ReDHiP +8%%\n");
  return 0;
}
