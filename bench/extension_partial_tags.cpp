// Extension — the partial-tag mirror baseline (related work [17]/[30])
// against CBF and ReDHiP at their evaluated design points.
//
// The partial-tag mirror never goes stale (it tracks evictions exactly) and
// its only false positives are partial-tag collisions inside one set, but
// it costs ~2x ReDHiP's area and reads `ways` entries per lookup.  This
// bench puts the three real predictors side by side on speed, energy and
// bypass coverage, with the Oracle as the ceiling.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"CBF", Scheme::kCbf},
      {"ReDHiP", Scheme::kRedhip},
      {"PartialTag", Scheme::kPartialTag},
      {"Oracle", Scheme::kOracle},
  };
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Extension — partial-tag mirror vs CBF vs ReDHiP (Oracle = ceiling)\n");
  TablePrinter t({"benchmark", "CBF perf", "ReDHiP perf", "PTag perf",
                  "CBF dyn", "ReDHiP dyn", "PTag dyn", "Oracle dyn"});
  std::vector<double> perf[3], dyn[4];
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    Comparison cmp[4];
    for (int c = 0; c < 4; ++c) {
      cmp[c] = compare(results[b][0], results[b][c + 1]);
    }
    for (int c = 0; c < 3; ++c) perf[c].push_back(cmp[c].speedup);
    for (int c = 0; c < 4; ++c) dyn[c].push_back(cmp[c].dyn_energy_ratio);
    row.push_back(pct_delta(cmp[0].speedup));
    row.push_back(pct_delta(cmp[1].speedup));
    row.push_back(pct_delta(cmp[2].speedup));
    for (int c = 0; c < 4; ++c) row.push_back(pct(cmp[c].dyn_energy_ratio));
    t.add_row(std::move(row));
  }
  t.add_row({"average", pct_delta(mean(perf[0])), pct_delta(mean(perf[1])),
             pct_delta(mean(perf[2])), pct(mean(dyn[0])), pct(mean(dyn[1])),
             pct(mean(dyn[2])), pct(mean(dyn[3]))});
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }

  // Area accounting for the trade-off discussion.
  const HierarchyConfig c = HierarchyConfig::scaled(opts.scale, Scheme::kRedhip);
  const double llc_bytes = static_cast<double>(c.llc().geom.size_bytes);
  const double pt_pct = 100.0 * static_cast<double>(c.redhip.table_bits) / 8 /
                        llc_bytes;
  const double ptag_pct =
      100.0 *
      static_cast<double>(c.llc().geom.lines() *
                          (c.partial_tag.partial_bits + 1)) /
      8 / llc_bytes;
  std::printf(
      "\narea: ReDHiP %.2f%% of LLC, partial-tag mirror %.2f%% — the mirror "
      "buys freedom from recalibration at ~%.1fx the storage\n",
      pt_pct, ptag_pct, ptag_pct / pt_pct);
  return 0;
}
