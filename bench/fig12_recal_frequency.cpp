// Figure 12 — ReDHiP dynamic energy vs recalibration interval (number of L1
// misses between recalibrations), normalized to Base.  Sweeps from
// recalibrating at every L1 miss ("1", perfect recalibration) through 10K /
// 100K / 1M / 10M / 100M to never ("inf").
//
// Paper result: a precipitous accuracy cliff between 1M and 100M; intervals
// at or below 1M are all roughly equivalent — 1M is the clear choice.
// As in Fig. 11, only the accuracy effect is reported (overhead excluded),
// which is why "1" is not penalized by its absurd recalibration cost.
#include <cstdio>

#include "common/cli.h"
#include "harness/report.h"
#include "sweep/sweep.h"

using namespace redhip;

namespace {

double accuracy_energy(const SimResult& r) {
  double sum = 0.0;
  for (double v : r.energy.level_dynamic_j) sum += v;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  // Paper-scale intervals, divided by `scale` like the rest of the machine
  // (an interval of 1M at scale 8 becomes 125K — the same fraction of the
  // scaled LLC's fill rate).
  struct Point {
    const char* label;
    std::uint64_t interval;  // at paper scale; 0 = never, 1 = every miss
  };
  const std::vector<Point> points = {
      {"1", 1},           {"10K", 10'000},      {"100K", 100'000},
      {"1M", 1'000'000},  {"10M", 10'000'000},  {"100M", 100'000'000},
      {"inf", 0}};

  std::vector<SchemeColumn> columns = {{"Base", Scheme::kBase}};
  for (const Point& p : points) {
    SchemeColumn col;
    col.label = p.label;
    col.scheme = Scheme::kRedhip;
    const std::uint64_t interval = p.interval;
    const std::uint32_t scale = opts.scale;
    col.tweak = [interval, scale](HierarchyConfig& c) {
      c.redhip.recal_interval_l1_misses =
          interval == 0 ? 0 : std::max<std::uint64_t>(1, interval / scale);
    };
    columns.push_back(std::move(col));
  }
  SweepStats sweep_stats;
  const auto results = sweep_matrix(opts, columns, &sweep_stats);

  std::printf(
      "Figure 12 — ReDHiP dynamic energy vs recalibration interval, "
      "normalized to Base (accuracy effect only)\n");
  std::vector<std::string> headers{"benchmark"};
  for (const Point& p : points) headers.push_back(p.label);
  TablePrinter t(headers);
  std::vector<std::vector<double>> ratios(points.size());
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    const double base = accuracy_energy(results[b][0]);
    for (std::size_t c = 1; c < columns.size(); ++c) {
      const double ratio = accuracy_energy(results[b][c]) / base;
      ratios[c - 1].push_back(ratio);
      row.push_back(pct(ratio));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (auto& r : ratios) avg.push_back(pct(mean(r)));
  t.add_row(std::move(avg));
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\npaper shape: <=1M all similar; cliff from 1M to 100M; inf worst\n");
  if (!opts.cache_dir.empty()) {
    std::fprintf(stderr, "[sweep] cells=%zu cache_hits=%zu simulated=%zu\n",
                 sweep_stats.cells, sweep_stats.cache_hits,
                 sweep_stats.simulated);
  }
  return 0;
}
