// Ablation (beyond the paper) — does ReDHiP's benefit depend on the LLC
// replacement policy?  The recalibration design only assumes a tag array it
// can scan, so the savings should be robust across LRU / tree-PLRU / NRU /
// random replacement.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<std::pair<std::string, ReplacementKind>> policies = {
      {"LRU", ReplacementKind::kLru},
      {"PLRU", ReplacementKind::kTreePlru},
      {"NRU", ReplacementKind::kNru},
      {"random", ReplacementKind::kRandom},
  };
  std::vector<SchemeColumn> columns;
  for (const auto& [label, kind] : policies) {
    auto tweak = [kind = kind](HierarchyConfig& c) {
      for (auto& lvl : c.levels) lvl.geom.replacement = kind;
    };
    columns.push_back({"Base/" + label, Scheme::kBase,
                       InclusionPolicy::kInclusive, false, tweak});
    columns.push_back({"ReDHiP/" + label, Scheme::kRedhip,
                       InclusionPolicy::kInclusive, false, tweak});
  }
  const auto results = run_matrix(opts, columns);

  std::printf(
      "Ablation — ReDHiP dynamic energy saving per replacement policy "
      "(each vs Base under the same policy)\n");
  std::vector<std::string> headers{"benchmark"};
  for (const auto& [label, kind] : policies) headers.push_back(label);
  TablePrinter t(headers);
  std::vector<std::vector<double>> savings(policies.size());
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    std::vector<std::string> row{to_string(opts.benches[b])};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const Comparison cmp =
          compare(results[b][2 * p], results[b][2 * p + 1]);
      const double saving = 1.0 - cmp.dyn_energy_ratio;
      savings[p].push_back(saving);
      row.push_back(pct(saving));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (auto& s : savings) avg.push_back(pct(mean(s)));
  t.add_row(std::move(avg));
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf("\nexpected: savings roughly policy-independent\n");
  return 0;
}
