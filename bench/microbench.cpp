// microbench — google-benchmark microbenchmarks for the hot structures:
// prediction-table query/update, recalibration throughput, CBF operations,
// tag-array probes, workload generation, and end-to-end simulation speed.
//
// These measure the *simulator's* software performance (how fast this
// library runs), not the modeled hardware.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cache/tag_array.h"
#include "common/rng.h"
#include "harness/run.h"
#include "predict/counting_bloom.h"
#include "predict/redhip_table.h"
#include "prefetch/stride_prefetcher.h"
#include "trace/workloads.h"

namespace {

using namespace redhip;

void BM_RedhipQuery(benchmark::State& state) {
  RedhipConfig c;
  c.table_bits = std::uint64_t{1} << 22;
  c.recal_interval_l1_misses = 0;
  RedhipTable t(c);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100'000; ++i) t.on_fill(rng.next());
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(t.query(x >> 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedhipQuery);

void BM_RedhipFill(benchmark::State& state) {
  RedhipConfig c;
  c.table_bits = std::uint64_t{1} << 22;
  RedhipTable t(c);
  std::uint64_t x = 9;
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    t.on_fill(x >> 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedhipFill);

void BM_RedhipRecalibrate(benchmark::State& state) {
  // Recalibrate a PT against an LLC with `state.range(0)` MB capacity.
  CacheGeometry g;
  g.size_bytes = static_cast<std::uint64_t>(state.range(0)) << 20;
  g.ways = 16;
  TagArray llc(g);
  Xoshiro256 rng(3);
  for (std::uint64_t i = 0; i < g.lines(); ++i) {
    const LineAddr line = rng.next() >> 10;
    if (!llc.contains(line)) llc.fill(line);
  }
  RedhipConfig c;
  c.table_bits = g.size_bytes / 16;  // the paper's 0.78% ratio
  RedhipTable t(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.recalibrate(llc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.lines()));
  state.SetLabel(std::to_string(state.range(0)) + "MB LLC");
}
BENCHMARK(BM_RedhipRecalibrate)->Arg(1)->Arg(8)->Arg(64);

void BM_CbfOps(benchmark::State& state) {
  CbfConfig c = CbfConfig::for_area_budget(512_KiB);
  CountingBloomFilter f(c);
  std::uint64_t x = 77;
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const LineAddr line = x >> 20;
    f.on_fill(line);
    benchmark::DoNotOptimize(f.query(line));
    f.on_evict(line);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_CbfOps);

void BM_TagArrayLookup(benchmark::State& state) {
  CacheGeometry g;
  g.size_bytes = 1_MiB;
  g.ways = 16;
  TagArray arr(g);
  Xoshiro256 rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const LineAddr l = rng.below(1 << 15);
    if (!arr.contains(l)) arr.fill(l);
  }
  std::uint64_t x = 13;
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(arr.lookup((x >> 20) & ((1 << 15) - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayLookup);

void BM_StridePrefetcher(benchmark::State& state) {
  StridePrefetcherConfig c;
  StridePrefetcher p(c);
  std::vector<LineAddr> out;
  Addr a = 0;
  for (auto _ : state) {
    out.clear();
    a += 64;
    p.observe(0x1234, a, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StridePrefetcher);

void BM_WorkloadGeneration(benchmark::State& state) {
  auto src = make_workload(BenchmarkId::kMcf, 0, 16, 1);
  MemRef m;
  for (auto _ : state) {
    src->next(m);
    benchmark::DoNotOptimize(m.addr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Whole-pipeline throughput: references simulated per second under the
  // scheme in range(0) (0 = Base, 1 = ReDHiP).
  const Scheme scheme = state.range(0) == 0 ? Scheme::kBase : Scheme::kRedhip;
  const std::uint64_t refs = 50'000;
  for (auto _ : state) {
    RunSpec spec;
    spec.bench = BenchmarkId::kMilc;
    spec.scheme = scheme;
    spec.scale = 16;
    spec.refs_per_core = refs;
    benchmark::DoNotOptimize(run_spec(spec).exec_cycles);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(refs * 8));
  state.SetLabel(scheme == Scheme::kBase ? "Base" : "ReDHiP");
}
BENCHMARK(BM_EndToEndSimulation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
