// Figures 9 & 10 — per-level cache hit rates for every benchmark, in the
// base case (Fig. 9) and with ReDHiP applied (Fig. 10).
//
// Paper result: L1 is unaffected (prediction happens after L1 misses);
// ReDHiP raises the L2/L3/L4 hit rates by an average of 14%/12%/18% because
// accesses that would have missed everywhere are bypassed and never counted
// against the lower levels.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"ReDHiP", Scheme::kRedhip},
  };
  const auto results = run_matrix(opts, columns);

  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("Figure %s — per-level hit rates (%s)\n", c == 0 ? "9" : "10",
                columns[c].label.c_str());
    TablePrinter t({"benchmark", "L1", "L2", "L3", "L4", "offchip/L1miss"});
    std::vector<double> l1, l2, l3, l4, off;
    for (std::size_t b = 0; b < opts.benches.size(); ++b) {
      const SimResult& r = results[b][c];
      l1.push_back(r.hit_rate(0));
      l2.push_back(r.hit_rate(1));
      l3.push_back(r.hit_rate(2));
      l4.push_back(r.hit_rate(3));
      off.push_back(r.offchip_fraction());
      t.add_row({to_string(opts.benches[b]), pct(r.hit_rate(0)),
                 pct(r.hit_rate(1)), pct(r.hit_rate(2)), pct(r.hit_rate(3)),
                 pct(r.offchip_fraction())});
    }
    t.add_row({"average", pct(mean(l1)), pct(mean(l2)), pct(mean(l3)),
               pct(mean(l4)), pct(mean(off))});
    if (opts.csv) {
      t.print_csv();
    } else {
      t.print();
    }
    std::printf("\n");
  }

  // The delta the paper quotes: +14% / +12% / +18% for L2/L3/L4 on average.
  std::vector<double> d2, d3, d4;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    d2.push_back(results[b][1].hit_rate(1) - results[b][0].hit_rate(1));
    d3.push_back(results[b][1].hit_rate(2) - results[b][0].hit_rate(2));
    d4.push_back(results[b][1].hit_rate(3) - results[b][0].hit_rate(3));
  }
  std::printf(
      "average hit-rate improvement under ReDHiP:  L2 %+.1f%%  L3 %+.1f%%  "
      "L4 %+.1f%%   (paper: +14%% / +12%% / +18%%)\n",
      mean(d2) * 100.0, mean(d3) * 100.0, mean(d4) * 100.0);
  return 0;
}
