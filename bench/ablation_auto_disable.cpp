// Ablation — the paper's §IV escape hatch: "In the case when the L1 cache
// miss rate is very low or the LLC is rarely used, our prediction mechanism
// would be disabled to not waste energy or add latency."
//
// Runs every workload with ReDHiP, with and without auto-disable.  On the
// paper's memory-hungry suite the gate should essentially never trigger
// (the mechanism stays useful); the final column shows a synthetic
// L1-resident workload where the gate eliminates the predictor's overhead.
#include <cstdio>

#include "common/cli.h"
#include "harness/experiment.h"
#include "harness/report.h"

using namespace redhip;

int main(int argc, char** argv) {
  CliOptions cli(argc, argv);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);

  auto gate_on = [](HierarchyConfig& c) { c.auto_disable.enabled = true; };
  const std::vector<SchemeColumn> columns = {
      {"Base", Scheme::kBase},
      {"ReDHiP", Scheme::kRedhip},
      {"ReDHiP+gate", Scheme::kRedhip, InclusionPolicy::kInclusive, false,
       gate_on},
  };
  const auto results = run_matrix(opts, columns);

  std::printf("Ablation — §IV auto-disable gate on the evaluation suite\n");
  TablePrinter t({"benchmark", "speedup", "speedup+gate", "dyn energy",
                  "dyn energy+gate", "refs gated off"});
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    const Comparison plain = compare(results[b][0], results[b][1]);
    const Comparison gated = compare(results[b][0], results[b][2]);
    const double gated_frac =
        static_cast<double>(results[b][2].predictor_disabled_refs) /
        static_cast<double>(results[b][2].total_refs);
    t.add_row({to_string(opts.benches[b]), pct_delta(plain.speedup),
               pct_delta(gated.speedup), pct(plain.dyn_energy_ratio),
               pct(gated.dyn_energy_ratio), pct(gated_frac)});
  }
  if (opts.csv) {
    t.print_csv();
  } else {
    t.print();
  }
  std::printf(
      "\nexpected: on this memory-hungry suite the gate stays open (last "
      "column ~0%%) and results match plain ReDHiP; the gate exists for the "
      "L1-resident workloads the paper excluded from evaluation\n");
  return 0;
}
