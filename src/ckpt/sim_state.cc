// MulticoreSimulator checkpoint payload codec.
//
// Defined here — in the subsystem that owns the on-disk format — rather
// than in simulator.cc: they are member functions (declared in
// sim/simulator.h) so the codec reaches private state, but the simulator
// itself never calls them, so src/sim stays independent of src/ckpt.
//
// The payload captures everything a run needs to continue bit-identically
// from a safe boundary: per-core micro-state, every statistics counter,
// all tag arrays (complete state only for embedded-LRU arrays — gated by
// ckpt_supported()), predictor tables, prefetcher tables, the fault
// injector's RNG cursors, and the observability accumulators including the
// emitted JSONL prefix.  Deliberately absent, because it is regenerable or
// derived: trace buffers and pre-generated batches (the sources are
// re-skipped to refs_done on restore), the scheduler heap, the energy
// breakdown (finalize_result reprices from counters), and host-side
// timings.  Layout changes must bump kCkptSchemaVersion (checkpoint_io.h).
#include <cstdint>

#include "common/bytestream.h"
#include "sim/simulator.h"

namespace redhip {

namespace {

void save_level_events(ByteWriter& w, const LevelEvents& ev) {
  w.u64(ev.tag_probes);
  w.u64(ev.data_probes);
  w.u64(ev.fills);
  w.u64(ev.invalidations);
  w.u64(ev.writebacks);
  w.u64(ev.accesses);
  w.u64(ev.hits);
  w.u64(ev.misses);
  w.u64(ev.evictions);
  w.u64(ev.skipped);
}

void load_level_events(ByteReader& r, LevelEvents& ev) {
  ev.tag_probes = r.u64();
  ev.data_probes = r.u64();
  ev.fills = r.u64();
  ev.invalidations = r.u64();
  ev.writebacks = r.u64();
  ev.accesses = r.u64();
  ev.hits = r.u64();
  ev.misses = r.u64();
  ev.evictions = r.u64();
  ev.skipped = r.u64();
}

void save_prefetch_events(ByteWriter& w, const PrefetchEvents& ev) {
  w.u64(ev.table_lookups);
  w.u64(ev.issued);
  w.u64(ev.useful);
  w.u64(ev.useless);
  w.u64(ev.redundant);
}

void load_prefetch_events(ByteReader& r, PrefetchEvents& ev) {
  ev.table_lookups = r.u64();
  ev.issued = r.u64();
  ev.useful = r.u64();
  ev.useless = r.u64();
  ev.redundant = r.u64();
}

void save_fault_stats(ByteWriter& w, const FaultStats& s) {
  w.u64(s.pt_bits_cleared);
  w.u64(s.pt_bits_set);
  w.u64(s.recal_chunks_dropped);
  w.u64(s.trace_refs_perturbed);
  w.u64(s.audit_checks);
  w.u64(s.invariant_violations);
  w.u64(s.recovery_recalibrations);
  w.u64(s.recovery_stall_cycles);
}

void load_fault_stats(ByteReader& r, FaultStats& s) {
  s.pt_bits_cleared = r.u64();
  s.pt_bits_set = r.u64();
  s.recal_chunks_dropped = r.u64();
  s.trace_refs_perturbed = r.u64();
  s.audit_checks = r.u64();
  s.invariant_violations = r.u64();
  s.recovery_recalibrations = r.u64();
  s.recovery_stall_cycles = r.u64();
}

}  // namespace

bool MulticoreSimulator::ckpt_supported() const {
  // A checkpoint must capture tag-array state completely; packed entries
  // are the whole state only for embedded-LRU arrays (the same gate the
  // parallel engine's speculation rollback uses).
  for (const TagArray& a : private_) {
    if (!a.state_is_self_contained()) return false;
  }
  return shared_->state_is_self_contained();
}

void MulticoreSimulator::ckpt_serialize(ByteWriter& w) const {
  // Structural echo, validated on restore before anything is applied.
  w.u32(config_.cores);
  w.u32(config_.num_levels());

  for (const CoreState& cs : cores_) {
    w.u64(cs.refs_done);
    w.u64(cs.clock);
    w.u32(static_cast<std::uint32_t>(cs.cpi.remainder_centi()));
    w.u64(cs.l1_last_line);
    w.boolean(cs.l1_last_dirty);
    w.boolean(cs.exhausted);
  }

  w.u64(global_stall_cycles_);
  w.u64(recal_stall_cycles_);
  w.u64(memory_accesses_);
  w.u64(demand_memory_accesses_);
  w.u64(memory_writebacks_);
  for (const LevelEvents& ev : events_) save_level_events(w, ev);
  save_prefetch_events(w, prefetch_events_);
  w.u64(audit_checks_);
  w.u64(invariant_violations_);
  w.u64(recovery_recals_);
  w.u64(recovery_stall_cycles_);

  w.boolean(predictor_active_);
  w.u64(epoch_refs_seen_);
  w.u64(epoch_start_misses_);
  w.u64(epoch_start_lookups_);
  w.u64(epoch_start_absents_);
  w.u32(disable_backoff_);
  w.u32(disabled_epochs_left_);
  w.u64(predictor_disabled_refs_);
  w.u64(excl_l1_misses_);

  // Only the packed entries are serialized: the SoA partial-tag lanes are
  // derived state and ckpt_restore_entries rebuilds them, so the checkpoint
  // format is unchanged by the lane layout (and stays the smaller of the
  // two representations).
  for (const TagArray& a : private_) w.u64_vec(a.ckpt_entries());
  w.u64_vec(shared_->ckpt_entries());

  w.boolean(llc_dir_on_);
  if (llc_dir_on_) {
    w.u64(llc_dir_.size());
    w.bytes(llc_dir_.data(), llc_dir_.size());
  }

  w.boolean(llc_pred_ != nullptr);
  if (llc_pred_ != nullptr) llc_pred_->ckpt_save(w);
  w.u32(static_cast<std::uint32_t>(excl_pred_.size()));
  for (const auto& row : excl_pred_) {
    w.u32(static_cast<std::uint32_t>(row.size()));
    for (const auto& t : row) t->ckpt_save(w);
  }
  w.boolean(excl_shared_pred_ != nullptr);
  if (excl_shared_pred_ != nullptr) excl_shared_pred_->ckpt_save(w);

  w.u32(static_cast<std::uint32_t>(prefetchers_.size()));
  for (const auto& pf : prefetchers_) pf->ckpt_save(w);

  w.boolean(injector_ != nullptr);
  if (injector_ != nullptr) {
    const FaultInjector::CkptState st = injector_->ckpt_state();
    for (const Xoshiro256::State& s : st.streams) {
      for (std::uint64_t word : s.s) w.u64(word);
    }
    save_fault_stats(w, st.stats);
  }

  w.boolean(obs_ != nullptr);
  if (obs_ != nullptr) obs_->ckpt_save(w);
}

bool MulticoreSimulator::ckpt_restore_payload(ByteReader& r) {
  if (ran_) return false;  // restore applies to a fresh instance only
  if (r.u32() != config_.cores) return false;
  if (r.u32() != config_.num_levels()) return false;

  for (CoreState& cs : cores_) {
    cs.refs_done = r.u64();
    cs.clock = r.u64();
    const std::uint32_t rem = r.u32();
    if (rem >= 100) return false;
    cs.cpi.set_remainder_centi(rem);
    cs.l1_last_line = r.u64();
    cs.l1_last_dirty = r.boolean();
    cs.exhausted = r.boolean();
    if (!r.ok()) return false;
    // Fast-forward the (fresh) trace source past the consumed references;
    // buffered-but-unconsumed references were never serialized and simply
    // regenerate from here.
    cs.trace->skip(cs.refs_done);
    cs.buf_pos = 0;
    cs.buf_len = 0;
  }

  global_stall_cycles_ = r.u64();
  recal_stall_cycles_ = r.u64();
  memory_accesses_ = r.u64();
  demand_memory_accesses_ = r.u64();
  memory_writebacks_ = r.u64();
  for (LevelEvents& ev : events_) load_level_events(r, ev);
  load_prefetch_events(r, prefetch_events_);
  audit_checks_ = r.u64();
  invariant_violations_ = r.u64();
  recovery_recals_ = r.u64();
  recovery_stall_cycles_ = r.u64();

  predictor_active_ = r.boolean();
  epoch_refs_seen_ = r.u64();
  epoch_start_misses_ = r.u64();
  epoch_start_lookups_ = r.u64();
  epoch_start_absents_ = r.u64();
  disable_backoff_ = r.u32();
  disabled_epochs_left_ = r.u32();
  predictor_disabled_refs_ = r.u64();
  excl_l1_misses_ = r.u64();

  for (TagArray& a : private_) {
    if (!a.ckpt_restore_entries(r.u64_vec())) return false;
  }
  if (!shared_->ckpt_restore_entries(r.u64_vec())) return false;

  if (r.boolean() != llc_dir_on_) return false;
  if (llc_dir_on_) {
    if (r.u64() != llc_dir_.size()) return false;
    if (!r.raw(llc_dir_.data(), llc_dir_.size())) return false;
  }

  if (r.boolean() != (llc_pred_ != nullptr)) return false;
  if (llc_pred_ != nullptr && !llc_pred_->ckpt_load(r)) return false;
  if (r.u32() != excl_pred_.size()) return false;
  for (auto& row : excl_pred_) {
    if (r.u32() != row.size()) return false;
    for (auto& t : row) {
      if (!t->ckpt_load(r)) return false;
    }
  }
  if (r.boolean() != (excl_shared_pred_ != nullptr)) return false;
  if (excl_shared_pred_ != nullptr && !excl_shared_pred_->ckpt_load(r)) {
    return false;
  }

  if (r.u32() != prefetchers_.size()) return false;
  for (auto& pf : prefetchers_) {
    if (!pf->ckpt_load(r)) return false;
  }

  if (r.boolean() != (injector_ != nullptr)) return false;
  if (injector_ != nullptr) {
    FaultInjector::CkptState st;
    for (Xoshiro256::State& s : st.streams) {
      for (std::uint64_t& word : s.s) word = r.u64();
    }
    load_fault_stats(r, st.stats);
    if (!r.ok()) return false;
    injector_->ckpt_restore(st);
  }

  if (r.boolean() != (obs_ != nullptr)) return false;
  if (obs_ != nullptr && !obs_->ckpt_load(r)) return false;

  if (!r.ok()) return false;
  // Interval accounting resumes from the restored position: the state just
  // came *from* disk, so nothing is due until another interval elapses.
  ckpt_last_save_refs_ = ckpt_refs_done();
  // A restore at or past the one-shot point means that checkpoint (or a
  // later one) already exists — rewriting it would only churn the shared
  // warmup file other sweep cells are reading.
  if (ckpt_ctl_ != nullptr && ckpt_ctl_->save_at_refs > 0 &&
      ckpt_last_save_refs_ >= ckpt_ctl_->save_at_refs) {
    ckpt_save_at_done_ = true;
  }
  return true;
}

}  // namespace redhip
