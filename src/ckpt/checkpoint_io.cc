#include "ckpt/checkpoint_io.h"

#include <csignal>
#include <filesystem>

#include "common/bytestream.h"
#include "common/file_io.h"
#include "common/fnv.h"

namespace redhip {

namespace {

constexpr FileEnvelope kEnvelope{"RDHPCKPT", kCkptSchemaVersion, "checkpoint"};

std::atomic<bool> g_stop_requested{false};

void handle_shutdown_signal(int) {
  // Async-signal-safe: a lock-free atomic store and nothing else.  The run
  // notices at its next safe boundary, checkpoints, and exits 75.
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t ckpt_key(const std::string& bench, std::uint32_t scale,
                       std::uint64_t seed, std::uint64_t config_dig) {
  Fnv1a h;
  h.str("redhip-ckpt");
  h.u32(kCkptSchemaVersion);
  h.str(bench);
  h.u32(scale);
  h.u64(seed);
  h.u64(config_dig);
  return h.digest();
}

Status save_checkpoint(const MulticoreSimulator& sim, const std::string& path,
                       std::uint64_t key) {
  ByteWriter w;
  sim.ckpt_serialize(w);
  const std::string payload(reinterpret_cast<const char*>(w.buffer().data()),
                            w.buffer().size());
  return write_file_atomic(path, seal_envelope(kEnvelope, key, payload));
}

Status load_checkpoint(const std::string& path, std::uint64_t key,
                       MulticoreSimulator& sim) {
  Result<std::string> payload = open_envelope(kEnvelope, key, path);
  if (!payload.ok()) return payload.status();
  ByteReader r(reinterpret_cast<const std::uint8_t*>(payload.value().data()),
               payload.value().size());
  if (!sim.ckpt_restore_payload(r)) {
    return Status(StatusCode::kDataLoss,
                  std::string(kEnvelope.what) + " entry " + path +
                      ": payload does not match this configuration");
  }
  if (!r.exhausted()) {
    return Status(StatusCode::kDataLoss, std::string(kEnvelope.what) +
                                             " entry " + path +
                                             ": trailing bytes after payload");
  }
  return Status::Ok();
}

bool evict_checkpoint(const std::string& path) {
  std::error_code ec;
  return std::filesystem::remove(path, ec) && !ec;
}

const std::atomic<bool>* install_shutdown_flag() {
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  return &g_stop_requested;
}

}  // namespace redhip
