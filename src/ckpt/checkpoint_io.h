// Crash-safe checkpoint files.
//
// A checkpoint is a full simulator-state snapshot taken at a safe boundary
// (see sim/ckpt_control.h), wrapped in the same self-validating envelope
// the sweep result cache uses: magic, schema version, an embedded identity
// key, payload length, and a payload checksum.  Files are published only
// by atomic temp+rename, so a kill -9 at any instant leaves either the
// previous complete checkpoint or the new complete one — never a torn
// hybrid.  Anything that fails validation on load is DATA_LOSS: the caller
// evicts the file and cold-starts rather than ever trusting it.
//
// The payload codec itself lives in sim_state.cc (member functions of
// MulticoreSimulator, so the format can reach private state); this header
// is the file-level API the harness and sweep drive.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "sim/simulator.h"

namespace redhip {

// Bump whenever the payload layout (sim_state.cc) or envelope shape
// changes; older files then fail validation and are evicted as DATA_LOSS.
inline constexpr std::uint32_t kCkptSchemaVersion = 1;

// Process exit code for a graceful shutdown (SIGTERM/SIGINT observed, state
// checkpointed, run intentionally incomplete).  EX_TEMPFAIL by convention:
// rerun with --ckpt-restore to continue.
inline constexpr int kGracefulShutdownExitCode = 75;

// Identity of a checkpoint: which runs may restore it.  Deliberately
// excludes refs_per_core and the engine — a checkpoint taken at N executed
// references is a valid prefix of any longer run on any engine (all three
// are bit-identical), which is what lets sweep cells share one warmup
// checkpoint.  Includes everything that shapes simulated state evolution:
// benchmark, scale, seed, and the full config digest.
std::uint64_t ckpt_key(const std::string& bench, std::uint32_t scale,
                       std::uint64_t seed, std::uint64_t config_dig);

// Serialize `sim` (which must be at a safe boundary) and publish it to
// `path` atomically.
Status save_checkpoint(const MulticoreSimulator& sim, const std::string& path,
                       std::uint64_t key);

// Validate the checkpoint at `path` and apply it to `sim`, which must be
// freshly constructed (same workload recipe, not yet run); its trace
// sources are fast-forwarded to the checkpointed positions.  Returns
// NOT_FOUND when no file exists and DATA_LOSS on any validation or
// structural failure — in the DATA_LOSS case `sim` may be partially
// mutated and must be discarded (construct a fresh one and cold-start).
Status load_checkpoint(const std::string& path, std::uint64_t key,
                       MulticoreSimulator& sim);

// Remove a checkpoint that failed validation (or is no longer wanted).
// Returns true when a file was actually removed.
bool evict_checkpoint(const std::string& path);

// Install SIGTERM/SIGINT handlers that set the returned stop flag; wire it
// into CkptControl::stop_flag for a checkpoint-then-exit shutdown at the
// next safe boundary.  Idempotent; the flag outlives every run.
const std::atomic<bool>* install_shutdown_flag();

}  // namespace redhip
