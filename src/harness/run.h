// RunSpec / run_spec — one simulated configuration, end to end.
//
// This is the layer the benches and examples drive: name a workload, a
// scheme, an inclusion policy and a scale, get back a priced SimResult.
// `tweak` lets sweeps adjust any HierarchyConfig field (PT size,
// recalibration interval, memory latency, ...) before the run.
#pragma once

#include <atomic>
#include <functional>

#include "sim/simulator.h"
#include "trace/workloads.h"

namespace redhip {

// Which run loop executes the simulation.  kFast is the production engine
// (batched traces, specialized loops, heap scheduler); kReference is the
// original engine kept as the bit-identical oracle — both produce the same
// statistics (see tests/engine_equivalence_test), kReference just exists to
// prove it and to anchor bench_speed.  kParallel is the intra-run
// bound-weave engine (src/sim/parallel.cc): per-core private-level work on
// ThreadPool lanes, shared-level events applied in deterministic order on
// one thread — same bit-identity contract as the other two.
enum class SimEngine : std::uint8_t { kFast, kReference, kParallel };
std::string engine_name(SimEngine e);

struct RunSpec {
  BenchmarkId bench = BenchmarkId::kBwaves;
  Scheme scheme = Scheme::kBase;
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  std::uint32_t scale = 8;         // hierarchy + working-set divisor
  std::uint64_t refs_per_core = 1'000'000;
  bool prefetch = false;
  std::uint64_t seed = 42;
  SimEngine engine = SimEngine::kFast;
  // Worker threads for SimEngine::kParallel (0 = hardware concurrency);
  // ignored by the single-threaded engines.  Never affects results, only
  // wall time.
  std::uint32_t threads = 0;
  std::function<void(HierarchyConfig&)> tweak;

  // --- Crash-safe checkpoint/restore (src/ckpt) ------------------------------
  // None of these change simulated results: a restored run is bit-identical
  // to an uninterrupted one (stats, json_report, JSONL trace) on every
  // engine — tests/ckpt_restore_test and tests/ckpt_kill_test lock it in.
  //
  // Checkpoint file for this run ("" = checkpointing off).  Keyed by
  // (bench, scale, seed, config digest) — see ckpt_key() — so a stale or
  // foreign file at this path is rejected as DATA_LOSS and cold-started.
  std::string ckpt_path;
  // Periodic checkpoint every this many aggregate executed references
  // (0 = never), written at safe boundaries only.
  std::uint64_t ckpt_interval_refs = 0;
  // One-shot checkpoint when the aggregate count first reaches this value
  // (0 = never) — the sweep warmup-sharing hook.
  std::uint64_t ckpt_save_at_refs = 0;
  // Attempt to restore ckpt_path before running.  Missing file = cold
  // start; torn/corrupt/mismatched file = evict with a DATA_LOSS diagnostic
  // on stderr, then cold start.  Never a wrong result.
  bool ckpt_restore = false;
  // Graceful-shutdown flag (see install_shutdown_flag); when it is set the
  // run checkpoints at the next safe boundary and throws
  // GracefulShutdownRequest.  Not owned; may be null.
  const std::atomic<bool>* stop_flag = nullptr;
  // Wall-clock budget for this run, measured from run_spec entry (0 =
  // none).  Exceeding it throws DeadlineExceededError from a safe boundary;
  // run_matrix converts that to Status(kDeadlineExceeded) for the cell.
  double deadline_seconds = 0.0;
};

// The fully-resolved machine `spec` would simulate: scaled geometry, then
// the spec's prefetch/seed fields, then the tweak hook.  run_spec builds
// exactly this config; the sweep result cache hashes it (together with the
// workload identity) as the content address of the run.
HierarchyConfig resolved_config(const RunSpec& spec);

// Build the machine and the per-core traces for `spec` and run it.  Fills
// SimResult::host_seconds / host_mrefs_per_s with the wall time of the
// whole run (trace + simulator construction + simulation).
SimResult run_spec(const RunSpec& spec);

// Derived paper metrics of scheme X against the Base run of the same
// workload.
struct Comparison {
  double speedup = 1.0;             // T_base / T_x  (1.08 = +8%)
  double dyn_energy_ratio = 1.0;    // E_dyn_x / E_dyn_base
  double total_energy_ratio = 1.0;  // E_total_x / E_total_base
  double perf_energy_metric = 1.0;  // speedup x (E_total_base / E_total_x)
};
Comparison compare(const SimResult& base, const SimResult& x);

}  // namespace redhip
