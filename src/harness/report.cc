#include "harness/report.h"

#include <cstdio>

#include "common/check.h"

namespace redhip {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  REDHIP_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  REDHIP_CHECK_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > width[i]) width[i] = row[i].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i == 0) {
        std::printf("%-*s", static_cast<int>(width[i]), row[i].c_str());
      } else {
        std::printf("  %*s", static_cast<int>(width[i]), row[i].c_str());
      }
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t i = 0; i < width.size(); ++i) {
    rule += width[i] + (i == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < rule; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv() const {
  auto print_row = [](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ",", row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string pct_delta(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace redhip
