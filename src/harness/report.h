// Reporting helpers: aligned text tables (the benches print the same rows
// the paper's figures plot) and optional CSV emission for plotting.
#pragma once

#include <string>
#include <vector>

namespace redhip {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Render to stdout with aligned columns (first column left-aligned, the
  // rest right-aligned) and a rule under the header.
  void print() const;
  // Render as CSV to stdout.
  void print_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "+8.3%" / "-2.1%" from a ratio (1.083 -> "+8.3%").
std::string pct_delta(double ratio);
// "61.2%" from a fraction.
std::string pct(double fraction);
// Fixed-point with `digits` decimals.
std::string fixed(double v, int digits);

}  // namespace redhip
