// JSON serialization of simulation results — the machine-readable side of
// the reporting layer, for plotting pipelines and regression tooling.
// Hand-rolled (no dependency), emitting stable key order.
#pragma once

#include <string>

#include "harness/run.h"

namespace redhip {

// Full result dump: per-level events, predictor/prefetch counters, timing
// and the priced energy breakdown.
std::string to_json(const SimResult& result);

// A scheme-vs-base comparison.
std::string to_json(const Comparison& comparison);

}  // namespace redhip
