// Text-file machine descriptions — define a hierarchy without recompiling.
//
// The format is a small INI dialect (gem5-style ergonomics):
//
//   # 4-level Table I machine with ReDHiP
//   cores = 8
//   freq_ghz = 3.7
//   scheme = redhip            # base | phased | cbf | redhip | oracle |
//                              # partial-tag
//   inclusion = inclusive      # inclusive | hybrid | exclusive
//   memory_latency = 0
//
//   [level]                    # repeated, ordered L1 -> LLC (last = shared)
//   size = 32K                 # K/M/G suffixes
//   ways = 4
//
//   [level]
//   size = 64M
//   ways = 16
//   banks = 8
//   split_tags = true          # force a tag/data split (L3/L4-style)
//   phased = false
//
//   [redhip]
//   table_bits = 4M
//   recal_interval = 1000000
//   recal_mode = rolling       # rolling | batch
//   banks = 4
//
// Unknown keys are an error (config typos must not silently default).
// Energy/latency parameters are derived from cacti_lite for each level.
#pragma once

#include <string>

#include "sim/config.h"

namespace redhip {

// Parse a config from text.  Throws std::logic_error with a line number on
// any syntax or validation problem.
HierarchyConfig parse_config_text(const std::string& text);

// Load and parse a config file.
HierarchyConfig load_config_file(const std::string& path);

// Render a config back to the text format (round-trippable for the fields
// the format covers); useful for dumping derived machines.
std::string config_to_text(const HierarchyConfig& config);

}  // namespace redhip
