#include "harness/run.h"

#include <chrono>
#include <cstdio>

#include "ckpt/checkpoint_io.h"
#include "common/check.h"
#include "sim/config_digest.h"

namespace redhip {

std::string engine_name(SimEngine e) {
  switch (e) {
    case SimEngine::kFast: return "fast";
    case SimEngine::kReference: return "reference";
    case SimEngine::kParallel: return "parallel";
  }
  return "unknown";
}

HierarchyConfig resolved_config(const RunSpec& spec) {
  HierarchyConfig config =
      HierarchyConfig::scaled(spec.scale, spec.scheme, spec.inclusion);
  config.prefetch = spec.prefetch;
  config.seed = spec.seed;
  if (spec.tweak) spec.tweak(config);
  return config;
}

SimResult run_spec(const RunSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  HierarchyConfig config = resolved_config(spec);

  const auto build_sim = [&]() {
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::uint32_t> cpis;
    for (CoreId c = 0; c < config.cores; ++c) {
      traces.push_back(make_workload(spec.bench, c, spec.scale, spec.seed));
      cpis.push_back(workload_cpi_centi(spec.bench, c));
    }
    return std::make_unique<MulticoreSimulator>(config, std::move(traces),
                                                std::move(cpis));
  };
  std::unique_ptr<MulticoreSimulator> sim = build_sim();

  const bool ckpt_on = !spec.ckpt_path.empty() ||
                       spec.stop_flag != nullptr || spec.deadline_seconds > 0;
  CkptControl ctl;  // must outlive the run below
  if (ckpt_on) {
    const std::uint64_t key = ckpt_key(to_string(spec.bench), spec.scale,
                                       spec.seed, config_digest(config));
    ctl.interval_refs = spec.ckpt_interval_refs;
    ctl.save_at_refs = spec.ckpt_save_at_refs;
    ctl.stop_flag = spec.stop_flag;
    if (spec.deadline_seconds > 0) {
      ctl.has_deadline = true;
      ctl.deadline = start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(
                                     spec.deadline_seconds));
    }
    if (!spec.ckpt_path.empty()) {
      ctl.save = [path = spec.ckpt_path, key](MulticoreSimulator& s) {
        const Status st = save_checkpoint(s, path, key);
        // A failed save never corrupts the run; it only loses restart
        // coverage, so it warns instead of aborting a healthy simulation.
        if (!st.ok()) {
          std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
        }
      };
    }
    if (!spec.ckpt_path.empty() && spec.ckpt_restore) {
      if (!sim->ckpt_supported()) {
        std::fprintf(stderr,
                     "warning: checkpoint restore skipped: this "
                     "configuration's tag-array state is not "
                     "self-contained\n");
      } else {
        // Capture must be live before the restore replays the JSONL prefix.
        sim->set_ckpt_control(&ctl);
        const Status st = load_checkpoint(spec.ckpt_path, key, *sim);
        if (st.code() == StatusCode::kDataLoss) {
          // Torn, corrupt, or foreign: evict and cold-start — a wrong
          // result is never an option, a lost warmup merely costs time.
          std::fprintf(stderr, "warning: %s; evicting and cold-starting\n",
                       st.to_string().c_str());
          evict_checkpoint(spec.ckpt_path);
          // Destroy the tainted simulator *before* building its
          // replacement: its obs writer may hold the same trace file open
          // (the restore replays the captured JSONL prefix into it), and a
          // late flush would land inside the new run's freshly truncated
          // file.
          sim.reset();
          sim = build_sim();
        } else if (st.ok() &&
                   sim->ckpt_refs_done() >
                       spec.refs_per_core * config.cores) {
          // Valid checkpoint, but past this run's end: a prefix of a longer
          // run is useless here.  Keep the file (it is still valid for the
          // run that wrote it) and cold-start.
          std::fprintf(stderr,
                       "warning: checkpoint %s is ahead of this run "
                       "(ignoring it)\n",
                       spec.ckpt_path.c_str());
          sim.reset();  // same teardown-before-rebuild rule as above
          sim = build_sim();
        }
        // kNotFound: plain cold start, nothing to say.
      }
    }
    sim->set_ckpt_control(&ctl);
  }

  SimResult r;
  switch (spec.engine) {
    case SimEngine::kFast:
      r = sim->run(spec.refs_per_core);
      break;
    case SimEngine::kReference:
      r = sim->run_reference(spec.refs_per_core);
      break;
    case SimEngine::kParallel: {
      ParallelOptions po;
      po.threads = spec.threads;
      r = sim->run_parallel(spec.refs_per_core, po);
      break;
    }
  }
  r.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.host_mrefs_per_s = r.host_seconds > 0.0
                           ? static_cast<double>(r.total_refs) /
                                 r.host_seconds / 1e6
                           : 0.0;
  return r;
}

Comparison compare(const SimResult& base, const SimResult& x) {
  REDHIP_CHECK(base.exec_cycles > 0 && x.exec_cycles > 0);
  // The energy ratios below all guard a zero denominator; the speedup must
  // too, or a hand-built/corrupt comparand silently puts inf into reports.
  REDHIP_CHECK_MSG(base.total_core_cycles > 0 && x.total_core_cycles > 0,
                   "compare() requires non-zero total_core_cycles");
  Comparison c;
  // Multiprogrammed performance: aggregate core time (average per-core
  // speedup), not the slowest core — one unlucky core would otherwise mask
  // the mean improvement the paper reports.
  c.speedup = static_cast<double>(base.total_core_cycles) /
              static_cast<double>(x.total_core_cycles);
  const double base_dyn = base.energy.dynamic_total_j();
  const double x_dyn = x.energy.dynamic_total_j();
  c.dyn_energy_ratio = base_dyn > 0.0 ? x_dyn / base_dyn : 1.0;
  const double base_total = base.energy.total_j();
  const double x_total = x.energy.total_j();
  c.total_energy_ratio = base_total > 0.0 ? x_total / base_total : 1.0;
  c.perf_energy_metric =
      c.speedup * (x_total > 0.0 ? base_total / x_total : 1.0);
  return c;
}

}  // namespace redhip
