#include "harness/run.h"

#include <chrono>

#include "common/check.h"

namespace redhip {

std::string engine_name(SimEngine e) {
  switch (e) {
    case SimEngine::kFast: return "fast";
    case SimEngine::kReference: return "reference";
    case SimEngine::kParallel: return "parallel";
  }
  return "unknown";
}

HierarchyConfig resolved_config(const RunSpec& spec) {
  HierarchyConfig config =
      HierarchyConfig::scaled(spec.scale, spec.scheme, spec.inclusion);
  config.prefetch = spec.prefetch;
  config.seed = spec.seed;
  if (spec.tweak) spec.tweak(config);
  return config;
}

SimResult run_spec(const RunSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  HierarchyConfig config = resolved_config(spec);

  std::vector<std::unique_ptr<TraceSource>> traces;
  std::vector<std::uint32_t> cpis;
  for (CoreId c = 0; c < config.cores; ++c) {
    traces.push_back(make_workload(spec.bench, c, spec.scale, spec.seed));
    cpis.push_back(workload_cpi_centi(spec.bench, c));
  }
  MulticoreSimulator sim(config, std::move(traces), std::move(cpis));
  SimResult r;
  switch (spec.engine) {
    case SimEngine::kFast:
      r = sim.run(spec.refs_per_core);
      break;
    case SimEngine::kReference:
      r = sim.run_reference(spec.refs_per_core);
      break;
    case SimEngine::kParallel: {
      ParallelOptions po;
      po.threads = spec.threads;
      r = sim.run_parallel(spec.refs_per_core, po);
      break;
    }
  }
  r.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.host_mrefs_per_s = r.host_seconds > 0.0
                           ? static_cast<double>(r.total_refs) /
                                 r.host_seconds / 1e6
                           : 0.0;
  return r;
}

Comparison compare(const SimResult& base, const SimResult& x) {
  REDHIP_CHECK(base.exec_cycles > 0 && x.exec_cycles > 0);
  // The energy ratios below all guard a zero denominator; the speedup must
  // too, or a hand-built/corrupt comparand silently puts inf into reports.
  REDHIP_CHECK_MSG(base.total_core_cycles > 0 && x.total_core_cycles > 0,
                   "compare() requires non-zero total_core_cycles");
  Comparison c;
  // Multiprogrammed performance: aggregate core time (average per-core
  // speedup), not the slowest core — one unlucky core would otherwise mask
  // the mean improvement the paper reports.
  c.speedup = static_cast<double>(base.total_core_cycles) /
              static_cast<double>(x.total_core_cycles);
  const double base_dyn = base.energy.dynamic_total_j();
  const double x_dyn = x.energy.dynamic_total_j();
  c.dyn_energy_ratio = base_dyn > 0.0 ? x_dyn / base_dyn : 1.0;
  const double base_total = base.energy.total_j();
  const double x_total = x.energy.total_j();
  c.total_energy_ratio = base_total > 0.0 ? x_total / base_total : 1.0;
  c.perf_energy_metric =
      c.speedup * (x_total > 0.0 ? base_total / x_total : 1.0);
  return c;
}

}  // namespace redhip
