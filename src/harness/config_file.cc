#include "harness/config_file.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "energy/cacti_lite.h"

namespace redhip {
namespace {

[[noreturn]] void fail(int line_no, const std::string& msg) {
  std::ostringstream os;
  os << "config line " << line_no << ": " << msg;
  throw std::logic_error(os.str());
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

// "32K" / "4M" / "1G" / plain integers.  `key` makes the diagnostic name
// the offending key, not just the line.
std::uint64_t parse_size(const std::string& v, int line_no,
                         const std::string& key) {
  if (v.empty()) fail(line_no, "key '" + key + "': empty numeric value");
  std::uint64_t mult = 1;
  std::string digits = v;
  const char suffix = static_cast<char>(std::toupper(v.back()));
  if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
    mult = suffix == 'K' ? 1_KiB : suffix == 'M' ? 1_MiB : 1_GiB;
    digits = v.substr(0, v.size() - 1);
  }
  std::uint64_t parsed = 0;
  std::size_t pos = 0;
  try {
    parsed = std::stoull(digits, &pos);
  } catch (const std::exception&) {
    fail(line_no, "key '" + key + "': bad numeric value: " + v);
  }
  if (pos != digits.size()) {
    fail(line_no, "key '" + key + "': bad numeric value: " + v);
  }
  return parsed * mult;
}

double parse_double(const std::string& v, int line_no,
                    const std::string& key) {
  double parsed = 0.0;
  std::size_t pos = 0;
  try {
    parsed = std::stod(v, &pos);
  } catch (const std::exception&) {
    fail(line_no, "key '" + key + "': bad floating-point value: " + v);
  }
  if (pos != v.size()) {
    fail(line_no, "key '" + key + "': bad floating-point value: " + v);
  }
  return parsed;
}

bool parse_bool(const std::string& v, int line_no, const std::string& key) {
  const std::string l = lower(v);
  if (l == "true" || l == "1" || l == "yes" || l == "on") return true;
  if (l == "false" || l == "0" || l == "no" || l == "off") return false;
  fail(line_no, "key '" + key + "': bad boolean: " + v);
}

Scheme parse_scheme(const std::string& v, int line_no) {
  const std::string l = lower(v);
  if (l == "base") return Scheme::kBase;
  if (l == "phased") return Scheme::kPhased;
  if (l == "cbf") return Scheme::kCbf;
  if (l == "redhip") return Scheme::kRedhip;
  if (l == "oracle") return Scheme::kOracle;
  if (l == "partial-tag" || l == "partialtag") return Scheme::kPartialTag;
  fail(line_no, "unknown scheme: " + v);
}

InclusionPolicy parse_inclusion(const std::string& v, int line_no) {
  const std::string l = lower(v);
  if (l == "inclusive") return InclusionPolicy::kInclusive;
  if (l == "hybrid") return InclusionPolicy::kHybrid;
  if (l == "exclusive") return InclusionPolicy::kExclusive;
  fail(line_no, "unknown inclusion policy: " + v);
}

ReplacementKind parse_replacement(const std::string& v, int line_no) {
  const std::string l = lower(v);
  if (l == "lru") return ReplacementKind::kLru;
  if (l == "tree-plru" || l == "plru") return ReplacementKind::kTreePlru;
  if (l == "nru") return ReplacementKind::kNru;
  if (l == "random") return ReplacementKind::kRandom;
  fail(line_no, "unknown replacement policy: " + v);
}

struct PendingLevel {
  CacheGeometry geom;
  bool phased = false;
  bool split_tags = false;
};

}  // namespace

HierarchyConfig parse_config_text(const std::string& text) {
  HierarchyConfig c;
  c.levels.clear();

  std::vector<PendingLevel> levels;
  std::string section;  // "" = top level
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;

  auto finalize_levels = [&] {
    for (const auto& pl : levels) {
      LevelSpec spec;
      spec.geom = pl.geom;
      spec.energy = CactiLite::cache_params(
          pl.geom.size_bytes, pl.split_tags);
      spec.phased = pl.phased;
      c.levels.push_back(spec);
    }
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(line_no, "unterminated section header");
      section = lower(trim(line.substr(1, line.size() - 2)));
      if (section == "level") {
        levels.emplace_back();
        levels.back().geom.ways = 1;
      } else if (section != "redhip" && section != "cbf" &&
                 section != "prefetcher" && section != "auto_disable" &&
                 section != "partial_tag" && section != "fault" &&
                 section != "audit" && section != "obs") {
        fail(line_no, "unknown section: [" + section + "]");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, "empty value for " + key);

    if (section.empty()) {
      if (key == "cores") {
        c.cores = static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "freq_ghz") {
        c.freq_ghz = parse_double(value, line_no, key);
      } else if (key == "scheme") {
        c.scheme = parse_scheme(value, line_no);
      } else if (key == "inclusion") {
        c.inclusion = parse_inclusion(value, line_no);
      } else if (key == "memory_latency") {
        c.memory_latency = parse_size(value, line_no, key);
      } else if (key == "memory_energy_nj") {
        c.memory_energy_nj = parse_double(value, line_no, key);
      } else if (key == "prefetch") {
        c.prefetch = parse_bool(value, line_no, key);
      } else if (key == "charge_fill_energy") {
        c.charge_fill_energy = parse_bool(value, line_no, key);
      } else if (key == "model_writebacks") {
        c.model_writebacks = parse_bool(value, line_no, key);
      } else if (key == "seed") {
        c.seed = parse_size(value, line_no, key);
      } else {
        fail(line_no, "unknown key: " + key);
      }
    } else if (section == "level") {
      PendingLevel& pl = levels.back();
      if (key == "size") {
        pl.geom.size_bytes = parse_size(value, line_no, key);
      } else if (key == "ways") {
        pl.geom.ways = static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "banks") {
        pl.geom.banks = static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "line_bytes") {
        pl.geom.line_bytes =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "replacement") {
        pl.geom.replacement = parse_replacement(value, line_no);
      } else if (key == "phased") {
        pl.phased = parse_bool(value, line_no, key);
      } else if (key == "split_tags") {
        pl.split_tags = parse_bool(value, line_no, key);
      } else {
        fail(line_no, "unknown [level] key: " + key);
      }
    } else if (section == "redhip") {
      if (key == "table_bits") {
        c.redhip.table_bits = parse_size(value, line_no, key);
      } else if (key == "recal_interval") {
        c.redhip.recal_interval_l1_misses = parse_size(value, line_no, key);
      } else if (key == "banks") {
        c.redhip.banks =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "recal_mode") {
        const std::string l = lower(value);
        if (l == "batch") {
          c.redhip.recal_mode = RecalMode::kBatch;
        } else if (l == "rolling") {
          c.redhip.recal_mode = RecalMode::kRolling;
        } else {
          fail(line_no, "unknown recal_mode: " + value);
        }
      } else {
        fail(line_no, "unknown [redhip] key: " + key);
      }
    } else if (section == "cbf") {
      if (key == "index_bits") {
        c.cbf.index_bits =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "counter_bits") {
        c.cbf.counter_bits =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else {
        fail(line_no, "unknown [cbf] key: " + key);
      }
    } else if (section == "partial_tag") {
      if (key == "partial_bits") {
        c.partial_tag.partial_bits =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else {
        fail(line_no, "unknown [partial_tag] key: " + key);
      }
    } else if (section == "prefetcher") {
      if (key == "index_bits") {
        c.prefetcher.index_bits =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "degree") {
        c.prefetcher.degree =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "distance") {
        c.prefetcher.distance =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else {
        fail(line_no, "unknown [prefetcher] key: " + key);
      }
    } else if (section == "fault") {
      if (key == "enabled") {
        c.fault.enabled = parse_bool(value, line_no, key);
      } else if (key == "rate_per_mref") {
        c.fault.rate_per_mref =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "sites") {
        try {
          c.fault.site_mask = parse_fault_sites(value);
        } catch (const std::exception& e) {
          fail(line_no, "key 'sites': " + std::string(e.what()));
        }
      } else if (key == "seed") {
        c.fault.seed = parse_size(value, line_no, key);
      } else if (key == "transient") {
        c.fault.transient = parse_bool(value, line_no, key);
      } else {
        fail(line_no, "unknown [fault] key: " + key);
      }
    } else if (section == "audit") {
      if (key == "enabled") {
        c.audit.enabled = parse_bool(value, line_no, key);
      } else if (key == "policy") {
        const std::string l = lower(value);
        if (l == "count-only") {
          c.audit.policy = RecoveryPolicy::kCountOnly;
        } else if (l == "recalibrate") {
          c.audit.policy = RecoveryPolicy::kRecalibrate;
        } else if (l == "abort-retry") {
          c.audit.policy = RecoveryPolicy::kAbortRetry;
        } else {
          fail(line_no, "key 'policy': unknown recovery policy: " + value);
        }
      } else {
        fail(line_no, "unknown [audit] key: " + key);
      }
    } else if (section == "obs") {
      if (key == "enabled") {
        c.obs.enabled = parse_bool(value, line_no, key);
      } else if (key == "epoch_refs") {
        c.obs.epoch_refs = parse_size(value, line_no, key);
      } else if (key == "epoch_cycles") {
        c.obs.epoch_cycles = parse_size(value, line_no, key);
      } else if (key == "trace_path") {
        c.obs.trace_path = value;
      } else if (key == "timing") {
        c.obs.timing = parse_bool(value, line_no, key);
      } else {
        fail(line_no, "unknown [obs] key: " + key);
      }
    } else if (section == "auto_disable") {
      if (key == "enabled") {
        c.auto_disable.enabled = parse_bool(value, line_no, key);
      } else if (key == "epoch_refs") {
        c.auto_disable.epoch_refs = parse_size(value, line_no, key);
      } else if (key == "min_l1_miss_ppm") {
        c.auto_disable.min_l1_miss_ppm =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else if (key == "min_bypass_ppm") {
        c.auto_disable.min_bypass_ppm =
            static_cast<std::uint32_t>(parse_size(value, line_no, key));
      } else {
        fail(line_no, "unknown [auto_disable] key: " + key);
      }
    }
  }

  if (levels.empty()) {
    throw std::logic_error("config defines no [level] sections");
  }
  finalize_levels();
  // Default predictor energy against the defined structures.
  c.redhip.energy = CactiLite::pt_params(std::max<std::uint64_t>(
      8, c.redhip.table_bits / 8));
  c.cbf.energy = c.redhip.energy;
  c.partial_tag.energy = CactiLite::pt_params(std::max<std::uint64_t>(
      8, c.levels.back().geom.lines() * (c.partial_tag.partial_bits + 1) / 8));
  c.validate();
  return c;
}

HierarchyConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  REDHIP_CHECK_MSG(in.good(), "cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_config_text(buf.str());
}

std::string config_to_text(const HierarchyConfig& config) {
  std::ostringstream os;
  os << "cores = " << config.cores << "\n";
  os << "freq_ghz = " << config.freq_ghz << "\n";
  os << "scheme = " << [&] {
    std::string s = to_string(config.scheme);
    for (char& ch : s) ch = static_cast<char>(std::tolower(ch));
    return s == "partialtag" ? std::string("partial-tag") : s;
  }() << "\n";
  os << "inclusion = " << to_string(config.inclusion) << "\n";
  os << "memory_latency = " << config.memory_latency << "\n";
  os << "prefetch = " << (config.prefetch ? "true" : "false") << "\n";
  for (const auto& lvl : config.levels) {
    os << "\n[level]\n";
    os << "size = " << lvl.geom.size_bytes << "\n";
    os << "ways = " << lvl.geom.ways << "\n";
    os << "banks = " << lvl.geom.banks << "\n";
    os << "replacement = " << to_string(lvl.geom.replacement) << "\n";
    os << "phased = " << (lvl.phased ? "true" : "false") << "\n";
    os << "split_tags = " << (lvl.energy.tag_energy_nj > 0 ? "true" : "false")
       << "\n";
  }
  os << "\n[redhip]\n";
  os << "table_bits = " << config.redhip.table_bits << "\n";
  os << "recal_interval = " << config.redhip.recal_interval_l1_misses << "\n";
  os << "recal_mode = " << to_string(config.redhip.recal_mode) << "\n";
  os << "banks = " << config.redhip.banks << "\n";
  if (config.fault.enabled) {
    os << "\n[fault]\n";
    os << "enabled = true\n";
    os << "rate_per_mref = " << config.fault.rate_per_mref << "\n";
    os << "sites = " << fault_sites_to_string(config.fault.site_mask) << "\n";
    os << "seed = " << config.fault.seed << "\n";
    os << "transient = " << (config.fault.transient ? "true" : "false")
       << "\n";
  }
  if (config.audit.enabled) {
    os << "\n[audit]\n";
    os << "enabled = true\n";
    os << "policy = " << to_string(config.audit.policy) << "\n";
  }
  if (config.obs.enabled) {
    os << "\n[obs]\n";
    os << "enabled = true\n";
    os << "epoch_refs = " << config.obs.epoch_refs << "\n";
    os << "epoch_cycles = " << config.obs.epoch_cycles << "\n";
    if (!config.obs.trace_path.empty()) {
      os << "trace_path = " << config.obs.trace_path << "\n";
    }
    os << "timing = " << (config.obs.timing ? "true" : "false") << "\n";
  }
  return os.str();
}

}  // namespace redhip
