#include "harness/json_report.h"

#include <sstream>

namespace redhip {
namespace {

// Minimal streaming JSON writer: objects and arrays with comma management.
class JsonWriter {
 public:
  void begin_object() {
    comma();
    os_ << '{';
    first_ = true;
  }
  void end_object() {
    os_ << '}';
    first_ = false;
  }
  void begin_array(const std::string& key) {
    this->key(key);
    os_ << '[';
    first_ = true;
  }
  void end_array() {
    os_ << ']';
    first_ = false;
  }
  void key(const std::string& k) {
    comma();
    os_ << '"' << k << "\":";
    first_ = true;  // the value follows without a comma
  }
  void value(std::uint64_t v) {
    comma();
    os_ << v;
  }
  void value(double v) {
    comma();
    os_ << v;
  }
  std::string str() const { return os_.str(); }

 private:
  void comma() {
    if (!first_) os_ << ',';
    first_ = false;
  }
  std::ostringstream os_;
  bool first_ = true;
};

void write_level(JsonWriter& w, const LevelEvents& ev) {
  w.begin_object();
  w.key("accesses");
  w.value(ev.accesses);
  w.key("hits");
  w.value(ev.hits);
  w.key("misses");
  w.value(ev.misses);
  w.key("tag_probes");
  w.value(ev.tag_probes);
  w.key("data_probes");
  w.value(ev.data_probes);
  w.key("fills");
  w.value(ev.fills);
  w.key("evictions");
  w.value(ev.evictions);
  w.key("invalidations");
  w.value(ev.invalidations);
  w.key("writebacks");
  w.value(ev.writebacks);
  w.key("skipped");
  w.value(ev.skipped);
  w.end_object();
}

}  // namespace

std::string to_json(const SimResult& r) {
  JsonWriter w;
  w.begin_object();

  w.key("total_refs");
  w.value(r.total_refs);
  w.key("exec_cycles");
  w.value(r.exec_cycles);
  w.key("total_core_cycles");
  w.value(r.total_core_cycles);
  w.key("elapsed_seconds");
  w.value(r.elapsed_seconds);
  w.key("recal_stall_cycles");
  w.value(r.recal_stall_cycles);
  w.key("memory_accesses");
  w.value(r.memory_accesses);
  w.key("demand_memory_accesses");
  w.value(r.demand_memory_accesses);
  w.key("memory_writebacks");
  w.value(r.memory_writebacks);
  w.key("predictor_disabled_refs");
  w.value(r.predictor_disabled_refs);

  w.begin_array("levels");
  for (const auto& lvl : r.levels) write_level(w, lvl);
  w.end_array();

  w.key("predictor");
  w.begin_object();
  w.key("lookups");
  w.value(r.predictor.lookups);
  w.key("updates");
  w.value(r.predictor.updates);
  w.key("predicted_absent");
  w.value(r.predictor.predicted_absent);
  w.key("predicted_present");
  w.value(r.predictor.predicted_present);
  w.key("true_positives");
  w.value(r.predictor.true_positives);
  w.key("false_positives");
  w.value(r.predictor.false_positives);
  w.key("recalibrations");
  w.value(r.predictor.recalibrations);
  w.key("recal_sets_read");
  w.value(r.predictor.recal_sets_read);
  w.end_object();

  // Only emitted when something happened — keeps fault-free reports stable.
  if (r.fault.injected_total() != 0 || r.fault.audit_checks != 0) {
    w.key("fault");
    w.begin_object();
    w.key("pt_bits_cleared");
    w.value(r.fault.pt_bits_cleared);
    w.key("pt_bits_set");
    w.value(r.fault.pt_bits_set);
    w.key("recal_chunks_dropped");
    w.value(r.fault.recal_chunks_dropped);
    w.key("trace_refs_perturbed");
    w.value(r.fault.trace_refs_perturbed);
    w.key("audit_checks");
    w.value(r.fault.audit_checks);
    w.key("invariant_violations");
    w.value(r.fault.invariant_violations);
    w.key("recovery_recalibrations");
    w.value(r.fault.recovery_recalibrations);
    w.key("recovery_stall_cycles");
    w.value(r.fault.recovery_stall_cycles);
    w.end_object();
  }

  w.key("prefetch");
  w.begin_object();
  w.key("issued");
  w.value(r.prefetch.issued);
  w.key("useful");
  w.value(r.prefetch.useful);
  w.key("useless");
  w.value(r.prefetch.useless);
  w.key("redundant");
  w.value(r.prefetch.redundant);
  w.end_object();

  w.key("energy_j");
  w.begin_object();
  w.begin_array("level_dynamic");
  for (double v : r.energy.level_dynamic_j) w.value(v);
  w.end_array();
  w.key("predictor_dynamic");
  w.value(r.energy.predictor_dynamic_j);
  w.key("recalibration");
  w.value(r.energy.recalibration_j);
  w.key("prefetcher");
  w.value(r.energy.prefetcher_j);
  w.key("memory");
  w.value(r.energy.memory_j);
  w.key("leakage");
  w.value(r.energy.leakage_j);
  w.key("dynamic_total");
  w.value(r.energy.dynamic_total_j());
  w.key("total");
  w.value(r.energy.total_j());
  w.end_object();

  w.begin_array("core_cycles");
  for (Cycles c : r.core_cycles) w.value(c);
  w.end_array();

  // Epoch series from the observability layer; absent (not an empty array)
  // when obs was off, so obs-free reports keep their pre-obs shape.  The
  // per-object schema matches the JSONL "epoch" event — scripts/
  // plot_epochs.py reads either source.
  if (!r.epochs.empty()) {
    w.begin_array("epochs");
    for (const EpochSample& e : r.epochs) {
      w.begin_object();
      w.key("index");
      w.value(e.index);
      w.key("end_ref");
      w.value(e.end_ref);
      w.key("end_cycles");
      w.value(e.end_cycles);
      w.key("refs");
      w.value(e.refs);
      w.key("l1_accesses");
      w.value(e.l1_accesses);
      w.key("l1_misses");
      w.value(e.l1_misses);
      w.key("lookups");
      w.value(e.lookups);
      w.key("predicted_absent");
      w.value(e.predicted_absent);
      w.key("predicted_present");
      w.value(e.predicted_present);
      w.key("tp");
      w.value(e.tp);
      w.key("fp");
      w.value(e.fp);
      w.key("tn");
      w.value(e.tn);
      w.key("fn");
      w.value(e.fn);
      w.key("recals");
      w.value(e.recalibrations);
      w.key("pt_occupancy");
      w.value(e.pt_occupancy);
      w.key("active");
      w.value(static_cast<std::uint64_t>(e.predictor_active ? 1 : 0));
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
  return w.str();
}

std::string to_json(const Comparison& c) {
  JsonWriter w;
  w.begin_object();
  w.key("speedup");
  w.value(c.speedup);
  w.key("dyn_energy_ratio");
  w.value(c.dyn_energy_ratio);
  w.key("total_energy_ratio");
  w.value(c.total_energy_ratio);
  w.key("perf_energy_metric");
  w.value(c.perf_energy_metric);
  w.end_object();
  return w.str();
}

}  // namespace redhip
