#include "harness/experiment.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <numeric>

#include "common/check.h"
#include "harness/thread_pool.h"

namespace redhip {

ExperimentOptions ExperimentOptions::parse(const CliOptions& cli) {
  ExperimentOptions o;
  o.scale = static_cast<std::uint32_t>(cli.get_int("scale", 8));
  o.refs_per_core = cli.get_uint64("refs", 1'000'000);
  o.seed = cli.get_uint64("seed", 42);
  o.csv = cli.get_bool("csv", false);
  o.jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  const std::string engine = cli.get("engine", "fast");
  if (engine == "fast") {
    o.engine = SimEngine::kFast;
  } else if (engine == "reference") {
    o.engine = SimEngine::kReference;
  } else if (engine == "parallel") {
    o.engine = SimEngine::kParallel;
  } else {
    REDHIP_CHECK_MSG(false, "unknown engine: " + engine);
  }
  o.threads = static_cast<std::uint32_t>(cli.get_int("threads", 0));
  o.trace_events = cli.get("trace-events", "");
  o.obs_epoch_refs = cli.get_uint64("obs-epoch", 100'000);
  o.cache_dir = cli.get("cache-dir", "");
  o.resume = cli.get_bool("resume", true);
  o.ckpt_dir = cli.get("ckpt-dir", "");
  o.ckpt_interval = cli.get_uint64("ckpt-interval", 0);
  o.cell_timeout = cli.get_double("cell-timeout", 0.0);
  REDHIP_CHECK_MSG(o.cell_timeout >= 0.0, "--cell-timeout must be >= 0");
  REDHIP_CHECK_MSG(o.obs_epoch_refs > 0, "--obs-epoch must be positive");
  const std::string bench = cli.get("bench", "");
  if (bench.empty()) {
    o.benches = all_benchmarks();
  } else {
    for (BenchmarkId id : all_benchmarks()) {
      if (to_string(id) == bench) o.benches.push_back(id);
    }
    REDHIP_CHECK_MSG(!o.benches.empty(), "unknown benchmark: " + bench);
  }
  return o;
}

std::string trace_file_name(BenchmarkId bench, const std::string& column,
                            SimEngine engine) {
  std::string name = to_string(bench) + "-" + column + "-" + engine_name(engine);
  for (char& c : name) {
    const bool keep = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '.' || c == '_' || c == '-';
    if (!keep) c = '_';
  }
  return name + ".jsonl";
}

std::string ckpt_file_name(BenchmarkId bench, const std::string& column,
                           SimEngine engine) {
  std::string name = trace_file_name(bench, column, engine);
  name.erase(name.size() - 6);  // ".jsonl"
  return name + ".ckpt";
}

double estimated_run_cost(BenchmarkId bench, Scheme scheme, bool prefetch) {
  // Working-set size is the dominant wall-time predictor: big footprints
  // miss deeper and walk more tag arrays per reference.  kMix runs one SPEC
  // profile per core, so charge it the mean SPEC footprint.
  double ws = 0.0;
  if (bench == BenchmarkId::kMix) {
    for (BenchmarkId id : spec_benchmarks()) {
      ws += static_cast<double>(traits_of(id).ws_bytes);
    }
    ws /= static_cast<double>(spec_benchmarks().size());
  } else {
    ws = static_cast<double>(traits_of(bench).ws_bytes);
  }
  double cost = ws;
  // Predictor schemes pay lookup/update work on every LLC-bound access.
  if (scheme != Scheme::kBase) cost *= 1.3;
  // The stride prefetcher adds issue + extra hierarchy traffic.
  if (prefetch) cost *= 1.15;
  return cost;
}

double estimated_run_cost(BenchmarkId bench, const SchemeColumn& column) {
  return estimated_run_cost(bench, column.scheme, column.prefetch);
}

double estimated_run_cost(const RunSpec& spec) {
  const double scale =
      static_cast<double>(std::max<std::uint32_t>(spec.scale, 1));
  return estimated_run_cost(spec.bench, spec.scheme, spec.prefetch) / scale *
         static_cast<double>(spec.refs_per_core);
}

std::vector<std::vector<SimResult>> run_matrix(
    const ExperimentOptions& opts, const std::vector<SchemeColumn>& columns,
    MatrixStats* stats, std::vector<std::vector<Status>>* cell_status) {
  const auto start = std::chrono::steady_clock::now();
  if (!opts.trace_events.empty()) {
    std::filesystem::create_directories(opts.trace_events);
  }
  if (!opts.ckpt_dir.empty()) {
    std::filesystem::create_directories(opts.ckpt_dir);
  }
  std::vector<std::vector<SimResult>> results(
      opts.benches.size(), std::vector<SimResult>(columns.size()));
  if (cell_status != nullptr) {
    cell_status->assign(opts.benches.size(),
                        std::vector<Status>(columns.size()));
  }
  // Longest-job-first: order the (bench, column) pairs by estimated cost so
  // the pool never finishes its queue with one slow straggler running
  // alone.  results[b][c] indexing is unaffected — only submission order
  // changes, and every run is independent.
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    for (std::size_t c = 0; c < columns.size(); ++c) cells.emplace_back(b, c);
  }
  // The whole-run estimate (working set x refs / scale) rather than the
  // per-reference one: a single run_matrix call holds scale and refs
  // constant, but the comparator must stay correct when callers reuse it
  // over mixed-scale cell lists (the sweep executor does).
  const auto cell_spec_for_cost = [&](const std::pair<std::size_t,
                                                      std::size_t>& cell) {
    RunSpec s;
    s.bench = opts.benches[cell.first];
    s.scheme = columns[cell.second].scheme;
    s.prefetch = columns[cell.second].prefetch;
    s.scale = opts.scale;
    s.refs_per_core = opts.refs_per_core;
    return s;
  };
  std::stable_sort(cells.begin(), cells.end(),
                   [&](const auto& x, const auto& y) {
                     return estimated_run_cost(cell_spec_for_cost(x)) >
                            estimated_run_cost(cell_spec_for_cost(y));
                   });
  std::vector<std::function<void()>> tasks;
  const auto submit_time = std::chrono::steady_clock::now();
  for (const auto& cell : cells) {
    const std::size_t b = cell.first;
    const std::size_t c = cell.second;
    tasks.push_back([&, b, c, submit_time] {
      const double queue_wait =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        submit_time)
              .count();
      RunSpec spec;
      spec.bench = opts.benches[b];
      spec.scheme = columns[c].scheme;
      spec.inclusion = columns[c].inclusion;
      spec.prefetch = columns[c].prefetch;
      spec.scale = opts.scale;
      spec.refs_per_core = opts.refs_per_core;
      spec.seed = opts.seed;
      spec.engine = opts.engine;
      spec.threads = opts.threads;
      // A run aborted by the invariant auditor under a *transient*
      // injected fault (RecoveryPolicy::kAbortRetry) is retried a bounded
      // number of times with a reseeded fault stream — the simulated
      // workload stays bit-identical, only the fault sequence moves.
      // Deterministic (non-transient) faults and every other exception
      // propagate to the thread pool, which rethrows after the drain.
      // Per-cell event trace: file name carries bench, column and engine so
      // the fast and reference legs of one spec never overwrite each other
      // (their streams must be byte-identical — diffing the two files is
      // the equivalence oracle).
      std::string trace_path;
      if (!opts.trace_events.empty()) {
        trace_path =
            (std::filesystem::path(opts.trace_events) /
             trace_file_name(opts.benches[b], columns[c].label, opts.engine))
                .string();
      }
      if (!opts.ckpt_dir.empty()) {
        spec.ckpt_path =
            (std::filesystem::path(opts.ckpt_dir) /
             ckpt_file_name(opts.benches[b], columns[c].label, opts.engine))
                .string();
        spec.ckpt_interval_refs = opts.ckpt_interval;
        spec.ckpt_restore = true;
      }
      spec.deadline_seconds = opts.cell_timeout;
      // A fault-reseeded attempt changes the config digest, so a restored
      // checkpoint from an earlier attempt naturally misses (wrong key) —
      // the retry cold-starts instead of replaying the aborted prefix.
      std::uint32_t fault_attempt = 0;
      bool deadline_retried = false;
      for (;;) {
        const auto base_tweak = columns[c].tweak;
        const std::uint64_t epoch_refs = opts.obs_epoch_refs;
        spec.tweak = [&base_tweak, &trace_path, epoch_refs,
                      fault_attempt](HierarchyConfig& hc) {
          if (base_tweak) base_tweak(hc);
          if (!trace_path.empty()) {
            hc.obs.enabled = true;
            hc.obs.epoch_refs = epoch_refs;
            hc.obs.trace_path = trace_path;
          }
          if (fault_attempt > 0) hc.fault.seed += fault_attempt * 0x9e3779b9ull;
        };
        try {
          results[b][c] = run_spec(spec);
          results[b][c].queue_wait_seconds = queue_wait;
          break;
        } catch (const TransientFaultError&) {
          if (++fault_attempt >= kMaxTransientAttempts) throw;
        } catch (const DeadlineExceededError& e) {
          // One retry: a timeout is usually host contention, not the cell.
          // The budget restarts with the attempt (measured from run_spec
          // entry), and an interval checkpoint from the aborted attempt —
          // same key — shortens the retry instead of restarting it.
          if (!deadline_retried) {
            deadline_retried = true;
            continue;
          }
          if (cell_status == nullptr) throw;
          (*cell_status)[b][c] = Status(StatusCode::kDeadlineExceeded,
                                        to_string(opts.benches[b]) + "/" +
                                            columns[c].label + ": " +
                                            e.what());
          break;
        }
      }
    });
  }
  ThreadPool::run_all(std::move(tasks), opts.jobs);
  if (stats != nullptr) {
    stats->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    stats->total_refs = 0;
    for (const auto& row : results) {
      for (const SimResult& r : row) stats->total_refs += r.total_refs;
    }
    stats->mrefs_per_s =
        stats->wall_seconds > 0.0
            ? static_cast<double>(stats->total_refs) / stats->wall_seconds /
                  1e6
            : 0.0;
  }
  return results;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

std::vector<std::string> benchmark_row_labels(const ExperimentOptions& opts) {
  std::vector<std::string> labels;
  for (BenchmarkId id : opts.benches) labels.push_back(to_string(id));
  labels.push_back("average");
  return labels;
}

}  // namespace redhip
