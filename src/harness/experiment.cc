#include "harness/experiment.h"

#include "common/check.h"
#include "harness/thread_pool.h"

namespace redhip {

ExperimentOptions ExperimentOptions::parse(const CliOptions& cli) {
  ExperimentOptions o;
  o.scale = static_cast<std::uint32_t>(cli.get_int("scale", 8));
  o.refs_per_core =
      static_cast<std::uint64_t>(cli.get_int("refs", 1'000'000));
  o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  o.csv = cli.get_bool("csv", false);
  o.jobs = static_cast<std::size_t>(cli.get_int("jobs", 0));
  const std::string bench = cli.get("bench", "");
  if (bench.empty()) {
    o.benches = all_benchmarks();
  } else {
    for (BenchmarkId id : all_benchmarks()) {
      if (to_string(id) == bench) o.benches.push_back(id);
    }
    REDHIP_CHECK_MSG(!o.benches.empty(), "unknown benchmark: " + bench);
  }
  return o;
}

std::vector<std::vector<SimResult>> run_matrix(
    const ExperimentOptions& opts, const std::vector<SchemeColumn>& columns) {
  std::vector<std::vector<SimResult>> results(
      opts.benches.size(), std::vector<SimResult>(columns.size()));
  std::vector<std::function<void()>> tasks;
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      tasks.push_back([&, b, c] {
        RunSpec spec;
        spec.bench = opts.benches[b];
        spec.scheme = columns[c].scheme;
        spec.inclusion = columns[c].inclusion;
        spec.prefetch = columns[c].prefetch;
        spec.scale = opts.scale;
        spec.refs_per_core = opts.refs_per_core;
        spec.seed = opts.seed;
        // A run aborted by the invariant auditor under a *transient*
        // injected fault (RecoveryPolicy::kAbortRetry) is retried a bounded
        // number of times with a reseeded fault stream — the simulated
        // workload stays bit-identical, only the fault sequence moves.
        // Deterministic (non-transient) faults and every other exception
        // propagate to the thread pool, which rethrows after the drain.
        for (std::uint32_t attempt = 0;; ++attempt) {
          const auto base_tweak = columns[c].tweak;
          spec.tweak = [&base_tweak, attempt](HierarchyConfig& hc) {
            if (base_tweak) base_tweak(hc);
            if (attempt > 0) hc.fault.seed += attempt * 0x9e3779b9ull;
          };
          try {
            results[b][c] = run_spec(spec);
            break;
          } catch (const TransientFaultError&) {
            if (attempt + 1 >= kMaxTransientAttempts) throw;
          }
        }
      });
    }
  }
  ThreadPool::run_all(std::move(tasks), opts.jobs);
  return results;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

std::vector<std::string> benchmark_row_labels(const ExperimentOptions& opts) {
  std::vector<std::string> labels;
  for (BenchmarkId id : opts.benches) labels.push_back(to_string(id));
  labels.push_back("average");
  return labels;
}

}  // namespace redhip
