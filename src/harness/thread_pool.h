// A small work-queue thread pool used by the experiment harness to run
// independent simulations concurrently (each simulation is single-threaded
// and deterministic; parallelism across runs never changes results).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace redhip {

class ThreadPool {
 public:
  // 0 = std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  // Block until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  // Convenience: run `tasks` to completion on a fresh pool.
  static void run_all(std::vector<std::function<void()>> tasks,
                      std::size_t threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace redhip
