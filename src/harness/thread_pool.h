// Moved to src/common so the simulator's parallel engine can use the pool
// without a harness -> sim -> harness dependency cycle.  This forwarding
// header keeps existing includes working.
#pragma once

#include "common/thread_pool.h"
