// Experiment plumbing shared by the bench binaries: option parsing, a
// (benchmark x scheme-column) run matrix executed on a thread pool, and
// small aggregation helpers for the "average" row every paper figure has.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/status.h"
#include "harness/run.h"

namespace redhip {

struct ExperimentOptions {
  std::uint32_t scale = 8;
  std::uint64_t refs_per_core = 1'000'000;
  std::uint64_t seed = 42;
  bool csv = false;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  SimEngine engine = SimEngine::kFast;
  // Worker threads inside each simulation (--engine=parallel only; the
  // single-threaded engines ignore it).  0 = hardware concurrency.
  std::uint32_t threads = 0;
  std::vector<BenchmarkId> benches;
  // Observability (src/obs): when `trace_events` names a directory, every
  // matrix cell runs with obs enabled and writes its JSONL event trace to
  // `<trace_events>/<bench>-<column>-<engine>.jsonl` (the directory is
  // created).  Empty = obs off (the default, and the speed-benchmark
  // configuration).
  std::string trace_events;
  std::uint64_t obs_epoch_refs = 100'000;
  // Sweep result cache (src/sweep): when `cache_dir` names a directory,
  // benches running through sweep_matrix/run_sweep persist every completed
  // cell there and load warm cells instead of re-simulating.  `resume`
  // (default on) controls whether existing entries are trusted; with
  // --resume=0 every cell re-simulates but still refreshes the cache.
  // Empty = no cache (the default — identical behaviour to run_matrix).
  std::string cache_dir;
  bool resume = true;
  // Crash-safe checkpointing (src/ckpt).  `ckpt_dir` names a directory for
  // per-cell checkpoint files; every matrix/sweep cell then checkpoints
  // every `ckpt_interval` aggregate references (0 = only on graceful
  // shutdown) and restores an existing valid checkpoint before running.
  // Empty = checkpointing off (the default).
  std::string ckpt_dir;
  std::uint64_t ckpt_interval = 0;
  // Per-cell wall-clock watchdog in seconds (0 = none): a cell that
  // exceeds it aborts with DEADLINE_EXCEEDED at the next safe boundary,
  // is retried once, and on a second timeout its cell reports
  // Status(kDeadlineExceeded) instead of a result.
  double cell_timeout = 0.0;

  // Parses --scale/--refs/--seed/--csv/--jobs/--bench/--engine/--threads
  // plus --trace-events/--obs-epoch, --cache-dir/--resume and
  // --ckpt-dir/--ckpt-interval/--cell-timeout (or the
  // REDHIP_BENCH_* environment equivalents).  --bench limits the workload
  // list to one named benchmark; --engine selects fast (default), the
  // reference oracle loop, or the parallel bound-weave engine (--threads
  // sizes its pool).  refs and seed are parsed with full 64-bit range (a
  // seed is an arbitrary u64, and ref counts past 2^31 are legitimate).
  static ExperimentOptions parse(const CliOptions& cli);
};

// `<bench>-<column>-<engine>.jsonl` with the label sanitized to
// [A-Za-z0-9._-]; shared by run_matrix and the tests that predict the
// per-cell trace file names.
std::string trace_file_name(BenchmarkId bench, const std::string& column,
                            SimEngine engine);
// Same stem with a .ckpt suffix: the per-cell checkpoint file under
// ExperimentOptions::ckpt_dir.
std::string ckpt_file_name(BenchmarkId bench, const std::string& column,
                           SimEngine engine);

// Bounded retry budget for matrix runs aborted by a transient injected
// fault (TransientFaultError under RecoveryPolicy::kAbortRetry); each
// attempt reseeds the fault stream, nothing else.
inline constexpr std::uint32_t kMaxTransientAttempts = 3;

// One column of a figure: a scheme variant applied to every workload.
struct SchemeColumn {
  std::string label;
  Scheme scheme = Scheme::kBase;
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  bool prefetch = false;
  // The default initializer keeps two-element aggregate inits like
  // {"Base", Scheme::kBase} clean under -Wmissing-field-initializers.
  std::function<void(HierarchyConfig&)> tweak = nullptr;
};

// Relative wall-time estimate for one (benchmark, column) run.  Only the
// *ordering* matters — it drives longest-job-first submission in
// run_matrix (and in the sweep executor) so a heavyweight run doesn't
// start last and leave the pool idle at the tail.  Correctness never
// depends on it.
double estimated_run_cost(BenchmarkId bench, Scheme scheme, bool prefetch);
double estimated_run_cost(BenchmarkId bench, const SchemeColumn& column);
// Whole-run estimate: the per-reference cost above weighted by the run
// length and divided by the scale (scale shrinks the working set relative
// to the hierarchy, so scale-1 cells miss deepest and run longest).  This
// is the ordering run_matrix and the sweep executor submit by — sweeps mix
// scales and ref counts in one cell list, so both must participate or a
// scale-1 straggler lands last and runs alone.
double estimated_run_cost(const RunSpec& spec);

// Aggregate host-side timing for one run_matrix call.
struct MatrixStats {
  double wall_seconds = 0.0;      // end-to-end, submission to drain
  std::uint64_t total_refs = 0;   // sum of SimResult::total_refs
  double mrefs_per_s = 0.0;       // total_refs / wall_seconds / 1e6
};

// Run every (benchmark, column) pair; result[b][c] corresponds to
// opts.benches[b] under columns[c].  Runs execute concurrently on a thread
// pool, submitted longest-estimated-job first; each individual run is
// single-threaded and deterministic, so the matrix is reproducible
// regardless of pool size or submission order.  If `stats` is non-null it
// receives the matrix wall time and aggregate simulation throughput.
//
// With opts.cell_timeout set, a cell whose run exceeds the budget aborts
// with DeadlineExceededError at its next safe boundary and is retried once
// (timeouts are usually host contention, not the cell).  A second timeout
// records Status(kDeadlineExceeded) for the cell in `cell_status` (when
// provided; the SimResult slot stays default-constructed) or, when the
// caller passed no status sink, propagates as an exception — a silent
// zeroed cell is never produced.
std::vector<std::vector<SimResult>> run_matrix(
    const ExperimentOptions& opts, const std::vector<SchemeColumn>& columns,
    MatrixStats* stats = nullptr,
    std::vector<std::vector<Status>>* cell_status = nullptr);

// Arithmetic mean (the paper's "average" bars).
double mean(const std::vector<double>& v);

// Standard figure header: benchmark names in the paper's order + "average".
std::vector<std::string> benchmark_row_labels(const ExperimentOptions& opts);

}  // namespace redhip
