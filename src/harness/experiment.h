// Experiment plumbing shared by the bench binaries: option parsing, a
// (benchmark x scheme-column) run matrix executed on a thread pool, and
// small aggregation helpers for the "average" row every paper figure has.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "harness/run.h"

namespace redhip {

struct ExperimentOptions {
  std::uint32_t scale = 8;
  std::uint64_t refs_per_core = 1'000'000;
  std::uint64_t seed = 42;
  bool csv = false;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::vector<BenchmarkId> benches;

  // Parses --scale/--refs/--seed/--csv/--jobs/--bench (or the
  // REDHIP_BENCH_* environment equivalents).  --bench limits the workload
  // list to one named benchmark.
  static ExperimentOptions parse(const CliOptions& cli);
};

// Bounded retry budget for matrix runs aborted by a transient injected
// fault (TransientFaultError under RecoveryPolicy::kAbortRetry); each
// attempt reseeds the fault stream, nothing else.
inline constexpr std::uint32_t kMaxTransientAttempts = 3;

// One column of a figure: a scheme variant applied to every workload.
struct SchemeColumn {
  std::string label;
  Scheme scheme = Scheme::kBase;
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  bool prefetch = false;
  std::function<void(HierarchyConfig&)> tweak;
};

// Run every (benchmark, column) pair; result[b][c] corresponds to
// opts.benches[b] under columns[c].  Runs execute concurrently on a thread
// pool; each individual run is single-threaded and deterministic, so the
// matrix is reproducible regardless of the pool size.
std::vector<std::vector<SimResult>> run_matrix(
    const ExperimentOptions& opts, const std::vector<SchemeColumn>& columns);

// Arithmetic mean (the paper's "average" bars).
double mean(const std::vector<double>& v);

// Standard figure header: benchmark names in the paper's order + "average".
std::vector<std::string> benchmark_row_labels(const ExperimentOptions& opts);

}  // namespace redhip
