// MulticoreSimulator — the trace-driven engine.
//
// Matches the paper's methodology: per-core in-order execution, non-memory
// instructions charged at the application's average CPI (integer
// fixed-point, see common/fixed_point.h), memory references walked through
// the hierarchy with additive serial latencies, and a deterministic
// min-clock interleave across cores so the shared LLC sees a realistic and
// reproducible arrival order.  All timing and energy events are recorded as
// integer counters and priced once at the end by the EnergyLedger.
//
// One simulator instance = one run (it owns the tag arrays and predictors);
// construct a fresh one per configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/tag_array.h"
#include "common/bytestream.h"
#include "common/fixed_point.h"
#include "fault/fault.h"
#include "obs/collector.h"
#include "predict/predictor.h"
#include "prefetch/stride_prefetcher.h"
#include "sim/ckpt_control.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "trace/mem_ref.h"

namespace redhip {

// Options for MulticoreSimulator::run_parallel (the bound-weave engine,
// src/sim/parallel.cc).  None of these change simulated results — the
// engine is bit-identical to run()/run_reference() by construction — they
// only trade wall time against memory and scheduling overhead.
struct ParallelOptions {
  // Worker threads for the bound phases; 0 = hardware concurrency.  The
  // weave phase always runs on the calling thread.
  std::uint32_t threads = 0;
  // Per-lane speculation window: how many references one core may run ahead
  // of the weave before parking.  Small windows stress the window-boundary
  // logic (the tests use 2..64); large windows amortize phase barriers.
  std::uint32_t window_refs = 8192;
};

class MulticoreSimulator {
 public:
  // `traces[c]` feeds core c; `cpi_centi[c]` prices its non-memory gaps.
  MulticoreSimulator(const HierarchyConfig& config,
                     std::vector<std::unique_ptr<TraceSource>> traces,
                     std::vector<std::uint32_t> cpi_centi);

  // Run until every core has executed `max_refs_per_core` references (or its
  // trace ended).  Returns the priced result.  May be called once.
  //
  // This is the fast-path engine: per-core batched trace refill, a binary
  // min-heap core scheduler, and a run loop specialized at compile time on
  // the (fault x prefetch x auto-disable) feature mask so runs with a
  // feature off never test for it per reference.  Statistics are
  // bit-identical to run_reference() — same interleave, same RNG
  // consumption — locked in by tests/engine_equivalence_test.
  SimResult run(std::uint64_t max_refs_per_core);

  // The original (pre-fast-path) engine, kept verbatim: scalar
  // TraceSource::next() per reference, O(cores) linear min-clock scan,
  // every feature branch tested per reference.  Exists as the equivalence
  // oracle for run() and as the baseline leg of bench_speed; same
  // run-once restriction (use a fresh instance per engine).
  SimResult run_reference(std::uint64_t max_refs_per_core);

  // The bound-weave parallel engine (src/sim/parallel.cc).  Private levels
  // of each core run speculatively on ThreadPool lanes over bounded
  // windows; every shared-level / predictor / memory-bound event is applied
  // in deterministic (issue cycle, core, sequence) order on the calling
  // thread.  Bit-identical to run() and run_reference() — statistics,
  // json_report and the JSONL event trace — for every configuration, at any
  // thread count.  Same run-once restriction as the other engines.
  SimResult run_parallel(std::uint64_t max_refs_per_core,
                         const ParallelOptions& opts = {});

  // --- Single-access hooks used by unit tests --------------------------------
  // Execute one reference on one core and return its latency.
  Cycles access_for_test(CoreId core, const MemRef& ref);
  const TagArray& level_array_for_test(std::uint32_t level,
                                       CoreId core) const {
    return level_array(level, core);
  }
  const LlcPredictor* llc_predictor_for_test() const { return llc_pred_.get(); }
  // Mutable PT handle + auditor counters, for fault/recovery tests that
  // corrupt state and single-step accesses without a full run().
  RedhipTable* llc_redhip_for_test() { return llc_redhip_; }
  std::uint64_t audit_checks_for_test() const { return audit_checks_; }
  std::uint64_t invariant_violations_for_test() const {
    return invariant_violations_;
  }
  std::uint64_t recovery_recals_for_test() const { return recovery_recals_; }
  const HierarchyConfig& config() const { return config_; }
  // Null unless config.obs.enabled (see src/obs/collector.h).
  const ObsCollector* obs_for_test() const { return obs_.get(); }
  // Parallel-engine diagnostics (valid after run_parallel): whether the run
  // used lane speculation (vs the weave-only fallback) and how many
  // speculation windows were rolled back by back-invalidation conflicts.
  bool parallel_speculated_for_test() const { return par_speculated_; }
  std::uint64_t parallel_rollbacks_for_test() const { return par_rollbacks_; }

  // --- Checkpoint/restore (src/ckpt) ----------------------------------------
  // Attach the poll contract (see sim/ckpt_control.h).  Must precede run;
  // `ctl` is not owned and must outlive the run.  Attaching also turns on
  // JSONL capture so checkpoints can carry the emitted-trace prefix.
  void set_ckpt_control(CkptControl* ctl) {
    ckpt_ctl_ = ctl;
    if (ctl != nullptr && obs_ != nullptr) obs_->ckpt_enable_capture();
  }
  // Whether a checkpoint of this simulator can be complete: every tag array
  // must keep its full state in the packed entries (the same
  // state_is_self_contained() gate the parallel engine's speculation uses).
  bool ckpt_supported() const;
  // Payload codec, defined in src/ckpt/sim_state.cc — the subsystem that
  // owns the on-disk format; member functions so they keep private access.
  // serialize captures everything a run needs to continue from a safe
  // boundary; restore applies a payload to a freshly-constructed simulator
  // (before run) and returns false when the payload does not structurally
  // match this configuration.
  void ckpt_serialize(ByteWriter& w) const;
  bool ckpt_restore_payload(ByteReader& r);
  // Aggregate executed references (the checkpoint schedule's clock).
  std::uint64_t ckpt_refs_done() const {
    std::uint64_t total = 0;
    for (const CoreState& cs : cores_) total += cs.refs_done;
    return total;
  }

 private:
  // How many references a core pulls from its TraceSource per refill.  256
  // refs (4 KiB) amortize the virtual next_batch call and keep the
  // generator's state hot without displacing the simulated tag arrays from
  // the host cache.
  static constexpr std::size_t kRefillBatch = 256;

  // Sentinel for the L1 same-line memo below.
  static constexpr LineAddr kNoLine = ~LineAddr{0};

  struct CoreState {
    std::unique_ptr<TraceSource> trace;
    CpiAccumulator cpi{100};  // placeholder; the ctor installs the real CPI
    // L1 same-line memo: the line this core touched last, which is
    // guaranteed resident and MRU in its L1 set until back-invalidation
    // removes it (back_invalidate_core clears the memo).  Traces are
    // element-granular, so runs of references to one 64-byte line are the
    // dominant pattern; the memo turns those into a handful of counter
    // increments with no tag scan.  `l1_last_dirty` latches "the L1 copy is
    // known dirty" so repeated write hits skip the mark_dirty scan.
    LineAddr l1_last_line = kNoLine;
    bool l1_last_dirty = false;
    // Excludes the global stall offset: stalls that freeze *every* core
    // (recalibration, recovery) accumulate once in global_stall_cycles_
    // instead of being added to each core's clock.  A uniform addition never
    // changes the min-clock order, so the scheduler compares these offsets
    // directly; the offset is added back when results are finalized.
    Cycles clock = 0;
    std::uint64_t refs_done = 0;
    bool exhausted = false;
    // Batched refill buffer (fast engine only; the reference engine calls
    // trace->next() per reference).
    std::vector<MemRef> buf;
    std::uint32_t buf_pos = 0;
    std::uint32_t buf_len = 0;
    // Line addresses of buf[0..buf_len), batch-computed at refill (one
    // vectorizable pass) and consumed by the software pipeline's prefetch
    // hints.  Hints only: fault injection may perturb ref.addr at consume
    // time, so access() always re-derives the authoritative line from the
    // (possibly perturbed) reference.
    std::vector<LineAddr> lines;
  };

  TagArray& level_array(std::uint32_t level, CoreId core);
  const TagArray& level_array(std::uint32_t level, CoreId core) const;
  bool is_shared(std::uint32_t level) const {
    return level + 1 == config_.num_levels();
  }

  // --- Event recording -------------------------------------------------------
  // Probe level `lvl` for core `core`; records tag/data probe events and the
  // hit/miss counters, returns (hit, latency).
  struct ProbeOutcome {
    bool hit = false;
    Cycles latency = 0;
    bool was_prefetched = false;
  };
  // `is_write` only matters at L1, where a write hit dirties the line.
  ProbeOutcome probe(std::uint32_t lvl, CoreId core, LineAddr line,
                     bool is_write = false);

  // Install `line` at `lvl`, handling eviction fallout for the configured
  // inclusion policy (back-invalidation, predictor on_evict, prefetch and
  // writeback accounting).  `dirty` installs the line already modified.
  // `known_absent`: the caller has proved `line` cannot be resident at
  // `lvl` (a probe of that array missed in this same access, or an audited
  // bypass verified LLC absence, which inclusion extends upward), so the
  // resident re-scan inside fill_if_absent is skipped.  Prefetch fills must
  // pass false — a prefetch can race a demand fill of the same line.
  void fill_at(std::uint32_t lvl, CoreId core, LineAddr line, bool prefetched,
               bool dirty = false, bool known_absent = false);
  // Dirty-eviction bookkeeping for a victim leaving `lvl`.
  void note_writeback(std::uint32_t lvl, CoreId core, LineAddr victim);
  // Remove an LLC victim from every private level (inclusive/hybrid).
  void back_invalidate_all_cores(std::uint32_t below_level, LineAddr victim);
  void back_invalidate_core(std::uint32_t below_level, CoreId core,
                            LineAddr victim);

  // Exclusive/hybrid: insert at `lvl` and cascade the victim downward; the
  // cascade stops before `stop_level` (exclusive: past the LLC, victims are
  // dropped; hybrid: private victims stop at L3 since the LLC keeps a copy).
  void insert_with_cascade(std::uint32_t lvl, CoreId core, LineAddr line,
                           std::uint32_t last_level, bool dirty = false);

  // --- Access paths per inclusion policy -------------------------------------
  Cycles access(CoreId core, const MemRef& ref);
  Cycles access_inclusive(CoreId core, LineAddr line, bool is_write);
  Cycles access_hybrid(CoreId core, LineAddr line, bool is_write);
  Cycles access_exclusive(CoreId core, LineAddr line, bool is_write);

  // Predictor bookkeeping shared by the access paths.
  Prediction query_llc_predictor(LineAddr line, Cycles& latency);
  void note_l1_miss();
  // Online invariant auditor: shadow-check a predicted-absent decision
  // against the LLC tag array.  Returns true when the bypass is safe; on a
  // violation counts it, applies the configured recovery policy, and
  // returns false so the caller walks the hierarchy instead (graceful
  // degradation — the access is priced as if predicted present).
  bool audit_bypass(LineAddr line);
  // Per-reference fault injection into the PT (src/fault).  No-op unless
  // the injector exists and the scheme has a ReDHiP table over the LLC.
  void inject_faults();
  // Auto-disable (paper §IV): epoch evaluation of predictor usefulness.
  void evaluate_auto_disable();

  // Prefetch handling (inclusive only).
  void run_prefetches(CoreId core, const MemRef& ref);

  // --- Observability (src/obs; obs_ is null when disabled) -------------------
  // Emit the run_begin event (both engines, config-derived fields only).
  void obs_begin_run(std::uint64_t max_refs_per_core);
  // Snapshot the counters the epoch series differences (cold path: called
  // once per epoch boundary and once at the end of the run).
  ObsSnapshot obs_snapshot() const;
  // Per-reference hook, shared verbatim by the fast loops and the reference
  // engine so both produce the same epoch series and event stream.  `lat`
  // is the reference's access latency, `cs` the executing core.
  void obs_note_ref(CoreId core, Cycles lat, const CoreState& cs) {
    const Cycles now = cs.clock + global_stall_cycles_;
    if (obs_->note_ref(core, lat, now)) {
      obs_->close_epoch(now, obs_snapshot());
    }
  }

  // --- Fast-path run machinery ----------------------------------------------
  // The run loop specialized on the feature mask; run() dispatches once per
  // run to the instantiation matching (injector, prefetchers, auto-disable).
  template <bool kFault, bool kPrefetch, bool kAutoDisable>
  void run_loop(std::uint64_t max_refs_per_core);
  // Shared epilogue: aggregate events, price energy, apply the stall offset.
  SimResult finalize_result();

  // Min-clock core scheduler: a binary min-heap of (clock, core) packed
  // into one 64-bit key, `clock << 8 | core`.  A single integer compare
  // reproduces the lexicographic order — and the deterministic tie-break
  // (lowest core id among the minimum clocks) — because the core id
  // occupies the low byte; the sift loop compiles branch-light.  Clocks
  // stay far below 2^56 for any realistic run length and the core count is
  // checked against the byte at heap build, so the packing is lossless.
  // The common operation is "advance the top core's clock", one sift-down.
  struct HeapSlot {
    std::uint64_t key;
    static HeapSlot make(Cycles clock, CoreId core) {
      REDHIP_DCHECK(clock < (Cycles{1} << 56));
      return HeapSlot{(clock << 8) | core};
    }
    CoreId core() const { return static_cast<CoreId>(key & 0xFF); }
    bool operator<(const HeapSlot& o) const { return key < o.key; }
  };
  void heap_sift_down(std::size_t i);
  void heap_pop_top();

  // --- Checkpoint polling ----------------------------------------------------
  // Called at safe boundaries only (between references on the serial
  // engines; after a full speculation quiesce on the parallel engine).
  // When checkpointing is off the cost is one pointer test.
  bool ckpt_should_act() const;  // side-effect-free; parallel quiesce gate
  void ckpt_poll_slow();         // save and/or throw, see ckpt_control.h
  void ckpt_poll() {
    if (ckpt_ctl_ != nullptr && ckpt_should_act()) ckpt_poll_slow();
  }

  HierarchyConfig config_;
  std::vector<CoreState> cores_;
  // Private tag arrays, flat in lvl-major order: index `lvl * cores + core`
  // for lvl 0..N-2 (one pointer chase on the hot path instead of two);
  // shared LLC separate.
  std::vector<TagArray> private_;
  std::unique_ptr<TagArray> shared_;
  // LLC core-presence directory (inclusive hierarchies, <= 8 cores): one
  // byte per LLC slot, bit c set while core c *may* hold the line at its
  // top private level.  Conservative — bits are set on top-private fills
  // and only reset when the LLC slot is refilled, so a stale bit costs one
  // wasted scan but a clear bit is a guarantee.  Lets an LLC eviction
  // back-invalidate only the cores that can actually hold the victim
  // instead of scanning every core's private hierarchy.
  std::vector<std::uint8_t> llc_dir_;
  bool llc_dir_on_ = false;
  std::uint32_t top_private_ = 0;  // highest private level index (N-2)
  // One-entry (line -> LLC way) memo feeding the directory update: every
  // inclusive demand path touches the LLC — a probe hit or a fill — in the
  // same access before the top-private fill claims the line's slot, so the
  // way is already known and the find_way re-scan is skipped.  Trusted only
  // on an exact line match, and sound because an LLC line's way changes
  // only via an LLC fill (which refreshes the memo); the parallel engine's
  // speculative rewind never touches the shared array (it restores L1 sets
  // only), and prefetch fills that miss the memo simply fall back to the
  // scan.  Maintained only while llc_dir_on_.
  LineAddr dir_memo_line_ = kNoLine;
  std::uint32_t dir_memo_way_ = 0;

  // Hoisted L1 constants (the memo fast path must not re-derive them per
  // reference): line shift and the latency probe(0) charges for a hit.
  std::uint32_t l1_shift_ = 0;
  Cycles l1_hit_latency_ = 0;

  // Hoisted per-level probe constants: the latency a probe charges on hit
  // and on miss, and whether the level is phased (a phased miss skips the
  // data-probe counter).  config_.levels never changes after construction,
  // so probe() reads this flat table instead of chasing the LevelSpec and
  // re-deriving the same sums per reference.
  struct LevelTiming {
    Cycles hit_latency = 0;
    Cycles miss_latency = 0;
    bool phased = false;
  };
  std::vector<LevelTiming> level_timing_;

  // Software-pipeline hint (fast engine only): pull the tag lanes `line`
  // will touch if it misses the same-line memo — every level's set lane
  // plus the ReDHiP PT row — toward the host caches while the *current*
  // reference simulates.  Prefetches have no simulated side effects, so the
  // hint cannot perturb bit-identity with the reference engine; it only
  // overlaps host memory latency with useful work.
  void prefetch_next_ref(CoreId core, LineAddr line) {
    const std::uint32_t n = config_.num_levels();
    for (std::uint32_t lvl = 0; lvl + 1 < n; ++lvl) {
      private_[lvl * config_.cores + core].prefetch_line(line);
    }
    shared_->prefetch_line(line);
    if (llc_redhip_ != nullptr) llc_redhip_->prefetch_row(line);
  }

  // Inclusive/hybrid: one predictor over the shared LLC.
  std::unique_ptr<LlcPredictor> llc_pred_;
  // Exclusive: per-level predictors — excl_pred_[lvl][core] for private
  // levels (lvl 1..N-2), excl_shared_pred_ for the LLC.
  std::vector<std::vector<std::unique_ptr<RedhipTable>>> excl_pred_;
  std::unique_ptr<RedhipTable> excl_shared_pred_;
  std::uint64_t excl_l1_misses_ = 0;
  double predictor_leakage_w_ = 0.0;

  // One prefetcher per core, as in hardware (a shared table would alias
  // same-PC streams from different cores and never lock onto a stride).
  std::vector<std::unique_ptr<StridePrefetcher>> prefetchers_;
  std::vector<LineAddr> prefetch_queue_;

  // Auto-disable state (inclusive/hybrid only).
  bool predictor_active_ = true;
  std::uint64_t epoch_refs_seen_ = 0;
  std::uint64_t epoch_start_misses_ = 0;
  std::uint64_t epoch_start_lookups_ = 0;
  std::uint64_t epoch_start_absents_ = 0;
  std::uint32_t disable_backoff_ = 1;
  std::uint32_t disabled_epochs_left_ = 0;
  std::uint64_t predictor_disabled_refs_ = 0;

  // Fault injection + invariant auditing (null/zero when disabled; the hot
  // path only pays a pointer test).
  std::unique_ptr<FaultInjector> injector_;
  RedhipTable* llc_redhip_ = nullptr;  // llc_pred_ downcast, for fault hooks
  std::uint64_t audit_checks_ = 0;
  std::uint64_t invariant_violations_ = 0;
  std::uint64_t recovery_recals_ = 0;
  Cycles recovery_stall_cycles_ = 0;

  // Observability collector; null when config.obs.enabled is false, so the
  // disabled hot-path cost is one predicted pointer test per reference.
  std::unique_ptr<ObsCollector> obs_;

  std::vector<LevelEvents> events_;
  PrefetchEvents prefetch_events_;  // simulator-level prefetch accounting
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t demand_memory_accesses_ = 0;
  std::uint64_t memory_writebacks_ = 0;
  Cycles recal_stall_cycles_ = 0;
  // Stall cycles applied uniformly to every core (see CoreState::clock).
  Cycles global_stall_cycles_ = 0;
  std::vector<HeapSlot> heap_;
  bool ran_ = false;

  // Checkpoint control (not owned; null = checkpointing off).
  CkptControl* ckpt_ctl_ = nullptr;
  std::uint64_t ckpt_last_save_refs_ = 0;  // interval anchor (aggregate refs)
  bool ckpt_save_at_done_ = false;         // one-shot save_at_refs fired
  // Reference-engine poll stride: that engine has no refill boundary, so it
  // polls every kCkptPollStride references via this countdown.
  static constexpr std::uint64_t kCkptPollStride = 1024;
  std::uint64_t ckpt_countdown_ = kCkptPollStride;

  // --- Parallel engine state (src/sim/parallel.cc) ---------------------------
  struct ParLane;  // per-core speculation lane, defined in parallel.cc
  // How the weave folds committed speculative L1 hits into the statistics.
  // Every L1 hit contributes the same {access, tag probe, data probe, hit}
  // counter delta, so when neither observability nor auto-disable is on the
  // merge order is irrelevant and hits commit as bulk counter adds; epoch
  // accounting needs boundary-exact ref counts; full observability needs the
  // exact per-reference merge (latency histogram + epoch series).
  enum class ParCommitMode : std::uint8_t { kBulk, kEpochBulk, kOrdered };
  bool parallel_can_speculate() const;
  void par_run_speculative(std::uint64_t max_refs_per_core,
                           const ParallelOptions& opts);
  void par_run_weave_only(std::uint64_t max_refs_per_core,
                          const ParallelOptions& opts);
  // Bound phase: run one lane's L1-hit speculation until it parks (first L1
  // miss, window cap, or end of its reference quota).  Called concurrently
  // for distinct lanes; touches only lane/core-private state.
  void par_lane_step(ParLane& lane, std::uint64_t max_refs_per_core,
                     std::uint32_t window_refs);
  // Weave phase: commit entries and apply events in deterministic
  // (issue cycle, core) order until the globally-next item is a runnable
  // lane's future reference.
  void par_weave(std::uint64_t max_refs_per_core, ParCommitMode mode);
  void par_commit_until(Cycles key, CoreId core, ParCommitMode mode);
  void par_execute_event(ParLane& lane, std::uint64_t max_refs_per_core);
  // Conflict hook: called by back_invalidate_core while the speculative
  // weave is applying an event, before it touches `core`'s L1.  Rolls the
  // lane back when an uncommitted speculated reference touched `victim`.
  void par_note_back_invalidate(CoreId core, LineAddr victim);
  // Discard a lane's speculation from log index `j` on: restore the touched
  // L1 sets and the core's micro-state, requeue the discarded references
  // (and any parked event) for replay.  Used by conflict rollback (j = the
  // first conflicting entry) and by the checkpoint quiesce (j = committed).
  void par_rewind_lane(ParLane& lane, std::size_t j);
  std::vector<ParLane>* par_lanes_ = nullptr;  // non-null during the weave
  bool par_speculated_ = false;
  std::uint64_t par_rollbacks_ = 0;
};

}  // namespace redhip
