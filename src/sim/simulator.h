// MulticoreSimulator — the trace-driven engine.
//
// Matches the paper's methodology: per-core in-order execution, non-memory
// instructions charged at the application's average CPI (integer
// fixed-point, see common/fixed_point.h), memory references walked through
// the hierarchy with additive serial latencies, and a deterministic
// min-clock interleave across cores so the shared LLC sees a realistic and
// reproducible arrival order.  All timing and energy events are recorded as
// integer counters and priced once at the end by the EnergyLedger.
//
// One simulator instance = one run (it owns the tag arrays and predictors);
// construct a fresh one per configuration.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/tag_array.h"
#include "common/fixed_point.h"
#include "fault/fault.h"
#include "predict/predictor.h"
#include "prefetch/stride_prefetcher.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "trace/mem_ref.h"

namespace redhip {

class MulticoreSimulator {
 public:
  // `traces[c]` feeds core c; `cpi_centi[c]` prices its non-memory gaps.
  MulticoreSimulator(const HierarchyConfig& config,
                     std::vector<std::unique_ptr<TraceSource>> traces,
                     std::vector<std::uint32_t> cpi_centi);

  // Run until every core has executed `max_refs_per_core` references (or its
  // trace ended).  Returns the priced result.  May be called once.
  SimResult run(std::uint64_t max_refs_per_core);

  // --- Single-access hooks used by unit tests --------------------------------
  // Execute one reference on one core and return its latency.
  Cycles access_for_test(CoreId core, const MemRef& ref);
  const TagArray& level_array_for_test(std::uint32_t level,
                                       CoreId core) const {
    return level_array(level, core);
  }
  const LlcPredictor* llc_predictor_for_test() const { return llc_pred_.get(); }
  // Mutable PT handle + auditor counters, for fault/recovery tests that
  // corrupt state and single-step accesses without a full run().
  RedhipTable* llc_redhip_for_test() { return llc_redhip_; }
  std::uint64_t audit_checks_for_test() const { return audit_checks_; }
  std::uint64_t invariant_violations_for_test() const {
    return invariant_violations_;
  }
  std::uint64_t recovery_recals_for_test() const { return recovery_recals_; }
  const HierarchyConfig& config() const { return config_; }

 private:
  struct CoreState {
    std::unique_ptr<TraceSource> trace;
    CpiAccumulator cpi;
    Cycles clock = 0;
    std::uint64_t refs_done = 0;
    bool exhausted = false;
  };

  TagArray& level_array(std::uint32_t level, CoreId core);
  const TagArray& level_array(std::uint32_t level, CoreId core) const;
  bool is_shared(std::uint32_t level) const {
    return level + 1 == config_.num_levels();
  }

  // --- Event recording -------------------------------------------------------
  // Probe level `lvl` for core `core`; records tag/data probe events and the
  // hit/miss counters, returns (hit, latency).
  struct ProbeOutcome {
    bool hit = false;
    Cycles latency = 0;
    bool was_prefetched = false;
  };
  // `is_write` only matters at L1, where a write hit dirties the line.
  ProbeOutcome probe(std::uint32_t lvl, CoreId core, LineAddr line,
                     bool is_write = false);

  // Install `line` at `lvl`, handling eviction fallout for the configured
  // inclusion policy (back-invalidation, predictor on_evict, prefetch and
  // writeback accounting).  `dirty` installs the line already modified.
  void fill_at(std::uint32_t lvl, CoreId core, LineAddr line, bool prefetched,
               bool dirty = false);
  // Dirty-eviction bookkeeping for a victim leaving `lvl`.
  void note_writeback(std::uint32_t lvl, CoreId core, LineAddr victim);
  // Remove an LLC victim from every private level (inclusive/hybrid).
  void back_invalidate_all_cores(std::uint32_t below_level, LineAddr victim);
  void back_invalidate_core(std::uint32_t below_level, CoreId core,
                            LineAddr victim);

  // Exclusive/hybrid: insert at `lvl` and cascade the victim downward; the
  // cascade stops before `stop_level` (exclusive: past the LLC, victims are
  // dropped; hybrid: private victims stop at L3 since the LLC keeps a copy).
  void insert_with_cascade(std::uint32_t lvl, CoreId core, LineAddr line,
                           std::uint32_t last_level, bool dirty = false);

  // --- Access paths per inclusion policy -------------------------------------
  Cycles access(CoreId core, const MemRef& ref);
  Cycles access_inclusive(CoreId core, LineAddr line, bool is_write);
  Cycles access_hybrid(CoreId core, LineAddr line, bool is_write);
  Cycles access_exclusive(CoreId core, LineAddr line, bool is_write);

  // Predictor bookkeeping shared by the access paths.
  Prediction query_llc_predictor(LineAddr line, Cycles& latency);
  void note_l1_miss();
  // Online invariant auditor: shadow-check a predicted-absent decision
  // against the LLC tag array.  Returns true when the bypass is safe; on a
  // violation counts it, applies the configured recovery policy, and
  // returns false so the caller walks the hierarchy instead (graceful
  // degradation — the access is priced as if predicted present).
  bool audit_bypass(LineAddr line);
  // Per-reference fault injection into the PT (src/fault).  No-op unless
  // the injector exists and the scheme has a ReDHiP table over the LLC.
  void inject_faults();
  // Auto-disable (paper §IV): epoch evaluation of predictor usefulness.
  void evaluate_auto_disable();

  // Prefetch handling (inclusive only).
  void run_prefetches(CoreId core, const MemRef& ref);

  HierarchyConfig config_;
  std::vector<CoreState> cores_;
  // private_[lvl][core] for lvl 0..N-2; shared LLC separate.
  std::vector<std::vector<TagArray>> private_;
  std::unique_ptr<TagArray> shared_;

  // Inclusive/hybrid: one predictor over the shared LLC.
  std::unique_ptr<LlcPredictor> llc_pred_;
  // Exclusive: per-level predictors — excl_pred_[lvl][core] for private
  // levels (lvl 1..N-2), excl_shared_pred_ for the LLC.
  std::vector<std::vector<std::unique_ptr<RedhipTable>>> excl_pred_;
  std::unique_ptr<RedhipTable> excl_shared_pred_;
  std::uint64_t excl_l1_misses_ = 0;
  double predictor_leakage_w_ = 0.0;

  // One prefetcher per core, as in hardware (a shared table would alias
  // same-PC streams from different cores and never lock onto a stride).
  std::vector<std::unique_ptr<StridePrefetcher>> prefetchers_;
  std::vector<LineAddr> prefetch_queue_;

  // Auto-disable state (inclusive/hybrid only).
  bool predictor_active_ = true;
  std::uint64_t epoch_refs_seen_ = 0;
  std::uint64_t epoch_start_misses_ = 0;
  std::uint64_t epoch_start_lookups_ = 0;
  std::uint64_t epoch_start_absents_ = 0;
  std::uint32_t disable_backoff_ = 1;
  std::uint32_t disabled_epochs_left_ = 0;
  std::uint64_t predictor_disabled_refs_ = 0;

  // Fault injection + invariant auditing (null/zero when disabled; the hot
  // path only pays a pointer test).
  std::unique_ptr<FaultInjector> injector_;
  RedhipTable* llc_redhip_ = nullptr;  // llc_pred_ downcast, for fault hooks
  std::uint64_t audit_checks_ = 0;
  std::uint64_t invariant_violations_ = 0;
  std::uint64_t recovery_recals_ = 0;
  Cycles recovery_stall_cycles_ = 0;

  std::vector<LevelEvents> events_;
  PrefetchEvents prefetch_events_;  // simulator-level prefetch accounting
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t demand_memory_accesses_ = 0;
  std::uint64_t memory_writebacks_ = 0;
  Cycles recal_stall_cycles_ = 0;
  bool ran_ = false;
};

}  // namespace redhip
