// HierarchyConfig — everything that defines one simulated machine.
//
// `paper()` builds the paper's Table I machine; `scaled(f)` divides every
// capacity (caches, PT, recalibration interval) by a power-of-two factor so
// the whole suite runs on small machines while preserving the pressure
// ratios between workload working sets and cache capacities (workloads are
// scaled by the same factor — see trace/workloads.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/geometry.h"
#include "energy/params.h"
#include "fault/fault.h"
#include "obs/obs_config.h"
#include "predict/counting_bloom.h"
#include "predict/partial_tag.h"
#include "predict/redhip_table.h"
#include "prefetch/stride_prefetcher.h"

namespace redhip {

enum class Scheme : std::uint8_t {
  kBase,    // no prediction; parallel tag+data everywhere
  kPhased,  // serialized tag->data at the large levels (L3/L4)
  kCbf,     // counting-Bloom-filter LLC prediction
  kRedhip,  // the paper's mechanism
  kOracle,  // perfect LLC-presence prediction, zero overhead
  kPartialTag,  // extension baseline: per-way partial-tag mirror (related
                // work [17]/[30]); conservative, never stale, ~2x the area
};
std::string to_string(Scheme s);

// What the online invariant auditor does when a predicted-absent bypass
// turns out to hide an LLC-resident line (possible only under injected
// faults; see src/fault).
enum class RecoveryPolicy : std::uint8_t {
  kCountOnly,    // detect, correct this access, keep the corrupt table
  kRecalibrate,  // detect, correct, emergency-recalibrate the PT (stall +
                 // energy charged like any scheduled recalibration)
  kAbortRetry,   // detect and throw TransientFaultError; run_matrix retries
                 // the run (bounded, reseeded) when the fault is transient
};
std::string to_string(RecoveryPolicy p);

enum class InclusionPolicy : std::uint8_t {
  kInclusive,  // every level contains all lines of the levels above it
  kHybrid,     // private levels mutually exclusive; shared LLC inclusive
  kExclusive,  // all levels hold disjoint lines
};
std::string to_string(InclusionPolicy p);

struct LevelSpec {
  CacheGeometry geom;
  LevelEnergyParams energy;
  bool phased = false;  // tag then data (only meaningful for split levels)
};

struct HierarchyConfig {
  std::uint32_t cores = 8;
  double freq_ghz = 3.7;
  // Ordered L1..LN.  All but the last are private (one instance per core);
  // the last is shared.
  std::vector<LevelSpec> levels;
  InclusionPolicy inclusion = InclusionPolicy::kInclusive;
  Scheme scheme = Scheme::kBase;
  RedhipConfig redhip;
  CbfConfig cbf;
  PartialTagConfig partial_tag;
  bool prefetch = false;
  StridePrefetcherConfig prefetcher;
  // The paper treats memory as a perfect store: no delay, no energy.
  Cycles memory_latency = 0;
  double memory_energy_nj = 0.0;
  // Price line installs as array writes (see EnergyLedger); the paper's
  // accounting normalizes lookup traffic, so this defaults off.
  bool charge_fill_energy = false;
  // Track dirty lines and charge writeback traffic (a data write at the
  // receiving level, a memory write for LLC victims).  Off by default —
  // the paper does not model writebacks ("memory is ... a data store that
  // always hits with no delay and no energy"); `ablation_writeback` shows
  // the effect of turning it on.
  bool model_writebacks = false;

  // Paper §IV: "In the case when the L1 cache miss rate is very low or the
  // LLC is rarely used, our prediction mechanism would be disabled to not
  // waste energy or add latency."  When enabled, the simulator evaluates
  // the predictor's usefulness every `epoch_refs` references and gates it
  // off (no lookups, no latency, no energy, recalibration paused) while the
  // workload gives it nothing to do; re-probes with exponential backoff and
  // recalibrates on re-activation.
  struct AutoDisable {
    bool enabled = false;
    std::uint64_t epoch_refs = 100'000;      // aggregate over all cores
    std::uint32_t min_l1_miss_ppm = 20'000;  // <2% L1 misses: pointless
    std::uint32_t min_bypass_ppm = 50'000;   // <5% of lookups bypass: wasteful
    std::uint32_t max_backoff_epochs = 8;
  } auto_disable;

  // Fault model & recovery (DESIGN.md).  `fault` injects deterministic
  // corruption; `audit` shadow-checks every predicted-absent bypass against
  // the LLC tag array and applies the recovery policy on a violation.  Both
  // default off and are zero-overhead when off.
  FaultConfig fault;
  struct InvariantAudit {
    bool enabled = false;
    RecoveryPolicy policy = RecoveryPolicy::kRecalibrate;
  } audit;

  // Observability layer (src/obs): per-epoch metric sampling and the
  // structured JSONL event trace.  Off by default; when off, the run loops
  // pay one predicted branch per reference and nothing else.
  ObsConfig obs;

  std::uint64_t seed = 0x5eed;

  std::uint32_t num_levels() const {
    return static_cast<std::uint32_t>(levels.size());
  }
  const LevelSpec& llc() const { return levels.back(); }

  void validate() const;

  // Table I machine: 32K/256K/4M private + 64M shared, 512KB PT with 1M-miss
  // recalibration, 512KB-budget CBF, 4K-entry stride prefetcher.
  static HierarchyConfig paper(Scheme scheme,
                               InclusionPolicy inclusion =
                                   InclusionPolicy::kInclusive);
  // Same machine with all capacities divided by `scale` (a power of two).
  static HierarchyConfig scaled(std::uint32_t scale, Scheme scheme,
                                InclusionPolicy inclusion =
                                    InclusionPolicy::kInclusive);

  // The paper's motivating trend ("deep cache hierarchies with 4 or more
  // levels will become pervasive"): the same machine with `depth` levels
  // (2..5).  Depths 2/3 drop the middle private levels; depth 4 is Table I;
  // depth 5 adds a private 32 MB L4 slice under a 512 MB shared L5 with
  // cacti_lite-extrapolated parameters.  The PT keeps the 0.78% area ratio
  // against whatever the LLC is.
  static HierarchyConfig with_depth(std::uint32_t depth, std::uint32_t scale,
                                    Scheme scheme);

  // Derived ReDHiP config for one level of an exclusive hierarchy: a PT at
  // the same area ratio as the LLC's (paper §III-C: "duplicated and scaled
  // down correspondingly to cache size ... at the same storage overhead
  // ratio").
  RedhipConfig redhip_for_size(std::uint64_t cache_size_bytes) const;
};

}  // namespace redhip
