// SimResult — everything one simulation run produces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "energy/ledger.h"
#include "fault/fault.h"

namespace redhip {

struct SimResult {
  // Per-level events aggregated over all cores (index 0 = L1).
  std::vector<LevelEvents> levels;
  PredictorEvents predictor;  // summed over all prediction tables
  PrefetchEvents prefetch;
  std::uint64_t memory_accesses = 0;         // demand + prefetch fetches
  std::uint64_t demand_memory_accesses = 0;  // demand fetches only
  std::uint64_t memory_writebacks = 0;       // dirty LLC victims (if modeled)

  std::vector<Cycles> core_cycles;
  Cycles exec_cycles = 0;  // max over cores — the run's wall time
  // Sum over cores; the basis of the multiprogrammed performance metric
  // (average per-core speedup), which is robust to one unlucky core.
  Cycles total_core_cycles = 0;
  Cycles recal_stall_cycles = 0;
  std::uint64_t total_refs = 0;
  // References executed while the predictor was auto-disabled (§IV).
  std::uint64_t predictor_disabled_refs = 0;
  // Injected-fault and invariant-audit counters (all zero when both are
  // off; see src/fault and DESIGN.md "Fault model & recovery").
  FaultStats fault;
  double elapsed_seconds = 0.0;

  EnergyBreakdown energy;

  double hit_rate(std::size_t level) const {
    const auto& ev = levels.at(level);
    return ev.accesses == 0
               ? 0.0
               : static_cast<double>(ev.hits) /
                     static_cast<double>(ev.accesses);
  }
  double l1_miss_rate() const { return 1.0 - hit_rate(0); }
  // Fraction of L1 misses that missed the whole hierarchy.
  double offchip_fraction() const {
    const std::uint64_t m = levels.front().misses;
    return m == 0 ? 0.0
                  : static_cast<double>(demand_memory_accesses) /
                        static_cast<double>(m);
  }
};

}  // namespace redhip
