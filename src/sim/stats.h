// SimResult — everything one simulation run produces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "energy/ledger.h"
#include "fault/fault.h"
#include "obs/epoch.h"
#include "obs/timing.h"

namespace redhip {

struct SimResult {
  // Per-level events aggregated over all cores (index 0 = L1).
  std::vector<LevelEvents> levels;
  PredictorEvents predictor;  // summed over all prediction tables
  PrefetchEvents prefetch;
  std::uint64_t memory_accesses = 0;         // demand + prefetch fetches
  std::uint64_t demand_memory_accesses = 0;  // demand fetches only
  std::uint64_t memory_writebacks = 0;       // dirty LLC victims (if modeled)

  std::vector<Cycles> core_cycles;
  Cycles exec_cycles = 0;  // max over cores — the run's wall time
  // Sum over cores; the basis of the multiprogrammed performance metric
  // (average per-core speedup), which is robust to one unlucky core.
  Cycles total_core_cycles = 0;
  Cycles recal_stall_cycles = 0;
  std::uint64_t total_refs = 0;
  // References executed while the predictor was auto-disabled (§IV).
  std::uint64_t predictor_disabled_refs = 0;
  // Injected-fault and invariant-audit counters (all zero when both are
  // off; see src/fault and DESIGN.md "Fault model & recovery").
  FaultStats fault;
  double elapsed_seconds = 0.0;

  EnergyBreakdown energy;

  // Per-epoch metric series from the observability layer (src/obs); empty
  // unless HierarchyConfig::obs.enabled.  Deterministic — part of the
  // engine-equivalence contract and of stats_identical.
  EpochSeries epochs;

  // Host-side throughput, filled by run_spec (not by the simulator): wall
  // time of trace construction + simulator construction + run, and the
  // simulated references per host second it implies.  Excluded from
  // stats_identical — two bit-identical runs never take identical wall time.
  double host_seconds = 0.0;
  double host_mrefs_per_s = 0.0;
  // How long this run sat queued behind other cells on the executor pool
  // (run_matrix / run_sweep: submission to task start; 0 when the run never
  // went through a pool).  Host-side like host_seconds — excluded from
  // stats_identical and json_report.
  double queue_wait_seconds = 0.0;
  // Host-side phase timings from the observability layer; excluded from
  // stats_identical for the same reason.
  ObsTiming obs_timing;

  // Rate conventions for degenerate runs: a level with zero accesses has
  // hit rate 0.0 *and* miss rate 0.0 (nothing happened — neither "all hit"
  // nor "all missed"), and a run with zero L1 misses has off-chip fraction
  // 0.0.  An empty `levels` vector (default-constructed result) follows the
  // same rule instead of being undefined behavior.
  double hit_rate(std::size_t level) const {
    const auto& ev = levels.at(level);
    return ev.accesses == 0
               ? 0.0
               : static_cast<double>(ev.hits) /
                     static_cast<double>(ev.accesses);
  }
  double l1_miss_rate() const {
    if (levels.empty() || levels.front().accesses == 0) return 0.0;
    return 1.0 - hit_rate(0);
  }
  // Fraction of L1 misses that missed the whole hierarchy.
  double offchip_fraction() const {
    if (levels.empty()) return 0.0;
    const std::uint64_t m = levels.front().misses;
    return m == 0 ? 0.0
                  : static_cast<double>(demand_memory_accesses) /
                        static_cast<double>(m);
  }
};

// Bit-identical comparison of everything a run *simulated* — every counter,
// cycle count and priced joule, but not the host-side timing, which is a
// property of the machine the simulation ran on rather than of the run.
// This is the equality the fast-engine-vs-reference-engine tests assert.
bool stats_identical(const SimResult& a, const SimResult& b);

}  // namespace redhip
