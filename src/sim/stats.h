// SimResult — everything one simulation run produces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "energy/ledger.h"
#include "fault/fault.h"

namespace redhip {

struct SimResult {
  // Per-level events aggregated over all cores (index 0 = L1).
  std::vector<LevelEvents> levels;
  PredictorEvents predictor;  // summed over all prediction tables
  PrefetchEvents prefetch;
  std::uint64_t memory_accesses = 0;         // demand + prefetch fetches
  std::uint64_t demand_memory_accesses = 0;  // demand fetches only
  std::uint64_t memory_writebacks = 0;       // dirty LLC victims (if modeled)

  std::vector<Cycles> core_cycles;
  Cycles exec_cycles = 0;  // max over cores — the run's wall time
  // Sum over cores; the basis of the multiprogrammed performance metric
  // (average per-core speedup), which is robust to one unlucky core.
  Cycles total_core_cycles = 0;
  Cycles recal_stall_cycles = 0;
  std::uint64_t total_refs = 0;
  // References executed while the predictor was auto-disabled (§IV).
  std::uint64_t predictor_disabled_refs = 0;
  // Injected-fault and invariant-audit counters (all zero when both are
  // off; see src/fault and DESIGN.md "Fault model & recovery").
  FaultStats fault;
  double elapsed_seconds = 0.0;

  EnergyBreakdown energy;

  // Host-side throughput, filled by run_spec (not by the simulator): wall
  // time of trace construction + simulator construction + run, and the
  // simulated references per host second it implies.  Excluded from
  // stats_identical — two bit-identical runs never take identical wall time.
  double host_seconds = 0.0;
  double host_mrefs_per_s = 0.0;

  double hit_rate(std::size_t level) const {
    const auto& ev = levels.at(level);
    return ev.accesses == 0
               ? 0.0
               : static_cast<double>(ev.hits) /
                     static_cast<double>(ev.accesses);
  }
  double l1_miss_rate() const { return 1.0 - hit_rate(0); }
  // Fraction of L1 misses that missed the whole hierarchy.
  double offchip_fraction() const {
    const std::uint64_t m = levels.front().misses;
    return m == 0 ? 0.0
                  : static_cast<double>(demand_memory_accesses) /
                        static_cast<double>(m);
  }
};

// Bit-identical comparison of everything a run *simulated* — every counter,
// cycle count and priced joule, but not the host-side timing, which is a
// property of the machine the simulation ran on rather than of the run.
// This is the equality the fast-engine-vs-reference-engine tests assert.
bool stats_identical(const SimResult& a, const SimResult& b);

}  // namespace redhip
