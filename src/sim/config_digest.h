// Digest of a fully-resolved machine description.
//
// Two configs digest equal iff every simulated-behaviour-relevant field is
// equal; host-side fields that cannot change a simulated statistic (the obs
// trace path, host timing switches) are the only deliberate exclusions —
// see DESIGN.md "Sweep & result cache".  Lives at the sim layer so both the
// sweep result cache (above the harness) and the checkpoint subsystem
// (below it) can key their on-disk artifacts by the same digest.
#pragma once

#include <cstdint>

#include "sim/config.h"

namespace redhip {

std::uint64_t config_digest(const HierarchyConfig& config);

}  // namespace redhip
