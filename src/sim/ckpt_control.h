// CkptControl — the simulator-side contract of the checkpoint subsystem.
//
// The simulator itself never does file I/O and never depends on src/ckpt;
// it only *polls*: at each safe boundary (a point where the serial engines
// are between references and the parallel engine has quiesced speculation)
// it consults this struct and, when an action is due, either invokes the
// injected save callback or throws one of the control-flow exceptions
// below.  Everything policy-shaped — intervals, signal handling, deadlines,
// file formats — lives above the simulator, in src/ckpt and the harness.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace redhip {

class MulticoreSimulator;

// Thrown from a poll site when the wall-clock deadline has passed.  The
// harness converts it to Status(kDeadlineExceeded) for the affected cell.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

// Thrown from a poll site after a stop-flag-requested checkpoint has been
// written: the run is abandoned at a safe boundary with its state on disk.
// The harness exits with a distinct code (see kGracefulShutdownExitCode).
class GracefulShutdownRequest : public std::runtime_error {
 public:
  explicit GracefulShutdownRequest(const std::string& what)
      : std::runtime_error(what) {}
};

struct CkptControl {
  // Periodic checkpoint every this many aggregate executed references
  // (0 = never).  Interval checks happen only at safe boundaries, so the
  // actual spacing can overshoot by up to one refill batch per core.
  std::uint64_t interval_refs = 0;

  // One-shot checkpoint when the aggregate reference count first reaches
  // this value (0 = never) — the sweep warmup-sharing hook.
  std::uint64_t save_at_refs = 0;

  // Graceful-shutdown flag, typically set from a SIGTERM/SIGINT handler
  // (src/ckpt/signal.h).  When observed at a safe boundary: save, then
  // throw GracefulShutdownRequest.  Not owned; may be null.
  const std::atomic<bool>* stop_flag = nullptr;

  // Per-run wall-clock budget; checked at the same boundaries.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  // Writes a checkpoint of `sim` (installed by src/ckpt; the simulator
  // never learns the file format).
  std::function<void(MulticoreSimulator&)> save;
};

}  // namespace redhip
