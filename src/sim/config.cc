#include "sim/config.h"

#include <algorithm>

#include "common/check.h"
#include "energy/cacti_lite.h"

namespace redhip {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kBase:
      return "Base";
    case Scheme::kPhased:
      return "Phased";
    case Scheme::kCbf:
      return "CBF";
    case Scheme::kRedhip:
      return "ReDHiP";
    case Scheme::kOracle:
      return "Oracle";
    case Scheme::kPartialTag:
      return "PartialTag";
  }
  return "unknown";
}

std::string to_string(InclusionPolicy p) {
  switch (p) {
    case InclusionPolicy::kInclusive:
      return "inclusive";
    case InclusionPolicy::kHybrid:
      return "hybrid";
    case InclusionPolicy::kExclusive:
      return "exclusive";
  }
  return "unknown";
}

std::string to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kCountOnly:
      return "count-only";
    case RecoveryPolicy::kRecalibrate:
      return "recalibrate";
    case RecoveryPolicy::kAbortRetry:
      return "abort-retry";
  }
  return "unknown";
}

void HierarchyConfig::validate() const {
  REDHIP_CHECK_MSG(cores >= 1, "at least one core");
  REDHIP_CHECK_MSG(levels.size() >= 2, "need at least two cache levels");
  REDHIP_CHECK_MSG(levels.size() <= 15, "at most 15 cache levels");
  REDHIP_CHECK_MSG(freq_ghz > 0.0, "frequency must be positive");
  for (const auto& lvl : levels) lvl.geom.validate();
  for (std::size_t i = 1; i < levels.size(); ++i) {
    REDHIP_CHECK_MSG(levels[i].geom.line_bytes == levels[0].geom.line_bytes,
                     "all levels must share one line size");
  }
  if (scheme == Scheme::kRedhip) {
    redhip.validate();
    // The bits-hash containment property (paper Fig. 3): the PT index must
    // be wider than the LLC set index so that PT aliases share a cache set.
    REDHIP_CHECK_MSG(redhip.index_bits() > llc().geom.set_bits(),
                     "PT index bits must exceed LLC set bits (p > k)");
  }
  if (scheme == Scheme::kCbf) cbf.validate();
  if (scheme == Scheme::kPartialTag) partial_tag.validate();
  if (prefetch) {
    prefetcher.validate();
    REDHIP_CHECK_MSG(inclusion == InclusionPolicy::kInclusive,
                     "prefetching is modeled for the inclusive hierarchy");
  }
  if (inclusion == InclusionPolicy::kExclusive) {
    REDHIP_CHECK_MSG(scheme == Scheme::kBase || scheme == Scheme::kRedhip ||
                         scheme == Scheme::kOracle,
                     "exclusive hierarchy supports Base/ReDHiP/Oracle");
    REDHIP_CHECK_MSG(!auto_disable.enabled,
                     "auto-disable is modeled for the single-LLC-predictor "
                     "(inclusive/hybrid) configurations");
  }
  if (auto_disable.enabled) {
    REDHIP_CHECK_MSG(auto_disable.epoch_refs > 0, "epoch must be positive");
  }
  obs.validate();
  fault.validate();
  if (fault.enabled) {
    const std::uint32_t pt_sites =
        static_cast<std::uint32_t>(FaultSite::kPtBitClear) |
        static_cast<std::uint32_t>(FaultSite::kPtBitSet) |
        static_cast<std::uint32_t>(FaultSite::kRecalDrop);
    if ((fault.site_mask & pt_sites) != 0) {
      REDHIP_CHECK_MSG(scheme == Scheme::kRedhip &&
                           inclusion != InclusionPolicy::kExclusive,
                       "PT fault sites target the shared-LLC ReDHiP table "
                       "(scheme=redhip, inclusive/hybrid)");
    }
  }
  if (audit.enabled) {
    REDHIP_CHECK_MSG(inclusion != InclusionPolicy::kExclusive,
                     "the invariant auditor covers the single-LLC-predictor "
                     "(inclusive/hybrid) configurations");
  }
}

namespace {

LevelSpec make_level(std::uint64_t size, std::uint32_t ways,
                     std::uint32_t banks, bool phased, bool split_tags) {
  LevelSpec lvl;
  lvl.geom.size_bytes = size;
  lvl.geom.ways = ways;
  lvl.geom.banks = banks;
  lvl.energy = CactiLite::cache_params(size, split_tags);
  lvl.phased = phased;
  return lvl;
}

}  // namespace

HierarchyConfig HierarchyConfig::paper(Scheme scheme,
                                       InclusionPolicy inclusion) {
  return scaled(1, scheme, inclusion);
}

HierarchyConfig HierarchyConfig::scaled(std::uint32_t scale, Scheme scheme,
                                        InclusionPolicy inclusion) {
  REDHIP_CHECK_MSG(scale >= 1 && is_pow2(scale),
                   "scale must be a power of two");
  HierarchyConfig c;
  c.scheme = scheme;
  c.inclusion = inclusion;
  const bool phased = scheme == Scheme::kPhased;
  // Table I geometries divided by `scale`; associativity and banking are
  // structural choices and do not scale.
  // L3/L4 keep their split tag/data organization at every scale (that is
  // what Phased Cache serializes and what miss-at-tag timing depends on).
  c.levels = {
      make_level(32_KiB / scale, 4, 1, false, false),
      make_level(256_KiB / scale, 8, 1, false, false),
      make_level(4_MiB / scale, 16, 4, phased, true),
      make_level(64_MiB / scale, 16, 8, phased, true),
  };
  // ReDHiP: 512KB of 1-bit entries = 2^22 bits, recalibration every 1M L1
  // misses, 4 banks — all divided by `scale`.
  c.redhip.table_bits = (std::uint64_t{1} << 22) / scale;
  c.redhip.recal_interval_l1_misses = 1'000'000 / scale;
  c.redhip.banks = 4;
  c.redhip.energy = CactiLite::pt_params(c.redhip.table_bits / 8);
  // The 5-cycle wire delay is the physical distance from the core to the
  // PT beside the L4; a geometry-scaled chip shrinks it in proportion to
  // the L4's own access time (22 cycles at full size).
  c.redhip.energy.wire_delay = std::max<Cycles>(
      1, (5 * c.levels[3].energy.data_delay + 11) / 22);
  // The paper's deployed design recalibrates incrementally (§IV:
  // "Recalibration is performed incrementally with an update for every
  // table entry every 1 million L1 misses").
  c.redhip.recal_mode = RecalMode::kRolling;
  // CBF: same area budget as the PT.
  c.cbf = CbfConfig::for_area_budget(c.redhip.table_bits / 8);
  c.cbf.energy = c.redhip.energy;
  // Partial-tag mirror: 8-bit partial tags, priced at its own (larger)
  // geometry but the same placement beside the L4.
  c.partial_tag.partial_bits = 8;
  c.partial_tag.energy = CactiLite::pt_params(
      c.levels[3].geom.lines() * (c.partial_tag.partial_bits + 1) / 8);
  c.partial_tag.energy.wire_delay = c.redhip.energy.wire_delay;
  // Stride prefetcher: large table ("accuracy comparable with the best").
  c.prefetcher.index_bits = 12;
  c.prefetcher.degree = 2;
  c.prefetcher.distance = 1;
  c.validate();
  return c;
}

HierarchyConfig HierarchyConfig::with_depth(std::uint32_t depth,
                                            std::uint32_t scale,
                                            Scheme scheme) {
  REDHIP_CHECK_MSG(depth >= 2 && depth <= 5, "supported depths: 2..5");
  HierarchyConfig c = scaled(scale, scheme);
  const bool phased = scheme == Scheme::kPhased;
  switch (depth) {
    case 2:
      // L1 + the shared LLC.
      c.levels = {c.levels[0], c.levels[3]};
      break;
    case 3:
      c.levels = {c.levels[0], c.levels[1], c.levels[3]};
      break;
    case 4:
      break;  // Table I
    case 5: {
      // A private 32MB slice under a 512MB shared L5 — the trend line the
      // paper's Figure 1 extrapolates.
      c.levels.insert(c.levels.end() - 1,
                      make_level(32_MiB / scale, 16, 8, phased, true));
      c.levels.back() = make_level(512_MiB / scale, 16, 16, phased, true);
      break;
    }
  }
  // Re-derive the PT (and the CBF budget) against the new LLC: same 0.78%
  // area ratio, same one-PT-line-per-set structure.
  c.redhip.table_bits = c.llc().geom.size_bytes / 16;
  c.redhip.energy = CactiLite::pt_params(c.redhip.table_bits / 8);
  c.redhip.energy.wire_delay = std::max<Cycles>(
      1, (5 * c.llc().energy.data_delay + 11) / 22);
  c.cbf = CbfConfig::for_area_budget(c.redhip.table_bits / 8);
  c.cbf.energy = c.redhip.energy;
  c.validate();
  return c;
}

RedhipConfig HierarchyConfig::redhip_for_size(
    std::uint64_t cache_size_bytes) const {
  // Keep the LLC PT's bits-per-cache-byte ratio (the paper's constant 0.78%
  // area overhead per predictor/cache pair).
  RedhipConfig r = redhip;
  const std::uint64_t llc_bytes = llc().geom.size_bytes;
  r.table_bits = redhip.table_bits * cache_size_bytes / llc_bytes;
  if (r.table_bits < 64) r.table_bits = 64;
  REDHIP_CHECK(is_pow2(r.table_bits));
  r.energy = CactiLite::pt_params(r.table_bits / 8);
  return r;
}

}  // namespace redhip
