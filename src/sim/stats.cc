#include "sim/stats.h"

namespace redhip {

bool stats_identical(const SimResult& a, const SimResult& b) {
  return a.levels == b.levels && a.predictor == b.predictor &&
         a.prefetch == b.prefetch && a.memory_accesses == b.memory_accesses &&
         a.demand_memory_accesses == b.demand_memory_accesses &&
         a.memory_writebacks == b.memory_writebacks &&
         a.core_cycles == b.core_cycles && a.exec_cycles == b.exec_cycles &&
         a.total_core_cycles == b.total_core_cycles &&
         a.recal_stall_cycles == b.recal_stall_cycles &&
         a.total_refs == b.total_refs &&
         a.predictor_disabled_refs == b.predictor_disabled_refs &&
         a.fault == b.fault && a.elapsed_seconds == b.elapsed_seconds &&
         a.energy == b.energy && a.epochs == b.epochs;
}

}  // namespace redhip
