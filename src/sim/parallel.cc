// The bound-weave parallel engine.
//
// run()/run_reference() interleave every core's references in one global
// (clock, core id) order because the shared levels — LLC, predictor table,
// memory, the energy counters behind them — are one mutable state.  But the
// dominant reference stream never gets past L1: synthetic workloads (like
// the element-granular traces the paper's pintool produced) hit the private
// L1 for the overwhelming majority of references, and an L1 hit touches
// nothing shared except four monotone counters.
//
// This engine exploits that split:
//
//   bound phase   Every core runs on a ThreadPool lane, executing *only*
//                 L1 hits (the same-line memo or a tag-array probe hit)
//                 against its private L1 — which no other core ever fills
//                 or invalidates mid-phase — and logging one entry per
//                 reference.  The lane parks at its first L1 miss (an
//                 "event": everything below L1 is or may become shared
//                 state), at the speculation window cap, or when its
//                 reference quota ends.
//
//   weave phase   The calling thread merges the lanes' logs and parked
//                 events into the exact serial order.  An event executes
//                 only when it precedes every other lane's frontier, and it
//                 replays the *unmodified* serial reference body — access(),
//                 prefetches, auto-disable, observability — so all shared
//                 state evolves in the serial sequence.  Logged L1 hits
//                 commit as counter updates (see ParCommitMode).
//
// Speculation is unsound in exactly one case: an LLC eviction's
// back-invalidation removes a line from core C's L1 *at the event's cycle*,
// but C's lane may already have speculated later references that hit that
// line.  back_invalidate_core() therefore calls par_note_back_invalidate()
// first; on a conflict the lane rewinds — every speculated entry carries an
// undo snapshot of the one L1 set it touched, so rollback restores the tag
// array, clock, CPI remainder, memo and ref count to just before the first
// conflicting reference, and the discarded references re-execute later
// (from a replay queue: the trace source never rewinds).  Entries already
// committed are final by construction: the weave only commits entries that
// precede every executable event.
//
// Determinism does not depend on thread count or scheduling: each lane's
// trajectory is a pure function of its own state, and the weave's decisions
// depend only on lane states at the phase barrier — the tests lock
// bit-identical statistics, reports and event traces against run() for
// every feature mask at 1, 2 and 4 threads.
//
// Two configurations cannot speculate and fall back to a weave-only mode
// that runs the serial reference body on the calling thread while the
// ThreadPool pre-generates each core's 256-ref trace batches double-buffered
// ahead of consumption: fault injection (the injector perturbs references
// in global interleave order from one RNG stream) and L1 replacement
// policies whose state lives outside the packed tag entries (see
// TagArray::state_is_self_contained).
#include <algorithm>
#include <cstdint>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "sim/simulator.h"

namespace redhip {

struct MulticoreSimulator::ParLane {
  // Embedded-LRU tag arrays have at most 16 ways (see TagArray); the
  // speculation gate guarantees it, so undo snapshots are fixed-size.
  static constexpr std::uint32_t kMaxWays = 16;

  struct Entry {
    Cycles key;         // core clock before the gap advance (= merge key)
    Cycles post_clock;  // core clock after gap + latency (= obs timestamp)
    Cycles lat;
    MemRef ref;
    // Undo state: everything this reference changed, captured before it ran.
    LineAddr pre_memo_line;
    std::uint64_t set;             // L1 set index (valid when touched_set)
    std::uint8_t pre_rem_centi;    // CPI remainder, always < 100
    bool pre_memo_dirty;
    bool touched_set;              // memo hits without a dirty latch touch none
    std::uint64_t saved[kMaxWays];
  };

  enum class Status : std::uint8_t {
    kRunning,  // will speculate further next bound phase
    kAtEvent,  // parked at an L1 miss; ev_ref/ev_key hold the reference
    kAtCap,    // log hit the window cap; waiting for the weave to commit
    kDone,     // reference quota reached or trace exhausted
  };

  CoreId core = 0;
  Status status = Status::kRunning;
  std::vector<Entry> log;
  std::size_t committed = 0;  // log[0..committed) already folded into stats
  MemRef ev_ref{};
  Cycles ev_key = 0;
  // References discarded by a rollback, re-executed before the lane reads
  // its trace again (sources are forward-only).
  std::deque<MemRef> replay;
};

namespace {

// (cycle, core) lexicographic order — the serial engines' tie-break.
inline bool key_before(Cycles ka, CoreId ca, Cycles kb, CoreId cb) {
  return ka != kb ? ka < kb : ca < cb;
}

}  // namespace

bool MulticoreSimulator::parallel_can_speculate() const {
  // Fault injection consumes one global RNG stream in interleave order; a
  // lane cannot know its references' positions in that order up front.
  if (injector_ != nullptr) return false;
  // Rollback restores an L1 set by copying its packed entries back; that
  // only captures the full state for embedded-LRU arrays.  (The SoA
  // partial-tag lane is derived state — restore_set rebuilds it from the
  // entries, so the undo log never needs to capture it.)  All cores share
  // one L1 geometry, so core 0 answers for everyone.
  if (!private_[0].state_is_self_contained()) return false;
  return true;
}

SimResult MulticoreSimulator::run_parallel(std::uint64_t max_refs_per_core,
                                           const ParallelOptions& opts) {
  REDHIP_CHECK_MSG(!ran_, "a simulator instance runs once");
  ran_ = true;
  obs_begin_run(max_refs_per_core);
  {
    // Scoped so run_seconds is accumulated before finalize_result copies
    // the timings into the result.
    ScopedTimer timer(obs_ != nullptr ? obs_->run_timer() : nullptr);
    if (parallel_can_speculate()) {
      par_speculated_ = true;
      par_run_speculative(max_refs_per_core, opts);
    } else {
      par_run_weave_only(max_refs_per_core, opts);
    }
  }
  return finalize_result();
}

// ------------------------------------------------------------- bound phase

void MulticoreSimulator::par_lane_step(ParLane& lane,
                                       std::uint64_t max_refs_per_core,
                                       std::uint32_t window_refs) {
  CoreState& cs = cores_[lane.core];
  TagArray& l1 = private_[lane.core];  // level 0, lvl-major layout
  const bool writebacks = config_.model_writebacks;

  while (true) {
    if (lane.log.size() >= window_refs) {
      lane.status = ParLane::Status::kAtCap;
      return;
    }
    if (cs.refs_done >= max_refs_per_core) {
      cs.exhausted = true;
      lane.status = ParLane::Status::kDone;
      return;
    }
    MemRef ref;
    if (!lane.replay.empty()) {
      ref = lane.replay.front();
      lane.replay.pop_front();
    } else {
      if (cs.buf_pos == cs.buf_len) {
        // Identical refill pattern to the fast engine: rollbacks re-execute
        // from `replay` without touching the source, so the sequence of
        // (want, position) refill calls — and the per-core refill metric —
        // is exactly the serial one.
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kRefillBatch,
                                    max_refs_per_core - cs.refs_done));
        cs.buf_len = static_cast<std::uint32_t>(
            cs.trace->next_batch(cs.buf.data(), want));
        cs.buf_pos = 0;
        if (obs_ != nullptr) {
          obs_->metrics().add(lane.core, ObsCounter::kRefillBatches);
        }
        if (cs.buf_len == 0) {
          cs.exhausted = true;
          lane.status = ParLane::Status::kDone;
          return;
        }
      }
      ref = cs.buf[cs.buf_pos++];
    }

    const LineAddr line = ref.addr >> l1_shift_;
    ParLane::Entry e;
    e.key = cs.clock;
    e.lat = l1_hit_latency_;
    e.ref = ref;
    e.pre_memo_line = cs.l1_last_line;
    e.pre_memo_dirty = cs.l1_last_dirty;
    e.pre_rem_centi = static_cast<std::uint8_t>(cs.cpi.remainder_centi());
    e.touched_set = false;
    e.set = 0;

    if (line == cs.l1_last_line) {
      // Same-line memo hit — like the serial fast path, no tag scan and no
      // LRU touch; only a first write latches the dirty bit.
      if (ref.is_write && writebacks && !cs.l1_last_dirty) {
        e.set = l1.set_of(line);
        l1.save_set(e.set, e.saved);
        e.touched_set = true;
        l1.mark_dirty(line);
        cs.l1_last_dirty = true;
      }
    } else {
      const std::uint64_t set = l1.set_of(line);
      // Snapshot before the probe: a hit mutates rank nibbles, the dirty
      // bit, and (in principle) the prefetched bit of this one set.
      l1.save_set(set, e.saved);
      const TagArray::LookupResult r =
          l1.lookup(line, ref.is_write && writebacks);
      if (!r.hit) {
        // Event: everything below L1 is shared.  A missed lookup mutates
        // nothing, so there is nothing to undo; park and let the weave run
        // the full serial reference body at the right global position.
        lane.ev_ref = ref;
        lane.ev_key = cs.clock;
        lane.status = ParLane::Status::kAtEvent;
        return;
      }
      // L1 only ever receives demand fills, so a hit never clears a
      // prefetched mark (the serial memo path relies on the same fact).
      REDHIP_DCHECK(!r.was_prefetched);
      e.set = set;
      e.touched_set = true;
      cs.l1_last_line = line;
      cs.l1_last_dirty = false;
    }

    cs.clock += cs.cpi.advance(ref.gap);
    cs.clock += e.lat;
    e.post_clock = cs.clock;
    ++cs.refs_done;
    lane.log.push_back(e);
  }
}

// ------------------------------------------------------------- weave phase

void MulticoreSimulator::par_commit_until(Cycles key, CoreId core,
                                          ParCommitMode mode) {
  std::vector<ParLane>& lanes = *par_lanes_;
  // An entry commits when it precedes the event at (key, core): strictly
  // earlier cycle, or same-cycle lower core id — and same-cycle *same* core,
  // because a lane's own logged entries precede its parked event in program
  // order.
  const auto within = [&](CoreId lane_core, const ParLane::Entry& e) {
    return e.key < key || (e.key == key && lane_core <= core);
  };

  if (mode == ParCommitMode::kOrdered) {
    // Full merge: observability needs every reference's latency and
    // timestamp in exact serial order.
    const bool auto_dis =
        config_.auto_disable.enabled && llc_pred_ != nullptr;
    while (true) {
      ParLane* best = nullptr;
      for (ParLane& ln : lanes) {
        if (ln.committed >= ln.log.size()) continue;
        const ParLane::Entry& e = ln.log[ln.committed];
        if (!within(ln.core, e)) continue;
        if (best == nullptr ||
            key_before(e.key, ln.core, best->log[best->committed].key,
                       best->core)) {
          best = &ln;
        }
      }
      if (best == nullptr) break;
      const ParLane::Entry& e = best->log[best->committed++];
      LevelEvents& ev = events_[0];
      ++ev.accesses;
      ++ev.tag_probes;
      ++ev.data_probes;
      ++ev.hits;
      if (auto_dis) {
        if (!predictor_active_) ++predictor_disabled_refs_;
        if (++epoch_refs_seen_ >= config_.auto_disable.epoch_refs) {
          evaluate_auto_disable();
        }
      }
      const Cycles now = e.post_clock + global_stall_cycles_;
      if (obs_->note_ref(best->core, e.lat, now)) {
        obs_->close_epoch(now, obs_snapshot());
      }
    }
  } else {
    std::uint64_t total = 0;
    for (ParLane& ln : lanes) {
      std::size_t i = ln.committed;
      while (i < ln.log.size() && within(ln.core, ln.log[i])) ++i;
      total += i - ln.committed;
      ln.committed = i;
    }
    if (total > 0) {
      // Every L1 hit adds the same four counters; order is irrelevant.
      LevelEvents& ev = events_[0];
      ev.accesses += total;
      ev.tag_probes += total;
      ev.data_probes += total;
      ev.hits += total;
      if (mode == ParCommitMode::kEpochBulk) {
        // Epoch boundaries fall after exact global ref counts, but hits
        // within one batch are interchangeable: they touch none of the
        // counters evaluate_auto_disable() reads, so only the *count*
        // crossing each boundary matters.
        std::uint64_t left = total;
        while (left > 0) {
          REDHIP_DCHECK(epoch_refs_seen_ < config_.auto_disable.epoch_refs);
          const std::uint64_t room =
              config_.auto_disable.epoch_refs - epoch_refs_seen_;
          const std::uint64_t take = std::min(left, room);
          if (!predictor_active_) predictor_disabled_refs_ += take;
          epoch_refs_seen_ += take;
          if (epoch_refs_seen_ >= config_.auto_disable.epoch_refs) {
            evaluate_auto_disable();
          }
          left -= take;
        }
      }
    }
  }

  // Committed prefixes are final; recycle fully-committed logs so window
  // capacity returns to the lane (keeps vector capacity, no realloc).
  for (ParLane& ln : lanes) {
    if (ln.committed > 0 && ln.committed == ln.log.size()) {
      ln.log.clear();
      ln.committed = 0;
    }
  }
}

void MulticoreSimulator::par_execute_event(ParLane& lane,
                                           std::uint64_t max_refs_per_core) {
  // The exact serial reference body for the parked reference.  Shared state
  // (LLC, predictor, directory, prefetchers, energy counters, obs) evolves
  // here and only here, in global order.
  CoreState& cs = cores_[lane.core];
  const MemRef ref = lane.ev_ref;
  cs.clock += cs.cpi.advance(ref.gap);
  const std::uint64_t misses_before = events_[0].misses;
  const Cycles ref_lat = access(lane.core, ref);
  cs.clock += ref_lat;
  if (!prefetchers_.empty() && events_[0].misses != misses_before) {
    run_prefetches(lane.core, ref);
  }
  if (config_.auto_disable.enabled && llc_pred_ != nullptr) {
    if (!predictor_active_) ++predictor_disabled_refs_;
    if (++epoch_refs_seen_ >= config_.auto_disable.epoch_refs) {
      evaluate_auto_disable();
    }
  }
  if (obs_ != nullptr) obs_note_ref(lane.core, ref_lat, cs);
  if (++cs.refs_done >= max_refs_per_core) {
    cs.exhausted = true;
    lane.status = ParLane::Status::kDone;
  } else {
    lane.status = ParLane::Status::kRunning;
  }
}

void MulticoreSimulator::par_weave(std::uint64_t max_refs_per_core,
                                   ParCommitMode mode) {
  std::vector<ParLane>& lanes = *par_lanes_;
  while (true) {
    // Frontier = the earliest (cycle, core) at which each lane can still
    // produce an item: a parked event's cycle, or the lane clock (the next
    // speculated reference's key can never be earlier).
    ParLane* best = nullptr;
    Cycles best_key = 0;
    for (ParLane& ln : lanes) {
      if (ln.status == ParLane::Status::kDone) continue;
      const Cycles k = ln.status == ParLane::Status::kAtEvent
                           ? ln.ev_key
                           : cores_[ln.core].clock;
      if (best == nullptr || key_before(k, ln.core, best_key, best->core)) {
        best = &ln;
        best_key = k;
      }
    }
    if (best == nullptr) {
      // Every lane done: drain all remaining logged entries.
      par_commit_until(~Cycles{0}, ~CoreId{0}, mode);
      return;
    }
    // Everything strictly before the global frontier minimum is final.
    par_commit_until(best_key, best->core, mode);
    if (best->status == ParLane::Status::kAtEvent) {
      // The event precedes every other lane's earliest possible item, so it
      // is the globally next reference; its execution may roll other lanes
      // back (via back_invalidate_core), which only moves their frontiers
      // later — never before this event.
      par_execute_event(*best, max_refs_per_core);
      continue;
    }
    if (best->status == ParLane::Status::kAtCap) {
      // All of a capped lane's entries are at or before its own frontier,
      // so the commit above drained its log completely; give it its window
      // back.
      REDHIP_DCHECK(best->log.empty());
      best->status = ParLane::Status::kRunning;
    }
    // The globally next item is a runnable lane's future reference — back
    // to the bound phase.
    return;
  }
}

void MulticoreSimulator::par_rewind_lane(ParLane& lane, std::size_t j) {
  const bool had_event = lane.status == ParLane::Status::kAtEvent;
  if (j == lane.log.size() && !had_event) return;  // nothing speculative
  CoreState& cs = cores_[lane.core];
  TagArray& l1 = private_[lane.core];
  // Undo tag-array mutations newest-first; each entry restores the one set
  // it touched, so overlapping touches unwind correctly.  restore_set also
  // rebuilds the set's partial-tag lane from the restored entries, keeping
  // the SoA lane-mirrors-entries invariant across every rewind.
  for (std::size_t i = lane.log.size(); i-- > j;) {
    const ParLane::Entry& e = lane.log[i];
    if (e.touched_set) l1.restore_set(e.set, e.saved);
  }
  if (j < lane.log.size()) {
    // Rewind the core's micro-state to just before the first discarded
    // reference.  (A parked event never advanced clock or CPI — the weave
    // does that when it executes — so an event-only rewind skips this.)
    const ParLane::Entry& ej = lane.log[j];
    cs.clock = ej.key;
    cs.cpi.set_remainder_centi(ej.pre_rem_centi);
    cs.l1_last_line = ej.pre_memo_line;
    cs.l1_last_dirty = ej.pre_memo_dirty;
    cs.refs_done -= lane.log.size() - j;
    cs.exhausted = false;
  }
  // The discarded references (and a parked event's reference, which was
  // fetched after them) re-execute in order, ahead of any references a
  // previous rollback already queued.
  std::vector<MemRef> requeue;
  requeue.reserve(lane.log.size() - j + 1);
  for (std::size_t i = j; i < lane.log.size(); ++i) {
    requeue.push_back(lane.log[i].ref);
  }
  if (had_event) requeue.push_back(lane.ev_ref);
  lane.replay.insert(lane.replay.begin(), requeue.begin(), requeue.end());
  lane.log.resize(j);
  lane.status = ParLane::Status::kRunning;
}

void MulticoreSimulator::par_note_back_invalidate(CoreId core,
                                                  LineAddr victim) {
  ParLane& lane = (*par_lanes_)[core];
  // First uncommitted speculated reference that touched the victim line.
  // Entries on other lines commute with the invalidation: removing the
  // victim preserves rank nibbles and cannot turn their hits into misses,
  // and their promotions/dirty marks are way-local.  The memo interaction
  // is equally safe: a later reference that would wrongly take the memo
  // path on the victim *is* a conflicting entry by definition.
  std::size_t j = lane.log.size();
  for (std::size_t i = lane.committed; i < lane.log.size(); ++i) {
    if ((lane.log[i].ref.addr >> l1_shift_) == victim) {
      j = i;
      break;
    }
  }
  if (j == lane.log.size()) return;  // no conflict; speculation stands

  ++par_rollbacks_;
  par_rewind_lane(lane, j);
}

// ------------------------------------------------------------- drivers

void MulticoreSimulator::par_run_speculative(std::uint64_t max_refs_per_core,
                                             const ParallelOptions& opts) {
  std::vector<ParLane> lanes(config_.cores);
  for (CoreId c = 0; c < config_.cores; ++c) lanes[c].core = c;
  par_lanes_ = &lanes;
  struct Guard {
    MulticoreSimulator* s;
    ~Guard() { s->par_lanes_ = nullptr; }
  } guard{this};

  const std::uint32_t window = std::max<std::uint32_t>(1, opts.window_refs);
  const bool auto_dis = config_.auto_disable.enabled && llc_pred_ != nullptr;
  const ParCommitMode mode =
      obs_ != nullptr ? ParCommitMode::kOrdered
                      : (auto_dis ? ParCommitMode::kEpochBulk
                                  : ParCommitMode::kBulk);

  std::size_t nthreads =
      opts.threads > 0 ? opts.threads : std::thread::hardware_concurrency();
  nthreads = std::min<std::size_t>(std::max<std::size_t>(nthreads, 1),
                                   config_.cores);
  ThreadPool pool(nthreads);

  std::vector<std::size_t> runnable;
  runnable.reserve(lanes.size());
  while (true) {
    // Checkpoint boundary: the pool is idle here (run_phase is a barrier),
    // so when an action is due the speculation quiesces — every lane's
    // uncommitted entries are rolled back to its committed frontier, which
    // leaves the simulator in exactly the serial engines' state at that
    // global cut.  The discarded references re-execute from the replay
    // queues afterwards, so a checkpoint that does *not* terminate the run
    // costs only the rolled-back window.
    if (ckpt_ctl_ != nullptr && ckpt_should_act()) {
      for (ParLane& ln : lanes) par_rewind_lane(ln, ln.committed);
      ckpt_poll_slow();
    }
    bool all_done = true;
    runnable.clear();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i].status != ParLane::Status::kDone) all_done = false;
      if (lanes[i].status == ParLane::Status::kRunning) runnable.push_back(i);
    }
    if (all_done) break;
    if (runnable.size() <= 1 || pool.size() <= 1) {
      // A mostly-serialized round (frequent events, or a 1-thread pool)
      // pays no barrier: run the lanes inline.
      for (const std::size_t i : runnable) {
        par_lane_step(lanes[i], max_refs_per_core, window);
      }
    } else {
      pool.run_phase(
          [&](std::size_t i) {
            par_lane_step(lanes[runnable[i]], max_refs_per_core, window);
          },
          runnable.size());
    }
    par_weave(max_refs_per_core, mode);
  }
  // All lanes done; drain any uncommitted tail.
  par_commit_until(~Cycles{0}, ~CoreId{0}, mode);
}

void MulticoreSimulator::par_run_weave_only(std::uint64_t max_refs_per_core,
                                            const ParallelOptions& opts) {
  // Serial-equivalent execution on this thread; the pool only pre-generates
  // each core's trace batches, double-buffered ahead of consumption.  The
  // refill sequence is precomputable because `want` at each refill equals
  // min(kRefillBatch, max - refs generated so far) — rollback never occurs
  // here and the consumer drains batches in order.
  const bool fault = injector_ != nullptr;
  const bool prefetch = !prefetchers_.empty();
  const bool auto_dis = config_.auto_disable.enabled && llc_pred_ != nullptr;

  struct GenLane {
    std::deque<std::vector<MemRef>> ready;   // weave-owned, consume in order
    std::vector<std::vector<MemRef>> fresh;  // worker-owned during a phase
    std::uint64_t gen_refs = 0;
    bool gen_done = false;
  };
  std::vector<GenLane> gen(config_.cores);
  // A checkpoint-restored run resumes with its trace sources already
  // positioned past refs_done consumed references; the generators' quota
  // arithmetic must start from the same point.
  for (CoreId c = 0; c < config_.cores; ++c) {
    gen[c].gen_refs = cores_[c].refs_done;
  }

  std::size_t nthreads =
      opts.threads > 0 ? opts.threads : std::thread::hardware_concurrency();
  nthreads = std::min<std::size_t>(std::max<std::size_t>(nthreads, 1),
                                   config_.cores);
  ThreadPool pool(nthreads);

  // How many batches each core keeps buffered ahead of the weave.  Two would
  // be strict double-buffering; a little more rides out uneven consumption
  // across cores between barriers.
  constexpr std::size_t kGenAhead = 8;

  heap_.clear();
  heap_.reserve(config_.cores);
  for (CoreId c = 0; c < config_.cores; ++c) {
    CoreState& cs = cores_[c];
    if (max_refs_per_core == 0 || cs.refs_done >= max_refs_per_core) {
      cs.exhausted = true;
    }
    if (!cs.exhausted) heap_.push_back(HeapSlot::make(cs.clock, c));
  }
  // Restored runs resume with unequal clocks (see run_loop).
  for (std::size_t i = heap_.size() / 2; i-- > 0;) heap_sift_down(i);

  while (!heap_.empty()) {
    // Kick generators for every core running low.  Workers touch only their
    // GenLane::fresh/gen_* and the core's TraceSource; the weave touches
    // only `ready` until wait_idle() below orders everything.
    for (CoreId c = 0; c < config_.cores; ++c) {
      GenLane& g = gen[c];
      if (g.gen_done || g.ready.size() >= kGenAhead) continue;
      const std::size_t want_batches = kGenAhead - g.ready.size();
      TraceSource* trace = cores_[c].trace.get();
      pool.submit([&g, trace, want_batches, max_refs_per_core] {
        for (std::size_t b = 0; b < want_batches; ++b) {
          const std::size_t want = static_cast<std::size_t>(
              std::min<std::uint64_t>(kRefillBatch,
                                      max_refs_per_core - g.gen_refs));
          if (want == 0) {
            g.gen_done = true;  // consumer stops at its quota first
            return;
          }
          std::vector<MemRef> batch(want);
          const std::size_t len = trace->next_batch(batch.data(), want);
          batch.resize(len);
          g.gen_refs += len;
          g.fresh.push_back(std::move(batch));
          if (len == 0) {
            // Exhausted: the empty batch is the marker the consumer needs
            // to retire the core at the same refill the serial engine does.
            g.gen_done = true;
            return;
          }
        }
      });
    }

    // Consume buffered batches while the workers refill; identical to the
    // fast engine's run loop with runtime feature flags (the flags never
    // change the execution sequence, only skip no-op work).
    while (!heap_.empty()) {
      const CoreId best = heap_.front().core();
      CoreState& cs = cores_[best];
      if (cs.buf_pos == cs.buf_len) {
        GenLane& g = gen[best];
        if (g.ready.empty()) break;  // outpaced the generator; barrier below
        std::vector<MemRef>& batch = g.ready.front();
        cs.buf_len = static_cast<std::uint32_t>(batch.size());
        cs.buf_pos = 0;
        std::copy(batch.begin(), batch.end(), cs.buf.begin());
        g.ready.pop_front();
        if (obs_ != nullptr) {
          obs_->metrics().add(best, ObsCounter::kRefillBatches);
        }
        if (cs.buf_len == 0) {
          cs.exhausted = true;
          heap_pop_top();
          continue;
        }
      }
      MemRef ref = cs.buf[cs.buf_pos++];
      if (fault) {
        injector_->maybe_perturb(ref);  // FaultSite::kTraceAddr
        inject_faults();                // PT single-event upsets
      }
      cs.clock += cs.cpi.advance(ref.gap);
      const std::uint64_t misses_before = events_[0].misses;
      const Cycles ref_lat = access(best, ref);
      cs.clock += ref_lat;
      if (prefetch && events_[0].misses != misses_before) {
        run_prefetches(best, ref);
      }
      if (auto_dis) {
        if (!predictor_active_) ++predictor_disabled_refs_;
        if (++epoch_refs_seen_ >= config_.auto_disable.epoch_refs) {
          evaluate_auto_disable();
        }
      }
      if (obs_ != nullptr) obs_note_ref(best, ref_lat, cs);
      if (++cs.refs_done >= max_refs_per_core) {
        cs.exhausted = true;
        heap_pop_top();
      } else {
        heap_.front() = HeapSlot::make(cs.clock, best);
        heap_sift_down(0);
      }
    }

    pool.wait_idle();
    for (GenLane& g : gen) {
      for (std::vector<MemRef>& b : g.fresh) g.ready.push_back(std::move(b));
      g.fresh.clear();
    }
    // Checkpoint boundary: the generators are idle and the weave is between
    // references.  Pre-generated batches (like partially-consumed buffers)
    // are regenerable from the per-core trace positions, so they stay out
    // of the serialized state.
    ckpt_poll();
  }
}

}  // namespace redhip
