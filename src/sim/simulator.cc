#include "sim/simulator.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "energy/cacti_lite.h"
#include "predict/counting_bloom.h"
#include "predict/oracle.h"
#include "predict/partial_tag.h"

namespace redhip {

MulticoreSimulator::MulticoreSimulator(
    const HierarchyConfig& config,
    std::vector<std::unique_ptr<TraceSource>> traces,
    std::vector<std::uint32_t> cpi_centi)
    : config_(config) {
  config_.validate();
  REDHIP_CHECK_MSG(traces.size() == config_.cores, "one trace per core");
  REDHIP_CHECK_MSG(cpi_centi.size() == config_.cores, "one CPI per core");

  SplitMix64 seeder(config_.seed);
  const std::uint32_t n = config_.num_levels();
  private_.reserve((n - 1) * config_.cores);
  for (std::uint32_t lvl = 0; lvl + 1 < n; ++lvl) {
    for (CoreId c = 0; c < config_.cores; ++c) {
      private_.emplace_back(config_.levels[lvl].geom, seeder.next());
    }
  }
  shared_ = std::make_unique<TagArray>(config_.levels[n - 1].geom,
                                       seeder.next());
  events_.resize(n);
  top_private_ = n - 2;
  llc_dir_on_ =
      config_.inclusion == InclusionPolicy::kInclusive && config_.cores <= 8;
  if (llc_dir_on_) {
    llc_dir_.assign(shared_->sets() * shared_->ways(), 0);
  }
  const LevelSpec& l1 = config_.levels[0];
  l1_shift_ = l1.geom.line_shift();
  l1_hit_latency_ = l1.phased ? l1.energy.tag_delay + l1.energy.data_delay
                              : l1.energy.parallel_delay();
  level_timing_.resize(n);
  for (std::uint32_t lvl = 0; lvl < n; ++lvl) {
    const LevelSpec& spec = config_.levels[lvl];
    LevelTiming& t = level_timing_[lvl];
    t.phased = spec.phased;
    if (spec.phased) {
      t.hit_latency = spec.energy.tag_delay + spec.energy.data_delay;
      t.miss_latency = spec.energy.tag_delay;
    } else {
      // Parallel access reads both arrays, but a *miss* is known at
      // tag-compare time — the discarded data read costs energy, not
      // latency.  Small caches fold tag timing into the single access
      // number.
      t.hit_latency = spec.energy.parallel_delay();
      t.miss_latency = spec.energy.tag_delay > 0 ? spec.energy.tag_delay
                                                 : spec.energy.data_delay;
    }
  }

  // Predictors.
  if (config_.inclusion == InclusionPolicy::kExclusive) {
    if (config_.scheme == Scheme::kRedhip) {
      excl_pred_.resize(n - 1);
      for (std::uint32_t lvl = 1; lvl + 1 < n; ++lvl) {
        const RedhipConfig rc =
            config_.redhip_for_size(config_.levels[lvl].geom.size_bytes);
        for (CoreId c = 0; c < config_.cores; ++c) {
          excl_pred_[lvl].push_back(std::make_unique<RedhipTable>(rc));
          excl_pred_[lvl].back()->attach_covered(&private_[lvl * config_.cores + c]);
          predictor_leakage_w_ += rc.energy.leakage_w;
        }
      }
      excl_shared_pred_ = std::make_unique<RedhipTable>(config_.redhip);
      excl_shared_pred_->attach_covered(shared_.get());
      predictor_leakage_w_ += config_.redhip.energy.leakage_w;
    } else if (config_.scheme == Scheme::kOracle) {
      // Exclusive Oracle peeks at every level directly in the access path;
      // no structures needed.
    }
  } else {
    switch (config_.scheme) {
      case Scheme::kRedhip: {
        auto table = std::make_unique<RedhipTable>(config_.redhip);
        table->attach_covered(shared_.get());
        llc_pred_ = std::move(table);
        predictor_leakage_w_ = config_.redhip.energy.leakage_w;
        break;
      }
      case Scheme::kCbf:
        llc_pred_ = std::make_unique<CountingBloomFilter>(config_.cbf);
        predictor_leakage_w_ = config_.cbf.energy.leakage_w;
        break;
      case Scheme::kOracle:
        llc_pred_ = std::make_unique<OraclePredictor>(shared_.get());
        break;
      case Scheme::kPartialTag: {
        const auto& g = config_.llc().geom;
        llc_pred_ = std::make_unique<PartialTagPredictor>(
            config_.partial_tag, g.sets(), g.ways, g.set_bits());
        predictor_leakage_w_ = config_.partial_tag.energy.leakage_w;
        break;
      }
      case Scheme::kBase:
      case Scheme::kPhased:
        break;
    }
  }

  if (config_.prefetch) {
    for (CoreId c = 0; c < config_.cores; ++c) {
      prefetchers_.push_back(
          std::make_unique<StridePrefetcher>(config_.prefetcher));
    }
  }

  // Fault injection + recovery plumbing (all null when disabled).
  llc_redhip_ = dynamic_cast<RedhipTable*>(llc_pred_.get());
  if (config_.fault.enabled) {
    injector_ = std::make_unique<FaultInjector>(config_.fault);
    if (llc_redhip_ != nullptr &&
        injector_->site_enabled(FaultSite::kRecalDrop)) {
      llc_redhip_->set_recal_chunk_filter(
          [this](std::uint64_t, std::uint64_t) {
            const bool drop = injector_->fires(FaultSite::kRecalDrop);
            if (drop) ++injector_->stats().recal_chunks_dropped;
            return drop;
          });
    }
  }

  // Observability (src/obs): the collector exists only when enabled, and
  // the recal observer rides the shared-LLC ReDHiP table (the exclusive
  // hierarchy's per-level tables are not traced).
  if (config_.obs.enabled) {
    obs_ = std::make_unique<ObsCollector>(config_.obs, config_.cores,
                                          config_.fault.enabled);
    if (llc_redhip_ != nullptr) llc_redhip_->set_recal_observer(obs_.get());
  }

  for (CoreId c = 0; c < config_.cores; ++c) {
    CoreState cs;
    cs.trace = std::move(traces[c]);
    cs.cpi = CpiAccumulator(cpi_centi[c]);
    cs.buf.resize(kRefillBatch);
    cs.lines.resize(kRefillBatch);
    cores_.push_back(std::move(cs));
  }
}

TagArray& MulticoreSimulator::level_array(std::uint32_t level, CoreId core) {
  return is_shared(level) ? *shared_
                          : private_[level * config_.cores + core];
}

const TagArray& MulticoreSimulator::level_array(std::uint32_t level,
                                                CoreId core) const {
  return is_shared(level) ? *shared_
                          : private_[level * config_.cores + core];
}

// ----------------------------------------------------------- event recording

MulticoreSimulator::ProbeOutcome MulticoreSimulator::probe(std::uint32_t lvl,
                                                           CoreId core,
                                                           LineAddr line,
                                                           bool is_write) {
  TagArray& arr = level_array(lvl, core);
  const LevelTiming& t = level_timing_[lvl];
  LevelEvents& ev = events_[lvl];

  ++ev.accesses;
  ProbeOutcome out;
  // Writes dirty the L1 copy (write-allocate, writeback policy).
  const TagArray::LookupResult r =
      arr.lookup(line, is_write && lvl == 0 && config_.model_writebacks);
  out.hit = r.hit;
  out.was_prefetched = r.was_prefetched;
  // Same counters and latencies as deriving them from the LevelSpec per
  // probe (a phased miss never reads the data array; a parallel access
  // always reads both); the sums were just hoisted into level_timing_.
  ++ev.tag_probes;
  if (r.hit) {
    ++ev.data_probes;
    ++ev.hits;
    out.latency = t.hit_latency;
    if (llc_dir_on_ && is_shared(lvl)) {
      // Remember the line's LLC slot for the top-private directory update
      // later in this same access (see dir_memo_line_).
      dir_memo_line_ = line;
      dir_memo_way_ = r.way;
    }
  } else {
    if (!t.phased) ++ev.data_probes;
    ++ev.misses;
    out.latency = t.miss_latency;
  }
  if (r.was_prefetched && !prefetchers_.empty()) ++prefetch_events_.useful;
  return out;
}

void MulticoreSimulator::note_writeback(std::uint32_t lvl, CoreId core,
                                        LineAddr victim) {
  if (!config_.model_writebacks) return;
  if (is_shared(lvl)) {
    ++memory_writebacks_;
    return;
  }
  // The inclusive level below holds a copy; it absorbs the dirty data.
  ++events_[lvl + 1].writebacks;
  level_array(lvl + 1, core).mark_dirty(victim);
}

void MulticoreSimulator::fill_at(std::uint32_t lvl, CoreId core, LineAddr line,
                                 bool prefetched, bool dirty,
                                 bool known_absent) {
  TagArray& arr = level_array(lvl, core);
  TagArray::FillResult r;
  if (known_absent) {
    // Demand path: the probe of this array already missed (or the audited
    // bypass proved absence), so fill() skips straight to way selection.
    // Its debug check re-proves the contract.
    r = arr.fill(line, prefetched, dirty);
  } else if (!arr.fill_if_absent(line, prefetched, dirty, &r)) {
    // Single set scan: resident copies (a prefetch racing the demand write)
    // only pick up the dirty bit; absent lines fill, possibly evicting.
    return;
  }
  // Directory upkeep.  A top-private fill claims the line's LLC slot for
  // this core (the inclusive fill order guarantees the LLC copy already
  // exists); an LLC fill recycles the slot, so the victim's mask is
  // snapshotted and the slot starts clean for the incoming line.
  std::uint8_t victim_cores = 0;
  if (llc_dir_on_) {
    if (lvl == top_private_) {
      std::uint32_t w = 0;
      bool in_llc;
      if (line == dir_memo_line_) {
        // The access already located (or created) the line's LLC slot;
        // skip the re-scan.  Debug builds re-prove the memo.
        w = dir_memo_way_;
        in_llc = true;
        std::uint32_t check_w = 0;
        REDHIP_DCHECK(shared_->find_way(line, &check_w) && check_w == w);
      } else {
        in_llc = shared_->find_way(line, &w);
      }
      REDHIP_DCHECK(in_llc);
      if (in_llc) {
        llc_dir_[shared_->set_of(line) * shared_->ways() + w] |=
            static_cast<std::uint8_t>(1u << core);
      }
    } else if (is_shared(lvl)) {
      std::uint8_t& slot =
          llc_dir_[shared_->set_of(line) * shared_->ways() + r.way];
      victim_cores = slot;
      slot = 0;
      dir_memo_line_ = line;
      dir_memo_way_ = r.way;
    }
  }
  LevelEvents& ev = events_[lvl];
  ++ev.fills;
  // Eviction is reported before the fill: predictors that mirror the cache
  // exactly (the partial-tag baseline) must see the victim leave before the
  // newcomer arrives, or their per-set occupancy transiently overflows.
  if (r.evicted && is_shared(lvl) && llc_pred_) {
    llc_pred_->on_evict(r.victim);
  }
  if (is_shared(lvl) && llc_pred_) llc_pred_->on_fill(line);
  if (!r.evicted) return;

  ++ev.evictions;
  if (r.victim_was_prefetched && !prefetchers_.empty()) {
    ++prefetch_events_.useless;
  }
  if (r.victim_was_dirty) note_writeback(lvl, core, r.victim);
  if (is_shared(lvl)) {
    // Inclusive LLC (both the inclusive and hybrid policies): the victim
    // must leave every private cache.  With the directory only the cores
    // whose mask bit is set can hold a copy — the walk for everyone else
    // would provably find nothing, so skipping it changes no statistic.
    if (llc_dir_on_) {
      for (CoreId c = 0; victim_cores != 0; ++c, victim_cores >>= 1) {
        if (victim_cores & 1) back_invalidate_core(lvl, c, r.victim);
      }
    } else {
      back_invalidate_all_cores(lvl, r.victim);
    }
  } else if (config_.inclusion == InclusionPolicy::kInclusive) {
    // Private levels are inclusive of the levels above them.
    back_invalidate_core(lvl, core, r.victim);
  }
}

void MulticoreSimulator::back_invalidate_all_cores(std::uint32_t below_level,
                                                   LineAddr victim) {
  for (CoreId c = 0; c < config_.cores; ++c) {
    back_invalidate_core(below_level, c, victim);
  }
}

void MulticoreSimulator::back_invalidate_core(std::uint32_t below_level,
                                              CoreId core, LineAddr victim) {
  // Parallel engine: `core`'s lane may have speculated references past this
  // event's cycle that hit `victim` in its L1 — those hits are wrong the
  // moment the invalidation lands, so the lane is rolled back first (see
  // src/sim/parallel.cc).  Null outside the speculative weave.
  if (par_lanes_ != nullptr) par_note_back_invalidate(core, victim);
  // The L1 memo's residency guarantee ends here: this is the only path
  // that removes an L1 line outside the owning core's own access.
  if (cores_[core].l1_last_line == victim) {
    cores_[core].l1_last_line = kNoLine;
  }
  // Directory-precise: only actual residents are touched, and only
  // successful invalidations are charged (one tag write each).  A dirty
  // upper copy purged by level `below_level`'s eviction writes back to the
  // level below that eviction (which still holds the line) — or to memory
  // when it was the LLC evicting.
  if (config_.inclusion == InclusionPolicy::kInclusive) {
    // Inclusion means a line held at level L is held at every level below
    // L, so the holders form a contiguous run ending at `below_level - 1`.
    // Walking top-down and stopping at the first non-resident level charges
    // exactly the same invalidations as the full walk, and turns the common
    // "no private copies" case into a single set scan.
    for (std::uint32_t lvl = below_level; lvl-- > 0;) {
      bool was_dirty = false;
      if (!level_array(lvl, core).invalidate(victim, &was_dirty)) return;
      ++events_[lvl].invalidations;
      if (was_dirty && config_.model_writebacks) {
        if (below_level + 1 < config_.num_levels()) {
          ++events_[below_level + 1].writebacks;
          level_array(below_level + 1, core).mark_dirty(victim);
        } else {
          ++memory_writebacks_;
        }
      }
    }
    return;
  }
  // Hybrid / exclusive private chains hold at most one copy of a line, so
  // the walk can stop after invalidating it.
  for (std::uint32_t lvl = 0; lvl < below_level; ++lvl) {
    bool was_dirty = false;
    if (level_array(lvl, core).invalidate(victim, &was_dirty)) {
      ++events_[lvl].invalidations;
      if (was_dirty && config_.model_writebacks) {
        if (below_level + 1 < config_.num_levels()) {
          ++events_[below_level + 1].writebacks;
          level_array(below_level + 1, core).mark_dirty(victim);
        } else {
          ++memory_writebacks_;
        }
      }
      return;
    }
  }
}

void MulticoreSimulator::insert_with_cascade(std::uint32_t lvl, CoreId core,
                                             LineAddr line,
                                             std::uint32_t last_level,
                                             bool dirty) {
  LineAddr incoming = line;
  bool incoming_dirty = dirty && config_.model_writebacks;
  for (std::uint32_t l = lvl; l <= last_level; ++l) {
    TagArray& arr = level_array(l, core);
    REDHIP_DCHECK(!arr.contains(incoming));
    const TagArray::FillResult r = arr.fill(incoming, false, incoming_dirty);
    ++events_[l].fills;
    if (l >= 1 && config_.inclusion == InclusionPolicy::kExclusive &&
        config_.scheme == Scheme::kRedhip) {
      RedhipTable* t =
          is_shared(l) ? excl_shared_pred_.get() : excl_pred_[l][core].get();
      t->on_fill(incoming);
    }
    if (!r.evicted) return;
    ++events_[l].evictions;
    incoming = r.victim;  // the victim moves down one level, dirt and all
    incoming_dirty = r.victim_was_dirty;
  }
  // Victim of the last level is dropped (exclusive LLC — a dirty drop goes
  // to memory) or already covered by the inclusive LLC (hybrid chain, where
  // the LLC copy absorbs the dirty data).
  if (incoming_dirty && config_.model_writebacks) {
    if (last_level + 1 == config_.num_levels()) {
      ++memory_writebacks_;
    } else {
      ++events_[last_level + 1].writebacks;
      level_array(last_level + 1, core).mark_dirty(incoming);
    }
  }
}

// ------------------------------------------------------- predictor plumbing

Prediction MulticoreSimulator::query_llc_predictor(LineAddr line,
                                                   Cycles& latency) {
  if (!llc_pred_ || !predictor_active_) return Prediction::kPresent;
  const Prediction p = llc_pred_->query(line);
  latency += llc_pred_->lookup_delay();
  if (p == Prediction::kAbsent) {
    ++llc_pred_->events().predicted_absent;
  } else {
    ++llc_pred_->events().predicted_present;
  }
  return p;
}

void MulticoreSimulator::note_l1_miss() {
  if (!predictor_active_) return;  // gated off: recalibration paused too
  Cycles stall = 0;
  if (config_.inclusion == InclusionPolicy::kExclusive) {
    if (config_.scheme != Scheme::kRedhip) return;
    const std::uint64_t interval = config_.redhip.recal_interval_l1_misses;
    if (interval == 0) return;
    if (++excl_l1_misses_ < interval) return;
    excl_l1_misses_ = 0;
    // All tables recalibrate concurrently against their own tag arrays; the
    // stall is the slowest one (the LLC table).
    for (std::uint32_t lvl = 1; lvl + 1 < config_.num_levels(); ++lvl) {
      for (CoreId c = 0; c < config_.cores; ++c) {
        stall = std::max(stall,
                         excl_pred_[lvl][c]->recalibrate(
                             private_[lvl * config_.cores + c]));
      }
    }
    stall = std::max(stall, excl_shared_pred_->recalibrate(*shared_));
  } else {
    if (!llc_pred_) return;
    stall = llc_pred_->note_l1_miss_and_maybe_recalibrate(*shared_);
  }
  if (stall == 0) return;
  recal_stall_cycles_ += stall;
  global_stall_cycles_ += stall;
}

bool MulticoreSimulator::audit_bypass(LineAddr line) {
  if (!config_.audit.enabled) {
    // Without injected faults the no-false-negative property is structural
    // (checked in debug builds).  With injection but no auditor the bypass
    // proceeds uncorrected and the run silently mis-prices the access —
    // ablation_fault_tolerance quantifies exactly that damage.
    if (injector_ == nullptr) REDHIP_DCHECK(!shared_->contains(line));
    return true;
  }
  ++audit_checks_;
  if (!shared_->contains(line)) return true;
  ++invariant_violations_;
  switch (config_.audit.policy) {
    case RecoveryPolicy::kAbortRetry:
      // Only a *transient* fault model makes a retry meaningful (the
      // reseeded fault stream may miss); a deterministic fault would just
      // reproduce, so it surfaces as a plain failure.
      if (injector_ != nullptr && config_.fault.transient) {
        throw TransientFaultError(
            "invariant violation: predicted-absent line is LLC-resident; "
            "aborting the run for a reseeded retry");
      }
      throw std::runtime_error(
          "invariant violation: predicted-absent line is LLC-resident "
          "(deterministic fault; not retryable)");
    case RecoveryPolicy::kRecalibrate: {
      // Emergency recalibration: rebuild the PT exactly from the tag array,
      // restoring the no-false-negative property.  The stall freezes every
      // core and the tag reads + PT writes are priced by the EnergyLedger
      // like any scheduled recalibration.
      Cycles stall = 0;
      if (llc_redhip_ != nullptr) {
        stall = llc_redhip_->recalibrate(*shared_);
        ++recovery_recals_;
        recovery_stall_cycles_ += stall;
        recal_stall_cycles_ += stall;
        global_stall_cycles_ += stall;
      }
      if (obs_ != nullptr) {
        obs_->emit_recovery(to_string(config_.audit.policy), stall,
                            invariant_violations_);
      }
      break;
    }
    case RecoveryPolicy::kCountOnly:
      if (obs_ != nullptr) {
        obs_->emit_recovery(to_string(config_.audit.policy), 0,
                            invariant_violations_);
      }
      break;
  }
  return false;  // degrade gracefully: walk the hierarchy instead
}

void MulticoreSimulator::inject_faults() {
  if (llc_redhip_ == nullptr) return;
  const std::uint64_t bits = llc_redhip_->config().table_bits;
  // An SEU strikes a uniformly random cell; only a strike that actually
  // flips the bit is counted (a 1→0 strike on a 0 bit is invisible).
  if (injector_->fires(FaultSite::kPtBitClear) &&
      llc_redhip_->corrupt_clear_bit(injector_->pick(bits))) {
    ++injector_->stats().pt_bits_cleared;
  }
  if (injector_->fires(FaultSite::kPtBitSet) &&
      llc_redhip_->corrupt_set_bit(injector_->pick(bits))) {
    ++injector_->stats().pt_bits_set;
  }
}

void MulticoreSimulator::evaluate_auto_disable() {
  const auto& ad = config_.auto_disable;
  epoch_refs_seen_ = 0;

  if (!predictor_active_) {
    if (--disabled_epochs_left_ > 0) return;
    // Probe epoch: re-enable; the table is stale after the pause, so pay
    // for one full recalibration up front.
    predictor_active_ = true;
    if (auto* t = dynamic_cast<RedhipTable*>(llc_pred_.get())) {
      const Cycles stall = t->recalibrate(*shared_);
      recal_stall_cycles_ += stall;
      global_stall_cycles_ += stall;
    }
    if (obs_ != nullptr) obs_->emit_auto_disable(true, 0);
  } else {
    const std::uint64_t misses = events_[0].misses - epoch_start_misses_;
    const std::uint64_t lookups =
        llc_pred_->events().lookups - epoch_start_lookups_;
    const std::uint64_t absents =
        llc_pred_->events().predicted_absent - epoch_start_absents_;
    const std::uint64_t miss_ppm = misses * 1'000'000 / ad.epoch_refs;
    const std::uint64_t bypass_ppm =
        lookups == 0 ? 0 : absents * 1'000'000 / lookups;
    const bool useless =
        miss_ppm < ad.min_l1_miss_ppm || bypass_ppm < ad.min_bypass_ppm;
    if (useless) {
      predictor_active_ = false;
      disabled_epochs_left_ = disable_backoff_;
      disable_backoff_ = std::min(disable_backoff_ * 2, ad.max_backoff_epochs);
      if (obs_ != nullptr) {
        obs_->emit_auto_disable(false, disabled_epochs_left_);
      }
    } else {
      disable_backoff_ = 1;
    }
  }
  epoch_start_misses_ = events_[0].misses;
  epoch_start_lookups_ = llc_pred_->events().lookups;
  epoch_start_absents_ = llc_pred_->events().predicted_absent;
}

// ------------------------------------------------------------- access paths

Cycles MulticoreSimulator::access(CoreId core, const MemRef& ref) {
  const LineAddr line = ref.addr >> l1_shift_;
  const bool is_write = ref.is_write;
  CoreState& cs = cores_[core];
  if (line == cs.l1_last_line) {
    // Same-line L1 hit memo.  The memo line is resident and MRU (every
    // access path ends with the line hit or filled into L1, and
    // back_invalidate_core clears the memo when it removes the line), so
    // this reproduces probe(0) exactly: a guaranteed hit charges one tag
    // and one data probe under both phased and parallel L1 policies, the
    // LRU touch is a no-op, and the prefetched bit is known clear because
    // L1 only ever receives demand fills.
    LevelEvents& ev = events_[0];
    ++ev.accesses;
    ++ev.tag_probes;
    ++ev.data_probes;
    ++ev.hits;
    if (is_write && config_.model_writebacks && !cs.l1_last_dirty) {
      level_array(0, core).mark_dirty(line);
      cs.l1_last_dirty = true;
    }
    return l1_hit_latency_;
  }
  Cycles lat;
  switch (config_.inclusion) {
    case InclusionPolicy::kInclusive:
      lat = access_inclusive(core, line, is_write);
      break;
    case InclusionPolicy::kHybrid:
      lat = access_hybrid(core, line, is_write);
      break;
    case InclusionPolicy::kExclusive:
      lat = access_exclusive(core, line, is_write);
      break;
    default:
      lat = 0;
      break;
  }
  // Every path above leaves `line` in L1; remember it for the next access.
  // Dirty state is re-derived lazily (a spurious mark_dirty is idempotent).
  cs.l1_last_line = line;
  cs.l1_last_dirty = false;
  return lat;
}

Cycles MulticoreSimulator::access_inclusive(CoreId core, LineAddr line,
                                            bool is_write) {
  const std::uint32_t n = config_.num_levels();
  const bool dirty = is_write && config_.model_writebacks;
  ProbeOutcome l1 = probe(0, core, line, is_write);
  Cycles lat = l1.latency;
  if (l1.hit) return lat;

  note_l1_miss();
  const Prediction p = query_llc_predictor(line, lat);
  // The core guarantee: a bypass may never hide on-chip data.  audit_bypass
  // enforces it (debug check, or the online auditor under injected faults).
  if (p == Prediction::kAbsent && audit_bypass(line)) {
    for (std::uint32_t lvl = 1; lvl < n; ++lvl) ++events_[lvl].skipped;
    lat += config_.memory_latency;
    ++memory_accesses_;
    ++demand_memory_accesses_;
    // Absence is proven when the bypass was audited (the auditor read the
    // LLC tags; inclusion extends the proof to every private level) or when
    // no injector runs (the no-false-negative property is structural).  An
    // unaudited bypass under injected faults may be wrong — the fill must
    // tolerate a resident line.
    const bool bypass_absent = config_.audit.enabled || injector_ == nullptr;
    for (std::uint32_t lvl = n; lvl-- > 0;) {
      fill_at(lvl, core, line, false, dirty && lvl == 0, bypass_absent);
    }
    return lat;
  }

  for (std::uint32_t lvl = 1; lvl < n; ++lvl) {
    const ProbeOutcome o = probe(lvl, core, line);
    lat += o.latency;
    if (o.hit) {
      if (llc_pred_) ++llc_pred_->events().true_positives;
      // Every level below `lvl` probed and missed in this access; nothing
      // adds lines between the probe and the fill (back-invalidations only
      // remove), so the fills are known-absent.
      for (std::uint32_t l = lvl; l-- > 0;) {
        fill_at(l, core, line, false, dirty && l == 0, true);
      }
      return lat;
    }
  }
  if (llc_pred_) ++llc_pred_->events().false_positives;
  lat += config_.memory_latency;
  ++memory_accesses_;
  ++demand_memory_accesses_;
  // Full miss: every level probed and missed, so every fill is known-absent.
  for (std::uint32_t lvl = n; lvl-- > 0;) {
    fill_at(lvl, core, line, false, dirty && lvl == 0, true);
  }
  return lat;
}

Cycles MulticoreSimulator::access_hybrid(CoreId core, LineAddr line,
                                         bool is_write) {
  const std::uint32_t n = config_.num_levels();
  const bool dirty = is_write && config_.model_writebacks;
  ProbeOutcome l1 = probe(0, core, line, is_write);
  Cycles lat = l1.latency;
  if (l1.hit) return lat;

  note_l1_miss();
  const Prediction p = query_llc_predictor(line, lat);
  if (p == Prediction::kAbsent && audit_bypass(line)) {
    for (std::uint32_t lvl = 1; lvl < n; ++lvl) ++events_[lvl].skipped;
    lat += config_.memory_latency;
    ++memory_accesses_;
    ++demand_memory_accesses_;
    // Same absence proof as the inclusive bypass: audited, or no injector.
    fill_at(n - 1, core, line, false, false,
            config_.audit.enabled || injector_ == nullptr);  // inclusive LLC
    insert_with_cascade(0, core, line, n - 2, dirty);        // private chain
    return lat;
  }

  for (std::uint32_t lvl = 1; lvl < n; ++lvl) {
    const ProbeOutcome o = probe(lvl, core, line);
    lat += o.latency;
    if (!o.hit) continue;
    if (llc_pred_) ++llc_pred_->events().true_positives;
    bool was_dirty = false;
    if (!is_shared(lvl)) {
      // Move (not copy) out of the exclusive private level.
      level_array(lvl, core).invalidate(line, &was_dirty);
      ++events_[lvl].invalidations;
    }
    insert_with_cascade(0, core, line, n - 2, dirty || was_dirty);
    return lat;
  }
  if (llc_pred_) ++llc_pred_->events().false_positives;
  lat += config_.memory_latency;
  ++memory_accesses_;
  ++demand_memory_accesses_;
  // The LLC probe above missed, so its fill is known-absent.
  fill_at(n - 1, core, line, false, false, true);
  insert_with_cascade(0, core, line, n - 2, dirty);
  return lat;
}

Cycles MulticoreSimulator::access_exclusive(CoreId core, LineAddr line,
                                            bool is_write) {
  const std::uint32_t n = config_.num_levels();
  const bool dirty = is_write && config_.model_writebacks;
  ProbeOutcome l1 = probe(0, core, line, is_write);
  Cycles lat = l1.latency;
  if (l1.hit) return lat;

  note_l1_miss();

  // Per-level predictions, gathered up front (the paper queries all tables
  // simultaneously on the L1 miss, one table-access latency total).
  bool predicted[16];
  const bool redhip = config_.scheme == Scheme::kRedhip;
  const bool oracle = config_.scheme == Scheme::kOracle;
  for (std::uint32_t lvl = 1; lvl < n; ++lvl) {
    if (redhip) {
      RedhipTable* t =
          is_shared(lvl) ? excl_shared_pred_.get() : excl_pred_[lvl][core].get();
      const Prediction pr = t->query(line);
      predicted[lvl] = pr == Prediction::kPresent;
      if (pr == Prediction::kAbsent) {
        ++t->events().predicted_absent;
      } else {
        ++t->events().predicted_present;
      }
    } else if (oracle) {
      predicted[lvl] = level_array(lvl, core).contains(line);
    } else {
      predicted[lvl] = true;
    }
  }
  if (redhip) lat += config_.redhip.energy.total_delay();

  for (std::uint32_t lvl = 1; lvl < n; ++lvl) {
    if (!predicted[lvl]) {
      REDHIP_DCHECK(!level_array(lvl, core).contains(line));
      ++events_[lvl].skipped;
      continue;
    }
    const ProbeOutcome o = probe(lvl, core, line);
    lat += o.latency;
    if (redhip) {
      RedhipTable* t =
          is_shared(lvl) ? excl_shared_pred_.get() : excl_pred_[lvl][core].get();
      if (o.hit) {
        ++t->events().true_positives;
      } else {
        ++t->events().false_positives;
      }
    }
    if (o.hit) {
      // Exclusive move to L1; victims cascade down, the LLC victim drops.
      bool was_dirty = false;
      level_array(lvl, core).invalidate(line, &was_dirty);
      ++events_[lvl].invalidations;
      insert_with_cascade(0, core, line, n - 1, dirty || was_dirty);
      return lat;
    }
  }
  lat += config_.memory_latency;
  ++memory_accesses_;
  ++demand_memory_accesses_;
  insert_with_cascade(0, core, line, n - 1, dirty);
  return lat;
}

// ------------------------------------------------------------------ prefetch

void MulticoreSimulator::run_prefetches(CoreId core, const MemRef& ref) {
  prefetch_queue_.clear();
  prefetchers_[core]->observe(ref.pc, ref.addr, prefetch_queue_);
  const std::uint32_t n = config_.num_levels();
  PrefetchEvents& pev = prefetch_events_;

  for (const LineAddr q : prefetch_queue_) {
    // Filter against the near caches (one small tag probe).
    ++events_[1].tag_probes;
    if (level_array(0, core).contains(q) || level_array(1, core).contains(q)) {
      ++pev.redundant;
      continue;
    }
    ++pev.issued;

    // When combined with ReDHiP the prefetch probe consults the PT first and
    // skips the doomed L3/L4 lookups — this is how ReDHiP "offsets the
    // energy overhead of prefetching" (paper §V-C).
    bool go_to_memory = false;
    std::uint32_t found_lvl = 0;
    if (llc_pred_) {
      Cycles ignored = 0;
      if (query_llc_predictor(q, ignored) == Prediction::kAbsent &&
          audit_bypass(q)) {
        go_to_memory = true;
      }
    }
    if (!go_to_memory) {
      for (std::uint32_t lvl = 2; lvl < n; ++lvl) {
        ++events_[lvl].tag_probes;  // prefetch probes are tag-only until hit
        if (level_array(lvl, core).contains(q)) {
          ++events_[lvl].data_probes;  // read the line to copy it upward
          found_lvl = lvl;
          break;
        }
      }
      if (found_lvl == 0) go_to_memory = true;
      if (llc_pred_ && found_lvl != 0) ++llc_pred_->events().true_positives;
      if (llc_pred_ && found_lvl == 0) ++llc_pred_->events().false_positives;
    }
    if (go_to_memory) {
      ++memory_accesses_;
      found_lvl = n;  // fill every level below L2
    }
    // Install downward-first to keep inclusion, down to L2 (not L1: the
    // prefetcher sits beside L2).  Only the L2 copy carries the mark used
    // for useful/useless accounting.
    for (std::uint32_t lvl = found_lvl; lvl-- > 1;) {
      fill_at(lvl, core, q, /*prefetched=*/lvl == 1);
    }
  }
}

// ----------------------------------------------------------------- main loop

Cycles MulticoreSimulator::access_for_test(CoreId core, const MemRef& ref) {
  const std::uint64_t misses_before = events_[0].misses;
  const Cycles lat = access(core, ref);
  if (!prefetchers_.empty() && events_[0].misses != misses_before) {
    run_prefetches(core, ref);
  }
  return lat;
}

// Binary min-heap over (clock, core id).  Only sift-down is ever needed:
// the scheduler exclusively advances the top slot's clock (keys never
// decrease) or removes the top slot.
void MulticoreSimulator::heap_sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) return;
    std::size_t m = l;
    const std::size_t r = l + 1;
    if (r < n && heap_[r] < heap_[l]) m = r;
    if (!(heap_[m] < heap_[i])) return;
    std::swap(heap_[i], heap_[m]);
    i = m;
  }
}

void MulticoreSimulator::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down(0);
}

template <bool kFault, bool kPrefetch, bool kAutoDisable>
void MulticoreSimulator::run_loop(std::uint64_t max_refs_per_core) {
  REDHIP_CHECK_MSG(config_.cores <= 256,
                   "the packed scheduler key holds the core id in one byte");
  heap_.clear();
  heap_.reserve(cores_.size());
  for (CoreId c = 0; c < config_.cores; ++c) {
    CoreState& cs = cores_[c];
    if (max_refs_per_core == 0 || cs.refs_done >= max_refs_per_core) {
      cs.exhausted = true;
    }
    if (!cs.exhausted) heap_.push_back(HeapSlot::make(cs.clock, c));
  }
  // A cold start pushes every core at clock 0 in id order (already a valid
  // heap); a checkpoint-restored run resumes with unequal clocks, so the
  // invariant is established explicitly.
  for (std::size_t i = heap_.size() / 2; i-- > 0;) heap_sift_down(i);

  while (!heap_.empty()) {
    const CoreId best = heap_.front().core();
    CoreState& cs = cores_[best];
    if (cs.buf_pos == cs.buf_len) {
      // An empty refill buffer is a safe checkpoint boundary: the scheduler
      // is between references, and the other cores' partially-consumed
      // buffers hold raw (unperturbed) trace content that a restore
      // regenerates from the trace position — they are not serialized.
      ckpt_poll();
      // Refill, capped at what this core still needs so the source never
      // generates references the run will not consume.
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(kRefillBatch,
                                  max_refs_per_core - cs.refs_done));
      cs.buf_len =
          static_cast<std::uint32_t>(cs.trace->next_batch(cs.buf.data(), want));
      cs.buf_pos = 0;
      // Software pipeline, stage 1: batch-compute the batch's line
      // addresses in one dense pass (the prefetch hints below read them),
      // and start pulling the first reference's tag lanes while the
      // scheduler and trace state are still hot.  Neither step touches
      // simulated state, so the commit order below stays byte-identical to
      // the reference engine.
      for (std::uint32_t i = 0; i < cs.buf_len; ++i) {
        cs.lines[i] = cs.buf[i].addr >> l1_shift_;
      }
      if (cs.buf_len > 0 && cs.lines[0] != cs.l1_last_line) {
        prefetch_next_ref(best, cs.lines[0]);
      }
      if (obs_ != nullptr) {
        obs_->metrics().add(best, ObsCounter::kRefillBatches);
      }
      if (cs.buf_len == 0) {
        cs.exhausted = true;
        heap_pop_top();
        continue;
      }
    }
    MemRef ref = cs.buf[cs.buf_pos++];
    // Software pipeline, stage 2: while this reference simulates, pull the
    // tag lanes its successor (this core's next buffered reference) will
    // touch.  The same-line memo makes a repeat of the current line free,
    // so only a line change issues the hint.
    if (cs.buf_pos < cs.buf_len) {
      const LineAddr next = cs.lines[cs.buf_pos];
      if (next != cs.lines[cs.buf_pos - 1]) prefetch_next_ref(best, next);
    }
    if constexpr (kFault) {
      injector_->maybe_perturb(ref);  // FaultSite::kTraceAddr
      inject_faults();                // PT single-event upsets
    }
    cs.clock += cs.cpi.advance(ref.gap);
    Cycles ref_lat;
    if constexpr (kPrefetch) {
      const std::uint64_t misses_before = events_[0].misses;
      ref_lat = access(best, ref);
      cs.clock += ref_lat;
      if (events_[0].misses != misses_before) {
        run_prefetches(best, ref);
      }
    } else {
      ref_lat = access(best, ref);
      cs.clock += ref_lat;
    }
    if constexpr (kAutoDisable) {
      if (!predictor_active_) ++predictor_disabled_refs_;
      if (++epoch_refs_seen_ >= config_.auto_disable.epoch_refs) {
        evaluate_auto_disable();
      }
    }
    if (obs_ != nullptr) obs_note_ref(best, ref_lat, cs);
    // Note: committing a core's same-line L1-hit run in one go here is NOT
    // sound, even though the hits are private — it reorders them against
    // other cores' LLC evictions, and a back-invalidation landing between
    // two same-line hits turns the second one into a miss in the reference
    // interleave.  Scheduling must stay strictly per-reference.
    if (++cs.refs_done >= max_refs_per_core) {
      cs.exhausted = true;
      heap_pop_top();
    } else {
      heap_.front() = HeapSlot::make(cs.clock, best);
      heap_sift_down(0);
    }
  }
}

SimResult MulticoreSimulator::run(std::uint64_t max_refs_per_core) {
  REDHIP_CHECK_MSG(!ran_, "a simulator instance runs once");
  ran_ = true;

  // Resolve the feature mask once and dispatch to the run loop compiled for
  // exactly this configuration; the common paper configurations (all three
  // off) execute a loop with no injector/prefetcher/auto-disable tests.
  const bool fault = injector_ != nullptr;
  const bool prefetch = !prefetchers_.empty();
  const bool auto_disable = config_.auto_disable.enabled && llc_pred_ != nullptr;
  const unsigned mask = (fault ? 4u : 0u) | (prefetch ? 2u : 0u) |
                        (auto_disable ? 1u : 0u);
  obs_begin_run(max_refs_per_core);
  {
    // Scoped so run_seconds is accumulated before finalize_result copies
    // the timings into the result.
    ScopedTimer timer(obs_ != nullptr ? obs_->run_timer() : nullptr);
    switch (mask) {
      case 0: run_loop<false, false, false>(max_refs_per_core); break;
      case 1: run_loop<false, false, true>(max_refs_per_core); break;
      case 2: run_loop<false, true, false>(max_refs_per_core); break;
      case 3: run_loop<false, true, true>(max_refs_per_core); break;
      case 4: run_loop<true, false, false>(max_refs_per_core); break;
      case 5: run_loop<true, false, true>(max_refs_per_core); break;
      case 6: run_loop<true, true, false>(max_refs_per_core); break;
      default: run_loop<true, true, true>(max_refs_per_core); break;
    }
  }
  return finalize_result();
}

SimResult MulticoreSimulator::run_reference(std::uint64_t max_refs_per_core) {
  REDHIP_CHECK_MSG(!ran_, "a simulator instance runs once");
  ran_ = true;

  std::uint64_t active = 0;
  for (auto& cs : cores_) {
    // `refs_done >= max` covers a checkpoint-restored core that already met
    // its quota before the interruption.
    cs.exhausted = cs.exhausted || max_refs_per_core == 0 ||
                   cs.refs_done >= max_refs_per_core;
    if (!cs.exhausted) ++active;
  }

  obs_begin_run(max_refs_per_core);
  {
    // Scoped so run_seconds is accumulated before finalize_result copies
    // the timings into the result.
    ScopedTimer timer(obs_ != nullptr ? obs_->run_timer() : nullptr);
    while (active > 0) {
      // This engine has no refill boundary, so it polls for checkpoint
      // actions on a fixed reference stride (any between-references point
      // is a safe boundary here).
      if (--ckpt_countdown_ == 0) {
        ckpt_countdown_ = kCkptPollStride;
        ckpt_poll();
      }
      // Deterministic min-clock interleave, ties broken by core id.
      CoreId best = 0;
      Cycles best_clock = ~Cycles{0};
      for (CoreId c = 0; c < config_.cores; ++c) {
        if (!cores_[c].exhausted && cores_[c].clock < best_clock) {
          best = c;
          best_clock = cores_[c].clock;
        }
      }
      CoreState& cs = cores_[best];
      MemRef ref;
      if (!cs.trace->next(ref)) {
        cs.exhausted = true;
        --active;
        continue;
      }
      if (injector_) {
        injector_->maybe_perturb(ref);  // FaultSite::kTraceAddr
        inject_faults();                // PT single-event upsets
      }
      cs.clock += cs.cpi.advance(ref.gap);
      const std::uint64_t misses_before = events_[0].misses;
      const Cycles ref_lat = access(best, ref);
      cs.clock += ref_lat;
      if (!prefetchers_.empty() && events_[0].misses != misses_before) {
        run_prefetches(best, ref);
      }
      if (config_.auto_disable.enabled && llc_pred_) {
        if (!predictor_active_) ++predictor_disabled_refs_;
        if (++epoch_refs_seen_ >= config_.auto_disable.epoch_refs) {
          evaluate_auto_disable();
        }
      }
      if (obs_ != nullptr) obs_note_ref(best, ref_lat, cs);
      if (++cs.refs_done >= max_refs_per_core) {
        cs.exhausted = true;
        --active;
      }
    }
  }
  return finalize_result();
}

// --------------------------------------------------------- checkpoint polling

bool MulticoreSimulator::ckpt_should_act() const {
  const CkptControl& ctl = *ckpt_ctl_;
  if (ctl.stop_flag != nullptr &&
      ctl.stop_flag->load(std::memory_order_relaxed)) {
    return true;
  }
  if (ctl.has_deadline && std::chrono::steady_clock::now() >= ctl.deadline) {
    return true;
  }
  const std::uint64_t total = ckpt_refs_done();
  if (ctl.save_at_refs > 0 && !ckpt_save_at_done_ &&
      total >= ctl.save_at_refs) {
    return true;
  }
  return ctl.interval_refs > 0 &&
         total - ckpt_last_save_refs_ >= ctl.interval_refs;
}

void MulticoreSimulator::ckpt_poll_slow() {
  CkptControl& ctl = *ckpt_ctl_;
  // Shutdown first: a stop request wants state on disk even when it lands
  // at the same boundary as an interval tick.
  if (ctl.stop_flag != nullptr &&
      ctl.stop_flag->load(std::memory_order_relaxed)) {
    if (ctl.save) ctl.save(*this);
    throw GracefulShutdownRequest(
        "stop requested; checkpoint written at a safe boundary");
  }
  if (ctl.has_deadline && std::chrono::steady_clock::now() >= ctl.deadline) {
    throw DeadlineExceededError("cell wall-clock budget exhausted");
  }
  const std::uint64_t total = ckpt_refs_done();
  if (ctl.save_at_refs > 0 && !ckpt_save_at_done_ &&
      total >= ctl.save_at_refs) {
    // One-shot warmup checkpoint (sweep warmup sharing).  It also re-anchors
    // the periodic interval — the state just hit disk.
    ckpt_save_at_done_ = true;
    ckpt_last_save_refs_ = total;
    if (ctl.save) ctl.save(*this);
    return;
  }
  if (ctl.interval_refs > 0 &&
      total - ckpt_last_save_refs_ >= ctl.interval_refs) {
    ckpt_last_save_refs_ = total;
    if (ctl.save) ctl.save(*this);
  }
}

void MulticoreSimulator::obs_begin_run(std::uint64_t max_refs_per_core) {
  if (obs_ == nullptr) return;
  ObsRunInfo info;
  info.cores = config_.cores;
  info.scheme = to_string(config_.scheme);
  info.inclusion = to_string(config_.inclusion);
  info.refs_per_core = max_refs_per_core;
  info.seed = config_.seed;
  info.prefetch_degree = config_.prefetch ? config_.prefetcher.degree : 0;
  info.recal_interval = config_.scheme == Scheme::kRedhip
                            ? config_.redhip.recal_interval_l1_misses
                            : 0;
  info.recal_mode = config_.scheme == Scheme::kRedhip
                        ? to_string(config_.redhip.recal_mode)
                        : "none";
  info.faults_enabled = config_.fault.enabled;
  obs_->emit_run_begin(info);
}

ObsSnapshot MulticoreSimulator::obs_snapshot() const {
  ObsSnapshot s;
  s.l1_accesses = events_[0].accesses;
  s.l1_misses = events_[0].misses;
  if (llc_pred_ != nullptr) {
    const PredictorEvents& pe = llc_pred_->events();
    s.lookups = pe.lookups;
    s.predicted_absent = pe.predicted_absent;
    s.predicted_present = pe.predicted_present;
    s.true_positives = pe.true_positives;
    s.false_positives = pe.false_positives;
    s.recalibrations = pe.recalibrations;
  }
  s.invariant_violations = invariant_violations_;
  s.pt_occupancy = llc_redhip_ != nullptr ? llc_redhip_->bits_set() : 0;
  s.predictor_active = predictor_active_;
  return s;
}

SimResult MulticoreSimulator::finalize_result() {
  if (obs_ != nullptr) {
    // Close the final (possibly partial) epoch at the run's end time — the
    // slowest core's clock, the same value exec_cycles reports.
    Cycles end = 0;
    for (const auto& cs : cores_) end = std::max(end, cs.clock);
    obs_->finish(end + global_stall_cycles_, obs_snapshot());
  }
  const bool time_finalize = obs_ != nullptr && obs_->timing_enabled();
  const auto finalize_start = time_finalize
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  SimResult r;
  r.levels = events_;
  if (llc_pred_) {
    r.predictor = llc_pred_->events();
  }
  for (const auto& per_core : excl_pred_) {
    for (const auto& t : per_core) {
      if (t) r.predictor += t->events();
    }
  }
  if (excl_shared_pred_) r.predictor += excl_shared_pred_->events();
  r.prefetch = prefetch_events_;
  for (const auto& pf : prefetchers_) r.prefetch += pf->events();
  r.memory_accesses = memory_accesses_;
  r.demand_memory_accesses = demand_memory_accesses_;
  r.memory_writebacks = memory_writebacks_;
  r.recal_stall_cycles = recal_stall_cycles_;
  r.predictor_disabled_refs = predictor_disabled_refs_;
  if (injector_) r.fault = injector_->stats();
  r.fault.audit_checks = audit_checks_;
  r.fault.invariant_violations = invariant_violations_;
  r.fault.recovery_recalibrations = recovery_recals_;
  r.fault.recovery_stall_cycles = recovery_stall_cycles_;
  for (const auto& cs : cores_) {
    // Re-apply the uniformly-accumulated stall offset (see CoreState::clock).
    const Cycles clock = cs.clock + global_stall_cycles_;
    r.core_cycles.push_back(clock);
    r.exec_cycles = std::max(r.exec_cycles, clock);
    r.total_core_cycles += clock;
    r.total_refs += cs.refs_done;
  }
  r.elapsed_seconds =
      static_cast<double>(r.exec_cycles) / (config_.freq_ghz * 1e9);

  std::vector<LevelEnergyParams> level_params;
  for (const auto& lvl : config_.levels) level_params.push_back(lvl.energy);
  const PredictorEnergyParams pred_params = config_.scheme == Scheme::kCbf
                                                ? config_.cbf.energy
                                                : config_.redhip.energy;
  EnergyLedger ledger(std::move(level_params), pred_params, config_.cores,
                      /*shared_last_level=*/true,
                      config_.charge_fill_energy);
  r.energy = ledger.price(r.levels, r.predictor, r.prefetch,
                          r.memory_accesses + r.memory_writebacks,
                          config_.memory_energy_nj, r.elapsed_seconds,
                          predictor_leakage_w_);
  if (obs_ != nullptr) {
    r.epochs = obs_->epochs();
    r.obs_timing = obs_->timing();
    if (time_finalize) {
      r.obs_timing.finalize_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        finalize_start)
              .count();
    }
  }
  return r;
}

}  // namespace redhip
