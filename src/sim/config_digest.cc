#include "sim/config_digest.h"

#include "common/fnv.h"

namespace redhip {
namespace {

void feed(Fnv1a& h, const LevelEnergyParams& e) {
  h.str(e.name);
  h.u64(e.tag_delay).u64(e.data_delay);
  h.f64(e.tag_energy_nj).f64(e.data_energy_nj).f64(e.leakage_w);
}

void feed(Fnv1a& h, const PredictorEnergyParams& e) {
  h.u64(e.access_delay).u64(e.wire_delay);
  h.f64(e.access_energy_nj).f64(e.leakage_w);
}

void feed(Fnv1a& h, const LevelSpec& lvl) {
  h.u64(lvl.geom.size_bytes);
  h.u32(lvl.geom.line_bytes).u32(lvl.geom.ways).u32(lvl.geom.banks);
  h.u8(static_cast<std::uint8_t>(lvl.geom.replacement));
  feed(h, lvl.energy);
  h.u8(lvl.phased ? 1 : 0);
}

}  // namespace

std::uint64_t config_digest(const HierarchyConfig& c) {
  Fnv1a h;
  h.u32(c.cores).f64(c.freq_ghz);
  h.u64(c.levels.size());
  for (const LevelSpec& lvl : c.levels) feed(h, lvl);
  h.u8(static_cast<std::uint8_t>(c.inclusion));
  h.u8(static_cast<std::uint8_t>(c.scheme));

  h.u64(c.redhip.table_bits).u64(c.redhip.recal_interval_l1_misses);
  h.u32(c.redhip.banks);
  h.u8(static_cast<std::uint8_t>(c.redhip.recal_mode));
  feed(h, c.redhip.energy);

  h.u32(c.cbf.index_bits).u32(c.cbf.counter_bits);
  feed(h, c.cbf.energy);

  h.u32(c.partial_tag.partial_bits);
  feed(h, c.partial_tag.energy);

  h.u8(c.prefetch ? 1 : 0);
  h.u32(c.prefetcher.index_bits).u32(c.prefetcher.degree);
  h.u32(c.prefetcher.distance).u32(c.prefetcher.line_shift);

  h.u64(c.memory_latency).f64(c.memory_energy_nj);
  h.u8(c.charge_fill_energy ? 1 : 0);
  h.u8(c.model_writebacks ? 1 : 0);

  h.u8(c.auto_disable.enabled ? 1 : 0);
  h.u64(c.auto_disable.epoch_refs);
  h.u32(c.auto_disable.min_l1_miss_ppm).u32(c.auto_disable.min_bypass_ppm);
  h.u32(c.auto_disable.max_backoff_epochs);

  h.u8(c.fault.enabled ? 1 : 0);
  h.u32(c.fault.rate_per_mref).u32(c.fault.site_mask);
  h.u64(c.fault.seed);
  h.u8(c.fault.transient ? 1 : 0);

  h.u8(c.audit.enabled ? 1 : 0);
  h.u8(static_cast<std::uint8_t>(c.audit.policy));

  // Obs fields that shape SimResult::epochs.  trace_path and the host
  // timing switch are excluded: neither can change a simulated statistic.
  h.u8(c.obs.enabled ? 1 : 0);
  h.u64(c.obs.epoch_refs).u64(c.obs.epoch_cycles);

  h.u64(c.seed);
  return h.digest();
}

}  // namespace redhip
