#include "obs/events.h"

#include <stdexcept>

namespace redhip {

FileEventSink::FileEventSink(const std::string& path)
    : out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("FileEventSink: cannot open '" + path + "'");
  }
}

void FileEventSink::write_line(const std::string& line) { out_ << line; }

void FileEventSink::flush() { out_.flush(); }

EventWriter& EventWriter::field(const char* key, const std::string& v) {
  os_ << ",\"" << key << "\":\"";
  for (const char c : v) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        os_ << c;
    }
  }
  os_ << '"';
  return *this;
}

}  // namespace redhip
