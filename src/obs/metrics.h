// MetricsRegistry — per-core counters and histograms for the observability
// layer.
//
// One simulator run is single-threaded, but a run matrix executes many
// simulators concurrently on the thread pool; every simulator owns its own
// registry, and within a registry each core writes only its own
// cache-line-padded slot.  No increment ever contends with another writer,
// which is what "lock-free" means here: plain stores, no atomics, no locks,
// no false sharing between cores of one run.
//
// Counters are identified by a small fixed enum (the hot path indexes an
// array; string lookup happens only at reporting time).  Histograms use
// power-of-two buckets — bucket i counts values v with 2^(i-1) <= v < 2^i
// (bucket 0 counts v == 0) — which is exact enough to see the shape of an
// access-latency distribution at the cost of one bit_width instruction.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytestream.h"

namespace redhip {

enum class ObsCounter : std::uint32_t {
  kRefs = 0,        // demand references executed on this core
  kRefillBatches,   // trace buffer refills (fast engine only, never traced)
  kRecoveries,      // fault-recovery actions taken (counted on core 0)
  kDisableFlips,    // auto-disable state changes (counted on core 0)
  kCount,           // sentinel
};
std::string to_string(ObsCounter c);

class MetricsRegistry {
 public:
  // Power-of-two latency buckets: u64 values never exceed 2^64, so 65
  // buckets (0, then one per bit width) cover every input exactly.
  static constexpr std::uint32_t kHistogramBuckets = 65;

  explicit MetricsRegistry(std::uint32_t cores);

  // --- Hot path ------------------------------------------------------------
  void add(std::uint32_t core, ObsCounter c, std::uint64_t v = 1) {
    slots_[core].counters[static_cast<std::uint32_t>(c)] += v;
  }
  void record_latency(std::uint32_t core, std::uint64_t cycles) {
    ++slots_[core].latency[std::bit_width(cycles)];
  }

  // --- Reporting -----------------------------------------------------------
  std::uint64_t core_total(std::uint32_t core, ObsCounter c) const {
    return slots_[core].counters[static_cast<std::uint32_t>(c)];
  }
  std::uint64_t total(ObsCounter c) const;
  // Latency histogram summed over cores; index = bucket (see above).
  std::vector<std::uint64_t> latency_histogram() const;
  std::uint32_t cores() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  // --- Checkpoint ----------------------------------------------------------
  // The per-core counters and histograms feed the run_end trace event, so
  // they are part of the bit-identity contract and must survive a restore.
  void ckpt_save(ByteWriter& w) const {
    w.u64(slots_.size());
    for (const CoreSlot& s : slots_) {
      for (std::uint64_t c : s.counters) w.u64(c);
      for (std::uint64_t l : s.latency) w.u64(l);
    }
  }
  bool ckpt_load(ByteReader& r) {
    if (r.u64() != slots_.size()) return false;
    for (CoreSlot& s : slots_) {
      for (std::uint64_t& c : s.counters) c = r.u64();
      for (std::uint64_t& l : s.latency) l = r.u64();
    }
    return r.ok();
  }

 private:
  struct alignas(64) CoreSlot {
    std::uint64_t counters[static_cast<std::uint32_t>(ObsCounter::kCount)] = {};
    std::uint64_t latency[kHistogramBuckets] = {};
  };
  std::vector<CoreSlot> slots_;
};

}  // namespace redhip
