#include "obs/obs_config.h"

#include <stdexcept>

namespace redhip {

void ObsConfig::validate() const {
  if (!enabled) return;
  if (epoch_refs == 0 && epoch_cycles == 0) {
    throw std::invalid_argument(
        "obs: epoch_refs and epoch_cycles cannot both be zero");
  }
}

}  // namespace redhip
