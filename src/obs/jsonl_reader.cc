#include "obs/jsonl_reader.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace redhip {
namespace {

[[noreturn]] void malformed(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("jsonl line " + std::to_string(line_no) + ": " +
                           why);
}

// Cursor over one line.
struct Cursor {
  const std::string& s;
  std::size_t pos = 0;
  std::size_t line_no;

  char peek() const {
    if (pos >= s.size()) malformed(line_no, "unexpected end of line");
    return s[pos];
  }
  char take() {
    const char c = peek();
    ++pos;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      malformed(line_no, std::string("expected '") + c + "'");
    }
  }
  bool done() const { return pos >= s.size(); }
};

std::string parse_string(Cursor& c) {
  c.expect('"');
  std::string out;
  while (true) {
    const char ch = c.take();
    if (ch == '"') return out;
    if (ch == '\\') {
      const char esc = c.take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        default:
          malformed(c.line_no, "unsupported escape");
      }
    } else {
      out += ch;
    }
  }
}

std::uint64_t parse_uint(Cursor& c) {
  if (std::isdigit(static_cast<unsigned char>(c.peek())) == 0) {
    malformed(c.line_no, "expected digit");
  }
  std::uint64_t v = 0;
  while (!c.done() && std::isdigit(static_cast<unsigned char>(c.s[c.pos]))) {
    v = v * 10 + static_cast<std::uint64_t>(c.take() - '0');
  }
  return v;
}

bool parse_keyword(Cursor& c, const char* word) {
  for (const char* p = word; *p != '\0'; ++p) {
    if (c.done() || c.s[c.pos] != *p) return false;
    ++c.pos;
  }
  return true;
}

ObsEvent parse_line(const std::string& line, std::size_t line_no) {
  Cursor c{line, 0, line_no};
  ObsEvent ev;
  c.expect('{');
  bool first = true;
  while (true) {
    if (c.peek() == '}') {
      c.take();
      break;
    }
    if (!first) c.expect(',');
    first = false;
    const std::string key = parse_string(c);
    c.expect(':');
    const char head = c.peek();
    if (head == '"') {
      std::string value = parse_string(c);
      if (key == "ev") {
        ev.type = std::move(value);
      } else {
        ev.strings.emplace_back(key, std::move(value));
      }
    } else if (head == 't' || head == 'f') {
      if (parse_keyword(c, head == 't' ? "true" : "false")) {
        ev.bools.emplace_back(key, head == 't');
      } else {
        malformed(line_no, "bad literal for key '" + key + "'");
      }
    } else if (head == '[') {
      c.take();
      std::vector<std::uint64_t> values;
      if (c.peek() != ']') {
        values.push_back(parse_uint(c));
        while (c.peek() == ',') {
          c.take();
          values.push_back(parse_uint(c));
        }
      }
      c.expect(']');
      ev.arrays.emplace_back(key, std::move(values));
    } else {
      ev.nums.emplace_back(key, parse_uint(c));
    }
  }
  if (!c.done()) malformed(line_no, "trailing characters after object");
  if (ev.type.empty()) malformed(line_no, "missing \"ev\" field");
  return ev;
}

}  // namespace

std::optional<std::uint64_t> ObsEvent::num(const std::string& key) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::uint64_t ObsEvent::num_at(const std::string& key) const {
  const auto v = num(key);
  if (!v) throw std::out_of_range("ObsEvent: no numeric field '" + key + "'");
  return *v;
}

std::optional<std::string> ObsEvent::str(const std::string& key) const {
  for (const auto& [k, v] : strings) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<bool> ObsEvent::flag(const std::string& key) const {
  for (const auto& [k, v] : bools) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::vector<ObsEvent> parse_jsonl(const std::string& text) {
  std::vector<ObsEvent> out;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    out.push_back(parse_line(line, line_no));
  }
  return out;
}

std::vector<ObsEvent> load_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_jsonl(buf.str());
}

}  // namespace redhip
