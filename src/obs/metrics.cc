#include "obs/metrics.h"

namespace redhip {

std::string to_string(ObsCounter c) {
  switch (c) {
    case ObsCounter::kRefs:
      return "refs";
    case ObsCounter::kRefillBatches:
      return "refill_batches";
    case ObsCounter::kRecoveries:
      return "recoveries";
    case ObsCounter::kDisableFlips:
      return "disable_flips";
    case ObsCounter::kCount:
      break;
  }
  return "unknown";
}

MetricsRegistry::MetricsRegistry(std::uint32_t cores) : slots_(cores) {}

std::uint64_t MetricsRegistry::total(ObsCounter c) const {
  std::uint64_t sum = 0;
  for (const CoreSlot& s : slots_) {
    sum += s.counters[static_cast<std::uint32_t>(c)];
  }
  return sum;
}

std::vector<std::uint64_t> MetricsRegistry::latency_histogram() const {
  std::vector<std::uint64_t> out(kHistogramBuckets, 0);
  for (const CoreSlot& s : slots_) {
    for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
      out[b] += s.latency[b];
    }
  }
  return out;
}

}  // namespace redhip
