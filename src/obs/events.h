// Structured event tracing — JSONL, one flat object per line.
//
// The stream is part of the engine-equivalence contract: run() and
// run_reference() must emit byte-identical traces for the same (config,
// seed), so every field is a deterministic function of the simulated run —
// never a host timestamp, pointer, or wall-clock value.  Schema in
// DESIGN.md "Observability".
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

namespace redhip {

// Where event lines go.  Implementations must not reorder or buffer lines
// across flush(); the writer emits exactly one '\n'-terminated line per
// event.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void write_line(const std::string& line) = 0;
  virtual void flush() {}
};

// Appends to an on-disk JSONL file (truncating any previous trace).
// Throws std::runtime_error if the file cannot be opened.
class FileEventSink final : public EventSink {
 public:
  explicit FileEventSink(const std::string& path);
  void write_line(const std::string& line) override;
  void flush() override;

 private:
  std::ofstream out_;
};

// Decorator that keeps a byte-exact copy of every line while forwarding to
// an optional inner sink.  The checkpoint subsystem wraps the collector's
// sink with one of these: the captured prefix is serialized into each
// checkpoint, and on restore it is replayed into the fresh (truncated)
// trace file so the resumed run's JSONL output is byte-identical to an
// uninterrupted run's.
class CaptureEventSink final : public EventSink {
 public:
  explicit CaptureEventSink(std::unique_ptr<EventSink> inner)
      : inner_(std::move(inner)) {}
  void write_line(const std::string& line) override {
    buffer_ += line;
    if (inner_) inner_->write_line(line);
  }
  void flush() override {
    if (inner_) inner_->flush();
  }
  const std::string& captured() const { return buffer_; }
  // Restore path: adopt `prefix` as the already-emitted bytes and write
  // them straight to the inner sink (they are not re-captured — they
  // already are the capture).
  void replay(std::string prefix) {
    buffer_ = std::move(prefix);
    if (inner_ && !buffer_.empty()) inner_->write_line(buffer_);
  }

 private:
  std::unique_ptr<EventSink> inner_;
  std::string buffer_;
};

// Collects lines in memory (tests, stream-equivalence oracles).
class StringEventSink final : public EventSink {
 public:
  void write_line(const std::string& line) override { buffer_ += line; }
  const std::string& str() const { return buffer_; }

 private:
  std::string buffer_;
};

// Builds one flat JSON object.  Key order is emission order, values are
// integers, doubles, booleans, strings, or arrays of integers — the exact
// subset ObsJsonlReader parses back.
class EventWriter {
 public:
  explicit EventWriter(const std::string& event_type) {
    os_ << "{\"ev\":\"" << event_type << '"';
  }
  EventWriter& field(const char* key, std::uint64_t v) {
    os_ << ",\"" << key << "\":" << v;
    return *this;
  }
  EventWriter& field(const char* key, std::int64_t v) {
    os_ << ",\"" << key << "\":" << v;
    return *this;
  }
  EventWriter& field(const char* key, bool v) {
    os_ << ",\"" << key << "\":" << (v ? "true" : "false");
    return *this;
  }
  EventWriter& field(const char* key, const std::string& v);
  template <typename Container>
  EventWriter& array(const char* key, const Container& values) {
    os_ << ",\"" << key << "\":[";
    bool first = true;
    for (const auto v : values) {
      if (!first) os_ << ',';
      first = false;
      os_ << static_cast<std::uint64_t>(v);
    }
    os_ << ']';
    return *this;
  }
  // Terminates the object and writes it to `sink` as one line.
  void emit(EventSink& sink) {
    os_ << "}\n";
    sink.write_line(os_.str());
  }

 private:
  std::ostringstream os_;
};

}  // namespace redhip
