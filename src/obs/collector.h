// ObsCollector — the run-time core of the observability layer.
//
// One collector per simulator run (null pointer when [obs] is disabled, so
// the disabled cost is a single predicted branch per reference).  It owns
// the per-core MetricsRegistry, the epoch accumulator, the optional JSONL
// event sink, and the host-side phase timings; it implements RecalObserver
// so RedhipTable rebuilds land in the trace.
//
// Determinism contract: every event field and every EpochSample field is
// derived from simulated state (counters, simulated cycles, table
// occupancy), never from host state, so the fast and reference engines —
// which process references in the same order — produce byte-identical
// traces and identical epoch series.  Host wall time is collected
// separately in ObsTiming.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytestream.h"
#include "obs/epoch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/timing.h"
#include "predict/recal_observer.h"

namespace redhip {

// Counter snapshot the simulator hands over at each epoch boundary; the
// collector differences consecutive snapshots into one EpochSample.
struct ObsSnapshot {
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t lookups = 0;
  std::uint64_t predicted_absent = 0;
  std::uint64_t predicted_present = 0;
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t recalibrations = 0;
  // Audit-detected bypass violations: each one is a false negative the
  // auditor corrected.  Structurally zero unless faults are injected.
  std::uint64_t invariant_violations = 0;
  std::uint64_t pt_occupancy = 0;  // RedhipTable::bits_set(), 0 otherwise
  bool predictor_active = true;
};

// Static facts about the run, emitted once as the run_begin event.  All
// config-derived, so both engines emit the same line.
struct ObsRunInfo {
  std::uint32_t cores = 0;
  std::string scheme;
  std::string inclusion;
  std::uint64_t refs_per_core = 0;
  std::uint64_t seed = 0;
  // Paper's prefetcher has a fixed degree; the schema still carries it so a
  // future adaptive prefetcher can emit degree-change events (the reserved
  // `prefetch_degree` event type, see DESIGN.md).
  std::uint32_t prefetch_degree = 0;
  std::uint64_t recal_interval = 0;
  std::string recal_mode;
  bool faults_enabled = false;
};

class ObsCollector final : public RecalObserver {
 public:
  // Opens the trace sink when `config.trace_path` is set; throws on an
  // unwritable path (a run asked to trace must not silently not trace).
  ObsCollector(const ObsConfig& config, std::uint32_t cores,
               bool faults_enabled);
  ObsCollector(const ObsCollector&) = delete;
  ObsCollector& operator=(const ObsCollector&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  bool timing_enabled() const { return config_.timing; }
  // Accumulator handles for ScopedTimer; null when timing is off.
  double* run_timer() { return config_.timing ? &timing_.run_seconds : nullptr; }
  double* finalize_timer() {
    return config_.timing ? &timing_.finalize_seconds : nullptr;
  }

  // --- Hot path --------------------------------------------------------------
  // Account one executed reference; returns true when the epoch boundary
  // was crossed and the caller must snapshot + close_epoch.  `now` is the
  // executing core's clock including the global stall offset.
  bool note_ref(std::uint32_t core, std::uint64_t latency, std::uint64_t now) {
    metrics_.add(core, ObsCounter::kRefs);
    metrics_.record_latency(core, latency);
    ++total_refs_;
    ++epoch_refs_;
    if (config_.epoch_cycles > 0) {
      return now >= epoch_start_cycles_ + config_.epoch_cycles;
    }
    return epoch_refs_ >= config_.epoch_refs;
  }

  // --- Epochs ----------------------------------------------------------------
  // Close the current epoch at simulated time `now`.  Asserts the epoch's
  // false-negative count is zero when faults are off (the paper's
  // invariant, checked per window rather than only at end of run).
  void close_epoch(std::uint64_t now, const ObsSnapshot& snap);
  // End of run: close the final partial epoch (if any references landed in
  // it) and emit run_end.
  void finish(std::uint64_t now, const ObsSnapshot& snap);

  // --- Events ----------------------------------------------------------------
  void emit_run_begin(const ObsRunInfo& info);
  void emit_auto_disable(bool active, std::uint64_t backoff_epochs);
  void emit_recovery(const std::string& policy, std::uint64_t stall_cycles,
                     std::uint64_t violations);

  // RecalObserver: RedhipTable rebuild bracket + rolling pass marker.  The
  // begin/end pair also measures the host time of the rebuild (into
  // ObsTiming, never into the trace).
  void on_recal_begin(std::uint64_t bits_before) override;
  void on_recal_end(std::uint64_t bits_after,
                    std::uint64_t stall_cycles) override;
  void on_rolling_pass(std::uint64_t bits_set) override;

  // --- Results ---------------------------------------------------------------
  const EpochSeries& epochs() const { return epochs_; }
  const ObsTiming& timing() const { return timing_; }
  std::uint64_t refs_seen() const { return total_refs_; }

  // --- Checkpoint ------------------------------------------------------------
  // Wrap the sink so every emitted line is also kept in memory.  Must run
  // before any event is emitted (the simulator calls it when checkpoint
  // control is attached, which precedes run()); the captured prefix goes
  // into each checkpoint so a restored run's trace is byte-identical.
  void ckpt_enable_capture();
  // Serialize / restore the epoch accumulator, metrics, emitted-trace
  // prefix, and epoch series.  Host-side timing is deliberately excluded
  // (wall time is a property of the host, not of the run).  After a
  // successful ckpt_load the run_begin event is suppressed — the replayed
  // prefix already contains it.
  void ckpt_save(ByteWriter& w) const;
  bool ckpt_load(ByteReader& r);

 private:
  void emit_epoch(const EpochSample& s);

  ObsConfig config_;
  bool faults_enabled_;
  MetricsRegistry metrics_;
  std::unique_ptr<EventSink> sink_;  // null: epochs only, no trace
  CaptureEventSink* capture_ = nullptr;  // sink_ downcast when capturing
  bool resumed_ = false;  // restored from a checkpoint: skip run_begin

  // Epoch accumulator.
  std::uint64_t total_refs_ = 0;
  std::uint64_t epoch_refs_ = 0;
  std::uint64_t epoch_start_cycles_ = 0;
  ObsSnapshot prev_;  // counters at the previous boundary
  EpochSeries epochs_;

  ObsTiming timing_;
  std::chrono::steady_clock::time_point recal_start_{};
};

}  // namespace redhip
