// ObsConfig — the observability layer's configuration.
//
// Kept dependency-free (this header is included by sim/config.h) so the
// obs library sits below the simulator in the link graph.  Everything here
// defaults to "off": a config with `enabled == false` must cost nothing on
// the hot path beyond one predicted-not-taken pointer test per reference
// (the <2% budget enforced against BENCH_speed.json).
#pragma once

#include <cstdint>
#include <string>

namespace redhip {

struct ObsConfig {
  bool enabled = false;

  // Epoch boundary: close an epoch every `epoch_refs` references aggregated
  // over all cores — or, when `epoch_cycles` > 0, every `epoch_cycles`
  // simulated cycles instead (measured on the clock of the core that
  // executed the boundary-crossing reference, including global stalls).
  // Both engines process references in the same deterministic order, so
  // either boundary yields identical epoch series from run() and
  // run_reference().
  std::uint64_t epoch_refs = 100'000;
  std::uint64_t epoch_cycles = 0;

  // When non-empty, the structured event trace (JSONL, one object per
  // line — see DESIGN.md "Observability") is written here.  Epoch samples
  // are collected into SimResult::epochs regardless.
  std::string trace_path;

  // Host-side scoped phase timers (trace refill, recalibration, run loop,
  // finalize).  They never enter the event stream or the epoch series —
  // wall time is a property of the host, not of the run — and land in
  // SimResult::obs_timing, which stats_identical ignores.
  bool timing = true;

  void validate() const;
};

}  // namespace redhip
