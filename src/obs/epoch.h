// EpochSample — one row of the per-epoch metric series.
//
// Epochs partition a run into windows of `ObsConfig::epoch_refs` aggregate
// references (or `epoch_cycles` simulated cycles); the final epoch may be
// shorter.  All fields are deterministic functions of the simulated run, so
// the series is identical between the fast and reference engines and is
// compared by stats_identical().
#pragma once

#include <cstdint>
#include <vector>

namespace redhip {

struct EpochSample {
  std::uint64_t index = 0;       // 0-based epoch number
  std::uint64_t end_ref = 0;     // aggregate refs completed at close
  std::uint64_t end_cycles = 0;  // closing core's clock incl. global stalls
  std::uint64_t refs = 0;        // refs inside this epoch

  // Demand-side activity deltas over the epoch.
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;

  // Predictor confusion counts (deltas).  The ReDHiP presence table can
  // only over-approximate the LLC, so false negatives are structurally
  // impossible: fn is the invariant-audit violation delta and is asserted
  // zero whenever fault injection is off.
  std::uint64_t lookups = 0;
  std::uint64_t predicted_absent = 0;
  std::uint64_t predicted_present = 0;
  std::uint64_t tp = 0;  // predicted present, line was present
  std::uint64_t fp = 0;  // predicted present, line was absent
  std::uint64_t tn = 0;  // predicted absent, line was absent
  std::uint64_t fn = 0;  // predicted absent, line was present (faults only)

  std::uint64_t recalibrations = 0;  // recal passes completed this epoch
  std::uint64_t pt_occupancy = 0;    // presence-table bits set at close
  bool predictor_active = true;      // auto-disable state at close

  friend bool operator==(const EpochSample&, const EpochSample&) = default;
};

using EpochSeries = std::vector<EpochSample>;

}  // namespace redhip
