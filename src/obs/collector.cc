#include "obs/collector.h"

#include "common/check.h"

namespace redhip {

ObsCollector::ObsCollector(const ObsConfig& config, std::uint32_t cores,
                           bool faults_enabled)
    : config_(config), faults_enabled_(faults_enabled), metrics_(cores) {
  config_.validate();
  if (!config_.trace_path.empty()) {
    sink_ = std::make_unique<FileEventSink>(config_.trace_path);
  }
  timing_.collected = config_.timing;
}

void ObsCollector::close_epoch(std::uint64_t now, const ObsSnapshot& snap) {
  EpochSample s;
  s.index = epochs_.size();
  s.end_ref = total_refs_;
  s.end_cycles = now;
  s.refs = epoch_refs_;
  s.l1_accesses = snap.l1_accesses - prev_.l1_accesses;
  s.l1_misses = snap.l1_misses - prev_.l1_misses;
  s.lookups = snap.lookups - prev_.lookups;
  s.predicted_absent = snap.predicted_absent - prev_.predicted_absent;
  s.predicted_present = snap.predicted_present - prev_.predicted_present;
  s.tp = snap.true_positives - prev_.true_positives;
  s.fp = snap.false_positives - prev_.false_positives;
  // A predicted-absent decision either bypassed correctly (true negative)
  // or was caught by the auditor hiding a resident line (false negative —
  // possible only under injected faults, and corrected on the spot).
  s.fn = snap.invariant_violations - prev_.invariant_violations;
  s.tn = s.predicted_absent - s.fn;
  s.recalibrations = snap.recalibrations - prev_.recalibrations;
  s.pt_occupancy = snap.pt_occupancy;
  s.predictor_active = snap.predictor_active;
  if (!faults_enabled_) {
    // The paper's structural guarantee, enforced per epoch: a conservative
    // presence table can never produce a false negative without corruption.
    REDHIP_CHECK_MSG(s.fn == 0,
                     "per-epoch false negatives with fault injection off");
  }
  epochs_.push_back(s);
  emit_epoch(s);

  prev_ = snap;
  epoch_refs_ = 0;
  epoch_start_cycles_ = now;
}

void ObsCollector::finish(std::uint64_t now, const ObsSnapshot& snap) {
  if (epoch_refs_ > 0) close_epoch(now, snap);
  if (sink_) {
    EventWriter w("run_end");
    w.field("ref", total_refs_)
        .field("cycles", now)
        .field("epochs", static_cast<std::uint64_t>(epochs_.size()))
        .field("recoveries", metrics_.total(ObsCounter::kRecoveries))
        .field("disable_flips", metrics_.total(ObsCounter::kDisableFlips));
    // Power-of-two access-latency histogram, identical between engines
    // (per-reference latencies are part of the bit-identity contract).
    // Trailing empty buckets are trimmed to keep the line short.
    auto h = metrics_.latency_histogram();
    while (!h.empty() && h.back() == 0) h.pop_back();
    w.array("latency_pow2", h);
    w.emit(*sink_);
    sink_->flush();
  }
}

void ObsCollector::emit_epoch(const EpochSample& s) {
  if (!sink_) return;
  EventWriter w("epoch");
  w.field("index", s.index)
      .field("end_ref", s.end_ref)
      .field("end_cycles", s.end_cycles)
      .field("refs", s.refs)
      .field("l1_accesses", s.l1_accesses)
      .field("l1_misses", s.l1_misses)
      .field("lookups", s.lookups)
      .field("predicted_absent", s.predicted_absent)
      .field("predicted_present", s.predicted_present)
      .field("tp", s.tp)
      .field("fp", s.fp)
      .field("tn", s.tn)
      .field("fn", s.fn)
      .field("recals", s.recalibrations)
      .field("pt_occupancy", s.pt_occupancy)
      .field("active", s.predictor_active);
  w.emit(*sink_);
}

void ObsCollector::emit_run_begin(const ObsRunInfo& info) {
  // A resumed run's replayed trace prefix already contains the run_begin
  // line; emitting a second one would break byte-identity with an
  // uninterrupted run.
  if (!sink_ || resumed_) return;
  EventWriter w("run_begin");
  w.field("cores", static_cast<std::uint64_t>(info.cores))
      .field("scheme", info.scheme)
      .field("inclusion", info.inclusion)
      .field("refs_per_core", info.refs_per_core)
      .field("seed", info.seed)
      .field("prefetch_degree", static_cast<std::uint64_t>(info.prefetch_degree))
      .field("recal_interval", info.recal_interval)
      .field("recal_mode", info.recal_mode)
      .field("faults", info.faults_enabled)
      .field("epoch_refs", config_.epoch_refs)
      .field("epoch_cycles", config_.epoch_cycles);
  w.emit(*sink_);
}

void ObsCollector::emit_auto_disable(bool active,
                                     std::uint64_t backoff_epochs) {
  metrics_.add(0, ObsCounter::kDisableFlips);
  if (!sink_) return;
  EventWriter w("auto_disable");
  w.field("ref", total_refs_)
      .field("active", active)
      .field("backoff_epochs", backoff_epochs);
  w.emit(*sink_);
}

void ObsCollector::emit_recovery(const std::string& policy,
                                 std::uint64_t stall_cycles,
                                 std::uint64_t violations) {
  metrics_.add(0, ObsCounter::kRecoveries);
  if (!sink_) return;
  EventWriter w("recovery");
  w.field("ref", total_refs_)
      .field("policy", policy)
      .field("stall", stall_cycles)
      .field("violations", violations);
  w.emit(*sink_);
}

void ObsCollector::on_recal_begin(std::uint64_t bits_before) {
  if (config_.timing) recal_start_ = std::chrono::steady_clock::now();
  if (!sink_) return;
  EventWriter w("recal_start");
  w.field("ref", total_refs_).field("occupancy_before", bits_before);
  w.emit(*sink_);
}

void ObsCollector::on_recal_end(std::uint64_t bits_after,
                                std::uint64_t stall_cycles) {
  if (config_.timing) {
    timing_.recal_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      recal_start_)
            .count();
    ++timing_.recal_timings;
  }
  if (!sink_) return;
  EventWriter w("recal_end");
  w.field("ref", total_refs_)
      .field("occupancy_after", bits_after)
      .field("stall", stall_cycles);
  w.emit(*sink_);
}

void ObsCollector::on_rolling_pass(std::uint64_t bits_set) {
  if (!sink_) return;
  EventWriter w("recal_pass");
  w.field("ref", total_refs_).field("pt_occupancy", bits_set);
  w.emit(*sink_);
}

namespace {

void save_snapshot(ByteWriter& w, const ObsSnapshot& s) {
  w.u64(s.l1_accesses);
  w.u64(s.l1_misses);
  w.u64(s.lookups);
  w.u64(s.predicted_absent);
  w.u64(s.predicted_present);
  w.u64(s.true_positives);
  w.u64(s.false_positives);
  w.u64(s.recalibrations);
  w.u64(s.invariant_violations);
  w.u64(s.pt_occupancy);
  w.boolean(s.predictor_active);
}

void load_snapshot(ByteReader& r, ObsSnapshot& s) {
  s.l1_accesses = r.u64();
  s.l1_misses = r.u64();
  s.lookups = r.u64();
  s.predicted_absent = r.u64();
  s.predicted_present = r.u64();
  s.true_positives = r.u64();
  s.false_positives = r.u64();
  s.recalibrations = r.u64();
  s.invariant_violations = r.u64();
  s.pt_occupancy = r.u64();
  s.predictor_active = r.boolean();
}

}  // namespace

void ObsCollector::ckpt_enable_capture() {
  if (capture_ != nullptr) return;
  auto capture = std::make_unique<CaptureEventSink>(std::move(sink_));
  capture_ = capture.get();
  sink_ = std::move(capture);
}

void ObsCollector::ckpt_save(ByteWriter& w) const {
  w.u64(total_refs_);
  w.u64(epoch_refs_);
  w.u64(epoch_start_cycles_);
  save_snapshot(w, prev_);
  w.u64(epochs_.size());
  for (const EpochSample& e : epochs_) {
    w.u64(e.index);
    w.u64(e.end_ref);
    w.u64(e.end_cycles);
    w.u64(e.refs);
    w.u64(e.l1_accesses);
    w.u64(e.l1_misses);
    w.u64(e.lookups);
    w.u64(e.predicted_absent);
    w.u64(e.predicted_present);
    w.u64(e.tp);
    w.u64(e.fp);
    w.u64(e.tn);
    w.u64(e.fn);
    w.u64(e.recalibrations);
    w.u64(e.pt_occupancy);
    w.boolean(e.predictor_active);
  }
  metrics_.ckpt_save(w);
  w.str(capture_ != nullptr ? capture_->captured() : std::string());
}

bool ObsCollector::ckpt_load(ByteReader& r) {
  total_refs_ = r.u64();
  epoch_refs_ = r.u64();
  epoch_start_cycles_ = r.u64();
  load_snapshot(r, prev_);
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > kMaxVectorLen) return false;
  epochs_.resize(n);
  for (EpochSample& e : epochs_) {
    e.index = r.u64();
    e.end_ref = r.u64();
    e.end_cycles = r.u64();
    e.refs = r.u64();
    e.l1_accesses = r.u64();
    e.l1_misses = r.u64();
    e.lookups = r.u64();
    e.predicted_absent = r.u64();
    e.predicted_present = r.u64();
    e.tp = r.u64();
    e.fp = r.u64();
    e.tn = r.u64();
    e.fn = r.u64();
    e.recalibrations = r.u64();
    e.pt_occupancy = r.u64();
    e.predictor_active = r.boolean();
  }
  if (!metrics_.ckpt_load(r)) return false;
  std::string prefix = r.str();
  if (!r.ok()) return false;
  if (capture_ != nullptr) {
    capture_->replay(std::move(prefix));
  }
  resumed_ = true;
  return true;
}

}  // namespace redhip
