// Host-side phase timing for the observability layer.
//
// These are wall-clock measurements of the *host* executing the simulation
// (run loop, recalibration rebuilds, result finalization).  They are useful
// for profiling the engines but are a property of the machine, not of the
// run — so they live in SimResult::obs_timing, which stats_identical
// ignores, and they never appear in the event trace or the epoch series
// (both of which must be byte-identical between engines).
#pragma once

#include <chrono>
#include <cstdint>

namespace redhip {

struct ObsTiming {
  bool collected = false;  // true when the run had timing hooks enabled
  double run_seconds = 0.0;       // whole run loop (either engine)
  double recal_seconds = 0.0;     // inside RedhipTable::recalibrate rebuilds
  double finalize_seconds = 0.0;  // finalize_result (aggregate + price)
  std::uint64_t recal_timings = 0;  // rebuilds measured into recal_seconds
};

// Accumulates the scope's wall time into *acc.  A null accumulator disables
// the timer entirely (no clock syscalls), which is how the hooks stay free
// when observability or timing is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* acc) : acc_(acc) {
    if (acc_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (acc_ != nullptr) {
      *acc_ += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* acc_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace redhip
