// ObsJsonlReader — parses the flat-object JSONL dialect EventWriter emits.
//
// This is deliberately not a general JSON parser: every trace line is one
// object whose values are unsigned integers, booleans, strings, or arrays
// of unsigned integers, with no nesting.  Tests use it to round-trip event
// traces and to compare fast vs reference streams structurally;
// scripts/plot_epochs.py is the Python-side consumer of the same schema.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace redhip {

// One parsed trace line.  Field order is preserved (it is part of the
// byte-equivalence contract between engines).
struct ObsEvent {
  std::string type;  // the "ev" field
  std::vector<std::pair<std::string, std::uint64_t>> nums;
  std::vector<std::pair<std::string, bool>> bools;
  std::vector<std::pair<std::string, std::string>> strings;
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> arrays;

  std::optional<std::uint64_t> num(const std::string& key) const;
  // Throws std::out_of_range when the key is absent.
  std::uint64_t num_at(const std::string& key) const;
  std::optional<std::string> str(const std::string& key) const;
  std::optional<bool> flag(const std::string& key) const;
};

// Parses a whole trace (file contents or StringEventSink buffer).  Throws
// std::runtime_error on any malformed line — a trace that does not parse is
// a bug, not data.
std::vector<ObsEvent> parse_jsonl(const std::string& text);

// Convenience: read + parse a trace file.  Throws if the file is missing.
std::vector<ObsEvent> load_jsonl_file(const std::string& path);

}  // namespace redhip
