// cacti_lite — an analytical stand-in for CACTI 6.5.
//
// The paper derives all latency/energy/leakage numbers from CACTI 6.5 and
// publishes them for the five structures it simulates (Table I).  CACTI is
// not available offline, so this model treats the published numbers as
// anchor points and interpolates between them in log(size)-log(value) space.
// At each anchor the model reproduces Table I exactly; between and beyond
// anchors it follows the power-law scaling SRAM arrays empirically exhibit
// (energy and delay grow roughly as size^alpha with alpha in [0.4, 0.7]).
// The conclusions only depend on *ratios* (tag:data ≈ 1:3..1:5, PT ≪ L2 at
// equal capacity), which interpolation preserves.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/params.h"

namespace redhip {

class CactiLite {
 public:
  // Parameters for a set-associative cache of `size_bytes`, with tag and
  // data arrays accessed either in parallel or phased (decided by caller).
  // Exact at 32 KB / 256 KB / 4 MB / 64 MB (the Table I rows).
  //
  // `force_tag_split`: always report separate tag costs, even below the
  // size where Table I folds them into one access number.  Geometry-scaled
  // hierarchies need this for the levels that are split in the full-size
  // machine (a 1/8-scale L3 is 512 KB but still has the L3's tag/data
  // organization); the split uses the 4 MB anchor's tag:data ratios.
  static LevelEnergyParams cache_params(std::uint64_t size_bytes,
                                        bool force_tag_split = false);

  // Parameters for a direct-mapped, 64-bit-entry prediction table of
  // `size_bytes`.  Exact at 512 KB (Table I's PT row); other sizes (the
  // Fig. 11 sweep: 64 KB..2 MB) scale as sqrt(size), with the access delay
  // growing by one cycle per 4x above 1 MB.
  static PredictorEnergyParams pt_params(std::uint64_t size_bytes);

  struct Anchor {
    std::uint64_t size_bytes;
    LevelEnergyParams params;
  };
  // The Table I anchor rows, exposed for tests and the table1_config bench.
  static const std::vector<Anchor>& anchors();
};

}  // namespace redhip
