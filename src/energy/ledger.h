// EnergyLedger — converts simulator event counts into joules.
//
// The simulator's hot path only increments integer event counters; pricing
// happens once at the end of a run.  This keeps the per-access work minimal,
// makes the accounting exact (no accumulated floating-point error ordering
// effects), and lets one set of counters be re-priced under different
// parameter sets (used by tests and the ablation benches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/params.h"

namespace redhip {

// Events observed at one cache level, aggregated over all cores.
struct LevelEvents {
  std::uint64_t tag_probes = 0;    // tag array reads
  std::uint64_t data_probes = 0;   // data array reads
  std::uint64_t fills = 0;         // data + tag array writes (line install)
  std::uint64_t invalidations = 0; // back-invalidation tag writes
  std::uint64_t writebacks = 0;    // dirty lines received from the level
                                   // above (priced as one data write)

  // Behavioural counters (not priced, reported in stats).
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t skipped = 0;  // lookups avoided by a predictor bypass

  LevelEvents& operator+=(const LevelEvents& o);
  bool operator==(const LevelEvents&) const = default;
};

// Events at a prediction structure (ReDHiP PT or CBF).
struct PredictorEvents {
  std::uint64_t lookups = 0;
  std::uint64_t updates = 0;        // bit set / counter inc / counter dec
  std::uint64_t recalibrations = 0;
  std::uint64_t recal_sets_read = 0;   // LLC tag-array set reads
  std::uint64_t recal_words_written = 0;  // PT line writes

  // Behavioural counters.
  std::uint64_t predicted_absent = 0;   // bypasses taken
  std::uint64_t predicted_present = 0;
  std::uint64_t false_positives = 0;  // predicted present, LLC missed
  std::uint64_t true_positives = 0;   // predicted present, LLC hit

  PredictorEvents& operator+=(const PredictorEvents& o);
  bool operator==(const PredictorEvents&) const = default;
};

struct PrefetchEvents {
  std::uint64_t table_lookups = 0;
  std::uint64_t issued = 0;       // prefetch requests sent into the hierarchy
  std::uint64_t useful = 0;       // prefetched lines hit by a demand access
  std::uint64_t useless = 0;      // prefetched lines evicted untouched
  std::uint64_t redundant = 0;    // prefetch target already cached

  PrefetchEvents& operator+=(const PrefetchEvents& o);
  bool operator==(const PrefetchEvents&) const = default;
};

// A priced breakdown, all in joules.
struct EnergyBreakdown {
  std::vector<double> level_dynamic_j;  // per level
  double predictor_dynamic_j = 0.0;     // PT/CBF lookups + updates
  double recalibration_j = 0.0;         // tag reads + PT writes
  double prefetcher_j = 0.0;            // prefetch table upkeep
  double memory_j = 0.0;                // off-chip (0 in paper mode)
  double leakage_j = 0.0;               // all arrays, over the run time

  double dynamic_total_j() const;
  double total_j() const { return dynamic_total_j() + leakage_j; }
  bool operator==(const EnergyBreakdown&) const = default;
};

class EnergyLedger {
 public:
  // `level_params[i]` prices level i; `num_private_instances` is how many
  // physical copies of each private level exist (one per core) — leakage is
  // per instance.  `shared_last_level`: the last level is a single shared
  // array.
  // `charge_fills`: when true, line installs are priced as a tag+data write
  // at the filled level.  The paper's accounting normalizes *lookup* traffic
  // (fills cost the same under every scheme and are part of the miss price
  // already charged on the walk), so the default is false; the flag exists
  // for sensitivity studies.
  EnergyLedger(std::vector<LevelEnergyParams> level_params,
               PredictorEnergyParams predictor_params,
               std::uint32_t num_private_instances, bool shared_last_level,
               bool charge_fills = false);

  // `predictor_leakage_w` is the total leakage of all prediction structures
  // (one PT in inclusive mode; the sum of the per-level PTs in exclusive
  // mode).  Pass 0 for schemes without a predictor.
  EnergyBreakdown price(const std::vector<LevelEvents>& levels,
                        const PredictorEvents& predictor,
                        const PrefetchEvents& prefetch,
                        std::uint64_t memory_accesses,
                        double memory_energy_nj, double elapsed_seconds,
                        double predictor_leakage_w) const;

  const std::vector<LevelEnergyParams>& level_params() const {
    return level_params_;
  }
  const PredictorEnergyParams& predictor_params() const {
    return predictor_params_;
  }

  // Energy of one prefetch-table operation; a small SRAM on the paper's
  // scale (4K entries ≈ 64KB), priced like a small tag structure.
  static constexpr double kPrefetchTableOpNj = 0.005;

 private:
  std::vector<LevelEnergyParams> level_params_;
  PredictorEnergyParams predictor_params_;
  std::uint32_t num_private_instances_;
  bool shared_last_level_;
  bool charge_fills_;
};

}  // namespace redhip
