// Per-array timing/energy parameters (the paper's Table I rows).
//
// Every cache level carries a tag/data split.  For small caches (L1, L2) the
// paper publishes a single access delay and energy — those levels model
// tag_* = 0 and put the whole cost in data_*; the split only matters for the
// levels Phased Cache serializes (L3, L4).  A "parallel" access costs
// max(tag_delay, data_delay) cycles and tag+data energy; a phased access
// costs tag first and data only on a hit.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace redhip {

struct LevelEnergyParams {
  std::string name;
  Cycles tag_delay = 0;
  Cycles data_delay = 0;
  double tag_energy_nj = 0.0;
  double data_energy_nj = 0.0;
  double leakage_w = 0.0;

  Cycles parallel_delay() const {
    return tag_delay > data_delay ? tag_delay : data_delay;
  }
  double parallel_energy_nj() const { return tag_energy_nj + data_energy_nj; }
};

struct PredictorEnergyParams {
  Cycles access_delay = 1;
  Cycles wire_delay = 5;
  double access_energy_nj = 0.02;
  double leakage_w = 0.005;  // not published in Table I; small by design

  Cycles total_delay() const { return access_delay + wire_delay; }
};

}  // namespace redhip
