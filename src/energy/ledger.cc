#include "energy/ledger.h"

#include "common/check.h"

namespace redhip {

LevelEvents& LevelEvents::operator+=(const LevelEvents& o) {
  tag_probes += o.tag_probes;
  data_probes += o.data_probes;
  fills += o.fills;
  invalidations += o.invalidations;
  writebacks += o.writebacks;
  accesses += o.accesses;
  hits += o.hits;
  misses += o.misses;
  evictions += o.evictions;
  skipped += o.skipped;
  return *this;
}

PredictorEvents& PredictorEvents::operator+=(const PredictorEvents& o) {
  lookups += o.lookups;
  updates += o.updates;
  recalibrations += o.recalibrations;
  recal_sets_read += o.recal_sets_read;
  recal_words_written += o.recal_words_written;
  predicted_absent += o.predicted_absent;
  predicted_present += o.predicted_present;
  false_positives += o.false_positives;
  true_positives += o.true_positives;
  return *this;
}

PrefetchEvents& PrefetchEvents::operator+=(const PrefetchEvents& o) {
  table_lookups += o.table_lookups;
  issued += o.issued;
  useful += o.useful;
  useless += o.useless;
  redundant += o.redundant;
  return *this;
}

double EnergyBreakdown::dynamic_total_j() const {
  double sum = predictor_dynamic_j + recalibration_j + prefetcher_j + memory_j;
  for (double v : level_dynamic_j) sum += v;
  return sum;
}

EnergyLedger::EnergyLedger(std::vector<LevelEnergyParams> level_params,
                           PredictorEnergyParams predictor_params,
                           std::uint32_t num_private_instances,
                           bool shared_last_level, bool charge_fills)
    : level_params_(std::move(level_params)),
      predictor_params_(predictor_params),
      num_private_instances_(num_private_instances),
      shared_last_level_(shared_last_level),
      charge_fills_(charge_fills) {
  REDHIP_CHECK(!level_params_.empty());
  REDHIP_CHECK(num_private_instances_ >= 1);
}

EnergyBreakdown EnergyLedger::price(const std::vector<LevelEvents>& levels,
                                    const PredictorEvents& predictor,
                                    const PrefetchEvents& prefetch,
                                    std::uint64_t memory_accesses,
                                    double memory_energy_nj,
                                    double elapsed_seconds,
                                    double predictor_leakage_w) const {
  REDHIP_CHECK(levels.size() == level_params_.size());
  constexpr double kNjToJ = 1e-9;

  EnergyBreakdown out;
  out.level_dynamic_j.resize(levels.size(), 0.0);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& ev = levels[i];
    const auto& p = level_params_[i];
    // A fill writes both arrays; an invalidation touches only the tag array.
    // For small caches (tag cost folded into data cost) the tag terms are 0
    // and fills/invalidations are priced by the single access number.
    const double tag_nj = p.tag_energy_nj;
    const double data_nj = p.data_energy_nj;
    double j = 0.0;
    j += static_cast<double>(ev.tag_probes) * tag_nj;
    j += static_cast<double>(ev.data_probes) * data_nj;
    if (charge_fills_) {
      j += static_cast<double>(ev.fills) * (tag_nj + data_nj);
    }
    j += static_cast<double>(ev.invalidations) *
         (tag_nj > 0.0 ? tag_nj : data_nj);
    j += static_cast<double>(ev.writebacks) * data_nj;
    out.level_dynamic_j[i] = j * kNjToJ;
  }

  const auto& pp = predictor_params_;
  out.predictor_dynamic_j =
      static_cast<double>(predictor.lookups + predictor.updates) *
      pp.access_energy_nj * kNjToJ;
  // Recalibration: one LLC tag-array set read per set touched, one PT line
  // write per word rebuilt.  A recalibration read is a sequential row sweep
  // of the tag array — no comparators, no way muxes — so it is priced at a
  // quarter of an associative tag probe.
  constexpr double kRecalReadFactor = 0.25;
  const double llc_tag_nj = level_params_.back().tag_energy_nj > 0.0
                                ? level_params_.back().tag_energy_nj
                                : level_params_.back().data_energy_nj;
  out.recalibration_j =
      (static_cast<double>(predictor.recal_sets_read) * llc_tag_nj *
           kRecalReadFactor +
       static_cast<double>(predictor.recal_words_written) *
           pp.access_energy_nj) *
      kNjToJ;

  out.prefetcher_j = static_cast<double>(prefetch.table_lookups) *
                     kPrefetchTableOpNj * kNjToJ;
  out.memory_j =
      static_cast<double>(memory_accesses) * memory_energy_nj * kNjToJ;

  // Leakage: private levels exist once per core; the shared last level once.
  double leak_w = 0.0;
  for (std::size_t i = 0; i < level_params_.size(); ++i) {
    const bool shared = shared_last_level_ && i + 1 == level_params_.size();
    leak_w += level_params_[i].leakage_w *
              (shared ? 1.0 : static_cast<double>(num_private_instances_));
  }
  leak_w += predictor_leakage_w;
  out.leakage_j = leak_w * elapsed_seconds;
  return out;
}

}  // namespace redhip
