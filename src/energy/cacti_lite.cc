#include "energy/cacti_lite.h"

#include <cmath>

#include "common/check.h"
#include "common/types.h"

namespace redhip {
namespace {

// Log-log interpolation of y over size between two anchor points, clamped to
// extrapolate with the nearest segment's slope.
double loglog(double size, double s0, double y0, double s1, double y1) {
  if (y0 <= 0.0 || y1 <= 0.0) return 0.0;
  const double t =
      (std::log2(size) - std::log2(s0)) / (std::log2(s1) - std::log2(s0));
  return std::exp2(std::log2(y0) + t * (std::log2(y1) - std::log2(y0)));
}

const std::vector<CactiLite::Anchor>& anchor_table() {
  // Table I of the paper, verbatim.  L1/L2 publish a single access number:
  // modeled as tag cost 0 (see params.h).
  static const std::vector<CactiLite::Anchor> kAnchors = {
      {32_KiB, {"32KB", 0, 2, 0.0, 0.0144, 0.0013}},
      {256_KiB, {"256KB", 0, 6, 0.0, 0.0634, 0.02}},
      {4_MiB, {"4MB", 9, 12, 0.348, 0.839, 0.16}},
      {64_MiB, {"64MB", 13, 22, 1.171, 5.542, 2.56}},
  };
  return kAnchors;
}

double interp_field(std::uint64_t size_bytes,
                    double (*get)(const LevelEnergyParams&)) {
  const auto& a = anchor_table();
  const double size = static_cast<double>(size_bytes);
  // Find the bracketing segment (or the nearest one for extrapolation).
  std::size_t hi = 1;
  while (hi + 1 < a.size() &&
         size_bytes > a[hi].size_bytes) {
    ++hi;
  }
  const auto& lo_a = a[hi - 1];
  const auto& hi_a = a[hi];
  return loglog(size, static_cast<double>(lo_a.size_bytes), get(lo_a.params),
                static_cast<double>(hi_a.size_bytes), get(hi_a.params));
}

}  // namespace

const std::vector<CactiLite::Anchor>& CactiLite::anchors() {
  return anchor_table();
}

LevelEnergyParams CactiLite::cache_params(std::uint64_t size_bytes,
                                          bool force_tag_split) {
  REDHIP_CHECK_MSG(size_bytes >= 1_KiB, "cacti_lite: cache below 1KB");
  // Exact match on an anchor returns the published row.
  for (const auto& an : anchor_table()) {
    if (an.size_bytes == size_bytes &&
        (!force_tag_split || an.params.tag_energy_nj > 0.0)) {
      return an.params;
    }
  }
  LevelEnergyParams p;
  p.name = std::to_string(size_bytes >> 10) + "KB";
  p.data_delay = static_cast<Cycles>(std::llround(interp_field(
      size_bytes, [](const LevelEnergyParams& q) {
        return static_cast<double>(q.data_delay);
      })));
  if (p.data_delay < 1) p.data_delay = 1;
  p.data_energy_nj = interp_field(
      size_bytes, [](const LevelEnergyParams& q) { return q.data_energy_nj; });
  p.leakage_w = interp_field(
      size_bytes, [](const LevelEnergyParams& q) { return q.leakage_w; });
  // Tag array costs: Table I only splits them out for the large caches
  // (>= 4MB).  Between 1MB and 4MB there is no lower tag anchor, so the
  // model applies the 4MB row's tag:data ratios to the interpolated data
  // values; above 4MB both anchors exist and log-log interpolation applies.
  // Below 1MB tags fold into the single access cost like L1/L2.
  if (size_bytes >= 4_MiB) {
    p.tag_delay = static_cast<Cycles>(std::llround(interp_field(
        size_bytes, [](const LevelEnergyParams& q) {
          return static_cast<double>(q.tag_delay);
        })));
    if (p.tag_delay < 1) p.tag_delay = 1;
    p.tag_energy_nj = interp_field(
        size_bytes,
        [](const LevelEnergyParams& q) { return q.tag_energy_nj; });
  } else if (size_bytes >= 1_MiB || force_tag_split) {
    const auto& four_mb = anchor_table()[2].params;
    p.tag_energy_nj = p.data_energy_nj * four_mb.tag_energy_nj /
                      four_mb.data_energy_nj;
    p.tag_delay = static_cast<Cycles>(std::llround(
        static_cast<double>(p.data_delay) *
        static_cast<double>(four_mb.tag_delay) /
        static_cast<double>(four_mb.data_delay)));
    if (p.tag_delay < 1) p.tag_delay = 1;
    if (p.tag_delay >= p.data_delay && p.data_delay > 1) {
      p.tag_delay = p.data_delay - 1;
    }
  }
  return p;
}

PredictorEnergyParams CactiLite::pt_params(std::uint64_t size_bytes) {
  REDHIP_CHECK_MSG(size_bytes >= 8, "cacti_lite: PT below one 64-bit line");
  PredictorEnergyParams p;  // defaults are the 512KB Table I row
  const double ratio = static_cast<double>(size_bytes) / 512.0 / 1024.0;
  p.access_energy_nj = 0.02 * std::sqrt(ratio);
  p.leakage_w = 0.005 * ratio;
  p.access_delay = size_bytes > 1_MiB ? 2 : 1;
  return p;
}

}  // namespace redhip
