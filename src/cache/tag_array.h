// Set-associative tag array — the structural model of one cache level.
//
// The array tracks only presence (tags + valid bits + a per-line
// "prefetched" mark used by the prefetcher accounting); data contents are
// never modeled, matching the paper's methodology where memory is a perfect
// data store.  All timing and energy accounting lives in the simulator — the
// TagArray reports *events*, it does not price them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "cache/geometry.h"
#include "common/types.h"

namespace redhip {

class TagArray {
 public:
  struct LookupResult {
    bool hit = false;
    std::uint32_t way = 0;
    bool was_prefetched = false;  // set on the first demand hit to a
                                  // prefetched line (the mark is consumed)
  };

  struct FillResult {
    bool evicted = false;
    std::uint32_t way = 0;               // way the new line landed in
    LineAddr victim = 0;
    bool victim_was_prefetched = false;  // victim evicted with mark intact
                                         // (i.e. a useless prefetch)
    bool victim_was_dirty = false;       // eviction requires a writeback
  };

  // `seed` only matters for ReplacementKind::kRandom.
  explicit TagArray(const CacheGeometry& geom, std::uint64_t seed = 0);

  // The per-access methods below are defined inline (bottom of this header):
  // they are the simulator's hottest instructions — every simulated
  // reference runs several of them — and out-of-line calls plus the virtual
  // replacement-policy dispatch cost more than the tag match itself.  LRU
  // (the paper machine's policy) is dispatched non-virtually.

  // Probe for `line`; on a hit, promotes it in the replacement order and
  // consumes its prefetched mark.  `is_write` marks the line dirty.
  LookupResult lookup(LineAddr line, bool is_write = false);

  // Probe without any state change (used by the Oracle predictor and by
  // invariant checks).
  bool contains(LineAddr line) const;

  // Way index of the resident copy of `line` (no state change); false if
  // absent.  Lets the simulator keep per-slot sideband state (the LLC
  // core-presence directory) without widening the packed entries.
  bool find_way(LineAddr line, std::uint32_t* way) const;

  // Insert `line`; evicts a victim if the set is full.  `prefetched` marks
  // lines installed by the prefetcher rather than a demand access; `dirty`
  // installs the line already modified (write-allocate of a write miss, or
  // a dirty victim cascading down an exclusive hierarchy).
  // Pre-condition: the line is not already present (checked in debug).
  FillResult fill(LineAddr line, bool prefetched = false, bool dirty = false);

  // Fused `contains` + `fill` in a single set scan (the simulator's fill
  // paths previously did both walks back to back).  If the line is already
  // present: optionally dirties it (mark_dirty semantics — no replacement
  // promotion, no prefetched mark) and returns false.  Otherwise fills
  // exactly like fill() and returns true with the eviction outcome in
  // `*out`.
  bool fill_if_absent(LineAddr line, bool prefetched, bool dirty,
                      FillResult* out);

  // Remove `line` if present; returns true when it was.  `was_dirty`, if
  // non-null, reports whether the removed copy needed a writeback.
  bool invalidate(LineAddr line, bool* was_dirty = nullptr);

  // --- Geometry and introspection -----------------------------------------
  const CacheGeometry& geometry() const { return geom_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t ways() const { return geom_.ways; }
  std::uint64_t set_of(LineAddr line) const { return line & set_mask_; }
  std::uint64_t bank_of(std::uint64_t set) const { return set & bank_mask_; }

  // Iterate the valid lines of one set (used by ReDHiP recalibration, which
  // reads the tag array set-by-set).
  void for_each_valid_in_set(std::uint64_t set,
                             const std::function<void(LineAddr)>& fn) const;
  // Iterate every valid line in the array.
  void for_each_valid(const std::function<void(LineAddr)>& fn) const;

  std::uint64_t valid_count() const { return valid_count_; }
  std::uint64_t valid_count_in_set(std::uint64_t set) const;

  // Whether the resident copy of `line` is dirty (false if absent).
  bool is_dirty(LineAddr line) const;
  // Mark a resident line dirty without touching the replacement order
  // (receiving a writeback is not a use).  Returns false if absent.
  bool mark_dirty(LineAddr line);

  // Whether every piece of per-set state lives inside the packed entries
  // (LRU with <= 16 ways, the paper machine's configuration).  When true,
  // save_set/restore_set below capture the *complete* state of one set,
  // which is what lets the parallel engine speculate hits on this array and
  // rewind them on a back-invalidation conflict.  Policies with side state
  // (tree-PLRU, NRU, the random policy's RNG) are not self-contained and
  // disable speculation (src/sim/parallel.cc falls back to its weave-only
  // mode).
  bool state_is_self_contained() const { return embedded_lru_; }

  // Raw per-set state for the parallel engine's speculation undo log; only
  // meaningful when state_is_self_contained().  `out` must hold ways()
  // words.  The caller may only bracket mutations that preserve residency
  // (hit promotions, dirty marks) — the valid count is not re-derived.
  void save_set(std::uint64_t set, std::uint64_t* out) const {
    const Entry* e = set_begin(set);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) out[w] = e[w];
  }
  void restore_set(std::uint64_t set, const std::uint64_t* saved) {
    Entry* e = set_begin(set);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) e[w] = saved[w];
  }

  // Whole-array snapshot for checkpoint/restore — the array-granularity
  // sibling of save_set/restore_set, under the same gate: the packed
  // entries are the *complete* state only when state_is_self_contained()
  // (src/ckpt refuses to checkpoint otherwise).  Restore recounts the
  // valid-line tally from the valid bits rather than trusting the caller.
  const std::vector<std::uint64_t>& ckpt_entries() const { return entries_; }
  bool ckpt_restore_entries(const std::vector<std::uint64_t>& entries) {
    if (entries.size() != entries_.size()) return false;
    entries_ = entries;
    valid_count_ = 0;
    for (std::uint64_t e : entries_) valid_count_ += e & kValidBit;
    return true;
  }

 private:
  // One way, packed into a single word: bit 0 valid, bit 1 prefetched,
  // bit 2 dirty, bits 3..59 the tag, bits 60..63 the line's LRU rank (only
  // used when the policy is LRU with <= 16 ways — see `embedded_lru_`).  A
  // tag fits 57 bits: with >= 64B lines that covers byte addresses past
  // 2^63, so the shift never overflows in practice.  Packing matters: the
  // simulated LLC's tag array is megabytes and every probe scans a full
  // set, so keeping tag, flags, and replacement state in one word means a
  // probe-plus-promote touches a single host cache line instead of two
  // random ones (entries + a separate rank array).
  using Entry = std::uint64_t;
  static constexpr Entry kValidBit = 1;
  static constexpr Entry kPrefetchedBit = 2;
  static constexpr Entry kDirtyBit = 4;
  static constexpr std::uint32_t kRankShift = 60;
  static constexpr Entry kRankMask = Entry{0xF} << kRankShift;
  static constexpr Entry kRankInc = Entry{1} << kRankShift;
  // Clearing the don't-care bits (flags + rank) leaves `(tag << 3) | valid`
  // — one mask + compare decides "valid match" for the whole entry.  For
  // policies that keep their state outside the entry the rank nibble is
  // always zero, so the same mask is correct everywhere.
  static constexpr Entry kMatchMask =
      ~(kPrefetchedBit | kDirtyBit | kRankMask);

  static constexpr std::uint32_t kNoWay = ~0u;

  // Way index of the valid resident copy whose masked entry equals `want`,
  // or kNoWay.  Tags are unique within a set (fills check absence first),
  // so any-match == first-match and the vector path is free to report the
  // lowest set lane.  With AVX-512 a whole 8-way set is one masked load +
  // compare; hosts without it (or non-native builds) keep the scalar loop —
  // both produce the identical way index.
  std::uint32_t match_way(const Entry* e, Entry want) const {
#if defined(__AVX512F__)
    const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(kMatchMask));
    const __m512i vwant = _mm512_set1_epi64(static_cast<long long>(want));
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      const __mmask8 lanes =
          n >= 8 ? static_cast<__mmask8>(0xFF)
                 : static_cast<__mmask8>((1u << n) - 1);
      const __m512i v = _mm512_maskz_loadu_epi64(lanes, e + base);
      const __mmask8 m = _mm512_mask_cmpeq_epi64_mask(
          lanes, _mm512_and_si512(v, vmask), vwant);
      if (m != 0) return base + static_cast<std::uint32_t>(__builtin_ctz(m));
    }
    return kNoWay;
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if ((e[w] & kMatchMask) == want) return w;
    }
    return kNoWay;
#endif
  }

  static Entry pack(std::uint64_t tag, bool prefetched, bool dirty) {
    return (tag << 3) | (prefetched ? kPrefetchedBit : 0) |
           (dirty ? kDirtyBit : 0) | kValidBit;
  }
  static std::uint64_t tag_of_entry(Entry e) { return (e & kMatchMask) >> 3; }

  std::uint64_t tag_of(LineAddr line) const { return line >> set_bits_; }
  LineAddr line_of(std::uint64_t set, std::uint64_t tag) const {
    return (tag << set_bits_) | set;
  }
  Entry* set_begin(std::uint64_t set) { return &entries_[set * geom_.ways]; }
  const Entry* set_begin(std::uint64_t set) const {
    return &entries_[set * geom_.ways];
  }

  // Entry-embedded LRU: ranks live in the top nibble of the entries the
  // caller has already loaded.  Behaviour is exactly LruPolicy's
  // touch_inline/victim_inline (same promotions, same first-max tie-break,
  // same way-index initial ranks); only the storage moved.
  void touch_embedded(Entry* e, std::uint32_t way) {
    const Entry old = e[way] & kRankMask;
    if (old == 0) return;
#if defined(__AVX512F__)
    // Branchless promote: increment every rank below `old` in one masked
    // add per 8 ways.  Same additions as the scalar loop, so the rank
    // permutation evolves identically.
    const __m512i vrank = _mm512_set1_epi64(static_cast<long long>(kRankMask));
    const __m512i vold = _mm512_set1_epi64(static_cast<long long>(old));
    const __m512i vinc = _mm512_set1_epi64(static_cast<long long>(kRankInc));
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      const __mmask8 lanes =
          n >= 8 ? static_cast<__mmask8>(0xFF)
                 : static_cast<__mmask8>((1u << n) - 1);
      const __m512i v = _mm512_maskz_loadu_epi64(lanes, e + base);
      const __mmask8 lt = _mm512_mask_cmplt_epu64_mask(
          lanes, _mm512_and_si512(v, vrank), vold);
      _mm512_mask_storeu_epi64(e + base, lt,
                               _mm512_add_epi64(v, vinc));
    }
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if ((e[w] & kRankMask) < old) e[w] += kRankInc;
    }
#endif
    e[way] &= ~kRankMask;
  }
  std::uint32_t victim_embedded(const Entry* e) const {
#if defined(__AVX512F__)
    // The ranks of a set are a permutation of 0..ways-1 (initialized that
    // way; touch_embedded preserves it, invalidate keeps the nibble), so
    // the maximum rank is unique and the compare-equal mask has exactly
    // one lane — no tie-break needed to match the scalar first-max.
    const __m512i vrank = _mm512_set1_epi64(static_cast<long long>(kRankMask));
    Entry best_r = 0;
    std::uint32_t best_w = 0;
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      const __mmask8 lanes =
          n >= 8 ? static_cast<__mmask8>(0xFF)
                 : static_cast<__mmask8>((1u << n) - 1);
      const __m512i r = _mm512_and_si512(
          _mm512_maskz_loadu_epi64(lanes, e + base), vrank);
      const Entry block_max = _mm512_reduce_max_epu64(r);
      if (base == 0 || block_max > best_r) {
        best_r = block_max;
        best_w = base + static_cast<std::uint32_t>(__builtin_ctz(
                            _mm512_cmpeq_epu64_mask(
                                r, _mm512_set1_epi64(
                                       static_cast<long long>(block_max)))));
      }
    }
    return best_w;
#else
    std::uint32_t worst = 0;
    Entry worst_r = e[0] & kRankMask;
    for (std::uint32_t w = 1; w < geom_.ways; ++w) {
      const Entry r = e[w] & kRankMask;
      if (r > worst_r) {
        worst = w;
        worst_r = r;
      }
    }
    return worst;
#endif
  }

  // Promote (set, way) in the replacement order.  The paper machine is LRU
  // at every level, so the embedded-rank path is the common case; wide-LRU
  // (> 16 ways) still uses LruPolicy's side array non-virtually, everything
  // else pays the virtual dispatch.
  void repl_touch(Entry* e, std::uint64_t set, std::uint32_t way) {
    if (embedded_lru_) {
      touch_embedded(e, way);
    } else if (lru_ != nullptr) {
      lru_->touch_inline(set, way);
    } else {
      repl_->touch(set, way);
    }
  }
  std::uint32_t repl_victim(const Entry* e, std::uint64_t set) {
    if (embedded_lru_) return victim_embedded(e);
    if (lru_ != nullptr) return lru_->victim_inline(set);
    return repl_->victim(set);
  }

  CacheGeometry geom_;
  std::uint64_t sets_;
  std::uint32_t set_bits_;
  std::uint64_t set_mask_;
  std::uint64_t bank_mask_;
  std::vector<Entry> entries_;
  std::unique_ptr<ReplacementPolicy> repl_;
  LruPolicy* lru_ = nullptr;  // repl_ downcast when the policy is LRU
  bool embedded_lru_ = false;  // LRU with <= 16 ways: ranks in the entries
  std::uint64_t valid_count_ = 0;
};

// --------------------------------------------------------------------------
// Inline hot path.  Identical behaviour to the original out-of-line
// definitions — only the call overhead and the entry padding are gone.
// --------------------------------------------------------------------------

inline TagArray::LookupResult TagArray::lookup(LineAddr line, bool is_write) {
  const std::uint64_t set = set_of(line);
  const Entry want = (tag_of(line) << 3) | kValidBit;
  Entry* e = set_begin(set);
  const std::uint32_t w = match_way(e, want);
  if (w == kNoWay) return {};
  LookupResult r{true, w, (e[w] & kPrefetchedBit) != 0};
  e[w] &= ~kPrefetchedBit;
  if (is_write) e[w] |= kDirtyBit;
  repl_touch(e, set, w);
  return r;
}

inline bool TagArray::contains(LineAddr line) const {
  const Entry want = (tag_of(line) << 3) | kValidBit;
  return match_way(set_begin(set_of(line)), want) != kNoWay;
}

inline bool TagArray::find_way(LineAddr line, std::uint32_t* way) const {
  const Entry want = (tag_of(line) << 3) | kValidBit;
  const std::uint32_t w = match_way(set_begin(set_of(line)), want);
  if (w == kNoWay) return false;
  *way = w;
  return true;
}

inline TagArray::FillResult TagArray::fill(LineAddr line, bool prefetched,
                                           bool dirty) {
  REDHIP_DCHECK(!contains(line));
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Entry* e = set_begin(set);
  // Prefer an invalid way.  Overwrites keep the rank nibble — replacement
  // state belongs to the way, not to the line occupying it.
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if ((e[w] & kValidBit) == 0) {
      e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
      repl_touch(e, set, w);
      ++valid_count_;
      FillResult r;
      r.way = w;
      return r;
    }
  }
  const std::uint32_t w = repl_victim(e, set);
  FillResult r;
  r.evicted = true;
  r.way = w;
  r.victim = line_of(set, tag_of_entry(e[w]));
  r.victim_was_prefetched = (e[w] & kPrefetchedBit) != 0;
  r.victim_was_dirty = (e[w] & kDirtyBit) != 0;
  e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
  repl_touch(e, set, w);
  return r;
}

inline bool TagArray::fill_if_absent(LineAddr line, bool prefetched,
                                     bool dirty, FillResult* out) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  Entry* e = set_begin(set);
  std::uint32_t invalid_way = kNoWay;
  if (embedded_lru_) {
#if defined(__AVX512F__)
    // Vector sweep: match and invalid-way lane masks for the whole set in
    // one or two loads; the victim pick (only needed when every way is
    // valid and none match) falls back to victim_embedded over the
    // now-cached entries.  Lane order == way order, so ctz reproduces the
    // scalar loop's first-invalid-way choice exactly.
    std::uint32_t match_bits = 0;
    std::uint32_t invalid_bits = 0;
    const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(kMatchMask));
    const __m512i vwant = _mm512_set1_epi64(static_cast<long long>(want));
    const __m512i vvalid =
        _mm512_set1_epi64(static_cast<long long>(kValidBit));
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      const __mmask8 lanes =
          n >= 8 ? static_cast<__mmask8>(0xFF)
                 : static_cast<__mmask8>((1u << n) - 1);
      const __m512i v = _mm512_maskz_loadu_epi64(lanes, e + base);
      match_bits |= static_cast<std::uint32_t>(_mm512_mask_cmpeq_epi64_mask(
                        lanes, _mm512_and_si512(v, vmask), vwant))
                    << base;
      invalid_bits |= static_cast<std::uint32_t>(
                          _mm512_mask_testn_epi64_mask(lanes, v, vvalid))
                      << base;
    }
    if (match_bits != 0) {
      // Already present: receiving a duplicate fill is not a use, so the
      // replacement order is untouched (mark_dirty semantics).
      if (dirty) e[__builtin_ctz(match_bits)] |= kDirtyBit;
      return false;
    }
    if (invalid_bits != 0) invalid_way = __builtin_ctz(invalid_bits);
    const std::uint32_t worst =
        invalid_way == kNoWay ? victim_embedded(e) : 0;
#else
    // Single sweep: the resident match, the first invalid way, and the LRU
    // victim candidate all fall out of one pass over the set.  The victim
    // tracking replicates victim_embedded exactly (w == 0 seeds, then
    // strictly-greater updates), so a full set picks the same way.
    std::uint32_t worst = 0;
    Entry worst_r = 0;
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      const Entry ew = e[w];
      if ((ew & kMatchMask) == want) {
        // Already present: receiving a duplicate fill is not a use, so the
        // replacement order is untouched (mark_dirty semantics).
        if (dirty) e[w] |= kDirtyBit;
        return false;
      }
      if ((ew & kValidBit) == 0 && invalid_way == kNoWay) invalid_way = w;
      const Entry r = ew & kRankMask;
      if (w == 0 || r > worst_r) {
        worst = w;
        worst_r = r;
      }
    }
#endif
    std::uint32_t w;
    if (invalid_way != kNoWay) {
      w = invalid_way;
      ++valid_count_;
      *out = {};
      out->way = w;
    } else {
      w = worst;
      out->evicted = true;
      out->way = w;
      out->victim = line_of(set, tag_of_entry(e[w]));
      out->victim_was_prefetched = (e[w] & kPrefetchedBit) != 0;
      out->victim_was_dirty = (e[w] & kDirtyBit) != 0;
    }
    e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
    touch_embedded(e, w);
    return true;
  }
  // One scan finds both the resident copy (if any) and the first invalid
  // way.  Identical outcomes to `contains` + `mark_dirty`/`fill` — only the
  // second walk over the set is gone.
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if ((e[w] & kMatchMask) == want) {
      if (dirty) e[w] |= kDirtyBit;
      return false;
    }
    if (invalid_way == kNoWay && (e[w] & kValidBit) == 0) invalid_way = w;
  }
  if (invalid_way != kNoWay) {
    e[invalid_way] = (e[invalid_way] & kRankMask) | pack(tag, prefetched, dirty);
    repl_touch(e, set, invalid_way);
    ++valid_count_;
    *out = {};
    out->way = invalid_way;
    return true;
  }
  const std::uint32_t w = repl_victim(e, set);
  out->evicted = true;
  out->way = w;
  out->victim = line_of(set, tag_of_entry(e[w]));
  out->victim_was_prefetched = (e[w] & kPrefetchedBit) != 0;
  out->victim_was_dirty = (e[w] & kDirtyBit) != 0;
  e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
  repl_touch(e, set, w);
  return true;
}

inline bool TagArray::invalidate(LineAddr line, bool* was_dirty) {
  const std::uint64_t set = set_of(line);
  const Entry want = (tag_of(line) << 3) | kValidBit;
  Entry* e = set_begin(set);
  const std::uint32_t w = match_way(e, want);
  if (w == kNoWay) return false;
  if (was_dirty != nullptr) *was_dirty = (e[w] & kDirtyBit) != 0;
  // Clear everything but the rank nibble: LruPolicy never learns about
  // invalidations either, so the way keeps its place in the LRU order.
  e[w] &= kRankMask;
  --valid_count_;
  return true;
}

inline bool TagArray::mark_dirty(LineAddr line) {
  const Entry want = (tag_of(line) << 3) | kValidBit;
  Entry* e = set_begin(set_of(line));
  const std::uint32_t w = match_way(e, want);
  if (w == kNoWay) return false;
  e[w] |= kDirtyBit;
  return true;
}

inline bool TagArray::is_dirty(LineAddr line) const {
  const Entry want = (tag_of(line) << 3) | kValidBit;
  const Entry* e = set_begin(set_of(line));
  const std::uint32_t w = match_way(e, want);
  return w != kNoWay && (e[w] & kDirtyBit) != 0;
}

}  // namespace redhip
