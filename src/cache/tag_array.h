// Set-associative tag array — the structural model of one cache level.
//
// The array tracks only presence (tags + valid bits + a per-line
// "prefetched" mark used by the prefetcher accounting); data contents are
// never modeled, matching the paper's methodology where memory is a perfect
// data store.  All timing and energy accounting lives in the simulator — the
// TagArray reports *events*, it does not price them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/geometry.h"
#include "common/types.h"

namespace redhip {

class TagArray {
 public:
  struct LookupResult {
    bool hit = false;
    std::uint32_t way = 0;
    bool was_prefetched = false;  // set on the first demand hit to a
                                  // prefetched line (the mark is consumed)
  };

  struct FillResult {
    bool evicted = false;
    LineAddr victim = 0;
    bool victim_was_prefetched = false;  // victim evicted with mark intact
                                         // (i.e. a useless prefetch)
    bool victim_was_dirty = false;       // eviction requires a writeback
  };

  // `seed` only matters for ReplacementKind::kRandom.
  explicit TagArray(const CacheGeometry& geom, std::uint64_t seed = 0);

  // Probe for `line`; on a hit, promotes it in the replacement order and
  // consumes its prefetched mark.  `is_write` marks the line dirty.
  LookupResult lookup(LineAddr line, bool is_write = false);

  // Probe without any state change (used by the Oracle predictor and by
  // invariant checks).
  bool contains(LineAddr line) const;

  // Insert `line`; evicts a victim if the set is full.  `prefetched` marks
  // lines installed by the prefetcher rather than a demand access; `dirty`
  // installs the line already modified (write-allocate of a write miss, or
  // a dirty victim cascading down an exclusive hierarchy).
  // Pre-condition: the line is not already present (checked in debug).
  FillResult fill(LineAddr line, bool prefetched = false, bool dirty = false);

  // Remove `line` if present; returns true when it was.  `was_dirty`, if
  // non-null, reports whether the removed copy needed a writeback.
  bool invalidate(LineAddr line, bool* was_dirty = nullptr);

  // --- Geometry and introspection -----------------------------------------
  const CacheGeometry& geometry() const { return geom_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t ways() const { return geom_.ways; }
  std::uint64_t set_of(LineAddr line) const { return line & set_mask_; }
  std::uint64_t bank_of(std::uint64_t set) const { return set & bank_mask_; }

  // Iterate the valid lines of one set (used by ReDHiP recalibration, which
  // reads the tag array set-by-set).
  void for_each_valid_in_set(std::uint64_t set,
                             const std::function<void(LineAddr)>& fn) const;
  // Iterate every valid line in the array.
  void for_each_valid(const std::function<void(LineAddr)>& fn) const;

  std::uint64_t valid_count() const { return valid_count_; }
  std::uint64_t valid_count_in_set(std::uint64_t set) const;

  // Whether the resident copy of `line` is dirty (false if absent).
  bool is_dirty(LineAddr line) const;
  // Mark a resident line dirty without touching the replacement order
  // (receiving a writeback is not a use).  Returns false if absent.
  bool mark_dirty(LineAddr line);

 private:
  struct Entry {
    std::uint64_t tag = 0;
    bool valid = false;
    bool prefetched = false;
    bool dirty = false;
  };

  std::uint64_t tag_of(LineAddr line) const { return line >> set_bits_; }
  LineAddr line_of(std::uint64_t set, std::uint64_t tag) const {
    return (tag << set_bits_) | set;
  }
  Entry* set_begin(std::uint64_t set) { return &entries_[set * geom_.ways]; }
  const Entry* set_begin(std::uint64_t set) const {
    return &entries_[set * geom_.ways];
  }

  CacheGeometry geom_;
  std::uint64_t sets_;
  std::uint32_t set_bits_;
  std::uint64_t set_mask_;
  std::uint64_t bank_mask_;
  std::vector<Entry> entries_;
  std::unique_ptr<ReplacementPolicy> repl_;
  std::uint64_t valid_count_ = 0;
};

}  // namespace redhip
