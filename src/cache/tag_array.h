// Set-associative tag array — the structural model of one cache level.
//
// The array tracks only presence (tags + valid bits + a per-line
// "prefetched" mark used by the prefetcher accounting); data contents are
// never modeled, matching the paper's methodology where memory is a perfect
// data store.  All timing and energy accounting lives in the simulator — the
// TagArray reports *events*, it does not price them.
//
// Storage is structure-of-arrays (SoA).  The authoritative state is the
// packed 64-bit entry per way (tag + flags + embedded LRU rank, see below);
// alongside it every way carries a 16-bit *partial tag* in a dense per-set
// lane.  A probe first scans the lane — 16 bytes for an 8-way set, one host
// cache line for anything up to 32 ways — and only touches the 8-byte
// entries of lanes whose partial tag matched.  The common deep-hierarchy
// *miss* (the exact case ReDHiP exists to skip in hardware) therefore costs
// one dense 16-byte load instead of a 64-byte entry sweep, and the AVX-512
// path compares a whole set in a single 16-bit-lane vector op.  The lane is
// derived state: every mutation that changes residency rewrites it, and the
// restore paths (parallel-engine set rewind, checkpoint restore) rebuild it
// from the entries.
#pragma once

#include <cstdint>
#include <bit>
#include <functional>
#include <optional>
#include <vector>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "cache/geometry.h"
#include "common/types.h"

namespace redhip {

class TagArray {
 public:
  struct LookupResult {
    bool hit = false;
    std::uint32_t way = 0;
    bool was_prefetched = false;  // set on the first demand hit to a
                                  // prefetched line (the mark is consumed)
  };

  struct FillResult {
    bool evicted = false;
    std::uint32_t way = 0;               // way the new line landed in
    LineAddr victim = 0;
    bool victim_was_prefetched = false;  // victim evicted with mark intact
                                         // (i.e. a useless prefetch)
    bool victim_was_dirty = false;       // eviction requires a writeback
  };

  // `seed` only matters for ReplacementKind::kRandom.
  explicit TagArray(const CacheGeometry& geom, std::uint64_t seed = 0);

  // The per-access methods below are defined inline (bottom of this header):
  // they are the simulator's hottest instructions — every simulated
  // reference runs several of them — and out-of-line calls plus the virtual
  // replacement-policy dispatch cost more than the tag match itself.  LRU
  // (the paper machine's policy) is dispatched non-virtually.

  // Probe for `line`; on a hit, promotes it in the replacement order and
  // consumes its prefetched mark.  `is_write` marks the line dirty.
  LookupResult lookup(LineAddr line, bool is_write = false);

  // Probe without any state change (used by the Oracle predictor and by
  // invariant checks).
  bool contains(LineAddr line) const;

  // Way index of the resident copy of `line` (no state change); false if
  // absent.  Lets the simulator keep per-slot sideband state (the LLC
  // core-presence directory) without widening the packed entries.
  bool find_way(LineAddr line, std::uint32_t* way) const;

  // Insert `line`; evicts a victim if the set is full.  `prefetched` marks
  // lines installed by the prefetcher rather than a demand access; `dirty`
  // installs the line already modified (write-allocate of a write miss, or
  // a dirty victim cascading down an exclusive hierarchy).
  // Pre-condition: the line is not already present (checked in debug).
  FillResult fill(LineAddr line, bool prefetched = false, bool dirty = false);

  // Fused `contains` + `fill` in a single set scan (the simulator's fill
  // paths previously did both walks back to back).  If the line is already
  // present: optionally dirties it (mark_dirty semantics — no replacement
  // promotion, no prefetched mark) and returns false.  Otherwise fills
  // exactly like fill() and returns true with the eviction outcome in
  // `*out`.
  bool fill_if_absent(LineAddr line, bool prefetched, bool dirty,
                      FillResult* out);

  // Remove `line` if present; returns true when it was.  `was_dirty`, if
  // non-null, reports whether the removed copy needed a writeback.
  bool invalidate(LineAddr line, bool* was_dirty = nullptr);

  // Hint that `line`'s set is about to be probed: pull its partial-tag lane
  // (what a miss touches) and entry words (what a hit touches) toward the
  // host caches.  Pure performance hint — no simulated state changes, so the
  // fast engine's software pipeline may issue it speculatively without
  // affecting bit-identity with the reference engine.
  void prefetch_line(LineAddr line) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::uint64_t i = (line & set_mask_) * geom_.ways;
    __builtin_prefetch(&ptags_[i], 0, 3);
    __builtin_prefetch(&entries_[i], 0, 2);
#else
    (void)line;
#endif
  }

  // --- Geometry and introspection -----------------------------------------
  const CacheGeometry& geometry() const { return geom_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t ways() const { return geom_.ways; }
  std::uint64_t set_of(LineAddr line) const { return line & set_mask_; }
  std::uint64_t bank_of(std::uint64_t set) const { return set & bank_mask_; }

  // Iterate the valid lines of one set (used by ReDHiP recalibration, which
  // reads the tag array set-by-set).  The templated form avoids the
  // std::function indirection on the recalibration path.
  template <typename Fn>
  void visit_valid_in_set(std::uint64_t set, Fn&& fn) const {
    const Entry* e = set_begin(set);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if (e[w] & kValidBit) fn(line_of(set, tag_of_entry(e[w])));
    }
  }
  void for_each_valid_in_set(std::uint64_t set,
                             const std::function<void(LineAddr)>& fn) const;
  // Iterate every valid line in the array.
  void for_each_valid(const std::function<void(LineAddr)>& fn) const;

  std::uint64_t valid_count() const { return valid_count_; }
  std::uint64_t valid_count_in_set(std::uint64_t set) const;

  // Whether the resident copy of `line` is dirty (false if absent).
  bool is_dirty(LineAddr line) const;
  // Mark a resident line dirty without touching the replacement order
  // (receiving a writeback is not a use).  Returns false if absent.
  bool mark_dirty(LineAddr line);

  // Whether every piece of per-set state lives inside the packed entries
  // (LRU with <= 16 ways, the paper machine's configuration).  When true,
  // save_set/restore_set below capture the *complete* state of one set,
  // which is what lets the parallel engine speculate hits on this array and
  // rewind them on a back-invalidation conflict.  Policies with side state
  // (tree-PLRU, NRU, the random policy's RNG) are not self-contained and
  // disable speculation (src/sim/parallel.cc falls back to its weave-only
  // mode).  The partial-tag lane is derived from the entries, so it never
  // needs to be captured — restore_set rebuilds it.
  bool state_is_self_contained() const { return embedded_lru_; }

  // Raw per-set state for the parallel engine's speculation undo log; only
  // meaningful when state_is_self_contained().  `out` must hold ways()
  // words.  The caller may only bracket mutations that preserve residency
  // (hit promotions, dirty marks) — the valid count is not re-derived.  The
  // partial-tag lane is recomputed on restore (a residency-preserving
  // bracket leaves it unchanged, but rebuilding is cheap and keeps the
  // lane-mirrors-entries invariant unconditional).
  void save_set(std::uint64_t set, std::uint64_t* out) const {
    const Entry* e = set_begin(set);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) out[w] = e[w];
  }
  void restore_set(std::uint64_t set, const std::uint64_t* saved) {
    Entry* e = set_begin(set);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) e[w] = saved[w];
    rebuild_lane(set);
  }

  // Whole-array snapshot for checkpoint/restore — the array-granularity
  // sibling of save_set/restore_set, under the same gate: the packed
  // entries are the *complete* state only when state_is_self_contained()
  // (src/ckpt refuses to checkpoint otherwise).  Restore recounts the
  // valid-line tally from the valid bits rather than trusting the caller,
  // and rebuilds the derived partial-tag lanes.
  const std::vector<std::uint64_t>& ckpt_entries() const { return entries_; }
  bool ckpt_restore_entries(const std::vector<std::uint64_t>& entries) {
    if (entries.size() != entries_.size()) return false;
    entries_ = entries;
    valid_count_ = 0;
    for (std::uint64_t e : entries_) valid_count_ += e & kValidBit;
    for (std::uint64_t s = 0; s < sets_; ++s) rebuild_lane(s);
    return true;
  }

 private:
  // One way, packed into a single word: bit 0 valid, bit 1 prefetched,
  // bit 2 dirty, bits 3..59 the tag, bits 60..63 the line's LRU rank (only
  // used when the policy is LRU with <= 16 ways — see `embedded_lru_`).  A
  // tag fits 57 bits: with >= 64B lines that covers byte addresses past
  // 2^63, so the shift never overflows in practice.
  using Entry = std::uint64_t;
  static constexpr Entry kValidBit = 1;
  static constexpr Entry kPrefetchedBit = 2;
  static constexpr Entry kDirtyBit = 4;
  static constexpr std::uint32_t kRankShift = 60;
  static constexpr Entry kRankMask = Entry{0xF} << kRankShift;
  static constexpr Entry kRankInc = Entry{1} << kRankShift;
  // Clearing the don't-care bits (flags + rank) leaves `(tag << 3) | valid`
  // — one mask + compare decides "valid match" for the whole entry.  For
  // policies that keep their state outside the entry the rank nibble is
  // always zero, so the same mask is correct everywhere.
  static constexpr Entry kMatchMask =
      ~(kPrefetchedBit | kDirtyBit | kRankMask);

  // The dense per-way sideband: bit 15 is the valid bit (a lane word is
  // zero exactly when the way is invalid), bits 0..14 an xor-fold of the
  // full tag.  The fold covers every tag bit, so two tags that collide in
  // the lane are rare regardless of the access stride — and a collision
  // only costs one extra entry-word verify, never correctness.
  using PTag = std::uint16_t;
  static constexpr PTag kPTagValidBit = PTag{1} << 15;
  static constexpr std::uint32_t kNoWay = ~0u;

  static PTag ptag_of(std::uint64_t tag) {
    const std::uint64_t h = tag ^ (tag >> 15) ^ (tag >> 30) ^ (tag >> 45);
    return static_cast<PTag>((h & 0x7FFF) | kPTagValidBit);
  }

#if defined(__AVX512F__) && defined(__AVX512BW__)
  // Bitmask (lane i -> bit i) of the n <= 64 lane words equal to `pwant`:
  // a 32-way block is one masked 16-bit-lane compare.
  static std::uint64_t lane_eq_mask(const PTag* lane, std::uint32_t n,
                                    PTag pwant) {
    std::uint64_t bits = 0;
    const __m512i vwant = _mm512_set1_epi16(static_cast<short>(pwant));
    for (std::uint32_t base = 0; base < n; base += 32) {
      const std::uint32_t k = n - base;
      const __mmask32 lanes = k >= 32 ? static_cast<__mmask32>(~0u)
                                      : static_cast<__mmask32>((1u << k) - 1);
      const __m512i v = _mm512_maskz_loadu_epi16(lanes, lane + base);
      bits |= static_cast<std::uint64_t>(
                  _mm512_mask_cmpeq_epi16_mask(lanes, v, vwant))
              << base;
    }
    return bits;
  }
#endif

  // Way index of the valid resident copy of the line with partial tag
  // `pwant` and masked entry `want`, or kNoWay.  The lane scan yields
  // candidate ways; each candidate is verified against its packed entry in
  // way order.  Tags are unique within a set (fills check absence first),
  // so at most one candidate verifies and the result equals the old
  // full-entry scan's lowest-way match.  A definite miss (no lane match)
  // never touches the entries at all.  The portable fallback keeps the old
  // sweep's early exit — the common hit leaves after MRU-ish few ways — but
  // compares 2-byte lane words and only dereferences an entry on a lane
  // match.
  std::uint32_t match_way(const Entry* e, const PTag* lane, Entry want,
                          PTag pwant) const {
#if defined(__AVX512F__) && defined(__AVX512BW__)
    for (std::uint32_t base = 0; base < geom_.ways; base += 64) {
      const std::uint32_t n =
          geom_.ways - base >= 64 ? 64 : geom_.ways - base;
      std::uint64_t m = lane_eq_mask(lane + base, n, pwant);
      while (m != 0) {
        const std::uint32_t w =
            base + static_cast<std::uint32_t>(std::countr_zero(m));
        if ((e[w] & kMatchMask) == want) return w;
        m &= m - 1;
      }
    }
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if (lane[w] == pwant && (e[w] & kMatchMask) == want) return w;
    }
#endif
    return kNoWay;
  }

  // First invalid way of the set (lane word zero <=> way invalid), or
  // kNoWay when the set is full.  Reproduces the old entry sweep's
  // first-invalid-way choice from the lane alone.
  std::uint32_t first_invalid_way(const PTag* lane) const {
#if defined(__AVX512F__) && defined(__AVX512BW__)
    for (std::uint32_t base = 0; base < geom_.ways; base += 64) {
      const std::uint32_t n =
          geom_.ways - base >= 64 ? 64 : geom_.ways - base;
      const std::uint64_t m = lane_eq_mask(lane + base, n, PTag{0});
      if (m != 0) {
        return base + static_cast<std::uint32_t>(std::countr_zero(m));
      }
    }
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if (lane[w] == 0) return w;
    }
#endif
    return kNoWay;
  }

  // Fused resident-probe + first-invalid-way in one set scan (the fill
  // paths need both).  Returns the resident way (in which case `*inv` is
  // meaningless — the caller never fills) or kNoWay with `*inv` the first
  // invalid way / kNoWay.  Same way-order semantics as calling match_way
  // then first_invalid_way.
  std::uint32_t probe_or_invalid(const Entry* e, const PTag* lane,
                                 Entry want, PTag pwant,
                                 std::uint32_t* inv) const {
    std::uint32_t inv_w = kNoWay;
#if defined(__AVX512F__) && defined(__AVX512BW__)
    for (std::uint32_t base = 0; base < geom_.ways; base += 64) {
      const std::uint32_t n =
          geom_.ways - base >= 64 ? 64 : geom_.ways - base;
      std::uint64_t m = lane_eq_mask(lane + base, n, pwant);
      while (m != 0) {
        const std::uint32_t w =
            base + static_cast<std::uint32_t>(std::countr_zero(m));
        if ((e[w] & kMatchMask) == want) return w;
        m &= m - 1;
      }
      if (inv_w == kNoWay) {
        const std::uint64_t z = lane_eq_mask(lane + base, n, PTag{0});
        if (z != 0) {
          inv_w = base + static_cast<std::uint32_t>(std::countr_zero(z));
        }
      }
    }
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if (lane[w] == pwant && (e[w] & kMatchMask) == want) return w;
      if (inv_w == kNoWay && lane[w] == 0) inv_w = w;
    }
#endif
    *inv = inv_w;
    return kNoWay;
  }

  static Entry pack(std::uint64_t tag, bool prefetched, bool dirty) {
    return (tag << 3) | (prefetched ? kPrefetchedBit : 0) |
           (dirty ? kDirtyBit : 0) | kValidBit;
  }
  static std::uint64_t tag_of_entry(Entry e) { return (e & kMatchMask) >> 3; }

  std::uint64_t tag_of(LineAddr line) const { return line >> set_bits_; }
  LineAddr line_of(std::uint64_t set, std::uint64_t tag) const {
    return (tag << set_bits_) | set;
  }
  Entry* set_begin(std::uint64_t set) { return &entries_[set * geom_.ways]; }
  const Entry* set_begin(std::uint64_t set) const {
    return &entries_[set * geom_.ways];
  }
  PTag* lane_begin(std::uint64_t set) { return &ptags_[set * geom_.ways]; }
  const PTag* lane_begin(std::uint64_t set) const {
    return &ptags_[set * geom_.ways];
  }

  // Recompute one set's partial-tag lane from its entries (the restore
  // paths' half of the lane-mirrors-entries invariant).
  void rebuild_lane(std::uint64_t set) {
    const Entry* e = set_begin(set);
    PTag* lane = lane_begin(set);
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      lane[w] =
          (e[w] & kValidBit) ? ptag_of(tag_of_entry(e[w])) : PTag{0};
    }
  }

  // Entry-embedded LRU: ranks live in the top nibble of the entries the
  // caller has already loaded.  Behaviour is exactly LruPolicy's
  // touch_inline/victim_inline (same promotions, same first-max tie-break,
  // same way-index initial ranks); only the storage moved.
  void touch_embedded(Entry* e, std::uint32_t way) {
    const Entry old = e[way] & kRankMask;
    if (old == 0) return;
#if defined(__AVX512F__)
    // Branchless promote: increment every rank below `old` in one masked
    // add per 8 ways.  Same additions as the scalar loop, so the rank
    // permutation evolves identically.
    const __m512i vrank = _mm512_set1_epi64(static_cast<long long>(kRankMask));
    const __m512i vold = _mm512_set1_epi64(static_cast<long long>(old));
    const __m512i vinc = _mm512_set1_epi64(static_cast<long long>(kRankInc));
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      const __mmask8 lanes =
          n >= 8 ? static_cast<__mmask8>(0xFF)
                 : static_cast<__mmask8>((1u << n) - 1);
      const __m512i v = _mm512_maskz_loadu_epi64(lanes, e + base);
      const __mmask8 lt = _mm512_mask_cmplt_epu64_mask(
          lanes, _mm512_and_si512(v, vrank), vold);
      _mm512_mask_storeu_epi64(e + base, lt,
                               _mm512_add_epi64(v, vinc));
    }
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if ((e[w] & kRankMask) < old) e[w] += kRankInc;
    }
#endif
    e[way] &= ~kRankMask;
  }
  std::uint32_t victim_embedded(const Entry* e) const {
    // The ranks of a set are a permutation of 0..ways-1 (initialized that
    // way; touch_embedded preserves it, invalidate keeps the nibble), so
    // the LRU victim is exactly the way whose rank equals ways-1 — a
    // compare-equal scan, and being unique it trivially matches the scalar
    // first-max tie-break.
    const Entry max_r = Entry{geom_.ways - 1} << kRankShift;
#if defined(__AVX512F__)
    const __m512i vrank = _mm512_set1_epi64(static_cast<long long>(kRankMask));
    const __m512i vmax = _mm512_set1_epi64(static_cast<long long>(max_r));
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      const __mmask8 lanes =
          n >= 8 ? static_cast<__mmask8>(0xFF)
                 : static_cast<__mmask8>((1u << n) - 1);
      const __mmask8 eq = _mm512_mask_cmpeq_epu64_mask(
          lanes,
          _mm512_and_si512(_mm512_maskz_loadu_epi64(lanes, e + base), vrank),
          vmax);
      if (eq != 0) return base + static_cast<std::uint32_t>(__builtin_ctz(eq));
    }
    return 0;  // unreachable while the permutation invariant holds
#else
    for (std::uint32_t w = 0;; ++w) {
      if ((e[w] & kRankMask) == max_r || w + 1 == geom_.ways) return w;
    }
#endif
  }

  // Promote the way a fill just evicted into: the victim held the maximum
  // rank, so every other way's rank is strictly below it and the promote
  // degenerates to an unconditional increment of the others (no compare).
  void touch_evicted_embedded(Entry* e, std::uint32_t way) {
#if defined(__AVX512F__)
    const __m512i vinc = _mm512_set1_epi64(static_cast<long long>(kRankInc));
    for (std::uint32_t base = 0; base < geom_.ways; base += 8) {
      const std::uint32_t n = geom_.ways - base;
      std::uint32_t lanes = n >= 8 ? 0xFFu : (1u << n) - 1;
      if (way - base < 8) lanes &= ~(1u << (way - base));
      const __mmask8 m = static_cast<__mmask8>(lanes);
      _mm512_mask_storeu_epi64(
          e + base, m,
          _mm512_add_epi64(_mm512_maskz_loadu_epi64(m, e + base), vinc));
    }
#else
    for (std::uint32_t w = 0; w < geom_.ways; ++w) {
      if (w != way) e[w] += kRankInc;
    }
#endif
    e[way] &= ~kRankMask;
  }

  // Promote (set, way) in the replacement order.  The paper machine is LRU
  // at every level, so the embedded-rank path is the common case; wide-LRU
  // (> 16 ways) still uses LruPolicy's side array non-virtually, everything
  // else pays the virtual dispatch.
  void repl_touch(Entry* e, std::uint64_t set, std::uint32_t way) {
    if (embedded_lru_) {
      touch_embedded(e, way);
    } else if (lru_ != nullptr) {
      lru_->touch_inline(set, way);
    } else {
      repl_->touch(set, way);
    }
  }
  std::uint32_t repl_victim(const Entry* e, std::uint64_t set) {
    if (embedded_lru_) return victim_embedded(e);
    if (lru_ != nullptr) return lru_->victim_inline(set);
    return repl_->victim(set);
  }
  // Promote a way repl_victim just returned (see touch_evicted_embedded);
  // identical promotion to repl_touch, cheaper on the embedded path.
  void repl_touch_evicted(Entry* e, std::uint64_t set, std::uint32_t way) {
    if (embedded_lru_) {
      touch_evicted_embedded(e, way);
    } else if (lru_ != nullptr) {
      lru_->touch_inline(set, way);
    } else {
      repl_->touch(set, way);
    }
  }

  CacheGeometry geom_;
  std::uint64_t sets_;
  std::uint32_t set_bits_;
  std::uint64_t set_mask_;
  std::uint64_t bank_mask_;
  std::vector<Entry> entries_;
  std::vector<PTag> ptags_;  // derived partial-tag lanes, see rebuild_lane()
  std::unique_ptr<ReplacementPolicy> repl_;
  LruPolicy* lru_ = nullptr;  // repl_ downcast when the policy is LRU
  bool embedded_lru_ = false;  // LRU with <= 16 ways: ranks in the entries
  std::uint64_t valid_count_ = 0;
};

// --------------------------------------------------------------------------
// Inline hot path.  Identical behaviour to the original out-of-line
// definitions — only the call overhead and the entry padding are gone.
// --------------------------------------------------------------------------

inline TagArray::LookupResult TagArray::lookup(LineAddr line, bool is_write) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  Entry* e = set_begin(set);
  const std::uint32_t w = match_way(e, lane_begin(set), want, ptag_of(tag));
  if (w == kNoWay) return {};
  LookupResult r{true, w, (e[w] & kPrefetchedBit) != 0};
  e[w] &= ~kPrefetchedBit;
  if (is_write) e[w] |= kDirtyBit;
  repl_touch(e, set, w);
  return r;
}

inline bool TagArray::contains(LineAddr line) const {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  return match_way(set_begin(set), lane_begin(set), want, ptag_of(tag)) !=
         kNoWay;
}

inline bool TagArray::find_way(LineAddr line, std::uint32_t* way) const {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  const std::uint32_t w =
      match_way(set_begin(set), lane_begin(set), want, ptag_of(tag));
  if (w == kNoWay) return false;
  *way = w;
  return true;
}

inline TagArray::FillResult TagArray::fill(LineAddr line, bool prefetched,
                                           bool dirty) {
  REDHIP_DCHECK(!contains(line));
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Entry* e = set_begin(set);
  PTag* lane = lane_begin(set);
  // Prefer an invalid way (known from the lane alone).  Overwrites keep the
  // rank nibble — replacement state belongs to the way, not to the line
  // occupying it.
  const std::uint32_t inv = first_invalid_way(lane);
  FillResult r;
  std::uint32_t w;
  if (inv != kNoWay) {
    w = inv;
    ++valid_count_;
    r.way = w;
    e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
    lane[w] = ptag_of(tag);
    repl_touch(e, set, w);
  } else {
    w = repl_victim(e, set);
    r.evicted = true;
    r.victim = line_of(set, tag_of_entry(e[w]));
    r.victim_was_prefetched = (e[w] & kPrefetchedBit) != 0;
    r.victim_was_dirty = (e[w] & kDirtyBit) != 0;
    r.way = w;
    e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
    lane[w] = ptag_of(tag);
    repl_touch_evicted(e, set, w);
  }
  return r;
}

inline bool TagArray::fill_if_absent(LineAddr line, bool prefetched,
                                     bool dirty, FillResult* out) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  const PTag pwant = ptag_of(tag);
  Entry* e = set_begin(set);
  PTag* lane = lane_begin(set);
  std::uint32_t inv = kNoWay;
  const std::uint32_t resident = probe_or_invalid(e, lane, want, pwant, &inv);
  if (resident != kNoWay) {
    // Already present: receiving a duplicate fill is not a use, so the
    // replacement order is untouched (mark_dirty semantics).
    if (dirty) e[resident] |= kDirtyBit;
    return false;
  }
  std::uint32_t w;
  if (inv != kNoWay) {
    w = inv;
    ++valid_count_;
    *out = {};
    out->way = w;
    e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
    lane[w] = pwant;
    repl_touch(e, set, w);
  } else {
    w = repl_victim(e, set);
    out->evicted = true;
    out->way = w;
    out->victim = line_of(set, tag_of_entry(e[w]));
    out->victim_was_prefetched = (e[w] & kPrefetchedBit) != 0;
    out->victim_was_dirty = (e[w] & kDirtyBit) != 0;
    e[w] = (e[w] & kRankMask) | pack(tag, prefetched, dirty);
    lane[w] = pwant;
    repl_touch_evicted(e, set, w);
  }
  return true;
}

inline bool TagArray::invalidate(LineAddr line, bool* was_dirty) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  Entry* e = set_begin(set);
  PTag* lane = lane_begin(set);
  const std::uint32_t w = match_way(e, lane, want, ptag_of(tag));
  if (w == kNoWay) return false;
  if (was_dirty != nullptr) *was_dirty = (e[w] & kDirtyBit) != 0;
  // Clear everything but the rank nibble: LruPolicy never learns about
  // invalidations either, so the way keeps its place in the LRU order.
  e[w] &= kRankMask;
  lane[w] = 0;
  --valid_count_;
  return true;
}

inline bool TagArray::mark_dirty(LineAddr line) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  Entry* e = set_begin(set);
  const std::uint32_t w = match_way(e, lane_begin(set), want, ptag_of(tag));
  if (w == kNoWay) return false;
  e[w] |= kDirtyBit;
  return true;
}

inline bool TagArray::is_dirty(LineAddr line) const {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry want = (tag << 3) | kValidBit;
  const Entry* e = set_begin(set);
  const std::uint32_t w = match_way(e, lane_begin(set), want, ptag_of(tag));
  return w != kNoWay && (e[w] & kDirtyBit) != 0;
}

}  // namespace redhip
