// Replacement policies for set-associative tag arrays.
//
// The paper's hierarchy uses LRU; the other policies exist for the
// replacement-policy ablation bench and to demonstrate the TagArray's
// pluggable design.  A policy owns all of its per-set state; the TagArray
// calls `touch` on hits and fills and asks for a `victim` only when the set
// is full (invalid ways are always preferred by the TagArray itself).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace redhip {

enum class ReplacementKind : std::uint8_t {
  kLru,       // true LRU via per-way ranks
  kTreePlru,  // tree pseudo-LRU (binary decision tree per set)
  kNru,       // not-recently-used (single reference bit per way)
  kRandom,    // uniform random victim
};

std::string to_string(ReplacementKind kind);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  // Called when `way` of `set` is accessed (hit) or filled.
  virtual void touch(std::uint64_t set, std::uint32_t way) = 0;
  // Choose a victim way in a full set.
  virtual std::uint32_t victim(std::uint64_t set) = 0;

  virtual ReplacementKind kind() const = 0;

  static std::unique_ptr<ReplacementPolicy> create(ReplacementKind kind,
                                                   std::uint64_t sets,
                                                   std::uint32_t ways,
                                                   std::uint64_t seed);
};

// True LRU.  Per (set, way) an 8-bit rank: 0 = most recent.  touch() promotes
// a way to rank 0 and ages only the ways that were more recent than it, so
// ranks remain a permutation of [0, ways).
//
// touch()/victim() are inline (and have non-virtual equivalents) because LRU
// is the paper machine's policy and these sit on the simulator's hottest
// path; TagArray calls them directly when the configured policy is LRU.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint64_t sets, std::uint32_t ways);

  void touch_inline(std::uint64_t set, std::uint32_t way) {
    std::uint8_t* r = &rank_[set * ways_];
    const std::uint8_t old = r[way];
    // Re-touching the MRU way is a no-op (no rank is below 0), and repeated
    // hits to the same line are the single most common access pattern.
    if (old == 0) return;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (r[w] < old) ++r[w];
    }
    r[way] = 0;
  }
  std::uint32_t victim_inline(std::uint64_t set) const {
    const std::uint8_t* r = &rank_[set * ways_];
    std::uint32_t worst = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
      if (r[w] > r[worst]) worst = w;
    }
    return worst;
  }

  void touch(std::uint64_t set, std::uint32_t way) override {
    touch_inline(set, way);
  }
  std::uint32_t victim(std::uint64_t set) override { return victim_inline(set); }
  ReplacementKind kind() const override { return ReplacementKind::kLru; }

  // Exposed for tests: current rank of a way (0 = MRU).
  std::uint8_t rank(std::uint64_t set, std::uint32_t way) const;

 private:
  std::uint32_t ways_;
  std::vector<std::uint8_t> rank_;  // sets * ways
};

// Tree pseudo-LRU: ways must be a power of two; one bit per internal node of
// a complete binary tree (ways - 1 bits per set, stored in a uint32).
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  TreePlruPolicy(std::uint64_t sets, std::uint32_t ways);
  void touch(std::uint64_t set, std::uint32_t way) override;
  std::uint32_t victim(std::uint64_t set) override;
  ReplacementKind kind() const override { return ReplacementKind::kTreePlru; }

 private:
  std::uint32_t ways_;
  std::uint32_t levels_;
  std::vector<std::uint32_t> bits_;  // one word per set
};

// NRU: one reference bit per way; victim = lowest-index way with a clear
// bit; when all are set, all bits (except the touched way on the triggering
// access) are cleared.
class NruPolicy final : public ReplacementPolicy {
 public:
  NruPolicy(std::uint64_t sets, std::uint32_t ways);
  void touch(std::uint64_t set, std::uint32_t way) override;
  std::uint32_t victim(std::uint64_t set) override;
  ReplacementKind kind() const override { return ReplacementKind::kNru; }

 private:
  std::uint32_t ways_;
  std::vector<std::uint32_t> ref_bits_;  // bitmask per set
};

// Random replacement with a deterministic, seeded generator.
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t ways, std::uint64_t seed);
  void touch(std::uint64_t set, std::uint32_t way) override;
  std::uint32_t victim(std::uint64_t set) override;
  ReplacementKind kind() const override { return ReplacementKind::kRandom; }

 private:
  std::uint32_t ways_;
  Xoshiro256 rng_;
};

}  // namespace redhip
