#include "cache/tag_array.h"

#include "common/check.h"

namespace redhip {

TagArray::TagArray(const CacheGeometry& geom, std::uint64_t seed)
    : geom_(geom) {
  geom_.validate();
  sets_ = geom_.sets();
  set_bits_ = geom_.set_bits();
  set_mask_ = sets_ - 1;
  bank_mask_ = geom_.banks - 1;
  entries_.resize(sets_ * geom_.ways);
  repl_ = ReplacementPolicy::create(geom_.replacement, sets_, geom_.ways, seed);
}

TagArray::LookupResult TagArray::lookup(LineAddr line, bool is_write) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Entry* e = set_begin(set);
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (e[w].valid && e[w].tag == tag) {
      repl_->touch(set, w);
      LookupResult r{true, w, e[w].prefetched};
      e[w].prefetched = false;
      if (is_write) e[w].dirty = true;
      return r;
    }
  }
  return {};
}

bool TagArray::contains(LineAddr line) const {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry* e = set_begin(set);
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (e[w].valid && e[w].tag == tag) return true;
  }
  return false;
}

TagArray::FillResult TagArray::fill(LineAddr line, bool prefetched,
                                    bool dirty) {
  REDHIP_DCHECK(!contains(line));
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Entry* e = set_begin(set);
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (!e[w].valid) {
      e[w] = {tag, true, prefetched, dirty};
      repl_->touch(set, w);
      ++valid_count_;
      return {};
    }
  }
  const std::uint32_t w = repl_->victim(set);
  FillResult r;
  r.evicted = true;
  r.victim = line_of(set, e[w].tag);
  r.victim_was_prefetched = e[w].prefetched;
  r.victim_was_dirty = e[w].dirty;
  e[w] = {tag, true, prefetched, dirty};
  repl_->touch(set, w);
  return r;
}

bool TagArray::invalidate(LineAddr line, bool* was_dirty) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Entry* e = set_begin(set);
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (e[w].valid && e[w].tag == tag) {
      if (was_dirty != nullptr) *was_dirty = e[w].dirty;
      e[w].valid = false;
      e[w].prefetched = false;
      e[w].dirty = false;
      --valid_count_;
      return true;
    }
  }
  return false;
}

bool TagArray::mark_dirty(LineAddr line) {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Entry* e = set_begin(set);
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (e[w].valid && e[w].tag == tag) {
      e[w].dirty = true;
      return true;
    }
  }
  return false;
}

bool TagArray::is_dirty(LineAddr line) const {
  const std::uint64_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  const Entry* e = set_begin(set);
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (e[w].valid && e[w].tag == tag) return e[w].dirty;
  }
  return false;
}

void TagArray::for_each_valid_in_set(
    std::uint64_t set, const std::function<void(LineAddr)>& fn) const {
  const Entry* e = set_begin(set);
  for (std::uint32_t w = 0; w < geom_.ways; ++w) {
    if (e[w].valid) fn(line_of(set, e[w].tag));
  }
}

void TagArray::for_each_valid(const std::function<void(LineAddr)>& fn) const {
  for (std::uint64_t s = 0; s < sets_; ++s) for_each_valid_in_set(s, fn);
}

std::uint64_t TagArray::valid_count_in_set(std::uint64_t set) const {
  const Entry* e = set_begin(set);
  std::uint64_t n = 0;
  for (std::uint32_t w = 0; w < geom_.ways; ++w) n += e[w].valid ? 1 : 0;
  return n;
}

}  // namespace redhip
