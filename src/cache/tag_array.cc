#include "cache/tag_array.h"

#include "common/check.h"

namespace redhip {

TagArray::TagArray(const CacheGeometry& geom, std::uint64_t seed)
    : geom_(geom) {
  geom_.validate();
  sets_ = geom_.sets();
  set_bits_ = geom_.set_bits();
  set_mask_ = sets_ - 1;
  bank_mask_ = geom_.banks - 1;
  entries_.resize(sets_ * geom_.ways);
  // All ways start invalid: a zero lane word is exactly the invalid
  // encoding, so value-initialization establishes the lane invariant.
  ptags_.resize(sets_ * geom_.ways);
  repl_ = ReplacementPolicy::create(geom_.replacement, sets_, geom_.ways, seed);
  lru_ = dynamic_cast<LruPolicy*>(repl_.get());
  embedded_lru_ = lru_ != nullptr && geom_.ways <= 16;
  if (embedded_lru_) {
    // Mirror LruPolicy's initial order (rank == way index, way 0 MRU) in
    // the entries' rank nibbles; the side policy object goes unused.
    for (std::uint64_t s = 0; s < sets_; ++s) {
      Entry* e = set_begin(s);
      for (std::uint32_t w = 0; w < geom_.ways; ++w) {
        e[w] = Entry{w} << kRankShift;
      }
    }
  }
}

void TagArray::for_each_valid_in_set(
    std::uint64_t set, const std::function<void(LineAddr)>& fn) const {
  visit_valid_in_set(set, fn);
}

void TagArray::for_each_valid(const std::function<void(LineAddr)>& fn) const {
  for (std::uint64_t s = 0; s < sets_; ++s) for_each_valid_in_set(s, fn);
}

std::uint64_t TagArray::valid_count_in_set(std::uint64_t set) const {
  const Entry* e = set_begin(set);
  std::uint64_t n = 0;
  for (std::uint32_t w = 0; w < geom_.ways; ++w) n += e[w] & kValidBit;
  return n;
}

}  // namespace redhip
