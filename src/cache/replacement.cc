#include "cache/replacement.h"

#include "common/bitops.h"
#include "common/check.h"

namespace redhip {

std::string to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru:
      return "lru";
    case ReplacementKind::kTreePlru:
      return "tree-plru";
    case ReplacementKind::kNru:
      return "nru";
    case ReplacementKind::kRandom:
      return "random";
  }
  return "unknown";
}

std::unique_ptr<ReplacementPolicy> ReplacementPolicy::create(
    ReplacementKind kind, std::uint64_t sets, std::uint32_t ways,
    std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kTreePlru:
      return std::make_unique<TreePlruPolicy>(sets, ways);
    case ReplacementKind::kNru:
      return std::make_unique<NruPolicy>(sets, ways);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
  }
  REDHIP_CHECK_MSG(false, "unreachable replacement kind");
  return nullptr;
}

// ---------------------------------------------------------------- LruPolicy

LruPolicy::LruPolicy(std::uint64_t sets, std::uint32_t ways)
    : ways_(ways), rank_(sets * ways) {
  REDHIP_CHECK(ways >= 1 && ways <= 255);
  // Initialize each set to ranks [0 .. ways): way 0 is MRU, last way is LRU.
  for (std::uint64_t s = 0; s < sets; ++s) {
    for (std::uint32_t w = 0; w < ways; ++w) {
      rank_[s * ways + w] = static_cast<std::uint8_t>(w);
    }
  }
}

std::uint8_t LruPolicy::rank(std::uint64_t set, std::uint32_t way) const {
  return rank_[set * ways_ + way];
}

// ----------------------------------------------------------- TreePlruPolicy

TreePlruPolicy::TreePlruPolicy(std::uint64_t sets, std::uint32_t ways)
    : ways_(ways), levels_(log2_exact(ways)), bits_(sets, 0) {
  REDHIP_CHECK_MSG(ways >= 2 && ways <= 32, "tree PLRU needs 2..32 ways");
}

void TreePlruPolicy::touch(std::uint64_t set, std::uint32_t way) {
  // Walk root -> leaf; at each node flip the bit to point *away* from the
  // touched way.  Node numbering: root = 1, children of n are 2n, 2n+1.
  std::uint32_t node = 1;
  std::uint32_t word = bits_[set];
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t bit = (way >> (levels_ - 1 - level)) & 1u;
    if (bit) {
      word &= ~(1u << node);  // went right; point left
    } else {
      word |= (1u << node);  // went left; point right
    }
    node = node * 2 + bit;
  }
  bits_[set] = word;
}

std::uint32_t TreePlruPolicy::victim(std::uint64_t set) {
  std::uint32_t node = 1;
  std::uint32_t way = 0;
  const std::uint32_t word = bits_[set];
  for (std::uint32_t level = 0; level < levels_; ++level) {
    const std::uint32_t bit = (word >> node) & 1u;
    way = (way << 1) | bit;
    node = node * 2 + bit;
  }
  return way;
}

// ---------------------------------------------------------------- NruPolicy

NruPolicy::NruPolicy(std::uint64_t sets, std::uint32_t ways)
    : ways_(ways), ref_bits_(sets, 0) {
  REDHIP_CHECK(ways >= 1 && ways <= 32);
}

void NruPolicy::touch(std::uint64_t set, std::uint32_t way) {
  std::uint32_t& mask = ref_bits_[set];
  mask |= (1u << way);
  const std::uint32_t full = ways_ == 32 ? ~0u : ((1u << ways_) - 1);
  if (mask == full) mask = (1u << way);  // epoch reset, keep current way
}

std::uint32_t NruPolicy::victim(std::uint64_t set) {
  const std::uint32_t mask = ref_bits_[set];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!(mask & (1u << w))) return w;
  }
  return 0;  // unreachable in practice: touch() keeps at least one bit clear
}

// ------------------------------------------------------------- RandomPolicy

RandomPolicy::RandomPolicy(std::uint32_t ways, std::uint64_t seed)
    : ways_(ways), rng_(seed) {
  REDHIP_CHECK(ways >= 1);
}

void RandomPolicy::touch(std::uint64_t, std::uint32_t) {}

std::uint32_t RandomPolicy::victim(std::uint64_t) {
  return static_cast<std::uint32_t>(rng_.below(ways_));
}

}  // namespace redhip
