// Cache geometry: the purely structural parameters of one tag/data array.
#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.h"
#include "common/check.h"
#include "common/types.h"

#include "cache/replacement.h"

namespace redhip {

struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = kDefaultLineBytes;
  std::uint32_t ways = 1;
  // Number of independently accessible banks.  Banking does not change hit
  // behaviour in this model; it bounds the parallelism of ReDHiP
  // recalibration (sets from different banks recalibrate concurrently).
  std::uint32_t banks = 1;
  ReplacementKind replacement = ReplacementKind::kLru;

  std::uint64_t lines() const { return size_bytes / line_bytes; }
  std::uint64_t sets() const { return lines() / ways; }
  std::uint32_t line_shift() const { return log2_exact(line_bytes); }
  std::uint32_t set_bits() const { return log2_exact(sets()); }

  void validate() const {
    REDHIP_CHECK_MSG(size_bytes > 0, "cache size must be positive");
    REDHIP_CHECK_MSG(is_pow2(line_bytes), "line size must be a power of two");
    REDHIP_CHECK_MSG(size_bytes % line_bytes == 0,
                     "size must be a multiple of the line size");
    REDHIP_CHECK_MSG(lines() % ways == 0, "lines must divide evenly into ways");
    REDHIP_CHECK_MSG(is_pow2(sets()), "set count must be a power of two");
    REDHIP_CHECK_MSG(is_pow2(banks), "bank count must be a power of two");
    REDHIP_CHECK_MSG(banks <= sets(), "more banks than sets");
  }
};

}  // namespace redhip
