// ByteWriter / ByteReader — explicit little-endian (de)serialization.
//
// Shared by the sweep result cache (.rdc entries) and the checkpoint codec
// (.ckpt files).  Values are written byte by byte in a fixed order, so a
// payload is a pure function of the logical values — the same on every
// host regardless of native byte order or struct padding.  The reader is
// fail-latching: any out-of-bounds read flips ok() to false and every
// subsequent read returns zero, so deserializers can run to completion and
// check ok() once at the end instead of branching per field.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace redhip {

// Untrusted on-disk lengths are bounded before any allocation so a corrupt
// length field cannot demand gigabytes.  16M elements is far above anything
// either codec legitimately stores per vector.
inline constexpr std::uint64_t kMaxVectorLen = 1u << 24;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
      v = static_cast<std::uint16_t>(v >> 8);
    }
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
      v >>= 8;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    // Word vectors carry the bulk of a checkpoint (tag arrays, table rows),
    // so on a little-endian host the wire format equals the in-memory
    // layout and one memcpy replaces 8 push_backs per word.  The big-endian
    // fallback keeps the format host-independent.
    if constexpr (std::endian::native == std::endian::little) {
      bytes(v.data(), v.size() * sizeof(std::uint64_t));
    } else {
      for (std::uint64_t x : v) u64(x);
    }
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n)
      : data_(data), size_(n) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(data_[pos_++]) << (8 * i));
    }
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > kMaxVectorLen || !need(n)) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    if (n > kMaxVectorLen) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint64_t> v;
    if constexpr (std::endian::native == std::endian::little) {
      if (!need(n * sizeof(std::uint64_t))) return {};
      v.resize(static_cast<std::size_t>(n));
      std::memcpy(v.data(), data_ + pos_, n * sizeof(std::uint64_t));
      pos_ += static_cast<std::size_t>(n) * sizeof(std::uint64_t);
    } else {
      v.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n && ok_; ++i) v.push_back(u64());
    }
    return v;
  }
  bool raw(void* out, std::size_t n) {
    if (!need(n)) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool need(std::uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace redhip
