// Bit-manipulation helpers used by hash functions, tag arrays and the
// prediction table.  All of these are thin wrappers over <bit> with the
// checking we want at configuration time.
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace redhip {

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// log2 of a power of two; checked.
inline std::uint32_t log2_exact(std::uint64_t v) {
  REDHIP_CHECK_MSG(is_pow2(v), "value must be a power of two");
  return static_cast<std::uint32_t>(std::countr_zero(v));
}

constexpr std::uint32_t log2_floor(std::uint64_t v) {
  return v == 0 ? 0 : 63u - static_cast<std::uint32_t>(std::countl_zero(v));
}

constexpr std::uint64_t round_up_pow2(std::uint64_t v) {
  return v <= 1 ? 1 : std::uint64_t{1} << (64 - std::countl_zero(v - 1));
}

// Mask of the n lowest bits (n in [0, 64]).
constexpr std::uint64_t low_mask(std::uint32_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

// Extract bits [lo, lo+n) of v.
constexpr std::uint64_t bits(std::uint64_t v, std::uint32_t lo, std::uint32_t n) {
  return (v >> lo) & low_mask(n);
}

// Fold a 64-bit value down to `width` bits by repeated XOR of width-sized
// chunks — the "xor-hash" of the CBF literature.
inline std::uint64_t xor_fold(std::uint64_t v, std::uint32_t width) {
  REDHIP_CHECK(width > 0 && width <= 64);
  if (width >= 64) return v;
  std::uint64_t h = 0;
  while (v != 0) {
    h ^= v & low_mask(width);
    v >>= width;
  }
  return h;
}

}  // namespace redhip
