// Crash-safe file I/O — atomic writes and the self-validating envelope.
//
// write_file_atomic publishes a file only by renaming a fully-written
// unique temp file into place, so readers (and a process restarted after a
// kill) see either the previous content or the complete new content, never
// a truncated hybrid.  The envelope helpers wrap a payload in the
// magic/version/key/length/checksum discipline the sweep result cache
// introduced (DESIGN.md "Sweep & result cache"); the checkpoint codec
// reuses it verbatim with its own magic.  Anything that fails a check is
// DATA_LOSS: the caller discards and regenerates instead of trusting it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/fnv.h"
#include "common/status.h"

namespace redhip {

// Write `content` to a unique sibling temp file, then rename into place.
// Unique temp names make concurrent writers of the same path safe (last
// rename wins with a complete file either way).
inline Status write_file_atomic(const std::filesystem::path& path,
                                const std::string& content) {
  static std::atomic<std::uint64_t> counter{0};
  std::filesystem::path tmp = path;
  tmp += ".tmp" + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(content.data(),
                           static_cast<std::streamsize>(content.size()))) {
      return Status(StatusCode::kInternal,
                    "atomic write: cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status(StatusCode::kInternal,
                  "atomic write: cannot rename into " + path.string());
  }
  return Status::Ok();
}

// File layout: magic(8) version(4) key(8) payload_len(8) payload
// checksum(8), every multi-byte field little-endian, checksum = FNV-1a of
// the payload bytes.
struct FileEnvelope {
  const char* magic;      // exactly 8 bytes
  std::uint32_t version;  // schema version; mismatch is DATA_LOSS
  const char* what;       // diagnostic prefix, e.g. "sweep cache"
};

inline std::string seal_envelope(const FileEnvelope& env, std::uint64_t key,
                                 const std::string& payload) {
  std::string file;
  file.reserve(8 + 4 + 8 + 8 + payload.size() + 8);
  file.append(env.magic, 8);
  const auto le32 = [&file](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      file += static_cast<char>(v & 0xff);
      v >>= 8;
    }
  };
  const auto le64 = [&file](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      file += static_cast<char>(v & 0xff);
      v >>= 8;
    }
  };
  le32(env.version);
  le64(key);
  le64(payload.size());
  file += payload;
  le64(fnv1a(payload.data(), payload.size()));
  return file;
}

// NOT_FOUND when no file exists; DATA_LOSS (with the failing check named)
// for every other defect.  On success returns the validated payload bytes.
inline Result<std::string> open_envelope(const FileEnvelope& env,
                                         std::uint64_t key,
                                         const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound,
                  std::string(env.what) + ": no entry " + path.string());
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto data_loss = [&env, &path](const std::string& why) {
    return Status(StatusCode::kDataLoss, std::string(env.what) + " entry " +
                                             path.string() + ": " + why);
  };
  constexpr std::size_t kHeader = 8 + 4 + 8 + 8;
  if (file.size() < kHeader + 8) return data_loss("truncated header");
  if (std::memcmp(file.data(), env.magic, 8) != 0) {
    return data_loss("bad magic");
  }
  const auto rd32 = [&file](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(file[at + i]))
           << (8 * i);
    }
    return v;
  };
  const auto rd64 = [&file](std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(file[at + i]))
           << (8 * i);
    }
    return v;
  };
  const std::uint32_t version = rd32(8);
  const std::uint64_t stored_key = rd64(12);
  const std::uint64_t payload_len = rd64(20);
  if (version != env.version) {
    return data_loss("schema version " + std::to_string(version) +
                     " != " + std::to_string(env.version));
  }
  if (stored_key != key) return data_loss("embedded key mismatch");
  if (file.size() != kHeader + payload_len + 8) {
    return data_loss("length mismatch (truncated or padded)");
  }
  std::string payload = file.substr(kHeader, payload_len);
  const std::uint64_t stored_sum = rd64(kHeader + payload_len);
  if (stored_sum != fnv1a(payload.data(), payload.size())) {
    return data_loss("checksum mismatch");
  }
  return payload;
}

}  // namespace redhip
