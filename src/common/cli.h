// Minimal command-line / environment option parsing shared by the bench
// binaries and examples.  Supports `--name value`, `--name=value` and
// `--flag`, plus environment fallbacks (`REDHIP_BENCH_SCALE=4 fig06_...`).
//
// Numeric accessors are strict: the whole value must parse (no trailing
// garbage like `--refs=100x`), unsigned flags reject a sign (std::stoull
// would silently wrap `--refs=-1` to 2^64-1), and every failure is reported
// through the Status error path naming the flag and the offending value —
// never as a bare std::invalid_argument escaping from the std:: parsers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace redhip {

class CliOptions {
 public:
  CliOptions(int argc, char** argv);

  // Value lookup order: command line (last occurrence wins), then
  // environment variable `env_prefix + UPPERCASE(name)`, then the supplied
  // default.
  std::string get(const std::string& name, const std::string& def) const;

  // Status-returning numeric accessors.  An absent flag yields the default;
  // a malformed value yields INVALID_ARGUMENT with a diagnostic of the form
  // `--refs=1e6: expected a decimal integer`.
  Result<std::int64_t> try_get_int(const std::string& name,
                                   std::int64_t def) const;
  // Full-range unsigned 64-bit parse: values up to 2^64-1 (seeds are u64;
  // a signed parse would reject anything above 2^63-1).  A leading '-' or
  // '+' is a usage error, not a silent wraparound.
  Result<std::uint64_t> try_get_uint64(const std::string& name,
                                       std::uint64_t def) const;
  Result<double> try_get_double(const std::string& name, double def) const;

  // Throwing conveniences over the try_* accessors: a malformed value
  // throws std::runtime_error carrying the Status text above, which the
  // bench mains surface as a usage error.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_uint64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;
  bool has(const std::string& name) const;

  // Every command-line occurrence of a repeatable flag, in order (e.g.
  // `sweep --axis workload=mcf --axis table-size=512K,64K`).  Falls back to
  // the single environment value when the flag never appeared on the
  // command line; empty when absent everywhere.
  std::vector<std::string> get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  void set_env_prefix(std::string prefix) { env_prefix_ = std::move(prefix); }

 private:
  std::string program_;
  std::string env_prefix_ = "REDHIP_BENCH_";
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
};

}  // namespace redhip
