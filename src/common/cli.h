// Minimal command-line / environment option parsing shared by the bench
// binaries and examples.  Supports `--name value`, `--name=value` and
// `--flag`, plus environment fallbacks (`REDHIP_BENCH_SCALE=4 fig06_...`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace redhip {

class CliOptions {
 public:
  CliOptions(int argc, char** argv);

  // Value lookup order: command line, then environment variable
  // `env_prefix + UPPERCASE(name)`, then the supplied default.
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  // Full-range unsigned 64-bit parse: values up to 2^64-1 (seeds are u64;
  // std::stoll would throw on anything above 2^63-1).
  std::uint64_t get_uint64(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;
  bool has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  void set_env_prefix(std::string prefix) { env_prefix_ = std::move(prefix); }

 private:
  std::string program_;
  std::string env_prefix_ = "REDHIP_BENCH_";
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace redhip
