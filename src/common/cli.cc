#include "common/cli.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace redhip {
namespace {

std::string to_env_name(const std::string& prefix, const std::string& name) {
  std::string out = prefix;
  for (char c : name) {
    out += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  }
  return out;
}

}  // namespace

CliOptions::CliOptions(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";  // bare flag
    }
  }
}

std::string CliOptions::get(const std::string& name,
                            const std::string& def) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  if (const char* env = std::getenv(to_env_name(env_prefix_, name).c_str())) {
    return env;
  }
  return def;
}

std::int64_t CliOptions::get_int(const std::string& name,
                                 std::int64_t def) const {
  std::string v = get(name, "");
  if (v.empty()) return def;
  return std::stoll(v);
}

std::uint64_t CliOptions::get_uint64(const std::string& name,
                                     std::uint64_t def) const {
  std::string v = get(name, "");
  if (v.empty()) return def;
  return std::stoull(v);
}

double CliOptions::get_double(const std::string& name, double def) const {
  std::string v = get(name, "");
  if (v.empty()) return def;
  return std::stod(v);
}

bool CliOptions::get_bool(const std::string& name, bool def) const {
  std::string v = get(name, "");
  if (v.empty()) return def;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

bool CliOptions::has(const std::string& name) const {
  if (values_.count(name)) return true;
  return std::getenv(to_env_name(env_prefix_, name).c_str()) != nullptr;
}

}  // namespace redhip
