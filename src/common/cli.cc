#include "common/cli.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace redhip {
namespace {

std::string to_env_name(const std::string& prefix, const std::string& name) {
  std::string out = prefix;
  for (char c : name) {
    out += (c == '-') ? '_' : static_cast<char>(std::toupper(c));
  }
  return out;
}

Status bad_value(const std::string& name, const std::string& value,
                 const std::string& why) {
  return Status(StatusCode::kInvalidArgument,
                "--" + name + "=" + value + ": " + why);
}

// Strict integral parse: the whole string, no sign for unsigned types, no
// leading whitespace (std::from_chars already rejects both, but the sign
// case gets its own diagnostic because `--refs=-1` is the classic typo that
// std::stoull would wrap to 2^64-1).
template <typename T>
Result<T> parse_integer(const std::string& name, const std::string& value) {
  if (value.empty()) {
    return bad_value(name, value, "expected a decimal integer");
  }
  if constexpr (!std::is_signed_v<T>) {
    if (value[0] == '-' || value[0] == '+') {
      return bad_value(name, value,
                       "unsigned flag does not accept a sign");
    }
  }
  T out{};
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec == std::errc::result_out_of_range) {
    return bad_value(name, value, "integer out of range");
  }
  if (ec != std::errc() || ptr != end) {
    return bad_value(name, value, "expected a decimal integer");
  }
  return out;
}

}  // namespace

CliOptions::CliOptions(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg].push_back(argv[++i]);
    } else {
      values_[arg].push_back("1");  // bare flag
    }
  }
}

std::string CliOptions::get(const std::string& name,
                            const std::string& def) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second.back();
  if (const char* env = std::getenv(to_env_name(env_prefix_, name).c_str())) {
    return env;
  }
  return def;
}

std::vector<std::string> CliOptions::get_all(const std::string& name) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  if (const char* env = std::getenv(to_env_name(env_prefix_, name).c_str())) {
    return {env};
  }
  return {};
}

Result<std::int64_t> CliOptions::try_get_int(const std::string& name,
                                             std::int64_t def) const {
  const std::string v = get(name, "");
  if (v.empty()) return def;
  return parse_integer<std::int64_t>(name, v);
}

Result<std::uint64_t> CliOptions::try_get_uint64(const std::string& name,
                                                 std::uint64_t def) const {
  const std::string v = get(name, "");
  if (v.empty()) return def;
  return parse_integer<std::uint64_t>(name, v);
}

Result<double> CliOptions::try_get_double(const std::string& name,
                                          double def) const {
  const std::string v = get(name, "");
  if (v.empty()) return def;
  // strtod skips leading whitespace; reject it explicitly so the accepted
  // grammar matches the integer accessors (the value, the whole value).
  if (std::isspace(static_cast<unsigned char>(v[0]))) {
    return bad_value(name, v, "expected a number");
  }
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size()) {
    return bad_value(name, v, "expected a number");
  }
  if (errno == ERANGE) {
    return bad_value(name, v, "number out of range");
  }
  return out;
}

std::int64_t CliOptions::get_int(const std::string& name,
                                 std::int64_t def) const {
  return try_get_int(name, def).value();
}

std::uint64_t CliOptions::get_uint64(const std::string& name,
                                     std::uint64_t def) const {
  return try_get_uint64(name, def).value();
}

double CliOptions::get_double(const std::string& name, double def) const {
  return try_get_double(name, def).value();
}

bool CliOptions::get_bool(const std::string& name, bool def) const {
  std::string v = get(name, "");
  if (v.empty()) return def;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

bool CliOptions::has(const std::string& name) const {
  if (values_.count(name)) return true;
  return std::getenv(to_env_name(env_prefix_, name).c_str()) != nullptr;
}

}  // namespace redhip
