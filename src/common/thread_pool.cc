#include "common/thread_pool.h"

#include "common/check.h"

namespace redhip {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  // A captured error that was never collected via wait_idle() dies here;
  // destructors cannot rethrow.
  shutdown();
}

void ThreadPool::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    REDHIP_CHECK_MSG(!stop_, "ThreadPool::submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::run_phase(const std::function<void(std::size_t)>& fn,
                           std::size_t n) {
  if (n == 0) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    REDHIP_CHECK_MSG(!stop_, "ThreadPool::run_phase after shutdown");
    for (std::size_t i = 0; i < n; ++i) {
      queue_.push([&fn, i] { fn(i); });
    }
    in_flight_ += n;
  }
  cv_.notify_all();
  wait_idle();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      // Letting this escape the thread would std::terminate the process;
      // capture the first failure and keep draining the queue.
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks,
                         std::size_t threads) {
  ThreadPool pool(threads);
  for (auto& t : tasks) pool.submit(std::move(t));
  pool.wait_idle();
}

}  // namespace redhip
