// Status / Result<T> — lightweight, allocation-frugal error propagation.
//
// REDHIP_CHECK throws, which is right for programming errors and config
// validation.  I/O and other environment failures are *expected* at
// production scale (truncated trace files, vanished paths, injected faults)
// and callers need to branch on them without a try/catch at every call
// site.  Status carries a code + a precise human diagnostic; Result<T> is
// Status-or-value.  Both convert to an exception at the boundary where the
// caller genuinely cannot continue (`value()` / `throw_if_error()`), so
// existing throwing call sites keep working unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace redhip {

enum class StatusCode : std::uint8_t {
  kOk,
  kInvalidArgument,     // caller passed something structurally wrong
  kNotFound,            // a named resource does not exist
  kDataLoss,            // bytes are missing or corrupt (truncation, bad magic)
  kFailedPrecondition,  // the operation is illegal in the current state
  kDeadlineExceeded,    // the operation ran past its wall-clock budget
  kInternal,            // everything else
};
std::string to_string(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: trace t.bin: header claims 100 records..." (or "OK").
  std::string to_string() const {
    return ok() ? "OK" : redhip::to_string(code_) + ": " + message_;
  }

  // Exception boundary: no-op when OK, throws std::runtime_error otherwise.
  void throw_if_error() const {
    if (!ok()) throw std::runtime_error(to_string());
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                   // NOLINT
  Result(Status status) : v_(std::move(status)) {             // NOLINT
    if (std::get<Status>(v_).ok()) {
      v_ = Status(StatusCode::kInternal, "Result built from an OK Status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(v_);
  }

  // Throws std::runtime_error when this Result holds an error.
  T& value() & {
    status().throw_if_error();
    return std::get<T>(v_);
  }
  T&& value() && {
    status().throw_if_error();
    return std::get<T>(std::move(v_));
  }

 private:
  std::variant<T, Status> v_;
};

inline std::string to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace redhip
