// Integer fixed-point accumulation of non-memory instruction time.
//
// The paper charges non-memory instructions at each application's average
// CPI.  Multiplying an instruction gap by a floating-point CPI and rounding
// per record would both drift and be platform-sensitive; instead we keep CPI
// in hundredths and carry the remainder exactly, so total time equals
// floor(total_gap * cpi) with zero drift.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace redhip {

class CpiAccumulator {
 public:
  // cpi_centi: cycles-per-instruction * 100 (e.g. 120 means CPI 1.2).
  explicit CpiAccumulator(std::uint32_t cpi_centi) : cpi_centi_(cpi_centi) {
    REDHIP_CHECK_MSG(cpi_centi > 0, "CPI must be positive");
  }

  // Returns the number of whole cycles `instructions` non-memory
  // instructions take, carrying fractional cycles to the next call.
  Cycles advance(std::uint64_t instructions) {
    remainder_centi_ += instructions * cpi_centi_;
    Cycles whole = remainder_centi_ / 100;
    remainder_centi_ %= 100;
    return whole;
  }

  std::uint32_t cpi_centi() const { return cpi_centi_; }
  std::uint64_t remainder_centi() const { return remainder_centi_; }
  // Rewind support for the parallel engine's speculation rollback: restore
  // a remainder previously read via remainder_centi().  Always < 100 after
  // any advance(), so the value round-trips through a byte.
  void set_remainder_centi(std::uint64_t r) {
    REDHIP_DCHECK(r < 100);
    remainder_centi_ = r;
  }

 private:
  std::uint32_t cpi_centi_;
  std::uint64_t remainder_centi_ = 0;
};

}  // namespace redhip
