// Lightweight runtime checking.
//
// REDHIP_CHECK is always on (configuration validation, invariants whose cost
// is negligible).  REDHIP_DCHECK compiles away in NDEBUG builds and guards
// per-access invariants on the simulator hot path (e.g. "a ReDHiP bypass
// never hides a resident line").
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace redhip::internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace redhip::internal

#define REDHIP_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::redhip::internal::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define REDHIP_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr))                                                         \
      ::redhip::internal::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
// Never evaluated (false && short-circuits, and the whole statement folds
// away), but the expression still compiles and its operands count as used —
// a variable referenced only by a DCHECK must not become -Wunused-variable
// in Release.
#define REDHIP_DCHECK(expr)                  \
  do {                                       \
    static_cast<void>(false && (expr));      \
  } while (0)
#else
#define REDHIP_DCHECK(expr) REDHIP_CHECK(expr)
#endif
