#include "common/rng.h"

namespace redhip {

std::uint64_t Xoshiro256::burst(std::uint64_t mean, std::uint64_t max) {
  REDHIP_DCHECK(mean > 0 && max > 0);
  if (mean >= max) return max;
  // Geometric with success probability 1/mean, truncated to [1, max].
  // Implemented by coin flips at ppm precision to stay integer-exact.
  const std::uint32_t stop_ppm =
      static_cast<std::uint32_t>(1'000'000 / mean);
  std::uint64_t len = 1;
  while (len < max && !chance_ppm(stop_ppm == 0 ? 1 : stop_ppm)) ++len;
  return len;
}

}  // namespace redhip
