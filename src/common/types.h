// Core scalar types shared by every module.
//
// Addresses are full 64-bit byte addresses; a `LineAddr` is the byte address
// shifted right by the block-offset width (i.e. a cache-line number).  All
// cycle counts are absolute 64-bit counters; at 3.7 GHz a uint64_t lasts
// ~158 years of simulated time, so overflow is not a practical concern.
#pragma once

#include <cstddef>
#include <cstdint>

namespace redhip {

using Addr = std::uint64_t;      // byte address
using LineAddr = std::uint64_t;  // byte address >> log2(line size)
using Cycles = std::uint64_t;
using CoreId = std::uint32_t;

// The paper fixes 64-byte blocks throughout (Fig. 3: "assuming 64-bytes
// block size").  We keep it configurable in CacheGeometry but default here.
inline constexpr std::uint32_t kDefaultLineBytes = 64;
inline constexpr std::uint32_t kDefaultLineShift = 6;

inline constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v << 10;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v << 20;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v << 30;
}

}  // namespace redhip
