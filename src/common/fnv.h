// Streaming FNV-1a (64-bit) — the content hash behind the sweep result
// cache.  Multi-byte values are fed little-endian byte by byte, explicitly,
// so a digest is a pure function of the logical values — the same on every
// host regardless of its native byte order or struct padding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace redhip {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  Fnv1a& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) mix(p[i]);
    return *this;
  }
  Fnv1a& u8(std::uint8_t v) {
    mix(v);
    return *this;
  }
  Fnv1a& u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      mix(static_cast<unsigned char>(v & 0xff));
      v >>= 8;
    }
    return *this;
  }
  Fnv1a& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix(static_cast<unsigned char>(v & 0xff));
      v >>= 8;
    }
    return *this;
  }
  Fnv1a& f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }
  // Length-prefixed so that consecutive strings can't alias ("ab","c" vs
  // "a","bc").
  Fnv1a& str(const std::string& s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  void mix(unsigned char b) {
    h_ ^= b;
    h_ *= kPrime;
  }
  std::uint64_t h_ = kOffsetBasis;
};

// One-shot convenience for a byte buffer (the cache entry checksum).
inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  return Fnv1a().bytes(data, n).digest();
}

}  // namespace redhip
