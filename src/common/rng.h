// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the workload generators flows through these
// generators so that a (seed, config) pair reproduces a bit-identical trace
// on any platform.  We deliberately avoid std::mt19937/std::*_distribution:
// the engines are standardized but the distributions are not, and identical
// traces across standard libraries is a hard requirement (DESIGN.md
// invariant 5).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace redhip {

// SplitMix64 (Steele, Lea, Flood) — used to seed and to derive independent
// substream seeds from a master seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 (Blackman, Vigna) — the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // A zero state is the single invalid state; SplitMix64 cannot emit four
    // consecutive zeros, so no further handling is needed.
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    REDHIP_DCHECK(bound > 0);
    // 128-bit multiply-shift; the rejection loop runs < 1 extra iteration in
    // expectation for any bound.
    while (true) {
      std::uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    REDHIP_DCHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // Bernoulli(p) with p expressed in parts-per-million — integer-exact.
  bool chance_ppm(std::uint32_t ppm) { return below(1'000'000) < ppm; }

  // Uniform double in [0, 1) — only for reporting, never for trace decisions.
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // Geometric-ish burst length in [1, max] with mean roughly `mean`
  // (integer arithmetic; used for run lengths in generators).
  std::uint64_t burst(std::uint64_t mean, std::uint64_t max);

  // Raw state access for checkpoint/restore.  Restoring a saved state
  // continues the exact output sequence the source generator would have
  // produced — the whole point of checkpointing a stochastic stream.
  struct State {
    std::uint64_t s[4];
  };
  State state() const { return {{s_[0], s_[1], s_[2], s_[3]}}; }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

// Power-law ("Zipf-like") sampler over [0, n): the product-of-uniforms
// trick.  Multiplying k independent uniforms concentrates mass near zero
// with a smooth heavy tail spanning many decades — exactly the reuse-
// distance spectrum real workloads exhibit, which is what populates every
// cache tier (L1 hot fields through LLC-resident medium sets through
// off-chip cold data).  k = 1 is uniform; k = 3..4 is strongly skewed.
// Integer-only, hence bit-reproducible across platforms.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, std::uint32_t k) : n_(n), k_(k) {
    REDHIP_CHECK(n > 0 && k >= 1 && k <= 8);
  }

  std::uint64_t sample(Xoshiro256& rng) const {
    std::uint64_t idx = n_;
    for (std::uint32_t i = 0; i < k_; ++i) {
      // Multiply by a 16-bit uniform fraction; k rounds keep ample
      // precision for any realistic region size.
      idx = (idx * (rng.next() >> 48)) >> 16;
    }
    return idx < n_ ? idx : n_ - 1;
  }

  std::uint64_t size() const { return n_; }
  std::uint32_t skew() const { return k_; }

 private:
  std::uint64_t n_;
  std::uint32_t k_;
};

// Two-tier hot/cold sampler over [0, n): a small hot prefix absorbs a fixed
// fraction of accesses, the rest fall uniformly.  Simpler than ZipfSampler
// when a workload genuinely has one hot structure (e.g. a basis matrix)
// rather than a power-law spectrum.
class HotColdSampler {
 public:
  // hot_fraction_ppm: fraction of the range considered "hot";
  // hot_access_ppm:  fraction of accesses that go to the hot region.
  HotColdSampler(std::uint64_t n, std::uint32_t hot_fraction_ppm,
                 std::uint32_t hot_access_ppm)
      : n_(n),
        hot_n_(static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(n) * hot_fraction_ppm) / 1'000'000)),
        hot_access_ppm_(hot_access_ppm) {
    REDHIP_CHECK(n > 0);
    if (hot_n_ == 0) hot_n_ = 1;
  }

  std::uint64_t sample(Xoshiro256& rng) const {
    if (rng.chance_ppm(hot_access_ppm_)) return rng.below(hot_n_);
    return rng.below(n_);
  }

  std::uint64_t size() const { return n_; }
  std::uint64_t hot_size() const { return hot_n_; }

 private:
  std::uint64_t n_;
  std::uint64_t hot_n_;
  std::uint32_t hot_access_ppm_;
};

}  // namespace redhip
