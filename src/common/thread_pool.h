// A small work-queue thread pool used by the experiment harness to run
// independent simulations concurrently (each simulation is single-threaded
// and deterministic; parallelism across runs never changes results), and by
// the parallel engine to run the per-core bound phases of one simulation
// (see run_phase below and src/sim/parallel.cc).
//
// Error discipline: a task that throws no longer takes the process down
// (an exception escaping a std::thread is std::terminate).  The pool
// captures the first exception, keeps draining the remaining tasks, and
// rethrows it from wait_idle()/run_all() — so a 100-run matrix with one
// poisoned configuration still finishes the other 99 before reporting.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace redhip {

class ThreadPool {
 public:
  // 0 = std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Throws std::logic_error if the pool is shutting down.
  void submit(std::function<void()> task);
  // Block until every submitted task has finished, then rethrow the first
  // task exception (if any) — the queue is fully drained either way.
  void wait_idle();
  // Drain the queue and join every worker.  Idempotent; called by the
  // destructor.  After shutdown, submit() throws.
  void shutdown();

  // Phase/barrier support for intra-run engines: run fn(0), ..., fn(n-1)
  // as one batch and block until every call has finished (a barrier).  The
  // batch is enqueued under a single lock acquisition with one wakeup
  // broadcast — an engine issuing thousands of phases per run cares about
  // per-phase overhead, not just per-task overhead.  `fn` must tolerate
  // concurrent invocations with distinct indices.  Rethrows the first task
  // exception after the phase drains, like wait_idle().
  void run_phase(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::size_t size() const { return workers_.size(); }

  // Convenience: run `tasks` to completion on a fresh pool.  Rethrows the
  // first task failure after all tasks have run.
  static void run_all(std::vector<std::function<void()>> tasks,
                      std::size_t threads = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::exception_ptr first_error_;  // guarded by mu_
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace redhip
