#include "trace/workloads.h"

#include <algorithm>

#include "common/check.h"

namespace redhip {
namespace {

// Disjoint per-core address spaces: the paper multiprograms by running one
// process per core, so no lines are ever shared.  The top byte is an ASID.
Addr core_base(CoreId core) { return (static_cast<Addr>(core) + 1) << 40; }

// Bump allocator carving kernel regions out of a core's space.
//
// The base and the inter-region gaps are jittered per (core, seed).  This is
// not cosmetic: the paper multiprograms by duplicating one trace onto all 8
// cores, and real duplicated *processes* have uncorrelated low physical-
// address bits (ASLR + independent page mappings).  Without jitter every
// core would march over identical low address bits in lockstep, and since
// both the cache set index and ReDHiP's bits-hash ignore the high bits, the
// 8 copies would alias perfectly — every core's miss would read a PT bit
// freshly set by its neighbour's different line, a 7/8 guaranteed
// false-positive rate no real system exhibits.
class RegionAllocator {
 public:
  RegionAllocator(Addr base, std::uint64_t jitter_seed) : rng_(jitter_seed) {
    // Up to 4 GiB of page-granular base offset inside the core's ASID.
    cursor_ = base + (rng_.next() & ((std::uint64_t{1} << 32) - 1) & ~4095ull);
  }

  Region alloc(std::uint64_t bytes, std::uint64_t scale) {
    std::uint64_t sz = bytes / scale;
    if (sz < kMinRegion) sz = kMinRegion;
    return alloc_exact(sz);
  }

  // No scaling, no floor: used when the kernel derives the size itself
  // (e.g. stencil grids computed from their dimensions).
  Region alloc_exact(std::uint64_t bytes) {
    const std::uint64_t sz =
        (bytes + kDefaultLineBytes - 1) & ~std::uint64_t{kDefaultLineBytes - 1};
    Region r{cursor_, sz};
    // Page-jittered gaps so no two cores lay regions out identically.
    cursor_ += sz + 4096 + (rng_.next() & (0xFFull << 12));
    return r;
  }

 private:
  static constexpr std::uint64_t kMinRegion = 64 * 1024;
  SplitMix64 rng_;
  Addr cursor_;
};

struct ProfileSeeds {
  std::uint64_t k1, k2, k3, sched;
};

ProfileSeeds seeds_for(BenchmarkId id, CoreId core, std::uint64_t seed) {
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(id) << 32) ^
                (static_cast<std::uint64_t>(core) << 16));
  return {sm.next(), sm.next(), sm.next(), sm.next()};
}

using Components = std::vector<SyntheticTrace::Component>;

// ---------------------------------------------------------------------------
// Per-benchmark profiles.  Weights are ppm; burst_mean is references per
// scheduling quantum of that kernel.  The PC bases keep each kernel's
// instruction footprint disjoint so the stride prefetcher sees stable PCs.
// ---------------------------------------------------------------------------

// Stencil grid dimensions for a working set of roughly `bytes / scale`.
// The x/y extents carry a small odd padding (as real codes pad arrays) so
// the row and plane strides are not multiples of the cache-set span — the
// unpadded power-of-two dims would alias every neighbour stream onto one L1
// set and destroy the locality a real FDTD sweep has.
struct StencilDims {
  std::uint64_t nx, ny, nz;
  std::uint64_t bytes() const { return nx * ny * nz * 8; }
};

StencilDims stencil_dims(std::uint64_t base_xy, std::uint64_t base_nz,
                         std::uint32_t scale) {
  const std::uint64_t shrink =
      scale == 1 ? 1 : (scale <= 4 ? 2 : (scale <= 16 ? 4 : 8));
  StencilDims d;
  d.nx = base_xy / shrink + 5;
  d.ny = base_xy / shrink + 3;
  // x/y shrink by `shrink` each (working set / shrink^2); nz rescales the
  // total to working-set / scale.
  d.nz = std::max<std::uint64_t>(8, base_nz * shrink * shrink / scale);
  return d;
}

Components build_profile(BenchmarkId id, CoreId core, std::uint32_t scale,
                         std::uint64_t seed) {
  const ProfileSeeds s = seeds_for(id, core, seed);
  RegionAllocator arena(core_base(core), s.k3);
  Components cs;
  auto add = [&cs](std::unique_ptr<Kernel> k, std::uint32_t ppm,
                   std::uint32_t burst) {
    cs.push_back({std::move(k), ppm, burst});
  };

  switch (id) {
    case BenchmarkId::kBwaves: {
      // Blocked, multi-array streaming: highly regular, large working set,
      // prefetch-friendly, with a modest solver working set behind it.
      add(std::make_unique<StreamKernel>(arena.alloc(192_MiB, scale), 4, 8,
                                         120'000, 0x1000, s.k1, 2),
          850'000, 256);
      add(std::make_unique<ZipfWalkKernel>(arena.alloc(48_MiB, scale), 4, 24,
                                           50'000, 0x1100, s.k2),
          150'000, 48);
      break;
    }
    case BenchmarkId::kGemsFDTD: {
      // Large 3-D FDTD grid: row reuse at L1/L2, plane reuse at L3, first
      // touches off-chip.
      const StencilDims d = stencil_dims(512, 112, scale);
      add(std::make_unique<StencilKernel>(arena.alloc_exact(d.bytes()), d.nx,
                                          d.ny, d.nz, 0x2000),
          860'000, 512);
      add(std::make_unique<ZipfWalkKernel>(arena.alloc(32_MiB, scale), 4, 8,
                                           100'000, 0x2200, s.k2),
          60'000, 32);
      add(std::make_unique<StreamKernel>(arena.alloc(24_MiB, scale), 2, 8,
                                         200'000, 0x2100, s.k1),
          80'000, 64);
      break;
    }
    case BenchmarkId::kLbm: {
      // Two-grid lattice-Boltzmann sweep: pure streaming, write-heavy,
      // essentially nothing reusable below L1.
      add(std::make_unique<StreamKernel>(arena.alloc(256_MiB, scale), 2, 8,
                                         400'000, 0x3000, s.k1, 2),
          1'000'000, 1024);
      break;
    }
    case BenchmarkId::kMcf: {
      // Network-simplex pointer chasing over a huge arena: the classic
      // cache-hostile benchmark; low hit rate at every level.
      add(std::make_unique<PointerChaseKernel>(arena.alloc(384_MiB, scale), 1,
                                               150'000, 0x4000, s.k1),
          750'000, 64);
      add(std::make_unique<ZipfWalkKernel>(arena.alloc(16_MiB, scale), 4, 8,
                                           100'000, 0x4100, s.k2),
          250'000, 32);
      break;
    }
    case BenchmarkId::kMilc: {
      // 4-D lattice QCD: strided field sweeps + gathers against a gauge
      // table whose hot entries live around L1/L2.
      add(std::make_unique<SparseGatherKernel>(
              arena.alloc(24_MiB, scale), arena.alloc(32_MiB, scale),
              arena.alloc(16_MiB, scale), 1, 0, 0, 0x5000, s.k1,
              /*zipf_k=*/4, /*gather_elems=*/4),
          600'000, 128);
      add(std::make_unique<StreamKernel>(arena.alloc(96_MiB, scale), 3, 8,
                                         150'000, 0x5100, s.k2, 2),
          400'000, 128);
      break;
    }
    case BenchmarkId::kSoplex: {
      // Simplex LP: CSR mat-vec whose x-vector has strong column locality,
      // plus a hot basis-factor working set.
      add(std::make_unique<SparseGatherKernel>(
              arena.alloc(32_MiB, scale), arena.alloc(96_MiB, scale),
              arena.alloc(8_MiB, scale), 1, 0, 0, 0x6000, s.k1,
              /*zipf_k=*/4, /*gather_elems=*/4),
          700'000, 96);
      add(std::make_unique<HotColdKernel>(arena.alloc(4_MiB, scale), 100'000,
                                          850'000, 24, 150'000, 0x6100, s.k2),
          300'000, 48);
      break;
    }
    case BenchmarkId::kAstar: {
      // Path search: skewed open-list/grid traffic plus pointer-y region
      // walks with node payloads.
      add(std::make_unique<ZipfWalkKernel>(arena.alloc(64_MiB, scale), 4, 24,
                                           200'000, 0x7000, s.k1),
          700'000, 64);
      add(std::make_unique<PointerChaseKernel>(arena.alloc(24_MiB, scale), 2,
                                               100'000, 0x7100, s.k2),
          300'000, 32);
      break;
    }
    case BenchmarkId::kCactusADM: {
      // Smaller ADM stencil: strong L2/L3 reuse, modest misses beyond.
      const StencilDims d = stencil_dims(256, 80, scale);
      add(std::make_unique<StencilKernel>(arena.alloc_exact(d.bytes()), d.nx,
                                          d.ny, d.nz, 0x8000),
          880'000, 512);
      add(std::make_unique<HotColdKernel>(arena.alloc(1_MiB, scale), 100'000,
                                          900'000, 16, 100'000, 0x8100, s.k1),
          120'000, 32);
      break;
    }
    case BenchmarkId::kPmf: {
      // SGD matrix factorization: random (user, item) row pairs streamed
      // densely; the item matrix dwarfs the LLC.
      add(std::make_unique<SgdKernel>(arena.alloc(64_MiB, scale),
                                      arena.alloc(192_MiB, scale), 256,
                                      0x9000, s.k1, /*zipf_k=*/3),
          900'000, 128);
      add(std::make_unique<StreamKernel>(arena.alloc(16_MiB, scale), 1, 8,
                                         100'000, 0x9100, s.k2),
          100'000, 64);
      break;
    }
    case BenchmarkId::kBlas: {
      // Graph500 BFS over CombBLAS structures: frontier streams, edge-list
      // bursts, and visited-map checks with community locality.
      add(std::make_unique<BfsKernel>(arena.alloc(8_MiB, scale),
                                      arena.alloc(320_MiB, scale),
                                      arena.alloc(24_MiB, scale), 48,
                                      /*visited_zipf_k=*/3, 0xa000, s.k1),
          850'000, 256);
      add(std::make_unique<SparseGatherKernel>(
              arena.alloc(16_MiB, scale), arena.alloc(8_MiB, scale),
              arena.alloc(8_MiB, scale), 1, 0, 0, 0xa100, s.k2,
              /*zipf_k=*/4, /*gather_elems=*/4),
          150'000, 96);
      break;
    }
    case BenchmarkId::kMix:
      REDHIP_CHECK_MSG(false, "kMix resolves to a SPEC profile per core");
  }
  return cs;
}

}  // namespace

std::string to_string(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kBwaves:
      return "bwaves";
    case BenchmarkId::kGemsFDTD:
      return "GemsFDTD";
    case BenchmarkId::kLbm:
      return "lbm";
    case BenchmarkId::kMcf:
      return "mcf";
    case BenchmarkId::kMilc:
      return "milc";
    case BenchmarkId::kSoplex:
      return "soplex";
    case BenchmarkId::kAstar:
      return "astar";
    case BenchmarkId::kCactusADM:
      return "cactusADM";
    case BenchmarkId::kMix:
      return "mix";
    case BenchmarkId::kPmf:
      return "pmf";
    case BenchmarkId::kBlas:
      return "blas";
  }
  return "unknown";
}

const std::vector<BenchmarkId>& all_benchmarks() {
  // The paper's figure order: bwaves GemsFDTD lbm mcf milc soplex astar
  // cactusADM mix pmf blas.
  static const std::vector<BenchmarkId> kAll = {
      BenchmarkId::kBwaves, BenchmarkId::kGemsFDTD, BenchmarkId::kLbm,
      BenchmarkId::kMcf,    BenchmarkId::kMilc,     BenchmarkId::kSoplex,
      BenchmarkId::kAstar,  BenchmarkId::kCactusADM, BenchmarkId::kMix,
      BenchmarkId::kPmf,    BenchmarkId::kBlas};
  return kAll;
}

const std::vector<BenchmarkId>& spec_benchmarks() {
  static const std::vector<BenchmarkId> kSpec = {
      BenchmarkId::kBwaves, BenchmarkId::kGemsFDTD, BenchmarkId::kLbm,
      BenchmarkId::kMcf,    BenchmarkId::kMilc,     BenchmarkId::kSoplex,
      BenchmarkId::kAstar,  BenchmarkId::kCactusADM};
  return kSpec;
}

WorkloadTraits traits_of(BenchmarkId id) {
  // gap_mean ≈ 2-4 non-memory instructions per reference matches the
  // paper's trace shape (1.5 B instructions, ~500 M memory references).
  // CPIs are representative averages for these memory-bound applications
  // (the paper charges non-memory instructions at each application's
  // average CPI, which folds their stall behaviour into the compute time).
  switch (id) {
    case BenchmarkId::kBwaves:
      return {390, 3, 194_MiB};
    case BenchmarkId::kGemsFDTD:
      return {420, 2, 240_MiB};
    case BenchmarkId::kLbm:
      return {350, 2, 256_MiB};
    case BenchmarkId::kMcf:
      return {630, 2, 385_MiB};
    case BenchmarkId::kMilc:
      return {450, 3, 216_MiB};
    case BenchmarkId::kSoplex:
      return {390, 2, 140_MiB};
    case BenchmarkId::kAstar:
      return {490, 4, 88_MiB};
    case BenchmarkId::kCactusADM:
      return {310, 4, 41_MiB};
    case BenchmarkId::kMix:
      return {420, 2, 0};
    case BenchmarkId::kPmf:
      return {420, 3, 272_MiB};
    case BenchmarkId::kBlas:
      return {560, 2, 352_MiB};
  }
  return {200, 2, 0};
}

SyntheticTrace::SyntheticTrace(std::vector<Component> components,
                               std::uint32_t gap_mean, std::uint64_t seed)
    : components_(std::move(components)), gap_mean_(gap_mean), rng_(seed) {
  REDHIP_CHECK(!components_.empty());
  std::uint64_t total = 0;
  for (const auto& c : components_) total += c.weight_ppm;
  REDHIP_CHECK_MSG(total == 1'000'000, "component weights must sum to 1M ppm");
  reschedule();
}

void SyntheticTrace::reschedule() {
  const std::uint64_t draw = rng_.below(1'000'000);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    acc += components_[i].weight_ppm;
    if (draw < acc) {
      active_ = i;
      break;
    }
  }
  burst_left_ = rng_.burst(components_[active_].burst_mean, 1 << 16);
}

bool SyntheticTrace::next(MemRef& out) {
  if (burst_left_ == 0) reschedule();
  --burst_left_;
  components_[active_].kernel->next(out);
  out.gap = gap_mean_ == 0
                ? 0
                : static_cast<std::uint16_t>(rng_.range(
                      gap_mean_ - gap_mean_ / 2, gap_mean_ + gap_mean_ / 2));
  return true;
}

std::size_t SyntheticTrace::next_batch(MemRef* out, std::size_t n) {
  const std::uint32_t gap_lo = gap_mean_ - gap_mean_ / 2;
  const std::uint32_t gap_hi = gap_mean_ + gap_mean_ / 2;
  std::size_t filled = 0;
  while (filled < n) {
    if (burst_left_ == 0) reschedule();
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(burst_left_,
                                                         n - filled));
    burst_left_ -= chunk;
    // Kernel draws and gap draws come from different RNGs (the kernel's own
    // stream vs the trace's), so hoisting the whole chunk's kernel calls
    // ahead of its gap fills keeps both streams' internal order — and the
    // emitted references — identical to the scalar path, while paying one
    // virtual dispatch per chunk instead of one per reference.
    components_[active_].kernel->next_n(out + filled, chunk);
    if (gap_mean_ == 0) {
      for (std::size_t i = 0; i < chunk; ++i) out[filled + i].gap = 0;
    } else {
      for (std::size_t i = 0; i < chunk; ++i) {
        out[filled + i].gap =
            static_cast<std::uint16_t>(rng_.range(gap_lo, gap_hi));
      }
    }
    filled += chunk;
  }
  return filled;
}

std::unique_ptr<TraceSource> make_workload(BenchmarkId id, CoreId core,
                                           std::uint32_t scale,
                                           std::uint64_t seed) {
  REDHIP_CHECK(scale >= 1);
  BenchmarkId effective = id;
  if (id == BenchmarkId::kMix) {
    effective = spec_benchmarks()[core % spec_benchmarks().size()];
  }
  auto comps = build_profile(effective, core, scale, seed);
  const ProfileSeeds s = seeds_for(effective, core, seed ^ 0xabcdefull);
  return std::make_unique<SyntheticTrace>(std::move(comps),
                                          traits_of(effective).gap_mean,
                                          s.sched);
}

std::uint32_t workload_cpi_centi(BenchmarkId id, CoreId core) {
  BenchmarkId effective = id;
  if (id == BenchmarkId::kMix) {
    effective = spec_benchmarks()[core % spec_benchmarks().size()];
  }
  return traits_of(effective).cpi_centi;
}

}  // namespace redhip
