#include "trace/kernels.h"

#include "common/bitops.h"
#include "common/check.h"

namespace redhip {

// ---------------------------------------------------------------- Streaming

StreamKernel::StreamKernel(Region region, std::uint32_t streams,
                           std::uint32_t stride_bytes, std::uint32_t write_ppm,
                           std::uint32_t pc_base, std::uint64_t seed,
                           std::uint32_t repeats)
    : region_(region),
      streams_(streams),
      stride_(stride_bytes),
      write_ppm_(write_ppm),
      pc_base_(pc_base),
      repeats_(repeats),
      repeat_left_(repeats),
      rng_(seed) {
  REDHIP_CHECK(streams >= 1 && stride_bytes >= 1 && repeats >= 1);
  slice_ = region.bytes / streams;
  REDHIP_CHECK_MSG(slice_ >= stride_bytes, "stream slice smaller than stride");
  cursor_.resize(streams);
  // Start cursors at deterministic, distinct phases so streams do not start
  // line-aligned with each other.
  for (std::uint32_t s = 0; s < streams; ++s) {
    cursor_[s] = (slice_ / streams) * s;
  }
}

void StreamKernel::next(MemRef& out) {
  const std::uint32_t s = turn_;
  out.addr = region_.base + slice_ * s + cursor_[s];
  out.pc = pc_base_ + s;
  out.is_write = rng_.chance_ppm(write_ppm_);
  if (--repeat_left_ > 0) return;  // touch the same element again next call
  repeat_left_ = repeats_;
  turn_ = (turn_ + 1) % streams_;
  cursor_[s] += stride_;
  if (cursor_[s] + stride_ > slice_) cursor_[s] = 0;
}

// ------------------------------------------------------------------ Stencil

StencilKernel::StencilKernel(Region region, std::uint64_t nx, std::uint64_t ny,
                             std::uint64_t nz, std::uint32_t pc_base)
    : region_(region), nx_(nx), ny_(ny), nz_(nz), pc_base_(pc_base) {
  REDHIP_CHECK(nx >= 2 && ny >= 2 && nz >= 2);
  REDHIP_CHECK_MSG(nx * ny * nz * 8 <= region.bytes,
                   "stencil grid does not fit its region");
}

void StencilKernel::next(MemRef& out) {
  constexpr std::uint32_t kElem = 8;
  const std::uint64_t cells = nx_ * ny_ * nz_;
  const std::uint64_t c = cell_ % cells;
  // Neighbour offsets in elements, clamped at the grid edge by wrapping
  // (edge effects are irrelevant at these grid sizes).
  const std::int64_t offsets[7] = {
      -static_cast<std::int64_t>(nx_ * ny_),  // -z
      -static_cast<std::int64_t>(nx_),        // -y
      -1,                                     // -x
      0,                                      // center
      1,                                      // +x
      static_cast<std::int64_t>(nx_),         // +y
      static_cast<std::int64_t>(nx_ * ny_),   // +z
  };
  std::uint64_t elem;
  if (point_ < 7) {
    elem = static_cast<std::uint64_t>(
               (static_cast<std::int64_t>(c) + offsets[point_] +
                static_cast<std::int64_t>(cells)))
           % cells;
    out.is_write = false;
    out.pc = pc_base_ + point_;
  } else {
    elem = c;  // write-back of the center
    out.is_write = true;
    out.pc = pc_base_ + 7;
  }
  out.addr = region_.base + elem * kElem;
  if (++point_ > 7) {
    point_ = 0;
    ++cell_;
  }
}

// ------------------------------------------------------------- PointerChase

PointerChaseKernel::PointerChaseKernel(Region region,
                                       std::uint32_t payload_lines,
                                       std::uint32_t write_ppm,
                                       std::uint32_t pc_base,
                                       std::uint64_t seed)
    : region_(region),
      payload_lines_(payload_lines),
      write_ppm_(write_ppm),
      pc_base_(pc_base),
      rng_(seed) {
  lines_ = round_up_pow2(region.bytes / kDefaultLineBytes) / 2;
  if (lines_ < 16) lines_ = 16;
  REDHIP_CHECK_MSG(lines_ * kDefaultLineBytes <= region.bytes,
                   "pointer-chase region too small");
  // Hull–Dobell: modulus 2^m, add odd, mul ≡ 1 (mod 4) → full period.
  state_ = rng_.below(lines_);
  mul_ = 0xd1342543de82ef95ull % lines_ | 5;  // ...01 in binary, ≡1 mod 4
  mul_ = (mul_ & ~std::uint64_t{3}) | 1;
  add_ = rng_.next() | 1;
}

void PointerChaseKernel::next(MemRef& out) {
  if (payload_left_ > 0) {
    // Node payload: element-granular sequential reads following the node
    // line (this is where mcf's limited spatial locality comes from).
    --payload_left_;
    payload_cursor_ += 8;
    out.addr = region_.base +
               (payload_cursor_ % (lines_ * kDefaultLineBytes));
    out.pc = pc_base_ + 1;
    out.is_write = rng_.chance_ppm(write_ppm_);
    return;
  }
  state_ = (mul_ * state_ + add_) & (lines_ - 1);
  out.addr = region_.base + state_ * kDefaultLineBytes;
  out.pc = pc_base_;
  out.is_write = false;
  if (payload_lines_ > 0) {
    payload_left_ = payload_lines_ * (kDefaultLineBytes / 8);
    payload_cursor_ = state_ * kDefaultLineBytes;
  }
}

// ------------------------------------------------------------------ ZipfWalk

ZipfWalkKernel::ZipfWalkKernel(Region region, std::uint32_t zipf_k,
                               std::uint32_t burst_mean,
                               std::uint32_t write_ppm, std::uint32_t pc_base,
                               std::uint64_t seed)
    : region_(region),
      sampler_(region.bytes / kDefaultLineBytes, zipf_k),
      burst_mean_(burst_mean),
      write_ppm_(write_ppm),
      pc_base_(pc_base),
      rng_(seed) {}

void ZipfWalkKernel::next(MemRef& out) {
  if (burst_left_ == 0) {
    burst_cursor_ = sampler_.sample(rng_) * kDefaultLineBytes;
    burst_left_ = static_cast<std::uint32_t>(rng_.burst(burst_mean_, 256));
  }
  --burst_left_;
  out.addr = region_.base + (burst_cursor_ % region_.bytes);
  burst_cursor_ += 8;
  out.pc = pc_base_ + (burst_left_ == 0 ? 0 : 1);
  out.is_write = rng_.chance_ppm(write_ppm_);
}

// ------------------------------------------------------------- SparseGather

SparseGatherKernel::SparseGatherKernel(
    Region index_region, Region vector_region, Region result_region,
    std::uint32_t gathers_per_index, std::uint32_t hot_fraction_ppm,
    std::uint32_t hot_access_ppm, std::uint32_t pc_base, std::uint64_t seed,
    std::uint32_t zipf_k, std::uint32_t gather_elems)
    : index_region_(index_region),
      vector_region_(vector_region),
      result_region_(result_region),
      gathers_per_index_(gathers_per_index),
      gather_elems_(gather_elems),
      pc_base_(pc_base),
      sampler_(vector_region.bytes / kDefaultLineBytes, hot_fraction_ppm,
               hot_access_ppm),
      zipf_(vector_region.bytes / kDefaultLineBytes,
            zipf_k == 0 ? 1 : zipf_k),
      zipf_k_(zipf_k),
      rng_(seed) {
  REDHIP_CHECK(gathers_per_index >= 1);
  REDHIP_CHECK(gather_elems >= 1 && gather_elems <= 16);
}

void SparseGatherKernel::next(MemRef& out) {
  const std::uint32_t gather_refs = gathers_per_index_ * gather_elems_;
  if (phase_ == 0) {
    out.addr = index_region_.at(index_cursor_);
    index_cursor_ += 8;  // one 64-bit index per step
    out.pc = pc_base_;
    out.is_write = false;
  } else if (phase_ <= gather_refs) {
    const std::uint32_t within = (phase_ - 1) % gather_elems_;
    if (within == 0) {
      const std::uint64_t line =
          zipf_k_ > 0 ? zipf_.sample(rng_) : sampler_.sample(rng_);
      gather_target_ = vector_region_.base + line * kDefaultLineBytes;
    }
    out.addr = gather_target_ + within * 8;
    out.pc = pc_base_ + 1;
    out.is_write = false;
  } else {
    out.addr = result_region_.at(result_cursor_);
    result_cursor_ += 8;
    out.pc = pc_base_ + 2;
    out.is_write = true;
  }
  phase_ = (phase_ + 1) % (gather_refs + 2);
}

// ---------------------------------------------------------------------- BFS

BfsKernel::BfsKernel(Region frontier_region, Region edge_region,
                     Region visited_region, std::uint32_t mean_degree,
                     std::uint32_t visited_zipf_k, std::uint32_t pc_base,
                     std::uint64_t seed)
    : frontier_region_(frontier_region),
      edge_region_(edge_region),
      visited_region_(visited_region),
      mean_degree_(mean_degree),
      pc_base_(pc_base),
      visited_sampler_(visited_region.bytes / kDefaultLineBytes,
                       visited_zipf_k),
      rng_(seed) {
  REDHIP_CHECK(mean_degree >= 1);
}

void BfsKernel::next(MemRef& out) {
  if (edges_left_ > 0 && visited_after_ == 0) {
    // Visited-map check: skewed random access, writes when the vertex is
    // newly discovered (~1/4 of checks).
    visited_after_ = 3;  // three edge reads per visited check (word-packed map)
    out.addr = visited_region_.base +
               visited_sampler_.sample(rng_) * kDefaultLineBytes;
    out.pc = pc_base_ + 2;
    out.is_write = rng_.chance_ppm(250'000);
    return;
  }
  if (edges_left_ > 0) {
    --edges_left_;
    --visited_after_;
    out.addr = edge_region_.at(edge_cursor_);
    edge_cursor_ += 8;
    out.pc = pc_base_ + 1;
    out.is_write = false;
    return;
  }
  // Pop the next frontier vertex and start its (random-length) edge run at
  // a random offset in the edge array.
  out.addr = frontier_region_.at(frontier_cursor_);
  frontier_cursor_ += 8;
  out.pc = pc_base_;
  out.is_write = false;
  edges_left_ = static_cast<std::uint32_t>(rng_.burst(mean_degree_, 512));
  edge_cursor_ = rng_.below(edge_region_.bytes / 8) * 8;
  visited_after_ = 3;
}

// ---------------------------------------------------------------------- SGD

SgdKernel::SgdKernel(Region user_region, Region item_region,
                     std::uint32_t row_bytes, std::uint32_t pc_base,
                     std::uint64_t seed, std::uint32_t zipf_k)
    : user_region_(user_region),
      item_region_(item_region),
      row_bytes_(row_bytes),
      pc_base_(pc_base),
      user_sampler_(user_region.bytes / row_bytes, zipf_k),
      item_sampler_(item_region.bytes / row_bytes, zipf_k),
      rng_(seed) {
  REDHIP_CHECK(row_bytes >= 8 && row_bytes % 8 == 0);
  user_row_ = user_region_.base;
  item_row_ = item_region_.base;
}

void SgdKernel::next(MemRef& out) {
  if (offset_ == 0 && phase_ == 0) {
    // New (user, item) sample: popularity-weighted row in each matrix.
    user_row_ = user_region_.base + user_sampler_.sample(rng_) * row_bytes_;
    item_row_ = item_region_.base + item_sampler_.sample(rng_) * row_bytes_;
  }
  switch (phase_) {
    case 0:
      out.addr = user_row_ + offset_;
      out.is_write = false;
      break;
    case 1:
      out.addr = item_row_ + offset_;
      out.is_write = false;
      break;
    case 2:
      out.addr = user_row_ + offset_;
      out.is_write = true;
      break;
    default:
      out.addr = item_row_ + offset_;
      out.is_write = true;
      break;
  }
  out.pc = pc_base_ + phase_;
  offset_ += 8;
  if (offset_ >= row_bytes_) {
    offset_ = 0;
    phase_ = (phase_ + 1) % 4;
  }
}

// ------------------------------------------------------------------ HotCold

HotColdKernel::HotColdKernel(Region region, std::uint32_t hot_fraction_ppm,
                             std::uint32_t hot_access_ppm,
                             std::uint32_t burst_mean, std::uint32_t write_ppm,
                             std::uint32_t pc_base, std::uint64_t seed)
    : region_(region),
      sampler_(region.bytes / kDefaultLineBytes, hot_fraction_ppm,
               hot_access_ppm),
      burst_mean_(burst_mean),
      write_ppm_(write_ppm),
      pc_base_(pc_base),
      rng_(seed) {}

void HotColdKernel::next(MemRef& out) {
  if (burst_left_ == 0) {
    // Sample a line, then walk it (and its successors) element by element —
    // the burst models touching the fields of a small record.
    burst_cursor_ = sampler_.sample(rng_) * kDefaultLineBytes;
    burst_left_ = static_cast<std::uint32_t>(rng_.burst(burst_mean_, 256));
  }
  --burst_left_;
  out.addr = region_.base + (burst_cursor_ % region_.bytes);
  burst_cursor_ += 8;
  out.pc = pc_base_ + (burst_left_ == 0 ? 0 : 1);
  out.is_write = rng_.chance_ppm(write_ppm_);
}

// --------------------------------------------------------------- batch loops
// One monomorphic loop per kernel: the qualified call resolves statically
// inside the final class, so the per-reference kernel body inlines and a
// burst of n references costs one virtual dispatch instead of n.
#define REDHIP_KERNEL_NEXT_N(K)                          \
  void K::next_n(MemRef* out, std::size_t n) {           \
    for (std::size_t i = 0; i < n; ++i) K::next(out[i]); \
  }
REDHIP_KERNEL_NEXT_N(StreamKernel)
REDHIP_KERNEL_NEXT_N(StencilKernel)
REDHIP_KERNEL_NEXT_N(PointerChaseKernel)
REDHIP_KERNEL_NEXT_N(ZipfWalkKernel)
REDHIP_KERNEL_NEXT_N(SparseGatherKernel)
REDHIP_KERNEL_NEXT_N(BfsKernel)
REDHIP_KERNEL_NEXT_N(SgdKernel)
REDHIP_KERNEL_NEXT_N(HotColdKernel)
#undef REDHIP_KERNEL_NEXT_N

}  // namespace redhip
