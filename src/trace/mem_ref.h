// MemRef and TraceSource — the interface between workloads and simulator.
//
// A trace record carries what the paper's pintool collected: the data
// address, whether it is a write, the instruction address (needed only by
// the PC-indexed stride prefetcher), and the number of non-memory
// instructions executed since the previous memory reference (charged at the
// application's average CPI).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace redhip {

struct MemRef {
  Addr addr = 0;
  std::uint32_t pc = 0;
  std::uint16_t gap = 0;  // non-memory instructions before this reference
  bool is_write = false;

  bool operator==(const MemRef&) const = default;
};

// A stream of memory references.  Sources may be finite (file traces) or
// unbounded (synthetic generators); the simulator bounds every run by a
// reference count, so `next` returning false simply ends that core early.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual bool next(MemRef& out) = 0;

  // Fill up to `n` references into `out` and return how many were produced.
  // Returns fewer than `n` only when the trace ends mid-batch; 0 means the
  // trace is exhausted.  The reference sequence is exactly the sequence
  // `next` would have produced — batching is a pure amortization of the
  // per-reference virtual call, never a behavioural change (locked in by
  // tests/trace_batch_test).  The default implementation loops over next();
  // generators override it with block-filling fast paths.
  virtual std::size_t next_batch(MemRef* out, std::size_t n) {
    std::size_t filled = 0;
    while (filled < n && next(out[filled])) ++filled;
    return filled;
  }

  // Advance past `n` references without observing them, leaving the source
  // positioned exactly where `n` next() calls would have left it — how a
  // checkpoint restore re-synchronizes a trace (sources are rebuilt from
  // their seed, then skipped to the saved position).  The default drains
  // next(); indexable sources override with O(1) repositioning.
  virtual void skip(std::uint64_t n) {
    MemRef scratch;
    while (n > 0 && next(scratch)) --n;
  }
};

// In-memory trace; the unit tests' workhorse.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<MemRef> refs)
      : refs_(std::move(refs)) {}

  bool next(MemRef& out) override {
    if (pos_ >= refs_.size()) return false;
    out = refs_[pos_++];
    return true;
  }

  std::size_t next_batch(MemRef* out, std::size_t n) override {
    const std::size_t take = std::min(n, refs_.size() - pos_);
    std::copy_n(refs_.begin() + static_cast<std::ptrdiff_t>(pos_), take, out);
    pos_ += take;
    return take;
  }

  void skip(std::uint64_t n) override {
    pos_ += static_cast<std::size_t>(
        std::min<std::uint64_t>(n, refs_.size() - pos_));
  }

  void rewind() { pos_ = 0; }
  std::size_t size() const { return refs_.size(); }

 private:
  std::vector<MemRef> refs_;
  std::size_t pos_ = 0;
};

}  // namespace redhip
