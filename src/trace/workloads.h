// Synthetic benchmark workloads — the stand-ins for the paper's traces.
//
// The paper evaluates 8 SPEC 2006 benchmarks chosen to stress the deep
// hierarchy, two large-scale applications (Graph500/CombBLAS "blas",
// GraphLab PMF "pmf"), and a "mix" of the 8 SPEC traces across cores.  Each
// workload here is a seeded mixture of kernels whose working-set sizes,
// access regularity and write ratios are chosen to reproduce the paper's
// per-level hit-rate signatures (Fig. 9) rather than the benchmarks'
// computation.  A `scale` divisor shrinks the working sets in lock-step
// with a geometry-scaled hierarchy (see sim/config.h) so that the pressure
// ratios — which determine every result shape — are preserved.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/kernels.h"
#include "trace/mem_ref.h"

namespace redhip {

enum class BenchmarkId : std::uint8_t {
  kBwaves,
  kGemsFDTD,
  kLbm,
  kMcf,
  kMilc,
  kSoplex,
  kAstar,
  kCactusADM,
  kMix,   // a different SPEC profile on each core
  kPmf,   // GraphLab probabilistic matrix factorization
  kBlas,  // Graph500 on CombBLAS
};

std::string to_string(BenchmarkId id);
// All 11 workloads in the paper's figure order.
const std::vector<BenchmarkId>& all_benchmarks();
// The 8 SPEC workloads (used to build kMix).
const std::vector<BenchmarkId>& spec_benchmarks();

// Per-benchmark scalar properties (from the paper's methodology narrative
// where stated, calibrated otherwise).
struct WorkloadTraits {
  std::uint32_t cpi_centi;    // average CPI x100 for non-memory instructions
  std::uint32_t gap_mean;     // mean non-memory instructions per memory ref
  std::uint64_t ws_bytes;     // nominal per-process working set (unscaled)
};
WorkloadTraits traits_of(BenchmarkId id);

// A kernel mixture with burst scheduling: the active kernel runs for a
// geometric burst, then the scheduler re-draws a kernel weighted by ppm.
class SyntheticTrace final : public TraceSource {
 public:
  struct Component {
    std::unique_ptr<Kernel> kernel;
    std::uint32_t weight_ppm;
    std::uint32_t burst_mean;
  };

  SyntheticTrace(std::vector<Component> components, std::uint32_t gap_mean,
                 std::uint64_t seed);

  bool next(MemRef& out) override;

  // Block-filling fast path: emits whole burst chunks per active kernel so
  // the kernel pointer and gap parameters stay hot across the inner loop.
  // Draws the RNG in exactly the order next() does (one reschedule draw at
  // each burst boundary, one gap draw per reference), so the produced
  // sequence is bit-identical to repeated next() calls.
  std::size_t next_batch(MemRef* out, std::size_t n) override;

 private:
  void reschedule();

  std::vector<Component> components_;
  std::uint32_t gap_mean_;
  Xoshiro256 rng_;
  std::size_t active_ = 0;
  std::uint64_t burst_left_ = 0;
};

// Build the trace a given core would execute for `id`:
//  - SPEC ids replicate the same profile on every core, in a disjoint
//    per-core address space (the paper's multi-programmed duplication);
//  - kMix gives core c the c-th SPEC profile;
//  - kPmf / kBlas give each core a distinct shard (same profile, different
//    seed/regions), modeling the 8 traced processes.
// `scale` divides working sets (1 = the paper's full size).
std::unique_ptr<TraceSource> make_workload(BenchmarkId id, CoreId core,
                                           std::uint32_t scale,
                                           std::uint64_t seed);

// CPI (x100) the simulator should charge for core `core` running `id`.
std::uint32_t workload_cpi_centi(BenchmarkId id, CoreId core);

}  // namespace redhip
