#include "trace/trace_io.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/check.h"

namespace redhip {
namespace {

struct PackedRecord {
  std::uint64_t addr;
  std::uint32_t pc;
  std::uint16_t gap;
  std::uint16_t flags;
};
static_assert(sizeof(PackedRecord) == 16, "record must pack to 16 bytes");

constexpr std::uint64_t kHeaderBytes = 24;

}  // namespace

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  REDHIP_CHECK_MSG(file_ != nullptr, "cannot open trace for writing: " + path);
  char header[kHeaderBytes] = {};
  std::memcpy(header, kTraceMagic, sizeof(kTraceMagic));
  REDHIP_CHECK(std::fwrite(header, 1, kHeaderBytes, file_) == kHeaderBytes);
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (const std::exception& e) {
    // Destructors must not throw; the trace on disk has a stale record
    // count.  Say so once — a silently-wrong trace file is the failure mode
    // the reader's length validation exists to catch.
    std::fprintf(stderr, "TraceWriter(%s): finish failed in destructor: %s\n",
                 path_.c_str(), e.what());
  }
}

void TraceWriter::append(const MemRef& ref) {
  REDHIP_CHECK_MSG(!finished_, "append after finish: " + path_);
  PackedRecord rec{ref.addr, ref.pc, ref.gap,
                   static_cast<std::uint16_t>(ref.is_write ? 1 : 0)};
  REDHIP_CHECK_MSG(std::fwrite(&rec, sizeof(rec), 1, file_) == 1,
                   "short write appending to trace: " + path_);
  ++count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;  // set first: a second call must be a no-op, and the
                     // FILE* below is consumed even on failure (no UB on a
                     // closed handle from a retried finish)
  std::FILE* f = file_;
  file_ = nullptr;
  const bool seek_ok = std::fseek(f, sizeof(kTraceMagic), SEEK_SET) == 0;
  const bool write_ok =
      seek_ok && std::fwrite(&count_, sizeof(count_), 1, f) == 1;
  const bool flush_ok = std::fflush(f) == 0;
  std::fclose(f);
  REDHIP_CHECK_MSG(seek_ok && write_ok && flush_ok,
                   "cannot patch record count into trace header: " + path_);
}

Result<std::unique_ptr<FileTraceSource>> FileTraceSource::open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(StatusCode::kNotFound, "cannot open trace: " + path);
  }
  auto src = std::unique_ptr<FileTraceSource>(new FileTraceSource());
  src->path_ = path;
  src->file_ = f;

  char header[kHeaderBytes];
  const std::size_t got = std::fread(header, 1, kHeaderBytes, f);
  if (got != kHeaderBytes) {
    std::ostringstream os;
    os << "trace " << path << ": truncated header (" << got << " of "
       << kHeaderBytes << " bytes)";
    return Status(StatusCode::kDataLoss, os.str());
  }
  if (std::memcmp(header, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return Status(StatusCode::kDataLoss, "trace " + path +
                                             ": bad magic (not a REDHIPT1 "
                                             "trace file)");
  }
  std::memcpy(&src->total_, header + sizeof(kTraceMagic), sizeof(src->total_));

  // Validate the header's record count against the file's actual length so
  // corruption surfaces here, with exact numbers, instead of as a silent
  // short read mid-simulation.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status(StatusCode::kInternal, "trace " + path + ": seek failed");
  }
  const long end = std::ftell(f);
  if (end < 0) {
    return Status(StatusCode::kInternal, "trace " + path + ": tell failed");
  }
  const std::uint64_t expected =
      kHeaderBytes + src->total_ * sizeof(PackedRecord);
  if (static_cast<std::uint64_t>(end) != expected) {
    std::ostringstream os;
    os << "trace " << path << ": header claims " << src->total_
       << " records (" << expected << " bytes) but the file holds " << end
       << " bytes";
    if (static_cast<std::uint64_t>(end) > expected) {
      os << " (trailing garbage)";
    } else if ((static_cast<std::uint64_t>(end) - kHeaderBytes) %
                   sizeof(PackedRecord) !=
               0) {
      os << " (truncated mid-record)";
    } else {
      os << " (truncated)";
    }
    return Status(StatusCode::kDataLoss, os.str());
  }
  if (std::fseek(f, kHeaderBytes, SEEK_SET) != 0) {
    return Status(StatusCode::kInternal, "trace " + path + ": seek failed");
  }
  return src;
}

FileTraceSource::FileTraceSource(const std::string& path) {
  auto result = open(path);
  result.status().throw_if_error();
  FileTraceSource& src = *result.value();
  path_ = std::move(src.path_);
  file_ = src.file_;
  total_ = src.total_;
  src.file_ = nullptr;
}

FileTraceSource::~FileTraceSource() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FileTraceSource::next(MemRef& out) {
  if (read_ >= total_) return false;
  PackedRecord rec;
  if (std::fread(&rec, sizeof(rec), 1, file_) != 1) {
    // Impossible for a file that passed the open-time length check and was
    // not modified since; refuse to degrade it into a silent early EOF.
    std::ostringstream os;
    os << "trace " << path_ << ": short read at record " << read_ << " of "
       << total_ << " (file changed after open?)";
    throw std::runtime_error(os.str());
  }
  ++read_;
  out.addr = rec.addr;
  out.pc = rec.pc;
  out.gap = rec.gap;
  out.is_write = (rec.flags & 1) != 0;
  return true;
}

std::size_t FileTraceSource::next_batch(MemRef* out, std::size_t n) {
  const std::uint64_t left = total_ - read_;
  const std::size_t want =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, left));
  if (want == 0) return 0;
  // Records are read through a stack block so the packed 16-byte layout
  // never constrains MemRef itself.
  PackedRecord recs[256];
  std::size_t filled = 0;
  while (filled < want) {
    const std::size_t chunk = std::min(want - filled, std::size_t{256});
    if (std::fread(recs, sizeof(PackedRecord), chunk, file_) != chunk) {
      std::ostringstream os;
      os << "trace " << path_ << ": short read at record " << read_ + filled
         << " of " << total_ << " (file changed after open?)";
      throw std::runtime_error(os.str());
    }
    for (std::size_t i = 0; i < chunk; ++i) {
      MemRef& r = out[filled + i];
      r.addr = recs[i].addr;
      r.pc = recs[i].pc;
      r.gap = recs[i].gap;
      r.is_write = (recs[i].flags & 1) != 0;
    }
    filled += chunk;
  }
  read_ += filled;
  return filled;
}

}  // namespace redhip
