#include "trace/trace_io.h"

#include <cstring>

#include "common/check.h"

namespace redhip {
namespace {

struct PackedRecord {
  std::uint64_t addr;
  std::uint32_t pc;
  std::uint16_t gap;
  std::uint16_t flags;
};
static_assert(sizeof(PackedRecord) == 16, "record must pack to 16 bytes");

constexpr std::uint64_t kHeaderBytes = 24;

}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  REDHIP_CHECK_MSG(file_ != nullptr, "cannot open trace for writing: " + path);
  char header[kHeaderBytes] = {};
  std::memcpy(header, kTraceMagic, sizeof(kTraceMagic));
  REDHIP_CHECK(std::fwrite(header, 1, kHeaderBytes, file_) == kHeaderBytes);
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; the file is left closed but the header
    // count may be stale.  Callers who care should call finish() directly.
  }
}

void TraceWriter::append(const MemRef& ref) {
  REDHIP_CHECK_MSG(!finished_, "append after finish");
  PackedRecord rec{ref.addr, ref.pc, ref.gap,
                   static_cast<std::uint16_t>(ref.is_write ? 1 : 0)};
  REDHIP_CHECK(std::fwrite(&rec, sizeof(rec), 1, file_) == 1);
  ++count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  REDHIP_CHECK(std::fseek(file_, sizeof(kTraceMagic), SEEK_SET) == 0);
  REDHIP_CHECK(std::fwrite(&count_, sizeof(count_), 1, file_) == 1);
  std::fclose(file_);
  file_ = nullptr;
}

FileTraceSource::FileTraceSource(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  REDHIP_CHECK_MSG(file_ != nullptr, "cannot open trace: " + path);
  char header[kHeaderBytes];
  REDHIP_CHECK_MSG(std::fread(header, 1, kHeaderBytes, file_) == kHeaderBytes,
                   "truncated trace header: " + path);
  REDHIP_CHECK_MSG(std::memcmp(header, kTraceMagic, sizeof(kTraceMagic)) == 0,
                   "bad trace magic: " + path);
  std::memcpy(&total_, header + sizeof(kTraceMagic), sizeof(total_));
}

FileTraceSource::~FileTraceSource() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FileTraceSource::next(MemRef& out) {
  if (read_ >= total_) return false;
  PackedRecord rec;
  if (std::fread(&rec, sizeof(rec), 1, file_) != 1) return false;
  ++read_;
  out.addr = rec.addr;
  out.pc = rec.pc;
  out.gap = rec.gap;
  out.is_write = (rec.flags & 1) != 0;
  return true;
}

}  // namespace redhip
