// Binary trace file format — the drop-in path for real (e.g. Pin) traces.
//
// Layout: a fixed 24-byte header followed by packed 16-byte records.
//   header:  magic "REDHIPT1" (8) | record_count u64 | reserved u64
//   record:  addr u64 | pc u32 | gap u16 | flags u16   (bit 0: write)
// All fields little-endian.  The writer and reader are deliberately simple
// streaming classes; a converter from a pintool's output is a ~20-line loop
// over TraceWriter::append.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "trace/mem_ref.h"

namespace redhip {

inline constexpr char kTraceMagic[8] = {'R', 'E', 'D', 'H', 'I', 'P', 'T', '1'};

class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const MemRef& ref);
  // Flushes the record count into the header and closes the file.  Called
  // by the destructor if not called explicitly; explicit calls can throw on
  // I/O errors, the destructor swallows them.
  void finish();

  std::uint64_t records_written() const { return count_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(const std::string& path);
  ~FileTraceSource() override;
  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  bool next(MemRef& out) override;

  std::uint64_t record_count() const { return total_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace redhip
