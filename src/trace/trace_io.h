// Binary trace file format — the drop-in path for real (e.g. Pin) traces.
//
// Layout: a fixed 24-byte header followed by packed 16-byte records.
//   header:  magic "REDHIPT1" (8) | record_count u64 | reserved u64
//   record:  addr u64 | pc u32 | gap u16 | flags u16   (bit 0: write)
// All fields little-endian.  The writer and reader are deliberately simple
// streaming classes; a converter from a pintool's output is a ~20-line loop
// over TraceWriter::append.
//
// Robustness: the reader validates the file up front — magic, header size,
// and that the byte length matches the header's record count exactly — and
// every failure carries a precise diagnostic (path, expected vs actual
// bytes) instead of a silent EOF.  `FileTraceSource::open` is the
// non-throwing Status/Result entry point; the constructor wraps it and
// throws for call sites that prefer exceptions.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "common/status.h"
#include "trace/mem_ref.h"

namespace redhip {

inline constexpr char kTraceMagic[8] = {'R', 'E', 'D', 'H', 'I', 'P', 'T', '1'};

class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const MemRef& ref);
  // Flushes the record count into the header and closes the file.  The file
  // is closed even when patching the header fails (no leaked FILE*), and a
  // second call is a no-op.  Called by the destructor if not called
  // explicitly; explicit calls can throw on I/O errors, the destructor
  // logs them to stderr instead.
  void finish();

  std::uint64_t records_written() const { return count_; }

 private:
  std::string path_;  // for diagnostics
  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

class FileTraceSource final : public TraceSource {
 public:
  // Validating factory: NOT_FOUND for a missing file, DATA_LOSS with the
  // exact byte counts for a truncated header, bad magic, or a record count
  // that does not match the file's length.
  static Result<std::unique_ptr<FileTraceSource>> open(const std::string& path);

  // Throwing convenience over open() (std::runtime_error with the Status
  // diagnostic).
  explicit FileTraceSource(const std::string& path);
  ~FileTraceSource() override;
  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  // Throws std::runtime_error if the file shrinks mid-read (the open-time
  // length check makes this impossible for an untouched file).
  bool next(MemRef& out) override;

  // Block read: one fread for up to `n` records instead of one per record.
  // Same sequence, same end-of-trace behaviour (returns the remaining count
  // when fewer than `n` records are left, then 0), same short-read error.
  std::size_t next_batch(MemRef* out, std::size_t n) override;

  std::uint64_t record_count() const { return total_; }

 private:
  FileTraceSource() = default;

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace redhip
