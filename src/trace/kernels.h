// Access-pattern kernels — the building blocks of the synthetic workloads.
//
// Each kernel is a deterministic state machine over a private address region
// that emits one memory reference per call.  A workload (workloads.h) mixes
// several kernels with burst scheduling to model one benchmark.  Kernels
// set addr/pc/is_write; the workload layer fills in the instruction gap.
//
// The kernels are chosen to span the locality behaviours that drive the
// paper's per-benchmark differences (Fig. 9): pure streaming, stencil plane
// reuse, uniform pointer chasing, indexed sparse gathers, frontier-driven
// graph traversal, SGD row updates, and hot/cold skewed sets.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "trace/mem_ref.h"

namespace redhip {

// A contiguous address region owned by one kernel.
struct Region {
  Addr base = 0;
  std::uint64_t bytes = 0;

  Addr at(std::uint64_t offset) const { return base + offset % bytes; }
};

class Kernel {
 public:
  virtual ~Kernel() = default;
  // Produce the next reference (addr, pc, is_write).
  virtual void next(MemRef& out) = 0;
  // Produce `n` references — exactly the sequence `n` next() calls emit.
  // Every concrete kernel overrides this with a loop whose per-reference
  // call is qualified (and therefore devirtualized and inlined), so a burst
  // costs one virtual dispatch instead of one per reference.
  virtual void next_n(MemRef* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) next(out[i]);
  }
  virtual const char* name() const = 0;
};

// ----------------------------------------------------------------- Streaming
// `streams` concurrent sequential cursors over equal slices of the region
// (modeling the multiple arrays of a streaming loop), each advancing by
// `stride_bytes`, interleaved round-robin.  Models lbm / bwaves.
class StreamKernel final : public Kernel {
 public:
  // `repeats`: how many times each element is touched before the cursor
  // advances (real loops often read-modify-write or reuse operands; this is
  // the temporal-locality knob that separates a 87.5% L1 hit rate from
  // 93.75% at an 8-byte stride).
  StreamKernel(Region region, std::uint32_t streams, std::uint32_t stride_bytes,
               std::uint32_t write_ppm, std::uint32_t pc_base,
               std::uint64_t seed, std::uint32_t repeats = 1);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "stream"; }

 private:
  Region region_;
  std::uint32_t streams_;
  std::uint32_t stride_;
  std::uint32_t write_ppm_;
  std::uint32_t pc_base_;
  std::uint32_t repeats_;
  std::uint32_t repeat_left_;
  std::uint64_t slice_;
  std::vector<std::uint64_t> cursor_;
  std::uint32_t turn_ = 0;
  Xoshiro256 rng_;
};

// ------------------------------------------------------------------- Stencil
// 7-point stencil sweep over an nx*ny*nz grid of 8-byte elements: per cell,
// reads of center and the +-x/+-y/+-z neighbours followed by a write of the
// center.  The +-y neighbours reuse lines within a plane row and the +-z
// neighbours reuse the previous plane, giving the L2/L3 reuse signature of
// cactusADM / GemsFDTD.
class StencilKernel final : public Kernel {
 public:
  StencilKernel(Region region, std::uint64_t nx, std::uint64_t ny,
                std::uint64_t nz, std::uint32_t pc_base);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "stencil"; }

 private:
  Region region_;
  std::uint64_t nx_, ny_, nz_;
  std::uint32_t pc_base_;
  std::uint64_t cell_ = 0;
  std::uint32_t point_ = 0;  // 0..6: -z,-y,-x,center,+x,+y,+z ; 7: write
};

// -------------------------------------------------------------- PointerChase
// Full-period LCG walk over the lines of the region (Hull–Dobell), visiting
// every line exactly once per period in a pseudo-random order; each node
// visit optionally reads `payload_lines` sequential lines of node payload.
// Models mcf's pointer-heavy network simplex.
class PointerChaseKernel final : public Kernel {
 public:
  PointerChaseKernel(Region region, std::uint32_t payload_lines,
                     std::uint32_t write_ppm, std::uint32_t pc_base,
                     std::uint64_t seed);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "chase"; }

 private:
  Region region_;
  std::uint64_t lines_;       // power of two
  std::uint64_t state_;
  std::uint64_t mul_, add_;   // LCG constants (full period mod lines_)
  std::uint32_t payload_lines_;
  std::uint32_t payload_left_ = 0;
  LineAddr payload_cursor_ = 0;
  std::uint32_t write_ppm_;
  std::uint32_t pc_base_;
  Xoshiro256 rng_;
};

// ------------------------------------------------------------------ ZipfWalk
// Power-law line accesses over the region with short element bursts: the
// workhorse for "hot spectrum" structures (open lists, node attributes,
// score tables) whose reuse distances span every cache tier.
class ZipfWalkKernel final : public Kernel {
 public:
  ZipfWalkKernel(Region region, std::uint32_t zipf_k, std::uint32_t burst_mean,
                 std::uint32_t write_ppm, std::uint32_t pc_base,
                 std::uint64_t seed);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "zipf"; }

 private:
  Region region_;
  ZipfSampler sampler_;
  std::uint32_t burst_mean_;
  std::uint32_t write_ppm_;
  std::uint32_t pc_base_;
  Xoshiro256 rng_;
  std::uint32_t burst_left_ = 0;
  Addr burst_cursor_ = 0;
};

// ------------------------------------------------------------- SparseGather
// CSR-style sparse kernel: sequential reads from an index region, gathers
// from a large vector region at skewed (hot/cold) random positions, and
// periodic sequential writes to a result region.  Models soplex / milc.
class SparseGatherKernel final : public Kernel {
 public:
  // Gather targets are drawn from a power-law over the vector when
  // zipf_k >= 1 (column popularity), or from the two-tier hot/cold sampler
  // when zipf_k == 0.
  // Each gather target is read as `gather_elems` consecutive elements
  // (complex numbers, coordinate pairs, ... — the source of gathers'
  // residual spatial locality).
  SparseGatherKernel(Region index_region, Region vector_region,
                     Region result_region, std::uint32_t gathers_per_index,
                     std::uint32_t hot_fraction_ppm,
                     std::uint32_t hot_access_ppm, std::uint32_t pc_base,
                     std::uint64_t seed, std::uint32_t zipf_k = 0,
                     std::uint32_t gather_elems = 1);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "sparse"; }

 private:
  Region index_region_, vector_region_, result_region_;
  std::uint32_t gathers_per_index_;
  std::uint32_t gather_elems_;
  std::uint32_t pc_base_;
  HotColdSampler sampler_;
  ZipfSampler zipf_;
  std::uint32_t zipf_k_;
  Xoshiro256 rng_;
  std::uint64_t index_cursor_ = 0;
  std::uint64_t result_cursor_ = 0;
  Addr gather_target_ = 0;
  std::uint32_t phase_ = 0;  // 0: index; then g groups of gather_elems; write
};

// ---------------------------------------------------------------------- BFS
// Frontier-driven traversal: sequential frontier reads, then a burst of
// sequential edge-list reads at a random offset, with a random visited-map
// access (read, sometimes write) per edge.  Models Graph500/CombBLAS.
class BfsKernel final : public Kernel {
 public:
  // The visited-map accesses follow a power law (`visited_zipf_k`): BFS
  // frontiers have community structure, so recently discovered vertices are
  // re-checked at every reuse distance.
  BfsKernel(Region frontier_region, Region edge_region, Region visited_region,
            std::uint32_t mean_degree, std::uint32_t visited_zipf_k,
            std::uint32_t pc_base, std::uint64_t seed);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "bfs"; }

 private:
  Region frontier_region_, edge_region_, visited_region_;
  std::uint32_t mean_degree_;
  std::uint32_t pc_base_;
  ZipfSampler visited_sampler_;
  Xoshiro256 rng_;
  std::uint64_t frontier_cursor_ = 0;
  std::uint64_t edge_cursor_ = 0;
  std::uint32_t edges_left_ = 0;
  std::uint32_t visited_after_ = 0;  // emit a visited check every N edges
};

// ---------------------------------------------------------------------- SGD
// Stochastic gradient descent on a factor model: per step, pick a random
// (user, item) pair, stream both factor rows (reads), then write both back.
// Models the GraphLab probabilistic matrix factorization ("pmf").
class SgdKernel final : public Kernel {
 public:
  // Ratings follow item/user popularity: rows are drawn from a power law
  // of skew `zipf_k` (1 = uniform).
  SgdKernel(Region user_region, Region item_region, std::uint32_t row_bytes,
            std::uint32_t pc_base, std::uint64_t seed,
            std::uint32_t zipf_k = 1);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "sgd"; }

 private:
  Region user_region_, item_region_;
  std::uint32_t row_bytes_;
  std::uint32_t pc_base_;
  ZipfSampler user_sampler_, item_sampler_;
  Xoshiro256 rng_;
  Addr user_row_ = 0, item_row_ = 0;
  std::uint32_t offset_ = 0;
  std::uint32_t phase_ = 0;  // 0: read user, 1: read item, 2: write user, 3: write item
};

// ------------------------------------------------------------------ HotCold
// Skewed random line accesses: a small hot set absorbs most accesses, the
// rest fall uniformly over the region; occasional short sequential bursts.
// Models astar's open list + grid mixture.
class HotColdKernel final : public Kernel {
 public:
  HotColdKernel(Region region, std::uint32_t hot_fraction_ppm,
                std::uint32_t hot_access_ppm, std::uint32_t burst_mean,
                std::uint32_t write_ppm, std::uint32_t pc_base,
                std::uint64_t seed);
  void next(MemRef& out) override;
  void next_n(MemRef* out, std::size_t n) override;
  const char* name() const override { return "hotcold"; }

 private:
  Region region_;
  HotColdSampler sampler_;
  std::uint32_t burst_mean_;
  std::uint32_t write_ppm_;
  std::uint32_t pc_base_;
  Xoshiro256 rng_;
  std::uint32_t burst_left_ = 0;
  LineAddr burst_cursor_ = 0;
};

}  // namespace redhip
