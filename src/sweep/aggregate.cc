#include "sweep/aggregate.h"

#include <sstream>

#include "common/check.h"
#include "common/file_io.h"

namespace redhip {

double metric_dynamic_energy_j(const SweepCell& cell) {
  return cell.result.energy.dynamic_total_j();
}
double metric_total_energy_j(const SweepCell& cell) {
  return cell.result.energy.total_j();
}
double metric_exec_cycles(const SweepCell& cell) {
  return static_cast<double>(cell.result.exec_cycles);
}

SensitivityTable sensitivity_table(const SweepOutcome& outcome,
                                   std::size_t axis_index,
                                   const CellMetric& metric) {
  REDHIP_CHECK(axis_index < outcome.axis_labels.size());
  SensitivityTable table;
  table.axis = outcome.axis_names[axis_index];
  table.rows.resize(outcome.axis_labels[axis_index].size());
  for (std::size_t v = 0; v < table.rows.size(); ++v) {
    table.rows[v].label = outcome.axis_labels[axis_index][v];
  }
  for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
    const SweepCell& cell = outcome.cells[i];
    SensitivityRow& row = table.rows[cell.coord[axis_index]];
    row.mean += metric(cell);
    ++row.cells;
  }
  for (SensitivityRow& row : table.rows) {
    if (row.cells > 0) row.mean /= static_cast<double>(row.cells);
  }
  return table;
}

std::vector<ParetoPoint> pareto_vs_base(const SweepOutcome& outcome,
                                        std::size_t axis_index,
                                        std::size_t base_value_index) {
  REDHIP_CHECK(axis_index < outcome.axis_labels.size());
  REDHIP_CHECK(base_value_index < outcome.axis_labels[axis_index].size());
  std::vector<ParetoPoint> points;
  for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
    const SweepCell& cell = outcome.cells[i];
    if (cell.coord[axis_index] == base_value_index) continue;
    std::vector<std::size_t> base_coord = cell.coord;
    base_coord[axis_index] = base_value_index;
    const SweepCell& base = outcome.cells[outcome.cell_index(base_coord)];
    const Comparison cmp = compare(base.result, cell.result);
    points.push_back({i, cmp.speedup, cmp.total_energy_ratio, false});
  }
  mark_pareto_front(points);
  return points;
}

void mark_pareto_front(std::vector<ParetoPoint>& points) {
  for (ParetoPoint& p : points) {
    p.on_front = true;
    for (const ParetoPoint& q : points) {
      const bool no_worse = q.speedup >= p.speedup &&
                            q.total_energy_ratio <= p.total_energy_ratio;
      const bool better = q.speedup > p.speedup ||
                          q.total_energy_ratio < p.total_energy_ratio;
      if (no_worse && better) {
        p.on_front = false;
        break;
      }
    }
  }
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

void append_cell_metrics_json(std::ostringstream& os, const SweepCell& cell) {
  const SimResult& r = cell.result;
  os << "\"total_refs\":" << r.total_refs
     << ",\"exec_cycles\":" << r.exec_cycles
     << ",\"total_core_cycles\":" << r.total_core_cycles
     << ",\"dynamic_energy_j\":" << r.energy.dynamic_total_j()
     << ",\"total_energy_j\":" << r.energy.total_j()
     << ",\"l1_miss_rate\":" << r.l1_miss_rate()
     << ",\"offchip_fraction\":" << r.offchip_fraction();
}

}  // namespace

std::string sweep_report_json(const SweepOutcome& outcome) {
  std::ostringstream os;
  os << "{\"schema_version\":1,\"axes\":[";
  for (std::size_t a = 0; a < outcome.axis_names.size(); ++a) {
    if (a > 0) os << ',';
    os << "{\"name\":\"" << json_escape(outcome.axis_names[a])
       << "\",\"values\":[";
    for (std::size_t v = 0; v < outcome.axis_labels[a].size(); ++v) {
      if (v > 0) os << ',';
      os << '"' << json_escape(outcome.axis_labels[a][v]) << '"';
    }
    os << "]}";
  }
  os << "],\"cells\":[";
  for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
    const SweepCell& cell = outcome.cells[i];
    if (i > 0) os << ',';
    os << "{\"labels\":[";
    for (std::size_t a = 0; a < cell.labels.size(); ++a) {
      if (a > 0) os << ',';
      os << '"' << json_escape(cell.labels[a]) << '"';
    }
    os << "],\"key\":\"" << hex_key(cell.key) << "\",\"from_cache\":"
       << (cell.from_cache ? "true" : "false") << ',';
    append_cell_metrics_json(os, cell);
    os << '}';
  }
  os << "],\"stats\":{\"cells\":" << outcome.stats.cells
     << ",\"cache_hits\":" << outcome.stats.cache_hits
     << ",\"simulated\":" << outcome.stats.simulated
     << ",\"wall_seconds\":" << outcome.stats.wall_seconds << "}}";
  return os.str();
}

std::string sweep_report_csv(const SweepOutcome& outcome) {
  std::ostringstream os;
  for (const std::string& name : outcome.axis_names) os << name << ',';
  os << "key,from_cache,total_refs,exec_cycles,total_core_cycles,"
        "dynamic_energy_j,total_energy_j,l1_miss_rate,offchip_fraction\n";
  for (const SweepCell& cell : outcome.cells) {
    for (const std::string& label : cell.labels) os << label << ',';
    const SimResult& r = cell.result;
    os << hex_key(cell.key) << ',' << (cell.from_cache ? 1 : 0) << ','
       << r.total_refs << ',' << r.exec_cycles << ','
       << r.total_core_cycles << ',' << r.energy.dynamic_total_j() << ','
       << r.energy.total_j() << ',' << r.l1_miss_rate() << ','
       << r.offchip_fraction() << '\n';
  }
  return os.str();
}

Status write_text_file(const std::string& path, const std::string& content) {
  // Atomic temp+rename: a reader (or a crash) never observes a half-written
  // report — the old file survives intact until the new one is complete.
  return write_file_atomic(path, content);
}

}  // namespace redhip
