// Aggregation over a completed sweep: per-axis sensitivity tables, the
// Pareto front over (speedup, total-energy ratio) against a baseline axis
// value, and machine-readable JSON/CSV reports.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sweep/sweep.h"

namespace redhip {

using CellMetric = std::function<double(const SweepCell&)>;

// Stock metrics.
double metric_dynamic_energy_j(const SweepCell& cell);
double metric_total_energy_j(const SweepCell& cell);
double metric_exec_cycles(const SweepCell& cell);

struct SensitivityRow {
  std::string label;   // the axis value
  double mean = 0.0;   // mean metric over every cell with that value
  std::size_t cells = 0;
};
struct SensitivityTable {
  std::string axis;
  std::vector<SensitivityRow> rows;  // one per axis value, in axis order
};

// How the sweep responds to one axis: the metric averaged over every other
// axis, per value of `axis_index`.
SensitivityTable sensitivity_table(const SweepOutcome& outcome,
                                   std::size_t axis_index,
                                   const CellMetric& metric);

struct ParetoPoint {
  std::size_t cell_index = 0;        // into outcome.cells
  double speedup = 1.0;              // vs the baseline cell
  double total_energy_ratio = 1.0;   // vs the baseline cell
  bool on_front = false;
};

// Compare every cell against the cell that shares all its coordinates
// except `axis_index`, where the baseline sits at `base_value_index`
// (typically the scheme axis' "Base").  Baseline cells themselves are not
// emitted.  Then mark the Pareto front: a point is on the front iff no
// other point has >= speedup and <= energy ratio with at least one strict.
std::vector<ParetoPoint> pareto_vs_base(const SweepOutcome& outcome,
                                        std::size_t axis_index,
                                        std::size_t base_value_index);

// Front-marking on its own (exposed for tests and custom metrics).
void mark_pareto_front(std::vector<ParetoPoint>& points);

// Full machine-readable report: axes, per-cell coordinates + key + cache
// provenance + headline metrics, and the run stats.  Stable key order.
std::string sweep_report_json(const SweepOutcome& outcome);
// One row per cell: axis columns, then key/provenance/metrics.
std::string sweep_report_csv(const SweepOutcome& outcome);

// Atomic (temp + rename): a crash mid-write never leaves a truncated
// report, and the previous file stays intact until the new one is complete.
Status write_text_file(const std::string& path, const std::string& content);

}  // namespace redhip
