#include "sweep/axes.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "common/bitops.h"
#include "energy/cacti_lite.h"

namespace redhip {
namespace {

[[noreturn]] void axis_error(const std::string& axis, const std::string& what) {
  Status(StatusCode::kInvalidArgument, "--axis " + axis + ": " + what)
      .throw_if_error();
  std::abort();  // unreachable: the Status above is never OK
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// "512K" / "2M" / "64" with binary (KiB/MiB/GiB) magnitudes — sizes.
bool parse_size_bytes(const std::string& v, std::uint64_t& out) {
  if (v.empty()) return false;
  std::uint64_t mult = 1;
  std::size_t digits = v.size();
  switch (v.back()) {
    case 'K': mult = 1ull << 10; --digits; break;
    case 'M': mult = 1ull << 20; --digits; break;
    case 'G': mult = 1ull << 30; --digits; break;
    default: break;
  }
  if (digits == 0) return false;
  std::uint64_t base = 0;
  const char* begin = v.data();
  const auto [ptr, ec] = std::from_chars(begin, begin + digits, base);
  if (ec != std::errc() || ptr != begin + digits) return false;
  out = base * mult;
  return true;
}

// "10K" / "1M" / "250000" with decimal (1e3/1e6/1e9) magnitudes — counts,
// matching Fig. 12's interval labels.
bool parse_count(const std::string& v, std::uint64_t& out) {
  if (v.empty()) return false;
  std::uint64_t mult = 1;
  std::size_t digits = v.size();
  switch (v.back()) {
    case 'K': mult = 1'000; --digits; break;
    case 'M': mult = 1'000'000; --digits; break;
    case 'G': mult = 1'000'000'000; --digits; break;
    default: break;
  }
  if (digits == 0) return false;
  std::uint64_t base = 0;
  const char* begin = v.data();
  const auto [ptr, ec] = std::from_chars(begin, begin + digits, base);
  if (ec != std::errc() || ptr != begin + digits) return false;
  out = base * mult;
  return true;
}

SweepAxis workload_axis(const std::string& axis, std::vector<std::string> vals,
                        const ExperimentOptions& opts) {
  SweepAxis out{"workload", {}};
  std::vector<BenchmarkId> ids;
  if (vals.size() == 1 && vals[0] == "all") {
    ids = opts.benches;
  } else {
    for (const std::string& v : vals) {
      bool found = false;
      for (BenchmarkId id : all_benchmarks()) {
        if (to_string(id) == v) {
          ids.push_back(id);
          found = true;
          break;
        }
      }
      if (!found) axis_error(axis, "unknown benchmark '" + v + "'");
    }
  }
  for (BenchmarkId id : ids) {
    out.values.push_back({to_string(id), [id](RunSpec& s) { s.bench = id; }});
  }
  return out;
}

SweepAxis scheme_axis(const std::string& axis,
                      const std::vector<std::string>& vals) {
  static const Scheme kAll[] = {Scheme::kBase,   Scheme::kPhased,
                                Scheme::kCbf,    Scheme::kRedhip,
                                Scheme::kOracle, Scheme::kPartialTag};
  SweepAxis out{"scheme", {}};
  for (const std::string& v : vals) {
    const Scheme* match = nullptr;
    for (const Scheme& s : kAll) {
      if (to_string(s) == v) {
        match = &s;
        break;
      }
    }
    if (match == nullptr) axis_error(axis, "unknown scheme '" + v + "'");
    const Scheme s = *match;
    out.values.push_back({v, [s](RunSpec& spec) { spec.scheme = s; }});
  }
  return out;
}

SweepAxis inclusion_axis(const std::string& axis,
                         const std::vector<std::string>& vals) {
  static const InclusionPolicy kAll[] = {InclusionPolicy::kInclusive,
                                         InclusionPolicy::kHybrid,
                                         InclusionPolicy::kExclusive};
  SweepAxis out{"inclusion", {}};
  for (const std::string& v : vals) {
    const InclusionPolicy* match = nullptr;
    for (const InclusionPolicy& p : kAll) {
      if (to_string(p) == v) {
        match = &p;
        break;
      }
    }
    if (match == nullptr) axis_error(axis, "unknown inclusion policy '" + v + "'");
    const InclusionPolicy p = *match;
    out.values.push_back({v, [p](RunSpec& spec) { spec.inclusion = p; }});
  }
  return out;
}

SweepAxis prefetch_axis(const std::string& axis,
                        const std::vector<std::string>& vals) {
  SweepAxis out{"prefetch", {}};
  for (const std::string& v : vals) {
    bool on = false;
    if (v == "on" || v == "1" || v == "true") {
      on = true;
    } else if (v != "off" && v != "0" && v != "false") {
      axis_error(axis, "expected on/off, got '" + v + "'");
    }
    out.values.push_back({v, [on](RunSpec& spec) { spec.prefetch = on; }});
  }
  return out;
}

// Fig. 11's design points: the PT resized relative to its 512K default,
// accuracy effect only (the energy parameters stay at the default table's
// pricing, mirroring the paper's "ignore the prediction overhead" for
// these results).
SweepAxis table_size_axis(const std::string& axis,
                          const std::vector<std::string>& vals) {
  SweepAxis out{"table-size", {}};
  constexpr std::uint64_t kDefaultBytes = 512ull << 10;
  for (const std::string& v : vals) {
    std::uint64_t bytes = 0;
    if (!parse_size_bytes(v, bytes) || !is_pow2(bytes)) {
      axis_error(axis, "expected a power-of-two size (e.g. 512K, 2M), got '" +
                           v + "'");
    }
    out.values.push_back({v, [bytes](RunSpec& spec) {
      chain_tweak(spec, [bytes](HierarchyConfig& c) {
        c.redhip.table_bits =
            bytes >= kDefaultBytes
                ? c.redhip.table_bits * (bytes / kDefaultBytes)
                : c.redhip.table_bits / (kDefaultBytes / bytes);
      });
    }});
  }
  return out;
}

// Fig. 12's design points: a paper-scale interval divided by `scale` like
// the rest of the machine; "inf" = never recalibrate, "1" = every miss.
SweepAxis recal_interval_axis(const std::string& axis,
                              const std::vector<std::string>& vals,
                              const ExperimentOptions& opts) {
  SweepAxis out{"recal-interval", {}};
  for (const std::string& v : vals) {
    std::uint64_t interval = 0;
    if (v != "inf" && !parse_count(v, interval)) {
      axis_error(axis, "expected a count (e.g. 1M, 10K) or inf, got '" + v +
                           "'");
    }
    const std::uint32_t scale = opts.scale;
    out.values.push_back({v, [interval, scale](RunSpec& spec) {
      chain_tweak(spec, [interval, scale](HierarchyConfig& c) {
        c.redhip.recal_interval_l1_misses =
            interval == 0 ? 0
                          : std::max<std::uint64_t>(1, interval / scale);
      });
    }});
  }
  return out;
}

SweepAxis depth_axis(const std::string& axis,
                     const std::vector<std::string>& vals,
                     const ExperimentOptions& opts) {
  SweepAxis out{"depth", {}};
  for (const std::string& v : vals) {
    std::uint64_t depth = 0;
    if (!parse_count(v, depth) || depth < 2 || depth > 5) {
      axis_error(axis, "supported depths are 2..5, got '" + v + "'");
    }
    const std::uint32_t d = static_cast<std::uint32_t>(depth);
    const std::uint32_t scale = opts.scale;
    out.values.push_back({v, [d, scale](RunSpec& spec) {
      chain_tweak(spec, [d, scale](HierarchyConfig& c) {
        c = HierarchyConfig::with_depth(d, scale, c.scheme);
      });
    }});
  }
  return out;
}

// Paper-scale LLC capacity; the PT, CBF budget and wire delay re-derive
// against the new LLC exactly as HierarchyConfig::with_depth does.
SweepAxis llc_capacity_axis(const std::string& axis,
                            const std::vector<std::string>& vals,
                            const ExperimentOptions& opts) {
  SweepAxis out{"llc-capacity", {}};
  for (const std::string& v : vals) {
    std::uint64_t bytes = 0;
    if (!parse_size_bytes(v, bytes) || !is_pow2(bytes)) {
      axis_error(axis, "expected a power-of-two size (e.g. 64M), got '" + v +
                           "'");
    }
    const std::uint32_t scale = opts.scale;
    out.values.push_back({v, [bytes, scale](RunSpec& spec) {
      chain_tweak(spec, [bytes, scale](HierarchyConfig& c) {
        LevelSpec& llc = c.levels.back();
        llc.geom.size_bytes = bytes / scale;
        llc.energy = CactiLite::cache_params(llc.geom.size_bytes, true);
        c.redhip.table_bits = llc.geom.size_bytes / 16;
        c.redhip.energy = CactiLite::pt_params(c.redhip.table_bits / 8);
        c.redhip.energy.wire_delay = std::max<Cycles>(
            1, (5 * llc.energy.data_delay + 11) / 22);
        c.cbf = CbfConfig::for_area_budget(c.redhip.table_bits / 8);
        c.cbf.energy = c.redhip.energy;
      });
    }});
  }
  return out;
}

SweepAxis numeric_axis(const std::string& axis, const std::string& name,
                       const std::vector<std::string>& vals,
                       void (*set)(RunSpec&, std::uint64_t)) {
  SweepAxis out{name, {}};
  for (const std::string& v : vals) {
    std::uint64_t value = 0;
    if (!parse_count(v, value)) {
      axis_error(axis, "expected a number, got '" + v + "'");
    }
    out.values.push_back({v, [set, value](RunSpec& s) { set(s, value); }});
  }
  return out;
}

}  // namespace

SweepAxis make_named_axis(const std::string& axis_spec,
                          const ExperimentOptions& opts) {
  const std::size_t eq = axis_spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    axis_error(axis_spec, "expected name=v1,v2,...");
  }
  const std::string name = axis_spec.substr(0, eq);
  const std::vector<std::string> vals = split_csv(axis_spec.substr(eq + 1));
  if (vals.empty()) axis_error(axis_spec, "no values");

  if (name == "workload") return workload_axis(axis_spec, vals, opts);
  if (name == "scheme") return scheme_axis(axis_spec, vals);
  if (name == "inclusion") return inclusion_axis(axis_spec, vals);
  if (name == "prefetch") return prefetch_axis(axis_spec, vals);
  if (name == "table-size") return table_size_axis(axis_spec, vals);
  if (name == "recal-interval") {
    return recal_interval_axis(axis_spec, vals, opts);
  }
  if (name == "depth") return depth_axis(axis_spec, vals, opts);
  if (name == "llc-capacity") return llc_capacity_axis(axis_spec, vals, opts);
  if (name == "scale") {
    return numeric_axis(axis_spec, "scale", vals, [](RunSpec& s, std::uint64_t v) {
      s.scale = static_cast<std::uint32_t>(v);
    });
  }
  if (name == "refs") {
    return numeric_axis(axis_spec, "refs", vals,
                        [](RunSpec& s, std::uint64_t v) { s.refs_per_core = v; });
  }
  if (name == "seed") {
    return numeric_axis(axis_spec, "seed", vals,
                        [](RunSpec& s, std::uint64_t v) { s.seed = v; });
  }

  std::string known;
  for (const std::string& k : known_axis_names()) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  axis_error(axis_spec, "unknown axis '" + name + "' (known: " + known + ")");
}

const std::vector<std::string>& known_axis_names() {
  static const std::vector<std::string> kNames = {
      "workload", "scheme", "inclusion",    "prefetch", "table-size",
      "recal-interval", "depth", "llc-capacity", "scale", "refs", "seed"};
  return kNames;
}

}  // namespace redhip
