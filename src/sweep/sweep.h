// Declarative design-space sweeps.
//
// A SweepSpec names axes (workload, scheme, PT size, recalibration
// interval, hierarchy depth, ...); each axis value is a label plus a
// modifier applied to a RunSpec.  The executor expands the cross-product,
// keys every cell by its content address (sweep_cache_key over the fully
// resolved config + workload identity), serves warm cells from the
// ResultCache, and simulates only the missing ones — longest-estimated-job
// first on the shared ThreadPool, persisting each completed cell
// immediately so an interrupted sweep resumes having lost at most the
// in-flight cells.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sweep/result_cache.h"

namespace redhip {

struct AxisValue {
  std::string label;
  // Mutates the cell's RunSpec (set a field, chain a config tweak — see
  // chain_tweak).  Axes apply in declaration order, so a later axis may
  // read what an earlier one set (e.g. the bench chosen by the workload
  // axis).  Null = label-only value.
  std::function<void(RunSpec&)> apply;
};

struct SweepAxis {
  std::string name;
  std::vector<AxisValue> values;
};

struct SweepSpec {
  // Defaults for everything no axis overrides (scale, refs, seed, engine).
  RunSpec base;
  std::vector<SweepAxis> axes;

  std::size_t cells() const;  // cross-product size (1 when axes is empty)
};

// Append `extra` to spec.tweak (runs after whatever is already chained).
void chain_tweak(RunSpec& spec, std::function<void(HierarchyConfig&)> extra);

struct SweepCell {
  RunSpec spec;                     // fully built (all axes applied)
  std::vector<std::size_t> coord;   // value index along each axis
  std::vector<std::string> labels;  // the matching axis-value labels
  std::uint64_t key = 0;            // sweep_cache_key(spec)
  bool from_cache = false;
  SimResult result;
  // OK for a completed cell; kDeadlineExceeded when the cell timed out
  // twice under SweepRunOptions::cell_timeout (result is then
  // default-constructed — never a silently zeroed row in a figure).
  Status status = Status::Ok();
};

struct SweepStats {
  std::size_t cells = 0;
  std::size_t cache_hits = 0;
  std::size_t simulated = 0;
  double wall_seconds = 0.0;
};

struct SweepOutcome {
  std::vector<std::string> axis_names;
  std::vector<std::vector<std::string>> axis_labels;  // per axis, per value
  // Row-major over the axes, last axis fastest: for axes of sizes
  // (N0, N1, ...), cell (i0, i1, ...) lives at ((i0*N1)+i1)*N2 + ...
  std::vector<SweepCell> cells;
  SweepStats stats;

  std::size_t cell_index(const std::vector<std::size_t>& coord) const;
};

struct SweepRunOptions {
  std::string cache_dir;  // empty = no cache (every cell simulates)
  // false: existing entries are ignored (every cell re-simulates) but the
  // cache is still refreshed — the "measure again from scratch" switch.
  bool resume = true;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  // Crash-safe checkpointing (src/ckpt).  When `ckpt_dir` names a
  // directory, every simulated cell checkpoints there under
  // `<hex ckpt_key>.ckpt` and restores a valid existing file before
  // running.  The key excludes refs_per_core and engine, so cells that
  // differ only along those axes SHARE one file — that is the warmup-
  // sharing mechanism: with `warmup_refs` > 0 the first cell to execute
  // that many aggregate references writes a one-shot warmup checkpoint,
  // and every later same-key cell starts from it instead of replaying the
  // prefix.  A torn/corrupt/foreign file is evicted with a DATA_LOSS
  // diagnostic and the cell cold-starts; results are bit-identical either
  // way.  Empty = no checkpointing.
  std::string ckpt_dir;
  std::uint64_t ckpt_interval = 0;  // periodic, aggregate refs (0 = never)
  std::uint64_t warmup_refs = 0;    // one-shot shared warmup (0 = never)
  // Per-cell wall-clock budget in seconds (0 = none).  A cell exceeding it
  // aborts at its next safe boundary and is retried once; a second timeout
  // records Status(kDeadlineExceeded) in SweepCell::status and the sweep
  // carries on — one stuck cell cannot hang the whole sweep.
  double cell_timeout = 0.0;
};

// Expansion only (no simulation): cells with spec/coord/labels/key filled.
std::vector<SweepCell> expand(const SweepSpec& spec);

SweepOutcome run_sweep(const SweepSpec& spec, const SweepRunOptions& opt = {});

// run_matrix's (benchmark x scheme-column) contract on the sweep engine:
// same results (bit-identical — same RunSpecs, and every run is
// deterministic), plus the result cache when opts.cache_dir is set.  When
// opts.trace_events is set the cache is bypassed entirely (a cache hit
// would skip the simulation that writes the per-cell event trace).
std::vector<std::vector<SimResult>> sweep_matrix(
    const ExperimentOptions& opts, const std::vector<SchemeColumn>& columns,
    SweepStats* stats = nullptr);

}  // namespace redhip
