// Content address of one simulation run.
//
// The sweep result cache must never serve a stale result, so the key is a
// digest of *everything the simulated statistics depend on*: the fully
// resolved HierarchyConfig (after scaling and every tweak hook), the
// workload identity (benchmark, scale, seed, refs per core), the engine,
// and a schema version bumped whenever the digest coverage or the cached
// payload layout changes.  Host-side fields that cannot change the
// simulated outcome (the obs trace path, host timing switches) are the only
// deliberate exclusions — see DESIGN.md "Sweep & result cache".
#pragma once

#include <cstdint>

#include "harness/run.h"

namespace redhip {

// Bump on any change to config_digest coverage, to sweep_cache_key
// composition, or to the cache entry payload layout (result_cache.cc) —
// old entries then miss instead of deserializing garbage.
inline constexpr std::uint32_t kSweepCacheSchemaVersion = 1;

// Digest of a fully-resolved machine description.  Two configs digest
// equal iff every simulated-behaviour-relevant field is equal.
std::uint64_t config_digest(const HierarchyConfig& config);

// Cache key for one RunSpec: schema version + engine + workload identity +
// config_digest(resolved_config(spec)).
std::uint64_t sweep_cache_key(const RunSpec& spec);

}  // namespace redhip
