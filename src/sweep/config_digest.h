// Content address of one simulation run.
//
// The sweep result cache must never serve a stale result, so the key is a
// digest of *everything the simulated statistics depend on*: the fully
// resolved HierarchyConfig (after scaling and every tweak hook — see
// sim/config_digest.h), the workload identity (benchmark, scale, seed, refs
// per core), the engine, and a schema version bumped whenever the digest
// coverage or the cached payload layout changes.
#pragma once

#include <cstdint>

#include "harness/run.h"
#include "sim/config_digest.h"

namespace redhip {

// Bump on any change to config_digest coverage, to sweep_cache_key
// composition, or to the cache entry payload layout (result_cache.cc) —
// old entries then miss instead of deserializing garbage.
inline constexpr std::uint32_t kSweepCacheSchemaVersion = 1;

// Cache key for one RunSpec: schema version + engine + workload identity +
// config_digest(resolved_config(spec)).
std::uint64_t sweep_cache_key(const RunSpec& spec);

}  // namespace redhip
