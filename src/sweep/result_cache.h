// ResultCache — the content-addressed on-disk store behind resumable
// sweeps.
//
// One file per completed simulation, named by the 64-bit sweep_cache_key
// in hex.  Entries are self-validating (magic, schema version, embedded
// key, length, FNV-1a payload checksum); anything that fails a check —
// truncation, a flipped byte, an old schema — is reported as DATA_LOSS and
// the caller discards and re-simulates rather than trusting it.  Writes go
// to a unique temp file followed by an atomic rename, so a process killed
// mid-sweep loses at most the cells that were in flight; every entry that
// exists is complete.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>

#include "common/status.h"
#include "sim/stats.h"

namespace redhip {

// Payload codec, exposed for tests.  Serializes every field that
// stats_identical compares (and nothing host-side: host_seconds,
// host_mrefs_per_s and obs_timing are wall-clock properties of the machine
// that happened to run the simulation, meaningless to replay from a cache).
std::string serialize_result(const SimResult& result);
Result<SimResult> deserialize_result(const std::string& payload);

class ResultCache {
 public:
  // Creates `dir` (and parents) if needed.
  explicit ResultCache(std::filesystem::path dir);

  // NOT_FOUND when no entry exists; DATA_LOSS (with the failing check
  // named) when an entry exists but does not validate.
  Result<SimResult> load(std::uint64_t key) const;

  // Atomic: temp file + rename.  Thread-safe for distinct and identical
  // keys (last rename wins; identical keys hold identical payloads).
  Status store(std::uint64_t key, const SimResult& result) const;

  // Remove an entry (used to evict corrupt files before re-simulating).
  void discard(std::uint64_t key) const;

  // Remove `.tmp*` files left behind by killed writers.  Only temps older
  // than `min_age` are touched — younger ones may belong to a concurrent
  // live sweep.  Returns how many files were removed.
  std::size_t gc_orphan_temps(
      std::chrono::seconds min_age = std::chrono::seconds(900)) const;

  std::filesystem::path entry_path(std::uint64_t key) const;
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

}  // namespace redhip
