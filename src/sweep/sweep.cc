#include "sweep/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "ckpt/checkpoint_io.h"
#include "common/check.h"
#include "harness/thread_pool.h"
#include "sim/config_digest.h"
#include "sweep/config_digest.h"

namespace redhip {

std::size_t SweepSpec::cells() const {
  std::size_t n = 1;
  for (const SweepAxis& axis : axes) n *= axis.values.size();
  return n;
}

void chain_tweak(RunSpec& spec, std::function<void(HierarchyConfig&)> extra) {
  auto prev = std::move(spec.tweak);
  spec.tweak = [prev = std::move(prev),
                extra = std::move(extra)](HierarchyConfig& hc) {
    if (prev) prev(hc);
    extra(hc);
  };
}

std::size_t SweepOutcome::cell_index(
    const std::vector<std::size_t>& coord) const {
  REDHIP_CHECK(coord.size() == axis_labels.size());
  std::size_t index = 0;
  for (std::size_t a = 0; a < coord.size(); ++a) {
    REDHIP_CHECK(coord[a] < axis_labels[a].size());
    index = index * axis_labels[a].size() + coord[a];
  }
  return index;
}

std::vector<SweepCell> expand(const SweepSpec& spec) {
  for (const SweepAxis& axis : spec.axes) {
    REDHIP_CHECK_MSG(!axis.values.empty(),
                     "sweep axis '" + axis.name + "' has no values");
  }
  std::vector<SweepCell> cells;
  cells.reserve(spec.cells());
  std::vector<std::size_t> coord(spec.axes.size(), 0);
  for (std::size_t n = spec.cells(); n > 0; --n) {
    SweepCell cell;
    cell.spec = spec.base;
    cell.coord = coord;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const AxisValue& v = spec.axes[a].values[coord[a]];
      cell.labels.push_back(v.label);
      if (v.apply) v.apply(cell.spec);
    }
    cell.key = sweep_cache_key(cell.spec);
    cells.push_back(std::move(cell));
    // Odometer, last axis fastest.
    for (std::size_t a = coord.size(); a-- > 0;) {
      if (++coord[a] < spec.axes[a].values.size()) break;
      coord[a] = 0;
    }
  }
  return cells;
}

namespace {

// One cell, with the same retry policy run_matrix applies.  A transient
// injected fault reseeds the fault stream (nothing else) and tries again,
// bounded by kMaxTransientAttempts; the reseed changes the config digest,
// so a checkpoint from the aborted attempt misses on key and the retry
// cold-starts.  A deadline abort retries once with the original spec (an
// interval checkpoint from the first attempt — same key — shortens the
// retry); a second timeout lands in cell.status instead of hanging or
// zeroing the sweep.
void run_cell_with_retry(SweepCell& cell) {
  std::uint32_t fault_attempt = 0;
  bool deadline_retried = false;
  for (;;) {
    RunSpec spec = cell.spec;
    if (fault_attempt > 0) {
      chain_tweak(spec, [fault_attempt](HierarchyConfig& hc) {
        hc.fault.seed += fault_attempt * 0x9e3779b9ull;
      });
    }
    try {
      cell.result = run_spec(spec);
      return;
    } catch (const TransientFaultError&) {
      if (++fault_attempt >= kMaxTransientAttempts) throw;
    } catch (const DeadlineExceededError& e) {
      if (!deadline_retried) {
        deadline_retried = true;
        continue;
      }
      std::string where;
      for (const std::string& label : cell.labels) {
        if (!where.empty()) where += '/';
        where += label;
      }
      cell.status =
          Status(StatusCode::kDeadlineExceeded, where + ": " + e.what());
      return;
    }
  }
}

}  // namespace

SweepOutcome run_sweep(const SweepSpec& spec, const SweepRunOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  SweepOutcome out;
  for (const SweepAxis& axis : spec.axes) {
    out.axis_names.push_back(axis.name);
    std::vector<std::string> labels;
    for (const AxisValue& v : axis.values) labels.push_back(v.label);
    out.axis_labels.push_back(std::move(labels));
  }
  out.cells = expand(spec);
  out.stats.cells = out.cells.size();

  std::unique_ptr<ResultCache> cache;
  if (!opt.cache_dir.empty()) {
    cache = std::make_unique<ResultCache>(opt.cache_dir);
    // Writers killed mid-store leave `.tmp` files behind (the rename never
    // happened).  Collect stale ones once per sweep so the cache directory
    // cannot grow without bound across crash/restart cycles.
    const std::size_t removed = cache->gc_orphan_temps();
    if (removed > 0) {
      std::fprintf(stderr, "sweep: removed %zu orphaned temp file%s from %s\n",
                   removed, removed == 1 ? "" : "s", opt.cache_dir.c_str());
    }
  }

  // Warm pass: serve every resumable cell from the cache; a corrupt entry
  // is evicted here and re-simulated below — never trusted.
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < out.cells.size(); ++i) {
    SweepCell& cell = out.cells[i];
    if (cache && opt.resume) {
      Result<SimResult> cached = cache->load(cell.key);
      if (cached.ok()) {
        cell.result = std::move(cached).value();
        cell.from_cache = true;
        ++out.stats.cache_hits;
        continue;
      }
      if (cached.status().code() == StatusCode::kDataLoss) {
        cache->discard(cell.key);
      }
    }
    missing.push_back(i);
  }

  // Checkpoint wiring for the cells that will actually simulate.  The file
  // name is the hex ckpt_key, which deliberately excludes refs_per_core and
  // engine: cells that differ only along those axes share one file, so a
  // warmup checkpoint (opt.warmup_refs) written by the first such cell
  // serves every later one — the shared-warmup-prefix optimization.
  if (!opt.ckpt_dir.empty()) {
    std::filesystem::create_directories(opt.ckpt_dir);
    for (std::size_t i : missing) {
      SweepCell& cell = out.cells[i];
      const std::uint64_t key =
          ckpt_key(to_string(cell.spec.bench), cell.spec.scale, cell.spec.seed,
                   config_digest(resolved_config(cell.spec)));
      char name[32];
      std::snprintf(name, sizeof(name), "%016llx.ckpt",
                    static_cast<unsigned long long>(key));
      cell.spec.ckpt_path =
          (std::filesystem::path(opt.ckpt_dir) / name).string();
      cell.spec.ckpt_interval_refs = opt.ckpt_interval;
      cell.spec.ckpt_save_at_refs = opt.warmup_refs;
      cell.spec.ckpt_restore = true;
    }
  }
  if (opt.cell_timeout > 0.0) {
    for (std::size_t i : missing) {
      out.cells[i].spec.deadline_seconds = opt.cell_timeout;
    }
  }

  // Longest-estimated-job first, like run_matrix.  Sweep cells can differ
  // in refs *and* scale (a scale axis is the common case), so the whole-run
  // estimate — per-reference cost x refs / scale — orders them; sorting on
  // the per-reference cost alone used to leave a scale-1 heavyweight at the
  // back of the queue running alone after every other cell drained.
  std::stable_sort(missing.begin(), missing.end(),
                   [&](std::size_t a, std::size_t b) {
                     return estimated_run_cost(out.cells[a].spec) >
                            estimated_run_cost(out.cells[b].spec);
                   });

  std::vector<std::function<void()>> tasks;
  tasks.reserve(missing.size());
  const auto submit_time = std::chrono::steady_clock::now();
  for (std::size_t i : missing) {
    tasks.push_back([&out, i, &cache, submit_time] {
      SweepCell& cell = out.cells[i];
      const double queue_wait =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        submit_time)
              .count();
      run_cell_with_retry(cell);
      if (!cell.status.ok()) return;  // timed out twice; nothing to persist
      cell.result.queue_wait_seconds = queue_wait;
      // Persist immediately (atomic temp+rename): a kill from here on
      // cannot cost this cell again.
      if (cache) cache->store(cell.key, cell.result).throw_if_error();
    });
  }
  out.stats.simulated = tasks.size();
  ThreadPool::run_all(std::move(tasks), opt.jobs);

  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

std::vector<std::vector<SimResult>> sweep_matrix(
    const ExperimentOptions& opts, const std::vector<SchemeColumn>& columns,
    SweepStats* stats) {
  SweepSpec spec;
  spec.base.scale = opts.scale;
  spec.base.refs_per_core = opts.refs_per_core;
  spec.base.seed = opts.seed;
  spec.base.engine = opts.engine;

  SweepAxis bench_axis{"workload", {}};
  for (BenchmarkId id : opts.benches) {
    bench_axis.values.push_back(
        {to_string(id), [id](RunSpec& s) { s.bench = id; }});
  }
  spec.axes.push_back(std::move(bench_axis));

  const bool tracing = !opts.trace_events.empty();
  if (tracing) std::filesystem::create_directories(opts.trace_events);
  SweepAxis column_axis{"column", {}};
  for (const SchemeColumn& col : columns) {
    const std::string trace_dir = opts.trace_events;
    const std::uint64_t epoch_refs = opts.obs_epoch_refs;
    auto apply = [col, tracing, trace_dir, epoch_refs](RunSpec& s) {
      s.scheme = col.scheme;
      s.inclusion = col.inclusion;
      s.prefetch = col.prefetch;
      if (col.tweak) chain_tweak(s, col.tweak);
      if (tracing) {
        // The workload axis has already run, so s.bench names this cell.
        const std::string path =
            (std::filesystem::path(trace_dir) /
             trace_file_name(s.bench, col.label, s.engine))
                .string();
        chain_tweak(s, [path, epoch_refs](HierarchyConfig& hc) {
          hc.obs.enabled = true;
          hc.obs.epoch_refs = epoch_refs;
          hc.obs.trace_path = path;
        });
      }
    };
    column_axis.values.push_back({col.label, std::move(apply)});
  }
  spec.axes.push_back(std::move(column_axis));

  SweepRunOptions ro;
  // Event-trace runs must actually simulate (the trace file is a side
  // effect of the run), so the cache is bypassed entirely under tracing.
  ro.cache_dir = tracing ? "" : opts.cache_dir;
  ro.resume = opts.resume;
  ro.jobs = opts.jobs;
  ro.ckpt_dir = opts.ckpt_dir;
  ro.ckpt_interval = opts.ckpt_interval;
  ro.cell_timeout = opts.cell_timeout;
  SweepOutcome out = run_sweep(spec, ro);
  if (stats != nullptr) *stats = out.stats;

  std::vector<std::vector<SimResult>> results(
      opts.benches.size(), std::vector<SimResult>(columns.size()));
  for (std::size_t b = 0; b < opts.benches.size(); ++b) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      SweepCell& cell = out.cells[b * columns.size() + c];
      // The matrix interface has no per-cell status channel; surface a
      // doubly-timed-out cell as an exception rather than a zeroed row.
      cell.status.throw_if_error();
      results[b][c] = std::move(cell.result);
    }
  }
  return results;
}

}  // namespace redhip
