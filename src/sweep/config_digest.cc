#include "sweep/config_digest.h"

#include "common/fnv.h"

namespace redhip {

std::uint64_t sweep_cache_key(const RunSpec& spec) {
  Fnv1a h;
  h.str("redhip-sweep-cache");
  h.u32(kSweepCacheSchemaVersion);
  h.u8(static_cast<std::uint8_t>(spec.engine));
  h.str(to_string(spec.bench));
  h.u32(spec.scale);
  h.u64(spec.refs_per_core);
  h.u64(spec.seed);
  h.u64(config_digest(resolved_config(spec)));
  return h.digest();
}

}  // namespace redhip
