#include "sweep/result_cache.h"

#include <atomic>
#include <cstring>
#include <fstream>

#include "common/fnv.h"
#include "sweep/config_digest.h"

namespace redhip {
namespace {

constexpr char kMagic[8] = {'R', 'D', 'H', 'P', 'S', 'W', 'P', 'C'};

// Little-endian byte codec — explicit, like the Fnv1a feed, so cache files
// written on one host validate on any other.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_ += static_cast<char>(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_ += static_cast<char>(v & 0xff);
      v >>= 8;
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_ += static_cast<char>(v & 0xff);
      v >>= 8;
    }
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > buf_.size()) return fail();
    out = static_cast<std::uint8_t>(buf_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (pos_ + 4 > buf_.size()) return fail();
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf_[pos_++]))
             << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (pos_ + 8 > buf_.size()) return fail();
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf_[pos_++]))
             << (8 * i);
    }
    return true;
  }
  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
  }
  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  const std::string& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void write_level(ByteWriter& w, const LevelEvents& ev) {
  w.u64(ev.tag_probes);
  w.u64(ev.data_probes);
  w.u64(ev.fills);
  w.u64(ev.invalidations);
  w.u64(ev.writebacks);
  w.u64(ev.accesses);
  w.u64(ev.hits);
  w.u64(ev.misses);
  w.u64(ev.evictions);
  w.u64(ev.skipped);
}

bool read_level(ByteReader& r, LevelEvents& ev) {
  return r.u64(ev.tag_probes) && r.u64(ev.data_probes) && r.u64(ev.fills) &&
         r.u64(ev.invalidations) && r.u64(ev.writebacks) &&
         r.u64(ev.accesses) && r.u64(ev.hits) && r.u64(ev.misses) &&
         r.u64(ev.evictions) && r.u64(ev.skipped);
}

// A vector length read from disk is untrusted input: bound it so a corrupt
// length can't drive a giant allocation before the checksum is consulted.
constexpr std::uint64_t kMaxVectorLen = 1u << 24;

}  // namespace

std::string serialize_result(const SimResult& r) {
  ByteWriter w;
  w.u64(r.levels.size());
  for (const LevelEvents& ev : r.levels) write_level(w, ev);

  w.u64(r.predictor.lookups);
  w.u64(r.predictor.updates);
  w.u64(r.predictor.recalibrations);
  w.u64(r.predictor.recal_sets_read);
  w.u64(r.predictor.recal_words_written);
  w.u64(r.predictor.predicted_absent);
  w.u64(r.predictor.predicted_present);
  w.u64(r.predictor.false_positives);
  w.u64(r.predictor.true_positives);

  w.u64(r.prefetch.table_lookups);
  w.u64(r.prefetch.issued);
  w.u64(r.prefetch.useful);
  w.u64(r.prefetch.useless);
  w.u64(r.prefetch.redundant);

  w.u64(r.memory_accesses);
  w.u64(r.demand_memory_accesses);
  w.u64(r.memory_writebacks);

  w.u64(r.core_cycles.size());
  for (Cycles c : r.core_cycles) w.u64(c);
  w.u64(r.exec_cycles);
  w.u64(r.total_core_cycles);
  w.u64(r.recal_stall_cycles);
  w.u64(r.total_refs);
  w.u64(r.predictor_disabled_refs);

  w.u64(r.fault.pt_bits_cleared);
  w.u64(r.fault.pt_bits_set);
  w.u64(r.fault.recal_chunks_dropped);
  w.u64(r.fault.trace_refs_perturbed);
  w.u64(r.fault.audit_checks);
  w.u64(r.fault.invariant_violations);
  w.u64(r.fault.recovery_recalibrations);
  w.u64(r.fault.recovery_stall_cycles);

  w.f64(r.elapsed_seconds);

  w.u64(r.energy.level_dynamic_j.size());
  for (double v : r.energy.level_dynamic_j) w.f64(v);
  w.f64(r.energy.predictor_dynamic_j);
  w.f64(r.energy.recalibration_j);
  w.f64(r.energy.prefetcher_j);
  w.f64(r.energy.memory_j);
  w.f64(r.energy.leakage_j);

  w.u64(r.epochs.size());
  for (const EpochSample& e : r.epochs) {
    w.u64(e.index);
    w.u64(e.end_ref);
    w.u64(e.end_cycles);
    w.u64(e.refs);
    w.u64(e.l1_accesses);
    w.u64(e.l1_misses);
    w.u64(e.lookups);
    w.u64(e.predicted_absent);
    w.u64(e.predicted_present);
    w.u64(e.tp);
    w.u64(e.fp);
    w.u64(e.tn);
    w.u64(e.fn);
    w.u64(e.recalibrations);
    w.u64(e.pt_occupancy);
    w.u8(e.predictor_active ? 1 : 0);
  }
  return w.take();
}

Result<SimResult> deserialize_result(const std::string& payload) {
  const Status bad(StatusCode::kDataLoss,
                   "sweep cache payload: truncated or malformed");
  ByteReader r(payload);
  SimResult out;

  std::uint64_t n = 0;
  if (!r.u64(n) || n > kMaxVectorLen) return bad;
  out.levels.resize(n);
  for (LevelEvents& ev : out.levels) {
    if (!read_level(r, ev)) return bad;
  }

  bool ok = r.u64(out.predictor.lookups) && r.u64(out.predictor.updates) &&
            r.u64(out.predictor.recalibrations) &&
            r.u64(out.predictor.recal_sets_read) &&
            r.u64(out.predictor.recal_words_written) &&
            r.u64(out.predictor.predicted_absent) &&
            r.u64(out.predictor.predicted_present) &&
            r.u64(out.predictor.false_positives) &&
            r.u64(out.predictor.true_positives) &&
            r.u64(out.prefetch.table_lookups) && r.u64(out.prefetch.issued) &&
            r.u64(out.prefetch.useful) && r.u64(out.prefetch.useless) &&
            r.u64(out.prefetch.redundant) && r.u64(out.memory_accesses) &&
            r.u64(out.demand_memory_accesses) && r.u64(out.memory_writebacks);
  if (!ok) return bad;

  if (!r.u64(n) || n > kMaxVectorLen) return bad;
  out.core_cycles.resize(n);
  for (Cycles& c : out.core_cycles) {
    if (!r.u64(c)) return bad;
  }
  ok = r.u64(out.exec_cycles) && r.u64(out.total_core_cycles) &&
       r.u64(out.recal_stall_cycles) && r.u64(out.total_refs) &&
       r.u64(out.predictor_disabled_refs) && r.u64(out.fault.pt_bits_cleared) &&
       r.u64(out.fault.pt_bits_set) && r.u64(out.fault.recal_chunks_dropped) &&
       r.u64(out.fault.trace_refs_perturbed) && r.u64(out.fault.audit_checks) &&
       r.u64(out.fault.invariant_violations) &&
       r.u64(out.fault.recovery_recalibrations) &&
       r.u64(out.fault.recovery_stall_cycles) && r.f64(out.elapsed_seconds);
  if (!ok) return bad;

  if (!r.u64(n) || n > kMaxVectorLen) return bad;
  out.energy.level_dynamic_j.resize(n);
  for (double& v : out.energy.level_dynamic_j) {
    if (!r.f64(v)) return bad;
  }
  ok = r.f64(out.energy.predictor_dynamic_j) &&
       r.f64(out.energy.recalibration_j) && r.f64(out.energy.prefetcher_j) &&
       r.f64(out.energy.memory_j) && r.f64(out.energy.leakage_j);
  if (!ok) return bad;

  if (!r.u64(n) || n > kMaxVectorLen) return bad;
  out.epochs.resize(n);
  for (EpochSample& e : out.epochs) {
    std::uint8_t active = 0;
    ok = r.u64(e.index) && r.u64(e.end_ref) && r.u64(e.end_cycles) &&
         r.u64(e.refs) && r.u64(e.l1_accesses) && r.u64(e.l1_misses) &&
         r.u64(e.lookups) && r.u64(e.predicted_absent) &&
         r.u64(e.predicted_present) && r.u64(e.tp) && r.u64(e.fp) &&
         r.u64(e.tn) && r.u64(e.fn) && r.u64(e.recalibrations) &&
         r.u64(e.pt_occupancy) && r.u8(active);
    if (!ok) return bad;
    e.predictor_active = active != 0;
  }

  if (!r.exhausted()) {
    return Status(StatusCode::kDataLoss,
                  "sweep cache payload: trailing bytes after result");
  }
  return out;
}

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ResultCache::entry_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.rdc",
                static_cast<unsigned long long>(key));
  return dir_ / name;
}

Result<SimResult> ResultCache::load(std::uint64_t key) const {
  const std::filesystem::path path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status(StatusCode::kNotFound,
                  "sweep cache: no entry " + path.string());
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto data_loss = [&path](const std::string& why) {
    return Status(StatusCode::kDataLoss,
                  "sweep cache entry " + path.string() + ": " + why);
  };
  // Header: magic(8) version(4) key(8) payload_len(8); trailer: checksum(8).
  constexpr std::size_t kHeader = 8 + 4 + 8 + 8;
  if (file.size() < kHeader + 8) return data_loss("truncated header");
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return data_loss("bad magic");
  }
  ByteReader r(file);
  std::uint64_t skip = 0;
  r.u64(skip);  // magic, already checked
  std::uint32_t version = 0;
  std::uint64_t stored_key = 0, payload_len = 0;
  if (!r.u32(version) || !r.u64(stored_key) || !r.u64(payload_len)) {
    return data_loss("truncated header");
  }
  if (version != kSweepCacheSchemaVersion) {
    return data_loss("schema version " + std::to_string(version) +
                     " != " + std::to_string(kSweepCacheSchemaVersion));
  }
  if (stored_key != key) return data_loss("embedded key mismatch");
  if (file.size() != kHeader + payload_len + 8) {
    return data_loss("length mismatch (truncated or padded)");
  }
  const std::string payload = file.substr(kHeader, payload_len);
  std::uint64_t stored_sum = 0;
  for (int i = 0; i < 8; ++i) {
    stored_sum |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                      file[kHeader + payload_len + i]))
                  << (8 * i);
  }
  if (stored_sum != fnv1a(payload.data(), payload.size())) {
    return data_loss("checksum mismatch");
  }
  return deserialize_result(payload);
}

Status ResultCache::store(std::uint64_t key, const SimResult& result) const {
  const std::string payload = serialize_result(result);
  ByteWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kSweepCacheSchemaVersion);
  w.u64(key);
  w.u64(payload.size());
  std::string file = w.take();
  file += payload;
  ByteWriter trailer;
  trailer.u64(fnv1a(payload.data(), payload.size()));
  file += trailer.take();

  // Unique temp name per store call: concurrent pool threads may persist
  // duplicate cells (two sweep points can resolve to the same config).
  static std::atomic<std::uint64_t> counter{0};
  const std::filesystem::path final_path = entry_path(key);
  std::filesystem::path tmp = final_path;
  tmp += ".tmp" + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(file.data(),
                           static_cast<std::streamsize>(file.size()))) {
      return Status(StatusCode::kInternal,
                    "sweep cache: cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status(StatusCode::kInternal,
                  "sweep cache: cannot rename into " + final_path.string());
  }
  return Status::Ok();
}

void ResultCache::discard(std::uint64_t key) const {
  std::error_code ec;
  std::filesystem::remove(entry_path(key), ec);
}

}  // namespace redhip
