#include "sweep/result_cache.h"

#include <chrono>
#include <cstdio>

#include "common/bytestream.h"
#include "common/file_io.h"
#include "sweep/config_digest.h"

namespace redhip {
namespace {

// Entry layout is the shared FileEnvelope (common/file_io.h) — the same
// magic/version/key/length/checksum discipline the checkpoint codec uses.
constexpr FileEnvelope kEnvelope{"RDHPSWPC", kSweepCacheSchemaVersion,
                                 "sweep cache"};

void write_level(ByteWriter& w, const LevelEvents& ev) {
  w.u64(ev.tag_probes);
  w.u64(ev.data_probes);
  w.u64(ev.fills);
  w.u64(ev.invalidations);
  w.u64(ev.writebacks);
  w.u64(ev.accesses);
  w.u64(ev.hits);
  w.u64(ev.misses);
  w.u64(ev.evictions);
  w.u64(ev.skipped);
}

void read_level(ByteReader& r, LevelEvents& ev) {
  ev.tag_probes = r.u64();
  ev.data_probes = r.u64();
  ev.fills = r.u64();
  ev.invalidations = r.u64();
  ev.writebacks = r.u64();
  ev.accesses = r.u64();
  ev.hits = r.u64();
  ev.misses = r.u64();
  ev.evictions = r.u64();
  ev.skipped = r.u64();
}

}  // namespace

std::string serialize_result(const SimResult& r) {
  ByteWriter w;
  w.u64(r.levels.size());
  for (const LevelEvents& ev : r.levels) write_level(w, ev);

  w.u64(r.predictor.lookups);
  w.u64(r.predictor.updates);
  w.u64(r.predictor.recalibrations);
  w.u64(r.predictor.recal_sets_read);
  w.u64(r.predictor.recal_words_written);
  w.u64(r.predictor.predicted_absent);
  w.u64(r.predictor.predicted_present);
  w.u64(r.predictor.false_positives);
  w.u64(r.predictor.true_positives);

  w.u64(r.prefetch.table_lookups);
  w.u64(r.prefetch.issued);
  w.u64(r.prefetch.useful);
  w.u64(r.prefetch.useless);
  w.u64(r.prefetch.redundant);

  w.u64(r.memory_accesses);
  w.u64(r.demand_memory_accesses);
  w.u64(r.memory_writebacks);

  w.u64(r.core_cycles.size());
  for (Cycles c : r.core_cycles) w.u64(c);
  w.u64(r.exec_cycles);
  w.u64(r.total_core_cycles);
  w.u64(r.recal_stall_cycles);
  w.u64(r.total_refs);
  w.u64(r.predictor_disabled_refs);

  w.u64(r.fault.pt_bits_cleared);
  w.u64(r.fault.pt_bits_set);
  w.u64(r.fault.recal_chunks_dropped);
  w.u64(r.fault.trace_refs_perturbed);
  w.u64(r.fault.audit_checks);
  w.u64(r.fault.invariant_violations);
  w.u64(r.fault.recovery_recalibrations);
  w.u64(r.fault.recovery_stall_cycles);

  w.f64(r.elapsed_seconds);

  w.u64(r.energy.level_dynamic_j.size());
  for (double v : r.energy.level_dynamic_j) w.f64(v);
  w.f64(r.energy.predictor_dynamic_j);
  w.f64(r.energy.recalibration_j);
  w.f64(r.energy.prefetcher_j);
  w.f64(r.energy.memory_j);
  w.f64(r.energy.leakage_j);

  w.u64(r.epochs.size());
  for (const EpochSample& e : r.epochs) {
    w.u64(e.index);
    w.u64(e.end_ref);
    w.u64(e.end_cycles);
    w.u64(e.refs);
    w.u64(e.l1_accesses);
    w.u64(e.l1_misses);
    w.u64(e.lookups);
    w.u64(e.predicted_absent);
    w.u64(e.predicted_present);
    w.u64(e.tp);
    w.u64(e.fp);
    w.u64(e.tn);
    w.u64(e.fn);
    w.u64(e.recalibrations);
    w.u64(e.pt_occupancy);
    w.u8(e.predictor_active ? 1 : 0);
  }
  const std::vector<std::uint8_t>& buf = w.buffer();
  return std::string(buf.begin(), buf.end());
}

Result<SimResult> deserialize_result(const std::string& payload) {
  const Status bad(StatusCode::kDataLoss,
                   "sweep cache payload: truncated or malformed");
  ByteReader r(reinterpret_cast<const std::uint8_t*>(payload.data()),
               payload.size());
  SimResult out;

  std::uint64_t n = r.u64();
  if (!r.ok() || n > kMaxVectorLen) return bad;
  out.levels.resize(n);
  for (LevelEvents& ev : out.levels) read_level(r, ev);

  out.predictor.lookups = r.u64();
  out.predictor.updates = r.u64();
  out.predictor.recalibrations = r.u64();
  out.predictor.recal_sets_read = r.u64();
  out.predictor.recal_words_written = r.u64();
  out.predictor.predicted_absent = r.u64();
  out.predictor.predicted_present = r.u64();
  out.predictor.false_positives = r.u64();
  out.predictor.true_positives = r.u64();

  out.prefetch.table_lookups = r.u64();
  out.prefetch.issued = r.u64();
  out.prefetch.useful = r.u64();
  out.prefetch.useless = r.u64();
  out.prefetch.redundant = r.u64();

  out.memory_accesses = r.u64();
  out.demand_memory_accesses = r.u64();
  out.memory_writebacks = r.u64();

  n = r.u64();
  if (!r.ok() || n > kMaxVectorLen) return bad;
  out.core_cycles.resize(n);
  for (Cycles& c : out.core_cycles) c = r.u64();
  out.exec_cycles = r.u64();
  out.total_core_cycles = r.u64();
  out.recal_stall_cycles = r.u64();
  out.total_refs = r.u64();
  out.predictor_disabled_refs = r.u64();

  out.fault.pt_bits_cleared = r.u64();
  out.fault.pt_bits_set = r.u64();
  out.fault.recal_chunks_dropped = r.u64();
  out.fault.trace_refs_perturbed = r.u64();
  out.fault.audit_checks = r.u64();
  out.fault.invariant_violations = r.u64();
  out.fault.recovery_recalibrations = r.u64();
  out.fault.recovery_stall_cycles = r.u64();

  out.elapsed_seconds = r.f64();

  n = r.u64();
  if (!r.ok() || n > kMaxVectorLen) return bad;
  out.energy.level_dynamic_j.resize(n);
  for (double& v : out.energy.level_dynamic_j) v = r.f64();
  out.energy.predictor_dynamic_j = r.f64();
  out.energy.recalibration_j = r.f64();
  out.energy.prefetcher_j = r.f64();
  out.energy.memory_j = r.f64();
  out.energy.leakage_j = r.f64();

  n = r.u64();
  if (!r.ok() || n > kMaxVectorLen) return bad;
  out.epochs.resize(n);
  for (EpochSample& e : out.epochs) {
    e.index = r.u64();
    e.end_ref = r.u64();
    e.end_cycles = r.u64();
    e.refs = r.u64();
    e.l1_accesses = r.u64();
    e.l1_misses = r.u64();
    e.lookups = r.u64();
    e.predicted_absent = r.u64();
    e.predicted_present = r.u64();
    e.tp = r.u64();
    e.fp = r.u64();
    e.tn = r.u64();
    e.fn = r.u64();
    e.recalibrations = r.u64();
    e.pt_occupancy = r.u64();
    e.predictor_active = r.u8() != 0;
  }

  if (!r.ok()) return bad;
  if (!r.exhausted()) {
    return Status(StatusCode::kDataLoss,
                  "sweep cache payload: trailing bytes after result");
  }
  return out;
}

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ResultCache::entry_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.rdc",
                static_cast<unsigned long long>(key));
  return dir_ / name;
}

Result<SimResult> ResultCache::load(std::uint64_t key) const {
  Result<std::string> payload = open_envelope(kEnvelope, key, entry_path(key));
  if (!payload.ok()) return payload.status();
  return deserialize_result(std::move(payload).value());
}

Status ResultCache::store(std::uint64_t key, const SimResult& result) const {
  return write_file_atomic(entry_path(key),
                           seal_envelope(kEnvelope, key,
                                         serialize_result(result)));
}

void ResultCache::discard(std::uint64_t key) const {
  std::error_code ec;
  std::filesystem::remove(entry_path(key), ec);
}

std::size_t ResultCache::gc_orphan_temps(std::chrono::seconds min_age) const {
  std::size_t removed = 0;
  std::error_code ec;
  const auto now = std::filesystem::file_time_type::clock::now();
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp") == std::string::npos) continue;
    // Age-gate: a temp file younger than min_age may belong to a live
    // writer racing this sweep; one older than that is a leftover from a
    // killed process (writers hold temps for milliseconds, not minutes).
    const auto mtime = entry.last_write_time(ec);
    if (ec) continue;
    if (now - mtime < min_age) continue;
    if (std::filesystem::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace redhip
