// Named axes for the sweep driver: `--axis name=v1,v2,...` strings are
// resolved here into SweepAxis values carrying the right RunSpec/config
// modifiers.  The axis semantics deliberately mirror the figure benches
// (table-size applies Fig. 11's shift against the default PT, recal-interval
// applies Fig. 12's paper-scale division by `scale`, depth reshapes via
// HierarchyConfig::with_depth) so a sweep over those axes reproduces the
// benches' design points exactly.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sweep/sweep.h"

namespace redhip {

// "name=v1,v2,..." -> axis.  `opts` supplies context some axes need (the
// scale a paper-size value is divided by, the benchmark list "workload=all"
// expands to).  An unknown axis or a malformed value throws
// std::runtime_error with an INVALID_ARGUMENT diagnostic naming both.
SweepAxis make_named_axis(const std::string& axis_spec,
                          const ExperimentOptions& opts);

// The axis names make_named_axis accepts (for usage messages).
const std::vector<std::string>& known_axis_names();

}  // namespace redhip
