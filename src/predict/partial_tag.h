// PartialTagPredictor — an extension baseline from the paper's related work
// (Liu, "Cache designs with partial address matching" [17]; the same idea
// powers way-halting caches [30]).
//
// A small array beside the LLC mirrors, per set, the low `partial_bits` of
// every resident way's tag.  On a query, if *no* way's partial tag matches
// the address, the full tags cannot match either — a guaranteed miss, so the
// prediction is conservative by construction, with no recalibration needed.
// False positives happen only when another resident line in the same set
// shares the partial tag (~ways/2^partial_bits per probe).
//
// The trade-off against ReDHiP: at 8 partial bits the structure costs
// ~2x ReDHiP's area (8+ bits per LLC line vs 4 table bits per line) and its
// lookup reads `ways` entries instead of one bit — but it never goes stale.
// The `extension_partial_tags` bench quantifies exactly this trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "predict/predictor.h"

namespace redhip {

struct PartialTagConfig {
  std::uint32_t partial_bits = 8;  // low bits of the tag kept per way
  PredictorEnergyParams energy;

  void validate() const;
};

class PartialTagPredictor final : public LlcPredictor {
 public:
  // Mirrors a cache with `sets` x `ways` geometry; `set_bits` positions the
  // tag within a line address.
  PartialTagPredictor(const PartialTagConfig& config, std::uint64_t sets,
                      std::uint32_t ways, std::uint32_t set_bits);

  Prediction query(LineAddr line) override;
  void on_fill(LineAddr line) override;
  void on_evict(LineAddr line) override;
  Cycles lookup_delay() const override { return config_.energy.total_delay(); }
  std::string name() const override { return "PartialTag"; }

  // --- Checkpoint ----------------------------------------------------------
  void ckpt_save(ByteWriter& w) const override {
    LlcPredictor::ckpt_save(w);
    w.u64(slots_.size());
    for (const Slot& s : slots_) {
      w.u16(s.partial);
      w.u8(s.valid ? 1 : 0);
    }
    w.u64(occupied_);
  }
  bool ckpt_load(ByteReader& r) override {
    if (!LlcPredictor::ckpt_load(r)) return false;
    if (r.u64() != slots_.size()) return false;
    for (Slot& s : slots_) {
      s.partial = r.u16();
      s.valid = r.u8() != 0;
    }
    occupied_ = r.u64();
    return r.ok();
  }

  // --- Introspection -------------------------------------------------------
  const PartialTagConfig& config() const { return config_; }
  std::uint64_t storage_bits() const {
    return sets_ * ways_ * (config_.partial_bits + 1);
  }
  std::uint64_t occupancy() const { return occupied_; }

 private:
  struct Slot {
    std::uint16_t partial = 0;
    bool valid = false;
  };

  std::uint64_t set_of(LineAddr line) const { return line & (sets_ - 1); }
  std::uint16_t partial_of(LineAddr line) const {
    return static_cast<std::uint16_t>((line >> set_bits_) &
                                      ((1u << config_.partial_bits) - 1));
  }
  Slot* set_begin(std::uint64_t set) { return &slots_[set * ways_]; }

  PartialTagConfig config_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint32_t set_bits_;
  std::vector<Slot> slots_;
  std::uint64_t occupied_ = 0;
};

}  // namespace redhip
