#include "predict/oracle.h"

// OraclePredictor is header-only; this translation unit anchors the library.
