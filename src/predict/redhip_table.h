// RedhipTable — the paper's contribution.
//
// A direct-mapped table of single presence bits, indexed by the bits-hash:
// the low `p` bits of the line address (i.e. of the byte address after the
// block offset is stripped).  Because the covered cache's set index is the
// low `k` bits of the same line address and p > k, every address that
// aliases onto one PT bit belongs to the same cache set — so at most
// `associativity` resident lines can share one bit, which is what makes a
// 1-bit entry sufficient (paper §III-A).
//
// Bits are set on fill and never cleared on eviction; the table therefore
// only ever *overstates* presence (no false negatives) and drifts toward
// all-ones until recalibration rebuilds it exactly from the tag array.
//
// Recalibration (paper §III-B): one 64-bit PT line corresponds to one cache
// set when p − k = 6.  Rebuilding a line reads the set's tags, decodes the
// low p − k tag bits of each through a 6→64 decoder and ORs the 16 one-hot
// vectors — one cycle of simple logic per set, `banks` sets in parallel.
// The modeled stall is ceil(sets / banks) cycles and the modeled energy is
// one tag-array set read per set plus one PT line write per line, both
// reported through PredictorEvents.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "predict/predictor.h"
#include "predict/recal_observer.h"

namespace redhip {

enum class RecalMode : std::uint8_t {
  // Rebuild the whole table at the end of each interval, stalling for
  // ceil(sets/banks) cycles.  Simple to reason about; used by the Fig. 12
  // sweep so each interval point has one well-defined rebuild instant.
  kBatch,
  // The paper's deployed design: spread the rebuild across the interval
  // ("an update for every table entry every 1 million L1 misses"), a few
  // sets per L1 miss in round-robin, so no stall spike ever exceeds a few
  // cycles.  Same aggregate energy, same steady-state accuracy.
  kRolling,
};
std::string to_string(RecalMode m);

struct RedhipConfig {
  // Total table capacity in bits; 512 KB = 2^22 bits in the paper.  Must be
  // a power of two and at least 64 (one PT line).
  std::uint64_t table_bits = std::uint64_t{1} << 22;
  // Recalibrate every table entry once per this many L1 misses (aggregate
  // over all cores).  0 disables recalibration entirely (the "Infinite"
  // point of Fig. 12); 1 recalibrates after every L1 miss (the "perfect
  // recalibration" point).
  std::uint64_t recal_interval_l1_misses = 1'000'000;
  // PT banks that recalibrate concurrently (paper's medium effort: 4).
  std::uint32_t banks = 4;
  RecalMode recal_mode = RecalMode::kBatch;
  PredictorEnergyParams energy;

  std::uint32_t index_bits() const;
  void validate() const;
};

class RedhipTable final : public LlcPredictor {
 public:
  explicit RedhipTable(const RedhipConfig& config);

  Prediction query(LineAddr line) override;
  void on_fill(LineAddr line) override;
  void on_evict(LineAddr line) override;  // deliberately a no-op (1-bit map)
  Cycles note_l1_miss_and_maybe_recalibrate(const TagArray& covered) override;
  Cycles lookup_delay() const override { return config_.energy.total_delay(); }
  std::string name() const override { return "ReDHiP"; }

  // Rebuild the table to exactly reflect `covered` and return the modeled
  // stall cycles.  Public so tests can drive recalibration directly.
  Cycles recalibrate(const TagArray& covered);

  // Rebuild only the PT lines of `count` cache sets starting at `first_set`
  // (the rolling-recalibration work unit).  Returns the modeled stall.
  Cycles recalibrate_sets(const TagArray& covered, std::uint64_t first_set,
                          std::uint64_t count);

  // Optional standing reference to the covered tag array.  Only used for
  // the interval == 1 ("perfect recalibration", Fig. 12's leftmost point)
  // configuration: a table recalibrated after *every* L1 miss always equals
  // the exact decode of the LLC, which is maintained incrementally in
  // O(ways) by rebuilding just the evicted line's set on each eviction —
  // semantically identical to the paper's definition, and O(sets) cheaper
  // per miss to simulate.
  void attach_covered(const TagArray* covered) { covered_ = covered; }

  // --- Fault hooks (src/fault) ---------------------------------------------
  // Forcibly flip one PT bit, bypassing the conservative-superset
  // discipline.  A 1→0 flip breaks the no-false-negative invariant until
  // the next (re)calibration; a 0→1 flip is a lingering false positive.
  // Return whether the bit actually changed.
  bool corrupt_clear_bit(std::uint64_t index);
  bool corrupt_set_bit(std::uint64_t index);

  // Optional predicate consulted before each incremental recalibration
  // chunk; returning true drops that set-range (the stall is still paid —
  // the hardware did the work, the result was lost in flight).  Installed
  // by the simulator's fault injector; a dropped chunk leaves stale 1s,
  // which is conservative and therefore costs only energy, not correctness.
  using RecalChunkFilter =
      std::function<bool(std::uint64_t first_set, std::uint64_t count)>;
  void set_recal_chunk_filter(RecalChunkFilter filter) {
    recal_filter_ = std::move(filter);
  }

  // Optional observability hook (src/obs): fires around every full rebuild
  // — scheduled batch, emergency recovery, or auto-disable re-enable — and
  // once per completed rolling pass.  The interval == 1 per-eviction set
  // rebuilds are deliberately unobserved (one callback per eviction would
  // flood any trace).  Not owned.
  void set_recal_observer(RecalObserver* observer) { observer_ = observer; }

  // --- Checkpoint ----------------------------------------------------------
  void ckpt_save(ByteWriter& w) const override {
    LlcPredictor::ckpt_save(w);
    w.u64_vec(words_);
    w.u64(l1_misses_);
    w.u64(misses_since_recal_);
    w.u64(rolling_cursor_);
    w.u64(rolling_credit_);
  }
  bool ckpt_load(ByteReader& r) override {
    if (!LlcPredictor::ckpt_load(r)) return false;
    std::vector<std::uint64_t> words = r.u64_vec();
    if (!r.ok() || words.size() != words_.size()) return false;
    words_ = std::move(words);
    l1_misses_ = r.u64();
    misses_since_recal_ = r.u64();
    rolling_cursor_ = r.u64();
    rolling_credit_ = r.u64();
    return r.ok();
  }

  // --- Introspection -------------------------------------------------------
  const RedhipConfig& config() const { return config_; }
  std::uint64_t index_of(LineAddr line) const { return line & index_mask_; }
  // Pull the PT word `line` indexes toward the host caches (software
  // pipeline hint from the fast engine; no simulated side effects).
  void prefetch_row(LineAddr line) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&words_[(line & index_mask_) >> 6], 0, 3);
#else
    (void)line;
#endif
  }
  bool test_bit(std::uint64_t index) const;
  std::uint64_t bits_set() const;
  std::uint64_t l1_miss_count() const { return l1_misses_; }

 private:
  void set_bit(std::uint64_t index);
  void clear_bit(std::uint64_t index);

  RedhipConfig config_;
  std::uint64_t index_mask_;
  const TagArray* covered_ = nullptr;  // see attach_covered()
  RecalChunkFilter recal_filter_;      // see set_recal_chunk_filter()
  RecalObserver* observer_ = nullptr;  // see set_recal_observer()
  std::vector<std::uint64_t> words_;
  std::uint64_t l1_misses_ = 0;
  std::uint64_t misses_since_recal_ = 0;
  // Rolling mode: next set to rebuild and the fixed-point work credit
  // (units of 1/interval sets per miss).
  std::uint64_t rolling_cursor_ = 0;
  std::uint64_t rolling_credit_ = 0;
};

}  // namespace redhip
