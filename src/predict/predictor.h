// LlcPredictor — the interface every presence predictor implements.
//
// The simulator asks the predictor one question after each L1 miss: "could
// this line be in the LLC?"  kAbsent answers authorize a bypass straight to
// memory, so every implementation must be *conservative*: it may only answer
// kAbsent when the line is provably not resident (DESIGN.md invariant 1).
// The simulator calls on_fill/on_evict as lines enter and leave the cache
// the predictor covers, and gives it a recalibration opportunity at every
// L1 miss.
#pragma once

#include <cstdint>
#include <string>

#include "cache/tag_array.h"
#include "common/bytestream.h"
#include "common/types.h"
#include "energy/ledger.h"
#include "energy/params.h"

namespace redhip {

enum class Prediction : std::uint8_t { kPresent, kAbsent };

class LlcPredictor {
 public:
  virtual ~LlcPredictor() = default;

  // Presence query for a line address.  Must not mutate prediction state
  // (event counters excepted).
  virtual Prediction query(LineAddr line) = 0;

  // A line was installed into / removed from the covered cache.
  virtual void on_fill(LineAddr line) = 0;
  virtual void on_evict(LineAddr line) = 0;

  // Called once per L1 miss.  Returns the number of stall cycles if a
  // recalibration was performed (0 otherwise).  `covered` is the tag array
  // of the cache this predictor describes.
  virtual Cycles note_l1_miss_and_maybe_recalibrate(const TagArray& covered) {
    (void)covered;
    return 0;
  }

  // Query cost; the simulator adds this to the access latency and the
  // ledger prices the lookup events.
  virtual Cycles lookup_delay() const = 0;

  virtual std::string name() const = 0;

  // Event counters for the ledger.  Mutable access so the simulator can fold
  // per-scheme bookkeeping (e.g. false-positive classification) in.
  PredictorEvents& events() { return events_; }
  const PredictorEvents& events() const { return events_; }

  // Checkpoint/restore (common/bytestream.h codec).  The base serializes
  // the event counters; stateful implementations call the base then append
  // their structures, and must read back exactly what they wrote.
  // ckpt_load returns false on any structural mismatch (the payload was
  // written by a differently-configured predictor).
  virtual void ckpt_save(ByteWriter& w) const {
    w.u64(events_.lookups);
    w.u64(events_.updates);
    w.u64(events_.recalibrations);
    w.u64(events_.recal_sets_read);
    w.u64(events_.recal_words_written);
    w.u64(events_.predicted_absent);
    w.u64(events_.predicted_present);
    w.u64(events_.false_positives);
    w.u64(events_.true_positives);
  }
  virtual bool ckpt_load(ByteReader& r) {
    events_.lookups = r.u64();
    events_.updates = r.u64();
    events_.recalibrations = r.u64();
    events_.recal_sets_read = r.u64();
    events_.recal_words_written = r.u64();
    events_.predicted_absent = r.u64();
    events_.predicted_present = r.u64();
    events_.false_positives = r.u64();
    events_.true_positives = r.u64();
    return r.ok();
  }

 protected:
  PredictorEvents events_;
};

}  // namespace redhip
