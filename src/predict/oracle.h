// OraclePredictor — the evaluation's upper bound.
//
// Answers presence queries by peeking directly at the covered tag array,
// with zero latency and zero energy (its lookups are counted but priced at
// zero by giving it a zero-cost parameter set).  Note the paper's framing:
// the Oracle is *not* "ReDHiP with constant recalibration" — a 1-bit table
// is inherently lossy because multiple lines alias one bit, and the Oracle
// has no aliasing at all.
#pragma once

#include "predict/predictor.h"

namespace redhip {

class OraclePredictor final : public LlcPredictor {
 public:
  // `covered` must outlive the predictor.
  explicit OraclePredictor(const TagArray* covered) : covered_(covered) {
    REDHIP_CHECK(covered != nullptr);
  }

  Prediction query(LineAddr line) override {
    // Lookups deliberately not charged: the Oracle has "no overhead".
    return covered_->contains(line) ? Prediction::kPresent
                                    : Prediction::kAbsent;
  }
  void on_fill(LineAddr) override {}
  void on_evict(LineAddr) override {}
  Cycles lookup_delay() const override { return 0; }
  std::string name() const override { return "Oracle"; }

 private:
  const TagArray* covered_;
};

}  // namespace redhip
