// CountingBloomFilter — the CBF baseline (Ghosh et al., ARCS'06, paper [9]).
//
// One hash function (xor-hash, which [9] found sufficient and more accurate
// than bits-hash for CBFs), 3-bit saturating counters.  A counter that ever
// reaches its maximum is *disabled*: decrements can no longer be trusted, so
// it sticks at "present" forever — the conservative choice that preserves
// the no-false-negative guarantee.  Unlike ReDHiP the CBF tracks evictions
// (decrement) instead of recalibrating.
//
// The evaluation gives the CBF the same 512 KB area budget as ReDHiP:
// 2^20 entries x 3-bit counters = 384 KB of counter state plus decode —
// the largest power-of-two entry count that fits.
#pragma once

#include <cstdint>
#include <vector>

#include "predict/predictor.h"

namespace redhip {

struct CbfConfig {
  std::uint32_t index_bits = 20;   // 2^index_bits counters
  std::uint32_t counter_bits = 3;  // saturate-and-disable at 2^counter_bits-1
  PredictorEnergyParams energy;    // same table-access cost model as the PT

  // Largest power-of-two entry count whose counters fit in `budget_bytes`.
  static CbfConfig for_area_budget(std::uint64_t budget_bytes,
                                   std::uint32_t counter_bits = 3);
  std::uint64_t entries() const { return std::uint64_t{1} << index_bits; }
  std::uint64_t storage_bits() const { return entries() * counter_bits; }
  void validate() const;
};

class CountingBloomFilter final : public LlcPredictor {
 public:
  explicit CountingBloomFilter(const CbfConfig& config);

  Prediction query(LineAddr line) override;
  void on_fill(LineAddr line) override;
  void on_evict(LineAddr line) override;
  Cycles lookup_delay() const override { return config_.energy.total_delay(); }
  std::string name() const override { return "CBF"; }

  // --- Checkpoint ----------------------------------------------------------
  void ckpt_save(ByteWriter& w) const override {
    LlcPredictor::ckpt_save(w);
    w.u64(counters_.size());
    w.bytes(counters_.data(), counters_.size());
    w.u64_vec(disabled_);
  }
  bool ckpt_load(ByteReader& r) override {
    if (!LlcPredictor::ckpt_load(r)) return false;
    if (r.u64() != counters_.size()) return false;
    if (!r.raw(counters_.data(), counters_.size())) return false;
    std::vector<std::uint64_t> disabled = r.u64_vec();
    if (!r.ok() || disabled.size() != disabled_.size()) return false;
    disabled_ = std::move(disabled);
    return true;
  }

  // --- Introspection -------------------------------------------------------
  const CbfConfig& config() const { return config_; }
  // Branch-free xor-fold of the line address down to index_bits.  Identical
  // output to bitops' loop-until-zero xor_fold for every input: AND
  // distributes over XOR and every chunk shifted past bit 63 is zero, so
  // folding a fixed number of chunks (ceil(64/width)) and masking once at
  // the end gives the same hash with a trip count that does not depend on
  // the address — one pass per line on the simulator's hot path.
  std::uint64_t index_of(LineAddr line) const {
    std::uint64_t h = line;
    for (std::uint32_t s = config_.index_bits; s < 64; s += config_.index_bits) {
      h ^= line >> s;
    }
    return h & index_mask_;
  }
  std::uint8_t counter(std::uint64_t index) const { return counters_[index]; }
  bool disabled(std::uint64_t index) const;
  std::uint64_t disabled_count() const;

 private:
  CbfConfig config_;
  std::uint8_t max_count_;
  std::uint64_t index_mask_;
  std::vector<std::uint8_t> counters_;
  std::vector<std::uint64_t> disabled_;  // bitset: counter overflowed
};

}  // namespace redhip
