#include "predict/counting_bloom.h"

#include <bit>

#include "common/bitops.h"
#include "common/check.h"

namespace redhip {

CbfConfig CbfConfig::for_area_budget(std::uint64_t budget_bytes,
                                     std::uint32_t counter_bits) {
  CbfConfig c;
  c.counter_bits = counter_bits;
  const std::uint64_t budget_bits = budget_bytes * 8;
  std::uint32_t bits = 6;
  while ((std::uint64_t{1} << (bits + 1)) * counter_bits <= budget_bits) {
    ++bits;
  }
  c.index_bits = bits;
  c.validate();
  return c;
}

void CbfConfig::validate() const {
  REDHIP_CHECK_MSG(index_bits >= 1 && index_bits <= 32,
                   "CBF index bits out of range");
  REDHIP_CHECK_MSG(counter_bits >= 1 && counter_bits <= 8,
                   "CBF counter bits out of range");
}

CountingBloomFilter::CountingBloomFilter(const CbfConfig& config)
    : config_(config) {
  config_.validate();
  max_count_ = static_cast<std::uint8_t>((1u << config_.counter_bits) - 1);
  index_mask_ = low_mask(config_.index_bits);
  counters_.assign(config_.entries(), 0);
  disabled_.assign((config_.entries() + 63) / 64, 0);
}

bool CountingBloomFilter::disabled(std::uint64_t index) const {
  return (disabled_[index >> 6] >> (index & 63)) & 1u;
}

Prediction CountingBloomFilter::query(LineAddr line) {
  ++events_.lookups;
  const std::uint64_t i = index_of(line);
  // A disabled counter sticks at max, so counter > 0 covers both cases.
  return counters_[i] > 0 ? Prediction::kPresent : Prediction::kAbsent;
}

void CountingBloomFilter::on_fill(LineAddr line) {
  ++events_.updates;
  const std::uint64_t i = index_of(line);
  if (disabled(i)) return;
  if (counters_[i] == max_count_) {
    // Overflow: one more increment would exceed capacity, so the count can
    // no longer be exact; freeze at "present" (Ghosh et al.'s disable rule).
    disabled_[i >> 6] |= std::uint64_t{1} << (i & 63);
    return;
  }
  ++counters_[i];
}

void CountingBloomFilter::on_evict(LineAddr line) {
  ++events_.updates;
  const std::uint64_t i = index_of(line);
  if (disabled(i)) return;
  REDHIP_DCHECK(counters_[i] > 0);
  if (counters_[i] > 0) --counters_[i];
}

std::uint64_t CountingBloomFilter::disabled_count() const {
  std::uint64_t n = 0;
  for (std::uint64_t w : disabled_) {
    n += static_cast<std::uint64_t>(std::popcount(w));
  }
  return n;
}

}  // namespace redhip
