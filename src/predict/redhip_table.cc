#include "predict/redhip_table.h"

#include <algorithm>
#include <bit>

#include "common/bitops.h"
#include "common/check.h"

namespace redhip {

std::string to_string(RecalMode m) {
  return m == RecalMode::kBatch ? "batch" : "rolling";
}

std::uint32_t RedhipConfig::index_bits() const { return log2_exact(table_bits); }

void RedhipConfig::validate() const {
  REDHIP_CHECK_MSG(is_pow2(table_bits), "PT size must be a power of two");
  REDHIP_CHECK_MSG(table_bits >= 64, "PT must hold at least one 64-bit line");
  REDHIP_CHECK_MSG(is_pow2(banks) && banks >= 1, "PT banks must be a power of two");
}

RedhipTable::RedhipTable(const RedhipConfig& config) : config_(config) {
  config_.validate();
  index_mask_ = config_.table_bits - 1;
  words_.assign(config_.table_bits / 64, 0);
}

Prediction RedhipTable::query(LineAddr line) {
  ++events_.lookups;
  return test_bit(index_of(line)) ? Prediction::kPresent : Prediction::kAbsent;
}

void RedhipTable::on_fill(LineAddr line) {
  ++events_.updates;
  set_bit(index_of(line));
}

void RedhipTable::on_evict(LineAddr line) {
  // A 1-bit map cannot express removal; staleness is repaired by the next
  // recalibration.  This asymmetry is the paper's central design decision.
  //
  // The one exception is interval == 1 (perfect recalibration): the table
  // is defined to always equal the exact LLC decode, which is maintained
  // here by rebuilding the evicted line's set — identical contents to a
  // full rebuild after every miss, without the O(sets) simulation cost.
  if (config_.recal_interval_l1_misses == 1 && covered_ != nullptr) {
    recalibrate_sets(*covered_, line & (covered_->sets() - 1), 1);
  }
}

Cycles RedhipTable::note_l1_miss_and_maybe_recalibrate(const TagArray& covered) {
  ++l1_misses_;
  const std::uint64_t interval = config_.recal_interval_l1_misses;
  if (interval == 0) return 0;

  if (interval == 1 && covered_ != nullptr) {
    // Perfect recalibration is maintained incrementally in on_evict(); the
    // per-miss table refresh is a single-cycle touch.
    ++events_.recalibrations;
    return 1;
  }

  if (config_.recal_mode == RecalMode::kBatch) {
    if (++misses_since_recal_ < interval) return 0;
    misses_since_recal_ = 0;
    return recalibrate(covered);
  }

  // Rolling: accrue sets-worth of work so the whole table is rebuilt once
  // per interval, a few sets at a time (fixed-point credit, no drift).
  rolling_credit_ += covered.sets();
  std::uint64_t todo = rolling_credit_ / interval;
  rolling_credit_ %= interval;
  if (todo == 0) return 0;
  Cycles stall = 0;
  while (todo > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(todo, covered.sets() - rolling_cursor_);
    stall += recalibrate_sets(covered, rolling_cursor_, chunk);
    rolling_cursor_ += chunk;
    if (rolling_cursor_ == covered.sets()) {
      rolling_cursor_ = 0;
      ++events_.recalibrations;  // one full pass completed
      if (observer_ != nullptr) observer_->on_rolling_pass(bits_set());
    }
    todo -= chunk;
  }
  return stall;
}

Cycles RedhipTable::recalibrate(const TagArray& covered) {
  if (observer_ != nullptr) observer_->on_recal_begin(bits_set());
  ++events_.recalibrations;
  std::fill(words_.begin(), words_.end(), 0);
  const std::uint64_t sets = covered.sets();
  for (std::uint64_t s = 0; s < sets; ++s) {
    covered.visit_valid_in_set(
        s, [&](LineAddr line) { set_bit(index_of(line)); });
  }
  events_.recal_sets_read += sets;
  events_.recal_words_written += words_.size();
  // One cycle recalibrates one set's PT line (decode + hierarchical OR);
  // `banks` sets proceed in parallel.  With the paper's geometry (64Ki sets,
  // 4 banks) this is the quoted 16Ki-cycle stall.
  const Cycles stall = (sets + config_.banks - 1) / config_.banks;
  if (observer_ != nullptr) observer_->on_recal_end(bits_set(), stall);
  return stall;
}

Cycles RedhipTable::recalibrate_sets(const TagArray& covered,
                                     std::uint64_t first_set,
                                     std::uint64_t count) {
  const std::uint64_t sets = covered.sets();
  const std::uint32_t k = covered.geometry().set_bits();
  const std::uint64_t aliases_per_set = config_.table_bits >> k;
  REDHIP_DCHECK(first_set + count <= sets);
  if (recal_filter_ && recal_filter_(first_set, count)) {
    // The update was lost in flight: the stale PT lines stand (conservative
    // — only energy is wasted) but the recalibration hardware still ran.
    return (count + config_.banks - 1) / config_.banks;
  }
  for (std::uint64_t s = first_set; s < first_set + count; ++s) {
    // Clear exactly the PT entries that can hold set-s lines (index = low p
    // bits of the line address, whose low k bits are the set index), then
    // re-set from the resident tags — a per-set exact rebuild.
    for (std::uint64_t m = 0; m < aliases_per_set; ++m) {
      clear_bit((m << k) | s);
    }
    covered.visit_valid_in_set(
        s, [&](LineAddr line) { set_bit(index_of(line)); });
  }
  events_.recal_sets_read += count;
  events_.recal_words_written += count;  // one PT line per set (Fig. 4)
  return (count + config_.banks - 1) / config_.banks;
}

bool RedhipTable::corrupt_clear_bit(std::uint64_t index) {
  index &= index_mask_;
  if (!test_bit(index)) return false;
  clear_bit(index);
  return true;
}

bool RedhipTable::corrupt_set_bit(std::uint64_t index) {
  index &= index_mask_;
  if (test_bit(index)) return false;
  set_bit(index);
  return true;
}

bool RedhipTable::test_bit(std::uint64_t index) const {
  return (words_[index >> 6] >> (index & 63)) & 1u;
}

void RedhipTable::set_bit(std::uint64_t index) {
  words_[index >> 6] |= std::uint64_t{1} << (index & 63);
}

void RedhipTable::clear_bit(std::uint64_t index) {
  words_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
}

std::uint64_t RedhipTable::bits_set() const {
  std::uint64_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
  return n;
}

}  // namespace redhip
