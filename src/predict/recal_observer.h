// RecalObserver — callback interface RedhipTable fires around table
// rebuilds, so the observability layer can trace recalibration without the
// predictor depending on it (dependency-free header; src/obs implements it).
#pragma once

#include <cstdint>

namespace redhip {

class RecalObserver {
 public:
  virtual ~RecalObserver() = default;

  // Full (batch / recovery / re-enable) rebuild: begin fires before the
  // table is cleared with the current occupancy, end fires after the exact
  // rebuild with the new occupancy and the modeled stall.  Because a
  // rebuild only removes stale bits, bits_after <= bits_before always —
  // this is the "false positives are wiped, never added" invariant the
  // property tests check per recalibration boundary.
  virtual void on_recal_begin(std::uint64_t bits_before) = 0;
  virtual void on_recal_end(std::uint64_t bits_after, std::uint64_t stall_cycles) = 0;

  // Rolling mode: one full round-robin pass over the table completed (the
  // per-chunk rebuilds themselves are too fine-grained to trace).
  virtual void on_rolling_pass(std::uint64_t bits_set) = 0;
};

}  // namespace redhip
