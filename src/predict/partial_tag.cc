#include "predict/partial_tag.h"

#include "common/bitops.h"
#include "common/check.h"

namespace redhip {

void PartialTagConfig::validate() const {
  REDHIP_CHECK_MSG(partial_bits >= 1 && partial_bits <= 16,
                   "partial tag width out of range");
}

PartialTagPredictor::PartialTagPredictor(const PartialTagConfig& config,
                                         std::uint64_t sets,
                                         std::uint32_t ways,
                                         std::uint32_t set_bits)
    : config_(config), sets_(sets), ways_(ways), set_bits_(set_bits) {
  config_.validate();
  REDHIP_CHECK_MSG(is_pow2(sets), "mirrored set count must be a power of two");
  REDHIP_CHECK(ways >= 1);
  slots_.resize(sets_ * ways_);
}

Prediction PartialTagPredictor::query(LineAddr line) {
  ++events_.lookups;
  const std::uint16_t p = partial_of(line);
  const Slot* s = set_begin(set_of(line));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (s[w].valid && s[w].partial == p) return Prediction::kPresent;
  }
  // No partial tag matches, so no full tag can: a provable miss.
  return Prediction::kAbsent;
}

void PartialTagPredictor::on_fill(LineAddr line) {
  ++events_.updates;
  Slot* s = set_begin(set_of(line));
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!s[w].valid) {
      s[w] = {partial_of(line), true};
      ++occupied_;
      return;
    }
  }
  // The mirrored cache evicts before refilling a full set; reaching here
  // means the caller forgot an on_evict.
  REDHIP_CHECK_MSG(false, "partial-tag mirror overflow: missed eviction");
}

void PartialTagPredictor::on_evict(LineAddr line) {
  ++events_.updates;
  const std::uint16_t p = partial_of(line);
  Slot* s = set_begin(set_of(line));
  // Remove one matching slot.  The evicted line's slot has this partial tag
  // by construction; if several ways share it, removing any one keeps the
  // per-set multiset of partial tags exact.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (s[w].valid && s[w].partial == p) {
      s[w].valid = false;
      --occupied_;
      return;
    }
  }
  REDHIP_DCHECK(false && "evicted line was not mirrored");
}

}  // namespace redhip
