#include "prefetch/stride_prefetcher.h"

namespace redhip {

StridePrefetcher::StridePrefetcher(const StridePrefetcherConfig& config)
    : config_(config) {
  config_.validate();
  table_.resize(config_.entries());
}

void StridePrefetcher::observe(std::uint32_t pc, Addr addr,
                               std::vector<LineAddr>& out) {
  ++events_.table_lookups;
  Entry& e = table_[index_of(pc)];
  const std::uint32_t tag = pc >> config_.index_bits;

  if (!e.valid || e.tag != tag) {
    e = {tag, true, State::kInitial, addr, 0};
    return;
  }

  const std::int64_t stride =
      static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(e.last_addr);
  const bool match = stride == e.stride && stride != 0;

  switch (e.state) {
    case State::kInitial:
      e.state = match ? State::kSteady : State::kTransient;
      break;
    case State::kTransient:
      e.state = match ? State::kSteady : State::kTransient;
      break;
    case State::kSteady:
      if (!match) e.state = State::kTransient;
      break;
  }
  if (!match) e.stride = stride;
  e.last_addr = addr;

  if (e.state != State::kSteady || e.stride == 0) return;

  // Emit `degree` distinct line addresses starting `distance` strides ahead.
  LineAddr last_emitted = ~LineAddr{0};
  const LineAddr own_line = addr >> config_.line_shift;
  for (std::uint32_t i = 0; i < config_.degree; ++i) {
    const std::int64_t delta =
        e.stride * static_cast<std::int64_t>(config_.distance + i);
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(addr) + delta);
    const LineAddr line = target >> config_.line_shift;
    if (line == own_line || line == last_emitted) continue;
    out.push_back(line);
    last_emitted = line;
  }
}

StridePrefetcher::State StridePrefetcher::state_of(std::uint32_t pc) const {
  const Entry& e = table_[index_of(pc)];
  return e.valid && e.tag == (pc >> config_.index_bits) ? e.state
                                                        : State::kInitial;
}

std::int64_t StridePrefetcher::stride_of(std::uint32_t pc) const {
  const Entry& e = table_[index_of(pc)];
  return e.valid && e.tag == (pc >> config_.index_bits) ? e.stride : 0;
}

}  // namespace redhip
