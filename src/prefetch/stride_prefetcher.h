// StridePrefetcher — the paper's hardware data prefetcher (Fu, Patel,
// Janssens, MICRO'92 [8]): a PC-indexed reference prediction table with a
// two-bit confidence state machine per entry.
//
// The paper sizes the table "large enough so that its accuracy is comparable
// with the best prefetching techniques"; the default here is 4K entries.
// The prefetcher observes demand accesses, learns per-PC strides, and once
// an entry is confirmed emits up to `degree` prefetch line addresses ahead
// of the access.  What happens to those addresses (probing the hierarchy,
// filling, polluting) is the simulator's business.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/check.h"
#include "common/types.h"
#include "energy/ledger.h"

namespace redhip {

struct StridePrefetcherConfig {
  std::uint32_t index_bits = 12;  // 2^12 = 4K table entries
  std::uint32_t degree = 2;       // prefetches emitted per confirmed access
  std::uint32_t distance = 1;     // how many strides ahead the first one is
  std::uint32_t line_shift = kDefaultLineShift;

  std::uint64_t entries() const { return std::uint64_t{1} << index_bits; }
  void validate() const {
    REDHIP_CHECK_MSG(index_bits >= 4 && index_bits <= 24,
                     "prefetch table index bits out of range");
    REDHIP_CHECK_MSG(degree >= 1 && degree <= 16, "degree out of range");
    REDHIP_CHECK_MSG(distance >= 1, "distance must be >= 1");
  }
};

class StridePrefetcher {
 public:
  explicit StridePrefetcher(const StridePrefetcherConfig& config);

  // Observe a demand access (pc, byte address).  Appends predicted *line*
  // addresses to `out` (it is not cleared).  Entry states follow the classic
  // RPT: initial -> (stride match) transient -> steady; a steady entry that
  // mispredicts degrades rather than resetting, giving hysteresis.
  void observe(std::uint32_t pc, Addr addr, std::vector<LineAddr>& out);

  PrefetchEvents& events() { return events_; }
  const PrefetchEvents& events() const { return events_; }
  const StridePrefetcherConfig& config() const { return config_; }

  // Introspection for tests.
  enum class State : std::uint8_t { kInitial, kTransient, kSteady };
  State state_of(std::uint32_t pc) const;
  std::int64_t stride_of(std::uint32_t pc) const;

 private:
  struct Entry {
    std::uint32_t tag = 0;
    bool valid = false;
    State state = State::kInitial;
    Addr last_addr = 0;
    std::int64_t stride = 0;
  };

  std::uint64_t index_of(std::uint32_t pc) const {
    return pc & (config_.entries() - 1);
  }

  StridePrefetcherConfig config_;
  std::vector<Entry> table_;
  PrefetchEvents events_;
};

}  // namespace redhip
