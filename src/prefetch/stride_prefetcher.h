// StridePrefetcher — the paper's hardware data prefetcher (Fu, Patel,
// Janssens, MICRO'92 [8]): a PC-indexed reference prediction table with a
// two-bit confidence state machine per entry.
//
// The paper sizes the table "large enough so that its accuracy is comparable
// with the best prefetching techniques"; the default here is 4K entries.
// The prefetcher observes demand accesses, learns per-PC strides, and once
// an entry is confirmed emits up to `degree` prefetch line addresses ahead
// of the access.  What happens to those addresses (probing the hierarchy,
// filling, polluting) is the simulator's business.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/bytestream.h"
#include "common/check.h"
#include "common/types.h"
#include "energy/ledger.h"

namespace redhip {

struct StridePrefetcherConfig {
  std::uint32_t index_bits = 12;  // 2^12 = 4K table entries
  std::uint32_t degree = 2;       // prefetches emitted per confirmed access
  std::uint32_t distance = 1;     // how many strides ahead the first one is
  std::uint32_t line_shift = kDefaultLineShift;

  std::uint64_t entries() const { return std::uint64_t{1} << index_bits; }
  void validate() const {
    REDHIP_CHECK_MSG(index_bits >= 4 && index_bits <= 24,
                     "prefetch table index bits out of range");
    REDHIP_CHECK_MSG(degree >= 1 && degree <= 16, "degree out of range");
    REDHIP_CHECK_MSG(distance >= 1, "distance must be >= 1");
  }
};

class StridePrefetcher {
 public:
  explicit StridePrefetcher(const StridePrefetcherConfig& config);

  // Observe a demand access (pc, byte address).  Appends predicted *line*
  // addresses to `out` (it is not cleared).  Entry states follow the classic
  // RPT: initial -> (stride match) transient -> steady; a steady entry that
  // mispredicts degrades rather than resetting, giving hysteresis.
  void observe(std::uint32_t pc, Addr addr, std::vector<LineAddr>& out);

  PrefetchEvents& events() { return events_; }
  const PrefetchEvents& events() const { return events_; }
  const StridePrefetcherConfig& config() const { return config_; }

  // Introspection for tests.
  enum class State : std::uint8_t { kInitial, kTransient, kSteady };
  State state_of(std::uint32_t pc) const;
  std::int64_t stride_of(std::uint32_t pc) const;

  // Checkpoint/restore: the reference prediction table plus the event
  // counters are the prefetcher's complete state.
  void ckpt_save(ByteWriter& w) const {
    w.u64(table_.size());
    for (const Entry& e : table_) {
      w.u32(e.tag);
      w.u8(e.valid ? 1 : 0);
      w.u8(static_cast<std::uint8_t>(e.state));
      w.u64(e.last_addr);
      w.i64(e.stride);
    }
    w.u64(events_.table_lookups);
    w.u64(events_.issued);
    w.u64(events_.useful);
    w.u64(events_.useless);
    w.u64(events_.redundant);
  }
  bool ckpt_load(ByteReader& r) {
    if (r.u64() != table_.size()) return false;
    for (Entry& e : table_) {
      e.tag = r.u32();
      e.valid = r.u8() != 0;
      const std::uint8_t s = r.u8();
      if (s > static_cast<std::uint8_t>(State::kSteady)) return false;
      e.state = static_cast<State>(s);
      e.last_addr = r.u64();
      e.stride = r.i64();
    }
    events_.table_lookups = r.u64();
    events_.issued = r.u64();
    events_.useful = r.u64();
    events_.useless = r.u64();
    events_.redundant = r.u64();
    return r.ok();
  }

 private:
  struct Entry {
    std::uint32_t tag = 0;
    bool valid = false;
    State state = State::kInitial;
    Addr last_addr = 0;
    std::int64_t stride = 0;
  };

  std::uint64_t index_of(std::uint32_t pc) const {
    return pc & (config_.entries() - 1);
  }

  StridePrefetcherConfig config_;
  std::vector<Entry> table_;
  PrefetchEvents events_;
};

}  // namespace redhip
