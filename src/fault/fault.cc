#include "fault/fault.h"

#include <sstream>

#include "common/check.h"

namespace redhip {
namespace {

// Workload generators place data in the low 40 address bits (per-core
// region tags live above); flipping inside that span perturbs the reference
// without teleporting it into another core's address space.
constexpr std::uint32_t kTraceAddrBits = 40;

std::uint64_t site_seed(std::uint64_t seed, FaultSite site) {
  // Independent substreams per site: SplitMix64 over (seed, site id).
  SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ull));
  return sm.next();
}

}  // namespace

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kPtBitClear:
      return "pt_clear";
    case FaultSite::kPtBitSet:
      return "pt_set";
    case FaultSite::kRecalDrop:
      return "recal_drop";
    case FaultSite::kTraceAddr:
      return "trace";
  }
  return "unknown";
}

std::uint32_t parse_fault_sites(const std::string& csv) {
  std::uint32_t mask = 0;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token.empty()) continue;
    if (token == "pt_clear") {
      mask |= static_cast<std::uint32_t>(FaultSite::kPtBitClear);
    } else if (token == "pt_set") {
      mask |= static_cast<std::uint32_t>(FaultSite::kPtBitSet);
    } else if (token == "recal_drop") {
      mask |= static_cast<std::uint32_t>(FaultSite::kRecalDrop);
    } else if (token == "trace") {
      mask |= static_cast<std::uint32_t>(FaultSite::kTraceAddr);
    } else if (token == "all") {
      mask |= kAllFaultSites;
    } else {
      throw std::logic_error("unknown fault site: " + token +
                             " (expected pt_clear|pt_set|recal_drop|trace|all)");
    }
  }
  return mask;
}

std::string fault_sites_to_string(std::uint32_t mask) {
  std::string out;
  for (FaultSite s : {FaultSite::kPtBitClear, FaultSite::kPtBitSet,
                      FaultSite::kRecalDrop, FaultSite::kTraceAddr}) {
    if ((mask & static_cast<std::uint32_t>(s)) == 0) continue;
    if (!out.empty()) out += ',';
    out += to_string(s);
  }
  return out;
}

void FaultConfig::validate() const {
  if (!enabled) return;
  REDHIP_CHECK_MSG(site_mask != 0,
                   "fault injection enabled with an empty site mask");
  REDHIP_CHECK_MSG((site_mask & ~kAllFaultSites) == 0,
                   "fault site mask contains unknown bits");
  REDHIP_CHECK_MSG(rate_per_mref >= 1 && rate_per_mref <= 1'000'000,
                   "fault rate must be in [1, 1e6] per million references");
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config),
      pt_clear_(site_seed(config.seed, FaultSite::kPtBitClear)),
      pt_set_(site_seed(config.seed, FaultSite::kPtBitSet)),
      recal_drop_(site_seed(config.seed, FaultSite::kRecalDrop)),
      trace_addr_(site_seed(config.seed, FaultSite::kTraceAddr)),
      payload_(SplitMix64(config.seed).next()) {
  config_.validate();
  REDHIP_CHECK_MSG(config_.enabled, "FaultInjector built from a disabled config");
}

Xoshiro256& FaultInjector::stream(FaultSite site) {
  switch (site) {
    case FaultSite::kPtBitClear:
      return pt_clear_;
    case FaultSite::kPtBitSet:
      return pt_set_;
    case FaultSite::kRecalDrop:
      return recal_drop_;
    case FaultSite::kTraceAddr:
      return trace_addr_;
  }
  return payload_;  // unreachable for valid sites
}

bool FaultInjector::fires(FaultSite site) {
  if (!site_enabled(site)) return false;
  return stream(site).chance_ppm(config_.rate_per_mref);
}

std::uint64_t FaultInjector::pick(std::uint64_t bound) {
  return payload_.below(bound);
}

bool FaultInjector::maybe_perturb(MemRef& ref) {
  if (!fires(FaultSite::kTraceAddr)) return false;
  ref.addr ^= std::uint64_t{1} << pick(kTraceAddrBits);
  ++stats_.trace_refs_perturbed;
  return true;
}

FaultyTraceSource::FaultyTraceSource(std::unique_ptr<TraceSource> inner,
                                     const FaultConfig& config)
    : inner_(std::move(inner)), injector_(config) {
  REDHIP_CHECK_MSG(injector_.site_enabled(FaultSite::kTraceAddr),
                   "FaultyTraceSource needs the trace site enabled");
}

bool FaultyTraceSource::next(MemRef& out) {
  if (!inner_->next(out)) return false;
  injector_.maybe_perturb(out);
  return true;
}

}  // namespace redhip
