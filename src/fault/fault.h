// Fault injection — deterministic corruption of the structures ReDHiP's
// correctness argument rests on (DESIGN.md "Fault model & recovery").
//
// The paper's central invariant is that the prediction table is a
// conservative superset of LLC contents, so a predicted-absent bypass can
// never hide on-chip data.  That invariant is *structural* only while the
// hardware behaves: a single-event upset flipping a PT bit 1→0 silently
// breaks it, a 0→1 flip merely costs energy (a lingering false positive),
// a lost recalibration set-range leaves stale 1s (conservative, so again
// energy-only), and a corrupted trace record models input-side damage.
// The FaultInjector produces each of these, seeded and per-site
// deterministic: a (config, seed) pair reproduces the exact same fault
// sequence on any platform, which is what makes recovery testable.
//
// Everything here is opt-in and zero-overhead when disabled: the simulator
// only constructs an injector when `FaultConfig::enabled` is set, and all
// hot-path hooks are guarded by a null check on that pointer.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "trace/mem_ref.h"

namespace redhip {

// Injection sites, combinable as a bitmask.
enum class FaultSite : std::uint32_t {
  kPtBitClear = 1u << 0,  // flip a PT bit 1→0: breaks no-false-negative
  kPtBitSet = 1u << 1,    // flip a PT bit 0→1: a lingering false positive
  kRecalDrop = 1u << 2,   // drop an in-flight recalibration set-range
  kTraceAddr = 1u << 3,   // flip one address bit of a trace record
};
inline constexpr std::uint32_t kAllFaultSites =
    static_cast<std::uint32_t>(FaultSite::kPtBitClear) |
    static_cast<std::uint32_t>(FaultSite::kPtBitSet) |
    static_cast<std::uint32_t>(FaultSite::kRecalDrop) |
    static_cast<std::uint32_t>(FaultSite::kTraceAddr);
std::string to_string(FaultSite site);

// "pt_clear,pt_set" → mask.  Throws std::logic_error naming the bad token.
std::uint32_t parse_fault_sites(const std::string& csv);
std::string fault_sites_to_string(std::uint32_t mask);

struct FaultConfig {
  bool enabled = false;
  // Expected faults per million simulated references, per enabled site
  // (per-Mref is exactly ppm-per-reference, evaluated integer-exact).
  std::uint32_t rate_per_mref = 100;
  std::uint32_t site_mask = kAllFaultSites;
  std::uint64_t seed = 0xfa175eed;
  // Treat injected faults as transient host-side events: a run aborted by
  // the auditor (RecoveryPolicy::kAbortRetry) is eligible for a reseeded
  // bounded retry in run_matrix instead of failing the whole matrix.
  bool transient = true;

  void validate() const;
};

// Everything a faulted run reports; lives in SimResult::fault.  All zeros
// when injection and auditing are off.
struct FaultStats {
  // Injection side.
  std::uint64_t pt_bits_cleared = 0;   // 1→0 flips that actually flipped
  std::uint64_t pt_bits_set = 0;       // 0→1 flips that actually flipped
  std::uint64_t recal_chunks_dropped = 0;
  std::uint64_t trace_refs_perturbed = 0;
  // Audit side.
  std::uint64_t audit_checks = 0;           // bypasses shadow-checked
  std::uint64_t invariant_violations = 0;   // bypass would have hidden data
  std::uint64_t recovery_recalibrations = 0;
  std::uint64_t recovery_stall_cycles = 0;

  std::uint64_t injected_total() const {
    return pt_bits_cleared + pt_bits_set + recal_chunks_dropped +
           trace_refs_perturbed;
  }
  bool operator==(const FaultStats&) const = default;
};

// Thrown by the invariant auditor under RecoveryPolicy::kAbortRetry.
// run_matrix treats it as retryable (bounded, reseeded) when
// FaultConfig::transient is set; every other exception fails the matrix.
class TransientFaultError : public std::runtime_error {
 public:
  explicit TransientFaultError(const std::string& what)
      : std::runtime_error(what) {}
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  // One Bernoulli draw on `site`'s private stream: does a fault land here?
  // Each site owns an independent substream, so masking one site off never
  // shifts another site's fault sequence.
  bool fires(FaultSite site);

  // Uniform in [0, bound) on the shared payload stream — used to pick the
  // PT bit index / address bit to corrupt once a site has fired.
  std::uint64_t pick(std::uint64_t bound);

  // Flip one bit of `ref.addr` (bits 0..39: the span the workload
  // generators populate).  Returns true when the record was perturbed.
  bool maybe_perturb(MemRef& ref);

  bool site_enabled(FaultSite site) const {
    return (config_.site_mask & static_cast<std::uint32_t>(site)) != 0;
  }
  const FaultConfig& config() const { return config_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

  // Checkpoint/restore: the five substream cursors plus the stats block are
  // the injector's complete state — restoring them continues the exact
  // fault sequence the interrupted run would have produced.
  struct CkptState {
    Xoshiro256::State streams[5];  // pt_clear, pt_set, recal_drop,
                                   // trace_addr, payload — in that order
    FaultStats stats;
  };
  CkptState ckpt_state() const {
    return {{pt_clear_.state(), pt_set_.state(), recal_drop_.state(),
             trace_addr_.state(), payload_.state()},
            stats_};
  }
  void ckpt_restore(const CkptState& st) {
    pt_clear_.set_state(st.streams[0]);
    pt_set_.set_state(st.streams[1]);
    recal_drop_.set_state(st.streams[2]);
    trace_addr_.set_state(st.streams[3]);
    payload_.set_state(st.streams[4]);
    stats_ = st.stats;
  }

 private:
  Xoshiro256& stream(FaultSite site);

  FaultConfig config_;
  Xoshiro256 pt_clear_;
  Xoshiro256 pt_set_;
  Xoshiro256 recal_drop_;
  Xoshiro256 trace_addr_;
  Xoshiro256 payload_;
  FaultStats stats_;
};

// TraceSource decorator: replays `inner` with FaultSite::kTraceAddr
// perturbation applied, for file traces and standalone tests.  The
// simulator perturbs its own trace stream internally (same code path via
// FaultInjector::maybe_perturb); this wrapper exists for pipelines that
// corrupt a trace *before* it reaches a simulator.
class FaultyTraceSource final : public TraceSource {
 public:
  FaultyTraceSource(std::unique_ptr<TraceSource> inner,
                    const FaultConfig& config);

  bool next(MemRef& out) override;

  std::uint64_t perturbed() const { return injector_.stats().trace_refs_perturbed; }

 private:
  std::unique_ptr<TraceSource> inner_;
  FaultInjector injector_;
};

}  // namespace redhip
