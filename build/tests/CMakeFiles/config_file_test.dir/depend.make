# Empty dependencies file for config_file_test.
# This may be replaced when dependencies are built.
