file(REMOVE_RECURSE
  "CMakeFiles/config_file_test.dir/config_file_test.cc.o"
  "CMakeFiles/config_file_test.dir/config_file_test.cc.o.d"
  "config_file_test"
  "config_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
