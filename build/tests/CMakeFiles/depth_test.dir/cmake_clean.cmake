file(REMOVE_RECURSE
  "CMakeFiles/depth_test.dir/depth_test.cc.o"
  "CMakeFiles/depth_test.dir/depth_test.cc.o.d"
  "depth_test"
  "depth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
