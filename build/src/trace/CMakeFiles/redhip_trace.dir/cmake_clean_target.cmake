file(REMOVE_RECURSE
  "libredhip_trace.a"
)
