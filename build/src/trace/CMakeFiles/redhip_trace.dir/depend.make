# Empty dependencies file for redhip_trace.
# This may be replaced when dependencies are built.
