file(REMOVE_RECURSE
  "CMakeFiles/redhip_trace.dir/kernels.cc.o"
  "CMakeFiles/redhip_trace.dir/kernels.cc.o.d"
  "CMakeFiles/redhip_trace.dir/trace_io.cc.o"
  "CMakeFiles/redhip_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/redhip_trace.dir/workloads.cc.o"
  "CMakeFiles/redhip_trace.dir/workloads.cc.o.d"
  "libredhip_trace.a"
  "libredhip_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
