# Empty compiler generated dependencies file for redhip_predict.
# This may be replaced when dependencies are built.
