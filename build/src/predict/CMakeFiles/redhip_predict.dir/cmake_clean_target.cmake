file(REMOVE_RECURSE
  "libredhip_predict.a"
)
