file(REMOVE_RECURSE
  "CMakeFiles/redhip_predict.dir/counting_bloom.cc.o"
  "CMakeFiles/redhip_predict.dir/counting_bloom.cc.o.d"
  "CMakeFiles/redhip_predict.dir/oracle.cc.o"
  "CMakeFiles/redhip_predict.dir/oracle.cc.o.d"
  "CMakeFiles/redhip_predict.dir/partial_tag.cc.o"
  "CMakeFiles/redhip_predict.dir/partial_tag.cc.o.d"
  "CMakeFiles/redhip_predict.dir/redhip_table.cc.o"
  "CMakeFiles/redhip_predict.dir/redhip_table.cc.o.d"
  "libredhip_predict.a"
  "libredhip_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
