
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/counting_bloom.cc" "src/predict/CMakeFiles/redhip_predict.dir/counting_bloom.cc.o" "gcc" "src/predict/CMakeFiles/redhip_predict.dir/counting_bloom.cc.o.d"
  "/root/repo/src/predict/oracle.cc" "src/predict/CMakeFiles/redhip_predict.dir/oracle.cc.o" "gcc" "src/predict/CMakeFiles/redhip_predict.dir/oracle.cc.o.d"
  "/root/repo/src/predict/partial_tag.cc" "src/predict/CMakeFiles/redhip_predict.dir/partial_tag.cc.o" "gcc" "src/predict/CMakeFiles/redhip_predict.dir/partial_tag.cc.o.d"
  "/root/repo/src/predict/redhip_table.cc" "src/predict/CMakeFiles/redhip_predict.dir/redhip_table.cc.o" "gcc" "src/predict/CMakeFiles/redhip_predict.dir/redhip_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redhip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/redhip_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/redhip_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
