# Empty dependencies file for redhip_sim.
# This may be replaced when dependencies are built.
