file(REMOVE_RECURSE
  "CMakeFiles/redhip_sim.dir/config.cc.o"
  "CMakeFiles/redhip_sim.dir/config.cc.o.d"
  "CMakeFiles/redhip_sim.dir/simulator.cc.o"
  "CMakeFiles/redhip_sim.dir/simulator.cc.o.d"
  "libredhip_sim.a"
  "libredhip_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
