file(REMOVE_RECURSE
  "libredhip_sim.a"
)
