file(REMOVE_RECURSE
  "CMakeFiles/redhip_harness.dir/config_file.cc.o"
  "CMakeFiles/redhip_harness.dir/config_file.cc.o.d"
  "CMakeFiles/redhip_harness.dir/experiment.cc.o"
  "CMakeFiles/redhip_harness.dir/experiment.cc.o.d"
  "CMakeFiles/redhip_harness.dir/json_report.cc.o"
  "CMakeFiles/redhip_harness.dir/json_report.cc.o.d"
  "CMakeFiles/redhip_harness.dir/report.cc.o"
  "CMakeFiles/redhip_harness.dir/report.cc.o.d"
  "CMakeFiles/redhip_harness.dir/run.cc.o"
  "CMakeFiles/redhip_harness.dir/run.cc.o.d"
  "CMakeFiles/redhip_harness.dir/thread_pool.cc.o"
  "CMakeFiles/redhip_harness.dir/thread_pool.cc.o.d"
  "libredhip_harness.a"
  "libredhip_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
