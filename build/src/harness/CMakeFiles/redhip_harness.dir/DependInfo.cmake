
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/config_file.cc" "src/harness/CMakeFiles/redhip_harness.dir/config_file.cc.o" "gcc" "src/harness/CMakeFiles/redhip_harness.dir/config_file.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/redhip_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/redhip_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/json_report.cc" "src/harness/CMakeFiles/redhip_harness.dir/json_report.cc.o" "gcc" "src/harness/CMakeFiles/redhip_harness.dir/json_report.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/harness/CMakeFiles/redhip_harness.dir/report.cc.o" "gcc" "src/harness/CMakeFiles/redhip_harness.dir/report.cc.o.d"
  "/root/repo/src/harness/run.cc" "src/harness/CMakeFiles/redhip_harness.dir/run.cc.o" "gcc" "src/harness/CMakeFiles/redhip_harness.dir/run.cc.o.d"
  "/root/repo/src/harness/thread_pool.cc" "src/harness/CMakeFiles/redhip_harness.dir/thread_pool.cc.o" "gcc" "src/harness/CMakeFiles/redhip_harness.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/redhip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/redhip_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/redhip_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/redhip_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/redhip_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/redhip_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redhip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
