file(REMOVE_RECURSE
  "libredhip_harness.a"
)
