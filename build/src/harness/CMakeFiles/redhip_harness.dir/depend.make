# Empty dependencies file for redhip_harness.
# This may be replaced when dependencies are built.
