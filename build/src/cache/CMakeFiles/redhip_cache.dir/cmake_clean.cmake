file(REMOVE_RECURSE
  "CMakeFiles/redhip_cache.dir/replacement.cc.o"
  "CMakeFiles/redhip_cache.dir/replacement.cc.o.d"
  "CMakeFiles/redhip_cache.dir/tag_array.cc.o"
  "CMakeFiles/redhip_cache.dir/tag_array.cc.o.d"
  "libredhip_cache.a"
  "libredhip_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
