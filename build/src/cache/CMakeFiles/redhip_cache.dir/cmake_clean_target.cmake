file(REMOVE_RECURSE
  "libredhip_cache.a"
)
