# Empty dependencies file for redhip_cache.
# This may be replaced when dependencies are built.
