# Empty compiler generated dependencies file for redhip_prefetch.
# This may be replaced when dependencies are built.
