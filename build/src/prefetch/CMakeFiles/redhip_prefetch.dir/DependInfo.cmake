
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/stride_prefetcher.cc" "src/prefetch/CMakeFiles/redhip_prefetch.dir/stride_prefetcher.cc.o" "gcc" "src/prefetch/CMakeFiles/redhip_prefetch.dir/stride_prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redhip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/redhip_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/redhip_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
