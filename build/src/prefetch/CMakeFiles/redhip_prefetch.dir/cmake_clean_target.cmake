file(REMOVE_RECURSE
  "libredhip_prefetch.a"
)
