file(REMOVE_RECURSE
  "CMakeFiles/redhip_prefetch.dir/stride_prefetcher.cc.o"
  "CMakeFiles/redhip_prefetch.dir/stride_prefetcher.cc.o.d"
  "libredhip_prefetch.a"
  "libredhip_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
