file(REMOVE_RECURSE
  "CMakeFiles/redhip_energy.dir/cacti_lite.cc.o"
  "CMakeFiles/redhip_energy.dir/cacti_lite.cc.o.d"
  "CMakeFiles/redhip_energy.dir/ledger.cc.o"
  "CMakeFiles/redhip_energy.dir/ledger.cc.o.d"
  "libredhip_energy.a"
  "libredhip_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
