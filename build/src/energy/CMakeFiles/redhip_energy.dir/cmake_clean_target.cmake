file(REMOVE_RECURSE
  "libredhip_energy.a"
)
