
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/cacti_lite.cc" "src/energy/CMakeFiles/redhip_energy.dir/cacti_lite.cc.o" "gcc" "src/energy/CMakeFiles/redhip_energy.dir/cacti_lite.cc.o.d"
  "/root/repo/src/energy/ledger.cc" "src/energy/CMakeFiles/redhip_energy.dir/ledger.cc.o" "gcc" "src/energy/CMakeFiles/redhip_energy.dir/ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/redhip_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/redhip_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
