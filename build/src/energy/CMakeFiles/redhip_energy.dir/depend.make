# Empty dependencies file for redhip_energy.
# This may be replaced when dependencies are built.
