# Empty compiler generated dependencies file for redhip_common.
# This may be replaced when dependencies are built.
