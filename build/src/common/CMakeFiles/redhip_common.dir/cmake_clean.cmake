file(REMOVE_RECURSE
  "CMakeFiles/redhip_common.dir/cli.cc.o"
  "CMakeFiles/redhip_common.dir/cli.cc.o.d"
  "CMakeFiles/redhip_common.dir/rng.cc.o"
  "CMakeFiles/redhip_common.dir/rng.cc.o.d"
  "libredhip_common.a"
  "libredhip_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redhip_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
