file(REMOVE_RECURSE
  "libredhip_common.a"
)
