file(REMOVE_RECURSE
  "../bench/motivation_energy_split"
  "../bench/motivation_energy_split.pdb"
  "CMakeFiles/motivation_energy_split.dir/motivation_energy_split.cpp.o"
  "CMakeFiles/motivation_energy_split.dir/motivation_energy_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_energy_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
