# Empty compiler generated dependencies file for motivation_energy_split.
# This may be replaced when dependencies are built.
