file(REMOVE_RECURSE
  "../bench/ablation_auto_disable"
  "../bench/ablation_auto_disable.pdb"
  "CMakeFiles/ablation_auto_disable.dir/ablation_auto_disable.cpp.o"
  "CMakeFiles/ablation_auto_disable.dir/ablation_auto_disable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_auto_disable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
