# Empty compiler generated dependencies file for ablation_auto_disable.
# This may be replaced when dependencies are built.
