file(REMOVE_RECURSE
  "../bench/fig12_recal_frequency"
  "../bench/fig12_recal_frequency.pdb"
  "CMakeFiles/fig12_recal_frequency.dir/fig12_recal_frequency.cpp.o"
  "CMakeFiles/fig12_recal_frequency.dir/fig12_recal_frequency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_recal_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
