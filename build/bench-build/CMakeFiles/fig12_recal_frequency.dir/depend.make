# Empty dependencies file for fig12_recal_frequency.
# This may be replaced when dependencies are built.
