# Empty dependencies file for fig13_inclusion_policy.
# This may be replaced when dependencies are built.
