file(REMOVE_RECURSE
  "../bench/fig13_inclusion_policy"
  "../bench/fig13_inclusion_policy.pdb"
  "CMakeFiles/fig13_inclusion_policy.dir/fig13_inclusion_policy.cpp.o"
  "CMakeFiles/fig13_inclusion_policy.dir/fig13_inclusion_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_inclusion_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
