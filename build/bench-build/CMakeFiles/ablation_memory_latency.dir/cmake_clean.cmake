file(REMOVE_RECURSE
  "../bench/ablation_memory_latency"
  "../bench/ablation_memory_latency.pdb"
  "CMakeFiles/ablation_memory_latency.dir/ablation_memory_latency.cpp.o"
  "CMakeFiles/ablation_memory_latency.dir/ablation_memory_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
