# Empty compiler generated dependencies file for fig07_dynamic_energy.
# This may be replaced when dependencies are built.
