file(REMOVE_RECURSE
  "../bench/fig07_dynamic_energy"
  "../bench/fig07_dynamic_energy.pdb"
  "CMakeFiles/fig07_dynamic_energy.dir/fig07_dynamic_energy.cpp.o"
  "CMakeFiles/fig07_dynamic_energy.dir/fig07_dynamic_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dynamic_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
