# Empty compiler generated dependencies file for extension_hierarchy_depth.
# This may be replaced when dependencies are built.
