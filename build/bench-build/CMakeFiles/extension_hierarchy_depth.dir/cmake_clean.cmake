file(REMOVE_RECURSE
  "../bench/extension_hierarchy_depth"
  "../bench/extension_hierarchy_depth.pdb"
  "CMakeFiles/extension_hierarchy_depth.dir/extension_hierarchy_depth.cpp.o"
  "CMakeFiles/extension_hierarchy_depth.dir/extension_hierarchy_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hierarchy_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
