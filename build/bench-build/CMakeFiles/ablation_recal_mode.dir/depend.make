# Empty dependencies file for ablation_recal_mode.
# This may be replaced when dependencies are built.
