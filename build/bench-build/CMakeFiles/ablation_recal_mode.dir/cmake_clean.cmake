file(REMOVE_RECURSE
  "../bench/ablation_recal_mode"
  "../bench/ablation_recal_mode.pdb"
  "CMakeFiles/ablation_recal_mode.dir/ablation_recal_mode.cpp.o"
  "CMakeFiles/ablation_recal_mode.dir/ablation_recal_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recal_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
