file(REMOVE_RECURSE
  "../bench/fig01_cache_history"
  "../bench/fig01_cache_history.pdb"
  "CMakeFiles/fig01_cache_history.dir/fig01_cache_history.cpp.o"
  "CMakeFiles/fig01_cache_history.dir/fig01_cache_history.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cache_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
