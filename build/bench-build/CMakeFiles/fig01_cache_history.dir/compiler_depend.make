# Empty compiler generated dependencies file for fig01_cache_history.
# This may be replaced when dependencies are built.
