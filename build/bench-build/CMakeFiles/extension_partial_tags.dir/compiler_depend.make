# Empty compiler generated dependencies file for extension_partial_tags.
# This may be replaced when dependencies are built.
