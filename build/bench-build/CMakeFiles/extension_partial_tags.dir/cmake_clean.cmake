file(REMOVE_RECURSE
  "../bench/extension_partial_tags"
  "../bench/extension_partial_tags.pdb"
  "CMakeFiles/extension_partial_tags.dir/extension_partial_tags.cpp.o"
  "CMakeFiles/extension_partial_tags.dir/extension_partial_tags.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_partial_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
