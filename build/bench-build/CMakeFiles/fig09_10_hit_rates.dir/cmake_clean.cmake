file(REMOVE_RECURSE
  "../bench/fig09_10_hit_rates"
  "../bench/fig09_10_hit_rates.pdb"
  "CMakeFiles/fig09_10_hit_rates.dir/fig09_10_hit_rates.cpp.o"
  "CMakeFiles/fig09_10_hit_rates.dir/fig09_10_hit_rates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_hit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
