# Empty dependencies file for fig09_10_hit_rates.
# This may be replaced when dependencies are built.
