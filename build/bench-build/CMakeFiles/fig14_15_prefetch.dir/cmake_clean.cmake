file(REMOVE_RECURSE
  "../bench/fig14_15_prefetch"
  "../bench/fig14_15_prefetch.pdb"
  "CMakeFiles/fig14_15_prefetch.dir/fig14_15_prefetch.cpp.o"
  "CMakeFiles/fig14_15_prefetch.dir/fig14_15_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
