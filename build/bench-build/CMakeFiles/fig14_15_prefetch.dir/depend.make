# Empty dependencies file for fig14_15_prefetch.
# This may be replaced when dependencies are built.
