file(REMOVE_RECURSE
  "../bench/ablation_writeback"
  "../bench/ablation_writeback.pdb"
  "CMakeFiles/ablation_writeback.dir/ablation_writeback.cpp.o"
  "CMakeFiles/ablation_writeback.dir/ablation_writeback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
