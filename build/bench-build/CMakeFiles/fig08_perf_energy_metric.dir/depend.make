# Empty dependencies file for fig08_perf_energy_metric.
# This may be replaced when dependencies are built.
