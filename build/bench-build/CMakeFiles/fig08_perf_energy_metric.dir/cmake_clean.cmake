file(REMOVE_RECURSE
  "../bench/fig08_perf_energy_metric"
  "../bench/fig08_perf_energy_metric.pdb"
  "CMakeFiles/fig08_perf_energy_metric.dir/fig08_perf_energy_metric.cpp.o"
  "CMakeFiles/fig08_perf_energy_metric.dir/fig08_perf_energy_metric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_perf_energy_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
