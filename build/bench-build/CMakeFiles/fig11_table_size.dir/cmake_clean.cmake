file(REMOVE_RECURSE
  "../bench/fig11_table_size"
  "../bench/fig11_table_size.pdb"
  "CMakeFiles/fig11_table_size.dir/fig11_table_size.cpp.o"
  "CMakeFiles/fig11_table_size.dir/fig11_table_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
