# Empty dependencies file for prefetch_combo.
# This may be replaced when dependencies are built.
