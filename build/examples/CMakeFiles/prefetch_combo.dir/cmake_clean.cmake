file(REMOVE_RECURSE
  "CMakeFiles/prefetch_combo.dir/prefetch_combo.cpp.o"
  "CMakeFiles/prefetch_combo.dir/prefetch_combo.cpp.o.d"
  "prefetch_combo"
  "prefetch_combo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_combo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
