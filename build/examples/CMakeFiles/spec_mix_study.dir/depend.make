# Empty dependencies file for spec_mix_study.
# This may be replaced when dependencies are built.
