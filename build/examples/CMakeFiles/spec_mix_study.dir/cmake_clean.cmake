file(REMOVE_RECURSE
  "CMakeFiles/spec_mix_study.dir/spec_mix_study.cpp.o"
  "CMakeFiles/spec_mix_study.dir/spec_mix_study.cpp.o.d"
  "spec_mix_study"
  "spec_mix_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_mix_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
