
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planner.cpp" "examples/CMakeFiles/capacity_planner.dir/capacity_planner.cpp.o" "gcc" "examples/CMakeFiles/capacity_planner.dir/capacity_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/redhip_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/redhip_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/redhip_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/redhip_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/redhip_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/redhip_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/redhip_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/redhip_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
