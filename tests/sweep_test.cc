// The sweep expansion, its content-addressed keys, and the aggregation
// layer.  The executor-vs-run_matrix equivalence matters most: sweep_matrix
// replaced run_matrix under the figure benches, so the two must produce
// bit-identical SimResults for the same options and columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sweep/aggregate.h"
#include "sweep/config_digest.h"
#include "sweep/sweep.h"

namespace redhip {
namespace {

RunSpec tiny_base() {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scale = 32;
  spec.refs_per_core = 2'000;
  return spec;
}

SweepSpec two_axis_spec() {
  SweepSpec spec;
  spec.base = tiny_base();
  SweepAxis scheme{"scheme",
                   {{"Base", [](RunSpec& s) { s.scheme = Scheme::kBase; }},
                    {"ReDHiP", [](RunSpec& s) { s.scheme = Scheme::kRedhip; }}}};
  SweepAxis size{"table-size", {}};
  for (int shift : {0, -1, -2}) {
    size.values.push_back({std::to_string(shift), [shift](RunSpec& s) {
                             chain_tweak(s, [shift](HierarchyConfig& c) {
                               c.redhip.table_bits >>= -shift;
                             });
                           }});
  }
  spec.axes.push_back(std::move(scheme));
  spec.axes.push_back(std::move(size));
  return spec;
}

TEST(SweepExpand, CrossProductRowMajorLastAxisFastest) {
  const SweepSpec spec = two_axis_spec();
  EXPECT_EQ(spec.cells(), 6u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 6u);
  // (scheme, size) with size fastest: 00 01 02 10 11 12.
  const std::vector<std::vector<std::size_t>> want = {
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].coord, want[i]) << "cell " << i;
  }
  EXPECT_EQ(cells[4].labels, (std::vector<std::string>{"ReDHiP", "-1"}));
  EXPECT_EQ(cells[4].spec.scheme, Scheme::kRedhip);
}

TEST(SweepExpand, CellIndexMatchesExpansionOrder) {
  const SweepSpec spec = two_axis_spec();
  SweepOutcome out;
  for (const SweepAxis& axis : spec.axes) {
    out.axis_names.push_back(axis.name);
    std::vector<std::string> labels;
    for (const AxisValue& v : axis.values) labels.push_back(v.label);
    out.axis_labels.push_back(std::move(labels));
  }
  out.cells = expand(spec);
  for (std::size_t i = 0; i < out.cells.size(); ++i) {
    EXPECT_EQ(out.cell_index(out.cells[i].coord), i);
  }
}

TEST(SweepExpand, EmptyAxisIsAnError) {
  SweepSpec spec;
  spec.base = tiny_base();
  spec.axes.push_back({"empty", {}});
  EXPECT_THROW(expand(spec), std::logic_error);
}

TEST(SweepKey, DeterministicAndLabelIndependent) {
  const auto a = expand(two_axis_spec());
  const auto b = expand(two_axis_spec());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
  }
  // Same modifiers under different labels: the key hashes the resolved
  // config, not the display strings.
  SweepSpec renamed = two_axis_spec();
  for (auto& axis : renamed.axes) {
    for (auto& v : axis.values) v.label = "renamed-" + v.label;
  }
  const auto c = expand(renamed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, c[i].key);
  }
}

TEST(SweepKey, EveryAxisValueChangesTheKey) {
  const auto cells = expand(two_axis_spec());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i].key, cells[j].key)
          << "cells " << i << " and " << j << " collide";
    }
  }
}

TEST(SweepKey, WorkloadScaleRefsSeedAndEngineAreAllKeyed) {
  const RunSpec base = tiny_base();
  const std::uint64_t k0 = sweep_cache_key(base);

  RunSpec s = base;
  s.bench = BenchmarkId::kAstar;
  EXPECT_NE(sweep_cache_key(s), k0);
  s = base;
  s.scale = 16;
  EXPECT_NE(sweep_cache_key(s), k0);
  s = base;
  s.refs_per_core += 1;
  EXPECT_NE(sweep_cache_key(s), k0);
  s = base;
  s.seed += 1;
  EXPECT_NE(sweep_cache_key(s), k0);
  s = base;
  s.engine = SimEngine::kReference;
  EXPECT_NE(sweep_cache_key(s), k0);
}

TEST(SweepKey, TracePathDoesNotChangeTheKey) {
  // The event-trace destination is a host-side side channel, not part of
  // the simulated machine; two runs that differ only in where they write
  // their trace are the same run.
  RunSpec a = tiny_base();
  RunSpec b = tiny_base();
  chain_tweak(b, [](HierarchyConfig& c) { c.obs.trace_path = "/tmp/x.jsonl"; });
  EXPECT_EQ(sweep_cache_key(a), sweep_cache_key(b));
  // ...but turning the epoch sampler on is simulated state (epochs land in
  // SimResult), so it must re-key.
  RunSpec c = tiny_base();
  chain_tweak(c, [](HierarchyConfig& hc) { hc.obs.enabled = true; });
  EXPECT_NE(sweep_cache_key(a), sweep_cache_key(c));
}

TEST(SweepExecutor, MatchesRunMatrixBitForBit) {
  ExperimentOptions opts;
  opts.scale = 32;
  opts.refs_per_core = 2'000;
  opts.benches = {BenchmarkId::kMcf, BenchmarkId::kAstar};
  std::vector<SchemeColumn> columns = {{"Base", Scheme::kBase}};
  SchemeColumn red;
  red.label = "ReDHiP/4";
  red.scheme = Scheme::kRedhip;
  red.tweak = [](HierarchyConfig& c) { c.redhip.table_bits >>= 2; };
  columns.push_back(std::move(red));

  const auto via_matrix = run_matrix(opts, columns);
  SweepStats stats;
  const auto via_sweep = sweep_matrix(opts, columns, &stats);
  EXPECT_EQ(stats.cells, 4u);
  EXPECT_EQ(stats.simulated, 4u);  // no cache configured
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_EQ(via_sweep.size(), via_matrix.size());
  for (std::size_t b = 0; b < via_matrix.size(); ++b) {
    ASSERT_EQ(via_sweep[b].size(), via_matrix[b].size());
    for (std::size_t c = 0; c < via_matrix[b].size(); ++c) {
      EXPECT_TRUE(stats_identical(via_matrix[b][c], via_sweep[b][c]))
          << "bench " << b << " column " << c;
    }
  }
}

TEST(SweepAggregate, SensitivityTableAveragesOverOtherAxes) {
  // Hand-built 2x2 outcome; metric = exec_cycles.
  SweepOutcome out;
  out.axis_names = {"a", "b"};
  out.axis_labels = {{"a0", "a1"}, {"b0", "b1"}};
  out.cells.resize(4);
  const std::vector<double> cycles = {10, 20, 30, 40};  // a0b0 a0b1 a1b0 a1b1
  for (std::size_t i = 0; i < 4; ++i) {
    out.cells[i].coord = {i / 2, i % 2};
    out.cells[i].result.exec_cycles = static_cast<Cycles>(cycles[i]);
  }
  const SensitivityTable ta = sensitivity_table(out, 0, metric_exec_cycles);
  ASSERT_EQ(ta.rows.size(), 2u);
  EXPECT_EQ(ta.rows[0].label, "a0");
  EXPECT_DOUBLE_EQ(ta.rows[0].mean, 15.0);
  EXPECT_DOUBLE_EQ(ta.rows[1].mean, 35.0);
  EXPECT_EQ(ta.rows[0].cells, 2u);
  const SensitivityTable tb = sensitivity_table(out, 1, metric_exec_cycles);
  EXPECT_DOUBLE_EQ(tb.rows[0].mean, 20.0);
  EXPECT_DOUBLE_EQ(tb.rows[1].mean, 30.0);
}

TEST(SweepAggregate, ParetoFrontDominance) {
  // (speedup, energy): higher speedup and lower energy dominate.
  std::vector<ParetoPoint> pts(4);
  pts[0].speedup = 1.10; pts[0].total_energy_ratio = 0.80;  // front
  pts[1].speedup = 1.05; pts[1].total_energy_ratio = 0.70;  // front
  pts[2].speedup = 1.05; pts[2].total_energy_ratio = 0.90;  // dominated by 0
  pts[3].speedup = 1.10; pts[3].total_energy_ratio = 0.80;  // ties 0: front
  mark_pareto_front(pts);
  EXPECT_TRUE(pts[0].on_front);
  EXPECT_TRUE(pts[1].on_front);
  EXPECT_FALSE(pts[2].on_front);
  EXPECT_TRUE(pts[3].on_front);
}

TEST(SweepAggregate, ReportsContainEveryCell) {
  SweepSpec spec = two_axis_spec();
  spec.base.refs_per_core = 500;
  const SweepOutcome out = run_sweep(spec);
  const std::string json = sweep_report_json(out);
  const std::string csv = sweep_report_csv(out);
  for (const SweepCell& cell : out.cells) {
    for (const std::string& label : cell.labels) {
      EXPECT_NE(json.find(label), std::string::npos);
      EXPECT_NE(csv.find(label), std::string::npos);
    }
  }
  // One header plus one row per cell.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            out.cells.size() + 1);
}

}  // namespace
}  // namespace redhip
