// Tests for src/fault + the online invariant auditor: injector determinism,
// PT corruption semantics, auditor detection and recovery policies, the
// perturbed-trace decorator, and the bounded transient retry in run_matrix.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/tag_array.h"
#include "fault/fault.h"
#include "harness/experiment.h"
#include "harness/run.h"
#include "predict/redhip_table.h"
#include "sim/simulator.h"
#include "trace/mem_ref.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

FaultConfig enabled_config(std::uint32_t rate = 1000,
                           std::uint32_t mask = kAllFaultSites,
                           std::uint64_t seed = 7) {
  FaultConfig f;
  f.enabled = true;
  f.rate_per_mref = rate;
  f.site_mask = mask;
  f.seed = seed;
  return f;
}

// ------------------------------------------------------------ site parsing

TEST(FaultSites, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_fault_sites("pt_clear"),
            static_cast<std::uint32_t>(FaultSite::kPtBitClear));
  EXPECT_EQ(parse_fault_sites("pt_clear,pt_set,recal_drop,trace"),
            kAllFaultSites);
  EXPECT_EQ(parse_fault_sites("all"), kAllFaultSites);
  EXPECT_EQ(fault_sites_to_string(kAllFaultSites),
            "pt_clear,pt_set,recal_drop,trace");
  EXPECT_EQ(parse_fault_sites(fault_sites_to_string(
                static_cast<std::uint32_t>(FaultSite::kRecalDrop) |
                static_cast<std::uint32_t>(FaultSite::kTraceAddr))),
            static_cast<std::uint32_t>(FaultSite::kRecalDrop) |
                static_cast<std::uint32_t>(FaultSite::kTraceAddr));
  EXPECT_THROW(parse_fault_sites("pt_clear,bogus"), std::logic_error);
}

TEST(FaultConfigTest, ValidateRejectsNonsense) {
  FaultConfig f = enabled_config();
  f.site_mask = 0;
  EXPECT_THROW(f.validate(), std::logic_error);
  f = enabled_config();
  f.site_mask = 1u << 17;
  EXPECT_THROW(f.validate(), std::logic_error);
  f = enabled_config();
  f.rate_per_mref = 0;
  EXPECT_THROW(f.validate(), std::logic_error);
  f = enabled_config();
  f.rate_per_mref = 2'000'000;
  EXPECT_THROW(f.validate(), std::logic_error);
  FaultConfig off;  // disabled configs are never inspected
  off.rate_per_mref = 0;
  EXPECT_NO_THROW(off.validate());
}

TEST(HierarchyConfigTest, PtFaultSitesRequireARedhipTable) {
  HierarchyConfig c = HierarchyConfig::scaled(32, Scheme::kBase);
  c.fault = enabled_config(
      100, static_cast<std::uint32_t>(FaultSite::kPtBitClear));
  EXPECT_THROW(c.validate(), std::logic_error)
      << "PT bit flips make no sense without a prediction table";
  c.fault.site_mask = static_cast<std::uint32_t>(FaultSite::kTraceAddr);
  EXPECT_NO_THROW(c.validate()) << "trace perturbation works on any scheme";
  HierarchyConfig r = HierarchyConfig::scaled(32, Scheme::kRedhip);
  r.fault = enabled_config(
      100, static_cast<std::uint32_t>(FaultSite::kPtBitClear));
  EXPECT_NO_THROW(r.validate());
}

// --------------------------------------------------------------- injector

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultInjector a(enabled_config());
  FaultInjector b(enabled_config());
  for (int i = 0; i < 50'000; ++i) {
    const auto site = static_cast<FaultSite>(1u << (i % 4));
    ASSERT_EQ(a.fires(site), b.fires(site)) << "diverged at draw " << i;
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.pick(1 << 20), b.pick(1 << 20));
  }
}

TEST(FaultInjector, MaskedSiteNeverFires) {
  FaultInjector inj(enabled_config(
      1'000'000, static_cast<std::uint32_t>(FaultSite::kPtBitSet)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.fires(FaultSite::kPtBitClear));
    EXPECT_TRUE(inj.fires(FaultSite::kPtBitSet)) << "rate 1e6 ppm = always";
  }
}

TEST(FaultInjector, SitesUseIndependentStreams) {
  // Masking one site off must not shift another site's fault sequence.
  FaultInjector all(enabled_config(50'000, kAllFaultSites));
  FaultInjector only_set(enabled_config(
      50'000, static_cast<std::uint32_t>(FaultSite::kPtBitSet)));
  for (int i = 0; i < 20'000; ++i) {
    all.fires(FaultSite::kPtBitClear);  // advance the clear stream
    ASSERT_EQ(all.fires(FaultSite::kPtBitSet),
              only_set.fires(FaultSite::kPtBitSet))
        << "diverged at draw " << i;
  }
}

TEST(FaultInjector, PerturbFlipsOneLowAddressBitAtTheConfiguredRate) {
  FaultInjector inj(enabled_config(
      100'000, static_cast<std::uint32_t>(FaultSite::kTraceAddr)));
  const int kN = 50'000;
  int perturbed = 0;
  for (int i = 0; i < kN; ++i) {
    MemRef ref{0xABCD'0000'1234'5678ull, 0, 0, false};
    const MemRef before = ref;
    if (inj.maybe_perturb(ref)) {
      ++perturbed;
      const std::uint64_t diff = ref.addr ^ before.addr;
      EXPECT_NE(diff, 0u);
      EXPECT_EQ(diff & (diff - 1), 0u) << "exactly one bit flips";
      EXPECT_LT(diff, std::uint64_t{1} << 40)
          << "flips stay inside the workload's address span";
    } else {
      EXPECT_EQ(ref, before);
    }
  }
  EXPECT_NEAR(static_cast<double>(perturbed) / kN, 0.1, 0.01);
  EXPECT_EQ(inj.stats().trace_refs_perturbed,
            static_cast<std::uint64_t>(perturbed));
}

TEST(FaultyTraceSourceTest, WrapsDeterministicallyAndCounts) {
  const FaultConfig f = enabled_config(
      200'000, static_cast<std::uint32_t>(FaultSite::kTraceAddr), 99);
  auto make = [&] {
    return FaultyTraceSource(
        make_workload(BenchmarkId::kMcf, 0, 32, 5), f);
  };
  FaultyTraceSource a = make();
  FaultyTraceSource b = make();
  MemRef ma, mb;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.next(ma));
    ASSERT_TRUE(b.next(mb));
    ASSERT_EQ(ma, mb) << "perturbed streams must reproduce";
  }
  EXPECT_GT(a.perturbed(), 800u);
  EXPECT_EQ(a.perturbed(), b.perturbed());
}

// ------------------------------------------------- PT corruption semantics

TEST(RedhipTableFaults, CorruptBitsReportWhetherTheyFlipped) {
  RedhipConfig pc;
  pc.table_bits = 1 << 12;
  pc.recal_interval_l1_misses = 0;
  RedhipTable t(pc);
  EXPECT_FALSE(t.corrupt_clear_bit(5)) << "clearing a 0 bit is invisible";
  EXPECT_TRUE(t.corrupt_set_bit(5));
  EXPECT_TRUE(t.test_bit(5));
  EXPECT_FALSE(t.corrupt_set_bit(5)) << "setting a 1 bit is invisible";
  EXPECT_TRUE(t.corrupt_clear_bit(5));
  EXPECT_FALSE(t.test_bit(5));
  EXPECT_TRUE(t.corrupt_set_bit((1 << 12) + 5))
      << "indexes wrap through the table mask";
  EXPECT_TRUE(t.test_bit(5));
}

TEST(RedhipTableFaults, ClearBreaksTheInvariantAndRecalibrationRestoresIt) {
  // The acceptance scenario in miniature: a 1→0 flip makes a resident line
  // predicted-absent (a would-be false negative); rebuilding from the tag
  // array restores the conservative superset exactly.
  CacheGeometry g;
  g.size_bytes = 64_KiB;
  g.ways = 16;
  TagArray llc(g);
  RedhipConfig pc;
  pc.table_bits = 1 << 12;
  pc.recal_interval_l1_misses = 0;
  RedhipTable t(pc);
  const LineAddr line = 0x2b3;
  llc.fill(line);
  t.on_fill(line);
  ASSERT_EQ(t.query(line), Prediction::kPresent);

  ASSERT_TRUE(t.corrupt_clear_bit(t.index_of(line)));
  EXPECT_EQ(t.query(line), Prediction::kAbsent)
      << "the broken invariant: resident line predicted absent";
  EXPECT_TRUE(llc.contains(line));

  t.recalibrate(llc);
  EXPECT_EQ(t.query(line), Prediction::kPresent)
      << "recalibration must restore the no-false-negative property";
}

TEST(RedhipTableFaults, DroppedRecalChunksLeaveStaleBitsButStallIsPaid) {
  CacheGeometry g;
  g.size_bytes = 64_KiB;
  g.ways = 16;  // 64 sets
  TagArray llc(g);
  RedhipConfig pc;
  pc.table_bits = 1 << 12;
  pc.recal_interval_l1_misses = 0;
  pc.banks = 4;
  RedhipTable t(pc);
  t.on_fill(0x123);  // stale: never filled into the LLC
  int drops = 0;
  t.set_recal_chunk_filter([&drops](std::uint64_t, std::uint64_t) {
    ++drops;
    return true;
  });
  const Cycles stall = t.recalibrate_sets(llc, 0, 64);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(stall, 64u / 4u) << "hardware ran; only the result was lost";
  EXPECT_EQ(t.query(0x123), Prediction::kPresent)
      << "stale 1s survive a dropped chunk (conservative, energy-only)";
  t.set_recal_chunk_filter(nullptr);
  t.recalibrate_sets(llc, 0, 64);
  EXPECT_EQ(t.query(0x123), Prediction::kAbsent);
}

// --------------------------------------------- auditor, single-step driven

// Same tiny machine as sim_test, ReDHiP over the LLC.
HierarchyConfig tiny_redhip(RecoveryPolicy policy) {
  HierarchyConfig c;
  c.cores = 1;
  c.scheme = Scheme::kRedhip;
  auto mk = [](std::uint64_t size, std::uint32_t ways, Cycles td, Cycles dd,
               double te, double de) {
    LevelSpec l;
    l.geom.size_bytes = size;
    l.geom.ways = ways;
    l.energy = LevelEnergyParams{"", td, dd, te, de, 0.1};
    return l;
  };
  c.levels = {mk(1_KiB, 2, 0, 2, 0.0, 1.0), mk(4_KiB, 4, 0, 6, 0.0, 2.0),
              mk(16_KiB, 4, 9, 12, 3.0, 9.0), mk(64_KiB, 8, 13, 22, 4.0, 20.0)};
  c.redhip.table_bits = 1 << 13;
  c.redhip.recal_interval_l1_misses = 0;  // no scheduled recalibration
  c.audit.enabled = true;
  c.audit.policy = policy;
  return c;
}

MulticoreSimulator make_sim(const HierarchyConfig& c) {
  std::vector<std::unique_ptr<TraceSource>> traces;
  traces.push_back(std::make_unique<VectorTraceSource>(std::vector<MemRef>{}));
  return MulticoreSimulator(c, std::move(traces), {100});
}

MemRef ref_at(Addr addr) { return MemRef{addr, 0, 0, false}; }

// Fault the PT by hand, then observe detection + recovery on the next
// access — fully deterministic, no RNG anywhere.
TEST(InvariantAuditor, DetectsInjectedClearAndEmergencyRecalRestores) {
  auto sim = make_sim(tiny_redhip(RecoveryPolicy::kRecalibrate));
  RedhipTable* pt = sim.llc_redhip_for_test();
  ASSERT_NE(pt, nullptr);

  const Addr victim = 0x4000;  // line 0x100
  sim.access_for_test(0, ref_at(victim));
  // Evict it from L1 (2-way) and L2 (4-way) with same-set fills; the L3/LLC
  // copies and the PT bit survive.
  for (int k = 1; k <= 4; ++k) {
    sim.access_for_test(0, ref_at(victim + k * (16u << 6)));
  }
  const LineAddr line = victim >> 6;
  ASSERT_TRUE(sim.level_array_for_test(3, 0).contains(line));
  ASSERT_FALSE(sim.level_array_for_test(0, 0).contains(line));
  ASSERT_FALSE(sim.level_array_for_test(1, 0).contains(line));
  ASSERT_EQ(pt->query(line), Prediction::kPresent);

  // The single-event upset: PT bit 1→0.  The table now under-approximates
  // the LLC — exactly the state the structural argument says cannot happen.
  ASSERT_TRUE(pt->corrupt_clear_bit(pt->index_of(line)));
  ASSERT_EQ(pt->query(line), Prediction::kAbsent);

  const std::uint64_t checks_before = sim.audit_checks_for_test();
  sim.access_for_test(0, ref_at(victim));
  EXPECT_GT(sim.audit_checks_for_test(), checks_before);
  EXPECT_EQ(sim.invariant_violations_for_test(), 1u);
  EXPECT_EQ(sim.recovery_recals_for_test(), 1u);
  EXPECT_TRUE(pt->test_bit(pt->index_of(line)))
      << "emergency recalibration must restore the bit from the tag array";
  // And the invariant holds again: the same prediction is now correct.
  EXPECT_EQ(pt->query(line), Prediction::kPresent);
}

TEST(InvariantAuditor, CountOnlyDetectsButDoesNotRecover) {
  auto sim = make_sim(tiny_redhip(RecoveryPolicy::kCountOnly));
  RedhipTable* pt = sim.llc_redhip_for_test();
  const Addr victim = 0x4000;
  sim.access_for_test(0, ref_at(victim));
  for (int k = 1; k <= 4; ++k) {
    sim.access_for_test(0, ref_at(victim + k * (16u << 6)));
  }
  const LineAddr line = victim >> 6;
  ASSERT_TRUE(pt->corrupt_clear_bit(pt->index_of(line)));

  sim.access_for_test(0, ref_at(victim));
  EXPECT_EQ(sim.invariant_violations_for_test(), 1u);
  EXPECT_EQ(sim.recovery_recals_for_test(), 0u);
  EXPECT_FALSE(pt->test_bit(pt->index_of(line)))
      << "count-only must leave the corrupted bit in place";
}

TEST(InvariantAuditor, AbortRetryThrowsTransientForTransientFaults) {
  HierarchyConfig c = tiny_redhip(RecoveryPolicy::kAbortRetry);
  c.fault = enabled_config(
      1, static_cast<std::uint32_t>(FaultSite::kPtBitClear));
  c.fault.transient = true;
  auto sim = make_sim(c);
  RedhipTable* pt = sim.llc_redhip_for_test();
  const Addr victim = 0x4000;
  sim.access_for_test(0, ref_at(victim));
  for (int k = 1; k <= 4; ++k) {
    sim.access_for_test(0, ref_at(victim + k * (16u << 6)));
  }
  ASSERT_TRUE(pt->corrupt_clear_bit(pt->index_of(victim >> 6)));
  EXPECT_THROW(sim.access_for_test(0, ref_at(victim)), TransientFaultError);
}

// --------------------------------------------------- end-to-end via run()

RunSpec faulted_spec(RecoveryPolicy policy, std::uint32_t rate,
                     std::uint32_t sites, std::uint64_t fault_seed = 7) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 20'000;
  spec.tweak = [=](HierarchyConfig& c) {
    c.audit.enabled = true;
    c.audit.policy = policy;
    c.fault.enabled = true;
    c.fault.rate_per_mref = rate;
    c.fault.site_mask = sites;
    c.fault.seed = fault_seed;
  };
  return spec;
}

TEST(FaultEndToEnd, RecalibratePolicyDetectsAndRecovers) {
  const SimResult r = run_spec(faulted_spec(
      RecoveryPolicy::kRecalibrate, 20'000,
      static_cast<std::uint32_t>(FaultSite::kPtBitClear)));
  EXPECT_GT(r.fault.pt_bits_cleared, 0u);
  EXPECT_GT(r.fault.audit_checks, 0u);
  EXPECT_GT(r.fault.invariant_violations, 0u)
      << "at this rate some cleared bit must cover a resident line";
  EXPECT_EQ(r.fault.recovery_recalibrations, r.fault.invariant_violations)
      << "every violation triggers one emergency recalibration";
  EXPECT_GT(r.fault.recovery_stall_cycles, 0u);
}

TEST(FaultEndToEnd, CountOnlyPolicyObservesMoreViolations) {
  const SimResult r = run_spec(faulted_spec(
      RecoveryPolicy::kCountOnly, 20'000,
      static_cast<std::uint32_t>(FaultSite::kPtBitClear)));
  EXPECT_GT(r.fault.invariant_violations, 0u);
  EXPECT_EQ(r.fault.recovery_recalibrations, 0u);
  EXPECT_EQ(r.fault.recovery_stall_cycles, 0u);
  const SimResult rec = run_spec(faulted_spec(
      RecoveryPolicy::kRecalibrate, 20'000,
      static_cast<std::uint32_t>(FaultSite::kPtBitClear)));
  EXPECT_GE(r.fault.invariant_violations, rec.fault.invariant_violations)
      << "recovery scrubs corruption; counting alone lets it keep biting";
}

TEST(FaultEndToEnd, SetFaultsAndDroppedChunksCostEnergyNotCorrectness) {
  RunSpec spec = faulted_spec(
      RecoveryPolicy::kCountOnly, 50'000,
      static_cast<std::uint32_t>(FaultSite::kPtBitSet) |
          static_cast<std::uint32_t>(FaultSite::kRecalDrop));
  const SimResult r = run_spec(spec);
  EXPECT_GT(r.fault.pt_bits_set, 0u);
  EXPECT_GT(r.fault.audit_checks, 0u);
  EXPECT_EQ(r.fault.invariant_violations, 0u)
      << "0→1 flips and stale 1s are conservative: never a false negative";
}

TEST(FaultEndToEnd, TracePerturbationIsCountedAndDeterministic) {
  const std::uint32_t site =
      static_cast<std::uint32_t>(FaultSite::kTraceAddr);
  const SimResult a =
      run_spec(faulted_spec(RecoveryPolicy::kCountOnly, 10'000, site));
  const SimResult b =
      run_spec(faulted_spec(RecoveryPolicy::kCountOnly, 10'000, site));
  EXPECT_GT(a.fault.trace_refs_perturbed, 0u);
  EXPECT_EQ(a.fault.trace_refs_perturbed, b.fault.trace_refs_perturbed);
  EXPECT_EQ(a.exec_cycles, b.exec_cycles) << "faulted runs reproduce exactly";
}

TEST(FaultEndToEnd, AuditAloneIsZeroCost) {
  // The auditor only reads state the simulator already has; with no faults
  // injected every observable except its own counters is bit-identical.
  RunSpec plain;
  plain.bench = BenchmarkId::kMcf;
  plain.scheme = Scheme::kRedhip;
  plain.scale = 32;
  plain.refs_per_core = 20'000;
  RunSpec audited = plain;
  audited.tweak = [](HierarchyConfig& c) {
    c.audit.enabled = true;
    c.audit.policy = RecoveryPolicy::kRecalibrate;
  };
  const SimResult p = run_spec(plain);
  const SimResult a = run_spec(audited);
  EXPECT_EQ(p.exec_cycles, a.exec_cycles);
  EXPECT_DOUBLE_EQ(p.energy.total_j(), a.energy.total_j());
  EXPECT_EQ(p.predictor.predicted_absent, a.predictor.predicted_absent);
  EXPECT_EQ(p.fault.audit_checks, 0u);
  EXPECT_GT(a.fault.audit_checks, 0u);
  EXPECT_EQ(a.fault.invariant_violations, 0u);
}

// --------------------------------------------------- bounded retry plumbing

// A fault seed (found by sweep, stable by construction: every layer is
// deterministic) whose rate-400 pt_clear stream causes a violation on the
// first attempt but not under run_matrix's attempt-1 reseed (+0x9e3779b9).
constexpr std::uint64_t kRetrySeed = 5;

TEST(TransientRetry, RunSpecSurfacesTheAbort) {
  EXPECT_THROW(run_spec(faulted_spec(
                   RecoveryPolicy::kAbortRetry, 20'000,
                   static_cast<std::uint32_t>(FaultSite::kPtBitClear))),
               TransientFaultError);
}

TEST(TransientRetry, DeterministicFaultsAreNotRetryable) {
  RunSpec spec = faulted_spec(
      RecoveryPolicy::kAbortRetry, 20'000,
      static_cast<std::uint32_t>(FaultSite::kPtBitClear));
  auto base = spec.tweak;
  spec.tweak = [base](HierarchyConfig& c) {
    base(c);
    c.fault.transient = false;
  };
  try {
    run_spec(spec);
    FAIL() << "a violation at this rate is certain";
  } catch (const TransientFaultError&) {
    FAIL() << "non-transient faults must not be classed retryable";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not retryable"), std::string::npos);
  }
}

TEST(TransientRetry, MatrixRetriesWithAReseededFaultStream) {
  // A rate low enough that the violation depends on the fault seed: the
  // first attempt aborts, a reseeded attempt completes.  The constants are
  // pinned by the determinism of the whole stack; see the assertions.
  ExperimentOptions o;
  o.scale = 32;
  o.refs_per_core = 20'000;
  o.benches = {BenchmarkId::kMcf};
  o.jobs = 1;
  SchemeColumn col;
  col.label = "faulted";
  col.scheme = Scheme::kRedhip;
  col.tweak = [](HierarchyConfig& c) {
    c.audit.enabled = true;
    c.audit.policy = RecoveryPolicy::kAbortRetry;
    c.fault.enabled = true;
    c.fault.rate_per_mref = 400;
    c.fault.site_mask = static_cast<std::uint32_t>(FaultSite::kPtBitClear);
    c.fault.seed = kRetrySeed;
  };
  // Pin the premise: attempt 0's seed aborts, attempt 1's reseed survives.
  EXPECT_THROW(
      run_spec(faulted_spec(RecoveryPolicy::kAbortRetry, 400,
                            static_cast<std::uint32_t>(FaultSite::kPtBitClear),
                            kRetrySeed)),
      TransientFaultError);
  const SimResult reseeded = run_spec(faulted_spec(
      RecoveryPolicy::kAbortRetry, 400,
      static_cast<std::uint32_t>(FaultSite::kPtBitClear),
      kRetrySeed + 0x9e3779b9ull));
  EXPECT_EQ(reseeded.fault.invariant_violations, 0u);

  const auto results = run_matrix(o, {col});
  EXPECT_EQ(results[0][0].fault.invariant_violations, 0u)
      << "the matrix must have completed on the retried attempt";
  EXPECT_EQ(results[0][0].exec_cycles, reseeded.exec_cycles);
}

}  // namespace
}  // namespace redhip
