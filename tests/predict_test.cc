// Tests for src/predict: the ReDHiP table (indexing, conservatism,
// recalibration exactness, stall model), the counting Bloom filter baseline,
// and the Oracle.
#include <gtest/gtest.h>

#include <set>

#include "cache/tag_array.h"
#include "common/bitops.h"
#include "common/rng.h"
#include "predict/counting_bloom.h"
#include "predict/oracle.h"
#include "predict/partial_tag.h"
#include "predict/redhip_table.h"

namespace redhip {
namespace {

RedhipConfig small_pt(std::uint64_t bits = 1 << 12,
                      std::uint64_t interval = 0) {
  RedhipConfig c;
  c.table_bits = bits;
  c.recal_interval_l1_misses = interval;
  c.banks = 4;
  return c;
}

CacheGeometry llc_geom(std::uint64_t size = 64_KiB, std::uint32_t ways = 16) {
  CacheGeometry g;
  g.size_bytes = size;
  g.ways = ways;
  return g;
}

TEST(RedhipTable, StartsEmptyAndPredictsAbsent) {
  RedhipTable t(small_pt());
  EXPECT_EQ(t.bits_set(), 0u);
  EXPECT_EQ(t.query(123), Prediction::kAbsent);
  EXPECT_EQ(t.events().lookups, 1u);
}

TEST(RedhipTable, FillSetsExactlyOneBit) {
  RedhipTable t(small_pt());
  t.on_fill(0x5a5);
  EXPECT_EQ(t.bits_set(), 1u);
  EXPECT_EQ(t.query(0x5a5), Prediction::kPresent);
  EXPECT_TRUE(t.test_bit(0x5a5));
}

TEST(RedhipTable, BitsHashUsesLowLineBits) {
  RedhipTable t(small_pt(1 << 12));
  // Index = low 12 bits of the line address.
  EXPECT_EQ(t.index_of(0xABCDE), 0xABCDEu & 0xFFF);
  t.on_fill(0x1000);  // aliases with 0x0000
  EXPECT_EQ(t.query(0x0000), Prediction::kPresent)
      << "aliased lines share a bit (the source of false positives)";
}

TEST(RedhipTable, EvictDoesNotClear) {
  RedhipTable t(small_pt());
  t.on_fill(7);
  t.on_evict(7);
  EXPECT_EQ(t.query(7), Prediction::kPresent)
      << "1-bit entries cannot express removal; staleness is by design";
}

TEST(RedhipTable, RecalibrationMatchesTagArrayExactly) {
  // DESIGN.md invariant 3: after recalibration a bit is set iff some
  // resident line hashes to it.
  const CacheGeometry g = llc_geom();  // 64 sets x 16 ways = 1024 lines
  TagArray llc(g);
  RedhipTable t(small_pt(1 << 12));
  Xoshiro256 rng(42);
  std::set<LineAddr> resident;
  for (int i = 0; i < 5000; ++i) {
    const LineAddr line = rng.below(1 << 14);
    if (llc.contains(line)) continue;
    auto r = llc.fill(line);
    resident.insert(line);
    if (r.evicted) resident.erase(r.victim);
  }
  t.recalibrate(llc);
  std::set<std::uint64_t> expected_bits;
  for (LineAddr l : resident) expected_bits.insert(t.index_of(l));
  EXPECT_EQ(t.bits_set(), expected_bits.size());
  for (std::uint64_t b : expected_bits) EXPECT_TRUE(t.test_bit(b));
  // And every resident line now predicts present.
  for (LineAddr l : resident) {
    EXPECT_EQ(t.query(l), Prediction::kPresent);
  }
}

TEST(RedhipTable, RecalibrationClearsStaleBits) {
  TagArray llc(llc_geom());
  RedhipTable t(small_pt());
  t.on_fill(999);  // never actually in the LLC
  EXPECT_EQ(t.query(999), Prediction::kPresent);
  t.recalibrate(llc);  // empty LLC
  EXPECT_EQ(t.query(999), Prediction::kAbsent);
  EXPECT_EQ(t.bits_set(), 0u);
}

TEST(RedhipTable, NoFalseNegativesUnderChurnWithRecalibration) {
  // DESIGN.md invariant 1, the core guarantee: at any moment, every
  // resident line predicts kPresent.
  TagArray llc(llc_geom(16_KiB, 4));  // 64 sets, 256 lines
  RedhipTable t(small_pt(1 << 10));
  Xoshiro256 rng(7);
  std::set<LineAddr> resident;
  for (int step = 0; step < 30'000; ++step) {
    const LineAddr line = rng.below(1 << 12);
    if (!llc.contains(line)) {
      auto r = llc.fill(line);
      t.on_fill(line);
      resident.insert(line);
      if (r.evicted) {
        t.on_evict(r.victim);
        resident.erase(r.victim);
      }
    }
    if (step % 1000 == 999) t.recalibrate(llc);
    if (step % 17 == 0) {
      for (LineAddr l : resident) {
        ASSERT_EQ(t.query(l), Prediction::kPresent)
            << "false negative for resident line " << l << " at step " << step;
      }
    }
  }
}

TEST(RedhipTable, SetContainmentProperty) {
  // DESIGN.md invariant 4 (paper Fig. 3): with p > k, two lines that
  // collide in the PT must also collide in the LLC set index.
  TagArray llc(llc_geom(64_KiB, 16));  // k = 6 set bits
  RedhipTable t(small_pt(1 << 12));    // p = 12
  Xoshiro256 rng(12);
  for (int i = 0; i < 50'000; ++i) {
    const LineAddr a = rng.below(1 << 20);
    const LineAddr b = rng.below(1 << 20);
    if (t.index_of(a) == t.index_of(b)) {
      ASSERT_EQ(llc.set_of(a), llc.set_of(b));
    }
  }
}

TEST(RedhipTable, StallCyclesMatchPaperFormula) {
  // Paper: 64Ki sets, 16 tags/set/cycle, 4 banks in parallel -> 16Ki cycles.
  CacheGeometry g;
  g.size_bytes = 64_MiB;
  g.ways = 16;
  TagArray llc(g);
  RedhipConfig c = small_pt(std::uint64_t{1} << 22);
  c.banks = 4;
  RedhipTable t(c);
  EXPECT_EQ(t.recalibrate(llc), 16u * 1024u);
}

TEST(RedhipTable, RecalibrationIntervalCounting) {
  TagArray llc(llc_geom());
  RedhipConfig c = small_pt(1 << 12, /*interval=*/10);
  RedhipTable t(c);
  Cycles total_stall = 0;
  for (int i = 0; i < 35; ++i) {
    total_stall += t.note_l1_miss_and_maybe_recalibrate(llc);
  }
  EXPECT_EQ(t.events().recalibrations, 3u);
  EXPECT_EQ(total_stall, 3u * (llc.sets() / c.banks));
}

TEST(RedhipTable, IntervalZeroNeverRecalibrates) {
  TagArray llc(llc_geom());
  RedhipTable t(small_pt(1 << 12, 0));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.note_l1_miss_and_maybe_recalibrate(llc), 0u);
  }
  EXPECT_EQ(t.events().recalibrations, 0u);
}

TEST(RedhipTable, IntervalOneRecalibratesEveryMiss) {
  TagArray llc(llc_geom());
  RedhipTable t(small_pt(1 << 12, 1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_GT(t.note_l1_miss_and_maybe_recalibrate(llc), 0u);
  }
  EXPECT_EQ(t.events().recalibrations, 5u);
}

TEST(RedhipTable, PerfectRecalEqualsFullRebuildAtEveryStep) {
  // interval == 1 with an attached tag array is maintained incrementally
  // (O(ways) per eviction); its contents must equal a from-scratch rebuild
  // at every point in time.
  TagArray llc(llc_geom(16_KiB, 4));
  RedhipConfig c = small_pt(1 << 10, /*interval=*/1);
  RedhipTable t(c);
  t.attach_covered(&llc);
  RedhipTable ref(small_pt(1 << 10, 0));
  Xoshiro256 rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const LineAddr line = rng.below(1 << 12);
    if (!llc.contains(line)) {
      auto r = llc.fill(line);
      if (r.evicted) t.on_evict(r.victim);
      t.on_fill(line);
      EXPECT_EQ(t.note_l1_miss_and_maybe_recalibrate(llc), 1u);
    }
    if (i % 500 == 0) {
      ref.recalibrate(llc);
      ASSERT_EQ(t.bits_set(), ref.bits_set()) << "step " << i;
      for (std::uint64_t b = 0; b < (1u << 10); ++b) {
        ASSERT_EQ(t.test_bit(b), ref.test_bit(b)) << "bit " << b;
      }
    }
  }
}

TEST(RedhipTable, RecalEventsAccounting) {
  TagArray llc(llc_geom());  // 64 sets
  RedhipConfig c = small_pt(1 << 12);
  RedhipTable t(c);
  t.recalibrate(llc);
  EXPECT_EQ(t.events().recal_sets_read, llc.sets());
  EXPECT_EQ(t.events().recal_words_written, (1u << 12) / 64);
}

TEST(RedhipTable, RejectsBadConfig) {
  EXPECT_THROW(RedhipTable(small_pt(100)), std::logic_error);   // not pow2
  EXPECT_THROW(RedhipTable(small_pt(32)), std::logic_error);    // < one line
  RedhipConfig c = small_pt();
  c.banks = 3;
  EXPECT_THROW(RedhipTable{c}, std::logic_error);
}

// ------------------------------------------------------------------- CBF

CbfConfig small_cbf(std::uint32_t index_bits = 10,
                    std::uint32_t counter_bits = 3) {
  CbfConfig c;
  c.index_bits = index_bits;
  c.counter_bits = counter_bits;
  return c;
}

TEST(Cbf, AreaBudgetPicksLargestFittingTable) {
  // 512KB at 3-bit counters: 2^20 x 3 = 384KB fits, 2^21 x 3 = 768KB does
  // not -> 20 index bits (the paper's evaluation budget).
  const CbfConfig c = CbfConfig::for_area_budget(512_KiB);
  EXPECT_EQ(c.index_bits, 20u);
  EXPECT_EQ(c.counter_bits, 3u);
  EXPECT_LE(c.storage_bits() / 8, 512_KiB);
}

TEST(Cbf, FillThenQueryThenEvict) {
  CountingBloomFilter f(small_cbf());
  EXPECT_EQ(f.query(5), Prediction::kAbsent);
  f.on_fill(5);
  EXPECT_EQ(f.query(5), Prediction::kPresent);
  f.on_evict(5);
  EXPECT_EQ(f.query(5), Prediction::kAbsent)
      << "CBF counters track evictions (unlike the ReDHiP bit map)";
}

TEST(Cbf, CountsAliasesIndependently) {
  CountingBloomFilter f(small_cbf());
  // Two different lines with the same xor-fold index.
  const LineAddr a = 1;
  const LineAddr b = 1 | (1ull << 10) | (1ull << 20);  // folds need checking
  const LineAddr target = f.index_of(a) == f.index_of(b) ? b : a;
  f.on_fill(a);
  f.on_fill(target);
  f.on_evict(a);
  if (f.index_of(a) == f.index_of(b)) {
    EXPECT_EQ(f.query(b), Prediction::kPresent);
  }
}

TEST(Cbf, SaturationDisablesEntryForever) {
  CountingBloomFilter f(small_cbf(4, 2));  // max count 3
  const LineAddr l = 9;
  const std::uint64_t idx = f.index_of(l);
  for (int i = 0; i < 3; ++i) f.on_fill(l);
  EXPECT_FALSE(f.disabled(idx));
  f.on_fill(l);  // 4th fill overflows the 2-bit counter
  EXPECT_TRUE(f.disabled(idx));
  // Decrements are now ignored; the entry sticks at "present".
  for (int i = 0; i < 10; ++i) f.on_evict(l);
  EXPECT_EQ(f.query(l), Prediction::kPresent);
  EXPECT_EQ(f.disabled_count(), 1u);
}

TEST(Cbf, NoFalseNegativesUnderChurn) {
  // The conservatism guarantee holds for the CBF too, including through
  // saturation.
  CountingBloomFilter f(small_cbf(8, 3));
  TagArray llc(llc_geom(16_KiB, 4));
  Xoshiro256 rng(3);
  std::set<LineAddr> resident;
  for (int step = 0; step < 30'000; ++step) {
    const LineAddr line = rng.below(1 << 12);
    if (llc.contains(line)) continue;
    auto r = llc.fill(line);
    f.on_fill(line);
    resident.insert(line);
    if (r.evicted) {
      f.on_evict(r.victim);
      resident.erase(r.victim);
    }
    if (step % 29 == 0) {
      for (LineAddr l : resident) {
        ASSERT_EQ(f.query(l), Prediction::kPresent);
      }
    }
  }
}

TEST(Cbf, XorHashSpreadsHighBits) {
  CountingBloomFilter f(small_cbf(10));
  // bits-hash would alias these (same low 10 bits); xor-hash must not alias
  // all of them.
  std::set<std::uint64_t> indexes;
  for (std::uint64_t hi = 0; hi < 16; ++hi) {
    indexes.insert(f.index_of((hi << 40) | 0x2A));
  }
  EXPECT_GT(indexes.size(), 1u);
}

TEST(Cbf, RejectsBadConfig) {
  EXPECT_THROW(CountingBloomFilter(small_cbf(0)), std::logic_error);
  EXPECT_THROW(CountingBloomFilter(small_cbf(10, 0)), std::logic_error);
  EXPECT_THROW(CountingBloomFilter(small_cbf(10, 9)), std::logic_error);
}

// ----------------------------------------------------------- PartialTag

PartialTagPredictor small_ptag(std::uint32_t partial_bits = 8,
                               std::uint64_t sets = 64,
                               std::uint32_t ways = 16) {
  PartialTagConfig c;
  c.partial_bits = partial_bits;
  return PartialTagPredictor(c, sets, ways, log2_exact(sets));
}

TEST(PartialTag, FillQueryEvict) {
  auto p = small_ptag();
  EXPECT_EQ(p.query(100), Prediction::kAbsent);
  p.on_fill(100);
  EXPECT_EQ(p.query(100), Prediction::kPresent);
  p.on_evict(100);
  EXPECT_EQ(p.query(100), Prediction::kAbsent);
  EXPECT_EQ(p.occupancy(), 0u);
}

TEST(PartialTag, PartialCollisionGivesFalsePositiveOnly) {
  auto p = small_ptag(8, 64, 16);
  // Same set (low 6 bits), same partial tag (bits 6..13), different full
  // tag (bit 14+): a false positive by construction.
  const LineAddr a = 0x5;
  const LineAddr b = a | (1ull << 20);
  p.on_fill(a);
  EXPECT_EQ(p.query(b), Prediction::kPresent) << "collision is conservative";
  // Different partial tag in the same set: provable miss.
  EXPECT_EQ(p.query(a | (1ull << 7)), Prediction::kAbsent);
}

TEST(PartialTag, MultisetSemanticsUnderSharedPartials) {
  auto p = small_ptag();
  const LineAddr a = 0x9;
  const LineAddr b = a | (1ull << 20);  // same set, same partial tag
  p.on_fill(a);
  p.on_fill(b);
  p.on_evict(a);
  EXPECT_EQ(p.query(b), Prediction::kPresent)
      << "one of two shared partials evicted; the other must survive";
  p.on_evict(b);
  EXPECT_EQ(p.query(b), Prediction::kAbsent);
}

TEST(PartialTag, NoFalseNegativesUnderChurn) {
  TagArray llc(llc_geom(16_KiB, 4));  // 64 sets, 4 ways
  PartialTagConfig c;
  PartialTagPredictor p(c, llc.sets(), llc.ways(),
                        llc.geometry().set_bits());
  Xoshiro256 rng(77);
  std::set<LineAddr> resident;
  for (int step = 0; step < 30'000; ++step) {
    const LineAddr line = rng.below(1 << 12);
    if (llc.contains(line)) continue;
    auto r = llc.fill(line);
    if (r.evicted) {
      p.on_evict(r.victim);
      resident.erase(r.victim);
    }
    p.on_fill(line);
    resident.insert(line);
    if (step % 37 == 0) {
      for (LineAddr l : resident) {
        ASSERT_EQ(p.query(l), Prediction::kPresent);
      }
    }
  }
  EXPECT_EQ(p.occupancy(), resident.size());
}

TEST(PartialTag, StaysAccurateWithoutRecalibration) {
  // The structural advantage over ReDHiP: accuracy does not decay.  After
  // heavy churn, a probe for a long-gone line is still (usually) absent.
  TagArray llc(llc_geom(16_KiB, 4));
  PartialTagConfig c;
  PartialTagPredictor p(c, llc.sets(), llc.ways(), llc.geometry().set_bits());
  Xoshiro256 rng(78);
  for (int i = 0; i < 50'000; ++i) {
    const LineAddr line = rng.below(1 << 13);
    if (llc.contains(line)) continue;
    auto r = llc.fill(line);
    if (r.evicted) p.on_evict(r.victim);
    p.on_fill(line);
  }
  int agree = 0, probes = 0;
  for (LineAddr l = 0; l < (1 << 13); l += 7) {
    ++probes;
    const bool predicted = p.query(l) == Prediction::kPresent;
    const bool actual = llc.contains(l);
    if (actual) {
      ASSERT_TRUE(predicted) << "false negative";
    }
    if (predicted == actual) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / probes, 0.9)
      << "8-bit partials should be within ~6% false positives";
}

TEST(PartialTag, StorageAccounting) {
  auto p = small_ptag(8, 64, 16);
  EXPECT_EQ(p.storage_bits(), 64u * 16u * 9u);
}

TEST(PartialTag, RejectsBadConfig) {
  PartialTagConfig c;
  c.partial_bits = 0;
  EXPECT_THROW(PartialTagPredictor(c, 64, 16, 6), std::logic_error);
  c.partial_bits = 8;
  EXPECT_THROW(PartialTagPredictor(c, 63, 16, 6), std::logic_error);
}

// ---------------------------------------------------------------- Oracle

TEST(Oracle, MirrorsTagArrayExactly) {
  TagArray llc(llc_geom());
  OraclePredictor o(&llc);
  EXPECT_EQ(o.query(4), Prediction::kAbsent);
  llc.fill(4);
  EXPECT_EQ(o.query(4), Prediction::kPresent);
  llc.invalidate(4);
  EXPECT_EQ(o.query(4), Prediction::kAbsent);
  EXPECT_EQ(o.lookup_delay(), 0u);
}

TEST(Oracle, NeverWrongUnderChurn) {
  TagArray llc(llc_geom(8_KiB, 4));
  OraclePredictor o(&llc);
  Xoshiro256 rng(21);
  for (int i = 0; i < 20'000; ++i) {
    const LineAddr line = rng.below(1 << 10);
    const bool resident = llc.contains(line);
    ASSERT_EQ(o.query(line) == Prediction::kPresent, resident);
    if (!resident && rng.chance_ppm(500'000)) llc.fill(line);
    if (resident && rng.chance_ppm(200'000)) llc.invalidate(line);
  }
}

}  // namespace
}  // namespace redhip
