// SoA tag-array equivalence: the partial-tag-lane layout must be
// observably identical to a plain per-way model (tagarray_fuzz.h), the
// derived lanes must survive both restore paths (parallel-engine set
// rewind, checkpoint restore), and a randomized sample of full simulations
// must stay bit-identical between the fast and reference engines across
// schemes, inclusion policies, and every specialized-loop feature mask.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/run.h"
#include "sim/stats.h"
#include "tagarray_fuzz.h"

namespace redhip {
namespace {

TEST(SoaTagArray, RandomizedEquivalenceVsShadowModel) {
  std::uint64_t seed = 0xF00D;
  for (const CacheGeometry& g : fuzz::fuzz_geometries()) {
    SCOPED_TRACE("ways=" + std::to_string(g.ways));
    fuzz::fuzz_against_shadow(g, seed++, 20'000);
  }
}

// Build two arrays that should be in identical states and require they
// behave identically under a shared random op stream.
void expect_arrays_equivalent(TagArray& a, TagArray& b,
                              const CacheGeometry& g, std::uint64_t seed) {
  ASSERT_EQ(a.valid_count(), b.valid_count());
  for (std::uint64_t s = 0; s < g.sets(); ++s) {
    std::vector<LineAddr> la, lb;
    a.visit_valid_in_set(s, [&](LineAddr l) { la.push_back(l); });
    b.visit_valid_in_set(s, [&](LineAddr l) { lb.push_back(l); });
    ASSERT_EQ(la, lb) << "set " << s;
    for (LineAddr l : la) ASSERT_EQ(a.is_dirty(l), b.is_dirty(l));
  }
  // Behavioural check: fills exercise the lane-derived invalid-way choice
  // and the replacement state, which the state walk above cannot see.
  Xoshiro256 rng(seed);
  for (int i = 0; i < 2'000; ++i) {
    const LineAddr line = fuzz::random_line(rng, g);
    TagArray::FillResult fa, fb;
    const bool ra = a.fill_if_absent(line, false, (i & 1) != 0, &fa);
    const bool rb = b.fill_if_absent(line, false, (i & 1) != 0, &fb);
    ASSERT_EQ(ra, rb) << "fill " << i;
    if (ra) {
      ASSERT_EQ(fa.way, fb.way) << "fill " << i;
      ASSERT_EQ(fa.evicted, fb.evicted) << "fill " << i;
      ASSERT_EQ(fa.victim, fb.victim) << "fill " << i;
    }
    const auto la = a.lookup(line);
    const auto lb = b.lookup(line);
    ASSERT_EQ(la.hit, lb.hit);
    ASSERT_EQ(la.way, lb.way);
  }
}

// Churn an array into an arbitrary state: fills, hits, dirties,
// invalidations.
void churn(TagArray& arr, const CacheGeometry& g, std::uint64_t seed,
           int ops) {
  Xoshiro256 rng(seed);
  for (int i = 0; i < ops; ++i) {
    const LineAddr line = fuzz::random_line(rng, g);
    switch (rng.below(4)) {
      case 0:
      case 1: {
        TagArray::FillResult fr;
        arr.fill_if_absent(line, rng.below(2) != 0, rng.below(2) != 0, &fr);
        break;
      }
      case 2:
        arr.lookup(line, rng.below(2) != 0);
        break;
      case 3:
        arr.invalidate(line);
        break;
    }
  }
}

TEST(SoaTagArray, CheckpointRoundTripRebuildsLanes) {
  CacheGeometry g;
  g.ways = 16;
  g.size_bytes = 64 * 16 * std::uint64_t{64};
  TagArray arr(g);
  churn(arr, g, 0xC0FFEE, 30'000);

  // Round-trip the packed entries into a fresh array; the partial-tag
  // lanes are not serialized, so equivalence proves the rebuild.
  TagArray restored(g);
  ASSERT_TRUE(restored.ckpt_restore_entries(arr.ckpt_entries()));
  expect_arrays_equivalent(arr, restored, g, 0xBEEF);

  // Size mismatch must be rejected, not truncated.
  CacheGeometry small = g;
  small.size_bytes /= 2;
  TagArray other(small);
  EXPECT_FALSE(other.ckpt_restore_entries(arr.ckpt_entries()));
}

TEST(SoaTagArray, SaveRestoreSetRewindsLanes) {
  CacheGeometry g;
  g.ways = 8;
  g.size_bytes = 64 * 8 * std::uint64_t{64};
  TagArray arr(g);
  ASSERT_TRUE(arr.state_is_self_contained());
  churn(arr, g, 0xAB, 20'000);

  // Reference copy of the whole array (checkpoint path, verified above).
  TagArray before(g);
  ASSERT_TRUE(before.ckpt_restore_entries(arr.ckpt_entries()));

  for (std::uint64_t set = 0; set < g.sets(); set += 7) {
    std::vector<std::uint64_t> saved(arr.ways());
    arr.save_set(set, saved.data());
    // Residency-preserving mutations only (the documented bracket): hit
    // promotions and dirty marks on the set's resident lines.
    std::vector<LineAddr> lines;
    arr.visit_valid_in_set(set, [&](LineAddr l) { lines.push_back(l); });
    for (LineAddr l : lines) {
      arr.lookup(l, /*is_write=*/true);
      arr.mark_dirty(l);
    }
    arr.restore_set(set, saved.data());
  }
  expect_arrays_equivalent(arr, before, g, 0x5EED);
}

// Randomized full-simulation equivalence: a deterministic sample of
// (bench, scheme, inclusion, feature-mask) combinations, each run through
// the fast engine (SoA lanes, batched lookups, software pipeline) and the
// reference engine (scalar oracle), requiring bit-identical statistics.
TEST(SoaTagArray, RandomizedEngineEquivalence) {
  const BenchmarkId benches[] = {BenchmarkId::kMcf,  BenchmarkId::kBlas,
                                 BenchmarkId::kBwaves, BenchmarkId::kAstar,
                                 BenchmarkId::kMix,  BenchmarkId::kPmf};
  const Scheme schemes[] = {Scheme::kBase,   Scheme::kPhased,
                            Scheme::kCbf,    Scheme::kRedhip,
                            Scheme::kOracle, Scheme::kPartialTag};
  const InclusionPolicy inclusions[] = {InclusionPolicy::kInclusive,
                                        InclusionPolicy::kExclusive,
                                        InclusionPolicy::kHybrid};
  Xoshiro256 rng(20260809);
  for (int i = 0; i < 10; ++i) {
    RunSpec spec;
    spec.bench = benches[rng.below(std::size(benches))];
    spec.scheme = schemes[rng.below(std::size(schemes))];
    spec.inclusion = inclusions[rng.below(std::size(inclusions))];
    spec.scale = 8;
    spec.refs_per_core = 10'000;
    spec.seed = rng.next();
    const std::uint64_t mask = rng.below(8);
    // Repair the sample into a legal combination (src/sim/config.cc):
    // the exclusive hierarchy supports Base/ReDHiP/Oracle without
    // auto-disable or the fault auditor, prefetching is inclusive-only,
    // and PT fault sites require ReDHiP on a non-exclusive hierarchy.
    const bool exclusive = spec.inclusion == InclusionPolicy::kExclusive;
    if (exclusive && spec.scheme != Scheme::kBase &&
        spec.scheme != Scheme::kRedhip && spec.scheme != Scheme::kOracle) {
      spec.scheme = Scheme::kRedhip;
    }
    spec.prefetch =
        (mask & 2) != 0 && spec.inclusion == InclusionPolicy::kInclusive;
    const bool fault =
        (mask & 1) != 0 && spec.scheme == Scheme::kRedhip && !exclusive;
    const bool auto_disable = (mask & 4) != 0 && !exclusive;
    spec.tweak = [fault, auto_disable](HierarchyConfig& config) {
      if (fault) {
        config.fault.enabled = true;
        config.fault.rate_per_mref = 4'000;
        config.audit.enabled = true;
      }
      if (auto_disable) {
        config.auto_disable.enabled = true;
        config.auto_disable.epoch_refs = 2'500;
      }
    };
    const std::string what =
        "combo " + std::to_string(i) + ": " + to_string(spec.bench) + "/" +
        to_string(spec.scheme) + "/" + to_string(spec.inclusion) + "/mask" +
        std::to_string(mask);
    spec.engine = SimEngine::kFast;
    const SimResult fast = run_spec(spec);
    spec.engine = SimEngine::kReference;
    const SimResult ref = run_spec(spec);
    EXPECT_TRUE(stats_identical(fast, ref)) << what;
    EXPECT_EQ(fast.exec_cycles, ref.exec_cycles) << what;
    EXPECT_GT(fast.total_refs, 0u) << what;
  }
}

}  // namespace
}  // namespace redhip
