// Property tests for the observability layer: over randomly drawn
// workloads, epoch sizes and feature combinations, the per-epoch confusion
// counts and the recalibration events must satisfy the paper's structural
// invariants —
//   * the false-negative count of every epoch is zero (the PT never clears
//     a bit outside recalibration, so a bypass is always safe),
//   * recalibration only wipes stale bits: occupancy_after <= before at
//     every recal_start/recal_end bracket (the FP mass is non-increasing
//     across each recalibration boundary),
//   * epochs tile the run exactly (refs sum to total_refs, boundaries are
//     cumulative), and
//   * the fast engine's trace equals the reference engine's trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "harness/run.h"
#include "obs/jsonl_reader.h"
#include "sim/stats.h"

namespace redhip {
namespace {

struct DrawnCase {
  BenchmarkId bench;
  std::uint64_t refs_per_core;
  std::uint64_t epoch_refs;
  std::uint64_t seed;
  bool prefetch;
  bool auto_disable;
};

DrawnCase draw_case(std::mt19937_64& rng) {
  static const std::vector<BenchmarkId> kBenches = {
      BenchmarkId::kMcf,   BenchmarkId::kMilc, BenchmarkId::kAstar,
      BenchmarkId::kLbm,   BenchmarkId::kMix,  BenchmarkId::kPmf,
  };
  DrawnCase c;
  c.bench = kBenches[rng() % kBenches.size()];
  c.refs_per_core = 4'000 + rng() % 16'000;
  c.epoch_refs = 500 + rng() % 20'000;
  c.seed = rng();
  c.prefetch = (rng() & 1) != 0;
  c.auto_disable = (rng() & 1) != 0;
  return c;
}

RunSpec spec_for(const DrawnCase& c, const std::string& trace_path) {
  RunSpec spec;
  spec.bench = c.bench;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 8;
  spec.refs_per_core = c.refs_per_core;
  spec.seed = c.seed;
  spec.prefetch = c.prefetch;
  spec.tweak = [c, trace_path](HierarchyConfig& hc) {
    if (c.auto_disable) {
      hc.auto_disable.enabled = true;
      hc.auto_disable.epoch_refs = 5'000;
    }
    hc.obs.enabled = true;
    hc.obs.epoch_refs = c.epoch_refs;
    hc.obs.trace_path = trace_path;
  };
  return spec;
}

// `strict_partition` asserts tp + fp == predicted_present per epoch.  That
// partition only holds while the predictor is active for the whole window:
// during an auto-disabled stretch, lookups are skipped (predicted_present
// stays flat) but the hierarchy walk still classifies would-have-been
// predictions as TP/FP, so windows straddling a disable flip legitimately
// break it.
void check_trace_invariants(const std::vector<ObsEvent>& events,
                            const SimResult& r, bool strict_partition,
                            const std::string& what) {
  ASSERT_GE(events.size(), 3u) << what;
  EXPECT_EQ(events.front().type, "run_begin") << what;
  EXPECT_EQ(events.back().type, "run_end") << what;

  std::uint64_t epoch_ref_sum = 0;
  std::uint64_t prev_end_ref = 0;
  std::size_t epoch_index = 0;
  std::uint64_t occupancy_before = 0;
  bool in_recal = false;
  for (const ObsEvent& e : events) {
    if (e.type == "epoch") {
      // The paper's invariant, per observation window: a bypass is never
      // wrong, so every epoch's false-negative count is exactly zero.
      EXPECT_EQ(e.num_at("fn"), 0u) << what << " epoch " << epoch_index;
      EXPECT_EQ(e.num_at("index"), epoch_index) << what;
      epoch_ref_sum += e.num_at("refs");
      EXPECT_EQ(e.num_at("end_ref"), prev_end_ref + e.num_at("refs")) << what;
      prev_end_ref = e.num_at("end_ref");
      // Confusion counts partition the lookups they came from.
      EXPECT_EQ(e.num_at("tn") + e.num_at("fn"), e.num_at("predicted_absent"))
          << what;
      if (strict_partition) {
        EXPECT_EQ(e.num_at("tp") + e.num_at("fp"),
                  e.num_at("predicted_present"))
            << what;
      }
      ++epoch_index;
    } else if (e.type == "recal_start") {
      EXPECT_FALSE(in_recal) << what << ": nested recal_start";
      in_recal = true;
      occupancy_before = e.num_at("occupancy_before");
    } else if (e.type == "recal_end") {
      EXPECT_TRUE(in_recal) << what << ": recal_end without start";
      in_recal = false;
      // Recalibration rebuilds the PT from the tag array: it can only
      // clear bits that went stale, never invent presence.  The false
      // positives accumulated since the last rebuild are wiped, so the
      // occupancy never grows across the boundary.
      EXPECT_LE(e.num_at("occupancy_after"), occupancy_before)
          << what << " at ref " << e.num_at("ref");
    }
  }
  EXPECT_FALSE(in_recal) << what << ": unterminated recal bracket";
  EXPECT_EQ(epoch_index, r.epochs.size()) << what;
  EXPECT_EQ(epoch_ref_sum, r.total_refs) << what;
  EXPECT_EQ(events.back().num_at("ref"), r.total_refs) << what;
  EXPECT_EQ(events.back().num_at("epochs"), r.epochs.size()) << what;

  // The in-memory epoch series and the trace tell the same story.
  for (const EpochSample& s : r.epochs) {
    EXPECT_EQ(s.fn, 0u) << what;
    EXPECT_EQ(s.tn + s.fn, s.predicted_absent) << what;
  }
}

TEST(ObsProperty, RandomConfigsKeepTheConfusionAndRecalInvariants) {
  std::mt19937_64 rng(20260807);
  const std::string dir = ::testing::TempDir();
  for (int iter = 0; iter < 10; ++iter) {
    const DrawnCase c = draw_case(rng);
    const std::string what =
        "iter " + std::to_string(iter) + " bench " + to_string(c.bench) +
        " refs " + std::to_string(c.refs_per_core) + " epoch " +
        std::to_string(c.epoch_refs) + " seed " + std::to_string(c.seed);
    const std::string path =
        dir + "/obs-prop-" + std::to_string(iter) + ".jsonl";
    const SimResult r = run_spec(spec_for(c, path));
    check_trace_invariants(load_jsonl_file(path), r,
                           /*strict_partition=*/!c.auto_disable, what);
  }
}

// A handful of the drawn cases also run through the reference engine; its
// trace must match the fast engine's line for line.
TEST(ObsProperty, RandomConfigsAgreeAcrossEngines) {
  std::mt19937_64 rng(1976);
  const std::string dir = ::testing::TempDir();
  for (int iter = 0; iter < 3; ++iter) {
    DrawnCase c = draw_case(rng);
    c.refs_per_core = 4'000 + c.refs_per_core % 8'000;  // keep the oracle fast
    const std::string fast_path =
        dir + "/obs-prop-x-" + std::to_string(iter) + "-fast.jsonl";
    const std::string ref_path =
        dir + "/obs-prop-x-" + std::to_string(iter) + "-reference.jsonl";
    RunSpec spec = spec_for(c, fast_path);
    spec.engine = SimEngine::kFast;
    const SimResult fast = run_spec(spec);
    spec = spec_for(c, ref_path);
    spec.engine = SimEngine::kReference;
    const SimResult ref = run_spec(spec);
    EXPECT_TRUE(stats_identical(fast, ref)) << "iter " << iter;

    const auto fast_events = load_jsonl_file(fast_path);
    const auto ref_events = load_jsonl_file(ref_path);
    ASSERT_EQ(fast_events.size(), ref_events.size()) << "iter " << iter;
    // Structural equality via the parsed events; the byte-level check
    // lives in obs_test.cc.
    for (std::size_t i = 0; i < fast_events.size(); ++i) {
      EXPECT_EQ(fast_events[i].type, ref_events[i].type) << "iter " << iter;
      EXPECT_EQ(fast_events[i].nums, ref_events[i].nums)
          << "iter " << iter << " line " << i;
      EXPECT_EQ(fast_events[i].bools, ref_events[i].bools) << "iter " << iter;
      EXPECT_EQ(fast_events[i].strings, ref_events[i].strings)
          << "iter " << iter;
      EXPECT_EQ(fast_events[i].arrays, ref_events[i].arrays)
          << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace redhip
