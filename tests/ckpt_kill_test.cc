// kill -9 mid-run, then resume (src/ckpt end to end).  A forked child runs
// the simulation with periodic checkpointing and raises SIGKILL the moment
// a checkpoint hits disk — no destructors, no flushes, exactly the crash
// the subsystem exists for.  The parent then resumes from the survivor file
// and must reproduce the uninterrupted run bit for bit: stats_identical,
// byte-identical json_report, byte-identical JSONL event trace.  Covered:
// every specialized fast-engine feature mask (fault x prefetch x
// auto-disable), and all three engines on one configuration.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "ckpt/checkpoint_io.h"
#include "harness/json_report.h"
#include "harness/run.h"
#include "sim/config_digest.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::unique_ptr<MulticoreSimulator> build_sim(const RunSpec& spec) {
  const HierarchyConfig config = resolved_config(spec);
  std::vector<std::unique_ptr<TraceSource>> traces;
  std::vector<std::uint32_t> cpis;
  for (CoreId c = 0; c < config.cores; ++c) {
    traces.push_back(make_workload(spec.bench, c, spec.scale, spec.seed));
    cpis.push_back(workload_cpi_centi(spec.bench, c));
  }
  return std::make_unique<MulticoreSimulator>(config, std::move(traces),
                                              std::move(cpis));
}

std::uint64_t key_of(const RunSpec& spec) {
  return ckpt_key(to_string(spec.bench), spec.scale, spec.seed,
                  config_digest(resolved_config(spec)));
}

// Child body: simulate with periodic checkpoints and SIGKILL ourselves the
// instant the first one is on disk.  Never returns.
[[noreturn]] void run_and_die(const RunSpec& spec, const std::string& ckpt) {
  CkptControl ctl;
  ctl.interval_refs = 40'000;  // first boundary past ~1/4 of 160k aggregate
  const std::uint64_t key = key_of(spec);
  ctl.save = [&ckpt, key](MulticoreSimulator& s) {
    if (!save_checkpoint(s, ckpt, key).ok()) _exit(3);
    ::raise(SIGKILL);
  };
  auto sim = build_sim(spec);
  sim->set_ckpt_control(&ctl);
  switch (spec.engine) {
    case SimEngine::kFast:
      sim->run(spec.refs_per_core);
      break;
    case SimEngine::kReference:
      sim->run_reference(spec.refs_per_core);
      break;
    case SimEngine::kParallel: {
      ParallelOptions po;
      po.threads = 2;
      sim->run_parallel(spec.refs_per_core, po);
      break;
    }
  }
  _exit(2);  // ran to completion — the kill never fired
}

class CkptKillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "redhip_ckpt_kill";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  RunSpec traced_spec(const std::string& trace_name) {
    RunSpec spec;
    spec.bench = BenchmarkId::kMcf;
    spec.scheme = Scheme::kRedhip;
    spec.scale = 8;
    spec.refs_per_core = 20'000;
    spec.seed = 1234;
    const std::string path = (dir_ / trace_name).string();
    spec.tweak = [path](HierarchyConfig& hc) {
      hc.obs.enabled = true;
      hc.obs.epoch_refs = 20'000;
      hc.obs.trace_path = path;
    };
    return spec;
  }

  // The full scenario for one spec: uninterrupted oracle, killed child,
  // resumed parent run, byte-level comparison.
  void kill_and_resume(RunSpec spec, const std::string& tag) {
    auto retweak = [&spec, this](const std::string& trace_name) {
      RunSpec s = spec;
      const auto base = s.tweak;
      const std::string path = (dir_ / trace_name).string();
      s.tweak = [base, path](HierarchyConfig& hc) {
        if (base) base(hc);
        hc.obs.trace_path = path;
      };
      return s;
    };
    const std::string ckpt = (dir_ / (tag + ".ckpt")).string();

    const SimResult plain = run_spec(retweak(tag + "-a.jsonl"));

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      run_and_die(retweak(tag + "-child.jsonl"), ckpt);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus))
        << tag << ": child exited " << WEXITSTATUS(wstatus)
        << " instead of dying by signal";
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL) << tag;
    ASSERT_TRUE(std::filesystem::exists(ckpt)) << tag;

    // The survivor file is a valid mid-run state, not an end state.
    {
      auto probe = build_sim(spec);
      const Status st = load_checkpoint(ckpt, key_of(spec), *probe);
      ASSERT_TRUE(st.ok()) << tag << ": " << st.to_string();
      EXPECT_GT(probe->ckpt_refs_done(), 0u) << tag;
      EXPECT_LT(probe->ckpt_refs_done(), spec.refs_per_core * 8) << tag;
    }

    RunSpec resuming = retweak(tag + "-b.jsonl");
    resuming.ckpt_path = ckpt;
    resuming.ckpt_restore = true;
    const SimResult resumed = run_spec(resuming);

    EXPECT_TRUE(stats_identical(plain, resumed)) << tag;
    EXPECT_EQ(to_json(plain), to_json(resumed)) << tag;
    EXPECT_GT(plain.total_refs, 0u) << tag;
    EXPECT_EQ(slurp((dir_ / (tag + "-a.jsonl")).string()),
              slurp((dir_ / (tag + "-b.jsonl")).string()))
        << tag;
  }

  std::filesystem::path dir_;
};

// Every specialized fast-engine run loop: fault x prefetch x auto-disable.
TEST_F(CkptKillTest, AllFeatureMasksSurviveSigkill) {
  for (int mask = 0; mask < 8; ++mask) {
    const bool fault = mask & 1;
    const bool prefetch = mask & 2;
    const bool auto_disable = mask & 4;
    RunSpec spec = traced_spec("unused.jsonl");
    spec.prefetch = prefetch;
    const auto base = spec.tweak;
    spec.tweak = [base, fault, auto_disable](HierarchyConfig& hc) {
      if (base) base(hc);
      if (fault) {
        hc.fault.enabled = true;
        hc.fault.rate_per_mref = 2'000;  // dense enough to fire at 160k
        hc.audit.enabled = true;
      }
      if (auto_disable) {
        hc.auto_disable.enabled = true;
        hc.auto_disable.epoch_refs = 5'000;
      }
    };
    kill_and_resume(spec, "mask" + std::to_string(mask));
  }
}

// All three engines on one configuration (the fast engine is covered above;
// this pins the reference scalar loop and the parallel bound-weave engine,
// whose safe boundary is a fully-quiesced weave commit point).
TEST_F(CkptKillTest, EveryEngineSurvivesSigkill) {
  for (SimEngine engine :
       {SimEngine::kFast, SimEngine::kReference, SimEngine::kParallel}) {
    RunSpec spec = traced_spec("unused.jsonl");
    spec.engine = engine;
    kill_and_resume(spec, std::string("engine-") + engine_name(engine));
  }
}

}  // namespace
}  // namespace redhip
