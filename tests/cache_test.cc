// Tests for src/cache: replacement policies, TagArray behaviour, geometry
// validation, and the inclusion-related primitives the simulator builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cache/geometry.h"
#include "cache/replacement.h"
#include "cache/tag_array.h"
#include "common/rng.h"

namespace redhip {
namespace {

CacheGeometry small_geom(std::uint64_t size = 8_KiB, std::uint32_t ways = 4,
                         ReplacementKind repl = ReplacementKind::kLru) {
  CacheGeometry g;
  g.size_bytes = size;
  g.ways = ways;
  g.replacement = repl;
  return g;
}

TEST(Geometry, DerivedQuantities) {
  CacheGeometry g = small_geom(64_KiB, 8);
  EXPECT_EQ(g.lines(), 1024u);
  EXPECT_EQ(g.sets(), 128u);
  EXPECT_EQ(g.set_bits(), 7u);
  EXPECT_EQ(g.line_shift(), 6u);
  g.validate();
}

TEST(Geometry, RejectsNonPow2Sets) {
  CacheGeometry g = small_geom(8_KiB, 4);
  g.size_bytes = 3 * 1024;  // 48 lines / 4 ways = 12 sets
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Geometry, RejectsTooManyBanks) {
  CacheGeometry g = small_geom(8_KiB, 4);  // 32 sets
  g.banks = 64;
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Geometry, PaperLlcGeometry) {
  CacheGeometry g = small_geom(64_MiB, 16);
  EXPECT_EQ(g.lines(), 1u << 20);  // "In a 64MB cache, there are 1M tags"
  EXPECT_EQ(g.sets(), 1u << 16);   // k = 16
  g.validate();
}

// ------------------------------------------------------------- replacement

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy lru(1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) lru.touch(0, w);
  // Order now: 3 (MRU) 2 1 0 (LRU).
  EXPECT_EQ(lru.victim(0), 0u);
  lru.touch(0, 0);
  EXPECT_EQ(lru.victim(0), 1u);
  lru.touch(0, 1);
  EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Lru, RanksStayAPermutation) {
  LruPolicy lru(2, 8);
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t set = rng.below(2);
    lru.touch(set, static_cast<std::uint32_t>(rng.below(8)));
    std::set<std::uint8_t> ranks;
    for (std::uint32_t w = 0; w < 8; ++w) ranks.insert(lru.rank(set, w));
    ASSERT_EQ(ranks.size(), 8u);
    ASSERT_EQ(*ranks.rbegin(), 7u);
  }
}

TEST(TreePlru, VictimNeverMostRecentlyTouched) {
  TreePlruPolicy plru(1, 8);
  Xoshiro256 rng(9);
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t w = static_cast<std::uint32_t>(rng.below(8));
    plru.touch(0, w);
    EXPECT_NE(plru.victim(0), w);
  }
}

TEST(TreePlru, CyclicTouchApproximatesLru) {
  TreePlruPolicy plru(1, 4);
  // Touch 0,1,2,3 in order; PLRU should pick 0 (the oldest) as victim.
  for (std::uint32_t w = 0; w < 4; ++w) plru.touch(0, w);
  EXPECT_EQ(plru.victim(0), 0u);
}

TEST(Nru, VictimHasClearReferenceBit) {
  NruPolicy nru(1, 4);
  nru.touch(0, 1);
  nru.touch(0, 2);
  const std::uint32_t v = nru.victim(0);
  EXPECT_TRUE(v == 0 || v == 3);
}

TEST(Nru, EpochResetKeepsLastTouched) {
  NruPolicy nru(1, 2);
  nru.touch(0, 0);
  nru.touch(0, 1);  // all bits set -> reset, way 1 kept
  EXPECT_EQ(nru.victim(0), 0u);
}

TEST(Random, DeterministicUnderSeed) {
  RandomPolicy a(8, 123), b(8, 123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.victim(0), b.victim(0));
}

TEST(Random, CoversAllWays) {
  RandomPolicy p(4, 7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(p.victim(0));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Replacement, FactoryProducesRequestedKinds) {
  for (ReplacementKind k :
       {ReplacementKind::kLru, ReplacementKind::kTreePlru,
        ReplacementKind::kNru, ReplacementKind::kRandom}) {
    auto p = ReplacementPolicy::create(k, 16, 4, 1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), k);
  }
}

// ----------------------------------------------------------------- TagArray

TEST(TagArray, MissThenFillThenHit) {
  TagArray arr(small_geom(), 1);
  EXPECT_FALSE(arr.lookup(100).hit);
  EXPECT_FALSE(arr.fill(100).evicted);
  EXPECT_TRUE(arr.lookup(100).hit);
  EXPECT_TRUE(arr.contains(100));
  EXPECT_EQ(arr.valid_count(), 1u);
}

TEST(TagArray, ContainsDoesNotPerturbLru) {
  TagArray arr(small_geom(512, 4));  // 2 sets
  // Fill set 0 fully: lines 0, 2, 4, 6 map to set 0 (2 sets).
  for (LineAddr l : {0u, 2u, 4u, 6u}) arr.fill(l);
  // contains() must not promote line 0; lookup() must.
  EXPECT_TRUE(arr.contains(0));
  auto r = arr.fill(8);  // set 0 full: evicts LRU = line 0
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 0u);
}

TEST(TagArray, LookupPromotesAgainstEviction) {
  TagArray arr(small_geom(512, 4));
  for (LineAddr l : {0u, 2u, 4u, 6u}) arr.fill(l);
  EXPECT_TRUE(arr.lookup(0).hit);  // promote 0; LRU is now 2
  auto r = arr.fill(8);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 2u);
}

TEST(TagArray, EvictionOnlyWhenSetFull) {
  TagArray arr(small_geom(512, 4));  // 2 sets x 4 ways
  EXPECT_FALSE(arr.fill(1).evicted);
  EXPECT_FALSE(arr.fill(3).evicted);
  EXPECT_FALSE(arr.fill(5).evicted);
  EXPECT_FALSE(arr.fill(7).evicted);
  EXPECT_TRUE(arr.fill(9).evicted);  // 5th line into set 1
  EXPECT_EQ(arr.valid_count(), 4u);
}

TEST(TagArray, InvalidateFreesWay) {
  TagArray arr(small_geom(512, 4));
  for (LineAddr l : {0u, 2u, 4u, 6u}) arr.fill(l);
  EXPECT_TRUE(arr.invalidate(4));
  EXPECT_FALSE(arr.invalidate(4));  // already gone
  EXPECT_FALSE(arr.contains(4));
  EXPECT_FALSE(arr.fill(8).evicted);  // reuses the freed way
}

TEST(TagArray, DistinctTagsSameSetCoexist) {
  TagArray arr(small_geom(512, 4));  // 2 sets
  // Lines 0, 2, 4 all land in set 0 with different tags.
  arr.fill(0);
  arr.fill(2);
  arr.fill(4);
  EXPECT_TRUE(arr.contains(0));
  EXPECT_TRUE(arr.contains(2));
  EXPECT_TRUE(arr.contains(4));
  EXPECT_EQ(arr.valid_count_in_set(0), 3u);
  EXPECT_EQ(arr.valid_count_in_set(1), 0u);
}

TEST(TagArray, PrefetchMarkConsumedOnFirstHit) {
  TagArray arr(small_geom(), 1);
  arr.fill(42, /*prefetched=*/true);
  auto first = arr.lookup(42);
  EXPECT_TRUE(first.hit);
  EXPECT_TRUE(first.was_prefetched);
  auto second = arr.lookup(42);
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.was_prefetched);
}

TEST(TagArray, PrefetchMarkSurvivesUntouchedEviction) {
  TagArray arr(small_geom(512, 4));
  arr.fill(0, true);
  arr.fill(2);
  arr.fill(4);
  arr.fill(6);
  auto r = arr.fill(8);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 0u);
  EXPECT_TRUE(r.victim_was_prefetched);
}

TEST(TagArray, ForEachValidInSetEnumeratesExactly) {
  TagArray arr(small_geom(512, 4));
  arr.fill(1);
  arr.fill(3);
  arr.fill(0);
  std::vector<LineAddr> set1;
  arr.for_each_valid_in_set(1, [&](LineAddr l) { set1.push_back(l); });
  std::sort(set1.begin(), set1.end());
  EXPECT_EQ(set1, (std::vector<LineAddr>{1, 3}));
  std::vector<LineAddr> all;
  arr.for_each_valid([&](LineAddr l) { all.push_back(l); });
  EXPECT_EQ(all.size(), 3u);
}

TEST(TagArray, SetMappingUsesLowLineBits) {
  TagArray arr(small_geom(8_KiB, 4));  // 32 sets
  EXPECT_EQ(arr.set_of(0x12345), 0x12345u & 31);
}

// Property: under random fill/invalidate churn the array never exceeds its
// capacity, never loses a line it did not evict, and contains() agrees with
// an exact reference model.
TEST(TagArrayProperty, AgreesWithReferenceModelUnderChurn) {
  const CacheGeometry g = small_geom(4_KiB, 4);  // 16 sets, 64 lines
  TagArray arr(g, 77);
  std::set<LineAddr> model;
  Xoshiro256 rng(555);
  for (int step = 0; step < 20'000; ++step) {
    const LineAddr line = rng.below(512);  // 8x capacity -> heavy conflict
    const std::uint64_t op = rng.below(10);
    if (op < 6) {
      if (!model.count(line)) {
        auto r = arr.fill(line);
        model.insert(line);
        if (r.evicted) model.erase(r.victim);
      } else {
        EXPECT_TRUE(arr.lookup(line).hit);
      }
    } else if (op < 8) {
      EXPECT_EQ(arr.contains(line), model.count(line) == 1);
    } else {
      EXPECT_EQ(arr.invalidate(line), model.erase(line) == 1);
    }
    ASSERT_EQ(arr.valid_count(), model.size());
    ASSERT_LE(arr.valid_count(), g.lines());
  }
  for (LineAddr l : model) EXPECT_TRUE(arr.contains(l));
}

// Property: per-set occupancy never exceeds associativity and victims always
// come from the same set as the incoming line.
TEST(TagArrayProperty, VictimsShareTheIncomingSet) {
  TagArray arr(small_geom(4_KiB, 4), 3);
  Xoshiro256 rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const LineAddr line = rng.below(1024);
    if (arr.contains(line)) continue;
    auto r = arr.fill(line);
    if (r.evicted) {
      ASSERT_EQ(arr.set_of(r.victim), arr.set_of(line));
    }
    for (std::uint64_t s = 0; s < arr.sets(); ++s) {
      ASSERT_LE(arr.valid_count_in_set(s), 4u);
    }
  }
}

}  // namespace
}  // namespace redhip
