// Tests for src/prefetch: the stride prefetcher's reference prediction
// table — learning, confidence state machine, degree/distance emission, and
// aliasing behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "prefetch/stride_prefetcher.h"

namespace redhip {
namespace {

using State = StridePrefetcher::State;

StridePrefetcherConfig cfg(std::uint32_t degree = 2,
                           std::uint32_t distance = 1) {
  StridePrefetcherConfig c;
  c.index_bits = 8;
  c.degree = degree;
  c.distance = distance;
  return c;
}

std::vector<LineAddr> observe(StridePrefetcher& p, std::uint32_t pc,
                              Addr addr) {
  std::vector<LineAddr> out;
  p.observe(pc, addr, out);
  return out;
}

TEST(Stride, NoPrefetchBeforeConfidence) {
  StridePrefetcher p(cfg());
  EXPECT_TRUE(observe(p, 1, 1000).empty());  // allocate
  EXPECT_TRUE(observe(p, 1, 1064).empty());  // first stride observed
  EXPECT_EQ(p.state_of(1), State::kTransient);
}

TEST(Stride, SteadyAfterTwoMatchingStrides) {
  StridePrefetcher p(cfg(1, 1));
  observe(p, 1, 1000);
  observe(p, 1, 1064);
  const auto out = observe(p, 1, 1128);  // stride 64 confirmed
  EXPECT_EQ(p.state_of(1), State::kSteady);
  EXPECT_EQ(p.stride_of(1), 64);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (1128u + 64u) >> 6);
}

TEST(Stride, DegreeEmitsConsecutiveTargets) {
  StridePrefetcher p(cfg(3, 1));
  observe(p, 2, 0x10000);
  observe(p, 2, 0x10000 + 256);
  const auto out = observe(p, 2, 0x10000 + 512);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (0x10000u + 768) >> 6);
  EXPECT_EQ(out[1], (0x10000u + 1024) >> 6);
  EXPECT_EQ(out[2], (0x10000u + 1280) >> 6);
}

TEST(Stride, DistanceSkipsAhead) {
  StridePrefetcher p(cfg(1, 4));
  observe(p, 3, 0);
  observe(p, 3, 64);
  const auto out = observe(p, 3, 128);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (128u + 4 * 64) >> 6);
}

TEST(Stride, SmallStridesDedupSameLineTargets) {
  // An 8-byte stride keeps hitting the same line; targets inside the
  // triggering line (or repeated lines) must not be emitted.
  StridePrefetcher p(cfg(2, 1));
  observe(p, 4, 4096);  // line-aligned so the +8/+16 targets stay in-line
  observe(p, 4, 4104);
  const auto out = observe(p, 4, 4112);
  EXPECT_TRUE(out.empty()) << "prefetching the current line is pointless";
}

TEST(Stride, NegativeStridesWork) {
  StridePrefetcher p(cfg(1, 1));
  observe(p, 5, 10'000);
  observe(p, 5, 10'000 - 128);
  const auto out = observe(p, 5, 10'000 - 256);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (10'000u - 384) >> 6);
  EXPECT_EQ(p.stride_of(5), -128);
}

TEST(Stride, SteadyDegradesOnMispredictButRecovers) {
  StridePrefetcher p(cfg(1, 1));
  observe(p, 6, 0);
  observe(p, 6, 64);
  observe(p, 6, 128);
  EXPECT_EQ(p.state_of(6), State::kSteady);
  observe(p, 6, 5000);  // break the pattern
  EXPECT_EQ(p.state_of(6), State::kTransient);
  EXPECT_TRUE(observe(p, 6, 5064).empty());  // new stride, not yet confident
  const auto out = observe(p, 6, 5128);
  EXPECT_EQ(p.state_of(6), State::kSteady);
  EXPECT_FALSE(out.empty());
}

TEST(Stride, ZeroStrideNeverPrefetches) {
  StridePrefetcher p(cfg(2, 1));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(observe(p, 7, 4096).empty());
  }
}

TEST(Stride, PcAliasingReallocatesEntry) {
  StridePrefetcher p(cfg(1, 1));
  const std::uint32_t pc_a = 0x10;
  const std::uint32_t pc_b = 0x10 + (1u << 8);  // same index, different tag
  observe(p, pc_a, 0);
  observe(p, pc_a, 64);
  observe(p, pc_a, 128);
  EXPECT_EQ(p.state_of(pc_a), State::kSteady);
  observe(p, pc_b, 9999);  // steals the entry
  EXPECT_EQ(p.state_of(pc_a), State::kInitial);
  EXPECT_EQ(p.state_of(pc_b), State::kInitial);
}

TEST(Stride, IndependentPcsLearnIndependently) {
  StridePrefetcher p(cfg(1, 1));
  for (int i = 0; i < 4; ++i) {
    observe(p, 1, static_cast<Addr>(i) * 64);
    observe(p, 2, 1_MiB + static_cast<Addr>(i) * 4096);
  }
  EXPECT_EQ(p.stride_of(1), 64);
  EXPECT_EQ(p.stride_of(2), 4096);
  EXPECT_EQ(p.state_of(1), State::kSteady);
  EXPECT_EQ(p.state_of(2), State::kSteady);
}

TEST(Stride, TableLookupsCounted) {
  StridePrefetcher p(cfg());
  for (int i = 0; i < 25; ++i) observe(p, 9, static_cast<Addr>(i) * 64);
  EXPECT_EQ(p.events().table_lookups, 25u);
}

TEST(Stride, ConfigValidation) {
  StridePrefetcherConfig c;
  c.index_bits = 2;
  EXPECT_THROW(StridePrefetcher{c}, std::logic_error);
  c = StridePrefetcherConfig{};
  c.degree = 0;
  EXPECT_THROW(StridePrefetcher{c}, std::logic_error);
  c = StridePrefetcherConfig{};
  c.distance = 0;
  EXPECT_THROW(StridePrefetcher{c}, std::logic_error);
}

}  // namespace
}  // namespace redhip
