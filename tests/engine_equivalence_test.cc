// The fast engine (run(): batched trace refill, heap scheduler, run loops
// specialized on the feature mask) must be a pure reimplementation of the
// reference engine (run_reference(): the original scalar loop): same
// interleave, same RNG consumption, bit-identical statistics.  These tests
// pin that contract across schemes, inclusion policies, and every
// specialized-loop instantiation.
#include <gtest/gtest.h>

#include <string>

#include "harness/run.h"
#include "sim/stats.h"

namespace redhip {
namespace {

RunSpec small_spec(BenchmarkId bench, Scheme scheme,
                   InclusionPolicy inclusion) {
  RunSpec spec;
  spec.bench = bench;
  spec.scheme = scheme;
  spec.inclusion = inclusion;
  spec.scale = 8;
  spec.refs_per_core = 20'000;
  spec.seed = 1234;
  return spec;
}

// Run the same spec through both engines and require bit-identical stats.
void expect_engines_agree(RunSpec spec, const std::string& what) {
  spec.engine = SimEngine::kFast;
  const SimResult fast = run_spec(spec);
  spec.engine = SimEngine::kReference;
  const SimResult ref = run_spec(spec);
  EXPECT_TRUE(stats_identical(fast, ref)) << what;
  // Spot-check a few load-bearing counters so a stats_identical bug can't
  // silently vacuously pass.
  EXPECT_EQ(fast.total_refs, ref.total_refs) << what;
  EXPECT_EQ(fast.exec_cycles, ref.exec_cycles) << what;
  EXPECT_GT(fast.total_refs, 0u) << what;
}

TEST(EngineEquivalence, EverySchemeInclusive) {
  for (Scheme s : {Scheme::kBase, Scheme::kPhased, Scheme::kCbf,
                   Scheme::kRedhip, Scheme::kOracle, Scheme::kPartialTag}) {
    expect_engines_agree(
        small_spec(BenchmarkId::kMcf, s, InclusionPolicy::kInclusive),
        "inclusive " + to_string(s));
  }
}

TEST(EngineEquivalence, ExclusiveAndHybrid) {
  for (InclusionPolicy p :
       {InclusionPolicy::kExclusive, InclusionPolicy::kHybrid}) {
    for (Scheme s : {Scheme::kBase, Scheme::kRedhip}) {
      expect_engines_agree(small_spec(BenchmarkId::kBlas, s, p),
                           to_string(p) + " " + to_string(s));
    }
  }
}

TEST(EngineEquivalence, SeveralWorkloads) {
  for (BenchmarkId b : {BenchmarkId::kBwaves, BenchmarkId::kAstar,
                        BenchmarkId::kMix, BenchmarkId::kPmf}) {
    expect_engines_agree(
        small_spec(b, Scheme::kRedhip, InclusionPolicy::kInclusive),
        "workload " + to_string(b));
  }
}

// Every run_loop<kFault, kPrefetch, kAutoDisable> instantiation: the fast
// engine dispatches on the feature mask, so each of the 8 combinations is a
// distinct compiled loop that must match the (always-generic) reference.
TEST(EngineEquivalence, AllSpecializedLoopInstantiations) {
  for (int mask = 0; mask < 8; ++mask) {
    const bool fault = mask & 1;
    const bool prefetch = mask & 2;
    const bool auto_disable = mask & 4;
    RunSpec spec =
        small_spec(BenchmarkId::kMcf, Scheme::kRedhip,
                   InclusionPolicy::kInclusive);
    spec.prefetch = prefetch;
    spec.tweak = [fault, auto_disable](HierarchyConfig& config) {
      if (fault) {
        config.fault.enabled = true;
        config.fault.rate_per_mref = 2'000;  // dense enough to fire at 160k
        config.audit.enabled = true;
      }
      if (auto_disable) {
        config.auto_disable.enabled = true;
        config.auto_disable.epoch_refs = 5'000;  // several epochs per run
      }
    };
    expect_engines_agree(spec, "feature mask " + std::to_string(mask));
  }
}

}  // namespace
}  // namespace redhip
