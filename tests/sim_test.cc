// Tests for src/sim: access-path semantics (latency and event accounting per
// scheme), inclusion-policy invariants, predictor integration (including the
// no-false-negative guarantee at the simulator level), recalibration stalls,
// prefetch integration, and determinism.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "harness/run.h"
#include "sim/simulator.h"
#include "trace/mem_ref.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

// A tiny 1-core machine with easy-to-check numbers:
//   L1: 1KB 2-way, delay 2, energy 1 nJ
//   L2: 4KB 4-way, delay 6, energy 2 nJ
//   L3: 16KB 4-way, phased-capable, tag 9 / data 12, tag 3 / data 9 nJ
//   L4: 64KB 8-way (shared/LLC), tag 13 / data 22, tag 4 / data 20 nJ
HierarchyConfig tiny_config(Scheme scheme,
                            InclusionPolicy incl = InclusionPolicy::kInclusive,
                            std::uint32_t cores = 1) {
  HierarchyConfig c;
  c.cores = cores;
  c.scheme = scheme;
  c.inclusion = incl;
  auto mk = [](std::uint64_t size, std::uint32_t ways, Cycles td, Cycles dd,
               double te, double de) {
    LevelSpec l;
    l.geom.size_bytes = size;
    l.geom.ways = ways;
    l.energy = LevelEnergyParams{"", td, dd, te, de, 0.1};
    return l;
  };
  c.levels = {mk(1_KiB, 2, 0, 2, 0.0, 1.0), mk(4_KiB, 4, 0, 6, 0.0, 2.0),
              mk(16_KiB, 4, 9, 12, 3.0, 9.0), mk(64_KiB, 8, 13, 22, 4.0, 20.0)};
  if (scheme == Scheme::kPhased) {
    c.levels[2].phased = true;
    c.levels[3].phased = true;
  }
  c.redhip.table_bits = 1 << 13;  // p=13 > k(LLC)=7
  c.redhip.recal_interval_l1_misses = 0;
  c.cbf.index_bits = 12;
  return c;
}

std::vector<std::unique_ptr<TraceSource>> empty_traces(std::uint32_t cores) {
  std::vector<std::unique_ptr<TraceSource>> t;
  for (std::uint32_t i = 0; i < cores; ++i) {
    t.push_back(std::make_unique<VectorTraceSource>(std::vector<MemRef>{}));
  }
  return t;
}

MulticoreSimulator make_sim(const HierarchyConfig& c) {
  return MulticoreSimulator(c, empty_traces(c.cores),
                            std::vector<std::uint32_t>(c.cores, 100));
}

MemRef ref_at(Addr addr) { return MemRef{addr, 0, 0, false}; }

// ------------------------------------------------------- base access path

TEST(BaseAccess, FullMissWalksEveryLevelThenHitsL1) {
  auto sim = make_sim(tiny_config(Scheme::kBase));
  // Cold miss: misses resolve at tag-compare time, so the walk costs
  // L1(2) + L2(6) + L3 tag(9) + L4 tag(13) + mem(0) = 30.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x10000)), 30u);
  // Now resident everywhere: L1 hit = 2.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x10000)), 2u);
  // Same line, different word: still an L1 hit.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x10008)), 2u);
  for (std::uint32_t lvl = 0; lvl < 4; ++lvl) {
    EXPECT_TRUE(sim.level_array_for_test(lvl, 0).contains(0x10000 >> 6))
        << "inclusive fill must install at level " << lvl;
  }
}

TEST(BaseAccess, MemoryLatencyAddsToTheMissPath) {
  HierarchyConfig c = tiny_config(Scheme::kBase);
  c.memory_latency = 200;
  auto sim = make_sim(c);
  EXPECT_EQ(sim.access_for_test(0, ref_at(0)), 230u);
}

TEST(BaseAccess, HitAtIntermediateLevelFillsUpward) {
  auto sim = make_sim(tiny_config(Scheme::kBase));
  sim.access_for_test(0, ref_at(0x20000));
  // Thrash it out of L1 (8 sets, 2-way) and L2 (16 sets, 4-way) with lines
  // 16 lines (1KB) apart — those share the L1/L2 set but spread across four
  // L3 sets (64 sets), so 0x20000 stays resident in L3.  The next access
  // should then hit L3: 2 + 6 + 12 = 20.
  for (int i = 1; i <= 8; ++i) {
    sim.access_for_test(0, ref_at(0x20000 + i * 16 * 64));
  }
  // 0x20000 should by now be out of L1 (2-way) and L2 (4-way) but in L3.
  const Cycles lat = sim.access_for_test(0, ref_at(0x20000));
  EXPECT_EQ(lat, 20u);
}

TEST(BaseAccess, EventCountersAddUp) {
  auto sim = make_sim(tiny_config(Scheme::kBase));
  for (int i = 0; i < 10; ++i) sim.access_for_test(0, ref_at(i * 4_KiB));
  for (int i = 0; i < 10; ++i) sim.access_for_test(0, ref_at(i * 4_KiB));
  // 10 cold misses + 10 L1 hits (adjacent lines spread over the 8 L1 sets,
  // at most 2 per set = associativity, so nothing is evicted).
  std::vector<MemRef> refs;
  for (int i = 0; i < 10; ++i) refs.push_back(ref_at(i * 64));
  for (int i = 0; i < 10; ++i) refs.push_back(ref_at(i * 64));
  HierarchyConfig c = tiny_config(Scheme::kBase);
  std::vector<std::unique_ptr<TraceSource>> t;
  t.push_back(std::make_unique<VectorTraceSource>(refs));
  MulticoreSimulator sim2(c, std::move(t), {100});
  const SimResult r = sim2.run(refs.size());
  EXPECT_EQ(r.levels[0].accesses, 20u);
  EXPECT_EQ(r.levels[0].hits, 10u);
  EXPECT_EQ(r.levels[0].misses, 10u);
  EXPECT_EQ(r.levels[1].accesses, 10u);
  EXPECT_EQ(r.levels[3].misses, 10u);
  EXPECT_EQ(r.demand_memory_accesses, 10u);
  EXPECT_EQ(r.levels[0].fills, 10u);
  EXPECT_EQ(r.levels[3].fills, 10u);
  EXPECT_EQ(r.total_refs, 20u);
}

// ----------------------------------------------------------- phased access

TEST(PhasedAccess, MissPaysTagOnlyHitPaysTagPlusData) {
  auto sim = make_sim(tiny_config(Scheme::kPhased));
  // Cold miss: L1(2) + L2(6) + L3 tag(9) + L4 tag(13) = 30.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x30000)), 30u);
  // Thrash it out of L1/L2, keep in L3: hit pays tag+data = 9+12 = 21.
  for (int i = 1; i <= 8; ++i) {
    sim.access_for_test(0, ref_at(0x30000 + i * 16 * 64));
  }
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x30000)), 2 + 6 + 21u);
}

TEST(PhasedAccess, MissSavesDataArrayEnergy) {
  std::vector<MemRef> refs;
  for (int i = 0; i < 100; ++i) refs.push_back(ref_at(i * 1_MiB));
  auto run_with = [&](Scheme s) {
    HierarchyConfig c = tiny_config(s);
    std::vector<std::unique_ptr<TraceSource>> t;
    t.push_back(std::make_unique<VectorTraceSource>(refs));
    MulticoreSimulator sim(c, std::move(t), {100});
    return sim.run(refs.size());
  };
  const SimResult base = run_with(Scheme::kBase);
  const SimResult phased = run_with(Scheme::kPhased);
  // All-miss workload: phased never touches the L3/L4 data arrays.
  EXPECT_EQ(phased.levels[2].data_probes, 0u);
  EXPECT_EQ(phased.levels[3].data_probes, 0u);
  EXPECT_EQ(base.levels[2].data_probes, 100u);
  EXPECT_LT(phased.energy.level_dynamic_j[3], base.energy.level_dynamic_j[3]);
  // But the same behavioural outcome.
  EXPECT_EQ(phased.demand_memory_accesses, base.demand_memory_accesses);
}

// ----------------------------------------------------------- ReDHiP access

TEST(RedhipAccess, BypassSkipsAllLowerLevels) {
  HierarchyConfig c = tiny_config(Scheme::kRedhip);
  auto sim = make_sim(c);
  // Cold miss with an empty PT: predicted absent -> L1(2) + PT(6) + mem(0).
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x40000)), 8u);
  const auto* pred = sim.llc_predictor_for_test();
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->events().predicted_absent, 1u);
  // The fill set the PT bit; a conflicting L1/L2 line later walks normally.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x40000)), 2u);  // L1 hit
}

TEST(RedhipAccess, PredictedPresentWalksTheHierarchy) {
  auto sim = make_sim(tiny_config(Scheme::kRedhip));
  sim.access_for_test(0, ref_at(0x50000));  // bypass; PT bit now set
  // Thrash L1/L2 with same-set lines that stay clear of 0x50000's L3 set.
  for (int i = 1; i <= 8; ++i) {
    sim.access_for_test(0, ref_at(0x50000 + i * 16 * 64));
  }
  // Hit in L3 after the PT says "maybe": 2 + 6(PT) + 6(L2) + 12(L3) = 26.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x50000)), 26u);
}

TEST(RedhipAccess, NeverBypassesAResidentLine) {
  // The no-false-negative invariant, enforced against the live simulator:
  // whenever the PT predicts absent, the LLC must not contain the line.
  HierarchyConfig c = tiny_config(Scheme::kRedhip);
  c.redhip.recal_interval_l1_misses = 64;
  auto sim = make_sim(c);
  auto* pred = const_cast<LlcPredictor*>(sim.llc_predictor_for_test());
  Xoshiro256 rng(99);
  for (int i = 0; i < 50'000; ++i) {
    const Addr addr = rng.below(1 << 22);
    const LineAddr line = addr >> 6;
    const bool resident = sim.level_array_for_test(3, 0).contains(line);
    if (pred->query(line) == Prediction::kAbsent) {
      ASSERT_FALSE(resident) << "bypass would hide on-chip data, ref " << i;
    }
    sim.access_for_test(0, ref_at(addr));
  }
}

TEST(RedhipAccess, RecalibrationStallsShowUp) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 30'000;
  spec.tweak = [](HierarchyConfig& c) {
    c.redhip.recal_interval_l1_misses = 1000;
  };
  const SimResult r = run_spec(spec);
  EXPECT_GT(r.predictor.recalibrations, 0u);
  EXPECT_GT(r.recal_stall_cycles, 0u);
  EXPECT_GT(r.predictor.recal_sets_read, 0u);
  EXPECT_GT(r.energy.recalibration_j, 0.0);
}

TEST(RedhipAccess, StaleBitsCauseFalsePositivesUntilRecalibration) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 50'000;
  spec.tweak = [](HierarchyConfig& c) {
    c.redhip.recal_interval_l1_misses = 0;  // never recalibrate
  };
  const SimResult never = run_spec(spec);
  spec.tweak = [](HierarchyConfig& c) {
    c.redhip.recal_interval_l1_misses = 2000;
  };
  const SimResult often = run_spec(spec);
  // Recalibration can only remove stale bits -> more bypasses, fewer wasted
  // walks.
  EXPECT_GT(often.predictor.predicted_absent, never.predictor.predicted_absent);
  EXPECT_LT(often.predictor.false_positives, never.predictor.false_positives);
}

// ------------------------------------------------------------ CBF + Oracle

TEST(CbfAccess, BypassesAndTracksEvictions) {
  auto sim = make_sim(tiny_config(Scheme::kCbf));
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x60000)), 8u);  // bypass
  const auto* pred = sim.llc_predictor_for_test();
  EXPECT_EQ(pred->events().predicted_absent, 1u);
}

TEST(OracleAccess, ZeroOverheadBypass) {
  auto sim = make_sim(tiny_config(Scheme::kOracle));
  // Oracle has no lookup delay: cold miss = L1(2) + mem(0) = 2.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x70000)), 2u);
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x70000)), 2u);  // L1 hit
}

TEST(SchemeOrdering, OracleBypassesAtLeastAsOftenAsRedhipAndCbf) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scale = 32;
  spec.refs_per_core = 40'000;
  spec.scheme = Scheme::kOracle;
  const SimResult oracle = run_spec(spec);
  spec.scheme = Scheme::kRedhip;
  const SimResult redhip = run_spec(spec);
  spec.scheme = Scheme::kCbf;
  const SimResult cbf = run_spec(spec);
  // Conservative predictors can only bypass a subset of true LLC misses.
  EXPECT_GE(oracle.predictor.predicted_absent,
            redhip.predictor.predicted_absent);
  EXPECT_EQ(oracle.predictor.false_positives, 0u);
  EXPECT_GT(redhip.predictor.predicted_absent, 0u);
  EXPECT_GT(cbf.predictor.predicted_absent, 0u);
}

// ------------------------------------------------------ inclusion policies

// Collect every line of an array.
std::set<LineAddr> lines_of(const TagArray& a) {
  std::set<LineAddr> s;
  a.for_each_valid([&](LineAddr l) { s.insert(l); });
  return s;
}

TEST(InclusionInvariant, InclusiveUpperLevelsAreSubsets) {
  for (Scheme s : {Scheme::kBase, Scheme::kRedhip}) {
    HierarchyConfig c = tiny_config(s, InclusionPolicy::kInclusive, 2);
    auto sim = make_sim(c);
    Xoshiro256 rng(7);
    for (int i = 0; i < 30'000; ++i) {
      sim.access_for_test(static_cast<CoreId>(i & 1),
                          ref_at(rng.below(1 << 21)));
    }
    for (CoreId core = 0; core < 2; ++core) {
      for (std::uint32_t lvl = 0; lvl < 3; ++lvl) {
        const auto upper = lines_of(sim.level_array_for_test(lvl, core));
        const TagArray& lower = sim.level_array_for_test(lvl + 1, core);
        for (LineAddr l : upper) {
          ASSERT_TRUE(lower.contains(l))
              << to_string(s) << ": line in L" << lvl + 1
              << " missing from L" << lvl + 2;
        }
      }
    }
  }
}

TEST(InclusionInvariant, ExclusiveLevelsAreDisjoint) {
  for (Scheme s : {Scheme::kBase, Scheme::kRedhip, Scheme::kOracle}) {
    HierarchyConfig c = tiny_config(s, InclusionPolicy::kExclusive);
    auto sim = make_sim(c);
    Xoshiro256 rng(11);
    for (int i = 0; i < 30'000; ++i) {
      sim.access_for_test(0, ref_at(rng.below(1 << 21)));
    }
    std::set<LineAddr> all;
    std::uint64_t total = 0;
    for (std::uint32_t lvl = 0; lvl < 4; ++lvl) {
      const auto ls = lines_of(sim.level_array_for_test(lvl, 0));
      total += ls.size();
      all.insert(ls.begin(), ls.end());
    }
    ASSERT_EQ(all.size(), total)
        << to_string(s) << ": levels share lines in exclusive mode";
  }
}

TEST(InclusionInvariant, HybridPrivatesDisjointLlcCoversAll) {
  for (Scheme s : {Scheme::kBase, Scheme::kRedhip, Scheme::kCbf}) {
    HierarchyConfig c = tiny_config(s, InclusionPolicy::kHybrid);
    auto sim = make_sim(c);
    Xoshiro256 rng(13);
    for (int i = 0; i < 30'000; ++i) {
      sim.access_for_test(0, ref_at(rng.below(1 << 21)));
    }
    std::set<LineAddr> priv;
    std::uint64_t total = 0;
    for (std::uint32_t lvl = 0; lvl < 3; ++lvl) {
      const auto ls = lines_of(sim.level_array_for_test(lvl, 0));
      total += ls.size();
      priv.insert(ls.begin(), ls.end());
    }
    ASSERT_EQ(priv.size(), total) << to_string(s) << ": private levels share";
    const TagArray& llc = sim.level_array_for_test(3, 0);
    for (LineAddr l : priv) {
      ASSERT_TRUE(llc.contains(l))
          << to_string(s) << ": hybrid LLC must include all private lines";
    }
  }
}

TEST(ExclusiveAccess, HitMovesLineToL1) {
  HierarchyConfig c = tiny_config(Scheme::kBase, InclusionPolicy::kExclusive);
  auto sim = make_sim(c);
  sim.access_for_test(0, ref_at(0x80000));  // miss -> installs in L1 only
  EXPECT_TRUE(sim.level_array_for_test(0, 0).contains(0x80000 >> 6));
  EXPECT_FALSE(sim.level_array_for_test(3, 0).contains(0x80000 >> 6));
  // Conflict it out of L1 (2-way, 8 sets -> lines 512B apart conflict).
  sim.access_for_test(0, ref_at(0x80000 + 4096));
  sim.access_for_test(0, ref_at(0x80000 + 8192));
  EXPECT_FALSE(sim.level_array_for_test(0, 0).contains(0x80000 >> 6));
  EXPECT_TRUE(sim.level_array_for_test(1, 0).contains(0x80000 >> 6))
      << "L1 victim must cascade into L2";
  // Re-access: must move back to L1 and leave L2.
  sim.access_for_test(0, ref_at(0x80000));
  EXPECT_TRUE(sim.level_array_for_test(0, 0).contains(0x80000 >> 6));
  EXPECT_FALSE(sim.level_array_for_test(1, 0).contains(0x80000 >> 6));
}

TEST(ExclusiveAccess, RedhipSkipsLevelsItPredictsEmpty) {
  HierarchyConfig c = tiny_config(Scheme::kRedhip, InclusionPolicy::kExclusive);
  c.redhip.recal_interval_l1_misses = 0;
  auto sim = make_sim(c);
  // Cold miss: all per-level PTs empty -> all levels skipped.
  sim.access_for_test(0, ref_at(0x90000));
  std::vector<MemRef> refs;  // replay through run() to read the counters
  HierarchyConfig c2 = tiny_config(Scheme::kRedhip, InclusionPolicy::kExclusive);
  std::vector<std::unique_ptr<TraceSource>> t;
  t.push_back(std::make_unique<VectorTraceSource>(
      std::vector<MemRef>{ref_at(0x90000), ref_at(0xA0000)}));
  MulticoreSimulator sim2(c2, std::move(t), {100});
  const SimResult r = sim2.run(2);
  EXPECT_EQ(r.levels[1].skipped + r.levels[2].skipped + r.levels[3].skipped,
            6u);
  EXPECT_EQ(r.levels[1].accesses, 0u);
}

// ------------------------------------------------------------ multi-core

TEST(MultiCore, SharedLlcSeesAllCoresPrivateLevelsDoNot) {
  HierarchyConfig c = tiny_config(Scheme::kBase, InclusionPolicy::kInclusive,
                                  /*cores=*/4);
  std::vector<std::unique_ptr<TraceSource>> traces;
  for (CoreId core = 0; core < 4; ++core) {
    std::vector<MemRef> refs;
    for (int i = 0; i < 50; ++i) {
      refs.push_back(ref_at((static_cast<Addr>(core) << 30) + i * 64));
    }
    traces.push_back(std::make_unique<VectorTraceSource>(refs));
  }
  MulticoreSimulator sim(c, std::move(traces),
                         std::vector<std::uint32_t>(4, 100));
  const SimResult r = sim.run(50);
  EXPECT_EQ(r.levels[0].accesses, 200u);
  EXPECT_EQ(r.levels[3].accesses, 200u);  // all cold misses reach the LLC
  EXPECT_EQ(r.core_cycles.size(), 4u);
  for (Cycles cc : r.core_cycles) EXPECT_GT(cc, 0u);
  EXPECT_EQ(r.exec_cycles,
            *std::max_element(r.core_cycles.begin(), r.core_cycles.end()));
}

TEST(MultiCore, CpiGapsAdvanceClocks) {
  HierarchyConfig c = tiny_config(Scheme::kBase);
  std::vector<std::unique_ptr<TraceSource>> t;
  t.push_back(std::make_unique<VectorTraceSource>(std::vector<MemRef>{
      MemRef{0, 0, 10, false}, MemRef{0, 0, 10, false}}));
  MulticoreSimulator sim(c, std::move(t), {150});  // CPI 1.5
  const SimResult r = sim.run(2);
  // 2 gaps of 10 instructions at CPI 1.5 = 30 cycles + 30 (cold miss)
  // + 2 (L1 hit) = 62.
  EXPECT_EQ(r.exec_cycles, 62u);
}

TEST(Determinism, IdenticalSeedsGiveIdenticalResults) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMilc;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 20'000;
  const SimResult a = run_spec(spec);
  const SimResult b = run_spec(spec);
  EXPECT_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_EQ(a.total_refs, b.total_refs);
  EXPECT_EQ(a.demand_memory_accesses, b.demand_memory_accesses);
  for (int lvl = 0; lvl < 4; ++lvl) {
    EXPECT_EQ(a.levels[lvl].hits, b.levels[lvl].hits);
    EXPECT_EQ(a.levels[lvl].misses, b.levels[lvl].misses);
  }
  EXPECT_EQ(a.predictor.predicted_absent, b.predictor.predicted_absent);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

// --------------------------------------------------------------- prefetch

TEST(Prefetch, StreamingWorkloadGetsUsefulPrefetches) {
  HierarchyConfig c = tiny_config(Scheme::kBase);
  c.prefetch = true;
  std::vector<MemRef> refs;
  for (int i = 0; i < 4000; ++i) {
    refs.push_back(MemRef{static_cast<Addr>(0x100000 + i * 64), 0x42, 0,
                          false});
  }
  std::vector<std::unique_ptr<TraceSource>> t;
  t.push_back(std::make_unique<VectorTraceSource>(refs));
  MulticoreSimulator sim(c, std::move(t), {100});
  const SimResult r = sim.run(refs.size());
  EXPECT_GT(r.prefetch.issued, 100u);
  EXPECT_GT(r.prefetch.useful, 100u);
  // Demand stream should now mostly hit in L2 instead of going off-chip.
  EXPECT_LT(r.demand_memory_accesses, 4000u / 2);
}

TEST(Prefetch, SpeedsUpStreamsAndCostsEnergy) {
  RunSpec spec;
  spec.bench = BenchmarkId::kLbm;  // pure streaming
  spec.scale = 32;
  spec.refs_per_core = 40'000;
  spec.scheme = Scheme::kBase;
  const SimResult base = run_spec(spec);
  spec.prefetch = true;
  const SimResult sp = run_spec(spec);
  const Comparison cmp = compare(base, sp);
  EXPECT_GT(cmp.speedup, 1.02) << "stride prefetch must help lbm";
}

TEST(Prefetch, CombinedWithRedhipKeepsTheInvariant) {
  RunSpec spec;
  spec.bench = BenchmarkId::kBwaves;
  spec.scale = 32;
  spec.refs_per_core = 30'000;
  spec.scheme = Scheme::kRedhip;
  spec.prefetch = true;
  const SimResult r = run_spec(spec);
  EXPECT_GT(r.prefetch.issued, 0u);
  EXPECT_GT(r.predictor.predicted_absent, 0u);
  // PT lookups include both demand misses and prefetch probes.
  EXPECT_GE(r.predictor.lookups,
            r.predictor.predicted_absent + r.predictor.predicted_present);
}

// ------------------------------------------------------------ energy wiring

TEST(Energy, DeepLevelsDominateDynamicEnergyOnMissHeavyWorkloads) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scale = 32;
  spec.refs_per_core = 40'000;
  const SimResult r = run_spec(spec);
  const auto& e = r.energy.level_dynamic_j;
  EXPECT_GT((e[2] + e[3]) / r.energy.dynamic_total_j(), 0.5)
      << "the paper's motivating observation";
  EXPECT_GT(r.energy.leakage_j, 0.0);
}

TEST(Energy, RedhipReducesDynamicEnergyOnMissHeavyWorkloads) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scale = 32;
  spec.refs_per_core = 40'000;
  spec.scheme = Scheme::kBase;
  const SimResult base = run_spec(spec);
  spec.scheme = Scheme::kRedhip;
  const SimResult redhip = run_spec(spec);
  const Comparison cmp = compare(base, redhip);
  EXPECT_LT(cmp.dyn_energy_ratio, 0.9);
  EXPECT_GT(cmp.speedup, 1.0);
}

TEST(Config, ValidateCatchesBadSetups) {
  HierarchyConfig c = tiny_config(Scheme::kRedhip);
  c.redhip.table_bits = 64;  // p=6 <= k=7 violates the containment property
  EXPECT_THROW(c.validate(), std::logic_error);
  HierarchyConfig c2 = tiny_config(Scheme::kCbf, InclusionPolicy::kExclusive);
  EXPECT_THROW(c2.validate(), std::logic_error);
  HierarchyConfig c3 = tiny_config(Scheme::kBase);
  c3.prefetch = true;
  c3.inclusion = InclusionPolicy::kExclusive;
  EXPECT_THROW(c3.validate(), std::logic_error);
}

TEST(Config, ScaledPreservesStructuralInvariants) {
  for (std::uint32_t scale : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const HierarchyConfig c = HierarchyConfig::scaled(scale, Scheme::kRedhip);
    // p - k stays 6: one 64-bit PT line per LLC set at every scale.
    EXPECT_EQ(c.redhip.index_bits() - c.llc().geom.set_bits(), 6u)
        << "scale " << scale;
    // PT stays at the paper's 0.78% of LLC capacity.
    EXPECT_NEAR(static_cast<double>(c.redhip.table_bits / 8) /
                    static_cast<double>(c.llc().geom.size_bytes),
                0.0078, 0.0001);
  }
}

TEST(Config, PaperConfigMatchesTableI) {
  const HierarchyConfig c = HierarchyConfig::paper(Scheme::kRedhip);
  EXPECT_EQ(c.cores, 8u);
  EXPECT_EQ(c.levels[0].geom.size_bytes, 32_KiB);
  EXPECT_EQ(c.levels[3].geom.size_bytes, 64_MiB);
  EXPECT_EQ(c.levels[3].geom.ways, 16u);
  EXPECT_EQ(c.redhip.table_bits, std::uint64_t{1} << 22);
  EXPECT_EQ(c.redhip.recal_interval_l1_misses, 1'000'000u);
  EXPECT_EQ(c.cbf.index_bits, 20u);
}

}  // namespace
}  // namespace redhip
