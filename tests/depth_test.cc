// Tests for HierarchyConfig::with_depth — the 2..5-level machines behind
// the hierarchy-depth extension bench.
#include <gtest/gtest.h>

#include "harness/run.h"
#include "sim/simulator.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

TEST(Depth, ShapesAreAsSpecified) {
  for (std::uint32_t d = 2; d <= 5; ++d) {
    const HierarchyConfig c =
        HierarchyConfig::with_depth(d, 8, Scheme::kRedhip);
    EXPECT_EQ(c.num_levels(), d);
    EXPECT_EQ(c.levels[0].geom.size_bytes, 32_KiB / 8) << "L1 fixed";
    // PT keeps the paper's area ratio against the actual LLC.
    EXPECT_NEAR(static_cast<double>(c.redhip.table_bits / 8) /
                    static_cast<double>(c.llc().geom.size_bytes),
                0.0078, 0.0001);
    EXPECT_GT(c.redhip.index_bits(), c.llc().geom.set_bits());
  }
}

TEST(Depth, RejectsUnsupportedDepths) {
  EXPECT_THROW(HierarchyConfig::with_depth(1, 8, Scheme::kBase),
               std::logic_error);
  EXPECT_THROW(HierarchyConfig::with_depth(6, 8, Scheme::kBase),
               std::logic_error);
}

TEST(Depth, FiveLevelLlcIsLargerAndSlower) {
  const HierarchyConfig four = HierarchyConfig::with_depth(4, 8, Scheme::kBase);
  const HierarchyConfig five = HierarchyConfig::with_depth(5, 8, Scheme::kBase);
  EXPECT_GT(five.llc().geom.size_bytes, four.llc().geom.size_bytes);
  EXPECT_GT(five.llc().energy.data_delay, four.llc().energy.data_delay);
  EXPECT_GT(five.llc().energy.data_energy_nj,
            four.llc().energy.data_energy_nj);
}

SimResult run_depth(std::uint32_t depth, Scheme scheme) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = scheme;
  spec.scale = 32;
  spec.refs_per_core = 25'000;
  spec.tweak = [depth](HierarchyConfig& c) {
    c = HierarchyConfig::with_depth(depth, 32, c.scheme);
  };
  return spec.tweak ? run_spec(spec) : SimResult{};
}

TEST(Depth, SimulatorRunsAtEveryDepth) {
  for (std::uint32_t d = 2; d <= 5; ++d) {
    const SimResult r = run_depth(d, Scheme::kRedhip);
    EXPECT_EQ(r.levels.size(), d) << "depth " << d;
    EXPECT_EQ(r.total_refs, 8u * 25'000u);
    EXPECT_GT(r.predictor.predicted_absent, 0u);
    // Universal identity holds at every depth.
    std::uint64_t lower_hits = 0;
    for (std::size_t lvl = 1; lvl < r.levels.size(); ++lvl) {
      lower_hits += r.levels[lvl].hits;
    }
    EXPECT_EQ(r.demand_memory_accesses, r.levels[0].misses - lower_hits);
  }
}

TEST(Depth, DeeperHierarchiesMakeBypassesWorthMore) {
  // The paper's motivating trend, measured end-to-end: ReDHiP's energy
  // saving on a miss-heavy workload grows with hierarchy depth.
  double prev_saving = -1.0;
  for (std::uint32_t d : {2u, 4u}) {
    const SimResult base = run_depth(d, Scheme::kBase);
    const SimResult red = run_depth(d, Scheme::kRedhip);
    const double saving = 1.0 - compare(base, red).dyn_energy_ratio;
    EXPECT_GT(saving, prev_saving) << "depth " << d;
    prev_saving = saving;
  }
}

}  // namespace
}  // namespace redhip
