// Statistical sanity tests on the synthetic workloads: the properties the
// calibration relies on (address discipline, write fractions, PC stability,
// working-set footprints) hold for every benchmark and scale.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/mem_ref.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

struct Stats {
  std::uint64_t refs = 0;
  std::uint64_t writes = 0;
  std::set<LineAddr> lines;
  std::set<std::uint32_t> pcs;
  double gap_sum = 0;
};

Stats collect(BenchmarkId id, CoreId core, std::uint32_t scale,
              std::uint64_t n, std::uint64_t seed = 7) {
  auto src = make_workload(id, core, scale, seed);
  Stats s;
  MemRef m;
  for (std::uint64_t i = 0; i < n && src->next(m); ++i) {
    ++s.refs;
    s.writes += m.is_write;
    s.lines.insert(m.addr >> kDefaultLineShift);
    s.pcs.insert(m.pc);
    s.gap_sum += m.gap;
  }
  return s;
}

class WorkloadStats : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(WorkloadStats, WriteFractionIsRealistic) {
  const Stats s = collect(GetParam(), 0, 16, 60'000);
  const double wf = static_cast<double>(s.writes) / s.refs;
  EXPECT_GT(wf, 0.01) << "every application writes something";
  EXPECT_LT(wf, 0.55) << "reads dominate real memory traffic";
}

TEST_P(WorkloadStats, PcSetIsSmallAndStable) {
  // A handful of instruction sites per kernel, as real loops have — this is
  // what the PC-indexed stride prefetcher keys on.
  const Stats s = collect(GetParam(), 0, 16, 60'000);
  EXPECT_GE(s.pcs.size(), 2u);
  EXPECT_LE(s.pcs.size(), 64u);
}

TEST_P(WorkloadStats, FootprintScalesDownWithScale) {
  if (GetParam() == BenchmarkId::kLbm) {
    // Pure streaming touches refs/16 lines regardless of region size until
    // the sweep wraps — no scale-dependent footprint inside a short window.
    GTEST_SKIP() << "streaming footprint is window-bound, not region-bound";
  }
  const Stats big = collect(GetParam(), 0, 8, 80'000);
  const Stats small = collect(GetParam(), 0, 64, 80'000);
  EXPECT_GT(big.lines.size(), small.lines.size())
      << "scale divisor must shrink the touched working set";
}

TEST_P(WorkloadStats, GapMeanTracksTheTraits) {
  const Stats s = collect(GetParam(), 3, 16, 40'000);
  const BenchmarkId effective = GetParam() == BenchmarkId::kMix
                                    ? spec_benchmarks()[3]
                                    : GetParam();
  EXPECT_NEAR(s.gap_sum / static_cast<double>(s.refs),
              static_cast<double>(traits_of(effective).gap_mean), 0.3);
}

TEST_P(WorkloadStats, AddressesStayInTheCoreAsid) {
  auto src = make_workload(GetParam(), 5, 16, 9);
  MemRef m;
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(src->next(m));
    ASSERT_EQ(m.addr >> 40, 6u) << "core 5's ASID is (5+1)";
  }
}

TEST_P(WorkloadStats, CoresAreDecorrelatedInTheLowBits) {
  // The jitter property behind the bits-hash fidelity fix (DESIGN.md
  // "Modeling decisions" #3): two cores running the same profile must not
  // walk the same low-address-bit sequence in lockstep.
  auto a = make_workload(GetParam(), 0, 16, 9);
  auto b = make_workload(GetParam(), 1, 16, 9);
  MemRef ma, mb;
  const std::uint64_t mask = (1ull << 28) - 1;  // below the ASID, above lines
  int collisions = 0;
  const int kN = 5'000;
  for (int i = 0; i < kN; ++i) {
    a->next(ma);
    b->next(mb);
    collisions += ((ma.addr & mask) == (mb.addr & mask));
  }
  EXPECT_LT(collisions, kN / 20)
      << "lockstep low-bit aliasing would fabricate PT false positives";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadStats,
                         ::testing::ValuesIn(all_benchmarks()),
                         [](const ::testing::TestParamInfo<BenchmarkId>& i) {
                           return to_string(i.param);
                         });

TEST(WorkloadStatsGlobal, FootprintOrderingMatchesTheSuiteNarrative) {
  // mcf's arena dwarfs cactusADM's grid at every scale (the paper picked
  // the suite to span small-to-huge working sets).
  const Stats mcf = collect(BenchmarkId::kMcf, 0, 16, 120'000);
  const Stats cactus = collect(BenchmarkId::kCactusADM, 0, 16, 120'000);
  EXPECT_GT(mcf.lines.size(), cactus.lines.size());
}

}  // namespace
}  // namespace redhip
