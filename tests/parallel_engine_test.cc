// The parallel bound-weave engine (run_parallel, src/sim/parallel.cc) must
// be bit-identical to the fast engine — same statistics, same event trace —
// for every configuration, at every thread count and window size.  These
// tests pin that contract across schemes, inclusion policies, feature
// masks, window-boundary edge cases, and a randomized property sweep; they
// also exercise the rollback machinery directly (a config chosen to force
// back-invalidation conflicts) and the weave-only fallback (fault
// injection, non-self-contained replacement state).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/run.h"
#include "sim/stats.h"

namespace redhip {
namespace {

RunSpec small_spec(BenchmarkId bench, Scheme scheme,
                   InclusionPolicy inclusion) {
  RunSpec spec;
  spec.bench = bench;
  spec.scheme = scheme;
  spec.inclusion = inclusion;
  spec.scale = 8;
  spec.refs_per_core = 20'000;
  spec.seed = 1234;
  return spec;
}

// Build the simulator for `spec` exactly as run_spec does, for tests that
// need MulticoreSimulator-level access (ParallelOptions::window_refs, the
// speculation/rollback diagnostics).
std::unique_ptr<MulticoreSimulator> make_sim(const RunSpec& spec) {
  HierarchyConfig config = resolved_config(spec);
  std::vector<std::unique_ptr<TraceSource>> traces;
  std::vector<std::uint32_t> cpis;
  for (CoreId c = 0; c < config.cores; ++c) {
    traces.push_back(make_workload(spec.bench, c, spec.scale, spec.seed));
    cpis.push_back(workload_cpi_centi(spec.bench, c));
  }
  return std::make_unique<MulticoreSimulator>(config, std::move(traces),
                                              std::move(cpis));
}

void expect_identical(const SimResult& fast, const SimResult& par,
                      const std::string& what) {
  EXPECT_TRUE(stats_identical(fast, par)) << what;
  // Spot-check load-bearing counters so a stats_identical bug can't
  // silently vacuously pass.
  EXPECT_EQ(fast.total_refs, par.total_refs) << what;
  EXPECT_EQ(fast.exec_cycles, par.exec_cycles) << what;
  EXPECT_GT(fast.total_refs, 0u) << what;
}

// Run the same spec through the fast and parallel engines and require
// bit-identical stats.
void expect_parallel_agrees(RunSpec spec, const std::string& what) {
  spec.engine = SimEngine::kFast;
  const SimResult fast = run_spec(spec);
  spec.engine = SimEngine::kParallel;
  const SimResult par = run_spec(spec);
  expect_identical(fast, par, what);
}

TEST(ParallelEngine, EverySchemeInclusive) {
  for (Scheme s : {Scheme::kBase, Scheme::kPhased, Scheme::kCbf,
                   Scheme::kRedhip, Scheme::kOracle, Scheme::kPartialTag}) {
    expect_parallel_agrees(
        small_spec(BenchmarkId::kMcf, s, InclusionPolicy::kInclusive),
        "inclusive " + to_string(s));
  }
}

TEST(ParallelEngine, ExclusiveAndHybrid) {
  for (InclusionPolicy p :
       {InclusionPolicy::kExclusive, InclusionPolicy::kHybrid}) {
    for (Scheme s : {Scheme::kBase, Scheme::kRedhip}) {
      expect_parallel_agrees(small_spec(BenchmarkId::kBlas, s, p),
                             to_string(p) + " " + to_string(s));
    }
  }
}

// Results must not depend on the worker-thread count — including the
// --threads=1 degenerate pool, where bound phases run inline on the weave
// thread.
TEST(ParallelEngine, ThreadCountNeverChangesResults) {
  RunSpec spec = small_spec(BenchmarkId::kBwaves, Scheme::kRedhip,
                            InclusionPolicy::kInclusive);
  spec.engine = SimEngine::kFast;
  const SimResult fast = run_spec(spec);
  spec.engine = SimEngine::kParallel;
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    spec.threads = threads;
    const SimResult par = run_spec(spec);
    expect_identical(fast, par, "threads=" + std::to_string(threads));
  }
}

// Every feature mask the fast engine specializes on: fault injection (which
// forces the parallel engine down the weave-only path), prefetching, and
// predictor auto-disable.
TEST(ParallelEngine, AllFeatureMasks) {
  for (int mask = 0; mask < 8; ++mask) {
    const bool fault = mask & 1;
    const bool prefetch = mask & 2;
    const bool auto_disable = mask & 4;
    RunSpec spec = small_spec(BenchmarkId::kMcf, Scheme::kRedhip,
                              InclusionPolicy::kInclusive);
    spec.prefetch = prefetch;
    spec.tweak = [fault, auto_disable](HierarchyConfig& config) {
      if (fault) {
        config.fault.enabled = true;
        config.fault.rate_per_mref = 2'000;  // dense enough to fire at 160k
        config.audit.enabled = true;
      }
      if (auto_disable) {
        config.auto_disable.enabled = true;
        config.auto_disable.epoch_refs = 5'000;  // several epochs per run
      }
    };
    expect_parallel_agrees(spec, "feature mask " + std::to_string(mask));
  }
}

// Degenerate and tiny speculation windows: window_refs=1 parks every lane
// after a single reference, so the weave phase carries the whole schedule;
// 2/3 exercise odd log lengths at every boundary.
TEST(ParallelEngine, TinySpeculationWindows) {
  RunSpec spec = small_spec(BenchmarkId::kAstar, Scheme::kRedhip,
                            InclusionPolicy::kInclusive);
  spec.refs_per_core = 10'000;
  const SimResult fast = make_sim(spec)->run(spec.refs_per_core);
  for (std::uint32_t window : {1u, 2u, 3u, 64u}) {
    auto sim = make_sim(spec);
    ParallelOptions po;
    po.window_refs = window;
    const SimResult par = sim->run_parallel(spec.refs_per_core, po);
    expect_identical(fast, par, "window=" + std::to_string(window));
    EXPECT_TRUE(sim->parallel_speculated_for_test())
        << "window=" << window;
  }
}

// Recalibration stalls landing exactly on (and inside) window boundaries:
// a tiny recalibration interval makes PT recals fire constantly, and
// window sizes 1..3 put a boundary at every possible alignment, so some
// recal necessarily coincides with a window edge.  The global stall offset
// must come out identical either way.
TEST(ParallelEngine, RecalOnWindowBoundary) {
  RunSpec spec = small_spec(BenchmarkId::kMcf, Scheme::kRedhip,
                            InclusionPolicy::kInclusive);
  spec.refs_per_core = 8'000;
  spec.tweak = [](HierarchyConfig& config) {
    config.redhip.recal_interval_l1_misses = 50;
  };
  const SimResult fast = make_sim(spec)->run(spec.refs_per_core);
  for (std::uint32_t window : {1u, 2u, 3u, 128u}) {
    auto sim = make_sim(spec);
    ParallelOptions po;
    po.window_refs = window;
    const SimResult par = sim->run_parallel(spec.refs_per_core, po);
    expect_identical(fast, par, "recal window=" + std::to_string(window));
  }
}

// Auto-disable epochs deliberately misaligned with the speculation window
// (epoch 777 refs vs window 512): the predictor toggles mid-window, so the
// epoch-splitting bulk commit has to cut speculated logs at interior epoch
// boundaries.
TEST(ParallelEngine, AutoDisableTogglesMidWindow) {
  RunSpec spec = small_spec(BenchmarkId::kBwaves, Scheme::kRedhip,
                            InclusionPolicy::kInclusive);
  spec.tweak = [](HierarchyConfig& config) {
    config.auto_disable.enabled = true;
    config.auto_disable.epoch_refs = 777;
  };
  const SimResult fast = make_sim(spec)->run(spec.refs_per_core);
  auto sim = make_sim(spec);
  ParallelOptions po;
  po.window_refs = 512;
  const SimResult par = sim->run_parallel(spec.refs_per_core, po);
  expect_identical(fast, par, "auto-disable mid-window");
}

// Emergency recalibration triggered by the invariant auditor (fault
// injection + RecoveryPolicy::kRecalibrate): faults force the weave-only
// path, and the auditor's unscheduled recal stalls must still match.
TEST(ParallelEngine, EmergencyRecalFromAuditor) {
  RunSpec spec = small_spec(BenchmarkId::kMcf, Scheme::kRedhip,
                            InclusionPolicy::kInclusive);
  spec.tweak = [](HierarchyConfig& config) {
    config.fault.enabled = true;
    config.fault.rate_per_mref = 5'000;
    config.audit.enabled = true;
    config.audit.policy = RecoveryPolicy::kRecalibrate;
  };
  spec.engine = SimEngine::kFast;
  const SimResult fast = run_spec(spec);
  auto sim = make_sim(spec);
  const SimResult par = sim->run_parallel(spec.refs_per_core);
  expect_identical(fast, par, "auditor emergency recal");
  // Fault injection perturbs speculated state invisibly, so the engine must
  // have refused to speculate.
  EXPECT_FALSE(sim->parallel_speculated_for_test());
}

// Force back-invalidation conflicts: an LLC barely bigger than one L1 under
// inclusion evicts L1-resident lines constantly, so speculated windows are
// repeatedly invalidated and rolled back.  The rollback path must replay to
// bit-identical results — and must actually run, or this test pins nothing.
TEST(ParallelEngine, RollbackStressBitIdentical) {
  RunSpec spec = small_spec(BenchmarkId::kMcf, Scheme::kBase,
                            InclusionPolicy::kInclusive);
  spec.refs_per_core = 15'000;
  spec.tweak = [](HierarchyConfig& config) {
    CacheGeometry& llc = config.levels.back().geom;
    llc.size_bytes = config.levels.front().geom.size_bytes * 2;
  };
  const SimResult fast = make_sim(spec)->run(spec.refs_per_core);
  auto sim = make_sim(spec);
  ParallelOptions po;
  po.window_refs = 4'096;
  const SimResult par = sim->run_parallel(spec.refs_per_core, po);
  expect_identical(fast, par, "rollback stress");
  EXPECT_TRUE(sim->parallel_speculated_for_test());
  EXPECT_GT(sim->parallel_rollbacks_for_test(), 0u);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

// The JSONL event trace must be byte-identical between engines for every
// feature mask — the observability stream is part of the bit-identity
// contract, not just the final counters.
TEST(ParallelEngine, EventTraceByteIdenticalAllMasks) {
  const std::string dir = testing::TempDir();
  for (int mask = 0; mask < 8; ++mask) {
    const bool fault = mask & 1;
    const bool prefetch = mask & 2;
    const bool auto_disable = mask & 4;
    RunSpec spec = small_spec(BenchmarkId::kMcf, Scheme::kRedhip,
                              InclusionPolicy::kInclusive);
    spec.refs_per_core = 10'000;
    spec.prefetch = prefetch;
    const std::string fast_path =
        dir + "/par_trace_fast_" + std::to_string(mask) + ".jsonl";
    const std::string par_path =
        dir + "/par_trace_par_" + std::to_string(mask) + ".jsonl";
    auto tweak = [fault, auto_disable](HierarchyConfig& config,
                                       const std::string& path) {
      if (fault) {
        config.fault.enabled = true;
        config.fault.rate_per_mref = 2'000;
        config.audit.enabled = true;
      }
      if (auto_disable) {
        config.auto_disable.enabled = true;
        config.auto_disable.epoch_refs = 3'000;
      }
      config.obs.enabled = true;
      config.obs.epoch_refs = 2'048;
      config.obs.trace_path = path;
    };
    spec.engine = SimEngine::kFast;
    spec.tweak = [&](HierarchyConfig& c) { tweak(c, fast_path); };
    const SimResult fast = run_spec(spec);
    spec.engine = SimEngine::kParallel;
    spec.tweak = [&](HierarchyConfig& c) { tweak(c, par_path); };
    const SimResult par = run_spec(spec);
    expect_identical(fast, par, "trace mask " + std::to_string(mask));
    const std::string fast_bytes = slurp(fast_path);
    EXPECT_FALSE(fast_bytes.empty()) << "mask " << mask;
    EXPECT_EQ(fast_bytes, slurp(par_path)) << "trace mask " << mask;
  }
}

// Randomized property test: any sampled (workload, scheme, inclusion,
// feature mask, window, threads, length, seed) point must agree between
// the engines.  rng() is consumed directly (not through distributions) so
// the sampled points are identical on every platform.
TEST(ParallelEngine, RandomizedPropertyAgreement) {
  std::mt19937_64 rng(0x5eed'0051ULL);
  const BenchmarkId benches[] = {BenchmarkId::kMcf, BenchmarkId::kBwaves,
                                 BenchmarkId::kBlas, BenchmarkId::kAstar,
                                 BenchmarkId::kPmf};
  const Scheme schemes[] = {Scheme::kBase, Scheme::kPhased, Scheme::kCbf,
                            Scheme::kRedhip, Scheme::kPartialTag};
  const InclusionPolicy policies[] = {InclusionPolicy::kInclusive,
                                      InclusionPolicy::kExclusive,
                                      InclusionPolicy::kHybrid};
  for (int iter = 0; iter < 6; ++iter) {
    RunSpec spec;
    spec.bench = benches[rng() % 5];
    spec.scheme = schemes[rng() % 5];
    spec.inclusion = policies[rng() % 3];
    spec.scale = 8;
    spec.refs_per_core = 5'000 + rng() % 10'000;
    spec.seed = rng();
    // Respect the config layer's modeled-combination rules: exclusive
    // hierarchies support Base/ReDHiP only (of the schemes sampled here)
    // and no auto-disable; prefetching is inclusive-only; PT fault sites
    // need the ReDHiP predictor.
    if (spec.inclusion == InclusionPolicy::kExclusive &&
        spec.scheme != Scheme::kBase && spec.scheme != Scheme::kRedhip) {
      spec.scheme = Scheme::kRedhip;
    }
    spec.prefetch = (rng() % 2) != 0 &&
                    spec.inclusion == InclusionPolicy::kInclusive;
    const bool fault = (rng() % 2) != 0 && spec.scheme == Scheme::kRedhip &&
                       spec.inclusion != InclusionPolicy::kExclusive;
    const bool auto_disable = (rng() % 2) != 0 &&
                              spec.inclusion != InclusionPolicy::kExclusive;
    const std::uint64_t epoch = 2'000 + rng() % 6'000;
    spec.tweak = [fault, auto_disable, epoch](HierarchyConfig& config) {
      if (fault) {
        config.fault.enabled = true;
        config.fault.rate_per_mref = 3'000;
        config.audit.enabled = true;
      }
      if (auto_disable) {
        config.auto_disable.enabled = true;
        config.auto_disable.epoch_refs = epoch;
      }
    };
    const SimResult fast = make_sim(spec)->run(spec.refs_per_core);
    auto sim = make_sim(spec);
    ParallelOptions po;
    po.threads = 1 + static_cast<std::uint32_t>(rng() % 4);
    po.window_refs = 16u << (rng() % 9);  // 16 .. 4096
    const SimResult par = sim->run_parallel(spec.refs_per_core, po);
    std::ostringstream what;
    what << "iter " << iter << ": " << to_string(spec.bench) << " "
         << to_string(spec.scheme) << " " << to_string(spec.inclusion)
         << " refs=" << spec.refs_per_core << " seed=" << spec.seed
         << " prefetch=" << spec.prefetch << " fault=" << fault
         << " auto_disable=" << auto_disable
         << " threads=" << po.threads << " window=" << po.window_refs;
    expect_identical(fast, par, what.str());
  }
}

// The scheduling-cost estimate must weight run length and scale, not just
// the per-reference cost — a scale-1 heavyweight or a long run must sort
// ahead of a short scale-8 one (the bug this fixed: sweeps ordered on the
// per-reference cost alone, leaving scale-1 stragglers last).
TEST(ParallelEngine, RunCostOrdersByScaleAndLength) {
  RunSpec spec = small_spec(BenchmarkId::kMcf, Scheme::kBase,
                            InclusionPolicy::kInclusive);
  spec.refs_per_core = 100'000;

  RunSpec big_scale = spec;
  big_scale.scale = 1;
  EXPECT_GT(estimated_run_cost(big_scale), estimated_run_cost(spec));

  RunSpec long_run = spec;
  long_run.refs_per_core = 1'000'000;
  EXPECT_GT(estimated_run_cost(long_run), estimated_run_cost(spec));

  // The per-reference ordering still shows through at equal scale/length.
  RunSpec predictor = spec;
  predictor.scheme = Scheme::kRedhip;
  EXPECT_GT(estimated_run_cost(predictor), estimated_run_cost(spec));
}

// queue_wait_seconds is host-side telemetry: run_matrix fills it, and like
// host_seconds it must never participate in the bit-identity contract.
TEST(ParallelEngine, QueueWaitIsHostSideOnly) {
  ExperimentOptions opts;
  opts.scale = 8;
  opts.refs_per_core = 2'000;
  opts.jobs = 1;
  opts.benches = {BenchmarkId::kBlas};
  std::vector<SchemeColumn> columns(1);
  columns[0].label = "base";
  columns[0].scheme = Scheme::kBase;
  const auto results = run_matrix(opts, columns);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].size(), 1u);
  EXPECT_GE(results[0][0].queue_wait_seconds, 0.0);

  SimResult a = results[0][0];
  SimResult b = a;
  b.queue_wait_seconds = a.queue_wait_seconds + 123.0;
  EXPECT_TRUE(stats_identical(a, b));
}

}  // namespace
}  // namespace redhip
