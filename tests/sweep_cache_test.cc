// The on-disk result cache behind resumable sweeps: the payload codec
// round-trips every simulated field, every corruption mode is detected (and
// reported as DATA_LOSS, never a wrong result), and a resumed sweep
// re-simulates exactly the missing cells.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/run.h"
#include "sweep/config_digest.h"
#include "sweep/result_cache.h"
#include "sweep/sweep.h"

namespace redhip {
namespace {

namespace fs = std::filesystem;

// A fresh directory per test, removed on teardown; the pid keeps parallel
// ctest invocations of this binary apart.
class SweepCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("redhip-sweep-cache-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

RunSpec tiny_spec(BenchmarkId bench = BenchmarkId::kMcf) {
  RunSpec spec;
  spec.bench = bench;
  spec.scale = 32;
  spec.refs_per_core = 2'000;
  return spec;
}

// A real result with every family of field populated (fault injection on,
// epoch sampling on) so the codec has something nontrivial to round-trip.
SimResult rich_result() {
  RunSpec spec = tiny_spec();
  spec.scheme = Scheme::kRedhip;
  chain_tweak(spec, [](HierarchyConfig& c) {
    c.obs.enabled = true;
    c.obs.epoch_refs = 500;
    c.fault.enabled = true;
    c.fault.rate_per_mref = 5'000;
  });
  return run_spec(spec);
}

TEST_F(SweepCacheTest, PayloadRoundTripsEveryStatsField) {
  const SimResult r = rich_result();
  ASSERT_FALSE(r.epochs.empty());  // the codec's hardest field
  ASSERT_GT(r.fault.injected_total(), 0u);
  Result<SimResult> back = deserialize_result(serialize_result(r));
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(stats_identical(r, back.value()));
  EXPECT_DOUBLE_EQ(back.value().elapsed_seconds, r.elapsed_seconds);
}

TEST_F(SweepCacheTest, TruncatedPayloadIsDataLoss) {
  const std::string payload = serialize_result(rich_result());
  for (std::size_t keep : {std::size_t{0}, std::size_t{4},
                           payload.size() / 2, payload.size() - 1}) {
    Result<SimResult> r = deserialize_result(payload.substr(0, keep));
    ASSERT_FALSE(r.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  }
}

TEST_F(SweepCacheTest, StoreThenLoadIsIdentical) {
  const ResultCache cache(dir_);
  const SimResult r = rich_result();
  const std::uint64_t key = 0x1234'5678'9abc'def0ull;
  ASSERT_TRUE(cache.store(key, r).ok());
  Result<SimResult> back = cache.load(key);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_TRUE(stats_identical(r, back.value()));
  // No stray temp files after a completed store.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".rdc") << e.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(SweepCacheTest, MissingEntryIsNotFound) {
  const ResultCache cache(dir_);
  Result<SimResult> r = cache.load(42);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SweepCacheTest, EveryFlippedByteIsDetected) {
  const ResultCache cache(dir_);
  const std::uint64_t key = 7;
  ASSERT_TRUE(cache.store(key, rich_result()).ok());
  const fs::path path = cache.entry_path(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Flip one byte in each region: magic, version, key, length, payload,
  // checksum.
  for (std::size_t pos : {std::size_t{0}, std::size_t{9}, std::size_t{13},
                          std::size_t{21}, std::size_t{40},
                          bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    Result<SimResult> r = cache.load(key);
    ASSERT_FALSE(r.ok()) << "flip at byte " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "byte " << pos;
  }
  // Truncation too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  Result<SimResult> r = cache.load(key);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST_F(SweepCacheTest, WrongKeysEntryIsDataLossNotWrongResult) {
  // An entry renamed to another key's file name (cross-linked cache) must
  // fail the embedded-key check rather than satisfy the other key.
  const ResultCache cache(dir_);
  ASSERT_TRUE(cache.store(1, rich_result()).ok());
  fs::rename(cache.entry_path(1), cache.entry_path(2));
  Result<SimResult> r = cache.load(2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

SweepSpec four_cell_spec() {
  SweepSpec spec;
  spec.base = tiny_spec();
  spec.axes.push_back(
      {"workload",
       {{"mcf", [](RunSpec& s) { s.bench = BenchmarkId::kMcf; }},
        {"astar", [](RunSpec& s) { s.bench = BenchmarkId::kAstar; }}}});
  spec.axes.push_back(
      {"scheme",
       {{"Base", [](RunSpec& s) { s.scheme = Scheme::kBase; }},
        {"ReDHiP", [](RunSpec& s) { s.scheme = Scheme::kRedhip; }}}});
  return spec;
}

TEST_F(SweepCacheTest, WarmRerunSimulatesNothing) {
  SweepRunOptions opt;
  opt.cache_dir = dir_.string();
  const SweepOutcome cold = run_sweep(four_cell_spec(), opt);
  EXPECT_EQ(cold.stats.cells, 4u);
  EXPECT_EQ(cold.stats.simulated, 4u);
  EXPECT_EQ(cold.stats.cache_hits, 0u);

  const SweepOutcome warm = run_sweep(four_cell_spec(), opt);
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.cache_hits, 4u);
  for (std::size_t i = 0; i < warm.cells.size(); ++i) {
    EXPECT_TRUE(warm.cells[i].from_cache);
    EXPECT_TRUE(stats_identical(cold.cells[i].result, warm.cells[i].result));
  }
}

TEST_F(SweepCacheTest, ResumeSimulatesOnlyTheMissingCells) {
  SweepRunOptions opt;
  opt.cache_dir = dir_.string();
  const SweepOutcome cold = run_sweep(four_cell_spec(), opt);

  // An aborted sweep: two of four entries survive.
  ResultCache cache(dir_);
  cache.discard(cold.cells[1].key);
  cache.discard(cold.cells[2].key);

  const SweepOutcome resumed = run_sweep(four_cell_spec(), opt);
  EXPECT_EQ(resumed.stats.simulated, 2u);
  EXPECT_EQ(resumed.stats.cache_hits, 2u);
  EXPECT_TRUE(resumed.cells[0].from_cache);
  EXPECT_FALSE(resumed.cells[1].from_cache);
  EXPECT_FALSE(resumed.cells[2].from_cache);
  EXPECT_TRUE(resumed.cells[3].from_cache);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        stats_identical(cold.cells[i].result, resumed.cells[i].result));
  }
}

TEST_F(SweepCacheTest, CorruptEntryIsEvictedAndResimulated) {
  SweepRunOptions opt;
  opt.cache_dir = dir_.string();
  const SweepOutcome cold = run_sweep(four_cell_spec(), opt);

  const ResultCache cache(dir_);
  const fs::path victim = cache.entry_path(cold.cells[0].key);
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << "not a cache entry";
  }

  const SweepOutcome again = run_sweep(four_cell_spec(), opt);
  EXPECT_EQ(again.stats.simulated, 1u);
  EXPECT_EQ(again.stats.cache_hits, 3u);
  EXPECT_TRUE(stats_identical(cold.cells[0].result, again.cells[0].result));
  // And the rewritten entry is good again.
  EXPECT_TRUE(cache.load(cold.cells[0].key).ok());
}

TEST_F(SweepCacheTest, ResumeOffIgnoresButRefreshesTheCache) {
  SweepRunOptions opt;
  opt.cache_dir = dir_.string();
  run_sweep(four_cell_spec(), opt);

  opt.resume = false;
  const SweepOutcome fresh = run_sweep(four_cell_spec(), opt);
  EXPECT_EQ(fresh.stats.simulated, 4u);
  EXPECT_EQ(fresh.stats.cache_hits, 0u);

  opt.resume = true;
  const SweepOutcome warm = run_sweep(four_cell_spec(), opt);
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.cache_hits, 4u);
}

}  // namespace
}  // namespace redhip
