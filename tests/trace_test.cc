// Tests for src/trace: kernels' address discipline, workload determinism,
// trace file round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/kernels.h"
#include "trace/mem_ref.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

// ------------------------------------------------------------------ kernels

TEST(StreamKernel, StaysInRegionAndAdvancesSequentially) {
  Region r{0x1000, 64_KiB};
  StreamKernel k(r, /*streams=*/2, /*stride=*/8, /*write_ppm=*/0, 0x100, 1);
  MemRef m;
  Addr prev[2] = {0, 0};
  for (int i = 0; i < 10'000; ++i) {
    k.next(m);
    ASSERT_GE(m.addr, r.base);
    ASSERT_LT(m.addr, r.base + r.bytes);
    const int s = i % 2;
    if (prev[s] != 0 && m.addr > prev[s]) {
      ASSERT_EQ(m.addr - prev[s], 8u) << "stride must be constant";
    }
    prev[s] = m.addr;
    EXPECT_FALSE(m.is_write);
  }
}

TEST(StreamKernel, WriteFractionApproximatesPpm) {
  Region r{0, 64_KiB};
  StreamKernel k(r, 1, 8, /*write_ppm=*/300'000, 0, 3);
  MemRef m;
  int writes = 0;
  const int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    k.next(m);
    writes += m.is_write;
  }
  EXPECT_NEAR(static_cast<double>(writes) / kN, 0.3, 0.02);
}

TEST(StreamKernel, DistinctPcPerStream) {
  Region r{0, 64_KiB};
  StreamKernel k(r, 4, 8, 0, 0x500, 9);
  MemRef m;
  std::set<std::uint32_t> pcs;
  for (int i = 0; i < 16; ++i) {
    k.next(m);
    pcs.insert(m.pc);
  }
  EXPECT_EQ(pcs.size(), 4u);
}

TEST(StencilKernel, EmitsSevenReadsThenOneWritePerCell) {
  Region r{0x4000, 1_MiB};
  StencilKernel k(r, 16, 16, 16, 0x200);
  MemRef m;
  for (int cell = 0; cell < 50; ++cell) {
    for (int p = 0; p < 7; ++p) {
      k.next(m);
      ASSERT_FALSE(m.is_write) << "point " << p;
      ASSERT_GE(m.addr, r.base);
      ASSERT_LT(m.addr, r.base + r.bytes);
    }
    k.next(m);
    ASSERT_TRUE(m.is_write);
  }
}

TEST(StencilKernel, NeighbourOffsetsMatchGrid) {
  Region r{0, 1_MiB};
  const std::uint64_t nx = 16, ny = 16;
  StencilKernel k(r, nx, ny, 16, 0);
  MemRef m;
  // Advance into the interior so no wrapping occurs (cell 1000).
  for (int i = 0; i < 1000 * 8; ++i) k.next(m);
  Addr addrs[8];
  for (int p = 0; p < 8; ++p) {
    k.next(m);
    addrs[p] = m.addr;
  }
  const Addr center = addrs[3];
  EXPECT_EQ(addrs[2], center - 8);                 // -x
  EXPECT_EQ(addrs[4], center + 8);                 // +x
  EXPECT_EQ(addrs[1], center - nx * 8);            // -y
  EXPECT_EQ(addrs[5], center + nx * 8);            // +y
  EXPECT_EQ(addrs[0], center - nx * ny * 8);       // -z
  EXPECT_EQ(addrs[6], center + nx * ny * 8);       // +z
  EXPECT_EQ(addrs[7], center);                     // write-back
}

TEST(PointerChase, VisitsManyDistinctLinesWithoutQuickRepeats) {
  Region r{0x10000, 1_MiB};
  PointerChaseKernel k(r, /*payload_lines=*/0, 0, 0x300, 5);
  MemRef m;
  std::set<Addr> seen;
  for (int i = 0; i < 4096; ++i) {
    k.next(m);
    ASSERT_GE(m.addr, r.base);
    ASSERT_LT(m.addr, r.base + r.bytes);
    seen.insert(m.addr);
  }
  // Full-period LCG: the first `lines` steps are all distinct.
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(PointerChase, PayloadFollowsNodeSequentially) {
  Region r{0, 1_MiB};
  PointerChaseKernel k(r, /*payload_lines=*/2, 0, 0x300, 5);
  MemRef node, p1, p2;
  k.next(node);
  k.next(p1);
  k.next(p2);
  EXPECT_EQ(p1.pc, node.pc + 1);
  EXPECT_EQ(p1.addr - node.addr, 8u) << "payload reads are element-granular";
  EXPECT_EQ(p2.addr - p1.addr, 8u);
  // Two payload lines = 16 element reads before the next pointer hop.
  MemRef m;
  for (int i = 0; i < 14; ++i) {
    k.next(m);
    ASSERT_EQ(m.pc, node.pc + 1);
  }
  k.next(m);
  EXPECT_EQ(m.pc, node.pc);
}

TEST(SparseGather, CyclesThroughIndexGatherResultPhases) {
  SparseGatherKernel k(Region{0x100000, 64_KiB}, Region{0x200000, 1_MiB},
                       Region{0x300000, 64_KiB}, /*gathers=*/2, 100'000,
                       500'000, 0x400, 11);
  MemRef m;
  for (int rep = 0; rep < 100; ++rep) {
    k.next(m);  // index read
    ASSERT_GE(m.addr, 0x100000u);
    ASSERT_LT(m.addr, 0x100000u + 64_KiB);
    ASSERT_FALSE(m.is_write);
    for (int g = 0; g < 2; ++g) {
      k.next(m);  // gather
      ASSERT_GE(m.addr, 0x200000u);
      ASSERT_LT(m.addr, 0x200000u + 1_MiB);
      ASSERT_FALSE(m.is_write);
    }
    k.next(m);  // result write
    ASSERT_GE(m.addr, 0x300000u);
    ASSERT_TRUE(m.is_write);
  }
}

TEST(BfsKernel, AllAddressesLandInOwnedRegions) {
  const Region f{0x1000000, 64_KiB}, e{0x2000000, 1_MiB}, v{0x3000000, 64_KiB};
  BfsKernel k(f, e, v, 8, /*visited_zipf_k=*/3, 0x600, 13);
  MemRef m;
  for (int i = 0; i < 20'000; ++i) {
    k.next(m);
    const bool in_f = m.addr >= f.base && m.addr < f.base + f.bytes;
    const bool in_e = m.addr >= e.base && m.addr < e.base + e.bytes;
    const bool in_v = m.addr >= v.base && m.addr < v.base + v.bytes;
    ASSERT_TRUE(in_f || in_e || in_v);
    if (m.is_write) {
      ASSERT_TRUE(in_v) << "only visited-map accesses write";
    }
  }
}

TEST(SgdKernel, ReadsRowsThenWritesThemBack) {
  const Region u{0x1000000, 1_MiB}, it{0x2000000, 1_MiB};
  SgdKernel k(u, it, /*row_bytes=*/64, 0x700, 17);
  MemRef m;
  // Phase structure: 8 user reads, 8 item reads, 8 user writes, 8 item
  // writes per (user,item) sample (64-byte rows of 8-byte elements).
  for (int i = 0; i < 8; ++i) {
    k.next(m);
    ASSERT_FALSE(m.is_write);
    ASSERT_GE(m.addr, u.base);
    ASSERT_LT(m.addr, u.base + u.bytes);
  }
  for (int i = 0; i < 8; ++i) {
    k.next(m);
    ASSERT_FALSE(m.is_write);
    ASSERT_GE(m.addr, it.base);
  }
  for (int i = 0; i < 8; ++i) {
    k.next(m);
    ASSERT_TRUE(m.is_write);
    ASSERT_GE(m.addr, u.base);
    ASSERT_LT(m.addr, u.base + u.bytes);
  }
  for (int i = 0; i < 8; ++i) {
    k.next(m);
    ASSERT_TRUE(m.is_write);
    ASSERT_GE(m.addr, it.base);
  }
}

TEST(HotCold, MostAccessesHitTheHotPrefix) {
  Region r{0x5000000, 4_MiB};
  HotColdKernel k(r, /*hot_fraction_ppm=*/10'000, /*hot_access_ppm=*/900'000,
                  /*burst_mean=*/1, /*write_ppm=*/0, 0x800, 19);
  MemRef m;
  const Addr hot_end = r.base + (4_MiB / 100) ;  // hot = 1% of region
  int hot = 0;
  const int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    k.next(m);
    ASSERT_GE(m.addr, r.base);
    ASSERT_LT(m.addr, r.base + r.bytes);
    if (m.addr < hot_end + 64) ++hot;
  }
  EXPECT_GT(static_cast<double>(hot) / kN, 0.7);
}

// ---------------------------------------------------------------- workloads

TEST(Workloads, AllBenchmarksProduceRefs) {
  for (BenchmarkId id : all_benchmarks()) {
    auto src = make_workload(id, /*core=*/0, /*scale=*/32, /*seed=*/1);
    MemRef m;
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(src->next(m)) << to_string(id);
      ASSERT_NE(m.addr, 0u) << to_string(id);
    }
  }
}

TEST(Workloads, DeterministicAcrossInstances) {
  for (BenchmarkId id : {BenchmarkId::kMcf, BenchmarkId::kBlas,
                         BenchmarkId::kMix}) {
    auto a = make_workload(id, 2, 16, 99);
    auto b = make_workload(id, 2, 16, 99);
    MemRef ma, mb;
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(a->next(ma));
      ASSERT_TRUE(b->next(mb));
      ASSERT_EQ(ma, mb) << to_string(id) << " diverged at ref " << i;
    }
  }
}

TEST(Workloads, SeedChangesTheStream) {
  auto a = make_workload(BenchmarkId::kMcf, 0, 16, 1);
  auto b = make_workload(BenchmarkId::kMcf, 0, 16, 2);
  MemRef ma, mb;
  int diff = 0;
  for (int i = 0; i < 1000; ++i) {
    a->next(ma);
    b->next(mb);
    diff += (ma.addr != mb.addr);
  }
  EXPECT_GT(diff, 0);
}

TEST(Workloads, CoresUseDisjointAddressSpaces) {
  auto a = make_workload(BenchmarkId::kLbm, 0, 16, 1);
  auto b = make_workload(BenchmarkId::kLbm, 5, 16, 1);
  MemRef m;
  std::set<Addr> space_a, space_b;
  for (int i = 0; i < 2000; ++i) {
    a->next(m);
    space_a.insert(m.addr >> 40);
    b->next(m);
    space_b.insert(m.addr >> 40);
  }
  for (Addr tag : space_a) EXPECT_EQ(space_b.count(tag), 0u);
}

TEST(Workloads, MixAssignsDifferentProfilesPerCore) {
  // Core c of kMix runs the c-th SPEC profile; its CPI must match.
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(workload_cpi_centi(BenchmarkId::kMix, c),
              traits_of(spec_benchmarks()[c]).cpi_centi);
  }
}

TEST(Workloads, GapsAreBoundedAroundTheMean) {
  auto src = make_workload(BenchmarkId::kAstar, 0, 16, 7);
  const std::uint32_t mean = traits_of(BenchmarkId::kAstar).gap_mean;
  MemRef m;
  double sum = 0;
  const int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    src->next(m);
    ASSERT_GE(m.gap, mean - mean / 2);
    ASSERT_LE(m.gap, mean + mean / 2);
    sum += m.gap;
  }
  EXPECT_NEAR(sum / kN, static_cast<double>(mean), 0.25);
}

TEST(Workloads, AllBenchmarksListedOnce) {
  EXPECT_EQ(all_benchmarks().size(), 11u);
  EXPECT_EQ(spec_benchmarks().size(), 8u);
  std::set<std::string> names;
  for (BenchmarkId id : all_benchmarks()) names.insert(to_string(id));
  EXPECT_EQ(names.size(), 11u);
}

// ----------------------------------------------------------------- trace IO

TEST(TraceIo, RoundTripsRecords) {
  const std::string path = ::testing::TempDir() + "/roundtrip.trace";
  std::vector<MemRef> refs;
  Xoshiro256 rng(23);
  for (int i = 0; i < 1000; ++i) {
    refs.push_back(MemRef{rng.next(), static_cast<std::uint32_t>(rng.next()),
                          static_cast<std::uint16_t>(rng.below(100)),
                          rng.chance_ppm(500'000)});
  }
  {
    TraceWriter w(path);
    for (const auto& r : refs) w.append(r);
    w.finish();
    EXPECT_EQ(w.records_written(), refs.size());
  }
  FileTraceSource src(path);
  EXPECT_EQ(src.record_count(), refs.size());
  MemRef m;
  for (const auto& expected : refs) {
    ASSERT_TRUE(src.next(m));
    ASSERT_EQ(m, expected);
  }
  EXPECT_FALSE(src.next(m));
  std::remove(path.c_str());
}

// Writes `bytes` raw bytes to a fresh file and returns its path.
std::string write_raw(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return path;
}

// A syntactically valid header claiming `count` records.
std::string header_bytes(std::uint64_t count) {
  std::string h(24, '\0');
  std::memcpy(h.data(), kTraceMagic, 8);
  std::memcpy(h.data() + 8, &count, 8);
  return h;
}

TEST(TraceIo, RejectsBadMagic) {
  const std::string path =
      write_raw("bad.trace", "NOTATRACE-HEADER-24bytes");
  EXPECT_THROW(FileTraceSource{path}, std::runtime_error);
  auto r = FileTraceSource::open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("bad magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(FileTraceSource{"/nonexistent/path.trace"}, std::runtime_error);
  auto r = FileTraceSource::open("/nonexistent/path.trace");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TraceIo, RejectsTruncatedHeader) {
  const std::string path = write_raw("shorthdr.trace", "REDHIPT1\x02");
  auto r = FileTraceSource::open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("truncated header (9 of 24 bytes)"),
            std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsRecordCountLargerThanFile) {
  // Header promises 100 records, body holds 2 complete ones.
  const std::string path = write_raw(
      "overcount.trace", header_bytes(100) + std::string(32, '\x41'));
  auto r = FileTraceSource::open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("header claims 100 records"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(truncated)"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMidRecordTruncation) {
  // Header promises 2 records but the body stops 8 bytes into the second.
  const std::string path = write_raw(
      "midrec.trace", header_bytes(2) + std::string(24, '\x42'));
  auto r = FileTraceSource::open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("truncated mid-record"),
            std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsTrailingGarbage) {
  const std::string path = write_raw(
      "garbage.trace", header_bytes(1) + std::string(16, '\x43') + "oops");
  auto r = FileTraceSource::open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing garbage"), std::string::npos)
      << r.status().message();
  std::remove(path.c_str());
}

TEST(TraceIo, SecondFinishIsANoOp) {
  const std::string path = ::testing::TempDir() + "/refinish.trace";
  TraceWriter w(path);
  w.append(MemRef{0x40, 1, 0, false});
  w.finish();
  w.finish();  // must not touch the (closed) file or throw
  FileTraceSource src(path);
  EXPECT_EQ(src.record_count(), 1u);
  std::remove(path.c_str());
}

TEST(TraceIo, AppendAfterFinishFails) {
  const std::string path = ::testing::TempDir() + "/closed.trace";
  TraceWriter w(path);
  w.finish();
  EXPECT_THROW(w.append(MemRef{0x40, 1, 0, false}), std::logic_error);
  std::remove(path.c_str());
}

TEST(TraceIo, SimulatorConsumesFileTrace) {
  // End-to-end: a synthetic workload serialized to disk replays identically.
  const std::string path = ::testing::TempDir() + "/replay.trace";
  auto live = make_workload(BenchmarkId::kSoplex, 0, 32, 5);
  {
    TraceWriter w(path);
    MemRef m;
    for (int i = 0; i < 5000; ++i) {
      live->next(m);
      w.append(m);
    }
    w.finish();
  }
  auto live2 = make_workload(BenchmarkId::kSoplex, 0, 32, 5);
  FileTraceSource replay(path);
  MemRef a, b;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(live2->next(a));
    ASSERT_TRUE(replay.next(b));
    ASSERT_EQ(a, b);
  }
  std::remove(path.c_str());
}

TEST(VectorTrace, EndsAndRewinds) {
  VectorTraceSource src({MemRef{1, 0, 0, false}, MemRef{2, 0, 0, true}});
  MemRef m;
  EXPECT_TRUE(src.next(m));
  EXPECT_EQ(m.addr, 1u);
  EXPECT_TRUE(src.next(m));
  EXPECT_TRUE(m.is_write);
  EXPECT_FALSE(src.next(m));
  src.rewind();
  EXPECT_TRUE(src.next(m));
  EXPECT_EQ(m.addr, 1u);
}

}  // namespace
}  // namespace redhip
