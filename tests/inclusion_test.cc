// Behavioural scenarios for the three inclusion policies: line movement,
// victim cascades, back-invalidation, and capacity conservation — the
// mechanics Fig. 13 depends on.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "sim/simulator.h"
#include "trace/mem_ref.h"

namespace redhip {
namespace {

// Same tiny machine as sim_test: L1 1KB/2w (8 sets), L2 4KB/4w (16 sets),
// L3 16KB/4w (64 sets), L4 64KB/8w (128 sets).
HierarchyConfig tiny(Scheme scheme, InclusionPolicy incl) {
  HierarchyConfig c;
  c.cores = 1;
  c.scheme = scheme;
  c.inclusion = incl;
  auto mk = [](std::uint64_t size, std::uint32_t ways, Cycles td, Cycles dd,
               double te, double de) {
    LevelSpec l;
    l.geom.size_bytes = size;
    l.geom.ways = ways;
    l.energy = LevelEnergyParams{"", td, dd, te, de, 0.1};
    return l;
  };
  c.levels = {mk(1_KiB, 2, 0, 2, 0.0, 1.0), mk(4_KiB, 4, 0, 6, 0.0, 2.0),
              mk(16_KiB, 4, 9, 12, 3.0, 9.0), mk(64_KiB, 8, 13, 22, 4.0, 20.0)};
  c.redhip.table_bits = 1 << 13;
  c.redhip.recal_interval_l1_misses = 0;
  c.cbf.index_bits = 12;
  return c;
}

MulticoreSimulator make_sim(const HierarchyConfig& c) {
  std::vector<std::unique_ptr<TraceSource>> t;
  for (std::uint32_t i = 0; i < c.cores; ++i) {
    t.push_back(std::make_unique<VectorTraceSource>(std::vector<MemRef>{}));
  }
  return MulticoreSimulator(c, std::move(t),
                            std::vector<std::uint32_t>(c.cores, 100));
}

MemRef ref_at(Addr a) { return MemRef{a, 0, 0, false}; }

std::uint64_t lines_at(const MulticoreSimulator& sim, std::uint32_t lvl) {
  return sim.level_array_for_test(lvl, 0).valid_count();
}

// ----------------------------------------------------------------- hybrid

TEST(Hybrid, MissFillsL1AndLlcOnly) {
  auto sim = make_sim(tiny(Scheme::kBase, InclusionPolicy::kHybrid));
  sim.access_for_test(0, ref_at(0x10000));
  EXPECT_TRUE(sim.level_array_for_test(0, 0).contains(0x10000 >> 6));
  EXPECT_FALSE(sim.level_array_for_test(1, 0).contains(0x10000 >> 6));
  EXPECT_FALSE(sim.level_array_for_test(2, 0).contains(0x10000 >> 6));
  EXPECT_TRUE(sim.level_array_for_test(3, 0).contains(0x10000 >> 6));
}

TEST(Hybrid, L1VictimCascadesToL2NotL4Duplicate) {
  auto sim = make_sim(tiny(Scheme::kBase, InclusionPolicy::kHybrid));
  const Addr a = 0x10000;
  sim.access_for_test(0, ref_at(a));
  // Conflict it out of L1 (8 sets x 2 ways; 512-byte conflict stride).
  sim.access_for_test(0, ref_at(a + 512));
  sim.access_for_test(0, ref_at(a + 1024));
  EXPECT_FALSE(sim.level_array_for_test(0, 0).contains(a >> 6));
  EXPECT_TRUE(sim.level_array_for_test(1, 0).contains(a >> 6))
      << "hybrid L1 victims must land in L2";
  EXPECT_TRUE(sim.level_array_for_test(3, 0).contains(a >> 6))
      << "the inclusive LLC keeps its copy";
}

TEST(Hybrid, PrivateHitMovesLineBackToL1) {
  auto sim = make_sim(tiny(Scheme::kBase, InclusionPolicy::kHybrid));
  const Addr a = 0x10000;
  sim.access_for_test(0, ref_at(a));
  sim.access_for_test(0, ref_at(a + 512));
  sim.access_for_test(0, ref_at(a + 1024));  // a now in L2
  const Cycles lat = sim.access_for_test(0, ref_at(a));
  EXPECT_EQ(lat, 2 + 6u);  // L1 miss + L2 hit
  EXPECT_TRUE(sim.level_array_for_test(0, 0).contains(a >> 6));
  EXPECT_FALSE(sim.level_array_for_test(1, 0).contains(a >> 6))
      << "exclusive private levels move, not copy";
}

TEST(Hybrid, LlcEvictionBackInvalidatesPrivates) {
  auto sim = make_sim(tiny(Scheme::kBase, InclusionPolicy::kHybrid));
  // L4: 128 sets x 8 ways; lines 128 sets apart conflict (8KB stride).
  const Addr a = 0x100000;
  sim.access_for_test(0, ref_at(a));
  EXPECT_TRUE(sim.level_array_for_test(0, 0).contains(a >> 6));
  for (int i = 1; i <= 8; ++i) {
    sim.access_for_test(0, ref_at(a + static_cast<Addr>(i) * 128 * 64));
  }
  EXPECT_FALSE(sim.level_array_for_test(3, 0).contains(a >> 6))
      << "L4 should have evicted the LRU line";
  for (std::uint32_t lvl = 0; lvl < 3; ++lvl) {
    EXPECT_FALSE(sim.level_array_for_test(lvl, 0).contains(a >> 6))
        << "back-invalidation must purge private level " << lvl + 1;
  }
}

// -------------------------------------------------------------- exclusive

TEST(Exclusive, CapacityIsTheSumOfLevels) {
  // Touch more distinct lines than L1+L2 can hold but fewer than the
  // aggregate; in exclusive mode nothing is duplicated, so all of them must
  // still be resident somewhere.
  auto sim = make_sim(tiny(Scheme::kBase, InclusionPolicy::kExclusive));
  const int kLines = 800;  // 50KB < 1+4+16+64KB aggregate
  for (int i = 0; i < kLines; ++i) {
    sim.access_for_test(0, ref_at(static_cast<Addr>(i) * 64));
  }
  std::uint64_t resident = 0;
  for (std::uint32_t lvl = 0; lvl < 4; ++lvl) resident += lines_at(sim, lvl);
  EXPECT_EQ(resident, static_cast<std::uint64_t>(kLines))
      << "exclusive hierarchy must hold every distinct line exactly once";
}

TEST(Exclusive, InclusiveDuplicatesReduceEffectiveCapacity) {
  auto incl = make_sim(tiny(Scheme::kBase, InclusionPolicy::kInclusive));
  auto excl = make_sim(tiny(Scheme::kBase, InclusionPolicy::kExclusive));
  Xoshiro256 rng(3);
  std::vector<Addr> addrs;
  for (int i = 0; i < 1400; ++i) addrs.push_back(rng.below(1 << 17) & ~63ull);
  for (Addr a : addrs) {
    incl.access_for_test(0, ref_at(a));
    excl.access_for_test(0, ref_at(a));
  }
  std::set<LineAddr> incl_lines, excl_lines;
  for (std::uint32_t lvl = 0; lvl < 4; ++lvl) {
    incl.level_array_for_test(lvl, 0).for_each_valid(
        [&](LineAddr l) { incl_lines.insert(l); });
    excl.level_array_for_test(lvl, 0).for_each_valid(
        [&](LineAddr l) { excl_lines.insert(l); });
  }
  EXPECT_GT(excl_lines.size(), incl_lines.size())
      << "exclusive mode must keep more distinct lines on chip";
}

TEST(Exclusive, ReaccessAfterDemotionClimbsBack) {
  auto sim = make_sim(tiny(Scheme::kBase, InclusionPolicy::kExclusive));
  const Addr a = 0x40000;
  sim.access_for_test(0, ref_at(a));
  // Push it down two levels with L1/L2-conflicting lines (1KB apart shares
  // the L1 set; 16 lines apart shares the L2 set).
  for (int i = 1; i <= 6; ++i) {
    sim.access_for_test(0, ref_at(a + static_cast<Addr>(i) * 1024));
  }
  EXPECT_FALSE(sim.level_array_for_test(0, 0).contains(a >> 6));
  // Find it somewhere below and re-access: it must return to L1 and vacate
  // its old spot.
  sim.access_for_test(0, ref_at(a));
  EXPECT_TRUE(sim.level_array_for_test(0, 0).contains(a >> 6));
  int copies = 0;
  for (std::uint32_t lvl = 0; lvl < 4; ++lvl) {
    copies += sim.level_array_for_test(lvl, 0).contains(a >> 6) ? 1 : 0;
  }
  EXPECT_EQ(copies, 1);
}

// -------------------------------------------------------------- inclusive

TEST(Inclusive, LlcEvictionPurgesEveryCoreAbove) {
  HierarchyConfig c = tiny(Scheme::kBase, InclusionPolicy::kInclusive);
  c.cores = 2;
  auto sim = make_sim(c);
  // Same line loaded by... cores don't share lines in the workloads, but
  // the mechanism must still be correct: load it on core 0 only, evict from
  // the shared L4 via core 1's conflicting lines, verify purge on core 0.
  const Addr a = 0x200000;
  sim.access_for_test(0, ref_at(a));
  for (int i = 1; i <= 8; ++i) {
    sim.access_for_test(1, ref_at(a + static_cast<Addr>(i) * 128 * 64));
  }
  EXPECT_FALSE(sim.level_array_for_test(3, 0).contains(a >> 6));
  for (std::uint32_t lvl = 0; lvl < 3; ++lvl) {
    EXPECT_FALSE(sim.level_array_for_test(lvl, 0).contains(a >> 6))
        << "cross-core back-invalidation failed at level " << lvl + 1;
  }
}

TEST(Inclusive, PrivateEvictionOnlyPurgesOwnCore) {
  HierarchyConfig c = tiny(Scheme::kBase, InclusionPolicy::kInclusive);
  c.cores = 2;
  auto sim = make_sim(c);
  const Addr a = 0x300000;
  sim.access_for_test(0, ref_at(a));
  sim.access_for_test(1, ref_at(a));  // both cores cache the same line
  // Evict from core 0's L2 (16 sets x 4 ways; 1KB stride shares the set).
  for (int i = 1; i <= 8; ++i) {
    sim.access_for_test(0, ref_at(a + static_cast<Addr>(i) * 16 * 64));
  }
  EXPECT_FALSE(sim.level_array_for_test(1, 0).contains(a >> 6));
  EXPECT_FALSE(sim.level_array_for_test(0, 0).contains(a >> 6))
      << "L2 eviction must back-invalidate the core's own L1";
  EXPECT_TRUE(sim.level_array_for_test(0, 1).contains(a >> 6))
      << "core 1's copy must survive core 0's private eviction";
}

// ------------------------------------------------- ReDHiP under each policy

TEST(RedhipPolicy, HybridUsesTheSingleLlcTable) {
  auto sim = make_sim(tiny(Scheme::kRedhip, InclusionPolicy::kHybrid));
  EXPECT_NE(sim.llc_predictor_for_test(), nullptr);
  // Cold bypass works exactly as in inclusive mode.
  EXPECT_EQ(sim.access_for_test(0, ref_at(0x500000)), 8u);  // 2 + PT 6
}

TEST(RedhipPolicy, ExclusiveSkipsAreConservative) {
  auto sim = make_sim(tiny(Scheme::kRedhip, InclusionPolicy::kExclusive));
  Xoshiro256 rng(17);
  for (int i = 0; i < 20'000; ++i) {
    const Addr a = rng.below(1 << 19) & ~7ull;
    const LineAddr line = a >> 6;
    // Before the access: any level that holds the line must be predicted
    // present by its table — the per-level no-false-negative invariant.
    // (Verified indirectly: the line must end up in L1 after access, since
    // a skip of the level actually holding it would lose the hierarchy's
    // only copy and trip the exclusive-capacity accounting.)
    sim.access_for_test(0, ref_at(a));
    ASSERT_TRUE(sim.level_array_for_test(0, 0).contains(line));
  }
}

}  // namespace
}  // namespace redhip
