// Divide-by-zero conventions of the SimResult rate accessors.  A level
// with zero accesses reports hit rate 0.0 *and* miss rate 0.0 (nothing
// happened — neither "all hit" nor "all missed"), a run with zero L1
// misses reports off-chip fraction 0.0, and a default-constructed result
// (empty `levels`) follows the same rules instead of crashing.  These pin
// down two former inconsistencies: l1_miss_rate() used to report 1.0 for a
// zero-access run, and offchip_fraction() read levels.front() without an
// emptiness check.
#include <gtest/gtest.h>

#include "harness/run.h"
#include "sim/stats.h"

namespace redhip {
namespace {

TEST(StatsConventions, DefaultConstructedResultIsAllZeros) {
  const SimResult r;
  EXPECT_TRUE(r.levels.empty());
  EXPECT_DOUBLE_EQ(r.l1_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.offchip_fraction(), 0.0);
}

TEST(StatsConventions, ZeroAccessLevelHasZeroHitAndMissRate) {
  SimResult r;
  r.levels.resize(2);  // all counters zero
  EXPECT_DOUBLE_EQ(r.hit_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(r.hit_rate(1), 0.0);
  EXPECT_DOUBLE_EQ(r.l1_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.offchip_fraction(), 0.0);
}

TEST(StatsConventions, RatesArePlainRatiosWhenDefined) {
  SimResult r;
  r.levels.resize(2);
  r.levels[0].accesses = 100;
  r.levels[0].hits = 75;
  r.levels[0].misses = 25;
  r.demand_memory_accesses = 5;
  EXPECT_DOUBLE_EQ(r.hit_rate(0), 0.75);
  EXPECT_DOUBLE_EQ(r.l1_miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(r.offchip_fraction(), 0.2);  // 5 of 25 misses
}

TEST(StatsConventions, ZeroMissRunHasZeroOffchipFraction) {
  SimResult r;
  r.levels.resize(1);
  r.levels[0].accesses = 100;
  r.levels[0].hits = 100;
  r.levels[0].misses = 0;
  EXPECT_DOUBLE_EQ(r.l1_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.offchip_fraction(), 0.0);
}

TEST(StatsConventions, HitRateOutOfRangeLevelThrows) {
  const SimResult r;
  EXPECT_THROW(r.hit_rate(0), std::out_of_range);  // levels.at()
}

TEST(StatsConventions, CompareRejectsZeroCycleComparands) {
  // compare() divides by total_core_cycles; a hand-built or corrupt result
  // with zero cycles used to put inf into the speedup silently.
  SimResult ok;
  ok.exec_cycles = 100;
  ok.total_core_cycles = 100;
  SimResult zero = ok;
  zero.total_core_cycles = 0;
  EXPECT_NO_THROW(compare(ok, ok));
  EXPECT_THROW(compare(zero, ok), std::logic_error);
  EXPECT_THROW(compare(ok, zero), std::logic_error);
}

}  // namespace
}  // namespace redhip
