// Paper-shape regression tests: the qualitative orderings every figure in
// the evaluation depends on.  These protect the reproduction's conclusions
// (who wins, in which direction) against model regressions, using small but
// statistically comfortable runs.
#include <gtest/gtest.h>

#include <map>

#include "harness/run.h"

namespace redhip {
namespace {

// One memory-hungry representative keeps the suite fast; the full-suite
// averages live in the bench binaries.
SimResult run_scheme(Scheme scheme, BenchmarkId bench = BenchmarkId::kMcf,
                     bool prefetch = false,
                     InclusionPolicy incl = InclusionPolicy::kInclusive,
                     std::function<void(HierarchyConfig&)> tweak = nullptr) {
  RunSpec spec;
  spec.bench = bench;
  spec.scheme = scheme;
  spec.inclusion = incl;
  spec.prefetch = prefetch;
  spec.scale = 16;
  spec.refs_per_core = 120'000;
  spec.tweak = std::move(tweak);
  return run_spec(spec);
}

class Fig6And7Shape : public ::testing::Test {
 protected:
  static const std::map<Scheme, SimResult>& results() {
    static const std::map<Scheme, SimResult> kResults = [] {
      std::map<Scheme, SimResult> m;
      for (Scheme s : {Scheme::kBase, Scheme::kOracle, Scheme::kCbf,
                       Scheme::kPhased, Scheme::kRedhip}) {
        m.emplace(s, run_scheme(s));
      }
      return m;
    }();
    return kResults;
  }
  static Comparison vs_base(Scheme s) {
    return compare(results().at(Scheme::kBase), results().at(s));
  }
};

TEST_F(Fig6And7Shape, OracleIsTheSpeedupUpperBound) {
  const double oracle = vs_base(Scheme::kOracle).speedup;
  EXPECT_GT(oracle, 1.05);
  EXPECT_GT(oracle, vs_base(Scheme::kRedhip).speedup);
  EXPECT_GT(oracle, vs_base(Scheme::kCbf).speedup);
  EXPECT_GT(oracle, vs_base(Scheme::kPhased).speedup);
}

TEST_F(Fig6And7Shape, RedhipOutperformsCbfAndPhasedOnSpeed) {
  // Fig. 6: ReDHiP ~ +8%, CBF < +4%, Phased ~ -3%.
  EXPECT_GT(vs_base(Scheme::kRedhip).speedup, 1.0);
  EXPECT_GT(vs_base(Scheme::kRedhip).speedup, vs_base(Scheme::kCbf).speedup);
  EXPECT_GT(vs_base(Scheme::kRedhip).speedup,
            vs_base(Scheme::kPhased).speedup);
}

TEST_F(Fig6And7Shape, PhasedCacheTradesLatencyForEnergy) {
  // Fig. 6/7: Phased loses performance but saves substantial energy.
  EXPECT_LE(vs_base(Scheme::kPhased).speedup, 1.001);
  EXPECT_LT(vs_base(Scheme::kPhased).dyn_energy_ratio, 0.8);
}

TEST_F(Fig6And7Shape, EnergyOrderingMatchesFig7) {
  // Fig. 7: Oracle < ReDHiP < Phased < CBF < Base (ratios to Base).
  const double oracle = vs_base(Scheme::kOracle).dyn_energy_ratio;
  const double redhip = vs_base(Scheme::kRedhip).dyn_energy_ratio;
  const double phased = vs_base(Scheme::kPhased).dyn_energy_ratio;
  const double cbf = vs_base(Scheme::kCbf).dyn_energy_ratio;
  EXPECT_LT(oracle, redhip);
  EXPECT_LT(redhip, phased);
  EXPECT_LT(phased, cbf);
  EXPECT_LT(cbf, 1.0);
}

TEST_F(Fig6And7Shape, RedhipWinsThePerfEnergyMetric) {
  // Fig. 8.
  const double redhip = vs_base(Scheme::kRedhip).perf_energy_metric;
  EXPECT_GT(redhip, vs_base(Scheme::kCbf).perf_energy_metric);
  EXPECT_GT(redhip, vs_base(Scheme::kPhased).perf_energy_metric);
  EXPECT_GT(redhip, 1.1);
}

TEST_F(Fig6And7Shape, RedhipOverheadIsASmallShareOfItsEnergy) {
  const auto& e = results().at(Scheme::kRedhip).energy;
  EXPECT_LT((e.predictor_dynamic_j + e.recalibration_j) / e.dynamic_total_j(),
            0.12);
}

TEST(Fig9And10Shape, RedhipRaisesLowerLevelHitRates) {
  const SimResult base = run_scheme(Scheme::kBase);
  const SimResult red = run_scheme(Scheme::kRedhip);
  // L1 untouched; L2..L4 improve because doomed misses are filtered out.
  EXPECT_NEAR(red.hit_rate(0), base.hit_rate(0), 1e-9);
  EXPECT_GT(red.hit_rate(1), base.hit_rate(1));
  EXPECT_GT(red.hit_rate(2), base.hit_rate(2));
  EXPECT_GT(red.hit_rate(3), base.hit_rate(3));
}

TEST(Fig11Shape, SmallerTablesLoseAccuracy) {
  // Fig. 11: dynamic energy rises monotonically as the PT shrinks.
  double prev = 0.0;
  for (int shift : {1, 0, -2, -4}) {
    const SimResult r = run_scheme(
        Scheme::kRedhip, BenchmarkId::kMcf, false,
        InclusionPolicy::kInclusive, [shift](HierarchyConfig& c) {
          c.redhip.table_bits = shift >= 0 ? c.redhip.table_bits << shift
                                           : c.redhip.table_bits >> -shift;
        });
    double dyn = 0.0;
    for (double v : r.energy.level_dynamic_j) dyn += v;
    EXPECT_GT(dyn, prev) << "shift " << shift;
    prev = dyn;
  }
}

TEST(Fig12Shape, InfrequentRecalibrationLosesAccuracy) {
  // Fig. 12: never-recalibrate is worst; 1M-equivalent is close to always.
  auto with_interval = [](std::uint64_t iv) {
    return run_scheme(Scheme::kRedhip, BenchmarkId::kMcf, false,
                      InclusionPolicy::kInclusive, [iv](HierarchyConfig& c) {
                        c.redhip.recal_interval_l1_misses = iv;
                      });
  };
  const SimResult frequent = with_interval(2'000);
  const SimResult rare = with_interval(2'000'000);
  const SimResult never = with_interval(0);
  EXPECT_GT(frequent.predictor.predicted_absent,
            rare.predictor.predicted_absent);
  EXPECT_GE(rare.predictor.predicted_absent,
            never.predictor.predicted_absent);
}

TEST(Fig13Shape, HybridMatchesInclusiveExclusiveStillWins) {
  auto saving = [](InclusionPolicy p) {
    const SimResult base = run_scheme(Scheme::kBase, BenchmarkId::kMcf,
                                      false, p);
    const SimResult red = run_scheme(Scheme::kRedhip, BenchmarkId::kMcf,
                                     false, p);
    return 1.0 - compare(base, red).dyn_energy_ratio;
  };
  const double incl = saving(InclusionPolicy::kInclusive);
  const double hybrid = saving(InclusionPolicy::kHybrid);
  const double excl = saving(InclusionPolicy::kExclusive);
  EXPECT_NEAR(hybrid, incl, 0.10) << "hybrid should track inclusive closely";
  EXPECT_GT(excl, 0.15) << "exclusive keeps a large benefit";
}

TEST(Fig14And15Shape, PrefetchingAndRedhipCompose) {
  // Regular workload: prefetching accelerates, ReDHiP saves energy, and the
  // combination gets both.
  const SimResult base = run_scheme(Scheme::kBase, BenchmarkId::kBwaves);
  const SimResult sp = run_scheme(Scheme::kBase, BenchmarkId::kBwaves, true);
  const SimResult red = run_scheme(Scheme::kRedhip, BenchmarkId::kBwaves);
  const SimResult both =
      run_scheme(Scheme::kRedhip, BenchmarkId::kBwaves, true);
  const Comparison c_sp = compare(base, sp);
  const Comparison c_red = compare(base, red);
  const Comparison c_both = compare(base, both);
  EXPECT_GT(c_sp.speedup, 1.01) << "stride prefetch must help bwaves";
  EXPECT_GT(c_both.speedup, c_red.speedup)
      << "prefetching adds speed on top of ReDHiP";
  EXPECT_LT(c_both.dyn_energy_ratio, c_sp.dyn_energy_ratio)
      << "ReDHiP offsets part of the prefetcher's energy cost";
  EXPECT_LT(c_red.dyn_energy_ratio, 1.0);
}

TEST(MotivationShape, DeepLevelsDominateDynamicEnergy) {
  const SimResult r = run_scheme(Scheme::kBase);
  const auto& e = r.energy.level_dynamic_j;
  const double deep = (e[2] + e[3]) / r.energy.dynamic_total_j();
  EXPECT_GT(deep, 0.6) << "the Section I claim (~80% at full scale)";
}

}  // namespace
}  // namespace redhip
