// Randomized equivalence harness for the SoA TagArray: drive a TagArray and
// an independent shadow model (plain per-way structs + explicit LRU ranks,
// no partial-tag lane, no SIMD) through the same operation stream and
// require identical observable behaviour at every step.
//
// The shadow replicates the documented replacement contract exactly —
// way-index initial ranks, promote-on-use, first-invalid-way fills,
// first-max victim, rank survives invalidation — so any divergence is a
// TagArray bug, not a modeling choice.  Shared between soa_tagarray_test
// (host ISA) and tagarray_scalar_test (compiled with AVX-512 disabled, so
// the portable lane-scan fallback is what executes).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/tag_array.h"
#include "common/rng.h"

namespace redhip {
namespace fuzz {

struct ShadowWay {
  bool valid = false;
  bool prefetched = false;
  bool dirty = false;
  std::uint64_t tag = 0;
};

// Plain-vector mirror of one TagArray with LRU replacement.
class ShadowArray {
 public:
  explicit ShadowArray(const CacheGeometry& g)
      : sets_(g.sets()),
        ways_(g.ways),
        set_bits_(g.set_bits()),
        ways_state_(sets_ * ways_),
        rank_(sets_ * ways_) {
    for (std::uint64_t s = 0; s < sets_; ++s) {
      for (std::uint32_t w = 0; w < ways_; ++w) rank_[s * ways_ + w] = w;
    }
  }

  std::uint64_t set_of(LineAddr line) const { return line & (sets_ - 1); }
  std::uint64_t tag_of(LineAddr line) const { return line >> set_bits_; }
  LineAddr line_of(std::uint64_t set, std::uint64_t tag) const {
    return (tag << set_bits_) | set;
  }

  ShadowWay* way(std::uint64_t set, std::uint32_t w) {
    return &ways_state_[set * ways_ + w];
  }

  std::uint32_t find(LineAddr line) const {
    const std::uint64_t set = set_of(line);
    const std::uint64_t tag = tag_of(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const ShadowWay& sw = ways_state_[set * ways_ + w];
      if (sw.valid && sw.tag == tag) return w;
    }
    return ~0u;
  }

  void touch(std::uint64_t set, std::uint32_t way) {
    std::uint32_t* r = &rank_[set * ways_];
    const std::uint32_t old = r[way];
    if (old == 0) return;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (r[w] < old) ++r[w];
    }
    r[way] = 0;
  }

  std::uint32_t victim(std::uint64_t set) const {
    const std::uint32_t* r = &rank_[set * ways_];
    std::uint32_t worst = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
      if (r[w] > r[worst]) worst = w;
    }
    return worst;
  }

  TagArray::LookupResult lookup(LineAddr line, bool is_write) {
    const std::uint32_t w = find(line);
    if (w == ~0u) return {};
    const std::uint64_t set = set_of(line);
    ShadowWay* sw = way(set, w);
    TagArray::LookupResult r{true, w, sw->prefetched};
    sw->prefetched = false;
    if (is_write) sw->dirty = true;
    touch(set, w);
    return r;
  }

  bool fill_if_absent(LineAddr line, bool prefetched, bool dirty,
                      TagArray::FillResult* out) {
    const std::uint32_t resident = find(line);
    const std::uint64_t set = set_of(line);
    if (resident != ~0u) {
      if (dirty) way(set, resident)->dirty = true;
      return false;
    }
    std::uint32_t w = ~0u;
    for (std::uint32_t i = 0; i < ways_; ++i) {
      if (!way(set, i)->valid) {
        w = i;
        break;
      }
    }
    *out = {};
    if (w == ~0u) {
      w = victim(set);
      ShadowWay* v = way(set, w);
      out->evicted = true;
      out->victim = line_of(set, v->tag);
      out->victim_was_prefetched = v->prefetched;
      out->victim_was_dirty = v->dirty;
    } else {
      ++valid_count_;
    }
    out->way = w;
    *way(set, w) = {true, prefetched, dirty, tag_of(line)};
    touch(set, w);
    return true;
  }

  bool invalidate(LineAddr line, bool* was_dirty) {
    const std::uint32_t w = find(line);
    if (w == ~0u) return false;
    const std::uint64_t set = set_of(line);
    if (was_dirty != nullptr) *was_dirty = way(set, w)->dirty;
    way(set, w)->valid = false;
    --valid_count_;
    return true;
  }

  bool mark_dirty(LineAddr line) {
    const std::uint32_t w = find(line);
    if (w == ~0u) return false;
    way(set_of(line), w)->dirty = true;
    return true;
  }

  bool is_dirty(LineAddr line) const {
    const std::uint32_t w = find(line);
    if (w == ~0u) return false;
    return ways_state_[set_of(line) * ways_ + w].dirty;
  }

  std::uint64_t valid_count() const { return valid_count_; }

  // Way-ordered valid lines of one set, matching visit_valid_in_set.
  std::vector<LineAddr> valid_lines(std::uint64_t set) const {
    std::vector<LineAddr> out;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      const ShadowWay& sw = ways_state_[set * ways_ + w];
      if (sw.valid) out.push_back(line_of(set, sw.tag));
    }
    return out;
  }

 private:
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint32_t set_bits_;
  std::vector<ShadowWay> ways_state_;
  std::vector<std::uint32_t> rank_;
  std::uint64_t valid_count_ = 0;
};

// Random line with deliberately low tag entropy (plus occasional high bits
// so the 15-bit partial-tag fold sees the whole 57-bit tag range and
// collides with the dense tags it aliases).
inline LineAddr random_line(Xoshiro256& rng, const CacheGeometry& g) {
  const std::uint64_t set = rng.below(g.sets());
  std::uint64_t tag = rng.below(3 * g.ways);
  if (rng.below(8) == 0) tag |= rng.below(1u << 12) << 40;
  return (tag << g.set_bits()) | set;
}

// Drive `ops` random operations through both implementations, checking
// every return value; every 256 ops cross-check the complete state.
inline void fuzz_against_shadow(const CacheGeometry& g, std::uint64_t seed,
                                std::uint64_t ops) {
  TagArray arr(g);
  ShadowArray model(g);
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < ops; ++i) {
    const LineAddr line = random_line(rng, g);
    switch (rng.below(6)) {
      case 0:
      case 1: {  // weighted: lookups dominate real traffic
        const bool is_write = rng.below(2) != 0;
        const auto a = arr.lookup(line, is_write);
        const auto m = model.lookup(line, is_write);
        ASSERT_EQ(a.hit, m.hit) << "op " << i;
        if (a.hit) {
          ASSERT_EQ(a.way, m.way) << "op " << i;
          ASSERT_EQ(a.was_prefetched, m.was_prefetched) << "op " << i;
        }
        break;
      }
      case 2: {
        const bool prefetched = rng.below(2) != 0;
        const bool dirty = rng.below(2) != 0;
        TagArray::FillResult fa, fm;
        const bool a = arr.fill_if_absent(line, prefetched, dirty, &fa);
        const bool m = model.fill_if_absent(line, prefetched, dirty, &fm);
        ASSERT_EQ(a, m) << "op " << i;
        if (a) {
          ASSERT_EQ(fa.way, fm.way) << "op " << i;
          ASSERT_EQ(fa.evicted, fm.evicted) << "op " << i;
          if (fa.evicted) {
            ASSERT_EQ(fa.victim, fm.victim) << "op " << i;
            ASSERT_EQ(fa.victim_was_prefetched, fm.victim_was_prefetched);
            ASSERT_EQ(fa.victim_was_dirty, fm.victim_was_dirty);
          }
        }
        break;
      }
      case 3: {
        bool da = false, dm = false;
        ASSERT_EQ(arr.invalidate(line, &da), model.invalidate(line, &dm))
            << "op " << i;
        ASSERT_EQ(da, dm) << "op " << i;
        break;
      }
      case 4: {
        ASSERT_EQ(arr.contains(line), model.find(line) != ~0u) << "op " << i;
        std::uint32_t w = 0;
        const bool found = arr.find_way(line, &w);
        ASSERT_EQ(found, model.find(line) != ~0u) << "op " << i;
        if (found) {
          ASSERT_EQ(w, model.find(line)) << "op " << i;
        }
        break;
      }
      case 5: {
        ASSERT_EQ(arr.mark_dirty(line), model.mark_dirty(line)) << "op " << i;
        ASSERT_EQ(arr.is_dirty(line), model.is_dirty(line)) << "op " << i;
        break;
      }
    }
    if ((i & 255) == 255) {
      ASSERT_EQ(arr.valid_count(), model.valid_count()) << "op " << i;
      for (std::uint64_t s = 0; s < g.sets(); ++s) {
        std::vector<LineAddr> got;
        arr.visit_valid_in_set(s, [&](LineAddr l) { got.push_back(l); });
        ASSERT_EQ(got, model.valid_lines(s)) << "set " << s << " op " << i;
      }
    }
  }
}

// The geometries the fuzz runs over: embedded-LRU (<= 16 ways), wide LRU
// with the side rank array (> 16 ways), and > 64 ways so the blocked lane
// scan needs a second 64-way block.
inline std::vector<CacheGeometry> fuzz_geometries() {
  std::vector<CacheGeometry> gs;
  for (std::uint32_t ways : {1u, 4u, 16u, 32u, 80u}) {
    CacheGeometry g;
    g.ways = ways;
    const std::uint64_t sets = ways > 64 ? 16 : 64;
    g.size_bytes = sets * ways * std::uint64_t{64};
    gs.push_back(g);
  }
  return gs;
}

}  // namespace fuzz
}  // namespace redhip
