// Tests for the JSON result serializer.
#include <gtest/gtest.h>

#include <string>

#include "harness/json_report.h"
#include "harness/run.h"

namespace redhip {
namespace {

// A structural validator sufficient for our own output: balanced
// braces/brackets outside of (we emit no) strings-with-escapes, keys quoted.
bool balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  for (char c : s) {
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0;
}

SimResult sample_result() {
  RunSpec spec;
  spec.bench = BenchmarkId::kSoplex;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 8'000;
  return run_spec(spec);
}

TEST(JsonReport, WellFormedAndComplete) {
  const SimResult r = sample_result();
  const std::string j = to_json(r);
  EXPECT_TRUE(balanced(j)) << j;
  for (const char* key :
       {"\"total_refs\"", "\"exec_cycles\"", "\"levels\"", "\"predictor\"",
        "\"prefetch\"", "\"energy_j\"", "\"core_cycles\"", "\"leakage\"",
        "\"predicted_absent\"", "\"writebacks\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(JsonReport, ValuesMatchTheResult) {
  const SimResult r = sample_result();
  const std::string j = to_json(r);
  EXPECT_NE(j.find("\"total_refs\":" + std::to_string(r.total_refs)),
            std::string::npos);
  EXPECT_NE(j.find("\"exec_cycles\":" + std::to_string(r.exec_cycles)),
            std::string::npos);
  EXPECT_NE(j.find("\"predicted_absent\":" +
                   std::to_string(r.predictor.predicted_absent)),
            std::string::npos);
}

TEST(JsonReport, LevelArrayHasOneEntryPerLevel) {
  const SimResult r = sample_result();
  const std::string j = to_json(r);
  std::size_t count = 0;
  for (std::size_t pos = j.find("\"accesses\""); pos != std::string::npos;
       pos = j.find("\"accesses\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, r.levels.size());
}

TEST(JsonReport, ComparisonSerializes) {
  Comparison c;
  c.speedup = 1.08;
  c.dyn_energy_ratio = 0.39;
  c.total_energy_ratio = 0.78;
  c.perf_energy_metric = 1.3846;
  const std::string j = to_json(c);
  EXPECT_TRUE(balanced(j));
  EXPECT_NE(j.find("\"speedup\":1.08"), std::string::npos);
  EXPECT_NE(j.find("\"dyn_energy_ratio\":0.39"), std::string::npos);
}

TEST(JsonReport, DeterministicForIdenticalRuns) {
  EXPECT_EQ(to_json(sample_result()), to_json(sample_result()));
}

}  // namespace
}  // namespace redhip
