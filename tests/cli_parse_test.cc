// 64-bit CLI parsing: ref counts past 2^31 and full-range u64 seeds must
// round-trip through the option layer (std::stoll alone would reject seeds
// above 2^63-1), and --engine must select the run loop.
#include <gtest/gtest.h>

#include <vector>

#include "common/cli.h"
#include "harness/experiment.h"

namespace redhip {
namespace {

CliOptions make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "test_binary");
  return CliOptions(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
}

TEST(CliParse, RefsPastInt32) {
  const auto cli = make_cli({"--refs=5000000000"});
  EXPECT_EQ(cli.get_uint64("refs", 0), 5'000'000'000ull);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  EXPECT_EQ(opts.refs_per_core, 5'000'000'000ull);
}

TEST(CliParse, SeedUsesFullU64Range) {
  // Above 2^63-1: would throw out_of_range through a signed parse.
  const auto cli = make_cli({"--seed=18446744073709551615"});
  EXPECT_EQ(cli.get_uint64("seed", 0), 18'446'744'073'709'551'615ull);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  EXPECT_EQ(opts.seed, 18'446'744'073'709'551'615ull);
}

TEST(CliParse, DefaultsSurviveAbsence) {
  const auto cli = make_cli({});
  EXPECT_EQ(cli.get_uint64("refs", 123), 123u);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  EXPECT_EQ(opts.refs_per_core, 1'000'000u);
  EXPECT_EQ(opts.seed, 42u);
  EXPECT_EQ(opts.engine, SimEngine::kFast);
}

TEST(CliParse, EngineSelection) {
  EXPECT_EQ(ExperimentOptions::parse(make_cli({"--engine=fast"})).engine,
            SimEngine::kFast);
  EXPECT_EQ(ExperimentOptions::parse(make_cli({"--engine=reference"})).engine,
            SimEngine::kReference);
}

}  // namespace
}  // namespace redhip
