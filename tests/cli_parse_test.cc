// 64-bit CLI parsing: ref counts past 2^31 and full-range u64 seeds must
// round-trip through the option layer (std::stoll alone would reject seeds
// above 2^63-1), and --engine must select the run loop.  Malformed numerics
// must surface as INVALID_ARGUMENT naming the flag and the value — the old
// bare std::stoull path silently wrapped `--refs=-1` to 2^64-1 and let
// std::invalid_argument escape with no indication of which flag was bad.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/cli.h"
#include "harness/experiment.h"

namespace redhip {
namespace {

CliOptions make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "test_binary");
  return CliOptions(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
}

TEST(CliParse, RefsPastInt32) {
  const auto cli = make_cli({"--refs=5000000000"});
  EXPECT_EQ(cli.get_uint64("refs", 0), 5'000'000'000ull);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  EXPECT_EQ(opts.refs_per_core, 5'000'000'000ull);
}

TEST(CliParse, SeedUsesFullU64Range) {
  // Above 2^63-1: would throw out_of_range through a signed parse.
  const auto cli = make_cli({"--seed=18446744073709551615"});
  EXPECT_EQ(cli.get_uint64("seed", 0), 18'446'744'073'709'551'615ull);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  EXPECT_EQ(opts.seed, 18'446'744'073'709'551'615ull);
}

TEST(CliParse, DefaultsSurviveAbsence) {
  const auto cli = make_cli({});
  EXPECT_EQ(cli.get_uint64("refs", 123), 123u);
  const ExperimentOptions opts = ExperimentOptions::parse(cli);
  EXPECT_EQ(opts.refs_per_core, 1'000'000u);
  EXPECT_EQ(opts.seed, 42u);
  EXPECT_EQ(opts.engine, SimEngine::kFast);
}

TEST(CliParse, EngineSelection) {
  EXPECT_EQ(ExperimentOptions::parse(make_cli({"--engine=fast"})).engine,
            SimEngine::kFast);
  EXPECT_EQ(ExperimentOptions::parse(make_cli({"--engine=reference"})).engine,
            SimEngine::kReference);
}

TEST(CliParse, NegativeUnsignedIsRejectedNotWrapped) {
  // std::stoull would parse "-1" as 2^64-1; that must be a usage error.
  const auto cli = make_cli({"--refs=-1"});
  const auto r = cli.try_get_uint64("refs", 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("--refs=-1"), std::string::npos)
      << r.status().message();
  EXPECT_THROW(cli.get_uint64("refs", 0), std::runtime_error);
  EXPECT_THROW(ExperimentOptions::parse(cli), std::runtime_error);
}

TEST(CliParse, ExplicitPlusSignIsRejectedOnUnsigned) {
  const auto r = make_cli({"--seed=+7"}).try_get_uint64("seed", 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CliParse, TrailingGarbageIsRejected) {
  for (const char* bad :
       {"--refs=100x", "--refs=1e6", "--refs=10 ", "--refs=0x10"}) {
    const auto r = make_cli({bad}).try_get_uint64("refs", 0);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
    // The diagnostic names the flag and echoes the offending value.
    EXPECT_NE(r.status().message().find("--refs="), std::string::npos) << bad;
  }
}

TEST(CliParse, SignedIntRejectsGarbageButTakesNegatives) {
  EXPECT_EQ(make_cli({"--scale=-4"}).get_int("scale", 0), -4);
  const auto r = make_cli({"--scale=4q"}).try_get_int("scale", 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("--scale=4q"), std::string::npos);
}

TEST(CliParse, IntegerOverflowIsAnErrorNotSilentClamp) {
  // One past 2^64-1.
  const auto r =
      make_cli({"--seed=18446744073709551616"}).try_get_uint64("seed", 0);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(CliParse, DoubleRejectsGarbageAndAcceptsScientific) {
  EXPECT_DOUBLE_EQ(make_cli({"--rate=2.5e3"}).get_double("rate", 0), 2500.0);
  for (const char* bad : {"--rate=fast", "--rate=1.5x", "--rate= 1.5"}) {
    const auto r = make_cli({bad}).try_get_double("rate", 0);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(CliParse, RepeatedFlagKeepsEveryOccurrenceInOrder) {
  const auto cli = make_cli(
      {"--axis=workload=mcf", "--axis=table-size=512K,64K", "--scale=4"});
  EXPECT_EQ(cli.get_all("axis"),
            (std::vector<std::string>{"workload=mcf", "table-size=512K,64K"}));
  EXPECT_TRUE(cli.get_all("nope").empty());
  // Scalar accessors still see the last occurrence.
  const auto last = make_cli({"--scale=4", "--scale=8"});
  EXPECT_EQ(last.get_int("scale", 0), 8);
}

}  // namespace
}  // namespace redhip
