// Batched trace delivery must be a pure amortization: for every source,
// the sequence produced by next_batch() is bit-identical to the sequence
// repeated next() calls would have produced — same references, same RNG
// consumption, same end-of-trace behaviour.  The simulator's fast path
// (sim/simulator.cc refill buffers) relies on exactly this property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/mem_ref.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

std::vector<MemRef> collect_scalar(TraceSource& src, std::size_t n) {
  std::vector<MemRef> out;
  MemRef m;
  while (out.size() < n && src.next(m)) out.push_back(m);
  return out;
}

// Drain via next_batch with a rotating, deliberately awkward set of batch
// sizes: 1, small primes, the simulator's refill size, larger-than-refill.
std::vector<MemRef> collect_batched(TraceSource& src, std::size_t n) {
  static constexpr std::size_t kSizes[] = {1, 3, 7, 64, 137, 256, 301};
  std::vector<MemRef> out;
  std::vector<MemRef> buf(512);
  std::size_t call = 0;
  while (out.size() < n) {
    const std::size_t want =
        std::min(kSizes[call++ % std::size(kSizes)], n - out.size());
    const std::size_t got = src.next_batch(buf.data(), want);
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(got));
    if (got == 0) break;
  }
  return out;
}

void expect_same_sequence(const std::vector<MemRef>& scalar,
                          const std::vector<MemRef>& batched,
                          const std::string& what) {
  ASSERT_EQ(scalar.size(), batched.size()) << what;
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar[i], batched[i]) << what << " diverges at ref " << i;
  }
}

class WorkloadBatch : public ::testing::TestWithParam<BenchmarkId> {};

// Every synthetic workload generator, on a private-profile core and (for
// kMix and the sharded apps) a different-profile core.
TEST_P(WorkloadBatch, BatchedMatchesScalar) {
  for (CoreId core : {CoreId{0}, CoreId{5}}) {
    auto scalar_src = make_workload(GetParam(), core, 8, 7);
    auto batched_src = make_workload(GetParam(), core, 8, 7);
    const auto scalar = collect_scalar(*scalar_src, 20'000);
    const auto batched = collect_batched(*batched_src, 20'000);
    expect_same_sequence(scalar, batched,
                         to_string(GetParam()) + " core " +
                             std::to_string(core));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadBatch,
                         ::testing::ValuesIn(all_benchmarks()),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

std::vector<MemRef> make_refs(std::size_t n) {
  std::vector<MemRef> refs(n);
  for (std::size_t i = 0; i < n; ++i) {
    refs[i].addr = 0x1000 + 64 * i;
    refs[i].pc = static_cast<std::uint32_t>(0x400000 + 4 * i);
    refs[i].gap = static_cast<std::uint16_t>(i % 17);
    refs[i].is_write = (i % 5) == 0;
  }
  return refs;
}

TEST(VectorTraceBatch, BatchedMatchesScalarAndEndsCleanly) {
  const auto refs = make_refs(1000);
  VectorTraceSource scalar_src(refs);
  VectorTraceSource batched_src(refs);
  expect_same_sequence(collect_scalar(scalar_src, 2000),
                       collect_batched(batched_src, 2000), "vector");
  // Exhausted source keeps returning 0.
  MemRef buf[4];
  EXPECT_EQ(batched_src.next_batch(buf, 4), 0u);
}

TEST(VectorTraceBatch, OverlongRequestReturnsRemainder) {
  VectorTraceSource src(make_refs(10));
  MemRef buf[64];
  EXPECT_EQ(src.next_batch(buf, 7), 7u);
  EXPECT_EQ(src.next_batch(buf, 64), 3u);  // only 3 left
  EXPECT_EQ(src.next_batch(buf, 64), 0u);
}

// A source that only implements next() exercises the TraceSource default
// next_batch (the loop-over-next fallback).
class ScalarOnlySource final : public TraceSource {
 public:
  explicit ScalarOnlySource(std::size_t total) : total_(total) {}
  bool next(MemRef& out) override {
    if (emitted_ >= total_) return false;
    out.addr = 64 * emitted_;
    out.gap = static_cast<std::uint16_t>(emitted_ % 3);
    ++emitted_;
    return true;
  }

 private:
  std::size_t total_;
  std::size_t emitted_ = 0;
};

TEST(DefaultBatch, FallbackLoopsOverNext) {
  ScalarOnlySource scalar_src(500);
  ScalarOnlySource batched_src(500);
  expect_same_sequence(collect_scalar(scalar_src, 600),
                       collect_batched(batched_src, 600), "fallback");
}

TEST(FileTraceBatch, BatchedMatchesScalarAndEndsCleanly) {
  const std::string path = ::testing::TempDir() + "batch_trace.bin";
  const auto refs = make_refs(777);  // not a multiple of any batch size
  {
    TraceWriter w(path);
    for (const MemRef& r : refs) w.append(r);
    w.finish();
  }
  FileTraceSource scalar_src(path);
  FileTraceSource batched_src(path);
  EXPECT_EQ(batched_src.record_count(), refs.size());
  expect_same_sequence(collect_scalar(scalar_src, 1000),
                       collect_batched(batched_src, 1000), "file");
  MemRef buf[8];
  EXPECT_EQ(batched_src.next_batch(buf, 8), 0u);

  // End-of-trace mid-batch: a request past the end returns the remainder.
  FileTraceSource tail_src(path);
  std::vector<MemRef> big(700);
  EXPECT_EQ(tail_src.next_batch(big.data(), 700), 700u);
  EXPECT_EQ(tail_src.next_batch(big.data(), 700), 77u);
  EXPECT_EQ(tail_src.next_batch(big.data(), 700), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace redhip
