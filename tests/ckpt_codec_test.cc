// Checkpoint codec robustness (src/ckpt/checkpoint_io).  The on-disk file
// is self-validating — magic, schema version, embedded key, length, FNV-1a
// payload checksum — so *no* corruption may ever load: every single-byte
// flip, every truncation and a wrong expected key must come back DATA_LOSS
// (and never crash, and never mutate the simulation into a wrong state that
// then runs).  A missing file is NOT_FOUND, the one cold-start case that
// carries no diagnostic.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint_io.h"
#include "common/file_io.h"
#include "harness/run.h"
#include "sim/config_digest.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "trace/workloads.h"

namespace redhip {
namespace {

// Small machine, short run: keeps the checkpoint file small enough to
// afford a load attempt per corrupted byte.
RunSpec small_spec() {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 16;  // smallest machine cacti_lite still prices (L1 >= 1KB)
  spec.refs_per_core = 4'000;
  spec.seed = 99;
  return spec;
}

std::unique_ptr<MulticoreSimulator> build_sim(const RunSpec& spec) {
  const HierarchyConfig config = resolved_config(spec);
  std::vector<std::unique_ptr<TraceSource>> traces;
  std::vector<std::uint32_t> cpis;
  for (CoreId c = 0; c < config.cores; ++c) {
    traces.push_back(make_workload(spec.bench, c, spec.scale, spec.seed));
    cpis.push_back(workload_cpi_centi(spec.bench, c));
  }
  return std::make_unique<MulticoreSimulator>(config, std::move(traces),
                                              std::move(cpis));
}

std::uint64_t key_of(const RunSpec& spec) {
  return ckpt_key(to_string(spec.bench), spec.scale, spec.seed,
                  config_digest(resolved_config(spec)));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Writes a mid-run checkpoint via the one-shot save_at hook and returns its
// path.  The file is produced by the real engine at a real safe boundary —
// the same artifact production code paths write.
std::string make_checkpoint(const RunSpec& spec, const std::string& path) {
  CkptControl ctl;
  ctl.save_at_refs = 8'000;  // mid-run: 4k refs/core x 8 cores = 32k total
  const std::uint64_t key = key_of(spec);
  ctl.save = [&path, key](MulticoreSimulator& s) {
    ASSERT_TRUE(save_checkpoint(s, path, key).ok());
  };
  auto sim = build_sim(spec);
  sim->set_ckpt_control(&ctl);
  sim->run(spec.refs_per_core);
  return path;
}

class CkptCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("redhip_ckpt_codec_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    std::filesystem::create_directories(dir_);
    spec_ = small_spec();
    path_ = (dir_ / "probe.ckpt").string();
    make_checkpoint(spec_, path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  RunSpec spec_;
  std::string path_;
};

TEST_F(CkptCodecTest, IntactFileLoads) {
  auto sim = build_sim(spec_);
  const Status st = load_checkpoint(path_, key_of(spec_), *sim);
  ASSERT_TRUE(st.ok()) << st.to_string();
  // The save fires at the first safe boundary at or past save_at_refs.
  EXPECT_GE(sim->ckpt_refs_done(), 8'000u);
  EXPECT_LT(sim->ckpt_refs_done(), 32'000u);
  // A restored simulator finishes the run normally.
  const SimResult r = sim->run(spec_.refs_per_core);
  EXPECT_EQ(r.total_refs, spec_.refs_per_core * 8);
}

TEST_F(CkptCodecTest, MissingFileIsNotFound) {
  auto sim = build_sim(spec_);
  const Status st =
      load_checkpoint((dir_ / "absent.ckpt").string(), key_of(spec_), *sim);
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.to_string();
}

TEST_F(CkptCodecTest, WrongExpectedKeyIsDataLoss) {
  auto sim = build_sim(spec_);
  const Status st = load_checkpoint(path_, key_of(spec_) ^ 1, *sim);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.to_string();
}

// A checkpoint from a different configuration (here: another seed, which
// shifts workload contents and the key) must never restore into this one.
TEST_F(CkptCodecTest, ForeignConfigCheckpointIsDataLoss) {
  RunSpec other = spec_;
  other.seed = 100;
  auto sim = build_sim(other);
  const Status st = load_checkpoint(path_, key_of(other), *sim);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.to_string();
}

// Exhaustive single-byte-flip and single-byte-truncation coverage of the
// envelope codec itself (the layer every validation check lives in), on a
// payload small enough that every position is affordable: no matter which
// byte is damaged — magic, version, key, length, payload, checksum — the
// file must refuse to open.
TEST(CkptEnvelope, EveryByteFlipAndTruncationRejected) {
  const FileEnvelope env{"RDHPPROB", 7, "probe"};
  std::string payload;
  for (int i = 0; i < 64; ++i) payload += static_cast<char>(i * 37);
  const std::uint64_t key = 0x1122334455667788ull;
  const std::string good = seal_envelope(env, key, payload);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "redhip_envelope_probe").string();

  spill(path, good);
  ASSERT_TRUE(open_envelope(env, key, path).ok());
  EXPECT_EQ(open_envelope(env, key ^ 4, path).status().code(),
            StatusCode::kDataLoss);

  for (std::size_t i = 0; i < good.size(); ++i) {
    for (const unsigned char delta : {0x01, 0x80}) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ delta);
      spill(path, bad);
      EXPECT_EQ(open_envelope(env, key, path).status().code(),
                StatusCode::kDataLoss)
          << "flipped byte " << i;
    }
  }
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    spill(path, good.substr(0, cut));
    EXPECT_EQ(open_envelope(env, key, path).status().code(),
              StatusCode::kDataLoss)
        << "truncated to " << cut;
  }
  std::filesystem::remove(path);
}

// The same discipline on a real ~1MB checkpoint: every header byte, the
// checksum tail, and a prime-strided sample of the payload (an exhaustive
// per-byte loop over the file would be quadratic in its size; every payload
// byte is already protected by the same checksum the strided sample hits).
//
// The corruption loops reuse ONE never-run target simulator: a rejected
// load may leave it partially mutated, but that cannot change how the next
// file validates (every check reads the file and the immutable config), and
// production code discards a partially-mutated sim anyway (run_spec
// rebuilds on DATA_LOSS).
TEST_F(CkptCodecTest, CorruptedCheckpointIsDataLoss) {
  const std::string good = slurp(path_);
  ASSERT_GT(good.size(), 36u);  // more than just the header
  const std::string mut_path = (dir_ / "mut.ckpt").string();
  const std::uint64_t key = key_of(spec_);
  auto sim = build_sim(spec_);
  std::vector<std::size_t> flips;
  for (std::size_t i = 0; i < 36; ++i) flips.push_back(i);
  for (std::size_t i = 36; i < good.size(); i += 9973) flips.push_back(i);
  for (std::size_t i = good.size() - 8; i < good.size(); ++i) {
    flips.push_back(i);
  }
  for (std::size_t i : flips) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    spill(mut_path, bad);
    const Status st = load_checkpoint(mut_path, key, *sim);
    ASSERT_EQ(st.code(), StatusCode::kDataLoss)
        << "flipped byte " << i << " of " << good.size() << ": "
        << st.to_string();
  }
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i <= 36; ++i) cuts.push_back(i);
  for (std::size_t i = 37; i < good.size(); i += 9973) cuts.push_back(i);
  cuts.push_back(good.size() - 1);
  for (std::size_t cut : cuts) {
    spill(mut_path, good.substr(0, cut));
    const Status st = load_checkpoint(mut_path, key, *sim);
    ASSERT_EQ(st.code(), StatusCode::kDataLoss)
        << "truncated to " << cut << " bytes: " << st.to_string();
  }
}

TEST_F(CkptCodecTest, TrailingGarbageIsDataLoss) {
  const std::string mut_path = (dir_ / "padded.ckpt").string();
  spill(mut_path, slurp(path_) + "extra");
  auto sim = build_sim(spec_);
  const Status st = load_checkpoint(mut_path, key_of(spec_), *sim);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.to_string();
}

TEST_F(CkptCodecTest, EvictRemovesTheFile) {
  EXPECT_TRUE(evict_checkpoint(path_));
  EXPECT_FALSE(std::filesystem::exists(path_));
  auto sim = build_sim(spec_);
  EXPECT_EQ(load_checkpoint(path_, key_of(spec_), *sim).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace redhip
