// Scalar-fallback coverage for the SoA tag array: this translation unit is
// compiled with AVX-512 explicitly disabled (-mno-avx512f -mno-avx512bw,
// see tests/CMakeLists.txt), so the inline hot path instantiated here runs
// the portable lane-scan and rank loops even when the rest of the build is
// -march=native on an AVX-512 host.  The fuzz itself is shared with
// soa_tagarray_test — same shadow model, same op stream, different ISA.
#include <gtest/gtest.h>

#include <string>

#include "tagarray_fuzz.h"

#if defined(__AVX512F__) || defined(__AVX512BW__)
#error "tagarray_scalar_test must be compiled without AVX-512"
#endif

namespace redhip {
namespace {

TEST(ScalarTagArray, RandomizedEquivalenceVsShadowModel) {
  std::uint64_t seed = 0x5CA1A;
  for (const CacheGeometry& g : fuzz::fuzz_geometries()) {
    SCOPED_TRACE("ways=" + std::to_string(g.ways));
    fuzz::fuzz_against_shadow(g, seed++, 20'000);
  }
}

}  // namespace
}  // namespace redhip
