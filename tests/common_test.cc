// Tests for src/common: bit ops, deterministic RNG, fixed-point CPI, CLI.
#include <gtest/gtest.h>

#include <set>

#include "common/bitops.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/fixed_point.h"
#include "common/rng.h"
#include "common/types.h"

namespace redhip {
namespace {

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 63));
  EXPECT_FALSE(is_pow2((std::uint64_t{1} << 63) + 1));
}

TEST(BitOps, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(std::uint64_t{1} << 40), 40u);
  EXPECT_THROW(log2_exact(3), std::logic_error);
  EXPECT_THROW(log2_exact(0), std::logic_error);
}

TEST(BitOps, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1023), 9u);
  EXPECT_EQ(log2_floor(1024), 10u);
}

TEST(BitOps, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0), 1u);
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(1000), 1024u);
}

TEST(BitOps, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(6), 63u);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(BitOps, BitsExtract) {
  // 0b1101'0110 -> bits [1,4) = 0b011
  EXPECT_EQ(bits(0xD6, 1, 3), 0b011u);
  EXPECT_EQ(bits(0xD6, 4, 4), 0b1101u);
}

TEST(BitOps, XorFoldIsStableAndBounded) {
  const std::uint64_t v = 0x0123456789abcdefull;
  for (std::uint32_t w : {1u, 7u, 13u, 20u, 32u, 63u, 64u}) {
    const std::uint64_t h = xor_fold(v, w);
    EXPECT_LE(h, low_mask(w));
    EXPECT_EQ(h, xor_fold(v, w));  // deterministic
  }
  EXPECT_EQ(xor_fold(v, 64), v);
  EXPECT_EQ(xor_fold(0, 16), 0u);
}

TEST(BitOps, XorFoldDistinguishesHighBits) {
  // Two addresses differing only above bit 20 must fold differently
  // (this is what makes xor-hash better than bits-hash for the CBF).
  const std::uint64_t a = 0x100000;
  const std::uint64_t b = 0x300000;
  EXPECT_NE(xor_fold(a, 20), xor_fold(b, 20));
}

TEST(Rng, SplitMix64KnownSequenceIsDeterministic) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(12346);
  EXPECT_NE(SplitMix64(12345).next(), c.next());
}

TEST(Rng, XoshiroDeterministicAcrossInstances) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversSmallRangeUniformly) {
  Xoshiro256 rng(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 - kDraws / 40);
    EXPECT_LT(c, kDraws / 8 + kDraws / 40);
  }
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(5, 9));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, ChancePpmExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance_ppm(0));
    EXPECT_TRUE(rng.chance_ppm(1'000'000));
  }
}

TEST(Rng, ChancePpmApproximatesProbability) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance_ppm(250'000) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

TEST(Rng, BurstBoundsAndMean) {
  Xoshiro256 rng(23);
  double sum = 0;
  const int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t b = rng.burst(8, 100);
    EXPECT_GE(b, 1u);
    EXPECT_LE(b, 100u);
    sum += static_cast<double>(b);
  }
  EXPECT_NEAR(sum / kDraws, 8.0, 1.0);
}

TEST(Rng, BurstClampsToMax) {
  Xoshiro256 rng(29);
  EXPECT_EQ(rng.burst(50, 10), 10u);
}

TEST(HotCold, HotRegionAbsorbsConfiguredFraction) {
  Xoshiro256 rng(31);
  HotColdSampler s(1'000'000, /*hot_fraction_ppm=*/10'000,
                   /*hot_access_ppm=*/900'000);
  EXPECT_EQ(s.hot_size(), 10'000u);
  int hot = 0;
  const int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (s.sample(rng) < s.hot_size()) ++hot;
  }
  // 90% targeted + ~1% of the cold draws landing in the hot prefix.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.901, 0.02);
}

TEST(Zipf, UniformWhenKIsOne) {
  Xoshiro256 rng(41);
  ZipfSampler s(1000, 1);
  int low = 0;
  const int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    if (s.sample(rng) < 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / kDraws, 0.1, 0.02);
}

TEST(Zipf, HigherSkewConcentratesMass) {
  Xoshiro256 rng(43);
  const std::uint64_t n = 1 << 20;
  double prev_frac = 0.0;
  for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
    ZipfSampler s(n, k);
    int top = 0;
    const int kDraws = 40'000;
    for (int i = 0; i < kDraws; ++i) {
      if (s.sample(rng) < n / 100) ++top;  // hottest 1%
    }
    const double frac = static_cast<double>(top) / kDraws;
    EXPECT_GT(frac, prev_frac) << "k=" << k;
    prev_frac = frac;
  }
  // With k=4 the hottest 1% should absorb roughly a third of the accesses
  // (product-of-uniforms: P(X < m) = (m/N) * sum_i ln^i(N/m)/i! ≈ 0.33 for
  // m/N = 0.01, k = 4).
  EXPECT_GT(prev_frac, 0.25);
}

TEST(Zipf, SamplesStayInRange) {
  Xoshiro256 rng(47);
  ZipfSampler s(77, 3);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(s.sample(rng), 77u);
  }
}

TEST(Zipf, PopulatesEveryDecade) {
  // The design goal: reuse distances spanning all cache tiers.  Every
  // decade of the index space should receive some mass at k=3.
  Xoshiro256 rng(53);
  const std::uint64_t n = 1 << 20;
  ZipfSampler s(n, 3);
  int buckets[5] = {0, 0, 0, 0, 0};  // <n/10^4, <n/10^3, <n/10^2, <n/10, rest
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t v = s.sample(rng);
    if (v < n / 10'000) {
      ++buckets[0];
    } else if (v < n / 1000) {
      ++buckets[1];
    } else if (v < n / 100) {
      ++buckets[2];
    } else if (v < n / 10) {
      ++buckets[3];
    } else {
      ++buckets[4];
    }
  }
  for (int b = 0; b < 5; ++b) {
    EXPECT_GT(buckets[b], 300) << "decade " << b << " starved";
  }
}

TEST(CpiAccumulator, ExactWholeCycles) {
  CpiAccumulator cpi(100);  // CPI 1.0
  EXPECT_EQ(cpi.advance(7), 7u);
  EXPECT_EQ(cpi.advance(0), 0u);
}

TEST(CpiAccumulator, CarriesRemainderExactly) {
  CpiAccumulator cpi(150);  // CPI 1.5
  Cycles total = 0;
  for (int i = 0; i < 1000; ++i) total += cpi.advance(1);
  // 1000 instructions at CPI 1.5 = exactly 1500 cycles, no drift.
  EXPECT_EQ(total, 1500u);
}

TEST(CpiAccumulator, MatchesClosedFormOverRandomGaps) {
  CpiAccumulator cpi(137);
  Xoshiro256 rng(37);
  std::uint64_t instructions = 0;
  Cycles total = 0;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t gap = rng.below(20);
    instructions += gap;
    total += cpi.advance(gap);
  }
  EXPECT_EQ(total, instructions * 137 / 100);
}

TEST(CpiAccumulator, RejectsZeroCpi) {
  EXPECT_THROW(CpiAccumulator(0), std::logic_error);
}

TEST(Check, ThrowsWithMessage) {
  try {
    REDHIP_CHECK_MSG(false, "contextual detail");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("contextual detail"),
              std::string::npos);
  }
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--scale", "4",    "--csv",
                        "--refs=123",      "pos1", "--flag"};
  CliOptions opts(7, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("scale", 0), 4);
  EXPECT_EQ(opts.get_int("refs", 0), 123);
  EXPECT_TRUE(opts.get_bool("csv", false));
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_FALSE(opts.get_bool("absent", false));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos1");
}

TEST(Cli, EnvironmentFallback) {
  setenv("REDHIP_BENCH_SOMEOPT", "77", 1);
  const char* argv[] = {"prog"};
  CliOptions opts(1, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("someopt", 0), 77);
  // Command line wins over environment.
  const char* argv2[] = {"prog", "--someopt", "5"};
  CliOptions opts2(3, const_cast<char**>(argv2));
  EXPECT_EQ(opts2.get_int("someopt", 0), 5);
  unsetenv("REDHIP_BENCH_SOMEOPT");
}

TEST(Types, KibMibLiterals) {
  EXPECT_EQ(64_KiB, 65536u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, std::uint64_t{1} << 31);
}

}  // namespace
}  // namespace redhip
