// Cross-module property tests, parameterized over the full (scheme x
// inclusion-policy x workload x scale) matrix the figures exercise.  These
// are the repository's main defense against accounting drift: every counter
// relationship that the energy ledger and the figures rely on is asserted
// here for every configuration combination.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/run.h"

namespace redhip {
namespace {

SimResult quick_run(BenchmarkId bench, Scheme scheme, InclusionPolicy incl,
                    std::uint32_t scale = 32,
                    std::uint64_t refs = 12'000) {
  RunSpec spec;
  spec.bench = bench;
  spec.scheme = scheme;
  spec.inclusion = incl;
  spec.scale = scale;
  spec.refs_per_core = refs;
  return run_spec(spec);
}

bool has_predictor(Scheme s) {
  return s == Scheme::kCbf || s == Scheme::kRedhip || s == Scheme::kOracle;
}

// ---------------------------------------------------------------------------
// Scheme x inclusion matrix.
// ---------------------------------------------------------------------------

using SchemePolicy = std::tuple<Scheme, InclusionPolicy>;

class SchemePolicyProperty : public ::testing::TestWithParam<SchemePolicy> {};

TEST_P(SchemePolicyProperty, CountersAreInternallyConsistent) {
  const auto [scheme, incl] = GetParam();
  const SimResult r = quick_run(BenchmarkId::kMcf, scheme, incl);

  ASSERT_EQ(r.levels.size(), 4u);
  EXPECT_EQ(r.total_refs, 8u * 12'000u);
  EXPECT_EQ(r.levels[0].accesses, r.total_refs);
  for (const auto& lvl : r.levels) {
    EXPECT_EQ(lvl.hits + lvl.misses, lvl.accesses);
    EXPECT_GE(lvl.tag_probes, lvl.accesses);  // every access probes the tags
  }
  // Universal identity: every L1 miss either hits at a lower level or
  // fetches from memory.
  EXPECT_EQ(r.demand_memory_accesses,
            r.levels[0].misses - r.levels[1].hits - r.levels[2].hits -
                r.levels[3].hits);
  if (incl != InclusionPolicy::kExclusive) {
    // Single-LLC-predictor identity: memory fetches = LLC walk-through
    // misses + authorized bypasses.
    EXPECT_EQ(r.demand_memory_accesses,
              r.levels.back().misses + r.predictor.predicted_absent);
  }
  if (has_predictor(scheme) && scheme != Scheme::kOracle) {
    EXPECT_EQ(r.predictor.predicted_absent + r.predictor.predicted_present,
              r.predictor.lookups);
    // Every classified walk is one predicted-present lookup.
    EXPECT_LE(r.predictor.true_positives + r.predictor.false_positives,
              r.predictor.predicted_present);
  } else if (scheme == Scheme::kOracle) {
    // The Oracle is costless: its queries are never counted as lookups.
    EXPECT_EQ(r.predictor.lookups, 0u);
  } else {
    EXPECT_EQ(r.predictor.lookups, 0u);
    EXPECT_EQ(r.predictor.predicted_absent, 0u);
  }
  EXPECT_GT(r.exec_cycles, 0u);
  EXPECT_GE(r.total_core_cycles, r.exec_cycles);
}

TEST_P(SchemePolicyProperty, DeterministicAcrossRuns) {
  const auto [scheme, incl] = GetParam();
  const SimResult a = quick_run(BenchmarkId::kSoplex, scheme, incl);
  const SimResult b = quick_run(BenchmarkId::kSoplex, scheme, incl);
  EXPECT_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_EQ(a.total_core_cycles, b.total_core_cycles);
  EXPECT_EQ(a.demand_memory_accesses, b.demand_memory_accesses);
  EXPECT_EQ(a.predictor.lookups, b.predictor.lookups);
  EXPECT_EQ(a.predictor.predicted_absent, b.predictor.predicted_absent);
  for (int lvl = 0; lvl < 4; ++lvl) {
    EXPECT_EQ(a.levels[lvl].hits, b.levels[lvl].hits);
    EXPECT_EQ(a.levels[lvl].evictions, b.levels[lvl].evictions);
  }
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST_P(SchemePolicyProperty, EnergyLedgerBalances) {
  const auto [scheme, incl] = GetParam();
  const SimResult r = quick_run(BenchmarkId::kMilc, scheme, incl);
  double parts = r.energy.predictor_dynamic_j + r.energy.recalibration_j +
                 r.energy.prefetcher_j + r.energy.memory_j;
  for (double v : r.energy.level_dynamic_j) parts += v;
  EXPECT_NEAR(r.energy.dynamic_total_j(), parts, 1e-18);
  EXPECT_GT(r.energy.leakage_j, 0.0);
  EXPECT_NEAR(r.energy.total_j(),
              r.energy.dynamic_total_j() + r.energy.leakage_j, 1e-18);
  // Memory is free under the paper's methodology.
  EXPECT_DOUBLE_EQ(r.energy.memory_j, 0.0);
}

TEST_P(SchemePolicyProperty, ConservativePredictionNeverLosesData) {
  // A bypass for data that was actually on chip would show up as a demand
  // memory fetch for a line the LLC already holds — which fill_at() would
  // then skip, leaving fills < demand fetches at the LLC.  Equality is the
  // observable footprint of the no-false-negative invariant.
  const auto [scheme, incl] = GetParam();
  if (incl == InclusionPolicy::kExclusive) return;  // LLC misses != fills
  const SimResult r = quick_run(BenchmarkId::kAstar, scheme, incl);
  EXPECT_EQ(r.levels.back().fills, r.demand_memory_accesses);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemePolicyProperty,
    ::testing::Values(
        SchemePolicy{Scheme::kBase, InclusionPolicy::kInclusive},
        SchemePolicy{Scheme::kPhased, InclusionPolicy::kInclusive},
        SchemePolicy{Scheme::kCbf, InclusionPolicy::kInclusive},
        SchemePolicy{Scheme::kRedhip, InclusionPolicy::kInclusive},
        SchemePolicy{Scheme::kOracle, InclusionPolicy::kInclusive},
        SchemePolicy{Scheme::kBase, InclusionPolicy::kHybrid},
        SchemePolicy{Scheme::kCbf, InclusionPolicy::kHybrid},
        SchemePolicy{Scheme::kRedhip, InclusionPolicy::kHybrid},
        SchemePolicy{Scheme::kOracle, InclusionPolicy::kHybrid},
        SchemePolicy{Scheme::kBase, InclusionPolicy::kExclusive},
        SchemePolicy{Scheme::kRedhip, InclusionPolicy::kExclusive},
        SchemePolicy{Scheme::kOracle, InclusionPolicy::kExclusive}),
    [](const ::testing::TestParamInfo<SchemePolicy>& param_info) {
      return to_string(std::get<0>(param_info.param)) + "_" +
             to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Per-workload properties.
// ---------------------------------------------------------------------------

class WorkloadProperty : public ::testing::TestWithParam<BenchmarkId> {};

TEST_P(WorkloadProperty, BaseRunIsWellFormed) {
  const SimResult r = quick_run(GetParam(), Scheme::kBase,
                                InclusionPolicy::kInclusive);
  EXPECT_EQ(r.levels[0].accesses, r.total_refs);
  EXPECT_GT(r.hit_rate(0), 0.3) << "no workload is pure cache-miss noise";
  EXPECT_LT(r.hit_rate(0), 0.999) << "every workload must exercise the LLC";
  EXPECT_GT(r.demand_memory_accesses, 0u);
  EXPECT_GT(r.offchip_fraction(), 0.0);
  EXPECT_LE(r.offchip_fraction(), 1.0);
}

TEST_P(WorkloadProperty, RedhipBypassAccountingMatchesSkipCounters) {
  const SimResult r = quick_run(GetParam(), Scheme::kRedhip,
                                InclusionPolicy::kInclusive);
  // Each inclusive bypass skips exactly L2, L3 and L4 (prefetch is off).
  const std::uint64_t skipped_total =
      r.levels[1].skipped + r.levels[2].skipped + r.levels[3].skipped;
  EXPECT_EQ(skipped_total, 3 * r.predictor.predicted_absent);
}

TEST_P(WorkloadProperty, RedhipNeverSlowerThanBaseByMuch) {
  // The PT delay bounds the worst case: even a useless predictor cannot
  // cost more than lookup_delay per L1 miss.
  const SimResult base = quick_run(GetParam(), Scheme::kBase,
                                   InclusionPolicy::kInclusive);
  const SimResult red = quick_run(GetParam(), Scheme::kRedhip,
                                  InclusionPolicy::kInclusive);
  const double worst =
      static_cast<double>(base.total_core_cycles +
                          base.levels[0].misses * 6 +
                          red.recal_stall_cycles * 8) /
      static_cast<double>(base.total_core_cycles);
  EXPECT_LE(static_cast<double>(red.total_core_cycles) /
                static_cast<double>(base.total_core_cycles),
            worst + 1e-9);
}

TEST_P(WorkloadProperty, OracleDominatesRedhipOnEnergy) {
  const SimResult base = quick_run(GetParam(), Scheme::kBase,
                                   InclusionPolicy::kInclusive);
  const SimResult red = quick_run(GetParam(), Scheme::kRedhip,
                                  InclusionPolicy::kInclusive);
  const SimResult oracle = quick_run(GetParam(), Scheme::kOracle,
                                     InclusionPolicy::kInclusive);
  EXPECT_LE(compare(base, oracle).dyn_energy_ratio,
            compare(base, red).dyn_energy_ratio + 1e-9)
      << "a perfect predictor can never lose to an approximate one";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadProperty, ::testing::ValuesIn(all_benchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId>& param_info) {
      return to_string(param_info.param);
    });

// ---------------------------------------------------------------------------
// Scale invariance of the structural properties.
// ---------------------------------------------------------------------------

class ScaleProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScaleProperty, GeometryInvariantsHoldAtEveryScale) {
  const std::uint32_t scale = GetParam();
  const HierarchyConfig c = HierarchyConfig::scaled(scale, Scheme::kRedhip);
  // One 64-bit PT line per LLC set at every scale (p - k = 6).
  EXPECT_EQ(c.redhip.index_bits(), c.llc().geom.set_bits() + 6);
  // L3/L4 keep a tag/data split (Phased Cache needs it).
  EXPECT_GT(c.levels[2].energy.tag_energy_nj, 0.0);
  EXPECT_GT(c.levels[3].energy.tag_energy_nj, 0.0);
  EXPECT_LT(c.levels[2].energy.tag_delay, c.levels[2].energy.data_delay);
  // The CBF still fits the same area budget.
  EXPECT_LE(c.cbf.storage_bits(), c.redhip.table_bits);
}

TEST_P(ScaleProperty, SimulationRunsAndBalancesAtEveryScale) {
  const std::uint32_t scale = GetParam();
  RunSpec spec;
  spec.bench = BenchmarkId::kMilc;
  spec.scheme = Scheme::kRedhip;
  spec.scale = scale;
  spec.refs_per_core = 6'000;
  const SimResult r = run_spec(spec);
  EXPECT_EQ(r.total_refs, 8u * 6'000u);
  EXPECT_EQ(r.demand_memory_accesses,
            r.levels.back().misses + r.predictor.predicted_absent);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, ScaleProperty,
                         ::testing::Values(4u, 8u, 16u, 32u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "scale" + std::to_string(i.param);
                         });

// ---------------------------------------------------------------------------
// Auto-disable (§IV) behaviour.
// ---------------------------------------------------------------------------

TEST(AutoDisable, GatesOffOnL1ResidentWorkload) {
  // A tiny working set -> ~100% L1 hits -> the predictor should switch off
  // and stop burning lookups.
  RunSpec spec;
  spec.bench = BenchmarkId::kCactusADM;  // the friendliest suite member
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 40'000;
  spec.tweak = [](HierarchyConfig& c) {
    c.auto_disable.enabled = true;
    c.auto_disable.epoch_refs = 20'000;
    // Force the gate by requiring an unrealistically useful predictor.
    c.auto_disable.min_bypass_ppm = 990'000;
  };
  const SimResult gated = run_spec(spec);
  EXPECT_GT(gated.predictor_disabled_refs, 0u);

  spec.tweak = [](HierarchyConfig& c) { c.auto_disable.enabled = true; };
  const SimResult normal = run_spec(spec);
  // With default thresholds the suite workloads keep the predictor useful
  // most of the time.
  EXPECT_LT(normal.predictor_disabled_refs, normal.total_refs / 2);
}

TEST(AutoDisable, DisabledPredictorAddsNoLatency) {
  RunSpec spec;
  spec.bench = BenchmarkId::kLbm;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 30'000;
  spec.tweak = [](HierarchyConfig& c) {
    c.auto_disable.enabled = true;
    c.auto_disable.epoch_refs = 10'000;
    c.auto_disable.min_bypass_ppm = 1'000'000;  // gate always closes
  };
  const SimResult gated = run_spec(spec);
  spec.scheme = Scheme::kBase;
  spec.tweak = nullptr;
  const SimResult base = run_spec(spec);
  // Once gated the machine behaves like Base except for the probe epochs
  // and re-activation recalibrations.
  EXPECT_GT(gated.predictor_disabled_refs, gated.total_refs / 4);
  EXPECT_LT(static_cast<double>(gated.total_core_cycles),
            static_cast<double>(base.total_core_cycles) * 1.05);
}

TEST(AutoDisable, RejectedForExclusiveHierarchy) {
  HierarchyConfig c =
      HierarchyConfig::scaled(32, Scheme::kRedhip, InclusionPolicy::kExclusive);
  c.auto_disable.enabled = true;
  EXPECT_THROW(c.validate(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Recalibration modes.
// ---------------------------------------------------------------------------

class RecalModeProperty : public ::testing::TestWithParam<RecalMode> {};

TEST_P(RecalModeProperty, AggregateRecalWorkMatchesInterval) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 40'000;
  const RecalMode mode = GetParam();
  spec.tweak = [mode](HierarchyConfig& c) {
    c.redhip.recal_mode = mode;
    c.redhip.recal_interval_l1_misses = 5'000;
  };
  const SimResult r = run_spec(spec);
  const std::uint64_t misses = r.levels[0].misses;
  const HierarchyConfig c = HierarchyConfig::scaled(32, Scheme::kRedhip);
  const std::uint64_t sets = c.llc().geom.sets();
  // Both modes rebuild every set once per interval: total set reads ≈
  // (misses / interval) * sets, within one interval of slack.
  const std::uint64_t expected = misses * sets / 5'000;
  EXPECT_GE(r.predictor.recal_sets_read + sets, expected);
  EXPECT_LE(r.predictor.recal_sets_read, expected + sets);
  EXPECT_GT(r.predictor.predicted_absent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, RecalModeProperty,
                         ::testing::Values(RecalMode::kBatch,
                                           RecalMode::kRolling),
                         [](const ::testing::TestParamInfo<RecalMode>& i) {
                           return to_string(i.param);
                         });

TEST(RecalModeEquivalence, RollingEndsExactAfterFullPass) {
  // After any prefix of rolling work that completes a whole pass with no
  // interleaved fills, the table must equal a batch rebuild.
  CacheGeometry g;
  g.size_bytes = 64_KiB;
  g.ways = 16;
  TagArray llc(g);
  Xoshiro256 rng(5);
  for (int i = 0; i < 3000; ++i) {
    const LineAddr l = rng.below(1 << 14);
    if (!llc.contains(l)) llc.fill(l);
  }
  RedhipConfig cfg;
  cfg.table_bits = 1 << 12;
  RedhipTable rolling(cfg), batch(cfg);
  // Pollute both tables with stale bits first.
  for (int i = 0; i < 500; ++i) {
    rolling.on_fill(rng.next());
  }
  for (std::uint64_t s = 0; s < llc.sets(); s += 16) {
    rolling.recalibrate_sets(llc, s, 16);
  }
  batch.recalibrate(llc);
  EXPECT_EQ(rolling.bits_set(), batch.bits_set());
  for (std::uint64_t i = 0; i < cfg.table_bits; ++i) {
    ASSERT_EQ(rolling.test_bit(i), batch.test_bit(i)) << "bit " << i;
  }
}

}  // namespace
}  // namespace redhip
