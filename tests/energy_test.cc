// Tests for src/energy: cacti_lite anchor fidelity and interpolation
// behaviour, and EnergyLedger pricing.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/cacti_lite.h"
#include "energy/ledger.h"
#include "energy/params.h"

namespace redhip {
namespace {

TEST(CactiLite, ReproducesTableIAnchorsExactly) {
  const auto l1 = CactiLite::cache_params(32_KiB);
  EXPECT_EQ(l1.data_delay, 2u);
  EXPECT_DOUBLE_EQ(l1.data_energy_nj, 0.0144);
  EXPECT_DOUBLE_EQ(l1.leakage_w, 0.0013);

  const auto l2 = CactiLite::cache_params(256_KiB);
  EXPECT_EQ(l2.data_delay, 6u);
  EXPECT_DOUBLE_EQ(l2.data_energy_nj, 0.0634);
  EXPECT_DOUBLE_EQ(l2.leakage_w, 0.02);

  const auto l3 = CactiLite::cache_params(4_MiB);
  EXPECT_EQ(l3.tag_delay, 9u);
  EXPECT_EQ(l3.data_delay, 12u);
  EXPECT_DOUBLE_EQ(l3.tag_energy_nj, 0.348);
  EXPECT_DOUBLE_EQ(l3.data_energy_nj, 0.839);
  EXPECT_DOUBLE_EQ(l3.leakage_w, 0.16);

  const auto l4 = CactiLite::cache_params(64_MiB);
  EXPECT_EQ(l4.tag_delay, 13u);
  EXPECT_EQ(l4.data_delay, 22u);
  EXPECT_DOUBLE_EQ(l4.tag_energy_nj, 1.171);
  EXPECT_DOUBLE_EQ(l4.data_energy_nj, 5.542);
  EXPECT_DOUBLE_EQ(l4.leakage_w, 2.56);
}

TEST(CactiLite, ParallelHelpersMatchTableI) {
  const auto l4 = CactiLite::cache_params(64_MiB);
  EXPECT_EQ(l4.parallel_delay(), 22u);
  EXPECT_DOUBLE_EQ(l4.parallel_energy_nj(), 6.713);
}

TEST(CactiLite, InterpolationIsMonotoneInSize) {
  double prev_e = 0.0, prev_leak = 0.0;
  for (std::uint64_t size = 16_KiB; size <= 128_MiB; size *= 2) {
    const auto p = CactiLite::cache_params(size);
    const double e = p.parallel_energy_nj();
    EXPECT_GT(e, prev_e) << "size " << size;
    EXPECT_GT(p.leakage_w, prev_leak) << "size " << size;
    prev_e = e;
    prev_leak = p.leakage_w;
  }
}

TEST(CactiLite, TagToDataRatioStaysInPublishedBand) {
  // Phased Cache's premise: tag:data between roughly 1:3 and 1:5 for the
  // large levels.
  for (std::uint64_t size : {2_MiB, 4_MiB, 8_MiB, 16_MiB, 32_MiB, 64_MiB}) {
    const auto p = CactiLite::cache_params(size);
    ASSERT_GT(p.tag_energy_nj, 0.0);
    const double ratio = p.data_energy_nj / p.tag_energy_nj;
    EXPECT_GT(ratio, 2.0) << "size " << size;
    EXPECT_LT(ratio, 6.0) << "size " << size;
  }
}

TEST(CactiLite, SmallCachesFoldTagIntoData) {
  const auto p = CactiLite::cache_params(128_KiB);
  EXPECT_EQ(p.tag_delay, 0u);
  EXPECT_DOUBLE_EQ(p.tag_energy_nj, 0.0);
  EXPECT_GT(p.data_energy_nj, 0.0144);
  EXPECT_LT(p.data_energy_nj, 0.0634);
}

TEST(CactiLite, PtParamsMatchTableIAt512K) {
  const auto p = CactiLite::pt_params(512_KiB);
  EXPECT_EQ(p.access_delay, 1u);
  EXPECT_EQ(p.wire_delay, 5u);
  EXPECT_DOUBLE_EQ(p.access_energy_nj, 0.02);
  EXPECT_EQ(p.total_delay(), 6u);
}

TEST(CactiLite, PtEnergyScalesSubLinearly) {
  const auto small = CactiLite::pt_params(64_KiB);
  const auto big = CactiLite::pt_params(2_MiB);
  // sqrt scaling: 64KB is 1/8 the capacity of 512KB -> ~0.354x energy.
  EXPECT_NEAR(small.access_energy_nj, 0.02 / std::sqrt(8.0), 1e-9);
  EXPECT_NEAR(big.access_energy_nj, 0.02 * 2.0, 1e-9);
  EXPECT_EQ(big.access_delay, 2u);  // above 1MB costs one extra cycle
}

TEST(CactiLite, PtMuchCheaperThanEqualSizedL2) {
  // The paper's point: a 512KB direct-mapped 64-bit-entry table costs far
  // less per access than a 256KB set-associative cache.
  const auto pt = CactiLite::pt_params(512_KiB);
  const auto l2 = CactiLite::cache_params(256_KiB);
  EXPECT_LT(pt.access_energy_nj, l2.data_energy_nj / 2.0);
}

// --------------------------------------------------------------- EnergyLedger

EnergyLedger tiny_ledger(bool charge_fills = true) {
  LevelEnergyParams l1{"L1", 0, 2, 0.0, 1.0, 0.5};
  LevelEnergyParams llc{"LLC", 3, 5, 2.0, 10.0, 2.0};
  PredictorEnergyParams pt;
  pt.access_energy_nj = 0.1;
  return EnergyLedger({l1, llc}, pt, /*num_private_instances=*/4,
                      /*shared_last_level=*/true, charge_fills);
}

TEST(Ledger, PricesProbesFillsAndInvalidations) {
  EnergyLedger ledger = tiny_ledger();
  std::vector<LevelEvents> ev(2);
  ev[0].tag_probes = 10;   // priced at 0 (folded)
  ev[0].data_probes = 10;  // 10 nJ
  ev[1].tag_probes = 4;    // 8 nJ
  ev[1].data_probes = 2;   // 20 nJ
  ev[1].fills = 1;         // tag+data = 12 nJ
  ev[0].invalidations = 3; // priced at data (folded) = 3 nJ
  const auto b = ledger.price(ev, {}, {}, 0, 0.0, 0.0, 0.0);
  EXPECT_NEAR(b.level_dynamic_j[0], (10.0 + 3.0) * 1e-9, 1e-15);
  EXPECT_NEAR(b.level_dynamic_j[1], (8.0 + 20.0 + 12.0) * 1e-9, 1e-15);
  EXPECT_NEAR(b.dynamic_total_j(), 53.0 * 1e-9, 1e-15);
}

TEST(Ledger, FillsFreeUnderPaperAccounting) {
  EnergyLedger ledger = tiny_ledger(/*charge_fills=*/false);
  std::vector<LevelEvents> ev(2);
  ev[1].fills = 100;
  ev[1].data_probes = 1;
  const auto b = ledger.price(ev, {}, {}, 0, 0.0, 0.0, 0.0);
  EXPECT_NEAR(b.level_dynamic_j[1], 10.0 * 1e-9, 1e-15)
      << "only the probe is priced; installs are part of the miss cost";
}

TEST(Ledger, PricesPredictorAndRecalibration) {
  EnergyLedger ledger = tiny_ledger();
  PredictorEvents pe;
  pe.lookups = 100;
  pe.updates = 50;
  pe.recal_sets_read = 10;      // at LLC tag energy 2.0
  pe.recal_words_written = 20;  // at PT energy 0.1
  const auto b =
      ledger.price(std::vector<LevelEvents>(2), pe, {}, 0, 0.0, 0.0, 0.0);
  EXPECT_NEAR(b.predictor_dynamic_j, 150 * 0.1 * 1e-9, 1e-15);
  // Set reads are sequential sweeps: a quarter of an associative tag probe.
  EXPECT_NEAR(b.recalibration_j, (10 * 2.0 * 0.25 + 20 * 0.1) * 1e-9, 1e-15);
}

TEST(Ledger, LeakageCountsPrivateInstancesAndSharedOnce) {
  EnergyLedger ledger = tiny_ledger();
  // 4 private L1 at 0.5W + one shared LLC at 2.0W + predictor 0.3W = 4.3W.
  const auto b = ledger.price(std::vector<LevelEvents>(2), {}, {}, 0, 0.0,
                              /*elapsed_seconds=*/2.0,
                              /*predictor_leakage_w=*/0.3);
  EXPECT_NEAR(b.leakage_j, 4.3 * 2.0, 1e-12);
}

TEST(Ledger, MemoryEnergy) {
  EnergyLedger ledger = tiny_ledger();
  const auto b = ledger.price(std::vector<LevelEvents>(2), {}, {},
                              /*memory_accesses=*/1000,
                              /*memory_energy_nj=*/20.0, 0.0, 0.0);
  EXPECT_NEAR(b.memory_j, 1000 * 20.0 * 1e-9, 1e-15);
}

TEST(Ledger, TotalIsSumOfParts) {
  EnergyLedger ledger = tiny_ledger();
  std::vector<LevelEvents> ev(2);
  ev[1].data_probes = 7;
  PredictorEvents pe;
  pe.lookups = 3;
  PrefetchEvents pf;
  pf.table_lookups = 11;
  const auto b = ledger.price(ev, pe, pf, 5, 1.0, 1.5, 0.1);
  EXPECT_NEAR(b.total_j(),
              b.level_dynamic_j[0] + b.level_dynamic_j[1] +
                  b.predictor_dynamic_j + b.recalibration_j + b.prefetcher_j +
                  b.memory_j + b.leakage_j,
              1e-18);
}

TEST(Ledger, RejectsMismatchedLevelCount) {
  EnergyLedger ledger = tiny_ledger();
  EXPECT_THROW(
      ledger.price(std::vector<LevelEvents>(3), {}, {}, 0, 0.0, 0.0, 0.0),
      std::logic_error);
}

TEST(LevelEvents, AccumulationOperator) {
  LevelEvents a, b;
  a.tag_probes = 1;
  a.hits = 2;
  b.tag_probes = 10;
  b.hits = 20;
  b.skipped = 5;
  a += b;
  EXPECT_EQ(a.tag_probes, 11u);
  EXPECT_EQ(a.hits, 22u);
  EXPECT_EQ(a.skipped, 5u);
}

}  // namespace
}  // namespace redhip
