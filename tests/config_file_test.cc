// Tests for the text config-file loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "harness/config_file.h"

namespace redhip {
namespace {

const char* kTableIText = R"(
# Table I, full size
cores = 8
freq_ghz = 3.7
scheme = redhip
inclusion = inclusive

[level]
size = 32K
ways = 4

[level]
size = 256K
ways = 8

[level]
size = 4M
ways = 16
banks = 4
split_tags = true

[level]
size = 64M
ways = 16
banks = 8
split_tags = true

[redhip]
table_bits = 4M
recal_interval = 1000000
recal_mode = rolling
banks = 4
)";

TEST(ConfigFile, ParsesTheTableIMachine) {
  const HierarchyConfig c = parse_config_text(kTableIText);
  EXPECT_EQ(c.cores, 8u);
  EXPECT_DOUBLE_EQ(c.freq_ghz, 3.7);
  EXPECT_EQ(c.scheme, Scheme::kRedhip);
  ASSERT_EQ(c.num_levels(), 4u);
  EXPECT_EQ(c.levels[0].geom.size_bytes, 32_KiB);
  EXPECT_EQ(c.levels[3].geom.size_bytes, 64_MiB);
  EXPECT_EQ(c.levels[3].geom.banks, 8u);
  EXPECT_EQ(c.redhip.table_bits, 4u * 1024 * 1024);
  EXPECT_EQ(c.redhip.recal_mode, RecalMode::kRolling);
  // Energy derivation happened: exact Table I numbers at the anchors.
  EXPECT_DOUBLE_EQ(c.levels[0].energy.data_energy_nj, 0.0144);
  EXPECT_DOUBLE_EQ(c.levels[3].energy.tag_energy_nj, 1.171);
}

TEST(ConfigFile, MatchesTheBuiltinFactory) {
  const HierarchyConfig parsed = parse_config_text(kTableIText);
  const HierarchyConfig built = HierarchyConfig::paper(Scheme::kRedhip);
  ASSERT_EQ(parsed.num_levels(), built.num_levels());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parsed.levels[i].geom.size_bytes,
              built.levels[i].geom.size_bytes);
    EXPECT_EQ(parsed.levels[i].geom.ways, built.levels[i].geom.ways);
    EXPECT_DOUBLE_EQ(parsed.levels[i].energy.data_energy_nj,
                     built.levels[i].energy.data_energy_nj);
  }
  EXPECT_EQ(parsed.redhip.table_bits, built.redhip.table_bits);
}

TEST(ConfigFile, SizeSuffixes) {
  const HierarchyConfig c = parse_config_text(R"(
[level]
size = 2048
ways = 2
[level]
size = 1M
ways = 4
)");
  EXPECT_EQ(c.levels[0].geom.size_bytes, 2048u);
  EXPECT_EQ(c.levels[1].geom.size_bytes, 1_MiB);
}

TEST(ConfigFile, CommentsAndWhitespaceIgnored) {
  const HierarchyConfig c = parse_config_text(
      "  cores =  4   # four cores\n"
      "[level]\n size=8K # tiny\n ways = 2\n"
      "[level]\nsize = 64K\nways = 4\n");
  EXPECT_EQ(c.cores, 4u);
  EXPECT_EQ(c.num_levels(), 2u);
}

TEST(ConfigFile, UnknownKeysAreErrorsWithLineNumbers) {
  try {
    parse_config_text("cores = 8\nwibble = 3\n");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wibble"), std::string::npos);
  }
}

TEST(ConfigFile, RejectsBadValuesAndSections) {
  EXPECT_THROW(parse_config_text("[nonsense]\n"), std::logic_error);
  EXPECT_THROW(parse_config_text("scheme = warp-drive\n[level]\nsize=8K\n"),
               std::logic_error);
  EXPECT_THROW(parse_config_text("cores\n"), std::logic_error);
  EXPECT_THROW(parse_config_text("cores = 8\n"), std::logic_error)
      << "a machine with no levels must not validate";
}

TEST(ConfigFile, BadNumericValuesNameTheLineAndKey) {
  try {
    parse_config_text("cores = 8\nfreq_ghz = fast\n[level]\nsize=8K\n");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("key 'freq_ghz'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fast"), std::string::npos) << msg;
  }
  try {
    parse_config_text("[level]\nsize = 8K\nways = 2x\n");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("key 'ways'"), std::string::npos) << msg;
  }
  try {
    parse_config_text("prefetch = maybe\n[level]\nsize=8K\n");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("key 'prefetch'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad boolean"), std::string::npos) << msg;
  }
}

TEST(ConfigFile, ParsesFaultAndAuditSections) {
  const HierarchyConfig c = parse_config_text(R"(
scheme = redhip
[level]
size = 8K
ways = 2
[level]
size = 64M
ways = 16
[fault]
enabled = true
rate_per_mref = 250
sites = pt_clear,recal_drop
seed = 777
transient = false
[audit]
enabled = true
policy = count-only
)");
  EXPECT_TRUE(c.fault.enabled);
  EXPECT_EQ(c.fault.rate_per_mref, 250u);
  EXPECT_EQ(c.fault.site_mask,
            static_cast<std::uint32_t>(FaultSite::kPtBitClear) |
                static_cast<std::uint32_t>(FaultSite::kRecalDrop));
  EXPECT_EQ(c.fault.seed, 777u);
  EXPECT_FALSE(c.fault.transient);
  EXPECT_TRUE(c.audit.enabled);
  EXPECT_EQ(c.audit.policy, RecoveryPolicy::kCountOnly);
}

TEST(ConfigFile, RejectsBadFaultAndAuditValues) {
  const char* kPrefix =
      "scheme = redhip\n[level]\nsize=8K\nways=2\n[level]\nsize=64M\nways=16\n";
  try {
    parse_config_text(std::string(kPrefix) + "[fault]\nsites = pt_clear,bogus\n");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
  }
  try {
    parse_config_text(std::string(kPrefix) + "[audit]\npolicy = panic\n");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("panic"), std::string::npos) << msg;
  }
  EXPECT_THROW(
      parse_config_text(std::string(kPrefix) + "[fault]\nwibble = 1\n"),
      std::logic_error);
}

TEST(ConfigFile, FaultAndAuditRoundTripThroughText) {
  HierarchyConfig original = HierarchyConfig::scaled(8, Scheme::kRedhip);
  original.fault.enabled = true;
  original.fault.rate_per_mref = 42;
  original.fault.site_mask = static_cast<std::uint32_t>(FaultSite::kPtBitSet);
  original.fault.seed = 12345;
  original.audit.enabled = true;
  original.audit.policy = RecoveryPolicy::kRecalibrate;
  const HierarchyConfig reparsed = parse_config_text(config_to_text(original));
  EXPECT_TRUE(reparsed.fault.enabled);
  EXPECT_EQ(reparsed.fault.rate_per_mref, 42u);
  EXPECT_EQ(reparsed.fault.site_mask, original.fault.site_mask);
  EXPECT_EQ(reparsed.fault.seed, 12345u);
  EXPECT_TRUE(reparsed.audit.enabled);
  EXPECT_EQ(reparsed.audit.policy, RecoveryPolicy::kRecalibrate);
}

TEST(ConfigFile, ValidationStillApplies) {
  // p <= k must be rejected just like a programmatic config.
  EXPECT_THROW(parse_config_text(R"(
scheme = redhip
[level]
size = 8K
ways = 2
[level]
size = 64M
ways = 16
[redhip]
table_bits = 1K
)"),
               std::logic_error);
}

TEST(ConfigFile, RoundTripsThroughText) {
  const HierarchyConfig original = HierarchyConfig::scaled(8, Scheme::kCbf);
  const std::string text = config_to_text(original);
  const HierarchyConfig reparsed = parse_config_text(text);
  EXPECT_EQ(reparsed.cores, original.cores);
  EXPECT_EQ(reparsed.scheme, original.scheme);
  ASSERT_EQ(reparsed.num_levels(), original.num_levels());
  for (std::uint32_t i = 0; i < original.num_levels(); ++i) {
    EXPECT_EQ(reparsed.levels[i].geom.size_bytes,
              original.levels[i].geom.size_bytes);
    EXPECT_EQ(reparsed.levels[i].phased, original.levels[i].phased);
  }
  EXPECT_EQ(reparsed.redhip.recal_interval_l1_misses,
            original.redhip.recal_interval_l1_misses);
}

TEST(ConfigFile, LoadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/machine.cfg";
  {
    std::ofstream out(path);
    out << kTableIText;
  }
  const HierarchyConfig c = load_config_file(path);
  EXPECT_EQ(c.levels[3].geom.size_bytes, 64_MiB);
  std::remove(path.c_str());
  EXPECT_THROW(load_config_file(path), std::logic_error);
}

}  // namespace
}  // namespace redhip
