// Checkpoint/restore bit-identity (src/ckpt + harness/run wiring).  A run
// that checkpoints mid-way, is discarded, and then resumes from the file in
// a fresh process-equivalent simulator must be indistinguishable from an
// uninterrupted run: stats_identical, byte-identical json_report, and a
// byte-identical JSONL event trace — on all three engines.  A corrupted
// checkpoint degrades to a cold start (with the file evicted), never to a
// wrong result.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "ckpt/checkpoint_io.h"
#include "harness/json_report.h"
#include "harness/run.h"
#include "sim/stats.h"
#include "sweep/sweep.h"

namespace redhip {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CkptRestoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "redhip_ckpt_restore";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  RunSpec traced_spec(SimEngine engine, const std::string& trace_name) {
    RunSpec spec;
    spec.bench = BenchmarkId::kMcf;
    spec.scheme = Scheme::kRedhip;
    spec.scale = 8;
    spec.refs_per_core = 20'000;
    spec.seed = 1234;
    spec.engine = engine;
    const std::string path = (dir_ / trace_name).string();
    spec.tweak = [path](HierarchyConfig& hc) {
      hc.obs.enabled = true;
      hc.obs.epoch_refs = 20'000;  // several epochs over the 160k total
      hc.obs.trace_path = path;
    };
    return spec;
  }

  std::string trace_of(const std::string& trace_name) {
    return slurp((dir_ / trace_name).string());
  }

  std::filesystem::path dir_;
};

void expect_same_run(const SimResult& a, const SimResult& b,
                     const std::string& what) {
  EXPECT_TRUE(stats_identical(a, b)) << what;
  EXPECT_EQ(to_json(a), to_json(b)) << what;
  EXPECT_GT(a.total_refs, 0u) << what;
}

TEST_F(CkptRestoreTest, SaveRestoreBitIdenticalOnEveryEngine) {
  for (SimEngine engine :
       {SimEngine::kFast, SimEngine::kReference, SimEngine::kParallel}) {
    const std::string name = engine_name(engine);
    const std::string ckpt = (dir_ / (name + ".ckpt")).string();

    // Uninterrupted: the oracle every other run must match.
    const SimResult plain = run_spec(traced_spec(engine, name + "-a.jsonl"));

    // Same run, checkpointing mid-way.  The checkpoint itself must be
    // invisible: this run's stats/report/trace already match the oracle.
    RunSpec saving = traced_spec(engine, name + "-b.jsonl");
    saving.ckpt_path = ckpt;
    saving.ckpt_save_at_refs = 60'000;  // mid-run (160k aggregate refs)
    const SimResult saved = run_spec(saving);
    expect_same_run(plain, saved, name + " with checkpointing on");
    EXPECT_EQ(trace_of(name + "-a.jsonl"), trace_of(name + "-b.jsonl"))
        << name;
    ASSERT_TRUE(std::filesystem::exists(ckpt)) << name;

    // Fresh simulator, restore, continue: still the same run, including the
    // JSONL prefix emitted before the checkpoint was taken.
    RunSpec resuming = traced_spec(engine, name + "-c.jsonl");
    resuming.ckpt_path = ckpt;
    resuming.ckpt_restore = true;
    const SimResult resumed = run_spec(resuming);
    expect_same_run(plain, resumed, name + " restored");
    EXPECT_EQ(trace_of(name + "-a.jsonl"), trace_of(name + "-c.jsonl"))
        << name;
  }
}

// Restoring with an interval configured must not immediately re-save, and
// a restored run keeps checkpointing from where it left off.
TEST_F(CkptRestoreTest, RestoredRunKeepsCheckpointing) {
  const std::string ckpt = (dir_ / "interval.ckpt").string();
  const SimResult plain = run_spec(traced_spec(SimEngine::kFast, "p.jsonl"));

  RunSpec saving = traced_spec(SimEngine::kFast, "q.jsonl");
  saving.ckpt_path = ckpt;
  saving.ckpt_interval_refs = 30'000;
  const SimResult saved = run_spec(saving);
  expect_same_run(plain, saved, "interval checkpointing");
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  RunSpec resuming = traced_spec(SimEngine::kFast, "r.jsonl");
  resuming.ckpt_path = ckpt;
  resuming.ckpt_interval_refs = 30'000;
  resuming.ckpt_restore = true;
  const SimResult resumed = run_spec(resuming);
  expect_same_run(plain, resumed, "restored with interval");
  EXPECT_EQ(trace_of("p.jsonl"), trace_of("r.jsonl"));
}

// Graceful degradation: a corrupt checkpoint is evicted with a DATA_LOSS
// diagnostic and the run cold-starts to the identical result.
TEST_F(CkptRestoreTest, CorruptCheckpointColdStartsAndEvicts) {
  const std::string ckpt = (dir_ / "corrupt.ckpt").string();
  const SimResult plain = run_spec(traced_spec(SimEngine::kFast, "x.jsonl"));

  RunSpec saving = traced_spec(SimEngine::kFast, "y.jsonl");
  saving.ckpt_path = ckpt;
  saving.ckpt_save_at_refs = 60'000;
  run_spec(saving);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // Flip one payload byte.
  std::string bytes = slurp(ckpt);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  RunSpec resuming = traced_spec(SimEngine::kFast, "z.jsonl");
  resuming.ckpt_path = ckpt;
  resuming.ckpt_restore = true;
  const SimResult resumed = run_spec(resuming);
  expect_same_run(plain, resumed, "cold start after corruption");
  EXPECT_EQ(trace_of("x.jsonl"), trace_of("z.jsonl"));
  EXPECT_FALSE(std::filesystem::exists(ckpt)) << "corrupt file not evicted";
}

// A checkpoint written past this run's end (a longer run's file under the
// same key) is ignored — but kept on disk for the run it belongs to.
TEST_F(CkptRestoreTest, AheadOfRunCheckpointIsIgnoredNotEvicted) {
  const std::string ckpt = (dir_ / "ahead.ckpt").string();
  RunSpec long_run = traced_spec(SimEngine::kFast, "long.jsonl");
  long_run.ckpt_path = ckpt;
  long_run.ckpt_save_at_refs = 150'000;  // near the end of 160k aggregate
  run_spec(long_run);
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  RunSpec short_run = traced_spec(SimEngine::kFast, "short-b.jsonl");
  short_run.refs_per_core = 10'000;  // 80k aggregate < checkpoint position
  short_run.ckpt_path = ckpt;
  short_run.ckpt_restore = true;
  const SimResult got = run_spec(short_run);

  RunSpec short_plain = traced_spec(SimEngine::kFast, "short-a.jsonl");
  short_plain.refs_per_core = 10'000;
  const SimResult want = run_spec(short_plain);
  expect_same_run(want, got, "short run under a longer run's checkpoint");
  EXPECT_EQ(trace_of("short-a.jsonl"), trace_of("short-b.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(ckpt)) << "valid file wrongly evicted";
}

// Sweep warmup sharing: cells that differ only in refs_per_core share a
// checkpoint key, so with warmup_refs set the first cell writes one warmup
// file and the others restore from it.  Results must be bit-identical to
// the same sweep run cold, and the shared file must exist (exactly one per
// key — not one per cell).
TEST_F(CkptRestoreTest, SweepWarmupSharingIsBitIdentical) {
  SweepSpec spec;
  spec.base.bench = BenchmarkId::kMcf;
  spec.base.scheme = Scheme::kRedhip;
  spec.base.scale = 8;
  spec.base.seed = 1234;
  SweepAxis refs_axis{"refs", {}};
  for (std::uint64_t refs : {10'000ull, 15'000ull, 20'000ull}) {
    refs_axis.values.push_back({std::to_string(refs), [refs](RunSpec& s) {
                                  s.refs_per_core = refs;
                                }});
  }
  spec.axes.push_back(std::move(refs_axis));

  const SweepOutcome cold = run_sweep(spec, {});

  SweepRunOptions warm;
  warm.ckpt_dir = (dir_ / "sweep-ckpt").string();
  warm.warmup_refs = 40'000;  // inside the smallest cell (80k aggregate)
  warm.jobs = 1;  // serial: later cells see the first cell's warmup file
  const SweepOutcome shared = run_sweep(spec, warm);

  ASSERT_EQ(cold.cells.size(), shared.cells.size());
  for (std::size_t i = 0; i < cold.cells.size(); ++i) {
    EXPECT_TRUE(shared.cells[i].status.ok());
    EXPECT_TRUE(
        stats_identical(cold.cells[i].result, shared.cells[i].result))
        << "cell " << i;
    EXPECT_GT(shared.cells[i].result.total_refs, 0u);
  }
  // One shared warmup file for the whole refs axis.
  std::size_t files = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(warm.ckpt_dir)) {
    files += e.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(files, 1u);
}

}  // namespace
}  // namespace redhip
