// Tests for dirty-line tracking and writeback accounting (the
// `model_writebacks` extension; off in the paper's methodology).
#include <gtest/gtest.h>

#include "harness/run.h"
#include "sim/simulator.h"
#include "trace/mem_ref.h"

namespace redhip {
namespace {

CacheGeometry tiny_geom() {
  CacheGeometry g;
  g.size_bytes = 512;  // 2 sets x 4 ways
  g.ways = 4;
  return g;
}

TEST(DirtyBits, WriteHitDirtiesReadHitDoesNot) {
  TagArray arr(tiny_geom());
  arr.fill(0);
  arr.lookup(0, /*is_write=*/false);
  EXPECT_FALSE(arr.is_dirty(0));
  arr.lookup(0, /*is_write=*/true);
  EXPECT_TRUE(arr.is_dirty(0));
}

TEST(DirtyBits, FillCanInstallDirty) {
  TagArray arr(tiny_geom());
  arr.fill(2, false, /*dirty=*/true);
  EXPECT_TRUE(arr.is_dirty(2));
  arr.fill(4);
  EXPECT_FALSE(arr.is_dirty(4));
}

TEST(DirtyBits, EvictionReportsDirtyVictim) {
  TagArray arr(tiny_geom());
  arr.fill(0, false, true);  // dirty, will become LRU
  arr.fill(2);
  arr.fill(4);
  arr.fill(6);
  const auto r = arr.fill(8);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 0u);
  EXPECT_TRUE(r.victim_was_dirty);
}

TEST(DirtyBits, InvalidateReportsAndClearsDirty) {
  TagArray arr(tiny_geom());
  arr.fill(0, false, true);
  bool was_dirty = false;
  EXPECT_TRUE(arr.invalidate(0, &was_dirty));
  EXPECT_TRUE(was_dirty);
  // Refill clean: no stale dirty bit.
  arr.fill(0);
  EXPECT_FALSE(arr.is_dirty(0));
}

TEST(DirtyBits, MarkDirtyDoesNotPromote) {
  TagArray arr(tiny_geom());
  for (LineAddr l : {0u, 2u, 4u, 6u}) arr.fill(l);
  EXPECT_TRUE(arr.mark_dirty(0));  // 0 stays LRU
  const auto r = arr.fill(8);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 0u) << "mark_dirty must not touch replacement order";
  EXPECT_FALSE(arr.mark_dirty(100));
}

// ----------------------------------------------------------------- end2end

RunSpec wb_spec(Scheme scheme, bool writebacks) {
  RunSpec spec;
  spec.bench = BenchmarkId::kLbm;  // write-heavy streaming
  spec.scheme = scheme;
  spec.scale = 32;
  // Long enough for the dirty wave to reach the LLC and spill to memory
  // (the scaled L3/L4 hold ~2K/32K lines; the stream must outrun both).
  spec.refs_per_core = 150'000;
  if (writebacks) {
    spec.tweak = [](HierarchyConfig& c) { c.model_writebacks = true; };
  }
  return spec;
}

TEST(Writeback, DisabledByDefaultMatchingThePaper) {
  const SimResult r = run_spec(wb_spec(Scheme::kBase, false));
  EXPECT_EQ(r.memory_writebacks, 0u);
  for (const auto& lvl : r.levels) EXPECT_EQ(lvl.writebacks, 0u);
}

TEST(Writeback, WriteHeavyWorkloadProducesWritebackTraffic) {
  const SimResult r = run_spec(wb_spec(Scheme::kBase, true));
  // lbm writes ~40% of its stream; its evicted lines are dirty and must
  // eventually drain to memory.
  EXPECT_GT(r.memory_writebacks, r.total_refs / 100);
  std::uint64_t level_wb = 0;
  for (const auto& lvl : r.levels) level_wb += lvl.writebacks;
  EXPECT_GT(level_wb, 0u);
}

TEST(Writeback, EnergyIncreasesButBehaviourIsUnchanged) {
  const SimResult off = run_spec(wb_spec(Scheme::kBase, false));
  const SimResult on = run_spec(wb_spec(Scheme::kBase, true));
  // Same hits/misses (writebacks are an accounting overlay)...
  EXPECT_EQ(on.levels[0].hits, off.levels[0].hits);
  EXPECT_EQ(on.demand_memory_accesses, off.demand_memory_accesses);
  EXPECT_EQ(on.exec_cycles, off.exec_cycles)
      << "writebacks drain off the critical path";
  // ...but strictly more dynamic energy.
  EXPECT_GT(on.energy.dynamic_total_j(), off.energy.dynamic_total_j());
}

TEST(Writeback, RedhipSavingsSurviveWritebackModeling) {
  const SimResult base = run_spec(wb_spec(Scheme::kBase, true));
  const SimResult red = run_spec(wb_spec(Scheme::kRedhip, true));
  EXPECT_LT(compare(base, red).dyn_energy_ratio, 0.9);
}

TEST(Writeback, ExclusiveCascadeCarriesDirtyData) {
  // In an exclusive hierarchy a dirty line demoted from L1 must stay dirty
  // all the way down, and a dirty LLC drop must hit memory.
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;  // enough churn to drop LLC victims
  spec.scheme = Scheme::kBase;
  spec.inclusion = InclusionPolicy::kExclusive;
  spec.scale = 32;
  spec.refs_per_core = 150'000;
  spec.tweak = [](HierarchyConfig& c) { c.model_writebacks = true; };
  const SimResult r = run_spec(spec);
  EXPECT_GT(r.memory_writebacks, 0u);
}

TEST(Writeback, HybridLlcAbsorbsPrivateDirtyDrops) {
  RunSpec spec;
  spec.bench = BenchmarkId::kLbm;
  spec.scheme = Scheme::kBase;
  spec.inclusion = InclusionPolicy::kHybrid;
  spec.scale = 32;
  spec.refs_per_core = 150'000;
  spec.tweak = [](HierarchyConfig& c) { c.model_writebacks = true; };
  const SimResult r = run_spec(spec);
  // Private-chain victims write into the (inclusive) LLC...
  EXPECT_GT(r.levels[3].writebacks, 0u);
  // ...and dirty LLC evictions still reach memory.
  EXPECT_GT(r.memory_writebacks, 0u);
}

}  // namespace
}  // namespace redhip
