// Tests for src/harness: run_spec / compare, the experiment matrix runner,
// the thread pool, and the table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/run.h"
#include "harness/thread_pool.h"

namespace redhip {
namespace {

TEST(RunSpecTest, ProducesSaneResults) {
  RunSpec spec;
  spec.bench = BenchmarkId::kSoplex;
  spec.scale = 32;
  spec.refs_per_core = 10'000;
  const SimResult r = run_spec(spec);
  EXPECT_EQ(r.total_refs, 8u * 10'000u);
  EXPECT_GT(r.exec_cycles, 0u);
  EXPECT_GT(r.energy.total_j(), 0.0);
  EXPECT_EQ(r.levels.size(), 4u);
  EXPECT_EQ(r.levels[0].accesses, r.total_refs);
}

TEST(RunSpecTest, TweakIsApplied) {
  RunSpec spec;
  spec.bench = BenchmarkId::kSoplex;
  spec.scale = 32;
  spec.refs_per_core = 5'000;
  spec.scheme = Scheme::kRedhip;
  bool tweaked = false;
  spec.tweak = [&tweaked](HierarchyConfig& c) {
    tweaked = true;
    c.redhip.recal_interval_l1_misses = 0;
  };
  const SimResult r = run_spec(spec);
  EXPECT_TRUE(tweaked);
  EXPECT_EQ(r.predictor.recalibrations, 0u);
}

TEST(CompareTest, IdenticalRunsCompareAsUnity) {
  RunSpec spec;
  spec.bench = BenchmarkId::kAstar;
  spec.scale = 32;
  spec.refs_per_core = 5'000;
  const SimResult a = run_spec(spec);
  const SimResult b = run_spec(spec);
  const Comparison c = compare(a, b);
  EXPECT_DOUBLE_EQ(c.speedup, 1.0);
  EXPECT_DOUBLE_EQ(c.dyn_energy_ratio, 1.0);
  EXPECT_DOUBLE_EQ(c.perf_energy_metric, 1.0);
}

TEST(CompareTest, MetricIsProductOfSpeedupAndEnergyGain) {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scale = 32;
  spec.refs_per_core = 20'000;
  const SimResult base = run_spec(spec);
  spec.scheme = Scheme::kRedhip;
  const SimResult x = run_spec(spec);
  const Comparison c = compare(base, x);
  EXPECT_NEAR(c.perf_energy_metric,
              c.speedup * (base.energy.total_j() / x.energy.total_j()),
              1e-12);
}

TEST(ExperimentTest, ParseReadsFlagsAndBenchFilter) {
  const char* argv[] = {"prog", "--scale", "16", "--refs", "1234",
                        "--bench", "lbm", "--csv"};
  CliOptions cli(8, const_cast<char**>(argv));
  const ExperimentOptions o = ExperimentOptions::parse(cli);
  EXPECT_EQ(o.scale, 16u);
  EXPECT_EQ(o.refs_per_core, 1234u);
  EXPECT_TRUE(o.csv);
  ASSERT_EQ(o.benches.size(), 1u);
  EXPECT_EQ(o.benches[0], BenchmarkId::kLbm);
}

TEST(ExperimentTest, ParseRejectsUnknownBench) {
  const char* argv[] = {"prog", "--bench", "nosuch"};
  CliOptions cli(3, const_cast<char**>(argv));
  EXPECT_THROW(ExperimentOptions::parse(cli), std::logic_error);
}

TEST(ExperimentTest, MatrixMatchesIndividualRuns) {
  ExperimentOptions o;
  o.scale = 32;
  o.refs_per_core = 5'000;
  o.benches = {BenchmarkId::kLbm, BenchmarkId::kMcf};
  const std::vector<SchemeColumn> cols = {{"Base", Scheme::kBase},
                                          {"ReDHiP", Scheme::kRedhip}};
  const auto m = run_matrix(o, cols);
  ASSERT_EQ(m.size(), 2u);
  ASSERT_EQ(m[0].size(), 2u);
  // The matrix result equals a directly-executed run (determinism across
  // the thread pool).
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 32;
  spec.refs_per_core = 5'000;
  const SimResult direct = run_spec(spec);
  EXPECT_EQ(m[1][1].exec_cycles, direct.exec_cycles);
  EXPECT_EQ(m[1][1].predictor.predicted_absent,
            direct.predictor.predicted_absent);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      // The empty asm keeps the busy-wait from being optimized away
      // (volatile int induction is deprecated in C++20).
      for (int spin = 0; spin < 100'000; ++spin) {
        asm volatile("");
      }
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, RunAllConvenience) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back([&sum, i] { sum += i; });
  }
  ThreadPool::run_all(std::move(tasks), 3);
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotTerminateAndIsRethrown) {
  // Pre-hardening this was std::terminate (exception escaping a worker
  // thread).  Now: the pool survives, keeps draining, and wait_idle
  // rethrows the first failure.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("poisoned task"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "poisoned task");
  }
  EXPECT_EQ(ran.load(), 20) << "queue must drain despite the failure";
  // The pool is reusable after the error has been consumed.
  pool.submit([&ran] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, OnlyFirstErrorIsKept) {
  ThreadPool pool(1);  // single worker: deterministic failure order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1) << "shutdown drains pending work";
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, RunAllRethrowsAfterDrainingEverything) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::logic_error("bad config"); });
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&ran] { ++ran; });
  }
  EXPECT_THROW(ThreadPool::run_all(std::move(tasks), 2), std::logic_error);
  EXPECT_EQ(ran.load(), 10);
}

TEST(Report, FormattersProduceExpectedStrings) {
  EXPECT_EQ(pct_delta(1.083), "+8.3%");
  EXPECT_EQ(pct_delta(0.97), "-3.0%");
  EXPECT_EQ(pct(0.612), "61.2%");
  EXPECT_EQ(fixed(1.23456, 3), "1.235");
}

TEST(Report, TableRejectsRaggedRows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
  t.add_row({"x", "y"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Report, MeanHelper) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace redhip
