// Tests for the observability layer (src/obs): the metrics registry, the
// JSONL event writer/reader pair, epoch boundary semantics (including the
// edge cases: refs not a multiple of the epoch, an epoch larger than the
// whole run, epoch = 1, and cycle-based epochs), the [obs] config-file
// section, and the event-stream equivalence oracle — the fast and
// reference engines must emit byte-identical traces for every specialized
// run-loop instantiation.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/config_file.h"
#include "harness/experiment.h"
#include "harness/run.h"
#include "obs/events.h"
#include "obs/jsonl_reader.h"
#include "obs/metrics.h"
#include "sim/stats.h"

namespace redhip {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

RunSpec obs_spec(std::uint64_t refs_per_core, std::uint64_t epoch_refs,
                 const std::string& trace_path = "") {
  RunSpec spec;
  spec.bench = BenchmarkId::kMcf;
  spec.scheme = Scheme::kRedhip;
  spec.scale = 8;
  spec.refs_per_core = refs_per_core;
  spec.seed = 1234;
  spec.tweak = [epoch_refs, trace_path](HierarchyConfig& hc) {
    hc.obs.enabled = true;
    hc.obs.epoch_refs = epoch_refs;
    hc.obs.trace_path = trace_path;
  };
  return spec;
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, CountersArePerCoreAndSummable) {
  MetricsRegistry m(4);
  EXPECT_EQ(m.cores(), 4u);
  m.add(0, ObsCounter::kRefs);
  m.add(0, ObsCounter::kRefs, 9);
  m.add(3, ObsCounter::kRefs, 5);
  m.add(1, ObsCounter::kRecoveries);
  EXPECT_EQ(m.core_total(0, ObsCounter::kRefs), 10u);
  EXPECT_EQ(m.core_total(1, ObsCounter::kRefs), 0u);
  EXPECT_EQ(m.core_total(3, ObsCounter::kRefs), 5u);
  EXPECT_EQ(m.total(ObsCounter::kRefs), 15u);
  EXPECT_EQ(m.total(ObsCounter::kRecoveries), 1u);
  EXPECT_EQ(m.total(ObsCounter::kDisableFlips), 0u);
}

TEST(MetricsRegistry, LatencyBucketsArePowersOfTwo) {
  MetricsRegistry m(2);
  // Bucket i counts v with 2^(i-1) <= v < 2^i; bucket 0 counts v == 0.
  m.record_latency(0, 0);   // bucket 0
  m.record_latency(0, 1);   // bucket 1
  m.record_latency(0, 2);   // bucket 2
  m.record_latency(0, 3);   // bucket 2
  m.record_latency(1, 4);   // bucket 3
  m.record_latency(1, 7);   // bucket 3
  m.record_latency(1, 8);   // bucket 4
  const auto h = m.latency_histogram();
  ASSERT_EQ(h.size(), MetricsRegistry::kHistogramBuckets);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);
  EXPECT_EQ(h[3], 2u);
  EXPECT_EQ(h[4], 1u);
  std::uint64_t sum = 0;
  for (std::uint64_t v : h) sum += v;
  EXPECT_EQ(sum, 7u);
}

// --- EventWriter <-> ObsJsonlReader round-trip -------------------------------

TEST(ObsEvents, WriterReaderRoundTrip) {
  StringEventSink sink;
  EventWriter("epoch")
      .field("index", std::uint64_t{3})
      .field("active", true)
      .emit(sink);
  EventWriter("run_end")
      .field("ref", std::uint64_t{1'000'000})
      .field("scheme", std::string("ReDHiP"))
      .array("latency_pow2", std::vector<std::uint64_t>{0, 12, 34})
      .emit(sink);

  const auto events = parse_jsonl(sink.str());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "epoch");
  EXPECT_EQ(events[0].num_at("index"), 3u);
  EXPECT_EQ(events[0].flag("active"), true);
  EXPECT_EQ(events[1].type, "run_end");
  EXPECT_EQ(events[1].num_at("ref"), 1'000'000u);
  EXPECT_EQ(events[1].str("scheme"), "ReDHiP");
  ASSERT_EQ(events[1].arrays.size(), 1u);
  EXPECT_EQ(events[1].arrays[0].first, "latency_pow2");
  EXPECT_EQ(events[1].arrays[0].second,
            (std::vector<std::uint64_t>{0, 12, 34}));
  // Absent keys: optional accessors return nullopt, num_at throws.
  EXPECT_FALSE(events[0].num("missing").has_value());
  EXPECT_THROW(events[0].num_at("missing"), std::out_of_range);
}

TEST(ObsEvents, StringEscapingRoundTrips) {
  StringEventSink sink;
  EventWriter("note")
      .field("text", std::string("a\"b\\c\nd\te"))
      .emit(sink);
  const auto events = parse_jsonl(sink.str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].str("text"), "a\"b\\c\nd\te");
}

TEST(ObsEvents, ReaderRejectsMalformedLines) {
  // Not an object.
  EXPECT_THROW(parse_jsonl("42\n"), std::runtime_error);
  // Missing the "ev" discriminator.
  EXPECT_THROW(parse_jsonl("{\"ref\":1}\n"), std::runtime_error);
  // Truncated object.
  EXPECT_THROW(parse_jsonl("{\"ev\":\"epoch\",\"x\":1\n"), std::runtime_error);
  // Trailing garbage after the object.
  EXPECT_THROW(parse_jsonl("{\"ev\":\"epoch\"} extra\n"), std::runtime_error);
  // Nested objects are outside the dialect.
  EXPECT_THROW(parse_jsonl("{\"ev\":\"epoch\",\"o\":{\"x\":1}}\n"),
               std::runtime_error);
  // A good line followed by a bad one still throws (all-or-nothing).
  EXPECT_THROW(parse_jsonl("{\"ev\":\"epoch\"}\nnope\n"), std::runtime_error);
  // Missing files are an error, not an empty trace.
  EXPECT_THROW(load_jsonl_file("/nonexistent/redhip-trace.jsonl"),
               std::runtime_error);
}

// --- Epoch boundary semantics ------------------------------------------------

// 8 cores x 2,000 refs = 16,000 total; epochs of 3,000 give five full
// epochs plus a partial tail of 1,000.
TEST(ObsEpochs, PartialFinalEpochWhenRefsNotAMultiple) {
  const SimResult r = run_spec(obs_spec(2'000, 3'000));
  ASSERT_EQ(r.epochs.size(), 6u);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < r.epochs.size(); ++i) {
    const EpochSample& e = r.epochs[i];
    EXPECT_EQ(e.index, i);
    EXPECT_EQ(e.refs, i + 1 < r.epochs.size() ? 3'000u : 1'000u);
    EXPECT_EQ(e.fn, 0u);
    sum += e.refs;
    EXPECT_EQ(e.end_ref, sum);
  }
  EXPECT_EQ(sum, r.total_refs);
}

TEST(ObsEpochs, EpochLargerThanRunYieldsOnePartialEpoch) {
  const SimResult r = run_spec(obs_spec(2'000, 1'000'000));
  ASSERT_EQ(r.epochs.size(), 1u);
  EXPECT_EQ(r.epochs[0].refs, r.total_refs);
  EXPECT_EQ(r.epochs[0].end_ref, r.total_refs);
}

TEST(ObsEpochs, EpochOfOneRefClosesEveryReference) {
  const SimResult r = run_spec(obs_spec(50, 1));
  ASSERT_EQ(r.epochs.size(), r.total_refs);
  for (const EpochSample& e : r.epochs) EXPECT_EQ(e.refs, 1u);
}

TEST(ObsEpochs, CycleBasedEpochsCoverTheRun) {
  RunSpec spec = obs_spec(2'000, 0);
  spec.tweak = [](HierarchyConfig& hc) {
    hc.obs.enabled = true;
    hc.obs.epoch_refs = 0;
    hc.obs.epoch_cycles = 5'000;
  };
  const SimResult r = run_spec(spec);
  ASSERT_GE(r.epochs.size(), 2u);
  std::uint64_t sum = 0;
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < r.epochs.size(); ++i) {
    EXPECT_EQ(r.epochs[i].index, i);
    EXPECT_GE(r.epochs[i].end_cycles, prev_end);
    prev_end = r.epochs[i].end_cycles;
    sum += r.epochs[i].refs;
  }
  EXPECT_EQ(sum, r.total_refs);
}

TEST(ObsEpochs, EnablingObsDoesNotPerturbSimulatedStats) {
  RunSpec plain = obs_spec(5'000, 10'000);
  plain.tweak = nullptr;  // obs off
  const SimResult off = run_spec(plain);
  SimResult on = run_spec(obs_spec(5'000, 10'000));
  EXPECT_FALSE(on.epochs.empty());
  EXPECT_TRUE(off.epochs.empty());
  // Every simulated counter must be untouched by observation; only the
  // epoch series differs, so blank it before the bit-identity check.
  on.epochs.clear();
  EXPECT_TRUE(stats_identical(on, off));
}

TEST(ObsEpochs, RejectsAnEpochOfNothing) {
  RunSpec spec = obs_spec(1'000, 0);
  spec.tweak = [](HierarchyConfig& hc) {
    hc.obs.enabled = true;
    hc.obs.epoch_refs = 0;
    hc.obs.epoch_cycles = 0;
  };
  EXPECT_THROW(run_spec(spec), std::invalid_argument);
}

// --- [obs] config section ----------------------------------------------------

TEST(ObsConfigFile, ParsesAndRoundTripsTheObsSection) {
  const char* text = R"(
cores = 2
scheme = redhip

[level]
size = 32K
ways = 4

[level]
size = 4M
ways = 16

[obs]
enabled = true
epoch_refs = 250000
epoch_cycles = 0
trace_path = /tmp/redhip-events.jsonl
timing = false
)";
  const HierarchyConfig c = parse_config_text(text);
  EXPECT_TRUE(c.obs.enabled);
  EXPECT_EQ(c.obs.epoch_refs, 250'000u);
  EXPECT_EQ(c.obs.epoch_cycles, 0u);
  EXPECT_EQ(c.obs.trace_path, "/tmp/redhip-events.jsonl");
  EXPECT_FALSE(c.obs.timing);

  const HierarchyConfig again = parse_config_text(config_to_text(c));
  EXPECT_EQ(again.obs.enabled, c.obs.enabled);
  EXPECT_EQ(again.obs.epoch_refs, c.obs.epoch_refs);
  EXPECT_EQ(again.obs.epoch_cycles, c.obs.epoch_cycles);
  EXPECT_EQ(again.obs.trace_path, c.obs.trace_path);
  EXPECT_EQ(again.obs.timing, c.obs.timing);
}

TEST(ObsConfigFile, RejectsUnknownObsKeys) {
  const char* text = "[obs]\nenabled = true\nepoch = 5\n";
  EXPECT_THROW(parse_config_text(text), std::logic_error);
}

TEST(ObsConfigFile, TraceFileNamesAreSanitized) {
  EXPECT_EQ(trace_file_name(BenchmarkId::kMcf, "redhip", SimEngine::kFast),
            "mcf-redhip-fast.jsonl");
  EXPECT_EQ(
      trace_file_name(BenchmarkId::kMcf, "redhip", SimEngine::kReference),
      "mcf-redhip-reference.jsonl");
  EXPECT_EQ(trace_file_name(BenchmarkId::kMcf, "L4 (64M)/x", SimEngine::kFast),
            "mcf-L4__64M__x-fast.jsonl");
}

// --- Event-stream equivalence oracle -----------------------------------------

// Beyond bit-identical end-of-run statistics (engine_equivalence_test), the
// two engines must agree on *when* everything happened: the JSONL traces
// they emit — epochs, recalibration brackets, auto-disable flips, recovery
// actions — must match byte for byte across every specialized run_loop
// instantiation (fault x prefetch x auto_disable).
TEST(ObsEquivalence, FastAndReferenceTracesAreByteIdentical) {
  const std::string dir = ::testing::TempDir();
  for (int mask = 0; mask < 8; ++mask) {
    const bool fault = mask & 1;
    const bool prefetch = mask & 2;
    const bool auto_disable = mask & 4;
    RunSpec spec;
    spec.bench = BenchmarkId::kMcf;
    spec.scheme = Scheme::kRedhip;
    spec.scale = 8;
    spec.refs_per_core = 20'000;
    spec.seed = 1234;
    spec.prefetch = prefetch;
    const std::string fast_path =
        dir + "/obs-equiv-" + std::to_string(mask) + "-fast.jsonl";
    const std::string ref_path =
        dir + "/obs-equiv-" + std::to_string(mask) + "-reference.jsonl";

    auto tweak_for = [&](const std::string& path) {
      return [fault, auto_disable, path](HierarchyConfig& hc) {
        if (fault) {
          hc.fault.enabled = true;
          hc.fault.rate_per_mref = 2'000;
          hc.audit.enabled = true;
        }
        if (auto_disable) {
          hc.auto_disable.enabled = true;
          hc.auto_disable.epoch_refs = 5'000;
        }
        hc.obs.enabled = true;
        hc.obs.epoch_refs = 20'000;
        hc.obs.trace_path = path;
      };
    };

    spec.engine = SimEngine::kFast;
    spec.tweak = tweak_for(fast_path);
    const SimResult fast = run_spec(spec);
    spec.engine = SimEngine::kReference;
    spec.tweak = tweak_for(ref_path);
    const SimResult ref = run_spec(spec);

    EXPECT_TRUE(stats_identical(fast, ref)) << "mask " << mask;
    EXPECT_EQ(fast.epochs, ref.epochs) << "mask " << mask;

    const std::string fast_trace = slurp(fast_path);
    EXPECT_EQ(fast_trace, slurp(ref_path)) << "mask " << mask;

    // The shared trace is well-formed and shaped as documented.
    const auto events = parse_jsonl(fast_trace);
    ASSERT_GE(events.size(), 3u) << "mask " << mask;
    EXPECT_EQ(events.front().type, "run_begin");
    EXPECT_EQ(events.back().type, "run_end");
    EXPECT_EQ(events.back().num_at("ref"), fast.total_refs);
    std::size_t epoch_events = 0;
    for (const ObsEvent& e : events) epoch_events += e.type == "epoch";
    EXPECT_EQ(epoch_events, fast.epochs.size()) << "mask " << mask;
  }
}

}  // namespace
}  // namespace redhip
