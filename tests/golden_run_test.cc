// Golden-run regression corpus: small reference runs (100k refs/core,
// three workloads x base/redhip, obs enabled) whose full json_report
// output is committed under tests/golden/.  Any change to simulated
// behavior — cache policy, predictor accounting, energy pricing, epoch
// series — shows up as a diff against the corpus, which separates
// deliberate model changes (regenerate the corpus, review the diff) from
// accidental ones (fix the bug).
//
// Regenerate after an intentional change with:
//   REDHIP_UPDATE_GOLDEN=1 ./golden_run_test
// then review `git diff tests/golden/`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json_report.h"
#include "harness/run.h"

#ifndef REDHIP_GOLDEN_DIR
#error "REDHIP_GOLDEN_DIR must point at the committed corpus directory"
#endif

namespace redhip {
namespace {

struct GoldenCell {
  BenchmarkId bench;
  Scheme scheme;
};

const std::vector<GoldenCell>& golden_cells() {
  static const std::vector<GoldenCell> cells = {
      {BenchmarkId::kMcf, Scheme::kBase},
      {BenchmarkId::kMcf, Scheme::kRedhip},
      {BenchmarkId::kMilc, Scheme::kBase},
      {BenchmarkId::kMilc, Scheme::kRedhip},
      {BenchmarkId::kAstar, Scheme::kBase},
      {BenchmarkId::kAstar, Scheme::kRedhip},
  };
  return cells;
}

std::string golden_path(const GoldenCell& cell) {
  return std::string(REDHIP_GOLDEN_DIR) + "/" + to_string(cell.bench) + "-" +
         to_string(cell.scheme) + ".json";
}

std::string run_cell(const GoldenCell& cell) {
  RunSpec spec;
  spec.bench = cell.bench;
  spec.scheme = cell.scheme;
  spec.scale = 8;
  spec.refs_per_core = 100'000;
  spec.seed = 42;
  spec.tweak = [](HierarchyConfig& hc) {
    // Epoch series included so the corpus also pins the observability
    // accounting (8 epochs over 8 cores x 100k refs).
    hc.obs.enabled = true;
    hc.obs.epoch_refs = 100'000;
  };
  // A golden line ends like a trace line would: newline-terminated so the
  // committed files are POSIX text files and diffs stay clean.
  return to_json(run_spec(spec)) + "\n";
}

bool updating_golden() {
  const char* v = std::getenv("REDHIP_UPDATE_GOLDEN");
  return v != nullptr && std::string(v) == "1";
}

TEST(GoldenRun, ReportsMatchTheCommittedCorpus) {
  for (const GoldenCell& cell : golden_cells()) {
    const std::string path = golden_path(cell);
    const std::string fresh = run_cell(cell);
    if (updating_golden()) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << fresh;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — regenerate with REDHIP_UPDATE_GOLDEN=1 ./golden_run_test";
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(fresh, ss.str())
        << "simulated behavior diverged from the corpus for "
        << to_string(cell.bench) << "/" << to_string(cell.scheme)
        << "; if the change is intentional, regenerate with "
        << "REDHIP_UPDATE_GOLDEN=1 ./golden_run_test and review the diff";
  }
}

}  // namespace
}  // namespace redhip
